// Package sip implements the Subgraph Isomorphism Problem decision
// search of the paper's evaluation: does a copy of a pattern graph
// appear in a target graph? The search assigns pattern vertices in
// static descending-degree order, with forward adjacency-consistency
// and degree filtering in the node generator (a simplified relative of
// the McCreesh/Prosser algorithm the paper's baseline uses). Matches
// are non-induced: pattern edges must map to target edges, pattern
// non-edges are unconstrained.
package sip

import (
	"math/rand"
	"sort"

	"yewpar/internal/bitset"
	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// Space holds the pattern and target plus precomputed orders.
type Space struct {
	P, T *graph.Graph
	// Order is the static variable order: pattern vertices by
	// descending degree (most constrained first).
	Order []int
	pdeg  []int
	tdeg  []int
	// padj[i][j] reports whether Order[i] and Order[j] are adjacent in
	// the pattern, indexed by assignment position.
	padj [][]bool
	// pnds/tnds are neighbourhood degree sequences: each vertex's
	// neighbours' degrees sorted descending. v can host u only if
	// tnds[v] pointwise dominates pnds[u] — a static filter from the
	// McCreesh/Prosser SIP solver the paper uses as its baseline.
	pnds [][]int32
	tnds [][]int32
}

// neighbourhoodDegrees returns, per vertex, the sorted-descending
// degree sequence of its neighbours.
func neighbourhoodDegrees(g *graph.Graph) [][]int32 {
	nds := make([][]int32, g.N)
	for v := 0; v < g.N; v++ {
		seq := make([]int32, 0, g.Degree(v))
		g.Adj[v].ForEach(func(u int) bool {
			seq = append(seq, int32(g.Degree(u)))
			return true
		})
		sort.Slice(seq, func(i, j int) bool { return seq[i] > seq[j] })
		nds[v] = seq
	}
	return nds
}

// ndsDominates reports whether the target sequence can host the
// pattern sequence: target must be at least as long, and pointwise at
// least as large on the pattern's prefix.
func ndsDominates(target, pattern []int32) bool {
	if len(target) < len(pattern) {
		return false
	}
	for i := range pattern {
		if target[i] < pattern[i] {
			return false
		}
	}
	return true
}

// connectedOrder returns a static variable order: start from the
// highest-degree vertex, then repeatedly pick the unordered vertex
// with the most neighbours already in the order (ties by degree, then
// index). Keeping consecutive variables adjacent maximises how much
// each new assignment is constrained by earlier ones.
func connectedOrder(g *graph.Graph) []int {
	if g.N == 0 {
		return nil
	}
	order := make([]int, 0, g.N)
	inOrder := make([]bool, g.N)
	linked := make([]int, g.N) // neighbours already ordered
	for len(order) < g.N {
		best := -1
		for v := 0; v < g.N; v++ {
			if inOrder[v] {
				continue
			}
			if best < 0 ||
				linked[v] > linked[best] ||
				(linked[v] == linked[best] && g.Degree(v) > g.Degree(best)) {
				best = v
			}
		}
		order = append(order, best)
		inOrder[best] = true
		g.Adj[best].ForEach(func(u int) bool {
			linked[u]++
			return true
		})
	}
	return order
}

// NewSpace precomputes the search order and degree tables.
func NewSpace(pattern, target *graph.Graph) *Space {
	s := &Space{
		P:     pattern,
		T:     target,
		Order: connectedOrder(pattern),
		pdeg:  make([]int, pattern.N),
		tdeg:  make([]int, target.N),
	}
	for v := 0; v < pattern.N; v++ {
		s.pdeg[v] = pattern.Degree(v)
	}
	for v := 0; v < target.N; v++ {
		s.tdeg[v] = target.Degree(v)
	}
	s.padj = make([][]bool, pattern.N)
	for i := range s.padj {
		s.padj[i] = make([]bool, pattern.N)
		for j := range s.padj[i] {
			s.padj[i][j] = pattern.HasEdge(s.Order[i], s.Order[j])
		}
	}
	s.pnds = neighbourhoodDegrees(pattern)
	s.tnds = neighbourhoodDegrees(target)
	return s
}

// Node is a partial assignment: Assigned[i] is the target vertex of
// pattern vertex Order[i]. Used tracks occupied target vertices.
type Node struct {
	Assigned []int32
	Used     bitset.Set
}

// Depth returns the number of assigned pattern vertices.
func (n Node) Depth() int { return len(n.Assigned) }

// Root is the empty assignment.
func Root(s *Space) Node {
	return Node{Assigned: nil, Used: bitset.New(s.T.N)}
}

type gen struct {
	s      *Space
	parent Node
	pos    int        // assignment position being filled
	cand   bitset.Set // adjacency-consistent unassigned target vertices
	built  bool
	buf    Node
	ok     bool
}

// Gen is the core.GenFactory for SIP: children map the next pattern
// vertex (in static order) to each compatible target vertex, filtered
// by degree and adjacency to already-assigned neighbours.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	if parent.Depth() >= s.P.N {
		return core.EmptyGen[Node]{}
	}
	return &gen{s: s, parent: parent, pos: parent.Depth()}
}

// buildCand materialises the candidate set for assignment position
// pos: every unassigned target vertex, intersected with the target
// neighbourhood of each already-assigned pattern neighbour. One
// word-parallel IntersectInto per assigned neighbour replaces the
// per-vertex HasEdge scan of the naive filter; the per-vertex degree
// and neighbourhood-degree checks run only on the survivors.
func (g *gen) buildCand() {
	g.cand = bitset.New(g.s.T.N)
	g.cand.Fill()
	g.cand.DifferenceWith(g.parent.Used)
	for i, u := range g.parent.Assigned {
		if g.s.padj[g.pos][i] {
			bitset.IntersectInto(g.cand, g.cand, g.s.T.Adj[int(u)])
		}
	}
	g.built = true
}

// feasible checks target vertex t for assignment position pos (the
// naive reference filter; the generator itself uses the candidate
// bitset of buildCand, which accepts exactly the same vertices).
func (g *gen) feasible(t int) bool {
	if g.parent.Used.Contains(t) {
		return false
	}
	pv := g.s.Order[g.pos]
	if g.s.tdeg[t] < g.s.pdeg[pv] {
		return false
	}
	if !ndsDominates(g.s.tnds[t], g.s.pnds[pv]) {
		return false
	}
	for i, u := range g.parent.Assigned {
		if g.s.padj[g.pos][i] && !g.s.T.HasEdge(int(u), t) {
			return false
		}
	}
	return true
}

func (g *gen) HasNext() bool {
	if g.ok {
		return true
	}
	if !g.built {
		g.buildCand()
	}
	pv := g.s.Order[g.pos]
	for {
		// PopNext consumes candidates in ascending order, matching the
		// naive filter's scan order exactly.
		t := g.cand.PopNext()
		if t < 0 {
			return false
		}
		if g.s.tdeg[t] < g.s.pdeg[pv] || !ndsDominates(g.s.tnds[t], g.s.pnds[pv]) {
			continue
		}
		assigned := make([]int32, len(g.parent.Assigned)+1)
		copy(assigned, g.parent.Assigned)
		assigned[len(assigned)-1] = int32(t)
		used := g.parent.Used.Clone()
		used.Add(t)
		g.buf = Node{Assigned: assigned, Used: used}
		g.ok = true
		return true
	}
}

func (g *gen) Next() Node {
	if !g.HasNext() {
		panic("sip: Next on exhausted generator")
	}
	g.ok = false
	return g.buf
}

// Objective is the number of assigned pattern vertices.
func Objective(_ *Space, n Node) int64 { return int64(n.Depth()) }

// DecisionProblem returns the SIP decision search: find a complete
// assignment. The generator enforces consistency, so no extra bound is
// useful (every node can in principle reach a full assignment).
func DecisionProblem(s *Space) core.DecisionProblem[*Space, Node] {
	return core.DecisionProblem[*Space, Node]{
		Gen:       Gen,
		Objective: Objective,
		Target:    int64(s.P.N),
	}
}

// Solve looks for an embedding with the given skeleton. On success the
// returned mapping sends pattern vertex v to mapping[v].
func Solve(s *Space, coord core.Coordination, cfg core.Config) ([]int, bool, core.Stats) {
	res := core.Decide(coord, s, Root(s), DecisionProblem(s), cfg)
	if !res.Found {
		return nil, false, res.Stats
	}
	mapping := make([]int, s.P.N)
	for i, t := range res.Witness.Assigned {
		mapping[s.Order[i]] = int(t)
	}
	return mapping, true, res.Stats
}

// VerifyEmbedding checks that mapping is injective and edge-preserving.
func VerifyEmbedding(p, t *graph.Graph, mapping []int) bool {
	if len(mapping) != p.N {
		return false
	}
	seen := bitset.New(t.N)
	for _, m := range mapping {
		if m < 0 || m >= t.N || seen.Contains(m) {
			return false
		}
		seen.Add(m)
	}
	for u := 0; u < p.N; u++ {
		ok := true
		p.Adj[u].ForEach(func(v int) bool {
			if !t.HasEdge(mapping[u], mapping[v]) {
				ok = false
			}
			return ok
		})
		if !ok {
			return false
		}
	}
	return true
}

// GenerateSat builds a deterministic satisfiable instance: a G(n, p)
// target and a pattern obtained by taking the subgraph induced by pn
// random target vertices and deleting each induced edge with
// probability drop (edge deletion keeps the identity embedding valid
// for non-induced matching).
func GenerateSat(n int, p float64, pn int, drop float64, seed int64) *Space {
	rng := rand.New(rand.NewSource(seed))
	target := graph.Random(n, p, seed*2+1)
	perm := rng.Perm(n)[:pn]
	induced, _ := target.InducedSubgraph(perm)
	pattern := graph.New(pn)
	for u := 0; u < pn; u++ {
		induced.Adj[u].ForEach(func(v int) bool {
			if u < v && rng.Float64() >= drop {
				pattern.AddEdge(u, v)
			}
			return true
		})
	}
	return NewSpace(pattern, target)
}

// GenerateRandom builds a deterministic instance with independent
// pattern and target densities; satisfiability is not guaranteed
// either way (the hard regime the paper's SIP instances live in).
func GenerateRandom(tn int, tp float64, pn int, pp float64, seed int64) *Space {
	target := graph.Random(tn, tp, seed*2+1)
	pattern := graph.Random(pn, pp, seed*2+2)
	return NewSpace(pattern, target)
}
