// Package yewpar is a Go reproduction of "YewPar: Skeletons for Exact
// Combinatorial Search" (Archibald, Maier, Stewart, Trinder; PPoPP
// 2020): a general-purpose library of parallel algorithmic skeletons
// for exact combinatorial search.
//
// The implementation lives under internal/: the skeleton library in
// internal/core, the executable operational semantics in
// internal/semantics, the seven search applications of the paper's
// evaluation in internal/apps, and the substrates (bitsets, graphs,
// instances) beside them. Executables are in cmd/ and runnable
// examples in examples/. This root package exists to host the
// repository-level benchmark suite (bench_test.go), one benchmark per
// table and figure of the paper's evaluation.
package yewpar
