package core

import (
	"runtime"
	"time"

	"yewpar/internal/dist"
)

// PoolKind selects the workpool implementation used by the pool-based
// coordinations (Depth-Bounded and Budget).
type PoolKind int

const (
	// DepthPoolKind is the paper's order-preserving workpool: tasks
	// pop lowest-depth-first, FIFO within a depth, so the frontier is
	// consumed in heuristic search order. The default.
	DepthPoolKind PoolKind = iota
	// DequeKind is a conventional work-stealing deque (LIFO owner,
	// FIFO thief). It breaks heuristic order and exists as the
	// ablation the paper argues against in Section 2.3.
	DequeKind
	// PrioBucketKind buckets tasks on Task.Prio (lower = better) and
	// serves owners and thieves best-priority-first. Selected
	// automatically when Config.Order is not OrderNone; pointless
	// without an ordering mode (every priority would be zero).
	PrioBucketKind
)

// Config tunes the parallel skeletons. The zero value selects sensible
// defaults (GOMAXPROCS workers on a single locality).
type Config struct {
	// Workers is the total number of search workers. Default:
	// runtime.GOMAXPROCS(0).
	Workers int
	// Localities is the number of in-process localities (stand-ins for
	// physical machines, connected by the loopback transport): each
	// locality owns a workpool and a cached bound. Workers are spread
	// evenly across localities. Default 1. Multi-process runs (the
	// Dist entry points) host one locality per process instead.
	Localities int
	// DCutoff is the Depth-Bounded spawn depth d_cutoff: every node
	// shallower than DCutoff has its children spawned as tasks.
	// Default 1.
	DCutoff int
	// Budget is the backtrack budget k_budget for the Budget
	// coordination. Default 10_000.
	Budget int64
	// Chunked makes Stack-Stealing hand over all nodes at the lowest
	// depth of the victim's stack instead of a single node.
	Chunked bool
	// StealLatency, if positive, is charged by the loopback transport
	// on each steal from a remote locality's pool, simulating network
	// cost. Ignored in multi-process runs, where the network is real.
	StealLatency time.Duration
	// BoundLatency, if positive, delays the loopback transport's
	// delivery of improved bounds to other localities' caches,
	// simulating the PGAS bound broadcast of Section 4.3. Remote
	// workers prune against stale bounds in the meantime — fewer
	// prunes, never incorrect. Ignored in multi-process runs.
	BoundLatency time.Duration
	// StealAhead bounds the per-locality steal-ahead buffer: after a
	// successful remote steal, up to this many further tasks are
	// prefetched in the background while stolen work runs, hiding the
	// steal round-trip latency. 0 selects the default (a buffer of 1
	// wherever steals cost latency: multi-process transports, or the
	// loopback transport with StealLatency injected; disabled on the
	// zero-latency loopback, where a steal is a direct call). Negative
	// disables prefetching entirely.
	StealAhead int
	// StealAheadMax caps the adaptive prefetch pipeline: the most
	// background steals one locality may have outstanding at once.
	// The governor moves the live depth between 1 and this cap by
	// comparing the steal round-trip EWMA with the rate the locality
	// consumes prefetched work, and collapses to 1 whenever a sweep
	// finds every peer empty. 0 selects the default (4); 1 restores
	// strictly single-inflight prefetching. Meaningful only where
	// steal-ahead itself runs (see StealAhead).
	StealAheadMax int
	// Pool selects the workpool implementation. Ignored when Order is
	// set: ordered scheduling requires the priority-bucketed pool.
	Pool PoolKind
	// Order selects the global task-scheduling order (see Order). The
	// default, OrderNone, is the paper's depth-ordered scheduling with
	// random-victim stealing. OrderDiscrepancy and OrderBound switch
	// every pool-based coordination — including the distributed entry
	// points — to priority-bucketed pools, best-priority-first steal
	// service, and priority-aware victim selection, so globally
	// promising subtrees are searched first everywhere. The search
	// result is identical under any order; only which parts of the
	// tree are visited (and therefore pruned) early changes.
	Order Order
	// PoolShards is the number of pool shards per locality. Default 0
	// shards one pool per local worker: owners push and pop on their
	// own uncontended shard, and an idle worker robs sibling shards
	// shallowest-first before paying a transport steal. 1 recreates the
	// single mutex-shared pool per locality (the pre-sharding design,
	// kept as an ablation and oracle reference).
	PoolShards int
	// PoolBudget bounds the memory a locality's workpool may hold, in
	// bytes (tasks × a per-task estimate derived from the node's
	// encoded size). 0, the default, is unbounded. Under a budget the
	// locality responds to pressure in preference order: it advertises
	// itself as a prime steal victim so thieves drain it first, the
	// pool-based coordinations trade spawning for inline expansion
	// (Depth-Bounded expands below the cutoff, Budget stops shedding),
	// and past the hard threshold the coldest tasks — deepest depth, or
	// worst priority under an ordering mode — are spilled to a
	// per-locality disk segment file and re-admitted when the in-RAM
	// pool drains. Spilling is result-invariant: the same nodes are
	// visited, only where the frontier waits changes.
	PoolBudget int64
	// SpillDir is the directory under which spill segment directories
	// are created (os.MkdirTemp, removed when the search ends). Empty
	// uses the OS temp dir. Only meaningful with PoolBudget set.
	SpillDir string
	// NoRecycle disables generator recycling: every expansion calls the
	// GenFactory even for applications whose generators implement
	// ResettableGenerator. Kept as an ablation for measuring the
	// allocation component of the skeleton tax; the result of a search
	// is identical either way.
	NoRecycle bool
	// LedgerCap bounds the supervised-task ledger: the number of
	// handed-over tasks a locality retains (for replay, should the
	// thief die) while awaiting completion acks. At capacity further
	// hand-overs are refused, backpressuring steal traffic. Default
	// 16384.
	LedgerCap int
	// MaxFailures is the locality-death budget of a distributed run
	// (the Dist entry points; single-process searches cannot lose a
	// locality). Deaths within the budget are absorbed: the dead
	// rank's subtree roots are replayed from the survivors' ledgers
	// and the search completes normally. Deaths beyond it make the
	// Dist call return an error alongside its best-effort result.
	// Negative means unlimited tolerance; the zero default tolerates
	// none (any death is reported as an error, though the result is
	// still repaired as far as replay allows).
	MaxFailures int
	// Topology selects how localities exchange steal traffic and detect
	// termination. "" or dist.TopologyStar is the hub-routed star with
	// the coordinator's global live-task count; dist.TopologyMesh has
	// localities steal from each other directly, bounds spread by
	// gossip, and termination detected by a decentralised Safra-style
	// wave. Single-process (loopback) runs honour it too: mesh selects
	// the wave accounting, exercising the same termination machinery a
	// cluster mesh uses. Multi-process runs must configure the same
	// topology on every rank (enforced at registration).
	Topology string
	// Standby arms coordinator failover on a distributed run (wire
	// protocol v7): the coordinator replicates its residual state to
	// the lowest live worker rank, which promotes itself and finishes
	// the search should rank 0 die mid-run. Under Standby rank 0 runs
	// as a pure coordinator — zero local workers — so its death can
	// never strand unsupervised subtrees: every task it ever held was
	// handed over under ledger supervision and is replayed by the
	// survivors. Every rank of a deployment must agree on this flag
	// (enforced by the transport's spec handshake). Coordinator deaths
	// count against MaxFailures like any other. Ignored by
	// single-process runs.
	Standby bool
	// LinkGrace arms resumable links on a distributed run (wire
	// protocol v8): every connection becomes a supervised session with
	// sequence-numbered frames and a bounded retransmit log. A broken
	// connection is kept alive for this grace window — the surviving
	// side parks, the dialing side reconnects and replays the
	// unacknowledged backlog — so a transient partition shorter than
	// the grace heals with zero deaths and zero replayed tasks. A
	// heartbeat-silent peer is first quarantined (suspected: excluded
	// from victim selection, steals against it fail fast) and only
	// mourned once the grace expires on top of the liveness timeout.
	// Zero, the default, disables sessions: any connection loss is a
	// death, as in v7. Every rank must agree on whether sessions are
	// armed (enforced by the transport's spec handshake).
	LinkGrace time.Duration
	// NetFault, if non-nil, injects deterministic network faults
	// (latency, loss, duplication, corruption, partitions — see
	// dist.FaultPlan) into the run's links: the loopback network's
	// in-process calls and, on the coordinator of a distributed run,
	// the wire transport's frames. Testing and experiments only.
	NetFault *dist.FaultPlan
	// Seed seeds victim selection for work stealing. Default 1.
	Seed int64
	// Trace, if non-nil, records every task execution for workload
	// analysis. Create with NewTrace(Workers) and read with Summary
	// after the run.
	Trace *Trace
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Localities <= 0 {
		c.Localities = 1
	}
	if c.Localities > c.Workers {
		c.Localities = c.Workers
	}
	if c.DCutoff <= 0 {
		c.DCutoff = 1
	}
	if c.Budget <= 0 {
		c.Budget = 10_000
	}
	if c.LedgerCap <= 0 {
		c.LedgerCap = 16384
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Order != OrderNone {
		c.Pool = PrioBucketKind
	}
	return c
}
