// Package cli implements the yewpar command-line driver: flag
// parsing, instance loading/generation, skeleton dispatch, and result
// reporting for all seven search applications. It mirrors the paper
// artifact's per-application binaries behind one executable and is
// factored out of package main so the whole surface is testable.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/nqueens"
	"yewpar/internal/apps/semigroups"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/dist"
	"yewpar/internal/graph"
	"yewpar/internal/instances"
)

// Options are the parsed command-line options.
type Options struct {
	App        string
	Skeleton   string
	Workers    int
	Locs       int
	DCutoff    int
	Budget     int64
	Chunked    bool
	StealLat   time.Duration
	BoundLat   time.Duration
	Pool       string
	PoolBudget int64
	SpillDir   string
	Order      string
	// order is Order parsed and validated by ParseArgs; everything
	// downstream (Config, the stats printers) reads this, so a typo'd
	// -order fails at parse time instead of silently degrading to an
	// unordered run.
	order core.Order

	File string
	Gen  string
	N    int
	P    float64
	Seed int64

	KBound   int
	Genus    int
	Items    int
	Cities   int
	PatN     int
	UTSB0    int
	UTSM     int
	UTSQ     float64
	UTSDepth int
	UTSShape string

	ShowStats bool
	TraceRun  bool

	CPUProfile   string
	MemProfile   string
	MutexProfile string
	PprofAddr    string

	Dist        string
	DistAddr    string
	DistWorkers int
	MaxFailures int
	RegTimeout  time.Duration
	Topology    string
	Standby     bool
	LinkGrace   time.Duration
}

// ParseArgs parses command-line arguments into Options.
func ParseArgs(args []string) (*Options, error) {
	o := &Options{}
	fs := flag.NewFlagSet("yewpar", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&o.App, "app", "maxclique", "application: maxclique|kclique|knapsack|tsp|sip|uts|ns|queens")
	fs.StringVar(&o.Skeleton, "skeleton", "seq", "search coordination: seq|depthbounded|stacksteal|budget|bestfirst")
	fs.IntVar(&o.Workers, "workers", 0, "worker count (0 = GOMAXPROCS)")
	fs.IntVar(&o.Locs, "localities", 1, "simulated localities")
	fs.IntVar(&o.DCutoff, "d", 1, "depth-bounded spawn cutoff")
	fs.Int64Var(&o.Budget, "b", 10000, "budget coordination backtrack budget")
	fs.BoolVar(&o.Chunked, "chunked", false, "stack-stealing: steal whole lowest generator")
	fs.DurationVar(&o.StealLat, "steal-latency", 0, "simulated remote-steal latency")
	fs.DurationVar(&o.BoundLat, "bound-latency", 0, "simulated bound-broadcast latency")
	fs.StringVar(&o.Pool, "pool", "depthpool", "workpool: depthpool|deque")
	fs.Int64Var(&o.PoolBudget, "pool-budget", 0, "per-locality workpool memory budget in bytes (0 = unbounded); pressured localities deepen cutoffs and spill cold tasks to disk")
	fs.StringVar(&o.SpillDir, "spill-dir", "", "base directory for -pool-budget spill segments (empty = system temp dir); segments live in a per-run temp subdirectory removed on exit")
	fs.StringVar(&o.Order, "order", "none", "task scheduling order: none|discrepancy|bound")
	fs.StringVar(&o.File, "f", "", "DIMACS .clq input (clique apps; SIP target)")
	fs.StringVar(&o.Gen, "gen", "", "named generated instance (clique apps)")
	fs.IntVar(&o.N, "n", 120, "generator: size")
	fs.Float64Var(&o.P, "p", 0.6, "generator: density")
	fs.Int64Var(&o.Seed, "seed", 1, "generator: seed")
	fs.IntVar(&o.KBound, "decision-bound", 0, "kclique: clique size to find")
	fs.IntVar(&o.Genus, "genus", 16, "ns: genus to count")
	fs.IntVar(&o.Items, "items", 24, "knapsack: item count")
	fs.IntVar(&o.Cities, "cities", 14, "tsp: city count")
	fs.IntVar(&o.PatN, "pattern", 25, "sip: pattern size")
	fs.IntVar(&o.UTSB0, "uts-b0", 2000, "uts: root branching")
	fs.IntVar(&o.UTSM, "uts-m", 6, "uts: non-root branching")
	fs.Float64Var(&o.UTSQ, "uts-q", 0.16, "uts: branch probability")
	fs.IntVar(&o.UTSDepth, "uts-depth", 12, "uts: geometric depth limit")
	fs.StringVar(&o.UTSShape, "uts-shape", "binomial", "uts: binomial|geometric")
	fs.BoolVar(&o.ShowStats, "stats", true, "print search statistics")
	fs.BoolVar(&o.TraceRun, "trace", false, "print a per-task workload summary")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write an end-of-run heap profile to this file")
	fs.StringVar(&o.MutexProfile, "mutexprofile", "", "sample all mutex contention and write the profile to this file")
	fs.StringVar(&o.PprofAddr, "pprof-addr", "", "serve net/http/pprof on this address for live inspection (intended for -dist workers)")
	fs.StringVar(&o.Dist, "dist", "", "multi-process role: coordinator|worker (empty = single process)")
	fs.StringVar(&o.DistAddr, "dist-addr", "127.0.0.1:9967", "coordinator address for -dist")
	fs.IntVar(&o.DistWorkers, "dist-workers", 2, "coordinator: worker processes to wait for")
	fs.IntVar(&o.MaxFailures, "max-failures", -1, "dist: worker deaths tolerated before the run reports an error (-1 = unlimited; deaths are always repaired by subtree replay)")
	fs.DurationVar(&o.RegTimeout, "reg-timeout", 0, "dist coordinator: registration window before missing workers fail the deployment (0 = default)")
	fs.StringVar(&o.Topology, "topology", "star", "steal/termination topology: star (hub-routed, coordinator live count) or mesh (direct peer steals, gossip bounds, termination wave)")
	fs.BoolVar(&o.Standby, "standby", false, "dist: arm coordinator failover — rank 0 runs as a pure coordinator and replicates its state to the lowest worker rank, which takes over and finishes the search if the coordinator dies (all ranks must agree)")
	fs.DurationVar(&o.LinkGrace, "link-grace", 0, "dist: arm resumable links (wire protocol v8) — a broken connection is kept alive for this grace window while the dialing side reconnects and replays unacknowledged frames, so transient partitions shorter than the grace heal with zero deaths (0 = off; all ranks must agree)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch o.Topology {
	case "", dist.TopologyStar, dist.TopologyMesh:
	default:
		return nil, fmt.Errorf("unknown topology %q (want star or mesh)", o.Topology)
	}
	ord, err := ParseOrder(o.Order)
	if err != nil {
		return nil, err
	}
	o.order = ord
	return o, nil
}

// ParseOrder maps an -order flag value to a core.Order.
func ParseOrder(s string) (core.Order, error) {
	switch s {
	case "", "none":
		return core.OrderNone, nil
	case "discrepancy", "disc":
		return core.OrderDiscrepancy, nil
	case "bound":
		return core.OrderBound, nil
	}
	return 0, fmt.Errorf("unknown order %q (want none, discrepancy or bound)", s)
}

// ParseSkeleton maps a skeleton name to a Coordination.
func ParseSkeleton(s string) (core.Coordination, error) {
	switch s {
	case "seq", "sequential":
		return core.Sequential, nil
	case "depthbounded":
		return core.DepthBounded, nil
	case "stacksteal", "stackstealing":
		return core.StackStealing, nil
	case "budget":
		return core.Budget, nil
	}
	return 0, fmt.Errorf("unknown skeleton %q", s)
}

// Config builds the core.Config from the options.
func (o *Options) Config() core.Config {
	cfg := core.Config{
		Workers:      o.Workers,
		Localities:   o.Locs,
		DCutoff:      o.DCutoff,
		Budget:       o.Budget,
		Chunked:      o.Chunked,
		StealLatency: o.StealLat,
		BoundLatency: o.BoundLat,
	}
	if o.Pool == "deque" {
		cfg.Pool = core.DequeKind
	}
	cfg.PoolBudget = o.PoolBudget
	cfg.SpillDir = o.SpillDir
	cfg.Order = o.order
	cfg.MaxFailures = o.MaxFailures
	cfg.Topology = o.Topology
	cfg.Standby = o.Standby
	cfg.LinkGrace = o.LinkGrace
	return cfg
}

// LoadGraph resolves the graph input: a DIMACS file, a named
// instance, or a generated G(n, p).
func LoadGraph(o *Options) (*graph.Graph, error) {
	if o.File != "" {
		f, err := os.Open(o.File)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ParseDIMACS(f)
	}
	if o.Gen != "" {
		for _, inst := range instances.Table1() {
			if inst.Name == o.Gen {
				return inst.Gen(), nil
			}
		}
		if o.Gen == "spreads_H44" {
			g, _ := instances.SpreadsH44Like()
			return g, nil
		}
		return nil, fmt.Errorf("unknown instance %q", o.Gen)
	}
	return graph.Random(o.N, o.P, o.Seed), nil
}

// Run executes the selected application and writes a human-readable
// report to w. Profile hooks (-cpuprofile and friends) bracket the
// whole run, including the distributed roles — a -dist worker with
// -pprof-addr serves live pprof for its entire lifetime.
func Run(args []string, w io.Writer) (err error) {
	o, err := ParseArgs(args)
	if err != nil {
		return err
	}
	stopProf, err := startProfiles(o)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if o.Dist != "" {
		return RunDist(o, w)
	}
	coord, err := ParseSkeleton(o.Skeleton)
	if err != nil {
		if o.Skeleton == "bestfirst" {
			return runBestFirst(o, w)
		}
		return err
	}
	cfg := o.Config()
	var trace *core.Trace
	if o.TraceRun {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		trace = core.NewTrace(workers)
		cfg.Trace = trace
	}

	start := time.Now()
	var stats core.Stats
	switch o.App {
	case "maxclique":
		g, err := LoadGraph(o)
		if err != nil {
			return err
		}
		clique, st := maxclique.Solve(g, coord, cfg)
		stats = st
		fmt.Fprintf(w, "maximum clique size: %d\n", clique.Count())
	case "kclique":
		g, err := LoadGraph(o)
		if err != nil {
			return err
		}
		if o.KBound <= 0 {
			return fmt.Errorf("kclique requires -decision-bound k > 0")
		}
		_, found, st := maxclique.Decide(g, o.KBound, coord, cfg)
		stats = st
		fmt.Fprintf(w, "%d-clique exists: %v\n", o.KBound, found)
	case "knapsack":
		s := knapsack.Generate(o.Items, 10_000, knapsack.SubsetSum, o.Seed)
		profit, st := knapsack.Solve(s, coord, cfg)
		stats = st
		fmt.Fprintf(w, "optimal profit: %d (items=%d cap=%d)\n", profit, len(s.Items), s.Cap)
	case "tsp":
		s := tsp.GenerateEuclidean(o.Cities, 1000, o.Seed)
		cost, st := tsp.Solve(s, coord, cfg)
		stats = st
		fmt.Fprintf(w, "optimal tour cost: %d (%d cities)\n", cost, s.N)
	case "sip":
		var s *sip.Space
		if o.File != "" {
			g, err := LoadGraph(o)
			if err != nil {
				return err
			}
			vs := make([]int, min(o.PatN, g.N))
			for i := range vs {
				vs[i] = i
			}
			pat, _ := g.InducedSubgraph(vs)
			s = sip.NewSpace(pat, g)
		} else {
			s = sip.GenerateSat(o.N, o.P, o.PatN, 0.2, o.Seed)
		}
		_, found, st := sip.Solve(s, coord, cfg)
		stats = st
		fmt.Fprintf(w, "pattern (%d vertices) found in target (%d vertices): %v\n", s.P.N, s.T.N, found)
	case "uts":
		s := &uts.Space{B0: o.UTSB0, M: o.UTSM, Q: o.UTSQ, MaxDepth: o.UTSDepth, Seed: o.Seed}
		if o.UTSShape == "geometric" {
			s.Shape = uts.Geometric
		}
		count, st := uts.Count(s, coord, cfg)
		stats = st
		fmt.Fprintf(w, "tree size: %d\n", count)
	case "ns":
		count, st := semigroups.Count(o.Genus, coord, cfg)
		stats = st
		fmt.Fprintf(w, "numerical semigroups of genus %d: %d\n", o.Genus, count)
	case "queens":
		count, st := nqueens.Count(o.N, coord, cfg)
		stats = st
		fmt.Fprintf(w, "%d-queens solutions: %d\n", o.N, count)
	default:
		return fmt.Errorf("unknown app %q", o.App)
	}

	if o.ShowStats {
		fmt.Fprintf(w, "skeleton=%s workers=%d localities=%d elapsed=%v\n",
			coord, stats.Workers, o.Locs, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(w, "nodes=%d prunes=%d spawns=%d steals=%d/%d local-steals=%d backtracks=%d broadcasts=%d\n",
			stats.Nodes, stats.Prunes, stats.Spawns, stats.StealsOK,
			stats.StealsOK+stats.StealsFail, stats.LocalSteals, stats.Backtracks, stats.Broadcasts)
		if o.order != core.OrderNone {
			fmt.Fprintf(w, "order=%s ordered-steals=%d prio-hist=%v\n",
				o.order, stats.OrderedSteals, stats.PrioHist)
		}
		if stats.Frames > 0 {
			fmt.Fprintf(w, "wire: frames=%d bytes=%d batch=%.2f prefetch-hits=%d (%.0f%%)\n",
				stats.Frames, stats.WireBytes, stats.BatchOccupancy(),
				stats.PrefetchHits, 100*stats.PrefetchHitRate())
		}
		if stats.PoolPeakTasks > 0 || stats.SpilledTasks > 0 {
			fmt.Fprintf(w, "mem: pool-peak=%d tasks (%d bytes est) spilled=%d tasks (%d bytes)\n",
				stats.PoolPeakTasks, stats.PoolPeakBytes, stats.SpilledTasks, stats.SpillBytes)
		}
	}
	if trace != nil {
		fmt.Fprint(w, trace.Summary())
	}
	return nil
}

// runBestFirst handles the -skeleton bestfirst extension, available
// for the optimisation applications.
func runBestFirst(o *Options, w io.Writer) error {
	cfg := o.Config()
	switch o.App {
	case "maxclique":
		g, err := LoadGraph(o)
		if err != nil {
			return err
		}
		s := maxclique.NewSpace(g)
		res := core.BestFirstOpt(s, maxclique.Root(s), maxclique.OptProblem(), cfg)
		fmt.Fprintf(w, "maximum clique size: %d (best-first)\n", res.Objective)
	case "knapsack":
		s := knapsack.Generate(o.Items, 10_000, knapsack.SubsetSum, o.Seed)
		res := core.BestFirstOpt(s, knapsack.Root(s), knapsack.OptProblem(), cfg)
		fmt.Fprintf(w, "optimal profit: %d (best-first)\n", res.Objective)
	case "tsp":
		s := tsp.GenerateEuclidean(o.Cities, 1000, o.Seed)
		res := core.BestFirstOpt(s, tsp.Root(s), tsp.OptProblem(), cfg)
		fmt.Fprintf(w, "optimal tour cost: %d (best-first)\n", -res.Objective)
	default:
		return fmt.Errorf("bestfirst supports optimisation apps only, not %q", o.App)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
