package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the Stack-Stealing coordination over the engine
// substrate — the form that distributes. The classic single-process
// runStackStealing (stacksteal.go) rendezvouses thieves and victims
// over shared-memory channels; here the same (spawn-stack) rule is
// served on demand through the locality fabric: an idle worker first
// drains its locality's pool, then asks a local running sibling to
// split, and finally sends a kSplit over the transport, which the
// victim locality answers by splitting the bottom of one of its
// workers' live generator stacks and exporting the node(s) through the
// ordinary hand-over (ledger + codec) path. That makes
// `-skeleton stacksteal -dist` legal — the one hole in the distributed
// coordination matrix — and gives memory-starved localities a way to
// pull work that was never materialised as tasks.

const (
	// splitServeWait bounds how long a transport-serving goroutine
	// waits for a running worker to answer a remote kSplit. Workers
	// poll their gate every expansion step, so the wait only runs out
	// when the locality went idle after the request was posted.
	splitServeWait = 10 * time.Millisecond
	// splitLocalWait bounds an idle worker's wait on its own locality's
	// gate before falling through to the transport ring.
	splitLocalWait = 2 * time.Millisecond
	// splitWant is the default cap on tasks per split hand-over; the
	// victim donates one node unless Chunked, which donates the whole
	// lowest stack level up to this cap.
	splitWant = 64
)

// splitGate is one locality's rendezvous between work-starved thieves
// and its running workers' live generator stacks. Thieves post
// requests; every running worker polls the gate once per expansion
// step (one atomic load when idle) and the first to claim a request —
// a CAS, so a timed-out requester can abandon it instead — answers
// with the split of its own stack.
type splitGate[N any] struct {
	mu      sync.Mutex
	reqs    []*splitReq[N]
	pending atomic.Int64 // len(reqs): the workers' poll fast path
	active  atomic.Int64 // workers currently running a task
}

type splitReq[N any] struct {
	max     int
	claimed atomic.Bool
	resp    chan []Task[N] // buffered 1; sent exactly once, by the claimant
}

// splittable reports whether any worker currently holds a live stack.
func (g *splitGate[N]) splittable() bool { return g.active.Load() > 0 }

// request posts a split request and waits for a running worker to
// answer. Returns nil when the locality has no running workers, no
// worker answered within wait, or abort fired first. The returned
// tasks are registered live work owned by the caller.
func (g *splitGate[N]) request(max int, wait time.Duration, abort <-chan struct{}) []Task[N] {
	if g.active.Load() == 0 {
		return nil
	}
	req := &splitReq[N]{max: max, resp: make(chan []Task[N], 1)}
	g.mu.Lock()
	g.reqs = append(g.reqs, req)
	g.pending.Store(int64(len(g.reqs)))
	g.mu.Unlock()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case ts := <-req.resp:
		return ts
	case <-timer.C:
	case <-abort:
	}
	if req.claimed.CompareAndSwap(false, true) {
		return nil // abandoned before any worker claimed it
	}
	// A worker won the claim race; its answer is imminent and carries
	// registered tasks that must not be dropped.
	return <-req.resp
}

// take claims one pending request, skipping abandoned ones. Callers
// that get a request MUST send on its resp channel exactly once.
func (g *splitGate[N]) take() *splitReq[N] {
	if g.pending.Load() == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.reqs) > 0 {
		req := g.reqs[0]
		g.reqs = g.reqs[1:]
		g.pending.Store(int64(len(g.reqs)))
		if req.claimed.CompareAndSwap(false, true) {
			return req
		}
	}
	return nil
}

// enter and exit bracket a worker running a task. The last worker out
// answers every pending request with nothing, so thieves are not left
// waiting out their timeout against a locality that just went idle.
func (g *splitGate[N]) enter() { g.active.Add(1) }

func (g *splitGate[N]) exit() {
	if g.active.Add(-1) > 0 {
		return
	}
	for {
		req := g.take()
		if req == nil {
			return
		}
		req.resp <- nil
	}
}

// installSplitGates equips every in-process locality with a split gate,
// making its locState answer dist.StackSplitter requests. Must run
// before the fabric starts serving peers.
func (e *engine[S, N]) installSplitGates() {
	e.topo.splitters = make([]*splitGate[N], len(e.fab.locs))
	for i, loc := range e.fab.locs {
		g := &splitGate[N]{}
		e.topo.splitters[i] = g
		loc.split = g
	}
}

// runStackStealDist runs the Stack-Stealing coordination on the pool
// engine. Each task is searched depth-first in place — no proactive
// spawning at all — and work moves only when a thief asks: the gate
// poll at the top of the expansion loop answers local siblings and
// remote kSplit requests alike by splitting the bottom-most
// non-exhausted generator (Listing 3's (spawn-stack) rule; all
// remaining nodes of that level under cfg.Chunked).
func runStackStealDist[S, N any](e *engine[S, N], visitors []visitor[N], root N) {
	if e.topo.splitters == nil {
		e.installSplitGates()
	}
	chunked := e.cfg.Chunked
	e.runPoolWorkers(root, visitors, func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
		gate := e.topo.splitters[e.topo.locality(w)]
		gate.enter()
		defer gate.exit()
		defer e.finishTask(w, t)
		if e.cancel.cancelled() {
			return
		}
		if v.visit(t.Node) != descend {
			return
		}
		gc := e.caches[w]
		sc := e.scratch[w]
		stack := sc.stack[:0]
		disc := sc.disc[:0]
		yields := sc.yields[:0]
		defer func() {
			sc.stack, sc.disc, sc.yields = stack[:0], disc, yields
		}()
		stack = append(stack, gc.gen(0, t.Node))
		disc = append(disc, t.Prio)
		yields = append(yields, 0)
		for len(stack) > 0 {
			if e.cancel.cancelled() {
				return
			}
			if req := gate.take(); req != nil {
				req.resp <- splitStack(e, w, sh, &t, stack, disc, yields, req.max, chunked)
			}
			top := len(stack) - 1
			g := stack[top]
			if !g.HasNext() {
				stack[top] = nil
				stack = stack[:top]
				disc = disc[:top]
				yields = yields[:top]
				sh.Backtracks++
				continue
			}
			child := g.Next()
			childIdx := yields[top]
			yields[top]++
			switch v.visit(child) {
			case descend:
				stack = append(stack, gc.gen(len(stack), child))
				disc = append(disc, discChild(disc[top], int(childIdx)))
				yields = append(yields, 0)
			case pruneLevel:
				stack[top] = nil
				stack = stack[:top]
				disc = disc[:top]
				yields = yields[:top]
				sh.Backtracks++
			}
		}
	})
}

// splitStack donates work from the bottom of a live generator stack:
// the lowest level with unexplored nodes — heuristically the largest
// pending subtrees — yields its next node, or all its remaining nodes
// (capped at max) under chunking. Donated tasks are registered exactly
// as spawnTask would, but handed to the requester instead of pushed:
// the requester runs them locally or exports them over the wire.
func splitStack[S, N any](e *engine[S, N], w int, sh *WorkerStats, t *Task[N], stack []NodeGenerator[N], disc, yields []int32, max int, chunked bool) []Task[N] {
	if !chunked || max < 1 {
		max = 1
	}
	loc := e.topo.locality(w)
	var out []Task[N]
	for i := 0; i < len(stack); i++ {
		for stack[i].HasNext() && len(out) < max {
			child := stack[i].Next()
			nt := Task[N]{
				Node:  child,
				Depth: t.Depth + i + 1,
				Prio:  e.prio.childPrio(disc[i], int(yields[i]), child),
				fam:   t.fam,
			}
			yields[i]++
			e.fab.trs[loc].AddTasks(1)
			if nt.fam != nil {
				nt.fam.pending.Add(1)
			}
			sh.Spawns++
			if e.ordered {
				sh.notePrio(nt.Prio)
			}
			out = append(out, nt)
		}
		if len(out) > 0 {
			return out // (spawn-stack): only the lowest non-exhausted level donates
		}
	}
	return nil
}
