package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Trace records per-worker task executions for workload analysis: how
// irregular the tasks were, how busy each worker was, and where the
// spawned work sat in the tree. It is the measurement substrate for
// the kind of workload studies the paper defers to its companion
// implementation paper [5]. Collection is worker-local (no locks on
// the hot path) and costs two clock reads per task.
//
// Enable by setting Config.Trace to NewTrace(workers) before a run;
// read results with Summary after the skeleton returns.
type Trace struct {
	start  time.Time
	shards []traceShard
}

type traceShard struct {
	events []TaskEvent
	_      [4]int64 // avoid false sharing between workers
}

// TaskEvent is one executed task.
type TaskEvent struct {
	Worker int
	Depth  int
	Start  time.Duration // since trace creation
	End    time.Duration
}

// Duration returns the task's execution time.
func (e TaskEvent) Duration() time.Duration { return e.End - e.Start }

// NewTrace returns a trace for the given worker count.
func NewTrace(workers int) *Trace {
	return &Trace{start: time.Now(), shards: make([]traceShard, workers)}
}

func (t *Trace) record(worker, depth int, start, end time.Time) {
	sh := &t.shards[worker]
	sh.events = append(sh.events, TaskEvent{
		Worker: worker,
		Depth:  depth,
		Start:  start.Sub(t.start),
		End:    end.Sub(t.start),
	})
}

// Events returns all recorded events, ordered by start time. Call only
// after the traced run has finished.
func (t *Trace) Events() []TaskEvent {
	var all []TaskEvent
	for i := range t.shards {
		all = append(all, t.shards[i].events...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}

// Summary aggregates a finished trace.
type Summary struct {
	Workers     int
	Tasks       int
	Makespan    time.Duration   // last end - first start
	TotalBusy   time.Duration   // Σ task durations
	Utilisation float64         // TotalBusy / (Workers × Makespan)
	MinTask     time.Duration   // smallest task
	MaxTask     time.Duration   // largest task
	MedianTask  time.Duration   // median task
	PerWorker   []time.Duration // busy time per worker
	DepthCount  map[int]int     // tasks per spawn depth
}

// Summary computes aggregate workload statistics. Call only after the
// traced run has finished.
func (t *Trace) Summary() Summary {
	s := Summary{Workers: len(t.shards), DepthCount: map[int]int{}}
	s.PerWorker = make([]time.Duration, len(t.shards))
	var durations []time.Duration
	var first, last time.Duration
	firstSet := false
	for w := range t.shards {
		for _, e := range t.shards[w].events {
			d := e.Duration()
			durations = append(durations, d)
			s.TotalBusy += d
			s.PerWorker[w] += d
			s.DepthCount[e.Depth]++
			if !firstSet || e.Start < first {
				first, firstSet = e.Start, true
			}
			if e.End > last {
				last = e.End
			}
		}
	}
	s.Tasks = len(durations)
	if s.Tasks == 0 {
		return s
	}
	s.Makespan = last - first
	if s.Makespan > 0 {
		s.Utilisation = float64(s.TotalBusy) / (float64(s.Makespan) * float64(s.Workers))
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	s.MinTask = durations[0]
	s.MaxTask = durations[len(durations)-1]
	s.MedianTask = durations[len(durations)/2]
	return s
}

// Gantt renders the trace as a per-worker ASCII timeline, width
// columns wide: '#' marks time spent executing tasks, '.' idle time.
// A quick visual for load imbalance (ragged right edges) and
// serialisation (staircases).
func (t *Trace) Gantt(width int) string {
	events := t.Events()
	if len(events) == 0 || width <= 0 {
		return "(no tasks traced)\n"
	}
	first, last := events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
	}
	span := last - first
	if span <= 0 {
		span = 1
	}
	rows := make([][]byte, len(t.shards))
	for w := range rows {
		rows[w] = []byte(strings.Repeat(".", width))
	}
	for _, e := range events {
		lo := int(int64(e.Start-first) * int64(width) / int64(span))
		hi := int(int64(e.End-first) * int64(width) / int64(span))
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			rows[e.Worker][c] = '#'
		}
	}
	var b strings.Builder
	for w, row := range rows {
		fmt.Fprintf(&b, "w%02d |%s|\n", w, row)
	}
	fmt.Fprintf(&b, "     0%*s\n", width, span.Round(time.Microsecond).String())
	return b.String()
}

// String renders the summary as a small report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks=%d makespan=%v utilisation=%.1f%%\n",
		s.Tasks, s.Makespan.Round(time.Microsecond), 100*s.Utilisation)
	fmt.Fprintf(&b, "task sizes: min=%v median=%v max=%v\n",
		s.MinTask.Round(time.Microsecond), s.MedianTask.Round(time.Microsecond), s.MaxTask.Round(time.Microsecond))
	var depths []int
	for d := range s.DepthCount {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	b.WriteString("tasks per depth:")
	for _, d := range depths {
		fmt.Fprintf(&b, " %d:%d", d, s.DepthCount[d])
	}
	b.WriteByte('\n')
	return b.String()
}
