package knapsack

import (
	"math/rand"
	"testing"

	"yewpar/internal/core"
)

func sampleNodes(s *Space, count int, rng *rand.Rand) []Node {
	nodes := []Node{Root(s)}
	for len(nodes) < count {
		n := Root(s)
		for {
			nodes = append(nodes, n)
			g := Gen(s, n)
			var kids []Node
			for g.HasNext() {
				kids = append(kids, g.Next())
			}
			if len(kids) == 0 {
				break
			}
			n = kids[rng.Intn(len(kids))]
		}
	}
	return nodes[:count]
}

func TestCodecRoundTripMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := Generate(40, 10_000, StronglyCorrelated, 5)
	compact := Codec()
	gobc := core.GobCodec[Node]{}
	for i, n := range sampleNodes(s, 300, rng) {
		cb, err := compact.Encode(n)
		if err != nil {
			t.Fatalf("node %d: compact encode: %v", i, err)
		}
		cv, err := compact.Decode(cb)
		if err != nil {
			t.Fatalf("node %d: compact decode: %v", i, err)
		}
		gb, err := gobc.Encode(n)
		if err != nil {
			t.Fatalf("node %d: gob encode: %v", i, err)
		}
		gv, err := gobc.Decode(gb)
		if err != nil {
			t.Fatalf("node %d: gob decode: %v", i, err)
		}
		if cv != n {
			t.Fatalf("node %d: compact round trip mutated the node: %+v != %+v", i, cv, n)
		}
		if cv != gv {
			t.Fatalf("node %d: compact %+v and gob %+v disagree", i, cv, gv)
		}
		if len(cb) >= len(gb) {
			t.Errorf("node %d: compact form (%dB) not smaller than gob (%dB)", i, len(cb), len(gb))
		}
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	b, err := Codec().Encode(Node{Pos: 17, Profit: 123456, Weight: 99999})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := Codec().Decode(b[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", cut, len(b))
		}
	}
}
