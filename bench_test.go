package yewpar

// One benchmark per table/figure of the paper's evaluation section,
// plus the design-choice ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1SeqOverhead  — Table 1 columns 2-4 (sequential overhead)
// BenchmarkTable1ParOverhead  — Table 1 columns 5-7 (parallel overhead)
// BenchmarkFigure4Scaling     — Figure 4 (k-clique locality scaling)
// BenchmarkTable2             — Table 2 (app × skeleton speedups)
// BenchmarkAblationPoolOrder  — order-preserving pool vs deque
// BenchmarkAblationBoundLatency — stale-bound tolerance
//
// Benchmarks use the mid-sized instances so a full -bench=. pass stays
// in minutes; cmd/experiments runs the full row sets.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/semigroups"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/graph"
	"yewpar/internal/instances"
)

func TestMain(m *testing.M) {
	// Same GC headroom as the cmd/ harnesses: without it the
	// collector, not the search, dominates parallel benchmarks.
	debug.SetGCPercent(800)
	os.Exit(m.Run())
}

func benchWorkers() int {
	w := runtime.GOMAXPROCS(0) - 1
	if w < 1 {
		w = 1
	}
	return w
}

// table1Bench are the Table 1 instances small enough to iterate under
// the default benchtime.
var table1Bench = []string{"brock400_1", "brock400_4", "san400_0.9_1", "sanr400_0.7", "p_hat700-2"}

func table1Graph(name string) *graph.Graph {
	for _, inst := range instances.Table1() {
		if inst.Name == name {
			return inst.Gen()
		}
	}
	panic("unknown instance " + name)
}

func BenchmarkTable1SeqOverhead(b *testing.B) {
	for _, name := range table1Bench {
		g := table1Graph(name)
		b.Run(name+"/handcoded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.SeqHandcoded(g)
			}
		})
		b.Run(name+"/yewpar-seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.Sequential, core.Config{})
			}
		})
	}
}

func BenchmarkTable1ParOverhead(b *testing.B) {
	w := benchWorkers()
	if w > 15 {
		w = 15 // the paper's 15-worker single-locality setting
	}
	for _, name := range table1Bench {
		g := table1Graph(name)
		b.Run(fmt.Sprintf("%s/handcoded-par-%dw", name, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.ParHandcoded(g, w)
			}
		})
		b.Run(fmt.Sprintf("%s/yewpar-depthbounded-%dw", name, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.DepthBounded, core.Config{Workers: w, DCutoff: 1})
			}
		})
	}
}

func BenchmarkFigure4Scaling(b *testing.B) {
	g, omega := instances.SpreadsH44Like()
	k := omega + 1 // unsatisfiable: forces full pruned-tree search
	skels := []struct {
		name  string
		coord core.Coordination
		cfg   core.Config
	}{
		{"depthbounded-d2", core.DepthBounded, core.Config{DCutoff: 2}},
		{"stacksteal-chunked", core.StackStealing, core.Config{Chunked: true}},
		// paper: b=1e7 on an hours-scale instance; budget scales with
		// instance size, so the seconds-scale stand-in uses 1e5.
		{"budget-1e5", core.Budget, core.Config{Budget: 100_000}},
	}
	maxL := benchWorkers()
	for _, sk := range skels {
		for _, locs := range []int{1, 2, 4, 8, 16, 17} {
			if locs > maxL {
				continue // cannot place one worker per locality
			}
			cfg := sk.cfg
			cfg.Localities = locs
			cfg.Workers = locs
			b.Run(fmt.Sprintf("%s/loc=%d", sk.name, locs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, found, _ := maxclique.Decide(g, k, sk.coord, cfg); found {
						b.Fatal("impossible clique found")
					}
				}
			})
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	w := benchWorkers()
	cliqueSpace := maxclique.NewSpace(instances.Table2Clique()[0].Gen())
	knap := instances.Table2Knapsack()[0]
	tspS := instances.Table2TSP()[0]
	sipS := instances.Table2SIP()[0]
	utsS := instances.Table2UTS()[0]
	nsG := instances.Table2NS()[0]

	type cfgCase struct {
		name  string
		coord core.Coordination
		cfg   core.Config
	}
	cases := []cfgCase{
		{"seq", core.Sequential, core.Config{}},
		{"depthbounded", core.DepthBounded, core.Config{Workers: w, DCutoff: 2}},
		{"stacksteal", core.StackStealing, core.Config{Workers: w, Chunked: true}},
		{"budget", core.Budget, core.Config{Workers: w, Budget: 10_000}},
	}
	for _, c := range cases {
		b.Run("MaxClique/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Opt(c.coord, cliqueSpace, maxclique.Root(cliqueSpace), maxclique.OptProblem(), c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("Knapsack/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				knapsack.Solve(knap, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("TSP/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tsp.Solve(tspS, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("SIP/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sip.Solve(sipS, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("NS/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				semigroups.Count(nsG, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("UTS/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				uts.Count(utsS, c.coord, c.cfg)
			}
		})
	}
}

func BenchmarkAblationPoolOrder(b *testing.B) {
	g := table1Graph("p_hat300-3")
	w := benchWorkers()
	for _, pool := range []struct {
		name string
		kind core.PoolKind
	}{{"depthpool", core.DepthPoolKind}, {"deque", core.DequeKind}} {
		b.Run(pool.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.DepthBounded,
					core.Config{Workers: w, DCutoff: 2, Pool: pool.kind})
			}
		})
	}
}

func BenchmarkAblationVertexOrder(b *testing.B) {
	// Natural input order vs degeneracy relabelling: the preprocessing
	// the clique literature applies before branch and bound.
	g := table1Graph("sanr400_0.7")
	b.Run("natural", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			maxclique.Solve(g, core.Sequential, core.Config{})
		}
	})
	b.Run("degeneracy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _ := maxclique.NewSpaceDegeneracy(g)
			core.Opt(core.Sequential, s, maxclique.Root(s), maxclique.OptProblem(), core.Config{})
		}
	})
}

func BenchmarkAblationBoundLatency(b *testing.B) {
	g := table1Graph("p_hat300-3")
	w := benchWorkers()
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		b.Run(lat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.DepthBounded,
					core.Config{Workers: w, Localities: 4, DCutoff: 2, BoundLatency: lat})
			}
		})
	}
}
