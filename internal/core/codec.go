package core

import (
	"bytes"
	"encoding/gob"
)

// Codec serialises application search-tree nodes for wire transports.
// Single-process runs never invoke it — the loopback transport passes
// nodes by reference — so applications only provide one to enable the
// multi-process distributed mode.
//
// Encode and Decode must be inverses and safe for concurrent use
// (transports serve steals from their receive goroutines). EncodeTo is
// the append-style fast path used by the engine when filling steal
// replies: it appends n's encoding to dst and returns the extended
// slice, so hot codecs can encode straight into a batch buffer without
// an intermediate allocation. EncodeTo(nil, n) must be equivalent to
// Encode(n).
type Codec[N any] interface {
	Encode(n N) ([]byte, error)
	EncodeTo(dst []byte, n N) ([]byte, error)
	Decode(b []byte) (N, error)
}

// GobCodec is the fallback Codec: encoding/gob over the node value. It
// works for any node whose meaningful state is reachable through
// exported fields or GobEncoder/GobDecoder implementations. Each node
// is a self-describing gob stream, which is robust but not compact;
// the applications shipped here all provide hand-written compact
// codecs instead (see each package's Codec function), and new
// applications with hot distributed paths should too.
type GobCodec[N any] struct{}

// Encode implements Codec.
func (GobCodec[N]) Encode(n N) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeTo implements Codec. Gob must own its stream, so this is
// Encode plus a copy — one reason hand-written codecs win on the wire.
func (c GobCodec[N]) EncodeTo(dst []byte, n N) ([]byte, error) {
	b, err := c.Encode(n)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// Decode implements Codec.
func (GobCodec[N]) Decode(b []byte) (N, error) {
	var n N
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&n)
	return n, err
}

// FuncCodec adapts a set of functions to a Codec, for applications
// that prefer a compact hand-rolled node encoding without a dedicated
// type. At least one of Enc and AppendEnc must be set.
type FuncCodec[N any] struct {
	Enc       func(N) ([]byte, error)
	AppendEnc func([]byte, N) ([]byte, error) // optional append-style path
	Dec       func([]byte) (N, error)
}

// Encode implements Codec.
func (c FuncCodec[N]) Encode(n N) ([]byte, error) {
	if c.Enc != nil {
		return c.Enc(n)
	}
	return c.AppendEnc(nil, n)
}

// EncodeTo implements Codec, falling back to Enc-and-append when no
// AppendEnc is provided.
func (c FuncCodec[N]) EncodeTo(dst []byte, n N) ([]byte, error) {
	if c.AppendEnc != nil {
		return c.AppendEnc(dst, n)
	}
	b, err := c.Enc(n)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// Decode implements Codec.
func (c FuncCodec[N]) Decode(b []byte) (N, error) { return c.Dec(b) }
