// Quickstart: composing a YewPar search application (the paper's
// Listing 5 in Go). A search application = a search skeleton (search
// coordination × search type) + an application-specific Lazy Node
// Generator. Exploring an alternate parallelisation is a one-line
// change: swap the coordination constant.
package main

import (
	"fmt"

	"yewpar/internal/apps/maxclique"
	"yewpar/internal/core"
	"yewpar/internal/graph"
)

func main() {
	// The search space: a random graph with a hidden 14-clique.
	g, planted := graph.PlantedClique(130, 0.62, 14, 7)
	fmt.Printf("searching %v (planted clique of %d)\n\n", g, len(planted))

	space := maxclique.NewSpace(g)
	root := maxclique.Root(space)

	// Compose: StackStealing coordination × Optimisation search type
	// × the MaxClique Lazy Node Generator + bound function.
	// (cf. Listing 5: StackStealing<Gen, Optimisation, BoundFunction>)
	result := core.Opt(core.StackStealing, space, root, core.OptProblem[*maxclique.Space, maxclique.Node]{
		Gen:       maxclique.Gen,        // lazy node generator
		Objective: maxclique.Objective,  // value to maximise
		Bound:     maxclique.UpperBound, // enables (prune)
	}, core.Config{Workers: 8})

	fmt.Printf("maximum clique: %v (size %d)\n", result.Best.Clique, result.Objective)
	fmt.Printf("visited %d nodes, pruned %d subtrees, %d steals\n\n",
		result.Stats.Nodes, result.Stats.Prunes, result.Stats.StealsOK)

	// Exploring alternate parallelisations is one changed line each:
	for _, coord := range []core.Coordination{core.Sequential, core.DepthBounded, core.Budget} {
		r := core.Opt(coord, space, root, core.OptProblem[*maxclique.Space, maxclique.Node]{
			Gen: maxclique.Gen, Objective: maxclique.Objective, Bound: maxclique.UpperBound,
		}, core.Config{Workers: 8, DCutoff: 2, Budget: 10_000})
		fmt.Printf("%-13s -> clique %d in %8v (%d nodes)\n",
			coord, r.Objective, r.Stats.Elapsed.Round(1000), r.Stats.Nodes)
	}
}
