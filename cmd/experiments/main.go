// Command experiments regenerates every table and figure of the
// paper's evaluation section on the simulated-locality runtime:
//
//	experiments -table1     YewPar vs hand-coded MaxClique overheads
//	experiments -fig4       k-clique scaling across localities
//	experiments -table2     18 alternate parallelisations (sweep)
//	experiments -ablation   pool-order and bound-latency ablations
//	experiments -all        everything
//
// Absolute times are host- and scale-dependent; the quantities the
// paper's claims rest on (relative slowdowns, speedup shapes, which
// skeleton wins where) are printed in the paper's row format. See
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/semigroups"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/graph"
	"yewpar/internal/instances"
)

var (
	flagTable1     = flag.Bool("table1", false, "run the Table 1 overhead comparison")
	flagOrdered    = flag.Bool("ordered", false, "run the ordered-scheduling (discrepancy/bound) experiment")
	flagFig4       = flag.Bool("fig4", false, "run the Figure 4 scaling experiment")
	flagTable2     = flag.Bool("table2", false, "run the Table 2 parallelisation sweep")
	flagAblation   = flag.Bool("ablation", false, "run the pool/latency ablations")
	flagReplicable = flag.Bool("replicable", false, "run the anomaly/replicability demonstration")
	flagAll        = flag.Bool("all", false, "run everything")
	flagQuick      = flag.Bool("quick", false, "fewer repetitions / smaller sweeps")
	flagRuns       = flag.Int("runs", 3, "repetitions per measurement (median reported)")
	flagWorkers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS-1, min 1)")
	flagWPL        = flag.Int("wpl", 1, "figure 4: workers per locality")
	flagCPUProf    = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	flagMemProf    = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flagMutexProf  = flag.String("mutexprofile", "", "sample all mutex contention and write the profile to this file")
)

func main() {
	// Exact search materialises millions of short-lived tree nodes per
	// second across all workers; at the default GOGC the collector
	// consumes a large share of the machine. Give it headroom — the
	// paper's C++/HPX baseline pays no GC at all.
	debug.SetGCPercent(800)
	flag.Parse()
	if *flagAll {
		*flagTable1, *flagFig4, *flagTable2, *flagAblation, *flagReplicable, *flagOrdered = true, true, true, true, true, true
	}
	if !*flagTable1 && !*flagFig4 && !*flagTable2 && !*flagAblation && !*flagReplicable && !*flagOrdered {
		flag.Usage()
		return
	}
	if *flagQuick {
		*flagRuns = 1
	}
	if *flagWorkers <= 0 {
		*flagWorkers = runtime.GOMAXPROCS(0) - 1
		if *flagWorkers < 1 {
			*flagWorkers = 1
		}
	}
	fmt.Printf("host: %d cores; parallel workers: %d; runs per point: %d\n\n",
		runtime.NumCPU(), *flagWorkers, *flagRuns)
	if *flagCPUProf != "" {
		f, err := os.Create(*flagCPUProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *flagMutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *flagMutexProf)
	}
	if *flagMemProf != "" {
		path := *flagMemProf
		defer func() {
			runtime.GC()
			writeProfile("heap", path)
		}()
	}
	if *flagTable1 {
		table1()
	}
	if *flagFig4 {
		figure4()
	}
	if *flagTable2 {
		table2()
	}
	if *flagAblation {
		ablations()
	}
	if *flagReplicable {
		replicable()
	}
	if *flagOrdered {
		ordered()
	}
}

// writeProfile dumps a named runtime/pprof profile, complaining on
// stderr instead of failing: the experiment results already printed.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
	}
}

// ordered compares the scheduling orders (-order) on a multi-locality
// optimisation search: the claim under test is the flowshop follow-up's
// — a discrepancy- or bound-ordered global task order finds strong
// incumbents earlier, so the pruned tree shrinks relative to
// random-victim depth scheduling, independent of core count.
func ordered() {
	fmt.Println("== Ordered scheduling: nodes and time vs scheduling order ==")
	g := instances.Table1()[8].Gen() // p_hat300-3-like: bound-heavy
	for _, ord := range []core.Order{core.OrderNone, core.OrderDiscrepancy, core.OrderBound} {
		var stats core.Stats
		t := medianOf(*flagRuns, func() time.Duration {
			_, st := maxclique.Solve(g, core.DepthBounded,
				core.Config{Workers: *flagWorkers, Localities: 4, DCutoff: 2, Order: ord})
			stats = st
			return st.Elapsed
		})
		fmt.Printf("order=%-12s %8.3fs  nodes %9d  prunes %9d  ordered-steals %d/%d\n",
			ord, sec(t), stats.Nodes, stats.Prunes, stats.OrderedSteals, stats.StealsOK)
	}
	fmt.Println()
}

// replicable demonstrates performance anomalies and their cure
// (paper §2.1 and its citation [4]): the ordinary skeletons' visited
// node counts vary run-to-run and with worker count, while the
// replicable skeleton's are constant.
func replicable() {
	fmt.Println("== Replicability: visited nodes across runs and worker counts ==")
	g := instances.Table1()[9].Gen() // p_hat500-3-like
	s := maxclique.NewSpace(g)
	p := maxclique.OptProblem()

	fmt.Printf("%-22s %14s %14s %14s\n", "skeleton", "w=4 run1", "w=4 run2", "w=16 run1")
	show := func(name string, run func(workers int) int64) {
		fmt.Printf("%-22s %14d %14d %14d\n", name, run(4), run(4), run(16))
	}
	show("DepthBounded (d=2)", func(w int) int64 {
		r := core.Opt(core.DepthBounded, s, maxclique.Root(s), p, core.Config{Workers: w, DCutoff: 2})
		return r.Stats.Nodes
	})
	show("StackStealing", func(w int) int64 {
		r := core.Opt(core.StackStealing, s, maxclique.Root(s), p, core.Config{Workers: w})
		return r.Stats.Nodes
	})
	show("Replicable (d=2)", func(w int) int64 {
		r := core.ReplicableOpt(s, maxclique.Root(s), p, core.Config{Workers: w, DCutoff: 2})
		return r.Stats.Nodes
	})
	fmt.Println("(the replicable skeleton's counts must be identical in every column)")
	fmt.Println()
}

// medianOf runs f runs times and returns the median duration.
func medianOf(runs int, f func() time.Duration) time.Duration {
	ts := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		ts = append(ts, f())
	}
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts[len(ts)/2]
}

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func sec(d time.Duration) float64 { return d.Seconds() }

// ---------------------------------------------------------------- Table 1

func table1() {
	fmt.Println("== Table 1: YewPar vs hand-written MaxClique ==")
	fmt.Println("(sequential skeleton vs specialised solver; Depth-Bounded d=1 vs")
	fmt.Println(" hand-coded depth-1 task parallelism; slowdown % = yewpar/hand - 1)")
	parWorkers := 15
	if max := runtime.GOMAXPROCS(0) - 1; parWorkers > max && max >= 1 {
		parWorkers = max
	}
	fmt.Printf("%-14s %10s %10s %8s %10s %10s %8s\n",
		"Instance", "SeqHand(s)", "SeqYew(s)", "Slow(%)", "ParHand(s)", "ParYew(s)", "Slow(%)")

	var seqRatios, parRatios []float64
	// The paper excludes very short runs (< 1.5s at its scale) from
	// the parallel mean; at our ~100x-smaller instance scale the
	// equivalent cut-off is a few milliseconds of hand-coded runtime.
	const parThreshold = 5 * time.Millisecond
	for _, inst := range instances.Table1() {
		g := inst.Gen()
		var handSize, yewSize int
		seqHand := medianOf(*flagRuns, func() time.Duration {
			t0 := time.Now()
			c, _ := maxclique.SeqHandcoded(g)
			handSize = c.Count()
			return time.Since(t0)
		})
		seqYew := medianOf(*flagRuns, func() time.Duration {
			c, stats := maxclique.Solve(g, core.Sequential, core.Config{})
			yewSize = c.Count()
			return stats.Elapsed
		})
		if handSize != yewSize {
			fmt.Printf("!! %s: size mismatch hand=%d yew=%d\n", inst.Name, handSize, yewSize)
		}
		parHand := medianOf(*flagRuns, func() time.Duration {
			t0 := time.Now()
			maxclique.ParHandcoded(g, parWorkers)
			return time.Since(t0)
		})
		parYew := medianOf(*flagRuns, func() time.Duration {
			_, stats := maxclique.Solve(g, core.DepthBounded,
				core.Config{Workers: parWorkers, DCutoff: 1})
			return stats.Elapsed
		})
		seqSlow := 100 * (sec(seqYew)/sec(seqHand) - 1)
		parSlow := 100 * (sec(parYew)/sec(parHand) - 1)
		seqRatios = append(seqRatios, sec(seqYew)/sec(seqHand))
		mark := " "
		if parHand >= parThreshold {
			parRatios = append(parRatios, sec(parYew)/sec(parHand))
			mark = "*"
		}
		fmt.Printf("%-14s %10.3f %10.3f %+8.2f %10.3f %10.3f %+8.2f%s\n",
			inst.Name, sec(seqHand), sec(seqYew), seqSlow, sec(parHand), sec(parYew), parSlow, mark)
	}
	fmt.Printf("\nGeo. mean sequential slowdown: %+.2f%%  (paper: +8.76%%)\n",
		100*(geoMean(seqRatios)-1))
	if len(parRatios) > 0 {
		fmt.Printf("Geo. mean parallel slowdown (* rows, %d workers): %+.2f%%  (paper: +16.56%% on 15 workers)\n\n",
			parWorkers, 100*(geoMean(parRatios)-1))
	} else {
		fmt.Printf("Geo. mean parallel slowdown: n/a (no row reached the %v cut-off)\n\n", parThreshold)
	}
}

// ---------------------------------------------------------------- Figure 4

func figure4() {
	fmt.Println("== Figure 4: k-clique scaling across localities ==")
	g, omega := instances.SpreadsH44Like()
	// Disprove ω+1: an unsatisfiable decision that must explore the
	// whole pruned tree, like proving there is no spread in H(4,4).
	k := omega + 1
	seq := medianOf(*flagRuns, func() time.Duration {
		_, _, stats := maxclique.Decide(g, k, core.Sequential, core.Config{})
		return stats.Elapsed
	})
	fmt.Printf("instance: %v, disproving k=%d; sequential: %.3fs\n", g, k, sec(seq))
	fmt.Printf("workers per locality: %d\n\n", *flagWPL)

	type skel struct {
		name  string
		coord core.Coordination
		cfg   core.Config
	}
	// The paper uses b=1e7 on an instance with hours of sequential
	// work; the budget scales with instance size, so at our
	// seconds-scale instance the equivalent setting is b=1e5.
	skels := []skel{
		{"Depth-Bounded (d=2)", core.DepthBounded, core.Config{DCutoff: 2}},
		{"Stack-Stealing (chunked)", core.StackStealing, core.Config{Chunked: true}},
		{"Budget (b=1e5)", core.Budget, core.Config{Budget: 100_000}},
	}
	// The wire columns attribute efficiency loss at scale: frames and
	// bytes are the transport Meter's logical traffic (real bytes when
	// rerun over `yewpar -dist`), batch is the mean tasks per steal
	// reply, pf-hit the share of remote work served from the
	// steal-ahead buffer instead of a blocking round trip.
	// The mem columns are the per-locality accountant's view: peak
	// resident frontier (max tasks across localities, with its encoded
	// byte estimate) and tasks spilled to disk — zero unless the run
	// sets -pool-budget.
	locSweep := []int{1, 2, 4, 8, 16, 17}
	fmt.Printf("%-26s %6s %10s %10s %10s %12s %6s %7s %10s %12s %8s\n",
		"Skeleton", "locs", "time(s)", "speedup", "frames", "wire-bytes", "batch", "pf-hit",
		"pool-peak", "pool-peakB", "spilled")
	for _, sk := range skels {
		var base time.Duration
		for _, L := range locSweep {
			cfg := sk.cfg
			cfg.Localities = L
			cfg.Workers = L * *flagWPL
			var ws core.Stats
			t := medianOf(*flagRuns, func() time.Duration {
				_, found, stats := maxclique.Decide(g, k, sk.coord, cfg)
				if found {
					fmt.Println("!! impossible clique found")
				}
				ws = stats
				return stats.Elapsed
			})
			if L == 1 {
				base = t
			}
			fmt.Printf("%-26s %6d %10.3f %10.2f %10d %12d %6.2f %6.0f%% %10d %12d %8d\n",
				sk.name, L, sec(t), sec(base)/sec(t), ws.Frames, ws.WireBytes,
				ws.BatchOccupancy(), 100*ws.PrefetchHitRate(),
				ws.PoolPeakTasks, ws.PoolPeakBytes, ws.SpilledTasks)
		}
		fmt.Println()
	}
}

// ---------------------------------------------------------------- Table 2

// app2 is one Table 2 application: named sequential baselines and a
// parallel runner returning elapsed time (after validating the result
// against the sequential answer).
type app2 struct {
	name string
	n    int // number of instances
	seq  func(i int) (int64, time.Duration)
	par  func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration)
}

func table2Apps() []app2 {
	cliques := instances.Table2Clique()
	knaps := instances.Table2Knapsack()
	tsps := instances.Table2TSP()
	sips := instances.Table2SIP()
	utss := instances.Table2UTS()
	nss := instances.Table2NS()

	graphs := make([]*maxclique.Space, len(cliques))
	for i, c := range cliques {
		graphs[i] = maxclique.NewSpace(c.Gen())
	}

	return []app2{
		{
			name: "MaxClique", n: len(graphs),
			seq: func(i int) (int64, time.Duration) {
				r := core.Opt(core.Sequential, graphs[i], maxclique.Root(graphs[i]), maxclique.OptProblem(), core.Config{})
				return r.Objective, r.Stats.Elapsed
			},
			par: func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration) {
				r := core.Opt(coord, graphs[i], maxclique.Root(graphs[i]), maxclique.OptProblem(), cfg)
				return r.Objective, r.Stats.Elapsed
			},
		},
		{
			name: "TSP", n: len(tsps),
			seq: func(i int) (int64, time.Duration) {
				c, stats := tsp.Solve(tsps[i], core.Sequential, core.Config{})
				return c, stats.Elapsed
			},
			par: func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration) {
				c, stats := tsp.Solve(tsps[i], coord, cfg)
				return c, stats.Elapsed
			},
		},
		{
			name: "Knapsack", n: len(knaps),
			seq: func(i int) (int64, time.Duration) {
				p, stats := knapsack.Solve(knaps[i], core.Sequential, core.Config{})
				return p, stats.Elapsed
			},
			par: func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration) {
				p, stats := knapsack.Solve(knaps[i], coord, cfg)
				return p, stats.Elapsed
			},
		},
		{
			name: "SIP", n: len(sips),
			seq: func(i int) (int64, time.Duration) {
				_, found, stats := sip.Solve(sips[i], core.Sequential, core.Config{})
				return b2i(found), stats.Elapsed
			},
			par: func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration) {
				_, found, stats := sip.Solve(sips[i], coord, cfg)
				return b2i(found), stats.Elapsed
			},
		},
		{
			name: "NS", n: len(nss),
			seq: func(i int) (int64, time.Duration) {
				c, stats := semigroups.Count(nss[i], core.Sequential, core.Config{})
				return c, stats.Elapsed
			},
			par: func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration) {
				c, stats := semigroups.Count(nss[i], coord, cfg)
				return c, stats.Elapsed
			},
		},
		{
			name: "UTS", n: len(utss),
			seq: func(i int) (int64, time.Duration) {
				c, stats := uts.Count(utss[i], core.Sequential, core.Config{})
				return c, stats.Elapsed
			},
			par: func(i int, coord core.Coordination, cfg core.Config) (int64, time.Duration) {
				c, stats := uts.Count(utss[i], coord, cfg)
				return c, stats.Elapsed
			},
		},
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sweepSetting is one point of the Table 2 parameter sweep.
type sweepSetting struct {
	label string
	cfg   core.Config
}

func sweeps(quick bool) map[core.Coordination][]sweepSetting {
	db := []sweepSetting{
		{"d=1", core.Config{DCutoff: 1}},
		{"d=2", core.Config{DCutoff: 2}},
		{"d=3", core.Config{DCutoff: 3}},
		{"d=4", core.Config{DCutoff: 4}},
	}
	bu := []sweepSetting{
		{"b=1e3", core.Config{Budget: 1_000}},
		{"b=1e4", core.Config{Budget: 10_000}},
		{"b=1e5", core.Config{Budget: 100_000}},
		{"b=1e6", core.Config{Budget: 1_000_000}},
	}
	ss := []sweepSetting{
		{"plain", core.Config{}},
		{"chunked", core.Config{Chunked: true}},
	}
	if quick {
		db, bu = db[:2], bu[:2]
	}
	return map[core.Coordination][]sweepSetting{
		core.DepthBounded:  db,
		core.Budget:        bu,
		core.StackStealing: ss,
	}
}

func table2() {
	fmt.Println("== Table 2: 18 alternate parallelisations ==")
	fmt.Printf("(geometric-mean speedup vs Sequential skeleton, %d workers;\n", *flagWorkers)
	fmt.Println(" Worst/Best over the parameter sweep, Random = seeded random setting)")
	fmt.Printf("%-10s %-14s %8s %8s %8s\n", "App", "Skeleton", "Worst", "Random", "Best")

	apps := table2Apps()
	sw := sweeps(*flagQuick)
	coords := []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget}
	names := map[core.Coordination]string{
		core.DepthBounded: "Depth-Bounded", core.StackStealing: "Stack-Stealing", core.Budget: "Budget",
	}
	rng := rand.New(rand.NewSource(2020))
	all := map[core.Coordination][][3]float64{}

	for _, app := range apps {
		seqTimes := make([]time.Duration, app.n)
		seqVals := make([]int64, app.n)
		for i := 0; i < app.n; i++ {
			v, _ := app.seq(i) // warm once
			seqVals[i] = v
			seqTimes[i] = medianOf(*flagRuns, func() time.Duration {
				_, d := app.seq(i)
				return d
			})
		}
		for _, coord := range coords {
			settings := sw[coord]
			perSetting := make([]float64, 0, len(settings))
			for _, s := range settings {
				cfg := s.cfg
				cfg.Workers = *flagWorkers
				ratios := make([]float64, 0, app.n)
				for i := 0; i < app.n; i++ {
					v, d := app.par(i, coord, cfg)
					if v != seqVals[i] {
						fmt.Printf("!! %s/%v/%s instance %d: result %d != sequential %d\n",
							app.name, coord, s.label, i, v, seqVals[i])
					}
					ratios = append(ratios, sec(seqTimes[i])/sec(d))
				}
				perSetting = append(perSetting, geoMean(ratios))
			}
			worst, best := perSetting[0], perSetting[0]
			for _, x := range perSetting {
				if x < worst {
					worst = x
				}
				if x > best {
					best = x
				}
			}
			random := perSetting[rng.Intn(len(perSetting))]
			fmt.Printf("%-10s %-14s %8.2f %8.2f %8.2f\n", app.name, names[coord], worst, random, best)
			all[coord] = append(all[coord], [3]float64{worst, random, best})
		}
	}
	for _, coord := range coords {
		var w, r, b []float64
		for _, x := range all[coord] {
			w, r, b = append(w, x[0]), append(r, x[1]), append(b, x[2])
		}
		fmt.Printf("%-10s %-14s %8.2f %8.2f %8.2f\n", "All", names[coord], geoMean(w), geoMean(r), geoMean(b))
	}
	fmt.Println()
}

// -------------------------------------------------------------- Ablations

func ablations() {
	fmt.Println("== Ablation: heuristic-order-preserving pool vs deque ==")
	fmt.Println("(satisfiable k-clique decision: the colouring heuristic leads to the")
	fmt.Println(" hidden clique, so schedulers that respect spawn order find it sooner)")
	gSat, planted := graph.PlantedClique(400, 0.35, 20, 77)
	kSat := len(planted)
	for _, pool := range []struct {
		name string
		kind core.PoolKind
	}{{"depth-pool", core.DepthPoolKind}, {"deque", core.DequeKind}} {
		var nodes int64
		t := medianOf(*flagRuns, func() time.Duration {
			_, found, stats := maxclique.Decide(gSat, kSat, core.DepthBounded,
				core.Config{Workers: *flagWorkers, DCutoff: 3, Pool: pool.kind})
			if !found {
				fmt.Println("!! planted clique not found")
			}
			nodes = stats.Nodes
			return stats.Elapsed
		})
		fmt.Printf("%-12s time-to-witness %8.4fs  nodes %d\n", pool.name, sec(t), nodes)
	}

	fmt.Println("\n== Ablation: pool order on optimisation (work balance view) ==")
	g := instances.Table1()[8].Gen() // p_hat300-3-like: bound-heavy
	seq := medianOf(*flagRuns, func() time.Duration {
		_, stats := maxclique.Solve(g, core.Sequential, core.Config{})
		return stats.Elapsed
	})
	for _, pool := range []struct {
		name string
		kind core.PoolKind
	}{{"depth-pool", core.DepthPoolKind}, {"deque", core.DequeKind}} {
		var nodes int64
		t := medianOf(*flagRuns, func() time.Duration {
			_, stats := maxclique.Solve(g, core.DepthBounded,
				core.Config{Workers: *flagWorkers, DCutoff: 2, Pool: pool.kind})
			nodes = stats.Nodes
			return stats.Elapsed
		})
		fmt.Printf("%-12s %8.3fs  speedup %5.2f  nodes %d\n", pool.name, sec(t), sec(seq)/sec(t), nodes)
	}

	fmt.Println("\n== Ablation: bound-broadcast latency (stale-knowledge tolerance) ==")
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		var nodes, prunes int64
		t := medianOf(*flagRuns, func() time.Duration {
			_, stats := maxclique.Solve(g, core.DepthBounded,
				core.Config{Workers: *flagWorkers, Localities: 4, DCutoff: 2, BoundLatency: lat})
			nodes, prunes = stats.Nodes, stats.Prunes
			return stats.Elapsed
		})
		fmt.Printf("latency %-8v %8.3fs  nodes %9d  prunes %9d\n", lat, sec(t), nodes, prunes)
	}
	fmt.Println()
}
