package maxclique

import (
	"encoding/binary"
	"fmt"

	"yewpar/internal/bitset"
	"yewpar/internal/core"
)

// nodeCodec is the compact wire form of a clique node: size and colour
// bound as uvarints, then the two vertex sets as raw words. On the
// Table 1 graphs this is less than half the size of the gob form,
// which re-describes the struct and both set fields on every node.
type nodeCodec struct{}

// Codec returns the compact Node codec used by the distributed mode.
// GobCodec[Node] remains a valid (interoperable-with-nothing, larger)
// fallback; all localities of a deployment must use the same codec.
func Codec() core.Codec[Node] { return nodeCodec{} }

// Encode implements core.Codec.
func (c nodeCodec) Encode(n Node) ([]byte, error) { return c.EncodeTo(nil, n) }

// EncodeTo implements core.Codec.
func (nodeCodec) EncodeTo(dst []byte, n Node) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(n.Size))
	dst = binary.AppendUvarint(dst, uint64(n.Bound))
	dst = n.Clique.AppendBinary(dst)
	dst = n.Cands.AppendBinary(dst)
	return dst, nil
}

// Decode implements core.Codec.
func (nodeCodec) Decode(b []byte) (Node, error) {
	var n Node
	size, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("maxclique: truncated node size")
	}
	b = b[k:]
	bound, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("maxclique: truncated node bound")
	}
	b = b[k:]
	var err error
	if n.Clique, b, err = bitset.ParseBinary(b); err != nil {
		return n, fmt.Errorf("maxclique: clique set: %w", err)
	}
	if n.Cands, b, err = bitset.ParseBinary(b); err != nil {
		return n, fmt.Errorf("maxclique: candidate set: %w", err)
	}
	if len(b) != 0 {
		return n, fmt.Errorf("maxclique: %d trailing bytes after node", len(b))
	}
	n.Size = int(size)
	n.Bound = int(bound)
	return n, nil
}
