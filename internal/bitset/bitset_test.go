package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		s := New(n)
		if !s.Empty() {
			t.Errorf("New(%d) not empty", n)
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d", n, s.Count())
		}
		if s.Cap() != n {
			t.Errorf("New(%d).Cap() = %d", n, s.Cap())
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("after Add(%d), Contains false", i)
		}
		s.Remove(i)
		if s.Contains(i) {
			t.Fatalf("after Remove(%d), Contains true", i)
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestCountAcrossWords(t *testing.T) {
	s := New(200)
	want := 0
	for i := 0; i < 200; i += 7 {
		s.Add(i)
		want++
	}
	if s.Count() != want {
		t.Fatalf("Count = %d, want %d", s.Count(), want)
	}
}

func TestFillAndClear(t *testing.T) {
	for _, n := range []int{1, 64, 65, 100} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d).Count = %d", n, s.Count())
		}
		if s.Max() != n-1 {
			t.Errorf("Fill(%d).Max = %d", n, s.Max())
		}
		s.Clear()
		if !s.Empty() {
			t.Errorf("Clear(%d) not empty", n)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(70)
	s.Add(5)
	c := s.Clone()
	c.Add(6)
	if s.Contains(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Contains(5) {
		t.Fatal("Clone missing original element")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Add(3)
	a.Add(69)
	b.Add(1)
	b.CopyFrom(a)
	if !b.Contains(3) || !b.Contains(69) || b.Contains(1) {
		t.Fatalf("CopyFrom wrong contents: %v", b)
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 64, 65})
	b := FromSlice(100, []int{2, 3, 4, 65, 99})

	inter := a.Clone()
	inter.IntersectWith(b)
	if got := inter.String(); got != "{2, 3, 65}" {
		t.Errorf("intersection = %s", got)
	}

	uni := a.Clone()
	uni.UnionWith(b)
	if uni.Count() != 7 {
		t.Errorf("union count = %d, want 7", uni.Count())
	}

	diff := a.Clone()
	diff.DifferenceWith(b)
	if got := diff.String(); got != "{1, 64}" {
		t.Errorf("difference = %s", got)
	}
}

func TestIntersectsAndSubset(t *testing.T) {
	a := FromSlice(100, []int{1, 70})
	b := FromSlice(100, []int{70})
	c := FromSlice(100, []int{2})
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	if !b.SubsetOf(a) {
		t.Error("b should be subset of a")
	}
	if a.SubsetOf(b) {
		t.Error("a should not be subset of b")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(100, []int{1, 2})
	b := FromSlice(100, []int{1, 2})
	c := FromSlice(100, []int{1, 3})
	d := FromSlice(101, []int{1, 2})
	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) {
		t.Error("a == c")
	}
	if a.Equal(d) {
		t.Error("equal across different capacities")
	}
}

func TestMinMax(t *testing.T) {
	s := New(200)
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatal("empty Min/Max should be -1")
	}
	s.Add(67)
	s.Add(130)
	s.Add(5)
	if s.Min() != 5 {
		t.Errorf("Min = %d", s.Min())
	}
	if s.Max() != 130 {
		t.Errorf("Max = %d", s.Max())
	}
}

func TestNextAfter(t *testing.T) {
	s := FromSlice(200, []int{0, 63, 64, 150})
	var got []int
	for i := s.NextAfter(-1); i != -1; i = s.NextAfter(i) {
		got = append(got, i)
	}
	want := []int{0, 63, 64, 150}
	if len(got) != len(want) {
		t.Fatalf("NextAfter walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextAfter walk = %v, want %v", got, want)
		}
	}
	if s.NextAfter(199) != -1 {
		t.Error("NextAfter(199) should be -1")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromSlice(100, []int{9, 1, 64, 3})
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{1, 3, 9, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v", got)
		}
	}
	count := 0
	s.ForEach(func(int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestElements(t *testing.T) {
	s := FromSlice(100, []int{5, 99, 0})
	e := s.Elements(nil)
	if len(e) != 3 || e[0] != 0 || e[1] != 5 || e[2] != 99 {
		t.Fatalf("Elements = %v", e)
	}
}

func TestIntersectionCount(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 80})
	b := FromSlice(100, []int{2, 80, 99})
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d", got)
	}
}

func TestStringEmpty(t *testing.T) {
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Add/Contains matches a reference map implementation.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const n = 257
		s := New(n)
		ref := map[int]bool{}
		r := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			i := int(op) % n
			if r.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| - |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 300
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x) % n)
		}
		for _, y := range ys {
			b.Add(int(y) % n)
		}
		u := a.Clone()
		u.UnionWith(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextAfter enumerates exactly ForEach's order.
func TestQuickNextAfterMatchesForEach(t *testing.T) {
	f := func(xs []uint16) bool {
		const n = 300
		s := New(n)
		for _, x := range xs {
			s.Add(int(x) % n)
		}
		var a, b []int
		s.ForEach(func(i int) bool { a = append(a, i); return true })
		for i := s.NextAfter(-1); i != -1; i = s.NextAfter(i) {
			b = append(b, i)
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectWith(b *testing.B) {
	a := New(1024)
	c := New(1024)
	for i := 0; i < 1024; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 1024; i += 2 {
		c.Add(i)
	}
	tmp := New(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp.CopyFrom(a)
		tmp.IntersectWith(c)
	}
}

func BenchmarkCount(b *testing.B) {
	a := New(1024)
	for i := 0; i < 1024; i += 3 {
		a.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Count() == 0 {
			b.Fatal("empty")
		}
	}
}
