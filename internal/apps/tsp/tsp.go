// Package tsp implements the Travelling Salesperson optimisation
// search of the paper's evaluation: find a shortest circular tour of N
// cities by depth-first branch and bound, nearest-city-first child
// order, with a min-outgoing-edge lower bound.
//
// The skeletons maximise, so tours are scored as negated cost.
package tsp

import (
	"math"
	"math/rand"
	"sort"

	"yewpar/internal/core"
)

// incomplete is the objective of non-leaf nodes: small enough that only
// complete tours ever become incumbents, large enough not to underflow
// when bounds subtract from it.
const incomplete = math.MinInt64 / 4

// Space is the search space: a symmetric distance matrix plus
// precomputed heuristics. Tours start and end at city 0. At most 64
// cities (visited sets are one word).
type Space struct {
	N         int
	D         [][]int64
	minOut    []int64 // cheapest edge leaving each city
	nearOrder [][]int // per city, other cities by increasing distance
}

// NewSpace builds a space from a symmetric distance matrix.
func NewSpace(d [][]int64) *Space {
	n := len(d)
	if n > 64 {
		panic("tsp: at most 64 cities supported")
	}
	s := &Space{N: n, D: d, minOut: make([]int64, n), nearOrder: make([][]int, n)}
	for c := 0; c < n; c++ {
		mo := int64(math.MaxInt64)
		order := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j == c {
				continue
			}
			order = append(order, j)
			if d[c][j] < mo {
				mo = d[c][j]
			}
		}
		sort.SliceStable(order, func(a, b int) bool { return d[c][order[a]] < d[c][order[b]] })
		s.minOut[c] = mo
		s.nearOrder[c] = order
	}
	return s
}

// Node is a partial tour: the set of visited cities, the current city,
// the accumulated path cost, and the number of cities visited. A node
// with Count == N is a complete tour and Cost includes the closing
// edge back to city 0.
type Node struct {
	Visited uint64
	Last    int
	Cost    int64
	Count   int
}

// Root is the tour containing only city 0.
func Root(_ *Space) Node { return Node{Visited: 1, Last: 0, Cost: 0, Count: 1} }

type gen struct {
	s      *Space
	parent Node
	order  []int
	i      int
}

var _ core.ResettableGenerator[*Space, Node] = (*gen)(nil)

// Gen is the core.GenFactory for TSP: children extend the tour by each
// unvisited city, nearest first. Extending to the final city closes
// the tour.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	if parent.Count == s.N {
		return core.EmptyGen[Node]{}
	}
	g := &gen{}
	g.Reset(s, parent)
	return g
}

// Reset implements core.ResettableGenerator. The child order is a
// shared precomputed slice on the space, so re-aiming costs no
// allocation at all.
func (g *gen) Reset(s *Space, parent Node) {
	g.s, g.parent, g.i = s, parent, 0
	if parent.Count == s.N {
		g.order = nil // complete tour: no children
		return
	}
	g.order = s.nearOrder[parent.Last]
	g.skip()
}

func (g *gen) skip() {
	for g.i < len(g.order) && g.parent.Visited&(1<<uint(g.order[g.i])) != 0 {
		g.i++
	}
}

func (g *gen) HasNext() bool { return g.i < len(g.order) }

func (g *gen) Next() Node {
	c := g.order[g.i]
	g.i++
	g.skip()
	child := Node{
		Visited: g.parent.Visited | 1<<uint(c),
		Last:    c,
		Cost:    g.parent.Cost + g.s.D[g.parent.Last][c],
		Count:   g.parent.Count + 1,
	}
	if child.Count == g.s.N {
		child.Cost += g.s.D[c][0] // close the tour
	}
	return child
}

// Objective scores complete tours by negated cost; partial tours are
// never incumbents.
func Objective(s *Space, n Node) int64 {
	if n.Count == s.N {
		return -n.Cost
	}
	return incomplete
}

// UpperBound bounds the objective of any completion: the remaining
// tour must leave the current city and every unvisited city exactly
// once, so its cost is at least the sum of their cheapest outgoing
// edges.
func UpperBound(s *Space, n Node) int64 {
	if n.Count == s.N {
		return -n.Cost
	}
	lb := n.Cost + s.minOut[n.Last]
	for c := 0; c < s.N; c++ {
		if n.Visited&(1<<uint(c)) == 0 {
			lb += s.minOut[c]
		}
	}
	return -lb
}

// OptProblem returns the TSP optimisation-search problem.
func OptProblem() core.OptProblem[*Space, Node] {
	return core.OptProblem[*Space, Node]{
		Gen:       Gen,
		Objective: Objective,
		Bound:     UpperBound,
	}
}

// Solve returns the optimal tour cost found with the given skeleton.
func Solve(s *Space, coord core.Coordination, cfg core.Config) (int64, core.Stats) {
	res := core.Opt(coord, s, Root(s), OptProblem(), cfg)
	return -res.Objective, res.Stats
}

// GenerateEuclidean builds a deterministic random instance: n cities
// uniform on a sideXside grid, distances rounded Euclidean.
func GenerateEuclidean(n int, side int64, seed int64) *Space {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Int63n(side)
		ys[i] = rng.Int63n(side)
	}
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			dx := float64(xs[i] - xs[j])
			dy := float64(ys[i] - ys[j])
			d[i][j] = int64(math.Round(math.Sqrt(dx*dx + dy*dy)))
		}
	}
	return NewSpace(d)
}
