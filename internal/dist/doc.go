// Package dist is the communication substrate of the distributed
// search runtime: a pluggable Transport over which localities — the
// paper's physical cluster nodes — exchange work and incumbent
// knowledge.
//
// YewPar's distributed skeletons need exactly four interactions
// between localities, and Transport captures precisely those:
//
//   - work distribution: an idle locality steals a task from a peer
//     (Steal on the thief side, Handler.ServeSteal on the victim
//     side), the request/reply discipline of the paper's Section 4.3
//     workpools;
//   - knowledge propagation: an improved incumbent bound is broadcast
//     to every locality (BroadcastBound/Handler.OnBound), with relaxed
//     delivery — late or reordered bounds cost pruning opportunities,
//     never correctness, because receivers merge with a monotonic max;
//   - termination detection: a global live-task count (AddTasks/Done)
//     that reaches zero exactly when no locality holds or will ever
//     receive work;
//   - short-circuit and aggregation: decision-search cancellation
//     (Cancel/Handler.OnCancel) and the terminal collective Gather
//     that brings every locality's result and metrics to rank 0.
//
// Two implementations are provided. The Loopback transport connects
// localities within one process by direct calls, with optional
// injected steal and bound latencies; it backs all single-process
// skeleton runs (internal/core builds its simulated-cluster topology
// on it) and serves as the reference for the conformance suite. The
// TCP transport (NewListener/Dial) connects real OS processes in a
// star around the coordinator with gob-encoded frames; it is what
// `yewpar -dist` deploys.
//
// The package is deliberately engine-agnostic: tasks cross it as
// WireTask values carrying an opaque encoded node, so dist imports
// nothing from internal/core and new transports (shared-memory IPC,
// RDMA, a message-queue fabric) can be added without touching the
// search engine.
package dist
