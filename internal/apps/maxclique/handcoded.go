package maxclique

import (
	"sync"
	"sync/atomic"

	"yewpar/internal/bitset"
	"yewpar/internal/graph"
)

// This file holds the search-specific comparators of the paper's
// Table 1: a hand-written sequential maximum-clique solver (the
// stand-in for McCreesh's C++ MCSa1) and a hand-written parallel
// version spawning one task per depth-1 subtree (the stand-in for the
// OpenMP implementation). Both run the same algorithm as the skeleton
// version but specialise everything the skeletons keep generic:
// candidate sets live in per-depth scratch buffers, nodes are never
// copied, and there are no generator objects.

// hcState is the per-worker state of the hand-coded solvers. The
// incumbent is abstracted over two closures so the sequential solver
// can use a plain int and the parallel one an atomic shared between
// workers.
type hcState struct {
	g            *graph.Graph
	current      bitset.Set
	uncol, class bitset.Set     // colouring scratch (colourInto is not reentrant)
	locals       []bitset.Set   // per-depth shrinking candidate sets
	nexts        []bitset.Set   // per-depth child candidate sets
	order        [][]int32      // per-depth colour orders
	colour       [][]int32      // per-depth colour bounds
	nodes        int64          // search nodes visited
	best         func() int     // incumbent read
	report       func(size int) // incumbent strengthen (clique = current)
}

func newHCState(g *graph.Graph, best func() int, report func(int)) *hcState {
	d := g.N + 2
	st := &hcState{
		g:       g,
		current: bitset.New(g.N),
		uncol:   bitset.New(g.N),
		class:   bitset.New(g.N),
		locals:  make([]bitset.Set, d),
		nexts:   make([]bitset.Set, d),
		order:   make([][]int32, d),
		colour:  make([][]int32, d),
		best:    best,
		report:  report,
	}
	for i := 0; i < d; i++ {
		st.locals[i] = bitset.New(g.N)
		st.nexts[i] = bitset.New(g.N)
		st.order[i] = make([]int32, 0, g.N)
		st.colour[i] = make([]int32, 0, g.N)
	}
	return st
}

// colourInto is GreedyColour writing into the depth's scratch slices.
// It does not modify p.
func (st *hcState) colourInto(depth int, p bitset.Set) ([]int32, []int32) {
	order := st.order[depth][:0]
	colour := st.colour[depth][:0]
	st.uncol.CopyFrom(p)
	c := int32(0)
	for !st.uncol.Empty() {
		c++
		st.class.CopyFrom(st.uncol)
		for {
			v := st.class.PopNext()
			if v < 0 {
				break
			}
			order = append(order, int32(v))
			colour = append(colour, c)
			st.uncol.Remove(v)
			st.class.DifferenceWith(st.g.Adj[v])
		}
	}
	st.order[depth], st.colour[depth] = order, colour
	return order, colour
}

func (st *hcState) expand(size int, p bitset.Set, depth int) {
	order, colour := st.colourInto(depth, p)
	local := st.locals[depth]
	local.CopyFrom(p)
	for i := len(order) - 1; i >= 0; i-- {
		if size+int(colour[i]) <= st.best() {
			return // every remaining candidate has a lower colour bound
		}
		v := int(order[i])
		st.current.Add(v)
		st.nodes++
		st.report(size + 1)
		local.Remove(v)
		next := st.nexts[depth]
		if bitset.IntersectIntoCount(next, local, st.g.Adj[v]) > 0 {
			st.expand(size+1, next, depth+1)
		}
		st.current.Remove(v)
	}
}

// SeqHandcoded finds a maximum clique with the specialised sequential
// solver. It returns the clique and the number of search nodes visited.
func SeqHandcoded(g *graph.Graph) (bitset.Set, int64) {
	bestSet := bitset.New(g.N)
	best := 0
	var st *hcState
	st = newHCState(g,
		func() int { return best },
		func(size int) {
			if size > best {
				best = size
				bestSet.CopyFrom(st.current)
			}
		})
	if g.N > 0 {
		all := bitset.New(g.N)
		all.Fill()
		st.expand(0, all, 0)
	}
	return bestSet, st.nodes
}

// parTask is one depth-1 subtree of the hand-coded parallel solver.
type parTask struct {
	v     int
	cands bitset.Set
	bound int32
}

// ParHandcoded finds a maximum clique with the hand-written parallel
// solver: the root's children (in heuristic colour order) become tasks
// consumed by a fixed worker pool sharing an atomic incumbent — the
// direct analogue of the paper's OpenMP `task`-per-depth-1-node
// comparator.
func ParHandcoded(g *graph.Graph, workers int) (bitset.Set, int64) {
	if workers < 1 {
		workers = 1
	}
	bestSet := bitset.New(g.N)
	if g.N == 0 {
		return bestSet, 0
	}
	all := bitset.New(g.N)
	all.Fill()
	order, colour := GreedyColour(g, all)

	var best atomic.Int64
	var mu sync.Mutex
	var nodes atomic.Int64

	// Heuristic order: highest colour class first, like the skeleton.
	tasks := make(chan parTask, len(order))
	remaining := all.Clone()
	for i := len(order) - 1; i >= 0; i-- {
		v := int(order[i])
		remaining.Remove(v)
		cands := remaining.Clone()
		cands.IntersectWith(g.Adj[v])
		tasks <- parTask{v: v, cands: cands, bound: colour[i]}
	}
	close(tasks)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st *hcState
			st = newHCState(g,
				func() int { return int(best.Load()) },
				func(size int) {
					if int64(size) <= best.Load() {
						return
					}
					// Objective and witness must move together, so the
					// strengthen is re-checked under the lock.
					mu.Lock()
					if int64(size) > best.Load() {
						best.Store(int64(size))
						bestSet.CopyFrom(st.current)
					}
					mu.Unlock()
				})
			for t := range tasks {
				if 1+int(t.bound) <= int(best.Load()) {
					continue // whole subtree dominated
				}
				st.current.Clear()
				st.current.Add(t.v)
				st.nodes++
				st.report(1)
				if !t.cands.Empty() {
					st.expand(1, t.cands, 0)
				}
			}
			nodes.Add(st.nodes)
		}()
	}
	wg.Wait()
	return bestSet, nodes.Load()
}
