package nqueens

import (
	"encoding/binary"
	"fmt"

	"yewpar/internal/core"
)

// nodeCodec is the compact wire form of an n-queens node: the row as a
// uvarint and the three attack masks as raw words.
type nodeCodec struct{}

// Codec returns the compact Node codec used by the distributed mode.
func Codec() core.Codec[Node] { return nodeCodec{} }

// Encode implements core.Codec.
func (c nodeCodec) Encode(n Node) ([]byte, error) { return c.EncodeTo(nil, n) }

// EncodeTo implements core.Codec.
func (nodeCodec) EncodeTo(dst []byte, n Node) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(n.Row))
	dst = binary.LittleEndian.AppendUint64(dst, n.Cols)
	dst = binary.LittleEndian.AppendUint64(dst, n.Diag1)
	dst = binary.LittleEndian.AppendUint64(dst, n.Diag2)
	return dst, nil
}

// Decode implements core.Codec.
func (nodeCodec) Decode(b []byte) (Node, error) {
	var n Node
	row, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("nqueens: truncated row")
	}
	b = b[k:]
	if len(b) != 24 {
		return n, fmt.Errorf("nqueens: mask payload of %d bytes, want 24", len(b))
	}
	n.Row = int(row)
	n.Cols = binary.LittleEndian.Uint64(b)
	n.Diag1 = binary.LittleEndian.Uint64(b[8:])
	n.Diag2 = binary.LittleEndian.Uint64(b[16:])
	return n, nil
}
