// Distributed: runs UTS and MaxClique across simulated localities with
// injected network latencies, the in-process stand-in for the paper's
// Beowulf-cluster experiments. Remote steals pay StealLatency and
// bound broadcasts pay BoundLatency, so localities really do work with
// stale knowledge — fewer prunes, same answers.
package main

import (
	"fmt"
	"time"

	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/graph"
)

func main() {
	fmt.Println("UTS enumeration across simulated localities")
	fmt.Println("(8 workers; steal latency 50µs between localities)")
	tree := &uts.Space{Shape: uts.Binomial, B0: 4000, M: 8, Q: 0.1245, Seed: 404}
	for _, locs := range []int{1, 2, 4, 8} {
		count, stats := uts.Count(tree, core.DepthBounded, core.Config{
			Workers:      8,
			Localities:   locs,
			DCutoff:      3,
			StealLatency: 50 * time.Microsecond,
		})
		fmt.Printf("  localities=%d: %d nodes in %8v (%d remote steals, %d failed)\n",
			locs, count, stats.Elapsed.Round(time.Microsecond), stats.StealsOK, stats.StealsFail)
	}

	fmt.Println("\nMaxClique branch and bound: stale bounds cost pruning, not answers")
	g, _ := graph.PlantedClique(150, 0.6, 15, 11)
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		clique, stats := maxclique.Solve(g, core.DepthBounded, core.Config{
			Workers:      8,
			Localities:   4,
			DCutoff:      2,
			BoundLatency: lat,
		})
		fmt.Printf("  bound latency %-8v: clique %2d, %9d nodes, %8d prunes, %8v\n",
			lat, clique.Count(), stats.Nodes, stats.Prunes, stats.Elapsed.Round(time.Microsecond))
	}
}
