package core

import (
	"os"
	"sync"
	"testing"
	"time"

	"yewpar/internal/dist"
)

// Memory-bounded search: the pool budget must cap the resident
// frontier (spilling the overflow to disk) without changing any search
// result, and every spill segment must be cleaned up on exit — normal,
// cancelled, or killed.

// memSpace is a tree shaped to stress the frontier: the root fans out
// into Wide first-level subtrees (one spawn loop floods the pool), and
// each first-level child roots a uniform Branch-ary tree of depth
// Depth. Node identity is positional, so the exact node count is a
// closed form the enum oracle cross-checks.
type memSpace struct {
	Wide   int
	Branch int
	Depth  int
}

// memNode has exported fields only: spill segments round-trip it
// through the gob codec.
type memNode struct {
	ID    int64
	Depth int
}

func memGen(s memSpace, p memNode) NodeGenerator[memNode] {
	var b int
	switch {
	case p.Depth == 0:
		b = s.Wide
	case p.Depth <= s.Depth:
		b = s.Branch
	}
	kids := make([]memNode, b)
	for i := range kids {
		kids[i] = memNode{ID: p.ID*int64(s.Wide+s.Branch) + int64(i+1), Depth: p.Depth + 1}
	}
	return NewSliceGen(kids)
}

func (s memSpace) nodes() int64 {
	per := int64(0) // nodes per first-level subtree
	pow := int64(1)
	for d := 0; d <= s.Depth; d++ {
		per += pow
		pow *= int64(s.Branch)
	}
	return 1 + int64(s.Wide)*per
}

func memCountProblem() EnumProblem[memSpace, memNode, int64] {
	return EnumProblem[memSpace, memNode, int64]{
		Gen:       memGen,
		Objective: func(memSpace, memNode) int64 { return 1 },
		Monoid:    SumInt64{},
	}
}

// spillLeftovers reports the spill directories (and anything else)
// still present under base after a run: must be none — the store
// removes its MkdirTemp directory on close.
func spillLeftovers(t *testing.T, base string) []os.DirEntry {
	t.Helper()
	ents, err := os.ReadDir(base)
	if err != nil {
		t.Fatalf("reading spill base: %v", err)
	}
	return ents
}

func TestMemoryBudgetSpillsAndMatchesOracle(t *testing.T) {
	space := memSpace{Wide: 3000, Branch: 3, Depth: 2}
	want := space.nodes()

	unbounded := Enum(DepthBounded, space, memNode{}, memCountProblem(),
		Config{Workers: 4, Localities: 2, DCutoff: 3})
	if unbounded.Value != want {
		t.Fatalf("unbounded count %d, want %d", unbounded.Value, want)
	}
	if unbounded.Stats.PoolPeakTasks == 0 {
		t.Fatal("unbounded run recorded no pool peak")
	}
	if unbounded.Stats.SpilledTasks != 0 {
		t.Fatalf("unbounded run spilled %d tasks", unbounded.Stats.SpilledTasks)
	}

	dir := t.TempDir()
	// A budget worth a few dozen tasks: the root's Wide-child spawn
	// loop alone overflows it many times over, so the run must spill.
	bounded := Enum(DepthBounded, space, memNode{}, memCountProblem(),
		Config{Workers: 4, Localities: 2, DCutoff: 3, PoolBudget: 8 << 10, SpillDir: dir})
	if bounded.Value != want {
		t.Fatalf("budgeted count %d, want %d", bounded.Value, want)
	}
	if bounded.Stats.SpilledTasks == 0 {
		t.Fatal("budgeted run spilled nothing despite a frontier far beyond its budget")
	}
	if bounded.Stats.SpillBytes == 0 {
		t.Fatal("spilled tasks reported zero bytes")
	}
	if bounded.Stats.PoolPeakTasks*2 > unbounded.Stats.PoolPeakTasks {
		t.Fatalf("budgeted peak %d not well below unbounded peak %d",
			bounded.Stats.PoolPeakTasks, unbounded.Stats.PoolPeakTasks)
	}
	if left := spillLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("spill base not cleaned up: %v", left)
	}
}

func TestMemoryBudgetBudgetCoordination(t *testing.T) {
	space := memSpace{Wide: 2000, Branch: 2, Depth: 3}
	want := space.nodes()
	dir := t.TempDir()
	res := Enum(Budget, space, memNode{}, memCountProblem(),
		Config{Workers: 4, Localities: 2, Budget: 4, PoolBudget: 8 << 10, SpillDir: dir})
	if res.Value != want {
		t.Fatalf("budgeted count %d, want %d", res.Value, want)
	}
	if left := spillLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("spill base not cleaned up: %v", left)
	}
}

// TestMemorySpillReadmitStress hammers the spill/re-admit path with
// many workers on a tight budget; run under -race it checks the
// spiller, the re-admit hook, and the counted shards for data races.
func TestMemorySpillReadmitStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	space := memSpace{Wide: 1200, Branch: 2, Depth: 2}
	want := space.nodes()
	for _, pool := range []PoolKind{DepthPoolKind, DequeKind} {
		for iter := 0; iter < 3; iter++ {
			dir := t.TempDir()
			res := Enum(DepthBounded, space, memNode{}, memCountProblem(),
				Config{Workers: 8, Localities: 2, DCutoff: 3, Pool: pool,
					PoolBudget: 4 << 10, SpillDir: dir})
			if res.Value != want {
				t.Fatalf("pool %v iter %d: count %d, want %d", pool, iter, res.Value, want)
			}
			if left := spillLeftovers(t, dir); len(left) != 0 {
				t.Fatalf("pool %v iter %d: spill base not cleaned up: %v", pool, iter, left)
			}
		}
	}
}

// memOptProblem maximises a hash of the node id: a non-trivial optimum
// for the death test, over the same spill-heavy tree shape.
func memOptProblem() OptProblem[memSpace, memNode] {
	return OptProblem[memSpace, memNode]{
		Gen:       memGen,
		Objective: func(_ memSpace, n memNode) int64 { return (n.ID * 2654435761) % 100000 },
	}
}

// TestMemorySpillCleanupAfterDeath kills a locality while the
// deployment is spilling: the dead rank's segment files must not leak
// into later runs (a leaked segment would corrupt a fault-tolerance
// replay that re-reads the same directory), and the replayed search
// must still reach the exact optimum. Enumeration cannot survive a
// death, so the supervised optimisation path carries the test.
func TestMemorySpillCleanupAfterDeath(t *testing.T) {
	space := memSpace{Wide: 2500, Branch: 2, Depth: 2}
	want := SequentialOpt(space, memNode{}, memOptProblem())
	dir := t.TempDir()

	net := dist.NewLoopback(3, dist.LoopbackOptions{})
	trs := net.Transports()
	defer net.Close()
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1, PoolBudget: 8 << 10, SpillDir: dir}
	results := make([]OptResult[memNode], 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistOpt(trs[r], GobCodec[memNode]{}, DepthBounded,
				space, memNode{}, memOptProblem(), cfg)
		}(r)
	}
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for net.LiveAt(2) == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Microsecond)
		}
		net.Kill(2)
	}()
	wg.Wait()
	if errs[0] != nil {
		t.Fatalf("rank 0: %v", errs[0])
	}
	if !results[0].Found || results[0].Objective != want.Objective {
		t.Fatalf("objective %d (found=%v) after death, want %d",
			results[0].Objective, results[0].Found, want.Objective)
	}
	if left := spillLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("spill segments leaked past a locality death: %v", left)
	}
}

// TestMemoryStackStealDistMatchesOracle pins the tentpole pairing: a
// tight pool budget under the distributed stack-stealing coordination,
// where idle localities pull work via kSplit instead of pool steals.
func TestMemoryStackStealDistMatchesOracle(t *testing.T) {
	space := memSpace{Wide: 400, Branch: 3, Depth: 3}
	want := space.nodes()
	dir := t.TempDir()

	net := dist.NewLoopback(3, dist.LoopbackOptions{})
	trs := net.Transports()
	defer net.Close()
	cfg := Config{Workers: 2, PoolBudget: 8 << 10, SpillDir: dir}
	results := make([]EnumResult[int64], 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistEnum(trs[r], GobCodec[memNode]{}, StackStealing,
				space, memNode{}, memCountProblem(), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if results[0].Value != want {
		t.Fatalf("stacksteal dist count %d, want %d", results[0].Value, want)
	}
	if left := spillLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("spill base not cleaned up: %v", left)
	}
}
