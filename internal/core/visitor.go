package core

import "sync"

// pruneAction is a visitor's verdict on a just-visited node.
type pruneAction int

const (
	// descend: explore the node's children.
	descend pruneAction = iota
	// pruneChild: skip the node's subtree, continue with its siblings.
	pruneChild
	// pruneLevel: skip the node's subtree and all later siblings.
	// Sound only when the application declares (via PruneLevel) that
	// siblings are generated in non-increasing bound order, so a
	// failed bound check also dooms everything to-the-right — the
	// "prune future children" property of Section 4.1.
	pruneLevel
)

// visitor is the per-worker node-processing strategy determined by the
// search type: it implements the (accumulate) rule for enumeration and
// the (strengthen)/(skip) and (prune) rules for optimisation and
// decision searches.
type visitor[N any] interface {
	visit(n N) pruneAction
}

// enumVisitor accumulates objective values into a worker-local monoid
// sum. Local accumulation plus a final combine is equivalent to the
// semantics' single global accumulator because the monoid is
// commutative, and avoids a contended hot word.
type enumVisitor[S, N, M any] struct {
	space S
	obj   func(S, N) M
	mon   Monoid[M]
	acc   M
	shard *WorkerStats
}

func (v *enumVisitor[S, N, M]) visit(n N) pruneAction {
	v.shard.Nodes++
	v.acc = v.mon.Plus(v.acc, v.obj(v.space, n))
	return descend
}

func newEnumVisitors[S, N, M any](space S, p EnumProblem[S, N, M], m *Metrics, workers int) []visitor[N] {
	vs := make([]visitor[N], workers)
	for w := 0; w < workers; w++ {
		vs[w] = &enumVisitor[S, N, M]{
			space: space, obj: p.Objective, mon: p.Monoid,
			acc: p.Monoid.Zero(), shard: m.shard(w),
		}
	}
	return vs
}

func combineEnum[S, N, M any](mon Monoid[M], vs []visitor[N]) M {
	acc := mon.Zero()
	for _, v := range vs {
		acc = mon.Plus(acc, v.(*enumVisitor[S, N, M]).acc)
	}
	return acc
}

// optVisitor strengthens the shared incumbent and prunes subtrees whose
// bound cannot beat the locality's (possibly stale) view of the best
// objective.
type optVisitor[S, N any] struct {
	space S
	obj   func(S, N) int64
	bound func(S, N) int64
	copyN func(S, N) N // deep copy before retention (ephemeral nodes)
	level bool
	inc   *incumbent[N]
	loc   int
	shard *WorkerStats
}

func (v *optVisitor[S, N]) visit(n N) pruneAction {
	v.shard.Nodes++
	// One atomic load of the locality bound per visit: after a
	// strengthen the bound is at least o, so pruning against
	// max(best, o) matches what a re-read would see in a sequential
	// run, and in a parallel run is merely (soundly) at most one
	// concurrent update staler.
	best := v.inc.localBest(v.loc)
	o := v.obj(v.space, n)
	if o > best {
		// The incumbent outlives this visit: ephemeral nodes must be
		// deep-copied before they are stored.
		nn := n
		if v.copyN != nil {
			nn = v.copyN(v.space, n)
		}
		v.inc.strengthen(v.loc, o, nn)
		best = o
	}
	if v.bound != nil && v.bound(v.space, n) <= best {
		v.shard.Prunes++
		if v.level {
			return pruneLevel
		}
		return pruneChild
	}
	return descend
}

func newOptVisitors[S, N any](space S, p OptProblem[S, N], inc *incumbent[N], m *Metrics, locOf []int) []visitor[N] {
	vs := make([]visitor[N], len(locOf))
	for w := range vs {
		vs[w] = &optVisitor[S, N]{
			space: space, obj: p.Objective, bound: p.Bound, copyN: p.Copy,
			level: p.PruneLevel, inc: inc, loc: locOf[w], shard: m.shard(w),
		}
	}
	return vs
}

// decisionVisitor looks for a node reaching the greatest element of the
// bounded order. Reaching it records the witness and fires the
// (shortcircuit) rule via the global canceller.
type decisionVisitor[S, N any] struct {
	space  S
	obj    func(S, N) int64
	bound  func(S, N) int64
	copyN  func(S, N) N // deep copy before retention (ephemeral nodes)
	level  bool
	target int64
	wit    *witness[N]
	cancel *canceller
	shard  *WorkerStats
}

// witness stores the first decision witness found.
type witness[N any] struct {
	mu    sync.Mutex
	node  N
	obj   int64
	found bool
}

func (w *witness[N]) record(n N, obj int64) {
	w.mu.Lock()
	if !w.found {
		w.node, w.obj, w.found = n, obj, true
	}
	w.mu.Unlock()
}

func (w *witness[N]) get() (N, int64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.node, w.obj, w.found
}

func (v *decisionVisitor[S, N]) visit(n N) pruneAction {
	v.shard.Nodes++
	o := v.obj(v.space, n)
	if o >= v.target {
		nn := n
		if v.copyN != nil {
			nn = v.copyN(v.space, n)
		}
		v.wit.record(nn, o)
		v.cancel.cancel()
		return pruneChild
	}
	if v.bound != nil && v.bound(v.space, n) < v.target {
		v.shard.Prunes++
		if v.level {
			return pruneLevel
		}
		return pruneChild
	}
	return descend
}

func newDecisionVisitors[S, N any](space S, p DecisionProblem[S, N], wit *witness[N], cancel *canceller, m *Metrics, workers int) []visitor[N] {
	vs := make([]visitor[N], workers)
	for w := 0; w < workers; w++ {
		vs[w] = &decisionVisitor[S, N]{
			space: space, obj: p.Objective, bound: p.Bound, copyN: p.Copy,
			level: p.PruneLevel, target: p.Target, wit: wit, cancel: cancel,
			shard: m.shard(w),
		}
	}
	return vs
}
