package core

import "time"

// EnumProblem describes an enumeration search: traverse the whole tree
// and fold the objective of every node into the monoid.
type EnumProblem[S, N, M any] struct {
	// Gen is the application's lazy node generator factory.
	Gen GenFactory[S, N]
	// Objective maps each visited node into the monoid.
	Objective func(space S, n N) M
	// Monoid accumulates objective values. It must be commutative.
	Monoid Monoid[M]
}

// OptProblem describes an optimisation search: find a node maximising
// Objective. (Minimisation problems negate their objective.)
type OptProblem[S, N any] struct {
	Gen GenFactory[S, N]
	// Objective is the value to maximise.
	Objective func(space S, n N) int64
	// Bound, if non-nil, returns an upper bound on the objective of
	// any node in the subtree rooted at n (n excluded — n itself has
	// already been visited when Bound is consulted). Subtrees whose
	// bound cannot beat the incumbent are pruned, implementing the
	// (prune) rule with the admissible relation u ▷ v ⇔ h(u) ≥ Bound(v).
	Bound func(space S, n N) int64
	// PruneLevel declares that every generator yields children in
	// non-increasing Bound order, so a failed bound check on a child
	// also prunes all of its later siblings (the "prune future
	// children to-the-right" property of Section 4.1). Setting it
	// when the order property does not hold loses solutions.
	PruneLevel bool
	// Copy, if non-nil, returns a deeply independent copy of a node.
	// Required when the application's generators implement
	// EphemeralGenerator: the engine calls it before retaining a node
	// beyond the current visit (strengthening the incumbent), since an
	// ephemeral child's storage may be overwritten by the generator's
	// next step. Retention is rare — a handful of incumbent
	// improvements per search — so the copy cost is negligible.
	Copy func(space S, n N) N
}

// DecisionProblem describes a decision search: find any node whose
// objective reaches Target, the greatest element of the bounded order.
// Search short-circuits globally as soon as a witness is found.
type DecisionProblem[S, N any] struct {
	Gen GenFactory[S, N]
	// Objective is compared against Target.
	Objective func(space S, n N) int64
	// Target is the greatest element; reaching it ends the search.
	Target int64
	// Bound, if non-nil, upper-bounds the objective over the subtree
	// below n; subtrees with Bound < Target are pruned.
	Bound func(space S, n N) int64
	// PruneLevel declares non-increasing sibling Bound order, letting
	// one failed bound check prune all later siblings (see
	// OptProblem.PruneLevel).
	PruneLevel bool
	// Copy, if non-nil, deep-copies a node before the engine retains
	// it as the decision witness (see OptProblem.Copy).
	Copy func(space S, n N) N
}

// Stats reports work performed by a search.
type Stats struct {
	Nodes       int64 // search-tree nodes visited (processed)
	Prunes      int64 // subtrees pruned by a bound check
	Spawns      int64 // tasks created by a spawn rule
	StealsOK    int64 // successful steals (pool or stack), local or remote
	StealsFail  int64 // steal attempts that found no work
	LocalSteals int64 // tasks robbed from sibling pool shards (no transport)
	Backtracks  int64 // generator-stack pops
	Broadcasts  int64 // incumbent-bound broadcasts sent to peer localities
	Workers     int   // workers used
	Elapsed     time.Duration

	// Ordered-scheduling counters (Config.Order). OrderedSteals counts
	// transport steals whose victim was chosen by a priority summary
	// rather than at random; PrioHist is the histogram of spawned task
	// priorities (bucket i = priority i, last bucket saturating).
	OrderedSteals int64
	PrioHist      [prioHistBuckets]int64

	// Wire-level counters, filled from the transport's Meter. For the
	// TCP transport these are real frames and bytes on the wire; for
	// the loopback transport they are the logical messages a wire
	// transport would have sent, so single-process experiments can
	// still report protocol pressure (with zero bytes — in-process
	// hand-over passes nodes by reference, encoding nothing).
	Frames       int64 // transport frames sent
	WireBytes    int64 // bytes sent on the wire
	BatchTasks   int64 // tasks received in steal replies (occupancy numerator)
	BatchReplies int64 // non-empty steal replies received (occupancy denominator)
	PrefetchHits int64 // steals satisfied from the steal-ahead buffer

	// Fault-tolerance counters (distributed runs). Deaths is the
	// number of localities that died mid-search (every survivor
	// observes the same global number, so merges take the max);
	// ReplayedTasks counts ledger entries re-enqueued by survivors —
	// the subtree roots the dead ranks were holding; LedgerPeak is the
	// largest supervised-task retention any locality reached.
	Deaths        int64
	ReplayedTasks int64
	LedgerPeak    int64
	// LinkResumes counts v8 session resumes completed by this process's
	// transports (Config.LinkGrace): connections that broke and healed
	// without a death. Summed across localities on merge.
	LinkResumes int64

	// Memory-governor counters (Config.PoolBudget; the peaks are live
	// for every pool-based run). PoolPeakTasks/PoolPeakBytes are the
	// largest resident workpool any locality reached (bytes via the
	// calibrated per-task estimate; merges take the max — peaks are
	// per-locality high-water marks, not additive); SpilledTasks and
	// SpillBytes count tasks and segment bytes parked on disk by
	// pressure spills, summed across localities.
	PoolPeakTasks int64
	PoolPeakBytes int64
	SpilledTasks  int64
	SpillBytes    int64
}

// BatchOccupancy is the mean number of tasks per non-empty steal
// reply — 1.0 on an unbatched transport, up to the transport's
// StealBatch when victims have deep backlogs.
func (s Stats) BatchOccupancy() float64 {
	if s.BatchReplies == 0 {
		return 0
	}
	return float64(s.BatchTasks) / float64(s.BatchReplies)
}

// PrefetchHitRate is the fraction of remote task acquisitions served
// from the steal-ahead buffer instead of a blocking round trip.
func (s Stats) PrefetchHitRate() float64 {
	if s.StealsOK == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(s.StealsOK)
}

// merge folds another process's stats into s (distributed result
// aggregation). Elapsed is left alone: wall-clock time is the
// coordinator's, not a sum.
func (s *Stats) merge(o Stats) {
	s.Nodes += o.Nodes
	s.Prunes += o.Prunes
	s.Spawns += o.Spawns
	s.StealsOK += o.StealsOK
	s.StealsFail += o.StealsFail
	s.LocalSteals += o.LocalSteals
	s.Backtracks += o.Backtracks
	s.Broadcasts += o.Broadcasts
	s.Workers += o.Workers
	s.OrderedSteals += o.OrderedSteals
	for i := range s.PrioHist {
		s.PrioHist[i] += o.PrioHist[i]
	}
	s.Frames += o.Frames
	s.WireBytes += o.WireBytes
	s.BatchTasks += o.BatchTasks
	s.BatchReplies += o.BatchReplies
	s.PrefetchHits += o.PrefetchHits
	if o.Deaths > s.Deaths {
		s.Deaths = o.Deaths
	}
	s.ReplayedTasks += o.ReplayedTasks
	s.LinkResumes += o.LinkResumes
	if o.LedgerPeak > s.LedgerPeak {
		s.LedgerPeak = o.LedgerPeak
	}
	if o.PoolPeakTasks > s.PoolPeakTasks {
		s.PoolPeakTasks = o.PoolPeakTasks
	}
	if o.PoolPeakBytes > s.PoolPeakBytes {
		s.PoolPeakBytes = o.PoolPeakBytes
	}
	s.SpilledTasks += o.SpilledTasks
	s.SpillBytes += o.SpillBytes
}

func (s *Stats) add(w WorkerStats) {
	s.Nodes += w.Nodes
	s.Prunes += w.Prunes
	s.Spawns += w.Spawns
	s.StealsOK += w.StealsOK
	s.StealsFail += w.StealsFail
	s.LocalSteals += w.LocalSteals
	s.Backtracks += w.Backtracks
	s.PrefetchHits += w.PrefetchHits
	s.OrderedSteals += w.OrderedSteals
	for i := range s.PrioHist {
		s.PrioHist[i] += w.PrioHist[i]
	}
}

// EnumResult is the outcome of an enumeration skeleton.
type EnumResult[M any] struct {
	Value M
	Stats Stats
}

// OptResult is the outcome of an optimisation skeleton. Found is false
// only when the search visited no nodes (never happens: the root is
// always visited).
type OptResult[N any] struct {
	Best      N
	Objective int64
	Found     bool
	Stats     Stats
}

// DecisionResult is the outcome of a decision skeleton. Found reports
// whether a node with Objective >= Target exists; when true, Witness is
// one (nondeterministically chosen) such node.
type DecisionResult[N any] struct {
	Witness   N
	Objective int64
	Found     bool
	Stats     Stats
}
