package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The v8 wire framing: body + link sequence + CRC32C, covered by the
// length prefix. Every frame kind must cross it intact, carrying its
// sequence number.
func TestEncodeFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{Kind: kHello, Want: wireVersion, Blob: []byte("app=x n=10")},
		{Kind: kSteal, From: 2, To: 1, Seq: 77, Want: 4},
		{Kind: kStealR, From: 1, To: 2, Seq: 77, Tasks: []WireTask{
			{Payload: []byte("abc"), ID: TaskID(1, 9), Depth: 3, Prio: 12, Bound: -9},
		}},
		{Kind: kBound, From: 4, Obj: -123456789, Blob: []byte{}},
		{Kind: kPing, From: 2},
		{Kind: kAck, From: 1, Acks: []uint64{TaskID(0, math.MaxUint32), TaskID(2, 1)}},
		// v8: the resume handshake itself (session id in Seq, receive
		// high-water mark in Obj) always travels with link sequence 0.
		{Kind: kResume, From: 3, Seq: 1<<60 | 42, Obj: 917},
		{Kind: kReject, Seq: 1<<60 | 42, Blob: []byte("unknown or expired session")},
	}
	for i, f := range frames {
		for _, seq := range []uint32{0, 1, 99, math.MaxUint32} {
			buf := encodeFrame(nil, &f, seq)
			var got frame
			gotSeq, n, err := readRawFrame(bufio.NewReader(bytes.NewReader(buf)), &got)
			if err != nil {
				t.Fatalf("frame %d seq %d: read: %v", i, seq, err)
			}
			if gotSeq != seq {
				t.Fatalf("frame %d: link seq %d round-tripped to %d", i, seq, gotSeq)
			}
			if n != len(buf) {
				t.Fatalf("frame %d: wire size %d, want %d", i, n, len(buf))
			}
			if !reflect.DeepEqual(got, f) {
				t.Fatalf("frame %d round trip:\n got %+v\nwant %+v", i, got, f)
			}
		}
	}
}

// Any single bit flip anywhere in the frame — length prefix, body,
// sequence word, or the CRC itself — must fail the read. That is the
// whole point of the trailer: a lying stream becomes a link failure,
// never a silently wrong frame.
func TestReadRawFrameCorruption(t *testing.T) {
	f := frame{Kind: kStealR, From: 1, To: 2, Seq: 9, Delta: 3, PB: 11, HasPB: true,
		Tasks: []WireTask{{Payload: []byte("payload-bytes"), ID: TaskID(1, 77), Depth: 5, Prio: 7, Bound: 40}}}
	clean := encodeFrame(nil, &f, 31)
	for pos := 0; pos < len(clean); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), clean...)
			mut[pos] ^= 1 << bit
			var g frame
			seq, _, err := readRawFrame(bufio.NewReader(bytes.NewReader(mut)), &g)
			if err == nil && seq == 31 && reflect.DeepEqual(g, f) {
				t.Fatalf("bit flip at byte %d bit %d went undetected", pos, bit)
			}
		}
	}
}

// Every strict prefix of a valid encoding must error (EOF family or a
// CRC/length complaint), never block the caller into a wrong frame.
func TestReadRawFrameTruncated(t *testing.T) {
	clean := encodeFrame(nil, &frame{Kind: kGossip, From: 2, To: 1, Obj: 456}, 7)
	for cut := 0; cut < len(clean); cut++ {
		var g frame
		if _, _, err := readRawFrame(bufio.NewReader(bytes.NewReader(clean[:cut])), &g); err == nil {
			t.Fatalf("read of %d/%d-byte truncation succeeded", cut, len(clean))
		}
	}
	// A frame shorter than its own trailer is structurally impossible.
	short := binary.LittleEndian.AppendUint32(nil, 4)
	short = append(short, 0, 0, 0, 0)
	var g frame
	if _, _, err := readRawFrame(bufio.NewReader(bytes.NewReader(short)), &g); err == nil {
		t.Fatal("sub-trailer frame accepted")
	}
	// A length prefix past the body bound must be rejected before any
	// allocation proportional to it.
	huge := binary.LittleEndian.AppendUint32(nil, uint32(maxFrameBody+9))
	if _, _, err := readRawFrame(bufio.NewReader(bytes.NewReader(huge)), &g); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// readRawFrame consumes untrusted network bytes: whatever arrives, it
// must return an error or a CRC-verified frame, never panic.
func FuzzReadRawFrame(f *testing.F) {
	f.Add(encodeFrame(nil, &frame{Kind: kPing, From: 2}, 1))
	f.Add(encodeFrame(nil, &frame{Kind: kResume, From: 1, Seq: 99, Obj: 3}, 0))
	f.Add(encodeFrame(nil, &frame{Kind: kStealR, From: 1, To: 2, Seq: 5,
		Tasks: []WireTask{{Payload: []byte("p"), ID: TaskID(0, 3), Depth: 1, Bound: 4}}}, 12))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		_, _, _ = readRawFrame(bufio.NewReader(bytes.NewReader(data)), &fr)
	})
}

// The retransmit log replays exactly the frames the peer missed, and
// refuses to resume once trimming has eaten an unacknowledged frame.
func TestSessionReplay(t *testing.T) {
	s := newSession(1, time.Second)
	for seq := uint64(1); seq <= 5; seq++ {
		s.appendLog(seq, encodeFrame(nil, &frame{Kind: kPing, From: 1}, uint32(seq)))
	}
	var buf bytes.Buffer
	if err := s.replayAfter(&buf, 2, 5); err != nil {
		t.Fatalf("replay: %v", err)
	}
	br := bufio.NewReader(&buf)
	var seqs []uint32
	for {
		var fr frame
		seq, _, err := readRawFrame(br, &fr)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading replayed stream: %v", err)
		}
		seqs = append(seqs, seq)
	}
	if want := []uint32{3, 4, 5}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("replayed sequences %v, want %v", seqs, want)
	}

	s.trimThrough(4)
	if err := s.replayAfter(io.Discard, 4, 5); err != nil {
		t.Fatalf("replay after confirmed trim: %v", err)
	}
	if err := s.replayAfter(io.Discard, 2, 5); err == nil {
		t.Fatal("replay past the trimmed log succeeded")
	} else if !strings.Contains(err.Error(), "trimmed") {
		t.Fatalf("unexpected trim error: %v", err)
	}
	// Nothing outstanding: an empty (or trimmed) log is fine.
	s.trimThrough(5)
	if err := s.replayAfter(io.Discard, 5, 5); err != nil {
		t.Fatalf("replay with nothing outstanding: %v", err)
	}
}

// The log budget bounds memory by dropping oldest-first, never the
// entry just appended.
func TestSessionLogBudget(t *testing.T) {
	s := newSession(1, time.Second)
	chunk := make([]byte, sessLogBudget/3)
	for seq := uint64(1); seq <= 6; seq++ {
		s.appendLog(seq, chunk)
	}
	s.mu.Lock()
	first, n, bytes := s.log[0].seq, len(s.log), s.logBytes
	s.mu.Unlock()
	if bytes > sessLogBudget {
		t.Fatalf("log holds %d bytes, budget %d", bytes, sessLogBudget)
	}
	if first == 1 {
		t.Fatal("budget overflow did not trim the oldest entry")
	}
	if last := first + uint64(n) - 1; last != 6 {
		t.Fatalf("newest retained entry is %d, want 6", last)
	}
}

// A suspended session breaks when its grace timer fires, and the break
// releases a parked accepting-side reader.
func TestSessionGraceExpiry(t *testing.T) {
	cn := &wconn{sess: newSession(7, 50*time.Millisecond)}
	nio := newConnIO(nopConn{})
	cn.cur.Store(nio)
	done := make(chan bool, 1)
	go func() { done <- cn.await(nio) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("await reported a live session with no resume")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("await never released after grace expiry")
	}
	if !cn.sess.isBroken() {
		t.Fatal("session still unbroken after grace expiry")
	}
}

// nopConn satisfies net.Conn for wconn plumbing that never touches the
// wire in a test.
type nopConn struct{}

func (nopConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(b []byte) (int, error)      { return len(b), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nopAddr{} }
func (nopConn) RemoteAddr() net.Addr             { return nopAddr{} }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

type nopAddr struct{}

func (nopAddr) Network() string { return "nop" }
func (nopAddr) String() string  { return "nop" }

// Partition severing is symmetric, nil-safe, and scoped to links that
// cross the cut.
func TestFaultPlanPartition(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Severed(0, 1) {
		t.Fatal("nil plan severed a link")
	}
	p := NewFaultPlan(1)
	if p.Severed(0, 2) {
		t.Fatal("empty plan severed a link")
	}
	p.Partition([]int{2}, 0)
	for _, c := range []struct {
		a, b int
		cut  bool
	}{{0, 2, true}, {2, 0, true}, {1, 2, true}, {0, 1, false}, {2, 2, false}} {
		if got := p.Severed(c.a, c.b); got != c.cut {
			t.Fatalf("Severed(%d,%d) = %v, want %v", c.a, c.b, got, c.cut)
		}
	}
	// act reports the severed state too — the TCP write path keys off it.
	if _, severed := p.act(0, 2); !severed {
		t.Fatal("act did not observe the partition")
	}
	p.Heal()
	if p.Severed(0, 2) {
		t.Fatal("link still severed after heal")
	}
}

// A positive partition duration schedules its own heal.
func TestFaultPlanPartitionAutoHeal(t *testing.T) {
	p := NewFaultPlan(1)
	p.Partition([]int{1}, 30*time.Millisecond)
	if !p.Severed(0, 1) {
		t.Fatal("partition not in force")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Severed(0, 1) {
		if time.Now().After(deadline) {
			t.Fatal("scheduled heal never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// OnHeal runs immediately with no partition active, and queues across
// one — every queued callback fires exactly once at the heal.
func TestFaultPlanOnHeal(t *testing.T) {
	p := NewFaultPlan(1)
	var ran atomic.Int32
	p.OnHeal(func() { ran.Add(1) })
	if ran.Load() != 1 {
		t.Fatal("OnHeal with no partition did not run inline")
	}
	p.Partition([]int{1}, 0)
	p.OnHeal(func() { ran.Add(1) })
	p.OnHeal(func() { ran.Add(1) })
	if ran.Load() != 1 {
		t.Fatal("OnHeal ran during the partition")
	}
	p.Heal()
	if ran.Load() != 3 {
		t.Fatalf("heal ran %d callbacks, want 2", ran.Load()-1)
	}
	p.Heal() // idempotent: nothing left to run
	if ran.Load() != 3 {
		t.Fatal("second heal re-ran callbacks")
	}
}

// Link overrides are symmetric ({a,b} answers {b,a}) and win over the
// default; the seeded rng makes every roll reproducible.
func TestFaultPlanLinkLookup(t *testing.T) {
	p := NewFaultPlan(42)
	p.SetDefault(LinkFault{Latency: time.Millisecond})
	p.SetLink(1, 2, LinkFault{Latency: 5 * time.Millisecond, Drop: 1})
	for _, dir := range [][2]int{{1, 2}, {2, 1}} {
		act, severed := p.act(dir[0], dir[1])
		if severed {
			t.Fatalf("link %v severed with no partition", dir)
		}
		if act.delay != 5*time.Millisecond || !act.drop {
			t.Fatalf("link %v rolled %+v, want the override", dir, act)
		}
	}
	if act, _ := p.act(0, 3); act.delay != time.Millisecond || act.drop {
		t.Fatalf("default link rolled %+v", act)
	}
	// Determinism: two plans with the same seed roll identical fates.
	mk := func() []faultAction {
		q := NewFaultPlan(7)
		q.SetDefault(LinkFault{Jitter: time.Millisecond, Drop: 0.5, Dup: 0.5, Corrupt: 0.5, Reorder: 0.5})
		var acts []faultAction
		for i := 0; i < 50; i++ {
			a, _ := q.act(0, 1)
			acts = append(acts, a)
		}
		return acts
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("same seed rolled different fates")
	}
}
