package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// trivialVisitor descends everywhere and counts nothing beyond the
// shared metrics shard.
type trivialVisitor struct{ shard *WorkerStats }

func (v *trivialVisitor) visit(int) pruneAction {
	v.shard.Nodes++
	return descend
}

// newTestEngine builds an engine over a started loopback fabric.
func newTestEngine(cfg Config, m *Metrics, cancel *canceller) (*engine[struct{}, int], *fabric[int]) {
	gf := func(struct{}, int) NodeGenerator[int] { return EmptyGen[int]{} }
	fab := newLoopbackFabric[int](cfg)
	e := newEngine(struct{}{}, gf, cfg, m, cancel, fab, newPrioAssigner[struct{}, int](cfg.Order, struct{}{}, 0, nil))
	fab.start(cancel)
	return e, fab
}

func TestRunPoolWorkersExecutesAllSpawns(t *testing.T) {
	cfg := Config{Workers: 4}.withDefaults()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	e, fab := newTestEngine(cfg, m, cancel)

	vs := make([]visitor[int], cfg.Workers)
	for w := range vs {
		vs[w] = &trivialVisitor{shard: m.shard(w)}
	}
	var executed atomic.Int64
	e.runPoolWorkers(0, vs, func(w int, _ visitor[int], sh *WorkerStats, task Task[int]) {
		defer e.finishTask(w, task)
		executed.Add(1)
		// fan out a small two-level tree of tasks
		if task.Depth < 2 {
			for i := 0; i < 3; i++ {
				e.spawnTask(w, sh, Task[int]{Node: task.Node*10 + i, Depth: task.Depth + 1})
			}
		}
	})
	// 1 root + 3 + 9 = 13 tasks
	if executed.Load() != 13 {
		t.Fatalf("executed %d tasks, want 13", executed.Load())
	}
	select {
	case <-fab.trs[0].Done():
	default:
		t.Fatal("live-task count not quiescent after join")
	}
}

func TestRunPoolWorkersCancelStopsEarly(t *testing.T) {
	cfg := Config{Workers: 4}.withDefaults()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	e, _ := newTestEngine(cfg, m, cancel)

	vs := make([]visitor[int], cfg.Workers)
	for w := range vs {
		vs[w] = &trivialVisitor{shard: m.shard(w)}
	}
	var executed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.runPoolWorkers(0, vs, func(w int, _ visitor[int], sh *WorkerStats, task Task[int]) {
			defer e.finishTask(w, task)
			if executed.Add(1) == 5 {
				cancel.cancel() // simulate a decision witness
				return
			}
			// endless task fan-out: only cancellation can stop this
			for i := 0; i < 2; i++ {
				e.spawnTask(w, sh, Task[int]{Node: task.Node + 1, Depth: task.Depth + 1})
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the workers")
	}
}

// newTestTopology builds a topology over a started loopback fabric.
func newTestTopology(cfg Config) *topology[int] {
	fab := newLoopbackFabric[int](cfg)
	tp := newTopology(fab, cfg)
	fab.start(newCanceller())
	return tp
}

func TestTopologyLocalFirst(t *testing.T) {
	cfg := Config{Workers: 4, Localities: 2, Seed: 9}.withDefaults()
	tp := newTestTopology(cfg)
	var sh WorkerStats
	// worker 0 is locality 0; push one task in each pool
	tp.pools[0].Push(Task[int]{Node: 100})
	tp.pools[1].Push(Task[int]{Node: 200})
	task, ok := tp.popOrSteal(0, &sh)
	if !ok || task.Node != 100 {
		t.Fatalf("worker 0 took %d, want its local task 100", task.Node)
	}
	if sh.StealsOK != 0 {
		t.Fatal("local pop counted as a steal")
	}
	// local pool now empty: next take must be a remote steal through
	// the loopback transport
	task, ok = tp.popOrSteal(0, &sh)
	if !ok || task.Node != 200 {
		t.Fatalf("worker 0 stole %d, want remote task 200", task.Node)
	}
	if sh.StealsOK != 1 {
		t.Fatalf("remote steal not recorded: %+v", sh)
	}
}

func TestTopologyEmptyEverywhere(t *testing.T) {
	cfg := Config{Workers: 2, Localities: 2}.withDefaults()
	tp := newTestTopology(cfg)
	var sh WorkerStats
	if _, ok := tp.popOrSteal(0, &sh); ok {
		t.Fatal("popOrSteal invented a task")
	}
	if sh.StealsFail == 0 {
		t.Fatal("failed remote probe not recorded")
	}
}

func TestTopologyWorkerAssignment(t *testing.T) {
	cfg := Config{Workers: 5, Localities: 2}.withDefaults()
	tp := newTestTopology(cfg)
	want := []int{0, 1, 0, 1, 0}
	for w, loc := range want {
		if tp.locality(w) != loc {
			t.Fatalf("worker %d at locality %d, want %d", w, tp.locality(w), loc)
		}
	}
}
