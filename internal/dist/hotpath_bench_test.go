package dist

import (
	"net"
	"runtime"
	"testing"
)

// Steady-state allocation census of the wire hot path (the zero-alloc
// claim of the fused-kernel/zero-alloc-wire PR): header-only frames —
// deltas, acks, the flush-quantum traffic — must move through
// encodeFrame's reused scratch, the vectored batch buffers, and
// readRawFrameInto's recycled read image without per-frame heap
// allocation. Gated at <= 1 alloc/frame by cmd/benchguard via
// BENCH_transport.json (the budget tolerates incidental runtime
// allocation; the measured number should sit near zero).

// benchWirePair returns two wconns joined by a real TCP loopback
// connection.
func benchWirePair(b *testing.B) (snd, rcv *wconn, cleanup func()) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		b.Fatal(err)
	}
	ac := <-ch
	ln.Close()
	if ac.err != nil {
		cc.Close()
		b.Fatal(ac.err)
	}
	snd = newWconn(cc, nil)
	rcv = newWconn(ac.c, nil)
	return snd, rcv, func() {
		cc.Close()
		ac.c.Close()
	}
}

// drainFrames receives exactly n frames on cn, reporting the first
// error on the returned channel (nil on success).
func drainFrames(cn *wconn, n int) chan error {
	done := make(chan error, 1)
	go func() {
		var f frame
		for i := 0; i < n; i++ {
			if err := cn.recv(&f); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

// BenchmarkHotPathWireAllocs/send-recv: one header-only kDelta frame
// per op through send and recv. allocs/op IS allocs per frame, both
// endpoints combined (same process, same heap).
//
// BenchmarkHotPathWireAllocs/sendmany: one vectored 8-frame flush
// batch (7 acks + 1 delta, the flush-quantum shape) per op; the
// reported allocs/frame divides the heap delta over every frame moved.
func BenchmarkHotPathWireAllocs(b *testing.B) {
	b.Run("send-recv", func(b *testing.B) {
		snd, rcv, cleanup := benchWirePair(b)
		defer cleanup()
		done := drainFrames(rcv, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := snd.send(&frame{Kind: kDelta, From: 1, Delta: 1}); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	})
	b.Run("sendmany", func(b *testing.B) {
		const batch = 8
		snd, rcv, cleanup := benchWirePair(b)
		defer cleanup()
		done := drainFrames(rcv, b.N*batch)
		fs := make([]*frame, batch)
		frames := make([]frame, batch)
		b.ReportAllocs()
		b.ResetTimer()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			for j := range frames {
				frames[j] = frame{Kind: kAck, From: 1, To: 0}
			}
			frames[batch-1] = frame{Kind: kDelta, From: 1, Delta: -1}
			for j := range fs {
				fs[j] = &frames[j]
			}
			if err := snd.sendMany(fs); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&ms1)
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(b.N*batch), "allocs/frame")
	})
}
