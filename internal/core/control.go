package core

import (
	"sync"
	"sync/atomic"
)

// canceller implements the global short-circuit of the (shortcircuit)
// rule: a decision search that reaches the greatest element cancels all
// outstanding work. When a broadcast hook is wired (fabric.start), a
// locally originated cancel also reaches every peer locality; cancels
// received FROM a peer latch without re-broadcasting (cancelQuiet).
type canceller struct {
	flag  atomic.Bool
	ch    chan struct{}
	once  sync.Once
	bcast func()
}

func newCanceller() *canceller {
	return &canceller{ch: make(chan struct{})}
}

func (c *canceller) cancel() {
	first := false
	c.once.Do(func() {
		c.flag.Store(true)
		close(c.ch)
		first = true
	})
	// Broadcast outside the Once: a loopback peer's OnCancel calls
	// cancelQuiet on this same canceller synchronously, which would
	// deadlock inside Do.
	if first && c.bcast != nil {
		c.bcast()
	}
}

// cancelQuiet latches the cancellation without notifying peers.
func (c *canceller) cancelQuiet() {
	c.once.Do(func() {
		c.flag.Store(true)
		close(c.ch)
	})
}

func (c *canceller) cancelled() bool { return c.flag.Load() }

// tracker counts live tasks for distributed termination detection: a
// task is registered (add) before it becomes visible to any worker and
// deregistered (finish) after it has completed, including spawning its
// children. The done channel closes exactly when the last task
// finishes, which is sound because children are always added before
// their parent finishes, so the count cannot touch zero early.
type tracker struct {
	live atomic.Int64
	done chan struct{}
	once sync.Once
}

func newTracker() *tracker {
	return &tracker{done: make(chan struct{})}
}

func (t *tracker) add(n int64) { t.live.Add(n) }

func (t *tracker) finish() {
	if t.live.Add(-1) == 0 {
		t.once.Do(func() { close(t.done) })
	}
}

func (t *tracker) quiescent() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}
