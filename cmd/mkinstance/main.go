// Command mkinstance writes the named synthetic instances to DIMACS
// .clq files, for interoperability with other clique solvers and for
// inspecting exactly what the harness searches:
//
//	mkinstance -out /tmp/instances            # all Table 1 instances
//	mkinstance -out /tmp/instances -name brock400_1
//	mkinstance -out /tmp/instances -kneser 10,3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"yewpar/internal/graph"
	"yewpar/internal/instances"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory")
		name   = flag.String("name", "", "write only this named Table 1 instance")
		kneser = flag.String("kneser", "", "write Kneser graph K(n,k), e.g. 10,3")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	wrote := 0
	if *kneser != "" {
		parts := strings.SplitN(*kneser, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-kneser wants n,k"))
		}
		n, err1 := strconv.Atoi(parts[0])
		k, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || n <= 0 || k <= 0 || k > n {
			fatal(fmt.Errorf("bad -kneser %q", *kneser))
		}
		g := graph.Kneser(n, k)
		file := filepath.Join(*out, fmt.Sprintf("kneser_%d_%d.clq", n, k))
		write(file, g)
		fmt.Printf("%s: %v (omega = %d)\n", file, g, graph.KneserCliqueNumber(n, k))
		wrote++
	}
	for _, inst := range instances.Table1() {
		if *name != "" && inst.Name != *name {
			continue
		}
		if *name == "" && *kneser != "" {
			continue // explicit kneser request: skip the full set
		}
		g := inst.Gen()
		file := filepath.Join(*out, inst.Name+".clq")
		write(file, g)
		fmt.Printf("%s: %v\n", file, g)
		wrote++
	}
	if spread, omega := instances.SpreadsH44Like(); *name == "spreads_H44" || (*name == "" && *kneser == "") {
		file := filepath.Join(*out, "spreads_H44.clq")
		write(file, spread)
		fmt.Printf("%s: %v (omega = %d)\n", file, spread, omega)
		wrote++
	}
	if wrote == 0 {
		fatal(fmt.Errorf("no instance matched %q", *name))
	}
}

func write(path string, g *graph.Graph) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := graph.WriteDIMACS(f, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkinstance:", err)
	os.Exit(1)
}
