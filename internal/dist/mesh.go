package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The mesh topology (wire protocol v5) flattens the star: workers dial
// each other directly, so steal requests, replies, and completion acks
// travel one hop instead of two and never cross the coordinator.
// Registration still happens at the coordinator — each worker
// advertises a peer listener address (kPeerAddr) right after its
// hello, and the coordinator hands every worker the full rank-indexed
// address table (kPeers) with its welcome. Rank r then dials ranks
// 1..r-1 and accepts connections from ranks r+1..size-1, identified by
// a kPeerHello carrying the dialer's rank; slot 0 needs no dial
// because the registration connection doubles as the rank-0 peer link.
//
// With no hub seeing every frame, two star-era mechanisms are
// replaced:
//
//   - bounds spread epidemic-style: a broadcast gossips to a couple of
//     random peers (kGossip), improvements re-gossip, every frame
//     piggybacks its sender's best bound, and an anti-entropy loop
//     pushes the local best to one random peer per interval — so the
//     incumbent still reaches everyone without a fan-out hub. The
//     node-carrying broadcast still goes to the coordinator, which
//     remains the incumbent store that survives its finder's death.
//   - live-task deltas never cross the wire at all: each rank folds
//     AddTasks into its waveNode and the Safra-style termination wave
//     (wave.go) detects global quiescence with a circulating token.
//
// The coordinator keeps registration, the incumbent store, death
// detection (heartbeat liveness on the registration connections, with
// kDeath fan-out as the single source of death truth), cancellation
// fan-out, and result aggregation — little enough that its residual
// state fits in a Snapshot a standby could adopt.

// meshGossipFan is how many random peers a fresh bound is pushed to.
const meshGossipFan = 2

// meshGossipInterval paces the worker anti-entropy loop: each worker
// pushes its best bound to one random peer this often until the search
// ends.
const meshGossipInterval = 25 * time.Millisecond

// meshHubGossipInterval paces the hub's anti-entropy loop. The hub
// never pushes improvements eagerly — de-loading the coordinator is
// the mesh's whole point, and the piggyback layer spreads its bounds
// for free (every steal reply it serves stamps pb, every task it hands
// over carries a bound snapshot), so an eager push would mostly repeat
// what ordinary traffic already said. The residual anti-entropy tick
// is tighter than the workers' to bound the latency of the one case
// piggybacks miss — an improvement at an otherwise quiet hub — and
// carried-bound suppression makes the no-news tick free.
const meshHubGossipInterval = 5 * time.Millisecond

// tokenOf unpacks a kToken frame.
func tokenOf(f *frame) waveToken {
	return waveToken{
		round:  f.Seq,
		q:      f.Obj,
		black:  f.Want&tokBlack != 0,
		active: f.Want&tokActive != 0,
	}
}

// colourBits packs a token's colour into the Want field.
func colourBits(tok waveToken) int {
	bits := 0
	if tok.black {
		bits |= tokBlack
	}
	if tok.active {
		bits |= tokActive
	}
	return bits
}

// waitMesh is Listener.Wait for TopologyMesh deployments.
func (l *Listener) waitMesh(workers int) (Transport, error) {
	deadline := time.Now().Add(l.opts.RegTimeout)
	h := &meshHub{
		size:      workers + 1,
		conns:     make([]*wconn, workers+1),
		opts:      l.opts,
		spec:      l.spec,
		started:   make(chan struct{}),
		done:      make(chan struct{}),
		deaths:    newDeathBox(workers + 1),
		blobs:     make([][]byte, workers+1),
		contrib:   make([]bool, workers+1),
		gotAll:    make(chan struct{}),
		peerPrio:  newPeerPrios(workers + 1),
		peerAddrs: make([]string, workers+1),
		alive:     make([]bool, workers+1),
		ln:        l.ln,
	}
	for i := range h.alive {
		h.alive[i] = true
	}
	if l.opts.Standby {
		h.standby = true
		h.mirror = newHubMirror()
		h.repl = newHubRepl()
	}
	h.pbStamp.Store(math.MinInt64)
	h.pbSeen.Store(math.MinInt64)
	h.wave = newWaveNode(0, workers+1, h.sendToken, h.terminate)
	var lastReject error
	regFailed := func(err error) (Transport, error) {
		registered := 0
		for _, cn := range h.conns {
			if cn != nil {
				cn.close()
				registered++
			}
		}
		missing := fmt.Sprintf("ranks %d..%d", registered+1, workers)
		if registered+1 == workers {
			missing = fmt.Sprintf("rank %d", workers)
		}
		if lastReject != nil {
			return nil, fmt.Errorf("dist: registration timed out with %d/%d workers (missing %s): %v (last rejected candidate: %v)", registered, workers, missing, err, lastReject)
		}
		return nil, fmt.Errorf("dist: registration timed out with %d/%d workers (missing %s): %w", registered, workers, missing, err)
	}
	for rank := 1; rank <= workers; {
		if d, ok := l.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		c, err := l.ln.Accept()
		if err != nil {
			return regFailed(err)
		}
		cn := newWconn(c, &h.ctr)
		cn.pb = &h.pbStamp
		cn.ps = selfPrioFn(&h.h)
		cn.psFrom = 0
		c.SetReadDeadline(deadline)
		var hello frame
		if err := cn.recv(&hello); err != nil || hello.Kind != kHello {
			cn.close()
			lastReject = fmt.Errorf("bad registration from %v", c.RemoteAddr())
			continue
		}
		if hello.Want != wireVersion {
			cn.send(&frame{Kind: kReject, Blob: []byte(fmt.Sprintf("wire protocol mismatch: coordinator speaks v%d, worker v%d", wireVersion, hello.Want))})
			cn.close()
			lastReject = fmt.Errorf("worker %v speaks wire protocol v%d, want v%d", c.RemoteAddr(), hello.Want, wireVersion)
			continue
		}
		if string(hello.Blob) != l.spec {
			cn.send(&frame{Kind: kReject, Blob: []byte(fmt.Sprintf("spec mismatch: coordinator runs %q, worker runs %q", l.spec, string(hello.Blob)))})
			cn.close()
			lastReject = fmt.Errorf("worker %v registered with mismatched spec %q (coordinator: %q)", c.RemoteAddr(), string(hello.Blob), l.spec)
			continue
		}
		// The mesh handshake continues: the worker must advertise the
		// peer listener address its rank will be reachable on.
		var pa frame
		if err := cn.recv(&pa); err != nil || pa.Kind != kPeerAddr || len(pa.Blob) == 0 {
			cn.send(&frame{Kind: kReject, Blob: []byte("mesh registration requires a peer address")})
			cn.close()
			lastReject = fmt.Errorf("worker %v sent no peer address", c.RemoteAddr())
			continue
		}
		c.SetReadDeadline(time.Time{})
		cn.attachFault(l.opts.Fault, 0, rank)
		h.conns[rank] = cn
		h.peerAddrs[rank] = string(pa.Blob)
		rank++
	}
	if d, ok := l.ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Time{})
	}
	if l.opts.LinkGrace > 0 {
		h.sessions = newSessRegistry()
	}
	table := appendPeerTable(nil, h.peerAddrs)
	for rank := 1; rank <= workers; rank++ {
		welcome := &frame{Kind: kWelcome, To: rank, Want: h.size, Blob: []byte(l.spec)}
		if h.sessions != nil {
			cn := h.conns[rank]
			id := mintSessionID(rank)
			cn.sess = newSession(id, l.opts.LinkGrace)
			h.sessions.add(id, cn)
			welcome.Seq = id
		}
		if err := h.conns[rank].send(welcome); err != nil {
			return nil, fmt.Errorf("dist: welcoming worker %d: %w", rank, err)
		}
		if err := h.conns[rank].send(&frame{Kind: kPeers, To: rank, Blob: table}); err != nil {
			return nil, fmt.Errorf("dist: sending peer table to worker %d: %w", rank, err)
		}
	}
	for rank := 1; rank <= workers; rank++ {
		go h.serve(rank)
	}
	if h.sessions != nil {
		go acceptResumes(h.ln, h.sessions, &h.closed)
	}
	go h.livenessLoop()
	go h.flushLoop()
	go h.gossipLoop()
	return h, nil
}

// meshHub is the mesh coordinator: rank 0's endpoint, shrunk to
// registration, incumbent retention, death detection, cancellation
// fan-out, and aggregation. It routes no steal traffic and keeps no
// live count — the wave owns termination.
type meshHub struct {
	size    int
	conns   []*wconn // index by rank; conns[0] is nil
	opts    WireOptions
	spec    string
	h       atomic.Value
	started chan struct{}
	stOnce  sync.Once

	wave     *waveNode
	done     chan struct{}
	doneOnce sync.Once
	deaths   *deathBox
	inc      incumbentBox

	pending  pendingSteals
	ackMu    sync.Mutex
	ackBuf   []uint64
	pbStamp  atomic.Int64
	pbSeen   atomic.Int64
	peerPrio []atomic.Int64
	ctr      wireCounters

	gatherMu sync.Mutex
	blobs    [][]byte
	contrib  []bool
	have     int
	gotAll   chan struct{}
	// aborted marks a Close that ran before the gather completed — see
	// hub.aborted; the mesh coordinator dies the same way.
	aborted bool

	peerAddrs []string
	aliveMu   sync.Mutex
	alive     []bool

	// Failover state (v7, WireOptions.Standby). The mesh hub is never
	// itself a promoted standby — takeover is role migration at the
	// surviving workers — so unlike the star hub it only ever runs the
	// replication side: mirror of its own hand-overs, delta queue to
	// the lowest live rank.
	standby bool
	mirror  *hubMirror
	repl    *hubRepl

	closed   atomic.Bool
	ln       net.Listener
	sessions *sessRegistry // v8 resumable sessions, nil when LinkGrace == 0
}

var _ Transport = (*meshHub)(nil)
var _ Meter = (*meshHub)(nil)
var _ PrioAware = (*meshHub)(nil)
var _ IncumbentStore = (*meshHub)(nil)
var _ LinkHealth = (*meshHub)(nil)

func (h *meshHub) Rank() int { return 0 }
func (h *meshHub) Size() int { return h.size }

func (h *meshHub) Wire() WireStats { return h.ctr.snapshot() }

// BestKnown implements IncumbentStore; retention still lives here so
// the optimum survives its finder's death even on a mesh.
func (h *meshHub) BestKnown() (int64, []byte, bool) { return h.inc.best() }

func (h *meshHub) PeerBestPrio(rank int) (int, bool) { return peerBestPrio(h.peerPrio, rank) }

func (h *meshHub) Start(hd Handler) {
	h.h.Store(hd)
	h.stOnce.Do(func() { close(h.started) })
}

func (h *meshHub) handler() Handler {
	<-h.started
	hd, _ := h.h.Load().(Handler)
	return hd
}

func (h *meshHub) livenessLoop() { livenessWatch(h.conns, h.opts, &h.closed) }

// Suspected implements LinkHealth; see meshWorker.Suspected.
func (h *meshHub) Suspected(rank int) bool {
	if rank <= 0 || rank >= h.size {
		return false
	}
	cn := h.conns[rank]
	return cn != nil && !cn.dead.Load() && cn.suspectedPeer()
}

func (h *meshHub) meldBound(from int, obj int64) {
	raiseMax(&h.pbStamp, obj)
	if raiseMax(&h.pbSeen, obj) {
		if hd := h.handler(); hd != nil {
			hd.OnBound(from, obj)
		}
	}
}

// serve routes one worker's registration connection. Unlike the star
// hub it forwards nothing between workers: everything arriving here is
// addressed to rank 0 or is coordinator business (cancel fan-out,
// gather, token, gossip).
func (h *meshHub) serve(rank int) {
	cn := h.conns[rank]
	for {
		var f frame
		if err := cn.recv(&f); err != nil {
			h.workerDied(rank)
			return
		}
		if f.HasPB {
			h.meldBound(f.From, f.PB)
			f.HasPB = false
		}
		if f.HasPS {
			notePeerPrio(h.peerPrio, f.From, f.PS)
		}
		switch f.Kind {
		case kSteal:
			var tasks []WireTask
			if hd := h.handler(); hd != nil {
				tasks = collectSteal(hd, f.From, f.Want)
			}
			h.mirrorHandOver(f.From, tasks)
			cn.send(&frame{Kind: kStealR, From: 0, To: f.From, Seq: f.Seq, Tasks: tasks})
		case kSplit:
			// Served off the serve loop: the split gate may block briefly
			// waiting for a running worker's poll point.
			thief, seq, want := f.From, f.Seq, f.Want
			go func() {
				var tasks []WireTask
				if hd := h.handler(); hd != nil {
					tasks = collectSplit(hd, thief, want)
				}
				h.mirrorHandOver(thief, tasks)
				cn.send(&frame{Kind: kStealR, From: 0, To: thief, Seq: seq, Tasks: tasks})
			}()
		case kStealR:
			if len(f.Tasks) > 0 {
				// Blacken BEFORE the tasks become visible: the wave must
				// see the migration before it can see the work.
				h.wave.blacken()
			}
			if !h.pending.resolve(f.Seq, stealRes{tasks: f.Tasks}) && len(f.Tasks) > 0 {
				if hd := h.handler(); hd != nil {
					for _, t := range f.Tasks {
						hd.OnTask(t)
					}
				}
			}
		case kBound:
			if len(f.Blob) > 0 {
				if h.inc.keep(f.Obj, f.Blob) {
					h.noteIncumbent(f.Obj, f.Blob)
				}
				f.Blob = nil
			}
			h.meldBound(f.From, f.Obj)
		case kGossip:
			h.meldBound(f.From, f.Obj)
		case kCancel:
			if len(f.Blob) > 0 {
				if h.inc.keep(f.Obj, f.Blob) {
					h.noteIncumbent(f.Obj, f.Blob)
				}
				f.Blob = nil
			}
			if hd := h.handler(); hd != nil {
				hd.OnCancel(f.From)
			}
			// Decision broadcasts stay a coordinator fan-out: a cancel
			// must reach everyone promptly, not epidemically.
			h.fanOut(&f, rank)
		case kToken:
			h.wave.onToken(tokenOf(&f))
		case kAck:
			// Mesh acks travel origin-direct; only rank 0's own land here.
			for _, id := range f.Acks {
				if TaskOrigin(id) == 0 {
					if hd := h.handler(); hd != nil {
						hd.OnAck(f.From, id)
					}
					if h.mirror != nil {
						h.mirror.retire(id)
						h.repl.noteRetire(id)
					}
				}
			}
		case kDelta, kPing:
		case kGather:
			h.contribute(f.From, f.Blob)
		}
	}
}

// mirrorHandOver records rank 0's own hand-overs in the failover
// mirror before the reply ships; see hub.mirrorHandOver.
func (h *meshHub) mirrorHandOver(thief int, tasks []WireTask) {
	if h.mirror == nil {
		return
	}
	for _, t := range tasks {
		if t.ID == 0 {
			continue
		}
		h.mirror.add(thief, t)
		h.repl.noteMirrorAdd(thief, t)
	}
}

// noteIncumbent replicates an incumbent improvement to the standby.
func (h *meshHub) noteIncumbent(obj int64, node []byte) {
	if h.repl != nil {
		h.repl.noteIncumbent(obj, node)
	}
}

// retargetRepl points replication at the lowest surviving rank and
// forces it a full base snapshot.
func (h *meshHub) retargetRepl() {
	for r := 1; r < h.size; r++ {
		cn := h.conns[r]
		if cn != nil && !cn.dead.Load() && !cn.mourned.Load() {
			h.repl.setTarget(r)
			return
		}
	}
	h.repl.setTarget(-1)
}

// flushRepl drains the replication queue once per flush quantum.
func (h *meshHub) flushRepl() {
	if h.repl == nil {
		return
	}
	t := h.repl.targetRank()
	if t <= 0 || t >= h.size {
		return
	}
	h.repl.flushTo(h.conns[t], h.snapshotBlob)
}

func (h *meshHub) forward(rank int, f *frame) bool {
	if rank <= 0 || rank >= h.size {
		return false
	}
	cn := h.conns[rank]
	if cn == nil || cn.dead.Load() {
		return false
	}
	return cn.send(f) == nil
}

func (h *meshHub) fanOut(f *frame, except int) {
	for rank := 1; rank < h.size; rank++ {
		if rank == except {
			continue
		}
		h.forward(rank, f)
	}
}

// workerDied mirrors the star hub's death handling minus the count
// reconciliation: the wave simply stops summing the dead rank, which
// removes its outstanding contribution in one move, while survivors'
// ledger registrations keep everything replayable counted.
func (h *meshHub) workerDied(rank int) {
	if h.closed.Load() {
		// The hub itself is going away (Close tears the connections
		// down one by one): the workers are not dying, and mourning
		// them would broadcast spurious kDeath frames over conns not
		// yet torn down. Survivors of a coordinator crash detect it on
		// their own hub links and must see exactly one death, rank 0's.
		return
	}
	cn := h.conns[rank]
	if !cn.mourned.CompareAndSwap(false, true) {
		return
	}
	cn.dead.Store(true)
	h.pending.failVictim(rank)
	h.aliveMu.Lock()
	h.alive[rank] = false
	h.aliveMu.Unlock()
	select {
	case <-h.done:
		h.contribute(rank, nil)
		return
	default:
	}
	h.deaths.announce(rank)
	h.fanOut(&frame{Kind: kDeath, From: 0, Want: rank}, rank)
	h.contribute(rank, nil)
	if h.mirror != nil {
		// Survivors' ledgers replay the dead rank's supervised work;
		// the mirror entries it held are dead weight at the standby.
		for _, t := range h.mirror.takeHolder(rank) {
			h.repl.noteRetire(t.ID)
		}
		if rank == h.repl.targetRank() {
			h.retargetRepl()
		}
	}
	h.wave.markDead(rank)
}

// terminate ends the search everywhere, once. On the mesh it is only
// ever reached through the wave's conclusion.
func (h *meshHub) terminate() {
	h.doneOnce.Do(func() {
		close(h.done)
		h.fanOut(&frame{Kind: kTerminate}, 0)
	})
}

// sendToken launches or forwards a wave token. A failed send is
// deliberately dropped: the victim is dying, and the wave's watchdog
// regenerates the probe under a fresh round.
func (h *meshHub) sendToken(to int, tok waveToken) {
	h.forward(to, &frame{Kind: kToken, From: 0, To: to, Seq: tok.round, Obj: tok.q, Want: colourBits(tok)})
}

func (h *meshHub) Steal(victim int) (WireTask, bool, error) {
	return h.stealVia(kSteal, victim)
}

// SplitSteal is Steal with split semantics; see hub.SplitSteal.
func (h *meshHub) SplitSteal(victim int) (WireTask, bool, error) {
	return h.stealVia(kSplit, victim)
}

func (h *meshHub) stealVia(k kind, victim int) (WireTask, bool, error) {
	if victim <= 0 || victim >= h.size {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	if cn := h.conns[victim]; cn == nil || !cn.reachable() {
		// Dead or quarantined behind a suspended session: fail the
		// steal immediately instead of blocking a worker slot on the
		// steal timeout.
		return WireTask{}, false, nil
	}
	seq, ch := h.pending.register(victim)
	if !h.forward(victim, &frame{Kind: k, From: 0, To: victim, Seq: seq, Want: h.opts.StealBatch}) {
		h.pending.drop(seq)
		return WireTask{}, false, nil
	}
	select {
	case res := <-ch:
		if len(res.tasks) == 0 {
			return WireTask{}, false, nil
		}
		h.ctr.stealReplies.Add(1)
		h.ctr.stealTasks.Add(int64(len(res.tasks)))
		if hd := h.handler(); hd != nil {
			for _, t := range res.tasks[1:] {
				hd.OnTask(t)
			}
		}
		return res.tasks[0], true, nil
	case <-h.done:
		h.pending.drop(seq)
		return WireTask{}, false, nil
	case <-time.After(stealTimeout):
		h.pending.drop(seq)
		return WireTask{}, false, nil
	}
}

// gossipTargets picks up to n distinct random live worker ranks for
// whom obj would still be news (nothing sent or received on their
// connection has carried it yet): the epidemic push spends frames on
// information, not on re-delivery the piggybacks already did.
func (h *meshHub) gossipTargets(n int, obj int64) []int {
	h.aliveMu.Lock()
	var live []int
	for r := 1; r < h.size; r++ {
		if h.alive[r] && h.conns[r] != nil && h.conns[r].hasNews(obj) {
			live = append(live, r)
		}
	}
	h.aliveMu.Unlock()
	rand.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if len(live) > n {
		live = live[:n]
	}
	return live
}

// BroadcastBound retains the node (the hub IS the incumbent store) and
// arms the pb stamp; per-frame piggybacks and the hub's anti-entropy
// loop spread the bound without a per-improvement frame burst.
func (h *meshHub) BroadcastBound(obj int64, node []byte) error {
	if h.inc.keep(obj, node) {
		h.noteIncumbent(obj, node)
	}
	raiseMax(&h.pbStamp, obj)
	return nil
}

func (h *meshHub) Cancel(obj int64, witness []byte) error {
	if h.inc.keep(obj, witness) {
		h.noteIncumbent(obj, witness)
	}
	h.fanOut(&frame{Kind: kCancel, From: 0, Obj: obj}, 0)
	return nil
}

func (h *meshHub) Ack(origin int, id uint64) error {
	if origin <= 0 || origin >= h.size {
		return fmt.Errorf("dist: ack to invalid rank %d", origin)
	}
	h.ackMu.Lock()
	h.ackBuf = append(h.ackBuf, id)
	h.ackMu.Unlock()
	return nil
}

func (h *meshHub) drainAcks() {
	h.ackMu.Lock()
	ids := h.ackBuf
	h.ackBuf = nil
	h.ackMu.Unlock()
	if len(ids) == 0 {
		return
	}
	byOrigin := make(map[int][]uint64)
	for _, id := range ids {
		if origin := TaskOrigin(id); origin > 0 && origin < h.size {
			byOrigin[origin] = append(byOrigin[origin], id)
		}
	}
	for origin, ids := range byOrigin {
		for len(ids) > 0 {
			n := len(ids)
			if n > maxStealBatch {
				n = maxStealBatch
			}
			h.forward(origin, &frame{Kind: kAck, From: 0, To: origin, Acks: ids[:n]})
			ids = ids[n:]
		}
	}
}

// flushLoop drains coalesced acks and paces the wave once per quantum.
// Like the star's ack flusher it must outlive termination detection,
// stopping only when the hub closes.
func (h *meshHub) flushLoop() {
	t := time.NewTicker(h.opts.FlushQuantum)
	defer t.Stop()
	for range t.C {
		if h.closed.Load() {
			return
		}
		h.drainAcks()
		h.flushRepl()
		h.wave.tick()
	}
}

// gossipLoop is the hub's anti-entropy push: its best bound to one
// random live worker per interval, and only when the connection has
// not already carried it (see meshHubGossipInterval).
func (h *meshHub) gossipLoop() {
	t := time.NewTicker(meshHubGossipInterval)
	defer t.Stop()
	for range t.C {
		if h.closed.Load() {
			return
		}
		select {
		case <-h.done:
			return
		default:
		}
		if b := h.pbStamp.Load(); b != math.MinInt64 {
			for _, r := range h.gossipTargets(1, b) {
				h.forward(r, &frame{Kind: kGossip, From: 0, Obj: b})
			}
		}
	}
}

// AddTasks folds the delta into the wave's local counter: on a mesh,
// live-task accounting costs zero frames.
func (h *meshHub) AddTasks(delta int64) { h.wave.add(delta) }

func (h *meshHub) Done() <-chan struct{} { return h.done }

func (h *meshHub) Deaths() <-chan int { return h.deaths.ch }

func (h *meshHub) contribute(rank int, blob []byte) {
	if rank < 0 || rank >= h.size {
		return
	}
	h.gatherMu.Lock()
	defer h.gatherMu.Unlock()
	if h.aborted || h.contrib[rank] {
		return
	}
	h.contrib[rank] = true
	h.blobs[rank] = blob
	h.have++
	if h.repl != nil {
		h.repl.noteGather(rank, blob)
	}
	if h.have == h.size {
		close(h.gotAll)
	}
}

func (h *meshHub) Gather(payload []byte) ([][]byte, error) {
	h.contribute(0, payload)
	<-h.gotAll
	h.gatherMu.Lock()
	defer h.gatherMu.Unlock()
	if h.aborted {
		return nil, errors.New("dist: gather aborted: coordinator endpoint closed mid-search")
	}
	return h.blobs, nil
}

func (h *meshHub) Close() error {
	if !h.closed.CompareAndSwap(false, true) {
		return nil
	}
	h.stOnce.Do(func() { close(h.started) })
	for _, cn := range h.conns {
		if cn != nil {
			cn.close()
		}
	}
	if h.ln != nil {
		h.ln.Close()
	}
	// See hub.Close: a pre-termination Close is this endpoint's death;
	// release the local engine and any Gather stranded on it.
	h.gatherMu.Lock()
	if h.have < h.size {
		h.aborted = true
		close(h.gotAll)
	}
	h.gatherMu.Unlock()
	h.doneOnce.Do(func() { close(h.done) })
	return nil
}

// dialMesh is DialOpts for TopologyMesh: register with the
// coordinator, advertise a peer listener, then complete the mesh by
// dialing every lower rank and accepting every higher one. It returns
// only when the full mesh is up, so a returned transport can steal
// from (and be stolen from by) any peer immediately.
func dialMesh(addr, spec string, opts WireOptions) (Transport, error) {
	c, err := dialRetry(addr)
	if err != nil {
		return nil, err
	}
	pl, err := net.Listen("tcp", ":0")
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: binding mesh peer listener: %w", err)
	}
	// Advertise the host this worker reaches the coordinator from (its
	// routable interface) joined with the peer listener's port.
	host, _, err := net.SplitHostPort(c.LocalAddr().String())
	if err != nil {
		c.Close()
		pl.Close()
		return nil, fmt.Errorf("dist: resolving advertised address: %w", err)
	}
	_, port, err := net.SplitHostPort(pl.Addr().String())
	if err != nil {
		c.Close()
		pl.Close()
		return nil, fmt.Errorf("dist: resolving peer listener port: %w", err)
	}
	adv := net.JoinHostPort(host, port)

	w := &meshWorker{
		opts:      opts,
		started:   make(chan struct{}),
		done:      make(chan struct{}),
		flushStop: make(chan struct{}),
	}
	if opts.Standby {
		w.standby = true
		w.store = newStandbyState()
	}
	w.pbStamp.Store(math.MinInt64)
	w.pbSeen.Store(math.MinInt64)
	cn := newWconn(c, &w.ctr)
	fail := func(err error) (Transport, error) {
		cn.close()
		pl.Close()
		for _, pc := range w.peers {
			if pc != nil && pc != cn {
				pc.close()
			}
		}
		return nil, err
	}
	if err := cn.send(&frame{Kind: kHello, Want: wireVersion, Blob: []byte(spec)}); err != nil {
		return fail(fmt.Errorf("dist: registering with %s: %w", addr, err))
	}
	if err := cn.send(&frame{Kind: kPeerAddr, Blob: []byte(adv)}); err != nil {
		return fail(fmt.Errorf("dist: advertising peer address to %s: %w", addr, err))
	}
	var welcome frame
	if err := cn.recv(&welcome); err != nil {
		return fail(fmt.Errorf("dist: registration reply from %s: %w", addr, err))
	}
	switch welcome.Kind {
	case kWelcome:
	case kReject:
		return fail(fmt.Errorf("dist: coordinator refused registration: %s", string(welcome.Blob)))
	default:
		return fail(fmt.Errorf("dist: unexpected registration reply kind %d", welcome.Kind))
	}
	var peersF frame
	if err := cn.recv(&peersF); err != nil || peersF.Kind != kPeers {
		return fail(fmt.Errorf("dist: no peer table from %s: %v", addr, err))
	}
	table, err := parsePeerTable(peersF.Blob)
	if err != nil {
		return fail(fmt.Errorf("dist: bad peer table from %s: %w", addr, err))
	}
	w.rank = welcome.To
	w.size = welcome.Want
	if len(table) != w.size {
		return fail(fmt.Errorf("dist: peer table has %d slots for a size-%d deployment", len(table), w.size))
	}
	w.peers = make([]*wconn, w.size)
	w.peers[0] = cn
	w.peerPrio = newPeerPrios(w.size)
	w.deaths = newDeathBox(w.size)
	w.wave = newWaveNode(w.rank, w.size, w.sendToken, w.waveConcluded)
	cn.pb = &w.pbStamp
	cn.ps = selfPrioFn(&w.h)
	cn.psFrom = w.rank
	if opts.LinkGrace > 0 && welcome.Seq != 0 {
		// The coordinator minted a resumable session and carried its id
		// in the welcome; this side dials the resume after a loss.
		s := newSession(welcome.Seq, opts.LinkGrace)
		s.rank = w.rank
		s.redial = sessionRedialer(addr)
		cn.sess = s
	}
	cn.attachFault(opts.Fault, w.rank, 0)
	if opts.LinkGrace > 0 {
		w.sessions = newSessRegistry()
	}

	hookPeer := func(pcn *wconn) {
		pcn.pb = &w.pbStamp
		pcn.ps = selfPrioFn(&w.h)
		pcn.psFrom = w.rank
	}
	// Dial the lower ranks; their listeners were bound before their
	// hellos, so the addresses in the table are already accepting.
	for r := 1; r < w.rank; r++ {
		pc, err := dialRetry(table[r])
		if err != nil {
			return fail(fmt.Errorf("dist: dialing mesh peer %d at %s: %w", r, table[r], err))
		}
		pcn := newWconn(pc, &w.ctr)
		hookPeer(pcn)
		ph := &frame{Kind: kPeerHello, From: w.rank, Want: wireVersion}
		if opts.LinkGrace > 0 {
			// The dialing side mints the peer-link session and carries
			// its id in the hello; the acceptor registers it for resumes.
			s := newSession(mintSessionID(w.rank), opts.LinkGrace)
			s.rank = w.rank
			s.redial = sessionRedialer(table[r])
			pcn.sess = s
			ph.Seq = s.id
		}
		pcn.attachFault(opts.Fault, w.rank, r)
		if err := pcn.send(ph); err != nil {
			pcn.close()
			return fail(fmt.Errorf("dist: greeting mesh peer %d: %w", r, err))
		}
		w.peers[r] = pcn
	}
	// Accept the higher ranks, identified by their kPeerHello. Strays
	// (port scans, stale dials) are dropped without consuming a slot;
	// only the registration window itself is fatal.
	regDeadline := time.Now().Add(opts.RegTimeout)
	for got := 0; got < w.size-1-w.rank; {
		if d, ok := pl.(*net.TCPListener); ok {
			d.SetDeadline(regDeadline)
		}
		pc, err := pl.Accept()
		if err != nil {
			return fail(fmt.Errorf("dist: accepting mesh peers (have %d of %d): %w", got, w.size-1-w.rank, err))
		}
		pcn := newWconn(pc, &w.ctr)
		pc.SetReadDeadline(regDeadline)
		var ph frame
		if err := pcn.recv(&ph); err != nil || ph.Kind != kPeerHello || ph.Want != wireVersion ||
			ph.From <= w.rank || ph.From >= w.size || w.peers[ph.From] != nil {
			pcn.close()
			continue
		}
		pc.SetReadDeadline(time.Time{})
		hookPeer(pcn)
		if opts.LinkGrace > 0 && ph.Seq != 0 {
			s := newSession(ph.Seq, opts.LinkGrace)
			s.rank = w.rank
			pcn.sess = s
			w.sessions.add(s.id, pcn)
		}
		pcn.attachFault(opts.Fault, w.rank, ph.From)
		w.peers[ph.From] = pcn
		got++
	}
	if opts.LinkGrace > 0 {
		// The peer listener stays open: dialing-side peers resume their
		// severed sessions against it. Close tears it down.
		w.pl = pl
		go acceptResumes(pl, w.sessions, &w.closed)
	} else {
		pl.Close()
	}
	go w.pingLoop()
	return w, nil
}

// meshWorker is a non-coordinator locality on a mesh: the registration
// connection to the coordinator (doubling as the rank-0 peer link)
// plus one direct connection per fellow worker.
type meshWorker struct {
	rank    int
	size    int
	opts    WireOptions
	h       atomic.Value
	started chan struct{}
	stOnce  sync.Once

	peers []*wconn // index by rank; peers[0] is the hub conn, peers[rank] nil

	wave     *waveNode
	done     chan struct{}
	doneOnce sync.Once
	deaths   *deathBox

	pending  pendingSteals
	ackMu    sync.Mutex
	ackBuf   []uint64
	pbStamp  atomic.Int64
	pbSeen   atomic.Int64
	peerPrio []atomic.Int64
	ctr      wireCounters

	flushStop chan struct{}
	flushOnce sync.Once
	closed    atomic.Bool

	// v8 resumable sessions: the peer listener stays open after
	// registration so severed dialing-side peers can resume, and the
	// registry maps session ids to the accepted peer conns.
	pl       net.Listener
	sessions *sessRegistry

	// Failover state (v7, WireOptions.Standby). Mesh takeover is role
	// migration, not redial: every survivor already holds a direct
	// connection to every other, so when the coordinator dies the
	// elected standby starts answering coordinator traffic over the
	// peer links it has and the others redirect theirs.
	standby  bool
	epoch    atomic.Uint32 // 0 normal, 1 after rank 0's death was handled
	store    *standbyState // replicated hub state (standby candidates only)
	promoted atomic.Bool   // this rank adopted the coordinator role
	hubRank  atomic.Int32  // where coordinator traffic goes (0 until takeover)
	inc      incumbentBox  // incumbent store, once promoted
	mirror   *hubMirror    // adopted mirror of rank 0's hand-overs

	// Promoted-gather state, initialised at takeover.
	gatherMu sync.Mutex
	blobs    [][]byte
	contrib  []bool
	have     int
	gotAll   chan struct{}
}

var _ Transport = (*meshWorker)(nil)
var _ Meter = (*meshWorker)(nil)
var _ PrioAware = (*meshWorker)(nil)
var _ LinkHealth = (*meshWorker)(nil)
var _ IncumbentStore = (*meshWorker)(nil)
var _ Promoter = (*meshWorker)(nil)

func (w *meshWorker) Rank() int { return w.rank }
func (w *meshWorker) Size() int { return w.size }

func (w *meshWorker) Wire() WireStats { return w.ctr.snapshot() }

// BestKnown implements IncumbentStore: vacuous normally (retention
// lives at the coordinator, and only rank 0's answer is consulted),
// real once this rank adopted the coordinator role.
func (w *meshWorker) BestKnown() (int64, []byte, bool) {
	if w.promoted.Load() {
		return w.inc.best()
	}
	return 0, nil, false
}

func (w *meshWorker) PeerBestPrio(rank int) (int, bool) { return peerBestPrio(w.peerPrio, rank) }

func (w *meshWorker) hub() *wconn { return w.peers[0] }

// connTo is the direct link to a rank (the hub conn for rank 0), nil
// when the rank is invalid, ourselves, or its link is gone.
func (w *meshWorker) connTo(rank int) *wconn {
	if rank < 0 || rank >= w.size || rank == w.rank {
		return nil
	}
	cn := w.peers[rank]
	if cn == nil || cn.dead.Load() {
		return nil
	}
	return cn
}

// Suspected implements LinkHealth: a peer behind a quarantined link
// (suspended session or heartbeat silence) should be skipped by the
// victim order until it resumes or is mourned.
func (w *meshWorker) Suspected(rank int) bool {
	cn := w.connTo(rank)
	return cn != nil && cn.suspectedPeer()
}

func (w *meshWorker) Start(h Handler) {
	w.h.Store(h)
	w.stOnce.Do(func() { close(w.started) })
	go w.readHub()
	for r := 1; r < w.size; r++ {
		if r == w.rank || w.peers[r] == nil {
			continue
		}
		go w.readPeer(r)
	}
	go w.flushLoop()
	go w.gossipLoop()
}

func (w *meshWorker) handler() Handler {
	hd, _ := w.h.Load().(Handler)
	return hd
}

func (w *meshWorker) meldBound(from int, obj int64) bool {
	raiseMax(&w.pbStamp, obj)
	if raiseMax(&w.pbSeen, obj) {
		w.handler().OnBound(from, obj)
		return true
	}
	return false
}

// noteHeader applies a frame's piggybacked bound and summary.
func (w *meshWorker) noteHeader(f *frame) {
	if f.HasPB {
		w.meldBound(f.From, f.PB)
	}
	if f.HasPS && f.From != w.rank {
		notePeerPrio(w.peerPrio, f.From, f.PS)
	}
}

// onGossip melds an epidemic bound push and, when it was news here,
// re-gossips it: improvements ripple outward, duplicates die out.
func (w *meshWorker) onGossip(f *frame) {
	if w.meldBound(f.From, f.Obj) {
		w.gossip(f.Obj, meshGossipFan)
	}
}

// onStealR delivers a steal reply, blackening the wave BEFORE the
// carried tasks become visible to the engine or its counter.
func (w *meshWorker) onStealR(f *frame) {
	if len(f.Tasks) > 0 {
		w.wave.blacken()
	}
	if !w.pending.resolve(f.Seq, stealRes{tasks: f.Tasks}) && len(f.Tasks) > 0 {
		for _, t := range f.Tasks {
			w.handler().OnTask(t)
		}
	}
}

func (w *meshWorker) serveSteal(cn *wconn, f *frame) {
	tasks := collectSteal(w.handler(), f.From, f.Want)
	cn.send(&frame{Kind: kStealR, From: w.rank, To: f.From, Seq: f.Seq, Tasks: tasks})
}

// serveSplit answers a kSplit off the read loop: the split gate may
// block briefly waiting for a running worker's next poll point, and the
// loop must keep draining the connection's other traffic meanwhile.
func (w *meshWorker) serveSplit(cn *wconn, f *frame) {
	thief, seq, want := f.From, f.Seq, f.Want
	go func() {
		tasks := collectSplit(w.handler(), thief, want)
		cn.send(&frame{Kind: kStealR, From: w.rank, To: thief, Seq: seq, Tasks: tasks})
	}()
}

// readHub serves the coordinator connection: control traffic (death,
// terminate, cancel fan-outs, acks from rank 0) plus the rank-0 leg of
// the data plane (hub steals, tokens crossing rank 0).
func (w *meshWorker) readHub() {
	for {
		var f frame
		if err := w.hub().recv(&f); err != nil {
			if w.failover() {
				return
			}
			// The coordinator is gone: registration, incumbent store and
			// death authority died with it — the deployment is over.
			w.pending.failAll()
			w.stopFlush()
			w.doneOnce.Do(func() { close(w.done) })
			return
		}
		w.noteHeader(&f)
		switch f.Kind {
		case kSteal:
			w.serveSteal(w.hub(), &f)
		case kSplit:
			w.serveSplit(w.hub(), &f)
		case kStealR:
			w.onStealR(&f)
		case kBound:
			w.meldBound(f.From, f.Obj)
		case kGossip:
			w.onGossip(&f)
		case kCancel:
			w.handler().OnCancel(f.From)
		case kAck:
			for _, id := range f.Acks {
				w.handler().OnAck(f.From, id)
			}
		case kToken:
			w.wave.onToken(tokenOf(&f))
		case kDeath:
			w.peerDied(f.Want)
		case kTerminate:
			w.doneOnce.Do(func() { close(w.done) })
		case kHubSnap:
			if w.store != nil {
				w.store.applySnap(f.Blob)
			}
		case kHubDelta:
			if w.store != nil {
				w.store.applyDelta(&f)
			}
		}
	}
}

// readPeer serves one direct worker↔worker connection. A read error
// fails in-flight steals aimed at that peer fast, but death authority
// stays with the coordinator: only a kDeath (whose liveness watchdog
// sees the same broken worker) retires the rank everywhere at once.
func (w *meshWorker) readPeer(rank int) {
	cn := w.peers[rank]
	for {
		var f frame
		if err := cn.recv(&f); err != nil {
			w.pending.failVictim(rank)
			if w.epoch.Load() == 1 && !cn.left.Load() {
				// Post-takeover there is no coordinator watchdog: every
				// survivor sees the broken link itself and runs the
				// death protocol decentrally. All survivors reach the
				// same conclusion from the same evidence, so no fan-out
				// is needed. A peer that said kLeave first is exempt —
				// it finished and exited; only a silent break is a death.
				select {
				case <-w.done:
				default:
					cn.dead.Store(true)
					w.deaths.announce(rank)
					w.wave.markDead(rank)
					if w.promoted.Load() {
						w.contributeP(rank, nil)
						w.replayMirrorP(rank)
					}
				}
			}
			return
		}
		w.noteHeader(&f)
		switch f.Kind {
		case kSteal:
			w.serveSteal(cn, &f)
		case kSplit:
			w.serveSplit(cn, &f)
		case kStealR:
			w.onStealR(&f)
		case kGossip:
			w.onGossip(&f)
		case kBound:
			// Node-carrying broadcasts reach the promoted incumbent
			// store over the peer link that used to be worker↔worker
			// only.
			if w.promoted.Load() && len(f.Blob) > 0 {
				w.inc.keep(f.Obj, f.Blob)
			}
			w.meldBound(f.From, f.Obj)
		case kCancel:
			if w.promoted.Load() {
				if len(f.Blob) > 0 {
					w.inc.keep(f.Obj, f.Blob)
				}
				w.handler().OnCancel(f.From)
				w.fanPeers(&frame{Kind: kCancel, From: f.From, Obj: f.Obj}, rank)
			} else {
				w.handler().OnCancel(f.From)
			}
		case kGather:
			if w.promoted.Load() {
				w.contributeP(f.From, f.Blob)
			}
		case kLeave:
			cn.left.Store(true)
		case kTerminate:
			w.doneOnce.Do(func() { close(w.done) })
		case kAck:
			for _, id := range f.Acks {
				if TaskOrigin(id) == 0 {
					// A redirected ack for one of the dead coordinator's
					// hand-overs: retire the mirrored root (nil-safe when
					// this rank never adopted the mirror).
					w.mirror.retire(id)
					continue
				}
				w.handler().OnAck(f.From, id)
			}
		case kToken:
			w.wave.onToken(tokenOf(&f))
		}
	}
}

// peerDied processes a coordinator death notice.
func (w *meshWorker) peerDied(rank int) {
	if rank <= 0 || rank >= w.size || rank == w.rank {
		return
	}
	w.pending.failVictim(rank)
	if cn := w.peers[rank]; cn != nil {
		cn.close()
	}
	w.wave.markDead(rank)
	w.deaths.announce(rank)
}

// failover handles the loss of the coordinator connection on a
// standby deployment. Unlike the star, no rank redials anyone: the
// mesh already connects every survivor to every other, so takeover is
// pure role migration — the lowest live rank (the same one the dead
// hub was replicating to) starts answering coordinator traffic, and
// everyone else redirects theirs to it. Returns false when this
// deployment cannot (or need not) fail over, sending readHub to the
// fail-stop path.
func (w *meshWorker) failover() bool {
	if !w.standby {
		return false
	}
	select {
	case <-w.done:
		return false // normal post-termination disconnect
	default:
	}
	if !w.epoch.CompareAndSwap(0, 1) {
		return false
	}
	w.pending.failVictim(0)
	w.hub().dead.Store(true)
	w.deaths.announce(0)
	// The wave stops summing rank 0 and, because 0 was the initiator,
	// re-elects the lowest live rank to launch future probes — the
	// exact rank that also adopts the coordinator role.
	w.wave.markDead(0)
	cand := failoverCandidate(w.size, w.deaths)
	if cand < 0 {
		return false
	}
	w.hubRank.Store(int32(cand))
	if cand != w.rank {
		return true
	}
	// This rank is the standby: seed the coordinator role from the
	// replicated state and start serving it over the existing links.
	st := w.store.view()
	w.gatherMu.Lock()
	w.blobs = make([][]byte, w.size)
	w.contrib = make([]bool, w.size)
	w.gotAll = make(chan struct{})
	w.gatherMu.Unlock()
	m := newHubMirror()
	m.install(st.mirror)
	w.mirror = m
	if st.hasBest {
		w.inc.keep(st.bestObj, st.bestNod)
		raiseMax(&w.pbStamp, st.bestObj)
	}
	w.promoted.Store(true)
	// Rank 0 will never contribute a gather payload; neither will the
	// ranks the dead hub had already mourned. Replay gather slots the
	// hub had collected before dying, then the dead holders' mirrored
	// hand-overs — the one set of supervision roots no surviving
	// ledger replays.
	w.contributeP(0, nil)
	for r, blob := range st.gather {
		w.contributeP(r, blob)
	}
	for _, r := range st.dead {
		if r == 0 || r == w.rank {
			continue
		}
		w.deaths.announce(r)
		w.wave.markDead(r)
		w.contributeP(r, nil)
	}
	for _, r := range st.dead {
		if r != w.rank {
			w.replayMirrorP(r)
		}
	}
	w.replayMirrorP(0)
	return true
}

// contributeP fills a promoted-gather slot (first write wins).
func (w *meshWorker) contributeP(rank int, blob []byte) {
	if rank < 0 || rank >= w.size {
		return
	}
	w.gatherMu.Lock()
	defer w.gatherMu.Unlock()
	if w.contrib == nil || w.contrib[rank] {
		return
	}
	w.contrib[rank] = true
	w.blobs[rank] = blob
	w.have++
	if w.have == w.size {
		close(w.gotAll)
	}
}

// replayMirrorP replays a dead holder's mirrored hand-overs into the
// local engine, blackening the wave first: the migration must be
// visible to the token before the work is.
func (w *meshWorker) replayMirrorP(holder int) {
	ts := w.mirror.takeHolder(holder)
	if len(ts) == 0 {
		return
	}
	hd := w.handler()
	if hd == nil {
		return
	}
	w.wave.blacken()
	for _, t := range ts {
		hd.OnTask(t)
	}
}

// fanPeers forwards a frame to every live peer except `except` and
// this rank — the promoted stand-in for the hub's fan-out.
func (w *meshWorker) fanPeers(f *frame, except int) {
	for r := 1; r < w.size; r++ {
		if r == except || r == w.rank {
			continue
		}
		if cn := w.connTo(r); cn != nil {
			cn.send(f)
		}
	}
}

// waveConcluded runs when the termination wave proves global
// quiescence at this rank. Normally only rank 0 concludes; after a
// takeover the promoted rank does, and it fans the termination to the
// survivors exactly as the dead coordinator would have.
func (w *meshWorker) waveConcluded() {
	w.doneOnce.Do(func() {
		close(w.done)
		if w.promoted.Load() {
			w.fanPeers(&frame{Kind: kTerminate}, -1)
		}
	})
}

// hubConn is the connection coordinator traffic should use: the
// registration conn normally, the promoted rank's peer link after a
// takeover, nil when this rank IS the coordinator now.
func (w *meshWorker) hubConn() *wconn {
	if hr := int(w.hubRank.Load()); hr != 0 {
		return w.connTo(hr)
	}
	return w.hub()
}

// Promoted reports whether this rank adopted the coordinator role.
func (w *meshWorker) Promoted() bool { return w.promoted.Load() }

// pingLoop heartbeats the coordinator connection only: peer links
// carry no liveness protocol of their own, because the coordinator's
// watchdog is the one place deaths are decided.
func (w *meshWorker) pingLoop() {
	t := time.NewTicker(w.opts.Heartbeat)
	defer t.Stop()
	var lastSent uint64
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			cn := w.hub()
			if cn.dead.Load() {
				return
			}
			if n := cn.nSent.Load(); n != lastSent {
				lastSent = n
				continue
			}
			cn.send(&frame{Kind: kPing, From: w.rank})
			lastSent = cn.nSent.Load()
		}
	}
}

func (w *meshWorker) stopFlush() {
	w.flushOnce.Do(func() { close(w.flushStop) })
}

// flushLoop drains coalesced acks and paces the wave once per quantum.
// There is no delta leg: AddTasks never leaves the rank on a mesh.
func (w *meshWorker) flushLoop() {
	t := time.NewTicker(w.opts.FlushQuantum)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.drainAcks()
			w.wave.tick()
		}
	}
}

// gossip pushes a bound to up to n distinct random live ranks
// (including rank 0: the hub gossips too) for whom it is still news —
// a connection that already carried the bound, in either direction,
// as a piggyback or an explicit frame, is skipped.
func (w *meshWorker) gossip(obj int64, n int) {
	var live []int
	for r := 0; r < w.size; r++ {
		if r == w.rank {
			continue
		}
		if cn := w.connTo(r); cn != nil && cn.hasNews(obj) {
			live = append(live, r)
		}
	}
	rand.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if len(live) > n {
		live = live[:n]
	}
	for _, r := range live {
		if cn := w.connTo(r); cn != nil {
			cn.send(&frame{Kind: kGossip, From: w.rank, To: r, Obj: obj})
		}
	}
}

// gossipLoop is the anti-entropy push: the local best bound to one
// random peer per interval, so a bound missed by the epidemic fan-out
// still reaches everyone.
func (w *meshWorker) gossipLoop() {
	t := time.NewTicker(meshGossipInterval)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-w.done:
			return
		case <-t.C:
			if b := w.pbStamp.Load(); b != math.MinInt64 {
				w.gossip(b, 1)
			}
		}
	}
}

func (w *meshWorker) sendToken(to int, tok waveToken) {
	if cn := w.connTo(to); cn != nil {
		cn.send(&frame{Kind: kToken, From: w.rank, To: to, Seq: tok.round, Obj: tok.q, Want: colourBits(tok)})
	}
}

func (w *meshWorker) Steal(victim int) (WireTask, bool, error) {
	return w.stealVia(kSteal, victim)
}

// SplitSteal is Steal with split semantics; see hub.SplitSteal.
func (w *meshWorker) SplitSteal(victim int) (WireTask, bool, error) {
	return w.stealVia(kSplit, victim)
}

func (w *meshWorker) stealVia(k kind, victim int) (WireTask, bool, error) {
	if victim < 0 || victim >= w.size || victim == w.rank {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	cn := w.connTo(victim)
	if cn == nil || !cn.reachable() {
		return WireTask{}, false, nil
	}
	seq, ch := w.pending.register(victim)
	if err := cn.send(&frame{Kind: k, From: w.rank, To: victim, Seq: seq, Want: w.opts.StealBatch}); err != nil {
		w.pending.drop(seq)
		return WireTask{}, false, nil
	}
	select {
	case res := <-ch:
		if len(res.tasks) == 0 {
			return WireTask{}, false, nil
		}
		w.ctr.stealReplies.Add(1)
		w.ctr.stealTasks.Add(int64(len(res.tasks)))
		for _, t := range res.tasks[1:] {
			w.handler().OnTask(t)
		}
		return res.tasks[0], true, nil
	case <-w.done:
		w.pending.drop(seq)
		return WireTask{}, false, nil
	case <-time.After(stealTimeout):
		w.pending.drop(seq)
		return WireTask{}, false, nil
	}
}

// BroadcastBound sends the node-carrying broadcast to the coordinator
// (the retention that survives this rank's death) and gossips the bare
// bound to a couple of random peers.
func (w *meshWorker) BroadcastBound(obj int64, node []byte) error {
	raiseMax(&w.pbStamp, obj)
	var err error
	if w.promoted.Load() {
		w.inc.keep(obj, node)
	} else if cn := w.hubConn(); cn != nil {
		err = cn.send(&frame{Kind: kBound, From: w.rank, Obj: obj, Blob: node})
	}
	w.gossip(obj, meshGossipFan)
	return err
}

func (w *meshWorker) Cancel(obj int64, witness []byte) error {
	if w.promoted.Load() {
		w.inc.keep(obj, witness)
		w.fanPeers(&frame{Kind: kCancel, From: w.rank, Obj: obj}, -1)
		return nil
	}
	cn := w.hubConn()
	if cn == nil {
		return nil // takeover in flight; the witness is already retained via kBound gossip
	}
	return cn.send(&frame{Kind: kCancel, From: w.rank, Obj: obj, Blob: witness})
}

// Ack queues a hand-over completion ack. Unlike the star there is no
// relay: the flusher sends each origin's coalesced batch over the
// direct link.
func (w *meshWorker) Ack(origin int, id uint64) error {
	if origin < 0 || origin >= w.size || origin == w.rank {
		return fmt.Errorf("dist: ack to invalid rank %d", origin)
	}
	if origin == 0 && w.promoted.Load() {
		// An adopted hand-over of the dead coordinator completed here:
		// this rank IS the supervision authority for it now.
		w.mirror.retire(id)
		return nil
	}
	w.ackMu.Lock()
	w.ackBuf = append(w.ackBuf, id)
	w.ackMu.Unlock()
	return nil
}

func (w *meshWorker) drainAcks() {
	w.ackMu.Lock()
	ids := w.ackBuf
	w.ackBuf = nil
	w.ackMu.Unlock()
	if len(ids) == 0 {
		return
	}
	byOrigin := make(map[int][]uint64)
	for _, id := range ids {
		if origin := TaskOrigin(id); origin >= 0 && origin < w.size && origin != w.rank {
			byOrigin[origin] = append(byOrigin[origin], id)
		}
	}
	for origin, ids := range byOrigin {
		dest := origin
		if origin == 0 {
			// Acks for the dead coordinator's hand-overs chase the
			// mirror: retire locally when this rank adopted it, else
			// redirect to the promoted rank.
			hr := int(w.hubRank.Load())
			if hr == w.rank {
				for _, id := range ids {
					w.mirror.retire(id)
				}
				continue
			}
			if hr != 0 {
				dest = hr
			}
		}
		cn := w.connTo(dest)
		if cn == nil {
			continue // origin is dead; its ledger died with it
		}
		for len(ids) > 0 {
			n := len(ids)
			if n > maxStealBatch {
				n = maxStealBatch
			}
			if cn.send(&frame{Kind: kAck, From: w.rank, To: dest, Acks: ids[:n]}) != nil {
				break
			}
			ids = ids[n:]
		}
	}
}

// AddTasks folds the delta into the wave's local counter — zero
// frames, zero coordinator involvement.
func (w *meshWorker) AddTasks(delta int64) { w.wave.add(delta) }

func (w *meshWorker) Done() <-chan struct{} { return w.done }

func (w *meshWorker) Deaths() <-chan int { return w.deaths.ch }

func (w *meshWorker) Gather(payload []byte) ([][]byte, error) {
	if w.promoted.Load() {
		// The promoted rank runs the terminal collective the dead
		// coordinator would have: collect every survivor's payload
		// (dead ranks' slots were nil-filled at takeover).
		w.contributeP(w.rank, payload)
		w.gatherMu.Lock()
		ch := w.gotAll
		w.gatherMu.Unlock()
		<-ch
		w.gatherMu.Lock()
		defer w.gatherMu.Unlock()
		return w.blobs, nil
	}
	cn := w.hubConn()
	if cn == nil {
		return nil, fmt.Errorf("dist: no route to coordinator for gather")
	}
	if err := cn.send(&frame{Kind: kGather, From: w.rank, Blob: payload}); err != nil {
		return nil, fmt.Errorf("dist: sending gather payload: %w", err)
	}
	return nil, nil
}

func (w *meshWorker) Close() error {
	if w.closed.CompareAndSwap(false, true) {
		// Best-effort final ack flush; there are no deltas to flush.
		w.drainAcks()
		w.stopFlush()
		select {
		case <-w.done:
			// Normal post-termination exit. Say goodbye in-band before
			// closing: after a takeover the survivors classify broken
			// peer links themselves, and a rank whose kTerminate is
			// still queued behind other traffic must read this exit as
			// a finished peer leaving, not a death to replay. TCP
			// ordering puts the kLeave ahead of the close on every link.
			for _, cn := range w.peers {
				if cn != nil {
					cn.send(&frame{Kind: kLeave, From: w.rank})
				}
			}
		default:
			// Pre-termination Close abandons live work: stay silent so
			// peers run the death protocol and replay this rank.
		}
		for _, cn := range w.peers {
			if cn != nil {
				cn.close()
			}
		}
		if w.pl != nil {
			w.pl.Close()
		}
	}
	return nil
}

// Snapshot serialises the coordinator's residual state (the same
// HubSnapshot a standby star hub replicates; see failover.go).
func (h *meshHub) Snapshot() []byte { return h.snapshotBlob() }

// snapshotBlob captures the mesh hub's residual state for a kHubSnap.
func (h *meshHub) snapshotBlob() []byte {
	s := &HubSnapshot{
		Epoch:     0,
		Spec:      h.spec,
		Size:      h.size,
		PeerAddrs: h.peerAddrs,
		Mirror:    h.mirror.entries(),
	}
	h.aliveMu.Lock()
	s.Alive = append([]bool(nil), h.alive...)
	h.aliveMu.Unlock()
	s.BestObj, s.BestNode, s.HasBest = h.inc.best()
	h.gatherMu.Lock()
	for r, c := range h.contrib {
		if c {
			s.Gather = append(s.Gather, GatherSlot{Rank: r, Blob: h.blobs[r]})
		}
	}
	h.gatherMu.Unlock()
	return encodeHubSnapshot(s)
}
