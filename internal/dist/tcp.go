package dist

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport realises a deployment of real OS processes: one
// coordinator (rank 0) and n workers (ranks 1..n), in a star topology.
// Workers hold a single TCP connection to the coordinator, which
// routes worker↔worker traffic. The star keeps connection management
// linear in the cluster size and gives the coordinator the global view
// it needs anyway for termination detection and result aggregation.
//
// Frames are the v2 binary format of frame.go. Three amortisations
// distinguish it from the v1 gob protocol:
//
//   - steal replies carry up to StealBatch tasks, so one round trip
//     moves a batch instead of a single task;
//   - live-task deltas are coalesced per locality and flushed at most
//     once per FlushQuantum (or piggybacked on whatever frame leaves
//     first), instead of one kDelta frame per spawn;
//   - every outgoing frame piggybacks the sender's best known bound,
//     so incumbent knowledge rides along with ordinary traffic.

const (
	// dial keeps retrying (the coordinator may not be listening yet).
	dialTimeout = 30 * time.Second
	// wireVersion is checked at registration: v1 (gob), v2 (binary
	// frames), v3 (per-task priorities + priority summaries), v4
	// (hand-over ids, completion acks, death notification, heartbeats),
	// v5 (mesh topology: peer address exchange, direct peer frames,
	// bound gossip, termination-wave tokens) and v6 (on-demand stack
	// splitting: kSplit requests served by splitting a running worker's
	// live generator stack), v7 (coordinator failover: hub state
	// replication to a standby, epoch-fenced rejoin after a takeover)
	// and v8 (link-fault tolerance: a sequence + CRC32C frame trailer
	// and resumable sessions, see session.go) — peers must not silently
	// garble each other.
	wireVersion = 8
)

// stealTimeout bounds a steal request whose reply never arrives; a
// reply landing after it is adopted via Handler.OnTask. A variable so
// tests can exercise the late-reply path without the full wait.
var stealTimeout = 10 * time.Second

// WireOptions tunes the v2 framing layer.
type WireOptions struct {
	// StealBatch is the maximum number of tasks requested per steal
	// (the victim may serve fewer — the engine's steal-half policy
	// protects its own backlog). The thief keeps one task for the
	// requesting worker and re-homes the extras via Handler.OnTask.
	// Default DefaultStealBatch; 1 disables batching.
	StealBatch int
	// FlushQuantum is the pool quantum of delta coalescing: a
	// locality's accumulated live-task delta is flushed at most this
	// often when no other outgoing frame carries it first. Larger
	// quanta mean fewer frames but slower termination detection.
	// Default DefaultFlushQuantum.
	FlushQuantum time.Duration
	// RegTimeout bounds the coordinator's registration window: Wait
	// fails, reporting the missing ranks, if the expected workers have
	// not all registered within it. Default DefaultRegTimeout.
	RegTimeout time.Duration
	// Heartbeat is the liveness cadence: a worker that has sent
	// nothing for a Heartbeat pings the coordinator, and the
	// coordinator checks every connection's last-received stamp at the
	// same cadence. Default DefaultHeartbeat.
	Heartbeat time.Duration
	// LivenessTimeout is how long the coordinator tolerates silence on
	// a worker connection before declaring the worker dead (a SIGKILL
	// is usually noticed much sooner, through the broken connection;
	// the timeout catches wedged processes and silent network drops).
	// It must cover the worker's slowest gap between registration and
	// its first frame — typically instance loading. Default
	// DefaultLivenessTimeout.
	LivenessTimeout time.Duration
	// Topology selects how worker↔worker traffic flows. TopologyStar
	// (the default) routes everything through the coordinator and
	// detects termination by the hub's global live-task count.
	// TopologyMesh has workers dial each other directly for steal,
	// reply, and ack traffic, spreads bounds epidemic-style, and
	// replaces the hub count with a Safra-style termination wave; the
	// coordinator shrinks to registration, incumbent retention, death
	// detection, and aggregation. Both sides of a deployment must agree
	// (the topology is folded into the spec check at registration).
	Topology string
	// Standby arms coordinator failover: the hub replicates its
	// residual state (peer addresses, incumbent, hand-over mirror,
	// gather progress) to the lowest live worker rank, every worker
	// pre-binds a promotion listener whose address is exchanged at
	// registration, and on rank 0's death the replicated rank promotes
	// itself while the rest re-dial it. Costs one replication frame
	// stream hub→standby; off by default. Both sides of a deployment
	// must agree (folded into the spec check, like Topology).
	Standby bool
	// LinkGrace arms the v8 resumable-session layer: on an I/O error
	// (or frame corruption) both sides of a connection keep the logical
	// session alive for this long, the dialing side reconnects, and a
	// kResume handshake retransmits exactly the frames the other side
	// missed — no death notice, no ledger replay, no failover. The
	// liveness watchdog becomes two-phase: heartbeat silence past
	// LivenessTimeout first *suspects* a rank (steals bypass it), and
	// mourns only after LivenessTimeout+LinkGrace. Zero disables
	// sessions entirely (crash-stop, the pre-v8 behaviour). Both sides
	// of a deployment must agree (folded into the spec check).
	LinkGrace time.Duration
	// Fault, when non-nil, injects deterministic link faults (latency,
	// loss, duplication, corruption, reordering, partitions) around
	// every frame this endpoint sends. In-process test deployments
	// share one plan across all endpoints; see FaultPlan.
	Fault *FaultPlan
}

// Topology values for WireOptions.Topology (and the engine-level
// configuration that feeds it).
const (
	TopologyStar = "star"
	TopologyMesh = "mesh"
)

// Defaults for WireOptions.
const (
	DefaultStealBatch      = 4
	DefaultFlushQuantum    = time.Millisecond
	DefaultRegTimeout      = 120 * time.Second
	DefaultHeartbeat       = time.Second
	DefaultLivenessTimeout = 30 * time.Second
)

func (o WireOptions) withDefaults() WireOptions {
	if o.StealBatch <= 0 {
		o.StealBatch = DefaultStealBatch
	}
	if o.FlushQuantum <= 0 {
		o.FlushQuantum = DefaultFlushQuantum
	}
	if o.RegTimeout <= 0 {
		o.RegTimeout = DefaultRegTimeout
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.LivenessTimeout <= 0 {
		o.LivenessTimeout = DefaultLivenessTimeout
	}
	return o
}

type kind uint8

const (
	kHello     kind = iota // worker→hub: registration (Want = wireVersion, Blob = spec)
	kWelcome               // hub→worker: To = rank, Want = size
	kReject                // hub→worker: registration refused (Blob = reason)
	kSteal                 // From = thief, To = victim, Want = max tasks
	kStealR                // From = victim, To = thief, Tasks = batch
	kBound                 // From, Obj
	kCancel                // From
	kDelta                 // carrier for a coalesced header delta
	kTerminate             // global live-task count reached zero
	kGather                // From, Blob
	kAck                   // From = thief, To = origin, Seq = hand-over id
	kDeath                 // hub→workers: Want = dead rank
	kPing                  // liveness heartbeat; header fields only
	kPeerAddr              // mesh worker→hub at registration: Blob = advertised peer listener address
	kPeers                 // hub→worker: Blob = rank-indexed peer address table
	kPeerHello             // first frame on a direct peer conn: From = dialer rank, Want = wire version
	kGossip                // epidemic bound push: From = origin, Obj = gossiped bound
	kToken                 // termination-wave token: Seq = round, Obj = accumulated count, Want = colour bits
	kSplit                 // steal with split semantics: From = thief, To = victim, Want = max tasks; reply is a kStealR
	kHubSnap               // hub→standby: Blob = full residual-state snapshot (encodeHubSnapshot)
	kHubDelta              // hub→standby: Want = subtype (hubDelta*), payload in Tasks/Acks/Blob
	kRejoin                // worker→promoted hub: From = rank, Want = expected epoch, Obj = cumulative live-task contribution
	kLeave                 // mesh worker→peers at post-termination Close: the sender is exiting, not dying
	kResume                // v8 session resume handshake: Seq = session id, Obj = receive high-water mark; travels with link sequence 0
)

// wconn is one length-prefix-framed TCP connection with serialised
// writes. The send path is where v2's per-frame batching happens: the
// owning endpoint's coalesced live-task delta is drained into, and its
// best bound stamped onto, every frame that leaves.
type wconn struct {
	// cur is the current physical connection. A resumable session (v8)
	// swaps it on reconnect; everything else about the wconn — the
	// sequence counters, the endpoint hooks, the identity the rest of
	// the deployment holds — survives the swap.
	cur  atomic.Pointer[connIO]
	wmu  sync.Mutex
	wbuf []byte
	// wbatch holds the per-frame wire images of an in-progress sendMany
	// and wvec the vectored-write view over them; both reuse capacity
	// across batches (under wmu).
	wbatch [][]byte
	wvec   net.Buffers
	// rbuf is the reader goroutine's reusable frame image. recv hands
	// it off (and re-allocates lazily) whenever a frame's parsed Blob
	// or Tasks alias it; header-only traffic — the steady state —
	// recycles it read after read.
	rbuf []byte
	// sendSeq (under wmu) and recvSeq are the v8 link-sequence
	// counters: every non-resume frame is stamped with the next send
	// sequence, and the receiver accepts exactly last+1 — a duplicate
	// (retransmit overlap) is skipped, a gap fails the link.
	sendSeq uint64
	recvSeq atomic.Uint64
	// sess, when non-nil, makes the connection resumable (LinkGrace>0).
	sess *session
	// suspect marks heartbeat silence past LivenessTimeout inside the
	// grace window: the rank is quarantined (steals bypass it) but not
	// yet mourned. Cleared when traffic moves again.
	suspect atomic.Bool
	// fault injection (nil outside fault-injected deployments). fFrom
	// and fTo name this connection's directed link in the plan.
	plan       *FaultPlan
	fFrom, fTo int
	held       []byte // reorder hold-back slot (under wmu)
	dead       atomic.Bool
	// mourned latches the one-time death processing for the peer
	// behind this connection (hub side).
	mourned atomic.Bool
	// left records an in-band kLeave: the peer announced a normal
	// post-termination exit, so the connection breaking right after is
	// a shutdown, not a death. Only consulted where death detection is
	// decentralised (the mesh after a coordinator failover) — everywhere
	// else the hub's done-gate already classifies the disconnect.
	left atomic.Bool
	// nSent/nRecvd count frames in each direction: the heartbeat
	// layer's raw material. Counters, not timestamps, keep the per-
	// frame cost to one relaxed increment — the watchdogs (pingLoop,
	// livenessLoop) sample them on their own ticks and supply the
	// clock themselves.
	nSent  atomic.Uint64
	nRecvd atomic.Uint64

	// endpoint hooks; any may be nil.
	pending *atomic.Int64 // coalesced live-task delta, drained per send
	// cum accumulates every delta this endpoint has put on a wire
	// (standby deployments only). cum + pending is the rank's exact
	// cumulative live-task contribution at any instant — the number a
	// kRejoin reports so a promoted hub can rebuild the global count.
	cum *atomic.Int64
	pb  *atomic.Int64 // best known bound, stamped per send
	// ps reports the owning endpoint's best stealable priority for the
	// v3 summary piggyback (psNothing = don't stamp). Only frames the
	// endpoint originates (From == psFrom) are stamped: forwarded
	// frames keep their origin's summary, which is what the receiver
	// attributes it to.
	ps     func() int64
	psFrom int
	ctr    *wireCounters

	// carried is the best bound this connection has demonstrably
	// conveyed in either direction — stamped as a pb piggyback or an
	// explicit kGossip/kBound, sent or received. The mesh's epidemic
	// push consults it to suppress gossip that would tell the peer
	// nothing new: every ordinary frame already spreads bounds for
	// free, so explicit gossip frames are spent only on actual news.
	carried atomic.Int64
}

// psNothing tells send to skip the summary stamp (no handler yet).
const psNothing = math.MinInt64

func newWconn(c net.Conn, ctr *wireCounters) *wconn {
	// The encode scratch starts at a size covering every header-only
	// frame, so the steady-state send path never grows it.
	cn := &wconn{ctr: ctr, wbuf: make([]byte, 0, 256)}
	cn.cur.Store(newConnIO(c))
	cn.carried.Store(math.MinInt64)
	return cn
}

// attachFault points the connection at a fault plan, naming its
// directed link. No-op for a nil plan.
func (cn *wconn) attachFault(p *FaultPlan, from, to int) {
	cn.plan, cn.fFrom, cn.fTo = p, from, to
}

// noteCarried records bound knowledge that crossed this connection.
func (cn *wconn) noteCarried(f *frame) {
	if f.HasPB {
		raiseMax(&cn.carried, f.PB)
	}
	if f.Kind == kGossip || f.Kind == kBound {
		raiseMax(&cn.carried, f.Obj)
	}
}

// hasNews reports whether obj would be news to the peer behind this
// connection, as far as the traffic so far can prove.
func (cn *wconn) hasNews(obj int64) bool { return obj > cn.carried.Load() }

// stampLocked drains the endpoint's coalesced live-task delta into f
// and stamps the piggybacked bound and priority summary. It returns
// the drained delta (0 when f already carried one, or none was
// pending), so a failed crash-stop write can restore the accumulator.
// Called under wmu: flushes reach the wire in issue order, so a steal
// reply always carries every delta issued before its tasks left the
// pool (the termination-safety invariant).
func (cn *wconn) stampLocked(f *frame) int64 {
	var drained int64
	if cn.pending != nil && f.Delta == 0 {
		f.Delta = cn.pending.Swap(0)
		drained = f.Delta
	}
	// kBound frames carry their news in Obj; stamping the same value
	// as a piggyback would make the receiver's header merge mark the
	// broadcast itself stale and suppress its relay.
	if cn.pb != nil && !f.HasPB && f.Kind != kBound {
		if b := cn.pb.Load(); b != math.MinInt64 {
			f.PB, f.HasPB = b, true
		}
	}
	if cn.ps != nil && !f.HasPS && f.From == cn.psFrom {
		if p := cn.ps(); p != psNothing {
			f.PS, f.HasPS = p, true
		}
	}
	return drained
}

func (cn *wconn) send(f *frame) error {
	if cn.dead.Load() {
		return errors.New("dist: connection closed")
	}
	if s := cn.sess; s != nil && f.Kind == kPing && s.isSuspended() {
		// Heartbeats carry no payload of their own: dropping them while
		// suspended keeps the retransmit log for real traffic (the
		// pending delta rides the next logged frame instead).
		return nil
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	drained := cn.stampLocked(f) != 0
	var seq uint32
	if f.Kind != kResume {
		cn.sendSeq++
		seq = uint32(cn.sendSeq)
	}
	buf := encodeFrame(cn.wbuf, f, seq)
	cn.wbuf = buf
	if s := cn.sess; s != nil && f.Kind != kResume {
		// The session owns delivery from here: the frame is logged
		// (clean, before any fault-plan mutation) and will reach the
		// peer over this connection or a resumed successor — or be
		// absorbed by the death path when the session breaks. The delta
		// it carries is therefore counted as put-on-a-wire now, and
		// never re-added: cum + pending stays the rank's exact
		// cumulative contribution either way.
		s.appendLog(cn.sendSeq, buf)
		if cn.cum != nil && f.Delta != 0 {
			cn.cum.Add(f.Delta)
		}
		cn.nSent.Add(1)
		cn.noteCarried(f)
		if cn.ctr != nil {
			cn.ctr.framesSent.Add(1)
			cn.ctr.bytesSent.Add(int64(len(buf)))
		}
		if s.isSuspended() {
			return nil // queued; the resume replays it
		}
		if err := cn.writeFault(buf); err != nil {
			// Physical failure with a live session: suspend, and let
			// the reader drive (dialing side) or await (accepting
			// side) the resume.
			s.suspend()
		}
		return nil
	}
	if err := cn.writeFault(buf); err != nil {
		if drained {
			// Put the drained delta back: a failover recomputes the
			// rank's contribution from cum + pending, so a delta that
			// died with the connection must stay accounted.
			cn.pending.Add(f.Delta)
		}
		cn.dead.Store(true)
		return err
	}
	if cn.cum != nil && f.Delta != 0 {
		cn.cum.Add(f.Delta)
	}
	cn.nSent.Add(1)
	cn.noteCarried(f)
	if cn.ctr != nil {
		cn.ctr.framesSent.Add(1)
		cn.ctr.bytesSent.Add(int64(len(buf)))
	}
	return nil
}

// sendMany transmits a batch of frames with one vectored write
// (writev) instead of one syscall per frame — the flush-quantum path
// uses it to put a tick's coalesced acks and delta on the wire in a
// single flush. Each frame is still individually stamped, sequenced,
// CRC'd, and session-logged, so resume and accounting semantics are
// exactly those of consecutive send calls; only the number of
// physical writes changes. Fault-injected links fall back to
// per-frame writes (a plan's drop/corrupt/reorder actions are defined
// per frame).
func (cn *wconn) sendMany(fs []*frame) error {
	switch len(fs) {
	case 0:
		return nil
	case 1:
		return cn.send(fs[0])
	}
	if cn.dead.Load() {
		return errors.New("dist: connection closed")
	}
	if cn.plan != nil { // attachFault precedes traffic; safe unlocked
		var err error
		for _, f := range fs {
			if e := cn.send(f); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if cap(cn.wbatch) < len(fs) {
		nb := make([][]byte, len(fs))
		copy(nb, cn.wbatch[:cap(cn.wbatch)])
		cn.wbatch = nb
	}
	cn.wbatch = cn.wbatch[:len(fs)]
	s := cn.sess
	var drained int64
	for i, f := range fs {
		if d := cn.stampLocked(f); d != 0 {
			drained = d
		}
		var seq uint32
		if f.Kind != kResume {
			cn.sendSeq++
			seq = uint32(cn.sendSeq)
		}
		cn.wbatch[i] = encodeFrame(cn.wbatch[i], f, seq)
		if s != nil && f.Kind != kResume {
			// Logged frames are owed to the peer from here (see send):
			// their deltas count as put-on-a-wire immediately.
			s.appendLog(cn.sendSeq, cn.wbatch[i])
			if cn.cum != nil && f.Delta != 0 {
				cn.cum.Add(f.Delta)
			}
			cn.nSent.Add(1)
			cn.noteCarried(f)
			if cn.ctr != nil {
				cn.ctr.framesSent.Add(1)
				cn.ctr.bytesSent.Add(int64(len(cn.wbatch[i])))
			}
		}
	}
	if s != nil {
		if s.isSuspended() {
			return nil // queued; the resume replays the batch
		}
		cn.wvec = append(cn.wvec[:0], cn.wbatch...)
		if _, err := cn.wvec.WriteTo(cn.cur.Load().c); err != nil {
			s.suspend()
		}
		return nil
	}
	cn.wvec = append(cn.wvec[:0], cn.wbatch...)
	if _, err := cn.wvec.WriteTo(cn.cur.Load().c); err != nil {
		if drained != 0 {
			// Keep the drained delta accounted; see send.
			cn.pending.Add(drained)
		}
		cn.dead.Store(true)
		return err
	}
	for i, f := range fs {
		if cn.cum != nil && f.Delta != 0 {
			cn.cum.Add(f.Delta)
		}
		cn.nSent.Add(1)
		cn.noteCarried(f)
		if cn.ctr != nil {
			cn.ctr.framesSent.Add(1)
			cn.ctr.bytesSent.Add(int64(len(cn.wbatch[i])))
		}
	}
	return nil
}

// writeFault realises the link's fault plan around one physical frame
// write. The clean bytes are already in the retransmit log, so with a
// session attached a mutation here only ever costs a resume round,
// never correctness. Called under wmu.
func (cn *wconn) writeFault(buf []byte) error {
	nio := cn.cur.Load()
	p := cn.plan
	if p == nil {
		_, err := nio.c.Write(buf)
		return err
	}
	act, severed := p.act(cn.fFrom, cn.fTo)
	if severed {
		// A partition: kill the physical connection so the peer's
		// reader notices too, and report a write failure — the session
		// (or the death path) takes it from here.
		nio.c.Close()
		return errLinkSevered
	}
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.drop {
		// Swallowed: the receiver sees a sequence gap on the next
		// frame and fails the link into the resume path.
		return nil
	}
	out := buf
	if act.corrupt {
		out = append([]byte(nil), buf...)
		out[4+(len(out)-4)/2] ^= 0x40 // flip a bit mid-body; the CRC catches it
	}
	if act.reorder && cn.sess != nil && cn.held == nil {
		cn.held = append([]byte(nil), out...)
		return nil
	}
	if _, err := nio.c.Write(out); err != nil {
		return err
	}
	if held := cn.held; held != nil {
		cn.held = nil
		if _, err := nio.c.Write(held); err != nil {
			return err
		}
	}
	if act.dup {
		_, err := nio.c.Write(out)
		return err
	}
	return nil
}

func (cn *wconn) recv(f *frame) error {
	for {
		nio := cn.cur.Load()
		seq, n, body, err := readRawFrameInto(nio.br, f, cn.rbuf)
		if err == nil && len(f.Blob) == 0 && len(f.Tasks) == 0 {
			// Header-only frame: nothing aliases the image, so it backs
			// the next read. Frames that carry an aliasing payload keep
			// their image (the handler may retain Blob or task payloads
			// indefinitely) and the next read allocates afresh.
			cn.rbuf = body
		} else {
			cn.rbuf = nil
		}
		if err != nil {
			// Close the physical connection before deciding anything:
			// on a CRC failure or sequence gap the stream is still
			// open, and the peer only learns the link failed when its
			// writes start failing.
			nio.c.Close()
			if cn.await(nio) {
				continue
			}
			cn.dead.Store(true)
			return err
		}
		if seq != 0 {
			next := cn.recvSeq.Load() + 1
			if seq != uint32(next) {
				if int32(seq-uint32(next)) < 0 {
					// A retransmitted duplicate (resume overlap, or an
					// injected dup): already delivered, skip silently.
					continue
				}
				// A gap: frames were lost in flight (an injected drop
				// or reorder, or a half-written stream). Fail the
				// link; the resume path retransmits in order.
				nio.c.Close()
				if cn.await(nio) {
					continue
				}
				cn.dead.Store(true)
				return fmt.Errorf("dist: link sequence gap (got %d, want %d)", seq, uint32(next))
			}
			cn.recvSeq.Store(next)
		}
		cn.nRecvd.Add(1)
		cn.noteCarried(f)
		if cn.ctr != nil {
			cn.ctr.framesRecv.Add(1)
			cn.ctr.bytesRecv.Add(int64(n))
		}
		return nil
	}
}

func (cn *wconn) close() {
	cn.dead.Store(true)
	if cn.sess != nil {
		cn.sess.breakSess()
	}
	cn.cur.Load().c.Close()
}

// reachable reports whether the peer behind this connection can
// receive traffic promptly: not dead, and not suspended inside a
// resume window (a suspended session swallows writes into the log,
// which would turn a steal request into a silent timeout).
func (cn *wconn) reachable() bool {
	if cn.dead.Load() {
		return false
	}
	if cn.sess != nil && cn.sess.isSuspended() {
		return false
	}
	return true
}

// suspectedPeer reports the two-phase liveness state: heartbeat
// silence past LivenessTimeout, or a suspended session.
func (cn *wconn) suspectedPeer() bool {
	if cn.suspect.Load() {
		return true
	}
	return cn.sess != nil && cn.sess.isSuspended()
}

// prioUnknown marks a peerPrio slot nothing has been heard from.
const prioUnknown = -2

// newPeerPrios builds an all-unknown summary table of the given size.
func newPeerPrios(n int) []atomic.Int64 {
	ps := make([]atomic.Int64, n)
	for i := range ps {
		ps[i].Store(prioUnknown)
	}
	return ps
}

// selfPrioFn adapts an endpoint's (possibly not yet attached) handler
// to the wconn summary hook: psNothing before Start or for handlers
// without StealRanker, PrioNone for an empty pool, the best priority
// otherwise.
func selfPrioFn(h *atomic.Value) func() int64 {
	return func() int64 {
		sr, ok := h.Load().(StealRanker)
		if !ok {
			return psNothing
		}
		p, has := sr.BestStealPrio()
		if !has {
			return PrioNone
		}
		if p < 0 {
			p = 0
		}
		return int64(p)
	}
}

// notePeerPrio records a frame's summary against its origin rank.
func notePeerPrio(ps []atomic.Int64, from int, prio int64) {
	if from >= 0 && from < len(ps) {
		ps[from].Store(prio)
	}
}

// peerBestPrio reads a summary table slot into the PrioAware shape.
func peerBestPrio(ps []atomic.Int64, rank int) (int, bool) {
	if rank < 0 || rank >= len(ps) {
		return 0, false
	}
	v := ps[rank].Load()
	if v <= prioUnknown {
		return 0, false
	}
	return int(v), true
}

// stealRes is a pending steal's reply slot.
type stealRes struct {
	tasks []WireTask
}

// pendingSteals tracks in-flight steal requests by sequence number.
type pendingSteals struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]*pendingSteal
}

type pendingSteal struct {
	victim int
	ch     chan stealRes
}

func (p *pendingSteals) register(victim int) (uint64, chan stealRes) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[uint64]*pendingSteal)
	}
	p.next++
	ch := make(chan stealRes, 1)
	p.m[p.next] = &pendingSteal{victim: victim, ch: ch}
	return p.next, ch
}

// resolve delivers a steal reply to its waiter, reporting false when
// the request is no longer pending (it timed out): the caller then
// owns the reply and must not drop carried tasks.
func (p *pendingSteals) resolve(seq uint64, res stealRes) bool {
	p.mu.Lock()
	ps := p.m[seq]
	delete(p.m, seq)
	p.mu.Unlock()
	if ps == nil {
		return false
	}
	ps.ch <- res
	return true
}

func (p *pendingSteals) drop(seq uint64) {
	p.mu.Lock()
	delete(p.m, seq)
	p.mu.Unlock()
}

// failVictim resolves every pending steal aimed at a dead victim.
func (p *pendingSteals) failVictim(victim int) {
	p.mu.Lock()
	var chs []chan stealRes
	for seq, ps := range p.m {
		if ps.victim == victim {
			chs = append(chs, ps.ch)
			delete(p.m, seq)
		}
	}
	p.mu.Unlock()
	for _, ch := range chs {
		ch <- stealRes{}
	}
}

// failAll resolves every pending steal (the link itself died).
func (p *pendingSteals) failAll() {
	p.mu.Lock()
	var chs []chan stealRes
	for seq, ps := range p.m {
		chs = append(chs, ps.ch)
		delete(p.m, seq)
	}
	p.mu.Unlock()
	for _, ch := range chs {
		ch <- stealRes{}
	}
}

// Listener is the coordinator's registration endpoint. NewListener
// binds immediately (so Addr can be advertised); Wait blocks until the
// expected number of workers has registered, then returns the
// coordinator's Transport. Search therefore cannot start before every
// locality is present.
type Listener struct {
	ln   net.Listener
	spec string
	opts WireOptions
}

// NewListener binds the coordinator's address with default
// WireOptions. spec is an arbitrary deployment description
// (application, instance, parameters); workers must present an
// identical spec, which catches the classic distributed-search
// operator error of launching localities on different problems.
func NewListener(addr, spec string) (*Listener, error) {
	return NewListenerOpts(addr, spec, WireOptions{})
}

// NewListenerOpts is NewListener with explicit framing options.
func NewListenerOpts(addr, spec string, opts WireOptions) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	return &Listener{ln: ln, spec: topoSpec(spec, opts), opts: opts}, nil
}

// topoSpec folds the topology into the deployment spec, so a star
// coordinator and a mesh worker (or vice versa) reject each other at
// registration with an explicit spec mismatch instead of wedging on
// frames the other side never sends.
func topoSpec(spec string, opts WireOptions) string {
	if opts.Topology == TopologyMesh {
		spec += " topology=mesh"
	}
	if opts.Standby {
		// A standby deployment changes the registration sequence
		// (kPeerAddr/kPeers on a star) — mixed deployments must reject
		// each other instead of wedging.
		spec += " standby=1"
	}
	if opts.LinkGrace > 0 {
		// Sessions change what a broken connection means: a graced
		// endpoint and a crash-stop one must not mix, or one side
		// mourns while the other waits.
		spec += " grace=1"
	}
	return spec
}

// Addr returns the bound address (useful with a ":0" listen address).
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close aborts a pending Wait.
func (l *Listener) Close() error { return l.ln.Close() }

// Wait accepts registrations until `workers` workers are connected,
// then welcomes each with its rank and returns the coordinator
// transport (rank 0 of a size workers+1 deployment).
//
// Registration is failure-aware: a connection that presents a bad
// hello, a mismatched wire version, or a mismatched spec is rejected
// (the peer is told why) without aborting the deployment — the rank it
// would have taken stays open for a corrected relaunch. Only the
// registration window itself is fatal: when WireOptions.RegTimeout
// expires, Wait fails and reports exactly which ranks never arrived
// and why the last rejected candidate was turned away, instead of
// leaving the coordinator waiting forever for a worker that already
// failed.
func (l *Listener) Wait(workers int) (Transport, error) {
	if workers < 1 {
		return nil, fmt.Errorf("dist: coordinator needs at least 1 worker, got %d", workers)
	}
	if l.opts.Topology == TopologyMesh {
		return l.waitMesh(workers)
	}
	deadline := time.Now().Add(l.opts.RegTimeout)
	h := &hub{
		size:     workers + 1,
		conns:    make([]*wconn, workers+1),
		liveAt:   make([]atomic.Int64, workers+1),
		opts:     l.opts,
		started:  make(chan struct{}),
		done:     make(chan struct{}),
		doneOnce: new(sync.Once),
		deaths:   newDeathBox(workers + 1),
		blobs:    make([][]byte, workers+1),
		contrib:  make([]bool, workers+1),
		gotAll:   make(chan struct{}),
		peerPrio: newPeerPrios(workers + 1),
		ln:       l.ln,
	}
	h.pbStamp.Store(math.MinInt64)
	h.pbSeen.Store(math.MinInt64)
	if l.opts.Standby {
		h.standby = true
		h.snapSpec = l.spec
		h.peerAddrs = make([]string, workers+1)
		h.mirror = newHubMirror()
		h.repl = newHubRepl()
	}
	var lastReject error
	regFailed := func(err error) (Transport, error) {
		registered := 0
		for _, cn := range h.conns {
			if cn != nil {
				cn.close()
				registered++
			}
		}
		missing := fmt.Sprintf("ranks %d..%d", registered+1, workers)
		if registered+1 == workers {
			missing = fmt.Sprintf("rank %d", workers)
		}
		if lastReject != nil {
			return nil, fmt.Errorf("dist: registration timed out with %d/%d workers (missing %s): %v (last rejected candidate: %v)", registered, workers, missing, err, lastReject)
		}
		return nil, fmt.Errorf("dist: registration timed out with %d/%d workers (missing %s): %w", registered, workers, missing, err)
	}
	for rank := 1; rank <= workers; {
		if d, ok := l.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		c, err := l.ln.Accept()
		if err != nil {
			return regFailed(err)
		}
		cn := newWconn(c, &h.ctr)
		cn.pb = &h.pbStamp
		cn.ps = selfPrioFn(&h.h)
		cn.psFrom = 0
		// The registration deadline must also bound the hello read: a
		// connection that never sends a frame (port scan, stalled
		// peer) must not hang Wait past the window.
		c.SetReadDeadline(deadline)
		var hello frame
		if err := cn.recv(&hello); err != nil || hello.Kind != kHello {
			cn.close()
			lastReject = fmt.Errorf("bad registration from %v", c.RemoteAddr())
			continue
		}
		c.SetReadDeadline(time.Time{})
		if hello.Want != wireVersion {
			cn.send(&frame{Kind: kReject, Blob: []byte(fmt.Sprintf("wire protocol mismatch: coordinator speaks v%d, worker v%d", wireVersion, hello.Want))})
			cn.close()
			lastReject = fmt.Errorf("worker %v speaks wire protocol v%d, want v%d", c.RemoteAddr(), hello.Want, wireVersion)
			continue
		}
		if string(hello.Blob) != l.spec {
			cn.send(&frame{Kind: kReject, Blob: []byte(fmt.Sprintf("spec mismatch: coordinator runs %q, worker runs %q", l.spec, string(hello.Blob)))})
			cn.close()
			lastReject = fmt.Errorf("worker %v registered with mismatched spec %q (coordinator: %q)", c.RemoteAddr(), string(hello.Blob), l.spec)
			continue
		}
		if l.opts.Standby {
			// A standby worker follows its hello with the promotion
			// listener it pre-bound — the address survivors re-dial
			// after a takeover.
			c.SetReadDeadline(deadline)
			var pa frame
			if err := cn.recv(&pa); err != nil || pa.Kind != kPeerAddr || len(pa.Blob) == 0 {
				cn.send(&frame{Kind: kReject, Blob: []byte("standby registration requires a promotion listener address")})
				cn.close()
				lastReject = fmt.Errorf("worker %v sent no promotion listener address", c.RemoteAddr())
				continue
			}
			c.SetReadDeadline(time.Time{})
			h.peerAddrs[rank] = string(pa.Blob)
		}
		cn.attachFault(l.opts.Fault, 0, rank)
		h.conns[rank] = cn
		rank++
	}
	if d, ok := l.ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Time{})
	}
	if l.opts.LinkGrace > 0 {
		h.sessions = newSessRegistry()
	}
	for rank := 1; rank <= workers; rank++ {
		welcome := &frame{Kind: kWelcome, To: rank, Want: h.size, Blob: []byte(l.spec)}
		if h.sessions != nil {
			// Mint the resumable session and carry its id in the
			// welcome: the worker resumes against it after any later
			// connection loss.
			cn := h.conns[rank]
			id := mintSessionID(rank)
			cn.sess = newSession(id, l.opts.LinkGrace)
			h.sessions.add(id, cn)
			welcome.Seq = id
		}
		if err := h.conns[rank].send(welcome); err != nil {
			return nil, fmt.Errorf("dist: welcoming worker %d: %w", rank, err)
		}
	}
	if l.opts.Standby {
		// Every worker gets the full promotion-address table: each one
		// must be able to find whichever rank the takeover elects. The
		// first replication flush ships the standby its base snapshot.
		table := appendPeerTable(nil, h.peerAddrs)
		for rank := 1; rank <= workers; rank++ {
			if err := h.conns[rank].send(&frame{Kind: kPeers, To: rank, Blob: table}); err != nil {
				return nil, fmt.Errorf("dist: sending promotion addresses to worker %d: %w", rank, err)
			}
		}
	}
	for rank := 1; rank <= workers; rank++ {
		go h.serve(rank)
	}
	if h.sessions != nil {
		// The registration listener's second life: accepting resume
		// handshakes for the sessions minted above.
		go acceptResumes(h.ln, h.sessions, &h.closed)
	}
	go h.livenessLoop()
	go h.ackFlushLoop()
	return h, nil
}

// hub is the coordinator transport: rank 0's endpoint plus the router
// for worker↔worker traffic and the home of the global live-task
// counter. Under failover the same struct serves a promoted worker:
// self names the rank it runs at (0 for the original coordinator),
// and done/doneOnce/deaths are shared with the worker endpoint it
// grew out of.
type hub struct {
	size    int
	self    int      // the rank this hub serves at (0 unless promoted)
	conns   []*wconn // index by rank; conns[self] is nil
	opts    WireOptions
	h       atomic.Value
	started chan struct{}
	stOnce  sync.Once

	// failover state (nil/zero unless WireOptions.Standby).
	standby   bool
	epoch     uint64     // 0 original coordinator, 1 after the takeover
	snapSpec  string     // deployment spec, carried in snapshots
	peerAddrs []string   // rank-indexed promotion-listener addresses
	mirror    *hubMirror // replicated rank-0 hand-overs
	repl      *hubRepl   // replication queue towards the standby

	// live is the global live-task count; liveAt[rank] is each rank's
	// contribution to it (the deltas it has flushed). The split is the
	// heart of death reconciliation: a dead rank's outstanding
	// contribution — the tasks it registered and can never complete —
	// is subtracted in one move, while tasks survivors registered
	// (including the ledger copies covering everything handed to the
	// dead rank) stay counted until the survivors themselves finish
	// or replay them.
	live   atomic.Int64
	liveAt []atomic.Int64
	done   chan struct{}
	// doneOnce is a pointer so a promoted hub can share the latch with
	// the worker endpoint it grew out of (both reach for the same done
	// channel).
	doneOnce *sync.Once
	deaths   *deathBox
	inc      incumbentBox

	pending pendingSteals
	ackMu   sync.Mutex
	ackBuf  []uint64     // coalesced completion acks, drained by the ack flusher
	pbStamp atomic.Int64 // best bound known; stamped on outgoing frames
	pbSeen  atomic.Int64 // best bound delivered to the handler
	// peerPrio[rank] is the rank's last advertised best stealable
	// priority: >= 0 a priority, PrioNone an empty pool, prioUnknown
	// nothing heard yet.
	peerPrio []atomic.Int64
	ctr      wireCounters

	gatherMu sync.Mutex
	blobs    [][]byte
	contrib  []bool
	have     int
	gotAll   chan struct{}
	// aborted marks a Close that ran before the gather completed: the
	// coordinator endpoint is gone mid-search (a simulated death), so a
	// blocked Gather must fail rather than wait for contributions that
	// can no longer arrive.
	aborted bool

	closed atomic.Bool
	ln     net.Listener
	// sessions indexes the resumable sessions this hub accepts resumes
	// for (nil unless LinkGrace > 0).
	sessions *sessRegistry
}

var _ Transport = (*hub)(nil)
var _ Meter = (*hub)(nil)
var _ PrioAware = (*hub)(nil)
var _ IncumbentStore = (*hub)(nil)
var _ LinkHealth = (*hub)(nil)

func (h *hub) Rank() int { return h.self }
func (h *hub) Size() int { return h.size }

// Promoted implements Promoter: true only for a hub that took over
// from a dead coordinator.
func (h *hub) Promoted() bool { return h.self != 0 }

func (h *hub) Wire() WireStats { return h.ctr.snapshot() }

// BestKnown implements IncumbentStore: the best (obj, node) pair any
// locality has published through a node-carrying bound broadcast or a
// decision cancel. It is how the optimum survives its finder's death.
func (h *hub) BestKnown() (int64, []byte, bool) { return h.inc.best() }

// livenessLoop is the heartbeat layer's detector: a worker connection
// silent past LivenessTimeout is declared dead by closing it, which
// fails its serve loop into workerDied — the same path a broken
// connection takes, so wedged-but-connected workers and SIGKILLed ones
// converge. It runs until the hub closes, NOT until termination: the
// gather phase after Done must also be able to give up on a worker
// that wedges before contributing, or the terminal collective would
// block forever (worker pings keep flowing until the worker itself
// closes).
func (h *hub) livenessLoop() { livenessWatch(h.conns, h.opts, &h.closed) }

// livenessWatch is the detector shared by the star and mesh hubs: a
// worker connection silent past LivenessTimeout is declared dead by
// closing it, which fails its serve loop into the died path.
func livenessWatch(conns []*wconn, opts WireOptions, closed *atomic.Bool) {
	t := time.NewTicker(opts.Heartbeat)
	defer t.Stop()
	// Per-rank watchdog state: the recv-counter value last seen and
	// when it last changed. The clock lives here, on the watchdog's
	// tick, so the frame hot path pays one counter increment and no
	// time.Now().
	seen := make([]uint64, len(conns))
	changed := make([]time.Time, len(conns))
	now := time.Now()
	for i := range changed {
		changed[i] = now
	}
	for range t.C {
		if closed.Load() {
			return
		}
		now := time.Now()
		for rank := 1; rank < len(conns); rank++ {
			cn := conns[rank]
			if cn == nil || cn.dead.Load() {
				continue
			}
			if n := cn.nRecvd.Load(); n != seen[rank] {
				seen[rank], changed[rank] = n, now
				cn.suspect.Store(false)
				continue
			}
			silent := now.Sub(changed[rank])
			if opts.LinkGrace > 0 && silent > opts.LivenessTimeout && silent <= opts.LivenessTimeout+opts.LinkGrace {
				// Two-phase mourning: quarantine first. The rank drops
				// out of victim orders and steal routing, but its
				// session — and everything queued on it — survives
				// until the grace window closes.
				cn.suspect.Store(true)
				continue
			}
			if silent > opts.LivenessTimeout+opts.LinkGrace {
				cn.close()
			}
		}
	}
}

// PeerBestPrio implements PrioAware from the piggybacked summaries the
// hub has seen on each worker's frames.
func (h *hub) PeerBestPrio(rank int) (int, bool) { return peerBestPrio(h.peerPrio, rank) }

func (h *hub) Start(hd Handler) {
	h.h.Store(hd)
	h.stOnce.Do(func() { close(h.started) })
}

// handler blocks until Start (or Close) and returns the attached
// handler, which is nil only when the hub was closed before Start.
func (h *hub) handler() Handler {
	<-h.started
	hd, _ := h.h.Load().(Handler)
	return hd
}

// meldBound merges a learned bound into the hub's piggyback snapshot
// and, when the local engine has not yet been told anything at least
// as strong, delivers it. The delivery gate absorbs the repetition
// piggybacking creates (every frame restates the sender's best) while
// never filtering a peer's genuine improvement.
func (h *hub) meldBound(from int, obj int64) {
	raiseMax(&h.pbStamp, obj)
	if raiseMax(&h.pbSeen, obj) {
		if hd := h.handler(); hd != nil {
			hd.OnBound(from, obj)
		}
	}
}

// serve routes one worker connection until it dies.
func (h *hub) serve(rank int) {
	cn := h.conns[rank]
	for {
		var f frame
		if err := cn.recv(&f); err != nil {
			h.workerDied(rank)
			return
		}
		// Header batching first: the coalesced delta must hit the live
		// count — attributed to its sender, so a death can reconcile
		// it — before any task in this frame is forwarded onward, and
		// the piggybacked bound is merged before serving steals so
		// replies never carry staler knowledge than their request.
		if f.Delta != 0 {
			h.addAt(f.From, f.Delta)
			f.Delta = 0
		}
		if f.HasPB {
			h.meldBound(f.From, f.PB)
			f.HasPB = false
		}
		// A priority summary is recorded here but, unlike the delta and
		// bound, NOT cleared: it describes the origin locality, so a
		// forwarded frame must deliver it unchanged to its destination.
		if f.HasPS {
			notePeerPrio(h.peerPrio, f.From, f.PS)
		}
		switch f.Kind {
		case kSteal:
			if f.To == h.self {
				var tasks []WireTask
				if hd := h.handler(); hd != nil {
					tasks = collectSteal(hd, f.From, f.Want)
				}
				h.mirrorHandOver(f.From, tasks)
				cn.send(&frame{Kind: kStealR, From: h.self, To: f.From, Seq: f.Seq, Tasks: tasks})
				break
			}
			if !h.reachableRank(f.To) || !h.forward(f.To, &f) {
				// Dead or quarantined victim: release the thief
				// empty-handed now instead of letting it ride the
				// steal timeout.
				cn.send(&frame{Kind: kStealR, From: f.To, To: f.From, Seq: f.Seq})
			}
		case kSplit:
			if f.To == h.self {
				// Served off the serve loop: the split gate may block
				// briefly waiting for a running worker's poll point, and
				// this loop must keep draining rank's other traffic.
				thief, seq, want := f.From, f.Seq, f.Want
				go func() {
					var tasks []WireTask
					if hd := h.handler(); hd != nil {
						tasks = collectSplit(hd, thief, want)
					}
					h.mirrorHandOver(thief, tasks)
					cn.send(&frame{Kind: kStealR, From: h.self, To: thief, Seq: seq, Tasks: tasks})
				}()
				break
			}
			if !h.reachableRank(f.To) || !h.forward(f.To, &f) {
				cn.send(&frame{Kind: kStealR, From: f.To, To: f.From, Seq: f.Seq})
			}
		case kStealR:
			if f.To == h.self {
				if !h.pending.resolve(f.Seq, stealRes{tasks: f.Tasks}) && len(f.Tasks) > 0 {
					// The request timed out before this reply landed;
					// the tasks are ours now — keep them as local work.
					if hd := h.handler(); hd != nil {
						for _, t := range f.Tasks {
							hd.OnTask(t)
						}
					}
				}
				break
			}
			h.forward(f.To, &f)
		case kBound:
			// Relay unconditionally: a bound stale to the hub can
			// still be news to a worker that has not heard it (the
			// fan-out of a stronger bound excludes its origin). A
			// node-carrying broadcast is additionally retained, so the
			// optimum outlives its finder — but only the hub's
			// retention wants the blob, so the relay is stripped to
			// the bound itself (workers read only Obj).
			if len(f.Blob) > 0 {
				if h.inc.keep(f.Obj, f.Blob) {
					h.noteIncumbent(f.Obj, f.Blob)
				}
				f.Blob = nil
			}
			h.meldBound(f.From, f.Obj)
			h.fanOut(&f, rank)
		case kCancel:
			if len(f.Blob) > 0 {
				if h.inc.keep(f.Obj, f.Blob) {
					h.noteIncumbent(f.Obj, f.Blob)
				}
				f.Blob = nil
			}
			if hd := h.handler(); hd != nil {
				hd.OnCancel(f.From)
			}
			h.fanOut(&f, rank)
		case kAck:
			// A coalesced batch: each id names its origin. The hub's
			// own are delivered here; the rest join the ack buffer and
			// ride the flusher's next per-origin batches — one split
			// implementation (drainAcks) for relayed and self-minted
			// acks alike. Acks to a dead origin drop silently at
			// forward time: its ledger died with it, and the subtree
			// the ack certifies was completed by the sender anyway.
			var relay []uint64
			for _, id := range f.Acks {
				if origin := TaskOrigin(id); origin == h.self {
					if hd := h.handler(); hd != nil {
						hd.OnAck(f.From, id)
					}
					if h.self == 0 && h.mirror != nil {
						h.mirror.retire(id)
						h.repl.noteRetire(id)
					}
					continue
				} else if origin == 0 {
					// Promoted hub: an ack certifying one of the dead
					// coordinator's hand-overs. Its ledger is gone; the
					// mirror entry is what must retire so the subtree is
					// never replayed.
					h.mirror.retire(id)
					continue
				}
				relay = append(relay, id)
			}
			if relay != nil {
				h.ackMu.Lock()
				h.ackBuf = append(h.ackBuf, relay...)
				h.ackMu.Unlock()
			}
		case kDelta, kPing:
			// Nothing beyond the header fields already applied; a
			// ping's whole purpose was refreshing lastRecv.
		case kGather:
			h.contribute(f.From, f.Blob)
		}
	}
}

// mirrorHandOver records the coordinator's own hand-overs in the
// failover mirror before the reply ships: should the thief die after
// a takeover, the promoted hub replays exactly these supervision
// roots. Unsupervised tasks (ID 0) have nothing to replay.
func (h *hub) mirrorHandOver(thief int, tasks []WireTask) {
	if h.mirror == nil || h.self != 0 {
		return
	}
	for _, t := range tasks {
		if t.ID == 0 {
			continue
		}
		h.mirror.add(thief, t)
		h.repl.noteMirrorAdd(thief, t)
	}
}

// noteIncumbent replicates an incumbent improvement to the standby.
func (h *hub) noteIncumbent(obj int64, node []byte) {
	if h.repl != nil && h.self == 0 {
		h.repl.noteIncumbent(obj, node)
	}
}

// reachableRank reports whether rank can receive traffic promptly
// (alive, and not suspended or suspected inside a grace window).
func (h *hub) reachableRank(rank int) bool {
	if rank <= 0 || rank >= h.size || rank == h.self {
		return false
	}
	cn := h.conns[rank]
	return cn != nil && cn.reachable() && !cn.suspect.Load()
}

// Suspected implements LinkHealth: true while rank is quarantined by
// the two-phase watchdog or mid-resume on a suspended session. Victim
// selection skips suspected ranks; steals aimed at them fail fast.
func (h *hub) Suspected(rank int) bool {
	if rank <= 0 || rank >= h.size || rank == h.self {
		return false
	}
	cn := h.conns[rank]
	return cn != nil && !cn.dead.Load() && cn.suspectedPeer()
}

// forward sends a frame to a worker; false when the worker is gone.
func (h *hub) forward(rank int, f *frame) bool {
	if rank <= 0 || rank >= h.size {
		return false
	}
	cn := h.conns[rank]
	if cn == nil || cn.dead.Load() {
		return false
	}
	return cn.send(f) == nil
}

// fanOut relays a frame to every live worker except the origin.
func (h *hub) fanOut(f *frame, except int) {
	for rank := 1; rank < h.size; rank++ {
		if rank == except {
			continue
		}
		h.forward(rank, f)
	}
}

// workerDied handles a lost connection. After normal termination it
// only records the (expected) disconnect. Before termination it is a
// real death, and the supervised-task protocol takes over instead of
// the old force-termination: pending steals aimed at the worker fail
// fast, every survivor is notified (kDeath fan-out plus the hub's own
// Deaths channel) so their ledgers replay the subtree roots the dead
// rank was holding, the gather slot is filled with nil so the terminal
// collective cannot block on a rank that will never contribute, and
// the dead rank's outstanding live-task contribution is reconciled
// away — the survivors' ledger registrations keep everything that can
// still be replayed counted, so the count reaches zero exactly when
// the surviving search (replays included) is done.
func (h *hub) workerDied(rank int) {
	if h.closed.Load() {
		// The hub itself is going away (Close tears the connections
		// down one by one): the workers are not dying, and mourning
		// them here would broadcast spurious kDeath frames to conns
		// not yet torn down — survivors of a coordinator crash must
		// see exactly one death, rank 0's, detected on their own side.
		return
	}
	cn := h.conns[rank]
	if !cn.mourned.CompareAndSwap(false, true) {
		return
	}
	cn.dead.Store(true)
	h.pending.failVictim(rank)
	select {
	case <-h.done:
		// Post-termination disconnect: the worker shut down normally
		// (it has already contributed its gather payload, or never
		// will — fill the slot either way so Gather cannot block).
		h.contribute(rank, nil)
		return
	default:
	}
	h.deaths.announce(rank)
	h.fanOut(&frame{Kind: kDeath, From: h.self, Want: rank}, rank)
	h.contribute(rank, nil)
	if h.mirror != nil {
		if h.self == 0 {
			// The engine-level ledger replays these hand-overs itself
			// (they re-export under fresh ids if re-stolen); the old
			// mirror entries are dead weight at the standby too.
			for _, t := range h.mirror.takeHolder(rank) {
				h.repl.noteRetire(t.ID)
			}
			if rank == h.repl.targetRank() {
				h.retargetRepl()
			}
		} else {
			// Promoted hub: replay the dead rank's share of the old
			// coordinator's hand-overs — the one set of roots no
			// surviving ledger supervises.
			h.replayMirror(rank)
		}
	}
	if removed := h.liveAt[rank].Swap(0); removed != 0 {
		if h.live.Add(-removed) == 0 && removed > 0 {
			h.terminate()
		}
	}
}

// retargetRepl points replication at the lowest surviving rank and
// forces it a full base snapshot.
func (h *hub) retargetRepl() {
	for r := 1; r < h.size; r++ {
		cn := h.conns[r]
		if cn != nil && !cn.dead.Load() && !cn.mourned.Load() {
			h.repl.setTarget(r)
			return
		}
	}
	h.repl.setTarget(-1) // no survivors to replicate to
}

// flushRepl drains the replication queue once per flush quantum.
func (h *hub) flushRepl() {
	if h.repl == nil || h.self != 0 {
		return
	}
	t := h.repl.targetRank()
	if t <= 0 || t >= h.size {
		return
	}
	h.repl.flushTo(h.conns[t], h.snapshotBlob)
}

// snapshotBlob captures the hub's residual state for a kHubSnap.
func (h *hub) snapshotBlob() []byte {
	s := &HubSnapshot{
		Epoch:     h.epoch,
		Spec:      h.snapSpec,
		Size:      h.size,
		PeerAddrs: h.peerAddrs,
		Alive:     make([]bool, h.size),
		Mirror:    h.mirror.entries(),
	}
	s.Alive[h.self] = true
	for r := 0; r < h.size; r++ {
		if cn := h.conns[r]; cn != nil && !cn.mourned.Load() {
			s.Alive[r] = true
		}
	}
	s.BestObj, s.BestNode, s.HasBest = h.inc.best()
	h.gatherMu.Lock()
	for r, c := range h.contrib {
		if c {
			s.Gather = append(s.Gather, GatherSlot{Rank: r, Blob: h.blobs[r]})
		}
	}
	h.gatherMu.Unlock()
	return encodeHubSnapshot(s)
}

// terminate ends the search everywhere, once.
func (h *hub) terminate() {
	h.doneOnce.Do(func() {
		close(h.done)
		h.fanOut(&frame{Kind: kTerminate}, 0)
	})
}

func (h *hub) Steal(victim int) (WireTask, bool, error) {
	return h.stealVia(kSteal, victim)
}

// SplitSteal is Steal with split semantics (kSplit): the victim falls
// back to splitting a running worker's live generator stack when its
// pool is dry. The reply is an ordinary kStealR, so correlation and
// batch re-homing are shared with plain steals.
func (h *hub) SplitSteal(victim int) (WireTask, bool, error) {
	return h.stealVia(kSplit, victim)
}

func (h *hub) stealVia(k kind, victim int) (WireTask, bool, error) {
	if victim < 0 || victim >= h.size || victim == h.self {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	if !h.reachableRank(victim) {
		return WireTask{}, false, nil
	}
	seq, ch := h.pending.register(victim)
	if !h.forward(victim, &frame{Kind: k, From: h.self, To: victim, Seq: seq, Want: h.opts.StealBatch}) {
		h.pending.drop(seq)
		return WireTask{}, false, nil
	}
	select {
	case res := <-ch:
		if len(res.tasks) == 0 {
			return WireTask{}, false, nil
		}
		h.ctr.stealReplies.Add(1)
		h.ctr.stealTasks.Add(int64(len(res.tasks)))
		if hd := h.handler(); hd != nil {
			for _, t := range res.tasks[1:] {
				hd.OnTask(t)
			}
		}
		return res.tasks[0], true, nil
	case <-h.done:
		// Global termination: no reply can matter (and none may come —
		// a victim that finished may already have shut down without a
		// post-termination death fan-out to fail this request).
		h.pending.drop(seq)
		return WireTask{}, false, nil
	case <-time.After(stealTimeout):
		h.pending.drop(seq)
		return WireTask{}, false, nil
	}
}

// BroadcastBound retains the node locally (the hub IS rank 0's
// retention) and fans out the bound alone: workers have no use for
// the encoded node, so it never costs fan-out bandwidth.
func (h *hub) BroadcastBound(obj int64, node []byte) error {
	if h.inc.keep(obj, node) {
		h.noteIncumbent(obj, node)
	}
	raiseMax(&h.pbStamp, obj)
	h.fanOut(&frame{Kind: kBound, From: h.self, Obj: obj}, h.self)
	return nil
}

func (h *hub) Cancel(obj int64, witness []byte) error {
	if h.inc.keep(obj, witness) {
		h.noteIncumbent(obj, witness)
	}
	h.fanOut(&frame{Kind: kCancel, From: h.self, Obj: obj}, h.self)
	return nil
}

// Ack queues a hand-over completion ack towards the origin's ledger;
// the hub's ack flusher drains the buffer once per quantum, one frame
// per origin, exactly like a worker's coalescing.
func (h *hub) Ack(origin int, id uint64) error {
	if origin == 0 && h.self != 0 {
		// Promoted hub completing one of the dead coordinator's
		// hand-overs (adopted via a mirror replay): the origin ledger
		// is gone, the mirror entry is what retires.
		h.mirror.retire(id)
		return nil
	}
	if origin <= 0 || origin >= h.size || origin == h.self {
		return fmt.Errorf("dist: ack to invalid rank %d", origin)
	}
	h.ackMu.Lock()
	h.ackBuf = append(h.ackBuf, id)
	h.ackMu.Unlock()
	return nil
}

// drainAcks forwards the hub's coalesced acks, grouped per origin.
func (h *hub) drainAcks() {
	h.ackMu.Lock()
	ids := h.ackBuf
	h.ackBuf = nil
	h.ackMu.Unlock()
	if len(ids) == 0 {
		return
	}
	byOrigin := make(map[int][]uint64)
	for _, id := range ids {
		origin := TaskOrigin(id)
		if origin == 0 && h.self != 0 {
			// Inherited from the worker endpoint at promotion: an ack
			// for a dead-coordinator hand-over retires its mirror entry.
			h.mirror.retire(id)
			continue
		}
		if origin > 0 && origin < h.size && origin != h.self {
			byOrigin[origin] = append(byOrigin[origin], id)
		}
	}
	for origin, ids := range byOrigin {
		var fs []*frame
		for len(ids) > 0 {
			n := len(ids)
			if n > maxStealBatch {
				n = maxStealBatch
			}
			fs = append(fs, &frame{Kind: kAck, From: h.self, To: origin, Acks: ids[:n]})
			ids = ids[n:]
		}
		h.forwardMany(origin, fs)
	}
}

// forwardMany is forward for a batch of frames, put on the wire with
// one vectored flush.
func (h *hub) forwardMany(rank int, fs []*frame) bool {
	if rank <= 0 || rank >= h.size {
		return false
	}
	cn := h.conns[rank]
	if cn == nil || cn.dead.Load() {
		return false
	}
	return cn.sendMany(fs) == nil
}

// ackFlushLoop drains the hub's coalesced acks once per quantum. It
// must outlive termination detection (termination *requires* the final
// acks to land), so it stops only when the hub closes.
func (h *hub) ackFlushLoop() {
	t := time.NewTicker(h.opts.FlushQuantum)
	defer t.Stop()
	for range t.C {
		if h.closed.Load() {
			return
		}
		h.drainAcks()
		h.flushRepl()
	}
}

// addAt folds a delta into the global count, attributed to rank.
func (h *hub) addAt(rank int, delta int64) {
	if rank < 0 || rank >= h.size {
		rank = 0
	}
	h.liveAt[rank].Add(delta)
	if h.live.Add(delta) == 0 && delta < 0 {
		h.terminate()
	}
}

func (h *hub) AddTasks(delta int64) { h.addAt(h.self, delta) }

func (h *hub) Done() <-chan struct{} { return h.done }

func (h *hub) Deaths() <-chan int { return h.deaths.ch }

func (h *hub) contribute(rank int, blob []byte) {
	if rank < 0 || rank >= h.size {
		return
	}
	h.gatherMu.Lock()
	defer h.gatherMu.Unlock()
	if h.aborted || h.contrib[rank] {
		return
	}
	h.contrib[rank] = true
	h.blobs[rank] = blob
	h.have++
	if h.repl != nil && h.self == 0 {
		h.repl.noteGather(rank, blob)
	}
	if h.have == h.size {
		close(h.gotAll)
	}
}

func (h *hub) Gather(payload []byte) ([][]byte, error) {
	h.contribute(h.self, payload)
	<-h.gotAll
	h.gatherMu.Lock()
	defer h.gatherMu.Unlock()
	if h.aborted {
		return nil, errors.New("dist: gather aborted: coordinator endpoint closed mid-search")
	}
	return h.blobs, nil
}

func (h *hub) Close() error {
	if !h.closed.CompareAndSwap(false, true) {
		return nil
	}
	h.stOnce.Do(func() { close(h.started) }) // unblock routing goroutines

	for _, cn := range h.conns {
		if cn != nil {
			cn.close()
		}
	}
	if h.ln != nil {
		h.ln.Close()
	}
	// A Close before global termination is this endpoint's death (the
	// in-process analogue of SIGKILL — chaos harnesses close a live
	// coordinator on purpose). Release anything still parked on this
	// endpoint: the local engine waiting on Done, and a Gather that can
	// never complete because the workers now contribute to the promoted
	// standby instead.
	h.gatherMu.Lock()
	if h.have < h.size {
		h.aborted = true
		close(h.gotAll)
	}
	h.gatherMu.Unlock()
	h.doneOnce.Do(func() { close(h.done) })
	return nil
}

// Dial connects a worker to the coordinator with default WireOptions,
// retrying while the coordinator is not yet listening, and completes
// registration. The returned transport's rank is assigned by the
// coordinator.
func Dial(addr, spec string) (Transport, error) {
	return DialOpts(addr, spec, WireOptions{})
}

// DialOpts is Dial with explicit framing options. StealBatch is a
// thief-side knob (each endpoint requests its own batch size), while
// FlushQuantum paces this worker's delta flushes; deployments normally
// use the same options everywhere but are not required to.
func DialOpts(addr, spec string, opts WireOptions) (Transport, error) {
	opts = opts.withDefaults()
	spec = topoSpec(spec, opts)
	if opts.Topology == TopologyMesh {
		return dialMesh(addr, spec, opts)
	}
	c, err := dialRetry(addr)
	if err != nil {
		return nil, err
	}
	w := &worker{
		opts:      opts,
		standby:   opts.Standby,
		started:   make(chan struct{}),
		done:      make(chan struct{}),
		flushStop: make(chan struct{}),
	}
	w.pbStamp.Store(math.MinInt64)
	w.pbSeen.Store(math.MinInt64)
	cn := newWconn(c, &w.ctr)
	fail := func(err error) (Transport, error) {
		cn.close()
		if w.promoLn != nil {
			w.promoLn.Close()
		}
		return nil, err
	}
	if opts.Standby {
		// Pre-bind the promotion listener before saying hello: the
		// address every worker advertises must be accepting from the
		// instant it is exchanged — a takeover can happen any time
		// after, and re-dialing workers land in the kernel backlog
		// until the candidate's accept loop starts.
		pl, err := net.Listen("tcp", ":0")
		if err != nil {
			return fail(fmt.Errorf("dist: binding promotion listener: %w", err))
		}
		w.promoLn = pl
	}
	if err := cn.send(&frame{Kind: kHello, Want: wireVersion, Blob: []byte(spec)}); err != nil {
		return fail(fmt.Errorf("dist: registering with %s: %w", addr, err))
	}
	if opts.Standby {
		// Advertise the promotion listener under the host the
		// registration connection actually uses (the listener itself
		// is bound to the wildcard address).
		host, _, err := net.SplitHostPort(c.LocalAddr().String())
		if err != nil {
			return fail(fmt.Errorf("dist: resolving promotion address: %w", err))
		}
		_, port, err := net.SplitHostPort(w.promoLn.Addr().String())
		if err != nil {
			return fail(fmt.Errorf("dist: resolving promotion address: %w", err))
		}
		adv := net.JoinHostPort(host, port)
		if err := cn.send(&frame{Kind: kPeerAddr, Blob: []byte(adv)}); err != nil {
			return fail(fmt.Errorf("dist: advertising promotion address to %s: %w", addr, err))
		}
	}
	var welcome frame
	if err := cn.recv(&welcome); err != nil {
		return fail(fmt.Errorf("dist: registration reply from %s: %w", addr, err))
	}
	switch welcome.Kind {
	case kWelcome:
	case kReject:
		return fail(fmt.Errorf("dist: coordinator refused registration: %s", string(welcome.Blob)))
	default:
		return fail(fmt.Errorf("dist: unexpected registration reply kind %d", welcome.Kind))
	}
	w.cn.Store(cn)
	w.rank = welcome.To
	w.size = welcome.Want
	if opts.LinkGrace > 0 && welcome.Seq != 0 {
		// The hub minted a resumable session and carried its id in the
		// welcome; this side dials the resume after a connection loss.
		s := newSession(welcome.Seq, opts.LinkGrace)
		s.rank = w.rank
		s.redial = sessionRedialer(addr)
		cn.sess = s
	}
	cn.attachFault(opts.Fault, w.rank, 0)
	w.peerPrio = newPeerPrios(w.size)
	w.deaths = newDeathBox(w.size)
	if opts.Standby {
		var pf frame
		if err := cn.recv(&pf); err != nil || pf.Kind != kPeers {
			return fail(fmt.Errorf("dist: waiting for promotion address table from %s: %w", addr, err))
		}
		table, err := parsePeerTable(pf.Blob)
		if err != nil || len(table) != w.size {
			return fail(fmt.Errorf("dist: bad promotion address table from %s (%d entries, want %d)", addr, len(table), w.size))
		}
		w.peerAddrs = table
		w.store = newStandbyState()
		cn.cum = &w.cumSent
	}
	cn.pending = &w.delta
	cn.pb = &w.pbStamp
	cn.ps = selfPrioFn(&w.h)
	cn.psFrom = w.rank
	// The heartbeat starts at registration, not at Start: the gap
	// between the two is where the worker loads its problem instance,
	// and a silent connection there must not read as a death.
	go w.pingLoop()
	return w, nil
}

// worker is a non-coordinator locality's endpoint: one connection to
// the hub carrying all of its traffic. Under failover the connection
// is swappable (a takeover re-points it at the promoted hub) and, if
// this rank itself promotes, every Transport method delegates to the
// hub it becomes.
type worker struct {
	cn      atomic.Pointer[wconn]
	rank    int
	size    int
	opts    WireOptions
	h       atomic.Value
	started chan struct{}
	stOnce  sync.Once

	done     chan struct{}
	doneOnce sync.Once
	deaths   *deathBox

	// failover state (zero unless WireOptions.Standby).
	standby   bool
	epoch     atomic.Uint32       // 0 original coordinator alive, 1 after the takeover
	cumSent   atomic.Int64        // cumulative live-task delta put on a wire
	peerAddrs []string            // rank-indexed promotion-listener addresses
	promoLn   net.Listener        // this rank's pre-bound promotion listener
	store     *standbyState       // replicated hub state (filled only at the standby)
	promo     atomic.Pointer[hub] // the hub this rank became, if promoted

	pending  pendingSteals
	delta    atomic.Int64 // coalesced live-task delta, drained by sends
	ackMu    sync.Mutex
	ackBuf   []uint64     // coalesced completion acks, drained by the flusher
	pbStamp  atomic.Int64 // best bound known; stamped on outgoing frames
	pbSeen   atomic.Int64 // best bound delivered to the handler
	peerPrio []atomic.Int64
	ctr      wireCounters

	flushStop chan struct{}
	flushOnce sync.Once
	closed    atomic.Bool
}

var _ Transport = (*worker)(nil)
var _ Meter = (*worker)(nil)
var _ PrioAware = (*worker)(nil)
var _ IncumbentStore = (*worker)(nil)
var _ Promoter = (*worker)(nil)
var _ AckRelay = (*worker)(nil)
var _ LinkHealth = (*worker)(nil)

// AcksRelayed implements AckRelay: star acks travel through the hub,
// so a dying coordinator can eat an in-flight ack — the engine must
// replay every outstanding hand-over when rank 0 dies.
func (w *worker) AcksRelayed() bool { return true }

// conn is the current hub connection (swapped by a takeover).
func (w *worker) conn() *wconn { return w.cn.Load() }

// Promoted implements Promoter: true once this rank took over as
// coordinator — the signal for result extraction to consult this
// locality where it would have consulted rank 0.
func (w *worker) Promoted() bool { return w.promo.Load() != nil }

// BestKnown implements IncumbentStore vacuously: retention lives at
// the hub, and only rank 0's answer is ever consulted — unless this
// rank became the hub, whose inherited retention is then the answer.
func (w *worker) BestKnown() (int64, []byte, bool) {
	if h := w.promo.Load(); h != nil {
		return h.BestKnown()
	}
	return 0, nil, false
}

// pingLoop keeps the connection audibly alive: whenever nothing has
// been sent for a heartbeat, an empty kPing goes out (carrying, as
// every frame does, any coalesced delta and bound snapshot). The hub's
// livenessLoop reads silence beyond LivenessTimeout as death.
func (w *worker) pingLoop() {
	t := time.NewTicker(w.opts.Heartbeat)
	defer t.Stop()
	var lastSent uint64
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			cn := w.conn()
			if cn.dead.Load() {
				// A takeover may swap in a live connection; keep
				// ticking until the flusher is stopped for good.
				continue
			}
			// Anything sent since the last tick is heartbeat enough.
			if n := cn.nSent.Load(); n != lastSent {
				lastSent = n
				continue
			}
			cn.send(&frame{Kind: kPing, From: w.rank})
			lastSent = cn.nSent.Load()
		}
	}
}

func (w *worker) Rank() int { return w.rank }
func (w *worker) Size() int { return w.size }

func (w *worker) Wire() WireStats {
	s := w.ctr.snapshot()
	if h := w.promo.Load(); h != nil {
		// The hub this rank became counts its own traffic; the report
		// spans both lives.
		hs := h.ctr.snapshot()
		s.FramesSent += hs.FramesSent
		s.FramesRecv += hs.FramesRecv
		s.BytesSent += hs.BytesSent
		s.BytesRecv += hs.BytesRecv
		s.StealTasks += hs.StealTasks
		s.StealReplies += hs.StealReplies
		s.Resumes += hs.Resumes
	}
	return s
}

// PeerBestPrio implements PrioAware. A worker hears summaries on the
// frames routed to it — the hub's own traffic, and forwarded frames
// (steal replies, bound relays) stamped by their origin — so its view
// of a peer refreshes whenever they exchange work. After a promotion
// the hub's table is the live one.
func (w *worker) PeerBestPrio(rank int) (int, bool) {
	if h := w.promo.Load(); h != nil {
		if p, ok := peerBestPrio(h.peerPrio, rank); ok {
			return p, ok
		}
	}
	return peerBestPrio(w.peerPrio, rank)
}

// Suspected implements LinkHealth: with only the hub link to go on, a
// suspended session makes every peer unreachable (steals route through
// the hub), so all non-self ranks are suspected while it resumes.
func (w *worker) Suspected(rank int) bool {
	if h := w.promo.Load(); h != nil {
		return h.Suspected(rank)
	}
	if rank == w.rank || rank < 0 || rank >= w.size {
		return false
	}
	cn := w.conn()
	return cn.sess != nil && cn.sess.isSuspended()
}

func (w *worker) Start(h Handler) {
	w.h.Store(h)
	w.stOnce.Do(func() { close(w.started) })
	go w.readLoop(w.conn())
	go w.flushLoop()
}

func (w *worker) handler() Handler {
	hd, _ := w.h.Load().(Handler)
	return hd
}

// meldBound merges a learned bound (broadcast or piggyback) and
// delivers it unless something at least as strong has already been
// delivered. Own broadcasts raise only pbStamp, so a peer's weaker
// but never-heard bound still reaches the handler.
func (w *worker) meldBound(from int, obj int64) {
	raiseMax(&w.pbStamp, obj)
	if raiseMax(&w.pbSeen, obj) {
		w.handler().OnBound(from, obj)
	}
}

// stopFlush ends the delta flusher (idempotent).
func (w *worker) stopFlush() {
	w.flushOnce.Do(func() { close(w.flushStop) })
}

// flushLoop is the pool-quantum tick: whatever completion acks and
// live-task delta have accumulated since the last outgoing frame are
// flushed — as one vectored write covering the whole tick, not one
// syscall per frame. This is what turns one-frame-per-spawn into one
// flush per quantum; sends of any other kind drain the accumulator
// for free.
func (w *worker) flushLoop() {
	t := time.NewTicker(w.opts.FlushQuantum)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.flushTick()
		}
	}
}

// flushTick drains one quantum's coalesced acks and delta onto the
// wire in a single vectored flush. The delta uses Swap, not
// Load-then-send: a concurrent outgoing frame may drain the
// accumulator between the two, which would put an empty kDelta frame
// on the wire.
func (w *worker) flushTick() {
	w.ackMu.Lock()
	ids := w.ackBuf
	w.ackBuf = nil
	w.ackMu.Unlock()
	var fs []*frame
	for rest := ids; len(rest) > 0; {
		n := len(rest)
		if n > maxStealBatch {
			n = maxStealBatch
		}
		fs = append(fs, &frame{Kind: kAck, From: w.rank, Acks: rest[:n]})
		rest = rest[n:]
	}
	d := w.delta.Swap(0)
	if d != 0 {
		fs = append(fs, &frame{Kind: kDelta, From: w.rank, Delta: d})
	}
	if len(fs) == 0 {
		return
	}
	if w.conn().sendMany(fs) != nil {
		// The connection is dead (the hub declares us so); keep
		// everything for Close's best-effort flush — and, under
		// failover, for the promoted hub this buffer hands over to.
		if len(ids) > 0 {
			w.ackMu.Lock()
			w.ackBuf = append(w.ackBuf, ids...)
			w.ackMu.Unlock()
		}
		if d != 0 {
			w.delta.Add(d)
		}
	}
}

func (w *worker) readLoop(cn *wconn) {
	for {
		var f frame
		if err := cn.recv(&f); err != nil {
			// The hub is gone. Under standby the takeover protocol gets
			// first refusal (promote or rejoin); when it declines — not
			// a standby deployment, a second coordinator death, no
			// survivors — no more work or termination signal can ever
			// arrive, so release anyone waiting.
			if w.failover() {
				return
			}
			w.pending.failAll()
			w.stopFlush()
			w.doneOnce.Do(func() { close(w.done) })
			return
		}
		if f.HasPB {
			w.meldBound(f.From, f.PB)
		}
		if f.HasPS && f.From != w.rank {
			notePeerPrio(w.peerPrio, f.From, f.PS)
		}
		switch f.Kind {
		case kSteal:
			tasks := collectSteal(w.handler(), f.From, f.Want)
			cn.send(&frame{Kind: kStealR, From: w.rank, To: f.From, Seq: f.Seq, Tasks: tasks})
		case kSplit:
			// Served off the read loop: the split gate may block briefly
			// waiting for a running worker's next poll point.
			thief, seq, want := f.From, f.Seq, f.Want
			go func() {
				tasks := collectSplit(w.handler(), thief, want)
				cn.send(&frame{Kind: kStealR, From: w.rank, To: thief, Seq: seq, Tasks: tasks})
			}()
		case kStealR:
			if !w.pending.resolve(f.Seq, stealRes{tasks: f.Tasks}) && len(f.Tasks) > 0 {
				// Late reply to a timed-out steal: the tasks left their
				// victim and must not be lost — enqueue them locally.
				for _, t := range f.Tasks {
					w.handler().OnTask(t)
				}
			}
		case kBound:
			w.meldBound(f.From, f.Obj)
		case kCancel:
			w.handler().OnCancel(f.From)
		case kAck:
			for _, id := range f.Acks {
				w.handler().OnAck(f.From, id)
			}
		case kDeath:
			// A peer died: fail steals aimed at it fast (a reply can
			// never come) and let the engine replay its ledger.
			w.pending.failVictim(f.Want)
			w.deaths.announce(f.Want)
		case kTerminate:
			w.doneOnce.Do(func() { close(w.done) })
		case kHubSnap:
			if w.store != nil {
				w.store.applySnap(f.Blob)
			}
		case kHubDelta:
			if w.store != nil {
				w.store.applyDelta(&f)
			}
		}
	}
}

func (w *worker) Steal(victim int) (WireTask, bool, error) {
	return w.stealVia(kSteal, victim)
}

// SplitSteal is Steal with split semantics; see hub.SplitSteal.
func (w *worker) SplitSteal(victim int) (WireTask, bool, error) {
	return w.stealVia(kSplit, victim)
}

func (w *worker) stealVia(k kind, victim int) (WireTask, bool, error) {
	if h := w.promo.Load(); h != nil {
		return h.stealVia(k, victim)
	}
	if victim < 0 || victim >= w.size || victim == w.rank {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	if cn := w.conn(); cn.sess != nil && cn.sess.isSuspended() {
		// The hub link is mid-resume: a request would sit in the
		// retransmit log until the link heals — fail fast and keep
		// expanding the local frontier instead.
		return WireTask{}, false, nil
	}
	seq, ch := w.pending.register(victim)
	if err := w.conn().send(&frame{Kind: k, From: w.rank, To: victim, Seq: seq, Want: w.opts.StealBatch}); err != nil {
		w.pending.drop(seq)
		return WireTask{}, false, err
	}
	select {
	case res := <-ch:
		if len(res.tasks) == 0 {
			return WireTask{}, false, nil
		}
		w.ctr.stealReplies.Add(1)
		w.ctr.stealTasks.Add(int64(len(res.tasks)))
		for _, t := range res.tasks[1:] {
			w.handler().OnTask(t)
		}
		return res.tasks[0], true, nil
	case <-w.done:
		// Global termination: see hub.Steal — a finished victim may
		// have shut down without anything left to fail this request.
		w.pending.drop(seq)
		return WireTask{}, false, nil
	case <-time.After(stealTimeout):
		w.pending.drop(seq)
		return WireTask{}, false, nil
	}
}

func (w *worker) BroadcastBound(obj int64, node []byte) error {
	if h := w.promo.Load(); h != nil {
		return h.BroadcastBound(obj, node)
	}
	raiseMax(&w.pbStamp, obj)
	return w.conn().send(&frame{Kind: kBound, From: w.rank, Obj: obj, Blob: node})
}

func (w *worker) Cancel(obj int64, witness []byte) error {
	if h := w.promo.Load(); h != nil {
		return h.Cancel(obj, witness)
	}
	return w.conn().send(&frame{Kind: kCancel, From: w.rank, Obj: obj, Blob: witness})
}

// Ack queues a hand-over completion ack towards the origin's ledger.
// Acks coalesce like live-task deltas: the flusher drains the buffer
// into one kAck batch per quantum (ids name their own origins; the hub
// splits the batch while routing), so the no-failure cost of
// supervision is one small frame per quantum instead of one per stolen
// task. Retirement latency only delays ledger turnover, never
// correctness.
func (w *worker) Ack(origin int, id uint64) error {
	if h := w.promo.Load(); h != nil {
		return h.Ack(origin, id)
	}
	if origin < 0 || origin >= w.size || origin == w.rank {
		return fmt.Errorf("dist: ack to invalid rank %d", origin)
	}
	w.ackMu.Lock()
	w.ackBuf = append(w.ackBuf, id)
	w.ackMu.Unlock()
	return nil
}

// drainAcks sends the coalesced ack buffer, chunked under the frame
// limit. Undeliverable acks go back in the buffer: on a plain death
// they are moot (the remote ledger died with its locality), but under
// failover the buffer is what the promoted hub inherits, and a
// rejoined worker's next drain delivers them over the new connection.
func (w *worker) drainAcks() {
	w.ackMu.Lock()
	ids := w.ackBuf
	w.ackBuf = nil
	w.ackMu.Unlock()
	for len(ids) > 0 {
		n := len(ids)
		if n > maxStealBatch {
			n = maxStealBatch
		}
		if w.conn().send(&frame{Kind: kAck, From: w.rank, Acks: ids[:n]}) != nil {
			w.ackMu.Lock()
			w.ackBuf = append(w.ackBuf, ids...)
			w.ackMu.Unlock()
			return
		}
		ids = ids[n:]
	}
}

// AddTasks coalesces: the delta joins the accumulator and rides out on
// the next frame of any kind, or on the flusher's next quantum tick.
// A promoted rank applies deltas straight to the global count it now
// owns.
func (w *worker) AddTasks(delta int64) {
	if h := w.promo.Load(); h != nil {
		h.AddTasks(delta)
		return
	}
	w.delta.Add(delta)
}

func (w *worker) Done() <-chan struct{} { return w.done }

func (w *worker) Deaths() <-chan int { return w.deaths.ch }

func (w *worker) Gather(payload []byte) ([][]byte, error) {
	if h := w.promo.Load(); h != nil {
		return h.Gather(payload)
	}
	if err := w.conn().send(&frame{Kind: kGather, From: w.rank, Blob: payload}); err != nil {
		return nil, fmt.Errorf("dist: sending gather payload: %w", err)
	}
	return nil, nil
}

func (w *worker) Close() error {
	if w.closed.CompareAndSwap(false, true) {
		if h := w.promo.Load(); h != nil {
			// The hub this rank became owns the connections (and the
			// promotion listener); its Close is the whole shutdown.
			w.stopFlush()
			return h.Close()
		}
		// Best-effort final ack and delta flush, so a deployment that
		// closes a worker cleanly does not strand termination on lost
		// counts or unretired ledger entries.
		w.drainAcks()
		if d := w.delta.Swap(0); d != 0 {
			w.conn().send(&frame{Kind: kDelta, From: w.rank, Delta: d})
		}
		w.stopFlush()
		w.conn().close()
		if w.promoLn != nil {
			w.promoLn.Close()
		}
	}
	return nil
}
