// Package semantics is an executable version of the paper's formal
// model of parallel backtracking search (Section 3): materialised
// ordered trees, configurations ⟨σ, Tasks, θ1…θn⟩, and the reduction
// rules of Figure 2, driven by a seeded nondeterministic scheduler.
//
// Its purpose is validation, not performance: the property tests in
// this package check Theorems 3.1–3.3 — any interleaving of reductions
// terminates and computes the fold (enumeration) or the maximum
// (optimisation/decision) of the objective over the tree, regardless
// of how pruning reshapes the tree mid-search.
//
// Nodes are represented by their path strings over a small alphabet,
// so the prefix order ⪯ of the paper is literal string prefixing and
// depth is string length.
package semantics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Tree is a materialised ordered search tree. Children lists hold the
// sibling order ⋖; H is the objective function h.
type Tree struct {
	Children map[string][]string
	H        map[string]int
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.H) }

// Sum is Σ h(v) — the reference answer for enumeration.
func (t *Tree) Sum() int {
	s := 0
	for _, v := range t.H {
		s += v
	}
	return s
}

// Max is max h(v) — the reference answer for optimisation.
func (t *Tree) Max() int {
	best := 0
	first := true
	for _, v := range t.H {
		if first || v > best {
			best, first = v, false
		}
	}
	return best
}

// SubtreeMax returns max h over subtree(v) in the *original* tree; it
// induces the admissible pruning relation u ▷ v ⇔ h(u) >= SubtreeMax(v).
func (t *Tree) SubtreeMax(v string) int {
	best := t.H[v]
	for _, c := range t.Children[v] {
		if m := t.SubtreeMax(c); m > best {
			best = m
		}
	}
	return best
}

// GenTree builds a random tree: branching 0..maxBranch, forced bushy
// near the root, h values in [0, hMax).
func GenTree(seed int64, maxBranch, maxDepth, hMax int) *Tree {
	r := rand.New(rand.NewSource(seed))
	t := &Tree{Children: map[string][]string{}, H: map[string]int{}}
	var build func(id string, depth int)
	build = func(id string, depth int) {
		t.H[id] = r.Intn(hMax)
		if depth >= maxDepth {
			return
		}
		b := r.Intn(maxBranch + 1)
		if depth < 2 {
			b = 1 + r.Intn(maxBranch)
		}
		for i := 0; i < b; i++ {
			c := id + string(rune('a'+i))
			t.Children[id] = append(t.Children[id], c)
			build(c, depth+1)
		}
	}
	build("", 0)
	return t
}

// Subtree is a task: a set of nodes with a least element Root,
// prefix-closed above the root (Section 3.1).
type Subtree struct {
	Root  string
	Nodes map[string]bool
}

// FullSubtree materialises subtree(tree, root).
func FullSubtree(t *Tree, root string) *Subtree {
	s := &Subtree{Root: root, Nodes: map[string]bool{}}
	var add func(v string)
	add = func(v string) {
		s.Nodes[v] = true
		for _, c := range t.Children[v] {
			add(c)
		}
	}
	add(root)
	return s
}

// traversal returns the nodes of s in ≪ order: depth-first, children
// in sibling order, restricted to the nodes still present in s.
func (s *Subtree) traversal(t *Tree) []string {
	var out []string
	var walk func(v string)
	walk = func(v string) {
		out = append(out, v)
		for _, c := range t.Children[v] {
			if s.Nodes[c] {
				walk(c)
			}
		}
	}
	if s.Nodes[s.Root] {
		walk(s.Root)
	}
	return out
}

// next returns next(s, v): the node immediately after v in traversal
// order, or "" (with ok false) if v is the last.
func (s *Subtree) next(t *Tree, v string) (string, bool) {
	tr := s.traversal(t)
	for i, u := range tr {
		if u == v {
			if i+1 < len(tr) {
				return tr[i+1], true
			}
			return "", false
		}
	}
	return "", false
}

// succ returns succ(s, v): all nodes after v in traversal order.
func (s *Subtree) succ(t *Tree, v string) []string {
	tr := s.traversal(t)
	for i, u := range tr {
		if u == v {
			return tr[i+1:]
		}
	}
	return nil
}

// lowest returns lowest(s, v): the members of succ(s, v) at minimum
// depth, in traversal order.
func (s *Subtree) lowest(t *Tree, v string) []string {
	su := s.succ(t, v)
	if len(su) == 0 {
		return nil
	}
	min := len(su[0])
	for _, u := range su {
		if len(u) < min {
			min = len(u)
		}
	}
	var out []string
	for _, u := range su {
		if len(u) == min {
			out = append(out, u)
		}
	}
	return out
}

// extract removes subtree(s, u) from s and returns it as a new task.
func (s *Subtree) extract(u string) *Subtree {
	out := &Subtree{Root: u, Nodes: map[string]bool{}}
	for v := range s.Nodes {
		if strings.HasPrefix(v, u) {
			out.Nodes[v] = true
			delete(s.Nodes, v)
		}
	}
	return out
}

// Kind is the search type of Section 3.2.
type Kind int

const (
	// Enumeration folds h into the (int, +, 0) monoid.
	Enumeration Kind = iota
	// Optimisation tracks an incumbent maximising h.
	Optimisation
	// Decision maximises min(h, Target) and short-circuits at Target.
	Decision
)

// Thread is θi: idle, or an active search ⟨S, v⟩^k.
type Thread struct {
	Active bool
	S      *Subtree
	V      string
	K      int
}

// Config is a configuration ⟨σ, Tasks, θ1…θn⟩.
type Config struct {
	Kind    Kind
	Target  int // decision: the greatest element of the bounded order
	Acc     int // σ for enumeration
	Inc     string
	IncSet  bool // σ = {Inc} for optimisation/decision; root is set at start
	Tasks   []*Subtree
	Threads []Thread

	tree      *Tree
	processed map[string]int // instrumentation: visits per node
	Steps     int
}

// NewConfig builds the initial configuration: one task holding the
// whole tree, all threads idle, σ = ⟨0⟩ or {ε}.
func NewConfig(t *Tree, kind Kind, target, threads int) *Config {
	c := &Config{
		Kind:      kind,
		Target:    target,
		Tasks:     []*Subtree{FullSubtree(t, "")},
		Threads:   make([]Thread, threads),
		tree:      t,
		processed: map[string]int{},
	}
	if kind != Enumeration {
		c.Inc, c.IncSet = "", true // {ε}: the root is the initial incumbent
	}
	return c
}

// h applies the objective, cut at Target for decision searches (the
// bounded order of Section 3.2).
func (c *Config) h(v string) int {
	x := c.tree.H[v]
	if c.Kind == Decision && x > c.Target {
		return c.Target
	}
	return x
}

// process is the →Ni node-processing step for the thread's current
// node: (accumulate) for enumeration, (strengthen)/(skip) otherwise.
func (c *Config) process(v string) {
	c.processed[v]++
	switch c.Kind {
	case Enumeration:
		c.Acc += c.h(v)
	default:
		if c.h(v) > c.h(c.Inc) {
			c.Inc = v
		}
	}
}

// Final reports whether the configuration is final: empty task queue,
// all threads idle.
func (c *Config) Final() bool {
	if len(c.Tasks) != 0 {
		return false
	}
	for _, th := range c.Threads {
		if th.Active {
			return false
		}
	}
	return true
}

// Result returns σ: the accumulator or the incumbent's objective.
func (c *Config) Result() int {
	if c.Kind == Enumeration {
		return c.Acc
	}
	return c.h(c.Inc)
}

// ProcessedCounts exposes the per-node visit instrumentation.
func (c *Config) ProcessedCounts() map[string]int { return c.processed }

// RuleName identifies a reduction rule of Figure 2.
type RuleName string

const (
	RuleSchedule     RuleName = "schedule"
	RuleStep         RuleName = "step" // (expand)/(backtrack)/(terminate) ∘ →Ni
	RulePrune        RuleName = "prune"
	RuleShortcircuit RuleName = "shortcircuit"
	RuleSpawn        RuleName = "spawn"
	RuleSpawnDepth   RuleName = "spawn-depth"
	RuleSpawnBudget  RuleName = "spawn-budget"
	RuleSpawnStack   RuleName = "spawn-stack"
)

// Params tunes the derived spawn rules.
type Params struct {
	DCutoff int
	KBudget int
}

// move is one applicable reduction at a specific thread.
type move struct {
	rule   RuleName
	thread int
	arg    string // spawn: the node to hive off
}

// applicable enumerates every applicable (rule, thread) instance.
func (c *Config) applicable(p Params, enabled map[RuleName]bool) []move {
	var ms []move
	on := func(r RuleName) bool { return enabled == nil || enabled[r] }
	for i := range c.Threads {
		th := &c.Threads[i]
		if !th.Active {
			if len(c.Tasks) > 0 && on(RuleSchedule) {
				ms = append(ms, move{RuleSchedule, i, ""})
			}
			continue
		}
		if on(RuleStep) {
			ms = append(ms, move{RuleStep, i, ""})
		}
		if c.Kind != Enumeration && on(RulePrune) {
			// u ▷ v with u = Inc: h(Inc) >= SubtreeMax(v), and the
			// subtree below v must be non-empty.
			if c.h(c.Inc) >= c.subtreeMaxIn(th.S, th.V) && c.strictSubtreeNonEmpty(th.S, th.V) {
				ms = append(ms, move{RulePrune, i, ""})
			}
		}
		if c.Kind == Decision && on(RuleShortcircuit) && c.h(c.Inc) >= c.Target {
			ms = append(ms, move{RuleShortcircuit, i, ""})
		}
		if on(RuleSpawn) {
			for _, u := range th.S.succ(c.tree, th.V) {
				ms = append(ms, move{RuleSpawn, i, u})
			}
		}
		if on(RuleSpawnDepth) && len(th.V) < p.DCutoff {
			if len(c.childrenIn(th.S, th.V)) > 0 {
				ms = append(ms, move{RuleSpawnDepth, i, ""})
			}
		}
		if on(RuleSpawnBudget) && th.K >= p.KBudget {
			if len(th.S.lowest(c.tree, th.V)) > 0 {
				ms = append(ms, move{RuleSpawnBudget, i, ""})
			}
		}
		if on(RuleSpawnStack) && len(c.Tasks) == 0 {
			if lo := th.S.lowest(c.tree, th.V); len(lo) > 0 {
				ms = append(ms, move{RuleSpawnStack, i, lo[0]})
			}
		}
	}
	return ms
}

// subtreeMaxIn is max h over the nodes of subtree(S, v), the dynamic
// (possibly already pruned) version of Tree.SubtreeMax. Pruning
// justified against the static bound remains sound; this dynamic
// variant is used to decide rule applicability in the driver.
func (c *Config) subtreeMaxIn(s *Subtree, v string) int {
	best := c.h(v)
	for u := range s.Nodes {
		if strings.HasPrefix(u, v) {
			if x := c.h(u); x > best {
				best = x
			}
		}
	}
	return best
}

func (c *Config) strictSubtreeNonEmpty(s *Subtree, v string) bool {
	for u := range s.Nodes {
		if u != v && strings.HasPrefix(u, v) {
			return true
		}
	}
	return false
}

func (c *Config) childrenIn(s *Subtree, v string) []string {
	var out []string
	for _, ch := range c.tree.Children[v] {
		if s.Nodes[ch] {
			out = append(out, ch)
		}
	}
	return out
}

// apply performs one reduction.
func (c *Config) apply(m move) {
	th := &c.Threads[m.thread]
	c.Steps++
	switch m.rule {
	case RuleSchedule:
		s := c.Tasks[0]
		c.Tasks = c.Tasks[1:]
		*th = Thread{Active: true, S: s, V: s.Root, K: 0}
		c.process(s.Root)
	case RuleStep:
		v2, ok := th.S.next(c.tree, th.V)
		if !ok {
			*th = Thread{} // (terminate), then (noop)
			return
		}
		if !strings.HasPrefix(v2, th.V) {
			th.K++ // (backtrack)
		}
		th.V = v2 // (expand) or (backtrack)
		c.process(v2)
	case RulePrune:
		for u := range th.S.Nodes {
			if u != th.V && strings.HasPrefix(u, th.V) {
				delete(th.S.Nodes, u)
			}
		}
	case RuleShortcircuit:
		c.Tasks = nil
		for i := range c.Threads {
			c.Threads[i] = Thread{}
		}
	case RuleSpawn:
		c.Tasks = append(c.Tasks, th.S.extract(m.arg))
	case RuleSpawnDepth:
		for _, ch := range c.childrenIn(th.S, th.V) {
			c.Tasks = append(c.Tasks, th.S.extract(ch))
		}
	case RuleSpawnBudget:
		for _, u := range th.S.lowest(c.tree, th.V) {
			c.Tasks = append(c.Tasks, th.S.extract(u))
		}
		th.K = 0
	case RuleSpawnStack:
		c.Tasks = append(c.Tasks, th.S.extract(m.arg))
	default:
		panic(fmt.Sprintf("semantics: unknown rule %q", m.rule))
	}
}

// Run drives the configuration with a seeded random scheduler until it
// is final, returning the number of reduction steps. enabled limits
// the rule set (nil = all rules). maxSteps guards against divergence;
// exceeding it panics, which the termination property test would
// surface.
func (c *Config) Run(seed int64, p Params, enabled map[RuleName]bool, maxSteps int) int {
	r := rand.New(rand.NewSource(seed))
	for !c.Final() {
		ms := c.applicable(p, enabled)
		if len(ms) == 0 {
			panic("semantics: stuck non-final configuration")
		}
		// Spawn instances can vastly outnumber traversal steps; pick
		// the rule class first, then an instance, so random schedules
		// reach every behaviour.
		byRule := map[RuleName][]move{}
		var rules []RuleName
		for _, m := range ms {
			if len(byRule[m.rule]) == 0 {
				rules = append(rules, m.rule)
			}
			byRule[m.rule] = append(byRule[m.rule], m)
		}
		sort.Slice(rules, func(i, j int) bool { return rules[i] < rules[j] })
		picks := byRule[rules[r.Intn(len(rules))]]
		c.apply(picks[r.Intn(len(picks))])
		if c.Steps > maxSteps {
			panic("semantics: step budget exceeded (termination violated?)")
		}
	}
	return c.Steps
}
