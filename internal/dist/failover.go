package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator failover (wire protocol v7). A deployment launched with
// WireOptions.Standby survives rank 0 dying mid-search:
//
//   - The hub continuously replicates its residual state — the peer
//     address table, the retained incumbent, the supervision roots it
//     has handed over (the rank-0 ledger's mirror), gather progress,
//     and the death ledger — to the lowest live worker rank, as
//     coalesced kHubDelta frames plus periodic full kHubSnap
//     snapshots. When the current standby dies, the next-lowest rank
//     is adopted with a fresh full snapshot.
//   - Every worker pre-binds a promotion listener at registration and
//     the table of those addresses is exchanged (kPeerAddr/kPeers,
//     the mesh's own mechanism, now spoken by standby stars too).
//   - On hub death each worker independently elects the lowest rank
//     not known dead — exactly the rank the hub was replicating to,
//     and on a mesh exactly the rank the termination wave re-elects
//     as token initiator. The candidate promotes itself (epoch 1) and
//     the rest re-dial its promotion listener, presenting a kRejoin
//     that carries their cumulative live-task contribution, from
//     which the promoted hub rebuilds the global live count.
//   - The epoch fences generations: a kRejoin for the wrong epoch is
//     refused, and because every stale frame rode a connection that
//     died with the old coordinator, the connection itself is the
//     fence for everything else. One takeover per deployment: if the
//     promoted coordinator dies too, the deployment ends the way a
//     non-standby one does.
//
// Loss windows, accepted and documented: a kHubDelta coalesced but
// not yet flushed when the hub dies (bounded by one flush quantum), a
// bound broadcast in flight during the takeover (pruning opportunity,
// never correctness), and the simultaneous death of the hub and the
// standby before a retarget snapshot lands.

// kHubDelta subtypes, carried in Want.
const (
	hubDeltaMirrorAdd = 1 // To = holder rank, Tasks = mirrored rank-0 hand-overs
	hubDeltaRetire    = 2 // Acks = retired hand-over ids
	hubDeltaIncumbent = 3 // Obj = objective, Blob = encoded incumbent node
	hubDeltaGather    = 4 // To = contributing rank, Seq = 1 when a payload is present, Blob = payload
)

// hubSnapEvery paces full snapshots: one every this many flush quanta
// (deltas keep the standby current in between; the snapshot bounds
// drift from any delta a dying connection swallowed).
const hubSnapEvery = 512

// MirrorEntry is one replicated supervision root: a task rank 0
// handed over (WireTask.ID packs origin 0) and the rank holding it.
// If the holder dies after a takeover, the promoted hub replays the
// task — the root of exactly the subtree whose supervision chain died
// with the coordinator.
type MirrorEntry struct {
	Holder int
	Task   WireTask
}

// GatherSlot is one replicated gather contribution (Blob may be nil:
// a dead rank's slot is contributed as nil so the terminal collective
// cannot block on it).
type GatherSlot struct {
	Rank int
	Blob []byte
}

// HubSnapshot is the coordinator's residual state: everything a
// standby needs to adopt the deployment. v2 (protocol v7) extends the
// v1 preview with the failover epoch, gather progress, and the
// supervision-root mirror, and is what kHubSnap frames carry.
type HubSnapshot struct {
	Epoch     uint64
	Spec      string
	Size      int
	PeerAddrs []string // rank-indexed; slot 0 empty
	Alive     []bool   // rank-indexed liveness, as last decided by the hub
	BestObj   int64    // retained incumbent objective (valid when HasBest)
	BestNode  []byte   // retained incumbent witness
	HasBest   bool
	Gather    []GatherSlot
	Mirror    []MirrorEntry
}

const hubSnapshotVersion = 2

// encodeHubSnapshot serialises a snapshot (the kHubSnap blob).
func encodeHubSnapshot(s *HubSnapshot) []byte {
	b := binary.AppendUvarint(nil, hubSnapshotVersion)
	b = binary.AppendUvarint(b, s.Epoch)
	b = binary.AppendUvarint(b, uint64(s.Size))
	b = binary.AppendUvarint(b, uint64(len(s.Spec)))
	b = append(b, s.Spec...)
	b = appendPeerTable(b, s.PeerAddrs)
	for _, a := range s.Alive {
		if a {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	if s.HasBest {
		b = append(b, 1)
		b = binary.AppendVarint(b, s.BestObj)
		b = binary.AppendUvarint(b, uint64(len(s.BestNode)))
		b = append(b, s.BestNode...)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Gather)))
	for _, g := range s.Gather {
		b = binary.AppendUvarint(b, uint64(g.Rank))
		if g.Blob != nil {
			b = append(b, 1)
			b = binary.AppendUvarint(b, uint64(len(g.Blob)))
			b = append(b, g.Blob...)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.Mirror)))
	for _, e := range s.Mirror {
		b = binary.AppendUvarint(b, uint64(e.Holder))
		b = appendTasks(b, []WireTask{e.Task})
	}
	return b
}

// DecodeHubSnapshot parses a snapshot blob.
func DecodeHubSnapshot(b []byte) (*HubSnapshot, error) {
	r := &frameReader{b: b}
	ver, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != hubSnapshotVersion {
		return nil, fmt.Errorf("dist: hub snapshot version %d, want %d", ver, hubSnapshotVersion)
	}
	s := &HubSnapshot{}
	if s.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	size, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if size > maxPeerTable {
		return nil, fmt.Errorf("dist: hub snapshot size %d", size)
	}
	s.Size = int(size)
	spec, err := r.bytes()
	if err != nil {
		return nil, err
	}
	s.Spec = string(spec)
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n != size {
		return nil, fmt.Errorf("dist: hub snapshot peer table has %d slots, want %d", n, size)
	}
	s.PeerAddrs = make([]string, n)
	for i := range s.PeerAddrs {
		a, err := r.bytes()
		if err != nil {
			return nil, err
		}
		s.PeerAddrs[i] = string(a)
	}
	s.Alive = make([]bool, size)
	for i := range s.Alive {
		v, err := r.byte()
		if err != nil {
			return nil, err
		}
		s.Alive[i] = v != 0
	}
	has, err := r.byte()
	if err != nil {
		return nil, err
	}
	if has != 0 {
		obj, err := r.varint()
		if err != nil {
			return nil, err
		}
		node, err := r.bytes()
		if err != nil {
			return nil, err
		}
		s.BestObj, s.BestNode, s.HasBest = obj, node, true
	}
	ng, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ng > size {
		return nil, fmt.Errorf("dist: hub snapshot with %d gather slots", ng)
	}
	for i := uint64(0); i < ng; i++ {
		rank, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		present, err := r.byte()
		if err != nil {
			return nil, err
		}
		g := GatherSlot{Rank: int(rank)}
		if present != 0 {
			if g.Blob, err = r.bytes(); err != nil {
				return nil, err
			}
		}
		s.Gather = append(s.Gather, g)
	}
	nm, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nm > maxStealBatch {
		return nil, fmt.Errorf("dist: hub snapshot with %d mirror entries", nm)
	}
	for i := uint64(0); i < nm; i++ {
		holder, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		ts, err := parseTasks(r)
		if err != nil {
			return nil, err
		}
		if len(ts) != 1 {
			return nil, fmt.Errorf("dist: hub snapshot mirror entry with %d tasks", len(ts))
		}
		s.Mirror = append(s.Mirror, MirrorEntry{Holder: int(holder), Task: ts[0]})
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("dist: %d trailing bytes in hub snapshot", len(r.b))
	}
	return s, nil
}

// hubMirror is the coordinator's transport-level copy of its own
// ledger roots: every task its locality handed over (origin-0 ids),
// keyed by hand-over id, with the rank currently holding it. The
// original hub maintains it only to replicate it; the promoted hub
// consults it to replay the roots whose holders die after the
// takeover — the one class of work the engine-level ledgers cannot
// resupervise, because their supervision chains rooted at the dead
// coordinator.
type hubMirror struct {
	mu sync.Mutex
	m  map[uint64]MirrorEntry
}

func newHubMirror() *hubMirror { return &hubMirror{m: make(map[uint64]MirrorEntry)} }

func (m *hubMirror) add(holder int, t WireTask) {
	m.mu.Lock()
	m.m[t.ID] = MirrorEntry{Holder: holder, Task: t}
	m.mu.Unlock()
}

// retire drops a completed hand-over (idempotent; acks can race a
// replay exactly like the engine ledgers' retires).
func (m *hubMirror) retire(id uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	delete(m.m, id)
	m.mu.Unlock()
}

// takeHolder removes and returns every entry held by rank.
func (m *hubMirror) takeHolder(holder int) []WireTask {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	var ts []WireTask
	for id, e := range m.m {
		if e.Holder == holder {
			ts = append(ts, e.Task)
			delete(m.m, id)
		}
	}
	m.mu.Unlock()
	return ts
}

// entries copies the mirror for a snapshot.
func (m *hubMirror) entries() []MirrorEntry {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	es := make([]MirrorEntry, 0, len(m.m))
	for _, e := range m.m {
		es = append(es, e)
	}
	m.mu.Unlock()
	return es
}

func (m *hubMirror) install(es []MirrorEntry) {
	m.mu.Lock()
	for _, e := range es {
		m.m[e.Task.ID] = e
	}
	m.mu.Unlock()
}

// hubRepl is the coordinator's replication queue: state deltas
// coalesce here and are drained to the current standby once per flush
// quantum, with a full snapshot every hubSnapEvery quanta (and
// immediately after a retarget).
type hubRepl struct {
	mu      sync.Mutex
	q       []*frame
	retires []uint64
	target  int
	ticks   int
	force   bool
}

func newHubRepl() *hubRepl { return &hubRepl{target: 1, force: true} }

func (r *hubRepl) targetRank() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// setTarget adopts a new standby rank; the next flush ships it a full
// snapshot so it starts from a consistent base.
func (r *hubRepl) setTarget(rank int) {
	r.mu.Lock()
	r.target = rank
	r.force = true
	r.mu.Unlock()
}

func (r *hubRepl) noteMirrorAdd(holder int, t WireTask) {
	r.mu.Lock()
	r.q = append(r.q, &frame{Kind: kHubDelta, Want: hubDeltaMirrorAdd, To: holder, Tasks: []WireTask{t}})
	r.mu.Unlock()
}

func (r *hubRepl) noteRetire(id uint64) {
	r.mu.Lock()
	r.retires = append(r.retires, id)
	r.mu.Unlock()
}

func (r *hubRepl) noteIncumbent(obj int64, node []byte) {
	r.mu.Lock()
	r.q = append(r.q, &frame{Kind: kHubDelta, Want: hubDeltaIncumbent, Obj: obj, Blob: node})
	r.mu.Unlock()
}

func (r *hubRepl) noteGather(rank int, blob []byte) {
	seq := uint64(0)
	if blob != nil {
		seq = 1
	}
	r.mu.Lock()
	r.q = append(r.q, &frame{Kind: kHubDelta, Want: hubDeltaGather, To: rank, Seq: seq, Blob: blob})
	r.mu.Unlock()
}

// flushTo drains the queue onto the standby's connection. A send
// error just leaves the rest for the retarget snapshot: the standby
// is dying, and workerDied will re-point the queue.
func (r *hubRepl) flushTo(cn *wconn, snap func() []byte) {
	if cn == nil || cn.dead.Load() {
		return
	}
	r.mu.Lock()
	fs := r.q
	r.q = nil
	retires := r.retires
	r.retires = nil
	r.ticks++
	snapDue := r.force || r.ticks >= hubSnapEvery
	if snapDue {
		r.ticks = 0
		r.force = false
	}
	r.mu.Unlock()
	for _, f := range fs {
		if cn.send(f) != nil {
			return
		}
	}
	for len(retires) > 0 {
		n := len(retires)
		if n > maxStealBatch {
			n = maxStealBatch
		}
		if cn.send(&frame{Kind: kHubDelta, Want: hubDeltaRetire, Acks: retires[:n]}) != nil {
			return
		}
		retires = retires[n:]
	}
	if snapDue {
		cn.send(&frame{Kind: kHubSnap, Blob: snap()})
	}
}

// standbyState is the worker-side store of replicated hub state: the
// last full snapshot, overlaid with every delta since. Only the rank
// the hub is currently replicating to accumulates anything; everyone
// else's store stays empty (and is never consulted — the candidate
// the survivors elect is the replicated rank).
type standbyState struct {
	mu      sync.Mutex
	have    bool
	dead    []int
	mirror  map[uint64]MirrorEntry
	gather  map[int][]byte
	hasBest bool
	bestObj int64
	bestNod []byte
}

func newStandbyState() *standbyState {
	return &standbyState{
		mirror: make(map[uint64]MirrorEntry),
		gather: make(map[int][]byte),
	}
}

// applySnap replaces the store with a full snapshot (deltas and
// snapshots ride the same ordered connection, so the snapshot already
// reflects every delta sent before it).
func (s *standbyState) applySnap(blob []byte) {
	snap, err := DecodeHubSnapshot(blob)
	if err != nil {
		return // a garbled snapshot is strictly worse than the last good one
	}
	s.mu.Lock()
	s.have = true
	s.dead = s.dead[:0]
	for r, a := range snap.Alive {
		if !a && r > 0 {
			s.dead = append(s.dead, r)
		}
	}
	s.mirror = make(map[uint64]MirrorEntry, len(snap.Mirror))
	for _, e := range snap.Mirror {
		s.mirror[e.Task.ID] = e
	}
	s.gather = make(map[int][]byte, len(snap.Gather))
	for _, g := range snap.Gather {
		s.gather[g.Rank] = g.Blob
	}
	s.hasBest, s.bestObj, s.bestNod = snap.HasBest, snap.BestObj, snap.BestNode
	s.mu.Unlock()
}

// applyDelta overlays one kHubDelta.
func (s *standbyState) applyDelta(f *frame) {
	s.mu.Lock()
	switch f.Want {
	case hubDeltaMirrorAdd:
		for _, t := range f.Tasks {
			s.mirror[t.ID] = MirrorEntry{Holder: f.To, Task: t}
		}
	case hubDeltaRetire:
		for _, id := range f.Acks {
			delete(s.mirror, id)
		}
	case hubDeltaIncumbent:
		if len(f.Blob) > 0 && (!s.hasBest || f.Obj > s.bestObj) {
			s.hasBest, s.bestObj, s.bestNod = true, f.Obj, f.Blob
		}
	case hubDeltaGather:
		if _, seen := s.gather[f.To]; !seen {
			var blob []byte
			if f.Seq == 1 {
				blob = f.Blob
			}
			s.gather[f.To] = blob
		}
	}
	s.mu.Unlock()
}

// hubStateView is a consolidated copy of the store, taken once at
// promotion time.
type hubStateView struct {
	dead    []int
	mirror  []MirrorEntry
	gather  map[int][]byte
	hasBest bool
	bestObj int64
	bestNod []byte
}

func (s *standbyState) view() hubStateView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := hubStateView{
		dead:    append([]int(nil), s.dead...),
		gather:  make(map[int][]byte, len(s.gather)),
		hasBest: s.hasBest,
		bestObj: s.bestObj,
		bestNod: s.bestNod,
	}
	for r, b := range s.gather {
		v.gather[r] = b
	}
	for _, e := range s.mirror {
		v.mirror = append(v.mirror, e)
	}
	return v
}

// failoverCandidate is the takeover election every survivor computes
// independently: the lowest worker rank not known dead — exactly the
// rank the hub replicated to, and (on a mesh) exactly the rank the
// termination wave re-elects as initiator. -1 when no one is left.
func failoverCandidate(size int, deaths *deathBox) int {
	for r := 1; r < size; r++ {
		if !deaths.isDead(r) {
			return r
		}
	}
	return -1
}

// ---- star takeover ----------------------------------------------------

// failover is the star worker's hub-loss hook. It reports true when
// the takeover protocol owns shutdown from here on (either this rank
// promoted itself or it re-joined the promoted hub); false sends the
// caller down the deployment-over path.
func (w *worker) failover() bool {
	if !w.standby || len(w.peerAddrs) == 0 {
		return false
	}
	select {
	case <-w.done:
		return false // post-termination disconnect: a normal shutdown
	default:
	}
	if !w.epoch.CompareAndSwap(0, 1) {
		return false // the promoted coordinator died too: one takeover per deployment
	}
	// No reply can arrive on the dead connection, and the engine must
	// learn rank 0 died (its ledgers replay every outstanding hand-over:
	// any ack relayed through the dying hub is gone).
	w.pending.failAll()
	w.deaths.announce(0)
	cand := failoverCandidate(w.size, w.deaths)
	if cand < 0 {
		return false
	}
	// Capture this rank's cumulative live-task contribution. cumSent
	// counts every delta that reached a wire; whatever is still
	// coalesced joins it here. Under the old connection's write lock no
	// send is mid-flight, so the sum is exact — the promoted hub
	// rebuilds liveAt[rank] from exactly this number.
	old := w.conn()
	old.wmu.Lock()
	rep := w.cumSent.Load() + w.delta.Swap(0)
	w.cumSent.Store(rep)
	old.wmu.Unlock()
	if cand == w.rank {
		return w.promote(rep)
	}
	return w.rejoin(cand, rep)
}

// promote turns this worker into the deployment's coordinator: a hub
// seeded from the replicated state, accepting kRejoin connections on
// the promotion listener bound at registration. The worker endpoint
// stays the engine's Transport and delegates to the hub.
func (w *worker) promote(rep int64) bool {
	hd := w.handler()
	if w.promoLn == nil || w.store == nil || hd == nil {
		return false
	}
	st := w.store.view()
	h := &hub{
		size:     w.size,
		self:     w.rank,
		epoch:    1,
		standby:  true,
		conns:    make([]*wconn, w.size),
		liveAt:   make([]atomic.Int64, w.size),
		opts:     w.opts,
		started:  make(chan struct{}),
		done:     w.done,
		doneOnce: &w.doneOnce,
		deaths:   w.deaths,
		blobs:    make([][]byte, w.size),
		contrib:  make([]bool, w.size),
		gotAll:   make(chan struct{}),
		peerPrio: newPeerPrios(w.size),
		mirror:   newHubMirror(),
		ln:       w.promoLn,
	}
	h.pbStamp.Store(w.pbStamp.Load())
	h.pbSeen.Store(w.pbSeen.Load())
	h.h.Store(hd)
	h.stOnce.Do(func() { close(h.started) })
	h.mirror.install(st.mirror)
	if st.hasBest {
		h.inc.keep(st.bestObj, st.bestNod)
		raiseMax(&h.pbStamp, st.bestObj)
	}
	// Hold the count above zero until every survivor's contribution is
	// re-installed: a partial sum crossing zero is not termination.
	h.live.Add(1)
	w.promo.Store(h)
	w.stopFlush() // the hub's flusher takes over; pingLoop exits with it
	w.ackMu.Lock()
	buf := w.ackBuf
	w.ackBuf = nil
	w.ackMu.Unlock()
	if len(buf) > 0 {
		h.ackMu.Lock()
		h.ackBuf = append(h.ackBuf, buf...)
		h.ackMu.Unlock()
	}
	h.addAt(h.self, rep)
	// Rank 0 will never contribute to the gather; neither will anyone
	// already dead. Contributions the old hub had collected survive via
	// the replica.
	h.contribute(0, nil)
	dead := make(map[int]bool)
	for r := 1; r < w.size; r++ {
		if r != w.rank && w.deaths.isDead(r) {
			dead[r] = true
		}
	}
	for _, r := range st.dead {
		if r > 0 && r != w.rank {
			dead[r] = true
		}
	}
	for r := range dead {
		h.contribute(r, nil)
	}
	for rank, blob := range st.gather {
		if rank != 0 && rank != w.rank {
			h.contribute(rank, blob)
		}
	}
	go h.adoptDeployment(dead)
	go h.livenessLoop()
	go h.ackFlushLoop()
	return true
}

// adoptDeployment is the promoted hub's registration window: every
// surviving worker re-dials the promotion listener and presents a
// kRejoin carrying its cumulative contribution. Ranks that never make
// it back within the liveness window are declared dead — their
// mirrored supervision roots replay here, like any other death.
func (h *hub) adoptDeployment(dead map[int]bool) {
	expected := make(map[int]bool)
	for r := 1; r < h.size; r++ {
		if r != h.self && !dead[r] {
			expected[r] = true
		}
	}
	if h.opts.LinkGrace > 0 {
		h.sessions = newSessRegistry()
	}
	deadline := time.Now().Add(h.opts.LivenessTimeout)
	for len(expected) > 0 && !h.closed.Load() {
		if d, ok := h.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		c, err := h.ln.Accept()
		if err != nil {
			break // window over (deadline) or hub closed
		}
		cn := newWconn(c, &h.ctr)
		cn.pb = &h.pbStamp
		cn.ps = selfPrioFn(&h.h)
		cn.psFrom = h.self
		c.SetReadDeadline(deadline)
		var rj frame
		if err := cn.recv(&rj); err != nil || rj.Kind != kRejoin || uint64(rj.Want) != h.epoch ||
			rj.From <= 0 || rj.From >= h.size || !expected[rj.From] || h.conns[rj.From] != nil {
			cn.close()
			continue
		}
		c.SetReadDeadline(time.Time{})
		if h.sessions != nil && rj.Seq != 0 {
			// The rejoining worker minted a fresh session for the
			// promoted link and carried its id in the kRejoin.
			cn.sess = newSession(rj.Seq, h.opts.LinkGrace)
			h.sessions.add(rj.Seq, cn)
		}
		cn.attachFault(h.opts.Fault, h.self, rj.From)
		h.conns[rj.From] = cn
		h.addAt(rj.From, rj.Obj)
		if rj.Delta != 0 {
			h.addAt(rj.From, rj.Delta)
		}
		if rj.HasPB {
			h.meldBound(rj.From, rj.PB)
			// A bound raised during the takeover blackout has no
			// explicit broadcast in flight anymore: relay it like one.
			// Ranks still rejoining pick it up from their welcome's
			// piggyback instead (their conns are nil here).
			h.fanOut(&frame{Kind: kBound, From: rj.From, Obj: rj.PB}, rj.From)
		}
		if rj.HasPS {
			notePeerPrio(h.peerPrio, rj.From, rj.PS)
		}
		cn.send(&frame{Kind: kWelcome, From: h.self, To: rj.From, Want: h.size})
		go h.serve(rj.From)
		delete(expected, rj.From)
	}
	if d, ok := h.ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Time{})
	}
	if h.sessions != nil {
		// The rejoin window is over; the promotion listener now serves
		// session resumes for the links it just accepted.
		go acceptResumes(h.ln, h.sessions, &h.closed)
	}
	for r := range expected {
		h.deadNoConn(r)
	}
	for r := range dead {
		h.replayMirror(r)
	}
	// Release the rejoin guard; if the surviving contributions already
	// sum to zero, the search ended while the hub was away.
	if h.live.Add(-1) == 0 {
		h.terminate()
	}
}

// deadNoConn handles a rank that never re-joined the promoted hub:
// the full death protocol, minus the connection there is to mourn.
func (h *hub) deadNoConn(rank int) {
	h.deaths.announce(rank)
	h.fanOut(&frame{Kind: kDeath, From: h.self, Want: rank}, rank)
	h.contribute(rank, nil)
	h.replayMirror(rank)
}

// replayMirror re-enqueues the dead holder's replicated rank-0
// hand-overs as local work. Re-execution is replay-safe (the engine's
// death-replay invariant); a late ack for a replayed id is absorbed by
// the mirror's idempotent retire.
func (h *hub) replayMirror(holder int) {
	ts := h.mirror.takeHolder(holder)
	if len(ts) == 0 {
		return
	}
	hd := h.handler()
	if hd == nil {
		return
	}
	for _, t := range ts {
		hd.OnTask(t)
	}
}

// rejoin re-attaches a surviving worker to the promoted hub: dial the
// candidate's promotion listener (pre-bound at registration, so the
// dial succeeds even before the candidate finishes promoting), present
// the kRejoin, swap the connection, restart the read loop.
func (w *worker) rejoin(cand int, rep int64) bool {
	addr := w.peerAddrs[cand]
	if addr == "" {
		return false
	}
	c, err := dialRetry(addr)
	if err != nil {
		return false
	}
	cn := newWconn(c, &w.ctr)
	cn.pending = &w.delta
	cn.cum = &w.cumSent
	cn.pb = &w.pbStamp
	cn.ps = selfPrioFn(&w.h)
	cn.psFrom = w.rank
	rj := &frame{Kind: kRejoin, From: w.rank, Want: int(w.epoch.Load()), Obj: rep}
	if w.opts.LinkGrace > 0 {
		// Mint a fresh resumable session for the promoted link — the old
		// hub session died with the old coordinator — and carry its id
		// in the kRejoin for the promoted hub to register.
		s := newSession(mintSessionID(w.rank), w.opts.LinkGrace)
		s.rank = w.rank
		s.redial = sessionRedialer(addr)
		cn.sess = s
		rj.Seq = s.id
	}
	cn.attachFault(w.opts.Fault, w.rank, cand)
	if err := cn.send(rj); err != nil {
		cn.close()
		return false
	}
	c.SetReadDeadline(time.Now().Add(dialTimeout))
	var welcome frame
	if err := cn.recv(&welcome); err != nil || welcome.Kind != kWelcome {
		cn.close()
		return false
	}
	c.SetReadDeadline(time.Time{})
	// The welcome piggybacks the promoted hub's bound stamp like any
	// other frame; received outside the read loop, it must be melded
	// here or news learned during the blackout would be dropped (the
	// sender has already marked it carried by this connection).
	if welcome.HasPB {
		w.meldBound(welcome.From, welcome.PB)
	}
	w.cn.Store(cn)
	go w.readLoop(cn)
	return true
}
