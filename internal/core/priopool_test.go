package core

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPrioPoolOrdersByPriority(t *testing.T) {
	p := NewPrioPool[string]()
	p.PushPrio(Task[string]{Node: "low"}, 1)
	p.PushPrio(Task[string]{Node: "high"}, 10)
	p.PushPrio(Task[string]{Node: "mid"}, 5)
	for _, want := range []string{"high", "mid", "low"} {
		got, ok := p.PopPrio()
		if !ok || got.Node != want {
			t.Fatalf("PopPrio = %q ok=%v, want %q", got.Node, ok, want)
		}
	}
	if _, ok := p.PopPrio(); ok {
		t.Fatal("PopPrio on empty pool reported a task")
	}
}

// Equal priorities must leave in insertion order: the heuristic spawn
// order among equally promising tasks is search knowledge, and a heap
// without the tiebreak would scramble it.
func TestPrioPoolFIFOWithinPriority(t *testing.T) {
	p := NewPrioPool[int]()
	const n = 100
	// Two interleaved priority classes, each pushed in ascending order.
	for i := 0; i < n; i++ {
		p.PushPrio(Task[int]{Node: i}, 7)
		p.PushPrio(Task[int]{Node: n + i}, 3)
	}
	for class, base := range []int{0, n} {
		for i := 0; i < n; i++ {
			got, ok := p.PopPrio()
			if !ok {
				t.Fatalf("pool empty at class %d item %d", class, i)
			}
			if got.Node != base+i {
				t.Fatalf("class %d item %d: got node %d, want %d (FIFO violated)", class, i, got.Node, base+i)
			}
		}
	}
}

func TestPrioPoolSize(t *testing.T) {
	p := NewPrioPool[int]()
	if p.Size() != 0 {
		t.Fatalf("empty pool size %d", p.Size())
	}
	for i := 0; i < 5; i++ {
		p.PushPrio(Task[int]{Node: i}, int64(i))
	}
	if p.Size() != 5 {
		t.Fatalf("size %d, want 5", p.Size())
	}
	p.PopPrio()
	if p.Size() != 4 {
		t.Fatalf("size %d after pop, want 4", p.Size())
	}
}

// Concurrent pushes and pops must neither lose nor duplicate tasks
// (the pool backs the best-first coordination's shared frontier).
func TestPrioPoolConcurrentPushPop(t *testing.T) {
	p := NewPrioPool[int]()
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pr)))
			for i := 0; i < perProducer; i++ {
				p.PushPrio(Task[int]{Node: pr*perProducer + i}, rng.Int63n(5))
			}
		}(pr)
	}
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				t_, ok := p.PopPrio()
				if !ok {
					select {
					case <-done:
						return
					default:
						continue
					}
				}
				mu.Lock()
				seen[t_.Node] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	// Drain what the consumers left behind after done closed.
	for {
		t_, ok := p.PopPrio()
		if !ok {
			break
		}
		seen[t_.Node] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("task %d lost", i)
		}
	}
}
