package core

import (
	"fmt"
	"testing"
	"testing/quick"
)

var allCoords = []Coordination{Sequential, DepthBounded, StackStealing, Budget}

// parallel configs exercised across the matrix tests: plain, multiple
// localities, chunked stealing, tiny budget, deep cutoff, deque pool.
func testConfigs() []Config {
	return []Config{
		{Workers: 4},
		{Workers: 8, Localities: 3},
		{Workers: 4, Chunked: true},
		{Workers: 4, Budget: 4},
		{Workers: 4, DCutoff: 3},
		{Workers: 4, Pool: DequeKind},
		{Workers: 3, Localities: 2, DCutoff: 2, Budget: 16, Chunked: true},
	}
}

func treesUnderTest() map[string]*testTree {
	return map[string]*testTree{
		"rand1":  genTree(1, 4, 9),
		"rand2":  genTree(2, 5, 8),
		"rand3":  genTree(42, 3, 12),
		"chain":  chainTree(200),
		"wide":   wideTree(500),
		"single": chainTree(1),
	}
}

func TestEnumAllSkeletonsCountNodes(t *testing.T) {
	for name, tree := range treesUnderTest() {
		count := EnumProblem[*testTree, testNode, int64]{
			Gen:       testGen,
			Objective: func(*testTree, testNode) int64 { return 1 },
			Monoid:    SumInt64{},
		}
		for _, coord := range allCoords {
			for ci, cfg := range testConfigs() {
				res := Enum(coord, tree, testNode{}, count, cfg)
				if res.Value != int64(tree.size) {
					t.Errorf("%s/%v/cfg%d: count = %d, want %d", name, coord, ci, res.Value, tree.size)
				}
				if res.Stats.Nodes != int64(tree.size) {
					t.Errorf("%s/%v/cfg%d: visited %d nodes, want exactly %d", name, coord, ci, res.Stats.Nodes, tree.size)
				}
				if coord == Sequential {
					break // configs are irrelevant sequentially
				}
			}
		}
	}
}

func TestEnumAllSkeletonsSumValues(t *testing.T) {
	for name, tree := range treesUnderTest() {
		want := tree.sum()
		for _, coord := range allCoords {
			res := Enum(coord, tree, testNode{}, tree.enumProblem(), Config{Workers: 6, Localities: 2})
			if res.Value != want {
				t.Errorf("%s/%v: sum = %d, want %d", name, coord, res.Value, want)
			}
		}
	}
}

func TestEnumMaxMonoid(t *testing.T) {
	tree := genTree(7, 4, 9)
	p := EnumProblem[*testTree, testNode, int64]{
		Gen:       testGen,
		Objective: func(tt *testTree, n testNode) int64 { return tt.value[n.id] },
		Monoid:    MaxInt64{},
	}
	want := tree.max()
	for _, coord := range allCoords {
		res := Enum(coord, tree, testNode{}, p, Config{Workers: 4})
		if res.Value != want {
			t.Errorf("%v: max = %d, want %d", coord, res.Value, want)
		}
	}
}

func TestEnumDepthProfile(t *testing.T) {
	tree := genTree(11, 4, 6)
	const depths = 8
	p := EnumProblem[*testTree, testNode, []int64]{
		Gen: testGen,
		Objective: func(tt *testTree, n testNode) []int64 {
			v := make([]int64, depths)
			v[n.depth]++
			return v
		},
		Monoid: SumVec{Len: depths},
	}
	want := Enum(Sequential, tree, testNode{}, p, Config{})
	for _, coord := range []Coordination{DepthBounded, StackStealing, Budget} {
		res := Enum(coord, tree, testNode{}, p, Config{Workers: 5})
		for d := 0; d < depths; d++ {
			if res.Value[d] != want.Value[d] {
				t.Errorf("%v: depth %d count %d, want %d", coord, d, res.Value[d], want.Value[d])
			}
		}
	}
}

func TestOptAllSkeletonsFindMax(t *testing.T) {
	for name, tree := range treesUnderTest() {
		want := tree.max()
		for _, withBound := range []bool{false, true} {
			p := tree.optProblem(withBound)
			for _, coord := range allCoords {
				for ci, cfg := range testConfigs() {
					res := Opt(coord, tree, testNode{}, p, cfg)
					if !res.Found {
						t.Fatalf("%s/%v/cfg%d(bound=%v): nothing found", name, coord, ci, withBound)
					}
					if res.Objective != want {
						t.Errorf("%s/%v/cfg%d(bound=%v): max = %d, want %d", name, coord, ci, withBound, res.Objective, want)
					}
					if got := tree.value[res.Best.id]; got != want {
						t.Errorf("%s/%v/cfg%d: witness %q has value %d, want %d", name, coord, ci, res.Best.id, got, want)
					}
					if coord == Sequential {
						break
					}
				}
			}
		}
	}
}

func TestOptPruningVisitsFewerNodes(t *testing.T) {
	tree := genTree(3, 5, 10)
	noBound := Opt(Sequential, tree, testNode{}, tree.optProblem(false), Config{})
	withBound := Opt(Sequential, tree, testNode{}, tree.optProblem(true), Config{})
	if withBound.Objective != noBound.Objective {
		t.Fatalf("pruning changed the answer: %d vs %d", withBound.Objective, noBound.Objective)
	}
	if withBound.Stats.Nodes > noBound.Stats.Nodes {
		t.Errorf("pruned search visited more nodes (%d) than unpruned (%d)",
			withBound.Stats.Nodes, noBound.Stats.Nodes)
	}
	if withBound.Stats.Prunes == 0 {
		t.Error("bound never pruned anything on a random tree")
	}
}

func TestDecisionAllSkeletonsSatisfiable(t *testing.T) {
	for name, tree := range treesUnderTest() {
		target := tree.max() // always achievable
		for _, withBound := range []bool{false, true} {
			p := tree.decisionProblem(target, withBound)
			for _, coord := range allCoords {
				res := Decide(coord, tree, testNode{}, p, Config{Workers: 6, Localities: 2})
				if !res.Found {
					t.Errorf("%s/%v(bound=%v): target %d not found", name, coord, withBound, target)
					continue
				}
				if res.Objective < target {
					t.Errorf("%s/%v: witness objective %d below target %d", name, coord, res.Objective, target)
				}
				if tree.value[res.Witness.id] < target {
					t.Errorf("%s/%v: witness %q does not reach target", name, coord, res.Witness.id)
				}
			}
		}
	}
}

func TestDecisionAllSkeletonsUnsatisfiable(t *testing.T) {
	tree := genTree(5, 4, 9)
	target := tree.max() + 1
	for _, withBound := range []bool{false, true} {
		p := tree.decisionProblem(target, withBound)
		for _, coord := range allCoords {
			res := Decide(coord, tree, testNode{}, p, Config{Workers: 4})
			if res.Found {
				t.Errorf("%v(bound=%v): found impossible target", coord, withBound)
			}
			if !withBound && res.Stats.Nodes != int64(tree.size) {
				t.Errorf("%v: unsat proof visited %d nodes, want %d (whole tree)",
					coord, res.Stats.Nodes, tree.size)
			}
		}
	}
}

func TestDecisionShortCircuitSavesWork(t *testing.T) {
	// A wide tree whose first child already satisfies the target:
	// sequential search must stop almost immediately.
	tree := wideTree(10_000)
	first := tree.children[""][0]
	tree.value[first] = 5000
	p := tree.decisionProblem(5000, false)
	res := Decide(Sequential, tree, testNode{}, p, Config{})
	if !res.Found {
		t.Fatal("target not found")
	}
	if res.Stats.Nodes > 10 {
		t.Errorf("short-circuit visited %d nodes, want <= 10", res.Stats.Nodes)
	}
}

func TestPruneLevelCorrectAcrossSkeletons(t *testing.T) {
	for _, seed := range []int64{41, 43, 47} {
		tree := genTree(seed, 5, 9)
		tree.sortChildrenByBound() // precondition: non-increasing bounds
		want := tree.max()
		p := tree.optProblem(true)
		p.PruneLevel = true
		for _, coord := range allCoords {
			res := Opt(coord, tree, testNode{}, p, Config{Workers: 6, Localities: 2, Budget: 16, DCutoff: 2})
			if res.Objective != want {
				t.Errorf("seed %d %v: max %d, want %d", seed, coord, res.Objective, want)
			}
		}
		res := BestFirstOpt(tree, testNode{}, p, Config{Workers: 4, Budget: 8})
		if res.Objective != want {
			t.Errorf("seed %d bestfirst: max %d, want %d", seed, res.Objective, want)
		}
	}
}

func TestPruneLevelVisitsFewerNodes(t *testing.T) {
	tree := genTree(53, 5, 10)
	tree.sortChildrenByBound()
	p := tree.optProblem(true)
	child := Opt(Sequential, tree, testNode{}, p, Config{})
	p.PruneLevel = true
	level := Opt(Sequential, tree, testNode{}, p, Config{})
	if level.Objective != child.Objective {
		t.Fatalf("level pruning changed the answer: %d vs %d", level.Objective, child.Objective)
	}
	if level.Stats.Nodes > child.Stats.Nodes {
		t.Errorf("level pruning visited more nodes: %d vs %d", level.Stats.Nodes, child.Stats.Nodes)
	}
}

func TestPruneLevelDecision(t *testing.T) {
	tree := genTree(59, 4, 9)
	tree.sortChildrenByBound()
	for _, target := range []int64{tree.max(), tree.max() + 1} {
		p := tree.decisionProblem(target, true)
		p.PruneLevel = true
		wantFound := target <= tree.max()
		for _, coord := range allCoords {
			res := Decide(coord, tree, testNode{}, p, Config{Workers: 4})
			if res.Found != wantFound {
				t.Errorf("%v target %d: found=%v, want %v", coord, target, res.Found, wantFound)
			}
		}
	}
}

func TestOptStatsSpawnsAndSteals(t *testing.T) {
	tree := genTree(9, 5, 10)
	res := Opt(DepthBounded, tree, testNode{}, tree.optProblem(false), Config{Workers: 4, DCutoff: 2})
	if res.Stats.Spawns == 0 {
		t.Error("depth-bounded run recorded no spawns")
	}
	if res.Stats.Workers != 4 {
		t.Errorf("Workers = %d", res.Stats.Workers)
	}
	if res.Stats.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestBudgetSpawnTriggers(t *testing.T) {
	tree := genTree(13, 4, 10)
	res := Enum(Budget, tree, testNode{}, tree.enumProblem(), Config{Workers: 4, Budget: 2})
	if res.Stats.Spawns == 0 {
		t.Error("tiny budget produced no spawns")
	}
	if res.Value != tree.sum() {
		t.Errorf("budget spawning corrupted sum: %d != %d", res.Value, tree.sum())
	}
}

func TestStackStealChunkedVsSingle(t *testing.T) {
	tree := genTree(17, 5, 11)
	want := tree.sum()
	for _, chunked := range []bool{false, true} {
		res := Enum(StackStealing, tree, testNode{}, tree.enumProblem(), Config{Workers: 8, Chunked: chunked})
		if res.Value != want {
			t.Errorf("chunked=%v: sum %d, want %d", chunked, res.Value, want)
		}
	}
}

func TestRootOnlyTreeAllSkeletons(t *testing.T) {
	tree := chainTree(1)
	for _, coord := range allCoords {
		res := Enum(coord, tree, testNode{}, tree.enumProblem(), Config{Workers: 4})
		if res.Stats.Nodes != 1 {
			t.Errorf("%v: visited %d nodes on single-node tree", coord, res.Stats.Nodes)
		}
	}
}

func TestPrunedRootOpt(t *testing.T) {
	// Root objective equals subtree max: after visiting the root the
	// bound check prunes the entire tree immediately.
	tree := genTree(21, 4, 8)
	rootMax := tree.subtreeMax("")
	tree.value[""] = rootMax
	p := tree.optProblem(true)
	for _, coord := range allCoords {
		res := Opt(coord, tree, testNode{}, p, Config{Workers: 4})
		if res.Objective != rootMax {
			t.Errorf("%v: objective %d, want %d", coord, res.Objective, rootMax)
		}
		if res.Stats.Nodes != 1 {
			t.Errorf("%v: visited %d nodes, want 1 (root prunes everything)", coord, res.Stats.Nodes)
		}
	}
}

func TestManyLocalitiesMoreThanWorkersClamped(t *testing.T) {
	tree := genTree(23, 4, 8)
	res := Enum(DepthBounded, tree, testNode{}, tree.enumProblem(), Config{Workers: 2, Localities: 16})
	if res.Value != tree.sum() {
		t.Errorf("sum = %d, want %d", res.Value, tree.sum())
	}
}

func TestBoundLatencyStillCorrect(t *testing.T) {
	tree := genTree(29, 5, 9)
	want := tree.max()
	cfg := Config{Workers: 6, Localities: 3, BoundLatency: 200_000} // 200µs
	for _, coord := range []Coordination{DepthBounded, StackStealing, Budget} {
		res := Opt(coord, tree, testNode{}, tree.optProblem(true), cfg)
		if res.Objective != want {
			t.Errorf("%v with bound latency: %d, want %d", coord, res.Objective, want)
		}
	}
}

func TestStealLatencyStillCorrect(t *testing.T) {
	tree := genTree(31, 4, 8)
	cfg := Config{Workers: 4, Localities: 2, StealLatency: 50_000} // 50µs
	res := Enum(DepthBounded, tree, testNode{}, tree.enumProblem(), cfg)
	if res.Value != tree.sum() {
		t.Errorf("sum = %d, want %d", res.Value, tree.sum())
	}
}

func TestCoordinationString(t *testing.T) {
	names := map[Coordination]string{
		Sequential: "seq", DepthBounded: "depthbounded",
		StackStealing: "stacksteal", Budget: "budget",
		Coordination(99): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

// Determinism of the sequential skeleton: identical runs visit the same
// number of nodes and return the same witness.
func TestSequentialDeterministic(t *testing.T) {
	tree := genTree(37, 5, 10)
	p := tree.optProblem(true)
	a := Opt(Sequential, tree, testNode{}, p, Config{})
	b := Opt(Sequential, tree, testNode{}, p, Config{})
	if a.Stats.Nodes != b.Stats.Nodes || a.Best.id != b.Best.id {
		t.Errorf("sequential search not deterministic: %d/%q vs %d/%q",
			a.Stats.Nodes, a.Best.id, b.Stats.Nodes, b.Best.id)
	}
}

// Property: for RANDOM configurations (workers, localities, cutoffs,
// budgets, pool kinds, chunking), every coordination enumerates every
// node exactly once. This is the engine-level Theorem 3.1 sweep.
func TestQuickRandomConfigs(t *testing.T) {
	f := func(treeSeed int64, workers, locs, dcut uint8, budget uint16, chunked, deque bool) bool {
		tree := genTree(200+treeSeed%50, 4, 8)
		cfg := Config{
			Workers:    1 + int(workers%10),
			Localities: 1 + int(locs%4),
			DCutoff:    1 + int(dcut%5),
			Budget:     1 + int64(budget%2000),
			Chunked:    chunked,
			Seed:       treeSeed,
		}
		if deque {
			cfg.Pool = DequeKind
		}
		for _, coord := range []Coordination{DepthBounded, StackStealing, Budget} {
			res := Enum(coord, tree, testNode{}, tree.enumProblem(), cfg)
			if res.Value != tree.sum() || res.Stats.Nodes != int64(tree.size) {
				t.Logf("%v cfg %+v: sum %d (want %d), nodes %d (want %d)",
					coord, cfg, res.Value, tree.sum(), res.Stats.Nodes, tree.size)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Repeated parallel runs across a matrix of seeds: node-visit totals for
// enumeration must be exactly the tree size every time (each node
// processed exactly once, Theorem 3.1's invariant).
func TestParallelEnumEveryNodeOnce(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		tree := genTree(seed, 4, 9)
		for _, coord := range []Coordination{DepthBounded, StackStealing, Budget} {
			t.Run(fmt.Sprintf("%v/seed%d", coord, seed), func(t *testing.T) {
				res := Enum(coord, tree, testNode{}, tree.enumProblem(), Config{Workers: 8, Localities: 2, Budget: 8, DCutoff: 2})
				if res.Stats.Nodes != int64(tree.size) {
					t.Errorf("visited %d, want %d", res.Stats.Nodes, tree.size)
				}
			})
		}
	}
}
