package graph

import "math/rand"

// Random returns an Erdős–Rényi G(n, p) graph, deterministic for a seed.
func Random(n int, p float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PlantedClique returns a G(n, p) graph with a clique of size k planted
// on k random vertices. Returns the graph and the planted vertices.
// This is the stand-in for the brock-family DIMACS instances (random
// graphs with hidden cliques) and the finite-geometry k-clique instance.
func PlantedClique(n int, p float64, k int, seed int64) (*Graph, []int) {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	perm := r.Perm(n)
	planted := perm[:k]
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(planted[i], planted[j])
		}
	}
	out := make([]int, k)
	copy(out, planted)
	return g, out
}

// Banded returns a graph whose edge probability varies smoothly with the
// vertex-index distance, producing the wide degree spread of the
// p_hat DIMACS family: edges between close indices appear with pHigh,
// distant ones with pLow.
func Banded(n int, pLow, pHigh float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := float64(v-u) / float64(n-1)
			p := pHigh - (pHigh-pLow)*d
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Kneser returns the Kneser graph K(n, k): vertices are the k-element
// subsets of {0..n-1}, adjacent iff disjoint. Cliques in K(n, k) are
// families of pairwise-disjoint k-sets, so the maximum clique size is
// exactly ⌊n/k⌋ — a combinatorial decision instance with a known
// answer, standing in for the finite-geometry spread problems
// (spreads are partitions into pairwise-disjoint subspaces) that the
// paper's Figure 4 instance comes from. Requires n <= 62 and a
// subset count that fits in memory.
func Kneser(n, k int) *Graph {
	var subsets []uint64
	var build func(start int, chosen int, mask uint64)
	build = func(start, chosen int, mask uint64) {
		if chosen == k {
			subsets = append(subsets, mask)
			return
		}
		for i := start; i <= n-(k-chosen); i++ {
			build(i+1, chosen+1, mask|1<<uint(i))
		}
	}
	build(0, 0, 0)
	g := New(len(subsets))
	for i := range subsets {
		for j := i + 1; j < len(subsets); j++ {
			if subsets[i]&subsets[j] == 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// KneserCliqueNumber returns the maximum clique size of K(n, k),
// which is the number of pairwise-disjoint k-subsets of an n-set.
func KneserCliqueNumber(n, k int) int { return n / k }

// Partitioned returns an n-vertex graph split into blocks of size
// blockSize with intra-block probability pIn and inter-block pOut,
// the structure class of the san DIMACS family (near-regular graphs
// engineered to hide their maximum cliques).
func Partitioned(n, blockSize int, pIn, pOut float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/blockSize == v/blockSize {
				p = pIn
			}
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
