package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"yewpar/internal/dist"
)

// This file hosts the multi-process skeleton entry points. Each OS
// process is one locality: it runs cfg.Workers workers over its own
// workpool, steals across the transport when idle, broadcasts
// incumbent bounds, and at the end contributes its local result and
// metrics to a gather that the coordinator (rank 0) reconciles. The
// problem definition (space, root, objective, bounds) must be
// constructed identically in every process — deployments are expected
// to launch the same binary with the same arguments, which the
// transport's spec handshake enforces.

// distShare is one locality's contribution to the final gather.
type distShare struct {
	Obj   int64  // best local objective (optimisation/decision)
	Has   bool   // whether Node is meaningful
	Node  []byte // codec-encoded best node or witness
	Value []byte // gob-encoded monoid value (enumeration)
	Stats Stats
}

func encodeShare(s distShare) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		panic(fmt.Sprintf("core: encoding gather share: %v", err))
	}
	return buf.Bytes()
}

func decodeShare(b []byte) (distShare, error) {
	var s distShare
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s)
	return s, err
}

// gatherShares runs the terminal collective: every locality
// contributes its share, and rank 0 — or, after a coordinator
// failover, the promoted rank — gets everyone's back, decoded, with
// the surviving localities' Stats merged into agg. Other callers get
// (nil, nil). A dead locality's slot is nil — its live subtrees were
// replayed by the survivors, so its missing share costs only its
// metrics (and, for enumeration, its partial value, which is why
// DistEnum refuses deaths).
func gatherShares(tr dist.Transport, share distShare, agg *Stats) ([]*distShare, error) {
	blobs, err := tr.Gather(encodeShare(share))
	if err != nil {
		return nil, fmt.Errorf("core: gathering results: %w", err)
	}
	if tr.Rank() != 0 && !dist.Promoted(tr) {
		return nil, nil
	}
	shares := make([]*distShare, len(blobs))
	for rank, blob := range blobs {
		if blob == nil {
			continue // died before contributing; replay already covered its work
		}
		s, err := decodeShare(blob)
		if err != nil {
			return nil, fmt.Errorf("core: decoding locality %d share: %w", rank, err)
		}
		agg.merge(s.Stats)
		shares[rank] = &s
	}
	return shares, nil
}

// failurePolicy turns the observed death count into the Dist call's
// error, honouring Config.MaxFailures (negative = unlimited).
func failurePolicy(cfg Config, deaths int64) error {
	if deaths == 0 || cfg.MaxFailures < 0 || deaths <= int64(cfg.MaxFailures) {
		return nil
	}
	return fmt.Errorf("core: %d localities died mid-search, exceeding the failure budget of %d (result repaired by replay as far as the survivors' ledgers reach)", deaths, cfg.MaxFailures)
}

// bestRetained consults the transport's incumbent retention (rank 0
// only): the best (obj, node) pair any locality published before
// dying, decoded through the deployment codec.
func bestRetained[N any](tr dist.Transport, codec Codec[N]) (N, int64, bool) {
	var zero N
	store, ok := tr.(dist.IncumbentStore)
	if !ok {
		return zero, 0, false
	}
	obj, blob, ok := store.BestKnown()
	if !ok {
		return zero, 0, false
	}
	n, err := codec.Decode(blob)
	if err != nil {
		return zero, 0, false
	}
	return n, obj, true
}

// distCoordination validates that a coordination is available across
// processes. Only Sequential is excluded (single-worker by
// definition): the pool-based coordinations distribute through
// transport steals, and Stack-Stealing distributes through on-demand
// wire splits (kSplit) of live generator stacks.
func distCoordination(coord Coordination) error {
	if coord == Sequential {
		return fmt.Errorf("core: coordination %v not supported across processes (it is single-worker by definition; use depthbounded, budget, or stacksteal)", coord)
	}
	return nil
}

// runDistEngine runs the local share of a distributed pool-based
// search: build the engine (installing the pool), start the transport,
// and drive the workers to global termination or cancellation. prio
// assigns task priorities for the ordered scheduling modes; because
// every process constructs the problem identically, each computes the
// same root-bound reference and the priorities agree across the
// deployment without negotiation.
func runDistEngine[S, N any](coord Coordination, space S, gf GenFactory[S, N], cfg Config, m *Metrics, cancel *canceller, vs []visitor[N], root N, fab *fabric[N], prio *prioAssigner[S, N]) {
	e := newEngine(space, gf, cfg, m, cancel, fab, prio)
	if coord == StackStealing {
		// Install the split gates before the transport starts serving:
		// a peer's kSplit may arrive the moment registration completes.
		e.installSplitGates()
	}
	fab.start(cancel)
	switch coord {
	case DepthBounded:
		runDepthBounded(e, vs, root)
	case Budget:
		runBudget(e, vs, root)
	case StackStealing:
		runStackStealDist(e, vs, root)
	default:
		panic("core: unknown coordination")
	}
}

// distDefaults normalises a distributed config: each process hosts
// exactly one locality, and latency injection is meaningless when the
// network is real. On a standby deployment rank 0 becomes a pure
// coordinator — zero local workers — so that no subtree can ever live
// only in its pool: the root it seeds is handed over under ledger
// supervision, making coordinator death fully survivable (Workers is
// set after withDefaults, which would otherwise re-default 0 to
// GOMAXPROCS).
func distDefaults(cfg Config, tr dist.Transport) Config {
	cfg.Localities = 1
	cfg.StealLatency = 0
	cfg.BoundLatency = 0
	cfg = cfg.withDefaults()
	if cfg.Standby && tr.Rank() == 0 {
		cfg.Workers = 0
	}
	return cfg
}

// DistOpt runs this process's locality of a distributed optimisation
// search over the given transport. All processes must call it with an
// identically constructed problem. On the coordinator (rank 0) the
// returned result is the global one — best node across all localities,
// metrics summed; on workers it is the locality's local contribution,
// which callers normally discard.
func DistOpt[S, N any](tr dist.Transport, codec Codec[N], coord Coordination, space S, root N, p OptProblem[S, N], cfg Config) (OptResult[N], error) {
	if err := distCoordination(coord); err != nil {
		return OptResult[N]{}, err
	}
	cfg = distDefaults(cfg, tr)
	fab := newDistFabric(tr, codec)
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	inc := newIncumbent[N](fab.trs)
	inc.encode = codec.Encode
	fab.bounds = inc
	vs := newOptVisitors(space, p, inc, m, make([]int, cfg.Workers))
	prio := newPrioAssigner(cfg.Order, space, root, p.Bound)
	start := time.Now()
	runDistEngine(coord, space, p.Gen, cfg, m, cancel, vs, root, fab, prio)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	stats.Broadcasts = inc.broadcasts()
	fab.wireStats(&stats)
	fab.faultStats(&stats)
	fab.memStats(&stats)
	node, obj, has := inc.result()

	share := distShare{Obj: obj, Has: has, Stats: stats}
	if has {
		b, err := codec.Encode(node)
		if err != nil {
			return OptResult[N]{}, fmt.Errorf("core: encoding local best node: %w", err)
		}
		share.Node = b
	}
	local := OptResult[N]{Best: node, Objective: obj, Found: has, Stats: stats}
	agg := OptResult[N]{Stats: Stats{Elapsed: stats.Elapsed}}
	shares, err := gatherShares(tr, share, &agg.Stats)
	if err != nil {
		return local, err
	}
	if shares == nil {
		return local, nil
	}
	for rank, s := range shares {
		if s != nil && s.Has && (!agg.Found || s.Obj > agg.Objective) {
			n, err := codec.Decode(s.Node)
			if err != nil {
				return agg, fmt.Errorf("core: decoding locality %d best node: %w", rank, err)
			}
			agg.Best, agg.Objective, agg.Found = n, s.Obj, true
		}
	}
	// The transport retains every node-carrying bound broadcast, so
	// an optimum found by a locality that died before the gather is
	// still recovered here.
	if n, robj, ok := bestRetained(tr, codec); ok && (!agg.Found || robj > agg.Objective) {
		agg.Best, agg.Objective, agg.Found = n, robj, true
	}
	return agg, failurePolicy(cfg, agg.Stats.Deaths)
}

// DistEnum runs this process's locality of a distributed enumeration
// search. The monoid value crosses the wire gob-encoded; rank 0
// returns the fold over every locality's partial value.
func DistEnum[S, N, M any](tr dist.Transport, codec Codec[N], coord Coordination, space S, root N, p EnumProblem[S, N, M], cfg Config) (EnumResult[M], error) {
	if err := distCoordination(coord); err != nil {
		return EnumResult[M]{}, err
	}
	cfg = distDefaults(cfg, tr)
	fab := newDistFabric(tr, codec)
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	vs := newEnumVisitors(space, p, m, cfg.Workers)
	prio := newPrioAssigner[S, N](cfg.Order, space, root, nil)
	start := time.Now()
	runDistEngine(coord, space, p.Gen, cfg, m, cancel, vs, root, fab, prio)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	fab.wireStats(&stats)
	fab.faultStats(&stats)
	fab.memStats(&stats)
	value := combineEnum[S, N, M](p.Monoid, vs)

	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(&value); err != nil {
		return EnumResult[M]{}, fmt.Errorf("core: encoding local monoid value: %w", err)
	}
	local := EnumResult[M]{Value: value, Stats: stats}
	agg := EnumResult[M]{Value: p.Monoid.Zero(), Stats: Stats{Elapsed: stats.Elapsed}}
	shares, err := gatherShares(tr, distShare{Value: vbuf.Bytes(), Stats: stats}, &agg.Stats)
	if err != nil {
		return local, err
	}
	if shares == nil {
		return local, nil
	}
	for rank, s := range shares {
		if s == nil {
			// Enumeration is the one skeleton replay cannot repair: a
			// dead rank's partial monoid value is gone, and replaying
			// its subtrees would double-count whatever it had already
			// folded in. Report the loss instead of a wrong total.
			return agg, fmt.Errorf("core: locality %d died mid-enumeration; its partial value is unrecoverable (enumeration cannot survive locality death — see the fault-tolerance notes)", rank)
		}
		var v M
		if err := gob.NewDecoder(bytes.NewReader(s.Value)).Decode(&v); err != nil {
			return agg, fmt.Errorf("core: decoding locality %d monoid value: %w", rank, err)
		}
		agg.Value = p.Monoid.Plus(agg.Value, v)
	}
	return agg, failurePolicy(cfg, agg.Stats.Deaths)
}

// DistDecide runs this process's locality of a distributed decision
// search. The first locality to reach the target cancels the others
// through the transport; rank 0 returns whichever witness survived the
// gather.
func DistDecide[S, N any](tr dist.Transport, codec Codec[N], coord Coordination, space S, root N, p DecisionProblem[S, N], cfg Config) (DecisionResult[N], error) {
	if err := distCoordination(coord); err != nil {
		return DecisionResult[N]{}, err
	}
	cfg = distDefaults(cfg, tr)
	fab := newDistFabric(tr, codec)
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	wit := &witness[N]{}
	vs := newDecisionVisitors(space, p, wit, cancel, m, cfg.Workers)
	// A locally found witness rides the cancel broadcast, so it
	// reaches rank 0's retention before this process can die with it.
	fab.cancelInfo = func() (int64, []byte) {
		n, obj, found := wit.get()
		if !found {
			return 0, nil
		}
		blob, err := codec.Encode(n)
		if err != nil {
			return obj, nil
		}
		return obj, blob
	}
	prio := newPrioAssigner(cfg.Order, space, root, p.Bound)
	start := time.Now()
	runDistEngine(coord, space, p.Gen, cfg, m, cancel, vs, root, fab, prio)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	fab.wireStats(&stats)
	fab.faultStats(&stats)
	fab.memStats(&stats)
	node, obj, found := wit.get()

	share := distShare{Obj: obj, Has: found, Stats: stats}
	if found {
		b, err := codec.Encode(node)
		if err != nil {
			return DecisionResult[N]{}, fmt.Errorf("core: encoding witness: %w", err)
		}
		share.Node = b
	}
	local := DecisionResult[N]{Witness: node, Objective: obj, Found: found, Stats: stats}
	agg := DecisionResult[N]{Stats: Stats{Elapsed: stats.Elapsed}}
	shares, err := gatherShares(tr, share, &agg.Stats)
	if err != nil {
		return local, err
	}
	if shares == nil {
		return local, nil
	}
	for rank, s := range shares {
		if s != nil && s.Has && !agg.Found {
			n, err := codec.Decode(s.Node)
			if err != nil {
				return agg, fmt.Errorf("core: decoding locality %d witness: %w", rank, err)
			}
			agg.Witness, agg.Objective, agg.Found = n, s.Obj, true
		}
	}
	// A witness found by a rank that died after cancelling survives in
	// the transport's retention.
	if !agg.Found {
		if n, robj, ok := bestRetained(tr, codec); ok {
			agg.Witness, agg.Objective, agg.Found = n, robj, true
		}
	}
	return agg, failurePolicy(cfg, agg.Stats.Deaths)
}
