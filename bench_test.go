package yewpar

// One benchmark per table/figure of the paper's evaluation section,
// plus the design-choice ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1SeqOverhead  — Table 1 columns 2-4 (sequential overhead)
// BenchmarkTable1ParOverhead  — Table 1 columns 5-7 (parallel overhead)
// BenchmarkFigure4Scaling     — Figure 4 (k-clique locality scaling)
// BenchmarkTable2             — Table 2 (app × skeleton speedups)
// BenchmarkAblationPoolOrder  — order-preserving pool vs deque
// BenchmarkAblationBoundLatency — stale-bound tolerance
//
// Benchmarks use the mid-sized instances so a full -bench=. pass stays
// in minutes; cmd/experiments runs the full row sets.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/semigroups"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/dist"
	"yewpar/internal/graph"
	"yewpar/internal/instances"
)

func TestMain(m *testing.M) {
	// Same GC headroom as the cmd/ harnesses: without it the
	// collector, not the search, dominates parallel benchmarks.
	debug.SetGCPercent(800)
	os.Exit(m.Run())
}

func benchWorkers() int {
	w := runtime.GOMAXPROCS(0) - 1
	if w < 1 {
		w = 1
	}
	return w
}

// table1Bench are the Table 1 instances small enough to iterate under
// the default benchtime.
var table1Bench = []string{"brock400_1", "brock400_4", "san400_0.9_1", "sanr400_0.7", "p_hat700-2"}

func table1Graph(name string) *graph.Graph {
	for _, inst := range instances.Table1() {
		if inst.Name == name {
			return inst.Gen()
		}
	}
	panic("unknown instance " + name)
}

func BenchmarkTable1SeqOverhead(b *testing.B) {
	for _, name := range table1Bench {
		g := table1Graph(name)
		b.Run(name+"/handcoded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.SeqHandcoded(g)
			}
		})
		b.Run(name+"/yewpar-seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.Sequential, core.Config{})
			}
		})
	}
}

func BenchmarkTable1ParOverhead(b *testing.B) {
	w := benchWorkers()
	if w > 15 {
		w = 15 // the paper's 15-worker single-locality setting
	}
	for _, name := range table1Bench {
		g := table1Graph(name)
		b.Run(fmt.Sprintf("%s/handcoded-par-%dw", name, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.ParHandcoded(g, w)
			}
		})
		b.Run(fmt.Sprintf("%s/yewpar-depthbounded-%dw", name, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.DepthBounded, core.Config{Workers: w, DCutoff: 1})
			}
		})
	}
}

func BenchmarkFigure4Scaling(b *testing.B) {
	g, omega := instances.SpreadsH44Like()
	k := omega + 1 // unsatisfiable: forces full pruned-tree search
	skels := []struct {
		name  string
		coord core.Coordination
		cfg   core.Config
	}{
		{"depthbounded-d2", core.DepthBounded, core.Config{DCutoff: 2}},
		{"stacksteal-chunked", core.StackStealing, core.Config{Chunked: true}},
		// paper: b=1e7 on an hours-scale instance; budget scales with
		// instance size, so the seconds-scale stand-in uses 1e5.
		{"budget-1e5", core.Budget, core.Config{Budget: 100_000}},
	}
	maxL := benchWorkers()
	for _, sk := range skels {
		for _, locs := range []int{1, 2, 4, 8, 16, 17} {
			if locs > maxL {
				continue // cannot place one worker per locality
			}
			cfg := sk.cfg
			cfg.Localities = locs
			cfg.Workers = locs
			b.Run(fmt.Sprintf("%s/loc=%d", sk.name, locs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, found, _ := maxclique.Decide(g, k, sk.coord, cfg); found {
						b.Fatal("impossible clique found")
					}
				}
			})
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	w := benchWorkers()
	cliqueSpace := maxclique.NewSpace(instances.Table2Clique()[0].Gen())
	knap := instances.Table2Knapsack()[0]
	tspS := instances.Table2TSP()[0]
	sipS := instances.Table2SIP()[0]
	utsS := instances.Table2UTS()[0]
	nsG := instances.Table2NS()[0]

	type cfgCase struct {
		name  string
		coord core.Coordination
		cfg   core.Config
	}
	cases := []cfgCase{
		{"seq", core.Sequential, core.Config{}},
		{"depthbounded", core.DepthBounded, core.Config{Workers: w, DCutoff: 2}},
		{"stacksteal", core.StackStealing, core.Config{Workers: w, Chunked: true}},
		{"budget", core.Budget, core.Config{Workers: w, Budget: 10_000}},
	}
	for _, c := range cases {
		b.Run("MaxClique/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Opt(c.coord, cliqueSpace, maxclique.Root(cliqueSpace), maxclique.OptProblem(), c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("Knapsack/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				knapsack.Solve(knap, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("TSP/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tsp.Solve(tspS, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("SIP/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sip.Solve(sipS, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("NS/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				semigroups.Count(nsG, c.coord, c.cfg)
			}
		})
	}
	for _, c := range cases {
		b.Run("UTS/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				uts.Count(utsS, c.coord, c.cfg)
			}
		})
	}
}

func BenchmarkAblationPoolOrder(b *testing.B) {
	g := table1Graph("p_hat300-3")
	w := benchWorkers()
	for _, pool := range []struct {
		name string
		kind core.PoolKind
	}{{"depthpool", core.DepthPoolKind}, {"deque", core.DequeKind}} {
		b.Run(pool.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.DepthBounded,
					core.Config{Workers: w, DCutoff: 2, Pool: pool.kind})
			}
		})
	}
}

func BenchmarkAblationVertexOrder(b *testing.B) {
	// Natural input order vs degeneracy relabelling: the preprocessing
	// the clique literature applies before branch and bound.
	g := table1Graph("sanr400_0.7")
	b.Run("natural", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			maxclique.Solve(g, core.Sequential, core.Config{})
		}
	})
	b.Run("degeneracy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _ := maxclique.NewSpaceDegeneracy(g)
			core.Opt(core.Sequential, s, maxclique.Root(s), maxclique.OptProblem(), core.Config{})
		}
	})
}

func BenchmarkAblationBoundLatency(b *testing.B) {
	g := table1Graph("p_hat300-3")
	w := benchWorkers()
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		b.Run(lat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				maxclique.Solve(g, core.DepthBounded,
					core.Config{Workers: w, Localities: 4, DCutoff: 2, BoundLatency: lat})
			}
		})
	}
}

// ------------------------------------------------------------------
// Skeleton tax (Table 1, revisited per-node): the generic skeletons
// vs the hand-coded bitset solver, with the two engine levers of the
// allocation/scheduling overhaul isolated — generator recycling
// (Config.NoRecycle ablation) and per-worker pool shards
// (Config.PoolShards=1 reproduces the pre-sharding single shared pool
// per locality). ns/node and allocs/node are reported per search-tree
// node so instances of different sizes are comparable; see
// BENCH_engine.json for recorded numbers.

// measurePerNode runs one search per iteration, accumulating visited
// nodes, and reports ns/node and allocs/node (heap Mallocs across all
// workers, read after every goroutine has joined).
func measurePerNode(b *testing.B, run func() int64) {
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	var nodes int64
	b.ResetTimer()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < b.N; i++ {
		nodes += run()
	}
	runtime.ReadMemStats(&ms1)
	if nodes == 0 {
		b.Fatal("search visited no nodes")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(nodes), "ns/node")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(nodes), "allocs/node")
}

func BenchmarkSkeletonTax(b *testing.B) {
	g := table1Graph("p_hat300-3")
	b.Run("seq/handcoded", func(b *testing.B) {
		measurePerNode(b, func() int64 {
			_, nodes := maxclique.SeqHandcoded(g)
			return nodes
		})
	})
	solve := func(cfg core.Config) func() int64 {
		return func() int64 {
			_, st := maxclique.Solve(g, core.Sequential, cfg)
			return st.Nodes
		}
	}
	b.Run("seq/skeleton", func(b *testing.B) {
		measurePerNode(b, solve(core.Config{}))
	})
	b.Run("seq/skeleton-norecycle", func(b *testing.B) {
		measurePerNode(b, solve(core.Config{NoRecycle: true}))
	})

	w := benchWorkers()
	if w > 15 {
		w = 15 // the paper's 15-worker single-locality setting
	}
	b.Run(fmt.Sprintf("par-%dw/handcoded", w), func(b *testing.B) {
		measurePerNode(b, func() int64 {
			_, nodes := maxclique.ParHandcoded(g, w)
			return nodes
		})
	})
	par := func(cfg core.Config) func() int64 {
		return func() int64 {
			_, st := maxclique.Solve(g, core.DepthBounded, cfg)
			return st.Nodes
		}
	}
	b.Run(fmt.Sprintf("par-%dw/skeleton", w), func(b *testing.B) {
		measurePerNode(b, par(core.Config{Workers: w, DCutoff: 1}))
	})
	b.Run(fmt.Sprintf("par-%dw/skeleton-norecycle-sharedpool", w), func(b *testing.B) {
		measurePerNode(b, par(core.Config{Workers: w, DCutoff: 1, NoRecycle: true, PoolShards: 1}))
	})
}

// BenchmarkHotPathPrefetch compares the adaptive multi-inflight
// steal-ahead pipeline (StealAheadMax=4, the default) against strictly
// single-inflight prefetching (StealAheadMax=1) on the
// latency-injected loopback transport — the reproducible steal-heavy
// workload; a real-TCP deployment on a small instance drains before
// steal traffic ramps. hitrate is the fraction of transport steals
// served from the steal-ahead buffer instead of a blocking round trip,
// accumulated over every solve of the run; the adaptive governor must
// not do worse than the fixed pipeline it replaced (gated as a
// guard ratio in BENCH_engine.json, with headroom — hit rates on a
// time-sliced host are noisy). Needs GOMAXPROCS > 1: on a single
// scheduler thread the busy locality starves the stealing ones and no
// transport steal ever lands.
func BenchmarkHotPathPrefetch(b *testing.B) {
	g := table1Graph("brock400_1")
	want, _ := maxclique.Solve(g, core.Sequential, core.Config{})
	arms := []struct {
		name string
		max  int
	}{{"single", 1}, {"adaptive", 0}} // 0 = default cap of 4
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var hits, oks float64
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					Workers: 8, Localities: 4, DCutoff: 3,
					StealLatency:  200 * time.Microsecond,
					StealAheadMax: arm.max,
				}
				clique, st := maxclique.Solve(g, core.DepthBounded, cfg)
				if clique.Count() != want.Count() {
					b.Fatalf("clique size = %d, want %d", clique.Count(), want.Count())
				}
				hits += float64(st.PrefetchHits)
				oks += float64(st.StealsOK)
			}
			if oks > 0 {
				b.ReportMetric(hits/oks, "hitrate")
			}
		})
	}
}

// BenchmarkNodeThroughput measures multi-worker node throughput of the
// pool-based engine under the two pool layouts: per-worker shards
// (default) vs the single mutex-shared pool per locality
// (PoolShards=1). Two workloads: maxclique depthbounded (coarse tasks,
// pruning) and UTS budget (spawn-heavy enumeration, the pool
// stress case). Worker counts beyond GOMAXPROCS are still run — an
// oversubscribed engine must not collapse — but real contention relief
// needs real cores.
func BenchmarkNodeThroughput(b *testing.B) {
	g := table1Graph("p_hat300-3")
	utsS := &uts.Space{Shape: uts.Binomial, B0: 2000, M: 6, Q: 0.166, Seed: 401}
	layouts := []struct {
		name   string
		shards int
	}{{"sharded", 0}, {"shared-pool", 1}}
	for _, w := range []int{1, 2, 4, 8, 16} {
		for _, layout := range layouts {
			b.Run(fmt.Sprintf("maxclique-depthbounded/%dw/%s", w, layout.name), func(b *testing.B) {
				measurePerNode(b, func() int64 {
					_, st := maxclique.Solve(g, core.DepthBounded,
						core.Config{Workers: w, DCutoff: 2, PoolShards: layout.shards})
					return st.Nodes
				})
			})
		}
	}
	for _, w := range []int{1, 4, 16} {
		for _, layout := range layouts {
			b.Run(fmt.Sprintf("uts-budget/%dw/%s", w, layout.name), func(b *testing.B) {
				measurePerNode(b, func() int64 {
					_, st := uts.Count(utsS, core.Budget,
						core.Config{Workers: w, Budget: 500, PoolShards: layout.shards})
					return st.Nodes
				})
			})
		}
	}
}

// ------------------------------------------------------------------
// Ordered scheduling (Config.Order): does a discrepancy- or
// bound-ordered global task order find the optimal incumbent after
// fewer visited nodes than random-victim depth scheduling? Nodes are
// counted through an atomic wrapper around the objective so
// "nodes-to-first-optimal-incumbent" — the count at the moment the
// final incumbent was installed — is exact and race-free. Recorded in
// BENCH_ordered.json.

// orderedRun executes one multi-locality maxclique solve and reports
// (total nodes, nodes at the last incumbent improvement).
func orderedRun(b *testing.B, g *graph.Graph, ord core.Order) (total, toIncumbent int64) {
	s := maxclique.NewSpace(g)
	p := maxclique.OptProblem()
	obj := p.Objective
	var visited, best atomic.Int64
	best.Store(-1)
	var mu sync.Mutex
	var nodesAtBest int64
	p.Objective = func(sp *maxclique.Space, n maxclique.Node) int64 {
		v := visited.Add(1)
		o := obj(sp, n)
		// The improvement test and the count store must be one atomic
		// step (a CAS-then-store lets a preempted loser overwrite the
		// final incumbent's count with a stale one); improvements are
		// rare, so the double-checked lock is off the hot path.
		if o > best.Load() {
			mu.Lock()
			if o > best.Load() {
				best.Store(o)
				nodesAtBest = v
			}
			mu.Unlock()
		}
		return o
	}
	w := benchWorkers()
	if w > 8 {
		w = 8
	}
	locs := 4
	if locs > w {
		locs = w
	}
	res := core.Opt(core.DepthBounded, s, maxclique.Root(s), p,
		core.Config{Workers: w, Localities: locs, DCutoff: 2, Order: ord})
	if !res.Found {
		b.Fatal("no clique found")
	}
	mu.Lock()
	defer mu.Unlock()
	return visited.Load(), nodesAtBest
}

func BenchmarkOrderedScheduling(b *testing.B) {
	g := table1Graph("p_hat300-3")
	for _, ord := range []core.Order{core.OrderNone, core.OrderDiscrepancy, core.OrderBound} {
		b.Run("maxclique/order="+ord.String(), func(b *testing.B) {
			var total, toInc int64
			for i := 0; i < b.N; i++ {
				tt, ti := orderedRun(b, g, ord)
				total += tt
				toInc += ti
			}
			b.ReportMetric(float64(total)/float64(b.N), "nodes/solve")
			b.ReportMetric(float64(toInc)/float64(b.N), "nodes-to-incumbent")
		})
	}
}

// ------------------------------------------------------------------
// Scale-out topology (Figure 4, revisited over real TCP): the same
// 4-locality maxclique deployment under the star topology (every steal
// crosses the hub) and the mesh topology (steals flow worker-to-worker,
// the hub keeps only registration, incumbents and aggregation), with
// and without an injected worker death. coordframes/op counts the
// frames the coordinator endpoint sent+received per solve — the star's
// scaling bottleneck, and the number the mesh exists to shrink; the
// mesh/star nofail ratio is gated by cmd/benchguard via
// BENCH_scaleout.json.

// scaleoutTransports brings up a real-TCP 1-coordinator + 3-worker
// deployment in process and returns the transports indexed by rank.
func scaleoutTransports(b *testing.B, topo string) []dist.Transport {
	b.Helper()
	opts := dist.WireOptions{Topology: topo}
	l, err := dist.NewListenerOpts("127.0.0.1:0", "scaleout", opts)
	if err != nil {
		b.Fatal(err)
	}
	trs := make([]dist.Transport, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var derr error
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := dist.DialOpts(l.Addr(), "scaleout", opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				derr = err
				return
			}
			trs[tr.Rank()] = tr
		}()
	}
	coord, err := l.Wait(3)
	wg.Wait()
	if err != nil || derr != nil {
		b.Fatalf("scaleout deployment: %v / %v", err, derr)
	}
	trs[0] = coord
	return trs
}

// runScaleout executes one distributed maxclique solve and returns the
// coordinator endpoint's frame total (sent+received). With kill set, a
// worker's transport is severed mid-search; replay must still deliver
// the exact optimum at rank 0.
func runScaleout(b *testing.B, g *graph.Graph, topo string, kill bool, want int64) float64 {
	b.Helper()
	trs := scaleoutTransports(b, topo)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	s := maxclique.NewSpace(g)
	cfg := core.Config{Workers: 2, DCutoff: 2, MaxFailures: -1}
	results := make([]core.OptResult[maxclique.Node], 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = core.DistOpt(trs[r], maxclique.Codec(), core.DepthBounded,
				s, maxclique.Root(s), maxclique.OptProblem(), cfg)
		}(r)
	}
	if kill {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(60 * time.Millisecond)
			trs[2].Close() // severed mid-search; rank 2's engine errors out
		}()
	}
	wg.Wait()
	if errs[0] != nil {
		b.Fatalf("rank 0: %v", errs[0])
	}
	if !results[0].Found || results[0].Best.Clique.Count() != int(want) {
		b.Fatalf("clique size = %d (found=%v), want %d", results[0].Best.Clique.Count(), results[0].Found, want)
	}
	ws := trs[0].(dist.Meter).Wire()
	return float64(ws.FramesSent + ws.FramesRecv)
}

func BenchmarkScaleoutTopology(b *testing.B) {
	// Big enough that a 60ms-delayed kill lands mid-search, small
	// enough that a full star+mesh × nofail+death pass stays in seconds.
	g := graph.Random(130, 0.8, 42)
	best, _ := maxclique.SeqHandcoded(g)
	want := int64(best.Count())
	for _, tc := range []struct {
		name string
		topo string
	}{{"star", dist.TopologyStar}, {"mesh", dist.TopologyMesh}} {
		for _, kill := range []bool{false, true} {
			mode := "nofail"
			if kill {
				mode = "death"
			}
			b.Run(tc.name+"/"+mode, func(b *testing.B) {
				var frames float64
				for i := 0; i < b.N; i++ {
					frames += runScaleout(b, g, tc.topo, kill, want)
				}
				b.ReportMetric(frames/float64(b.N), "coordframes/op")
			})
		}
	}
}

// ------------------------------------------------------------------
// Coordinator failover (wire protocol v7): arming -standby makes the
// hub replicate its residual state (ledger hand-overs, bound stamps,
// death set, early gather shares) to the lowest worker rank, which
// promotes itself and finishes the search if the coordinator dies.
// The insurance premium is the extra kHubDelta/kHubSnap traffic on
// the coordinator's wire; the standby-on/standby-off ns/op ratio is
// gated by cmd/benchguard via BENCH_failover.json. The takeover arm
// (coordinator killed at 60ms, result asserted at the promoted rank)
// is informational: it proves the bench measures a deployment that
// really can fail over, but its wall time includes the blackout and
// re-dial, which are latency floors, not throughput.

// failoverTransports brings up a real-TCP 1-coordinator + 3-worker
// star deployment in process with the given wire options.
func failoverTransports(b *testing.B, opts dist.WireOptions) []dist.Transport {
	b.Helper()
	l, err := dist.NewListenerOpts("127.0.0.1:0", "failover", opts)
	if err != nil {
		b.Fatal(err)
	}
	trs := make([]dist.Transport, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var derr error
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := dist.DialOpts(l.Addr(), "failover", opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				derr = err
				return
			}
			trs[tr.Rank()] = tr
		}()
	}
	coord, err := l.Wait(3)
	wg.Wait()
	if err != nil || derr != nil {
		b.Fatalf("failover deployment: %v / %v", err, derr)
	}
	trs[0] = coord
	return trs
}

// runFailover executes one distributed maxclique solve and returns the
// coordinator endpoint's frame total. Both arms run rank 0 as a pure
// coordinator (core.Config.Standby) so their worker counts match and
// the standby-on/standby-off difference isolates the wire-level
// replication tax. With kill set, the coordinator's endpoint is closed
// mid-search and the exact optimum must come out of the promoted
// rank 1 instead.
func runFailover(b *testing.B, g *graph.Graph, wire dist.WireOptions, kill bool, want int64) float64 {
	b.Helper()
	trs := failoverTransports(b, wire)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	s := maxclique.NewSpace(g)
	cfg := core.Config{Workers: 2, DCutoff: 2, MaxFailures: -1, Standby: true}
	results := make([]core.OptResult[maxclique.Node], 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = core.DistOpt(trs[r], maxclique.Codec(), core.DepthBounded,
				s, maxclique.Root(s), maxclique.OptProblem(), cfg)
		}(r)
	}
	if kill {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(60 * time.Millisecond)
			trs[0].Close() // the coordinator dies; rank 1 must take over
		}()
	}
	wg.Wait()
	reader := 0
	if kill {
		reader = 1
		if !dist.Promoted(trs[1]) {
			b.Fatal("rank 1 did not adopt the coordinator role")
		}
	}
	if errs[reader] != nil {
		b.Fatalf("rank %d: %v", reader, errs[reader])
	}
	if !results[reader].Found || results[reader].Best.Clique.Count() != int(want) {
		b.Fatalf("clique size = %d (found=%v), want %d",
			results[reader].Best.Clique.Count(), results[reader].Found, want)
	}
	ws := trs[0].(dist.Meter).Wire()
	return float64(ws.FramesSent + ws.FramesRecv)
}

func BenchmarkFailover(b *testing.B) {
	g := graph.Random(130, 0.8, 42)
	best, _ := maxclique.SeqHandcoded(g)
	want := int64(best.Count())
	for _, tc := range []struct {
		name string
		wire dist.WireOptions
		kill bool
	}{
		{"standby-off", dist.WireOptions{}, false},
		{"standby-on", dist.WireOptions{Standby: true}, false},
		{"takeover", dist.WireOptions{Standby: true}, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var frames float64
			for i := 0; i < b.N; i++ {
				frames += runFailover(b, g, tc.wire, tc.kill, want)
			}
			b.ReportMetric(frames/float64(b.N), "coordframes/op")
		})
	}
}

// ------------------------------------------------------------------
// Memory-bounded search (Config.PoolBudget): the per-locality memory
// accountant must cap the resident frontier — pressure-aware steal
// ranking, deepened cutoffs, and finally cold-bucket spill to disk —
// without changing the enumeration result, and must cost next to
// nothing when the frontier fits in RAM. The UTS binomial soak tree is
// the spawn-heavy stress case: the budget coordination floods the pool
// far past any sensible budget. poolpeak-B/op is the accountant's
// encoded-size estimate of the largest resident frontier (the proxy
// for peak pool RSS), spilled/op the tasks that crossed to disk.
// Budgets are derived from the measured unbounded peak: "fits-in-ram"
// (4x peak: accounting on, spill never fires — the overhead row),
// 1/4 and 1/16 of peak (the spill rows), plus the tentpole pairing of
// a tight budget under distributed stack stealing, where starved
// localities pull work via kSplit stack splits. The fits-in-ram
// ns/node tax (<= 1.10x) and the 1/16-budget peak (<= 0.5x unbounded)
// are gated by cmd/benchguard via BENCH_memory.json.
func BenchmarkMemoryBudget(b *testing.B) {
	utsS := &uts.Space{Shape: uts.Binomial, B0: 2000, M: 6, Q: 0.166, Seed: 401}
	w := benchWorkers()
	if w > 8 {
		w = 8
	}
	base := core.Config{Workers: w, Budget: 500}
	// One unbounded probe pins the oracle count and the peak the
	// budget rows are fractions of.
	wantNodes, probe := uts.Count(utsS, core.Budget, base)
	peak := probe.PoolPeakBytes
	if peak == 0 {
		b.Fatal("probe run recorded no pool peak")
	}

	run := func(b *testing.B, budget int64) {
		cfg := base
		cfg.PoolBudget = budget
		if budget > 0 {
			cfg.SpillDir = b.TempDir()
		}
		var nodes, peakSum, spilled int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, st := uts.Count(utsS, core.Budget, cfg)
			if got != wantNodes {
				b.Fatalf("count %d under budget %d, want %d", got, budget, wantNodes)
			}
			nodes += st.Nodes
			peakSum += st.PoolPeakBytes
			spilled += st.SpilledTasks
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(nodes), "ns/node")
		b.ReportMetric(float64(peakSum)/float64(b.N), "poolpeak-B/op")
		b.ReportMetric(float64(spilled)/float64(b.N), "spilled/op")
	}
	b.Run("uts/unbounded", func(b *testing.B) { run(b, 0) })
	b.Run("uts/fits-in-ram", func(b *testing.B) { run(b, peak*4) })
	b.Run("uts/budget=1of4", func(b *testing.B) { run(b, peak/4) })
	b.Run("uts/budget=1of16", func(b *testing.B) { run(b, peak/16) })

	// The tentpole pairing: the same tree under -skeleton stacksteal
	// -dist with a tight budget, over a 4-locality loopback deployment.
	b.Run("uts/stacksteal-dist-1of16", func(b *testing.B) {
		var nodes, peakSum, spilled int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net := dist.NewLoopback(4, dist.LoopbackOptions{})
			trs := net.Transports()
			cfg := core.Config{Workers: 2, PoolBudget: peak / 16, SpillDir: b.TempDir()}
			results := make([]core.EnumResult[int64], 4)
			errs := make([]error, 4)
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					results[r], errs[r] = core.DistEnum(trs[r], uts.Codec(), core.StackStealing,
						utsS, uts.Root(utsS), uts.CountProblem(), cfg)
				}(r)
			}
			wg.Wait()
			net.Close()
			for r, err := range errs {
				if err != nil {
					b.Fatalf("rank %d: %v", r, err)
				}
			}
			if results[0].Value != wantNodes {
				b.Fatalf("dist count %d, want %d", results[0].Value, wantNodes)
			}
			nodes += results[0].Stats.Nodes
			peakSum += results[0].Stats.PoolPeakBytes
			spilled += results[0].Stats.SpilledTasks
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(nodes), "ns/node")
		b.ReportMetric(float64(peakSum)/float64(b.N), "poolpeak-B/op")
		b.ReportMetric(float64(spilled)/float64(b.N), "spilled/op")
	})
}

// ------------------------------------------------------------------
// Wire protocol v2 throughput: how fast do stolen tasks cross a
// locality boundary, and at what protocol cost? The matrix covers the
// three v2 levers — transport (loopback hand-over vs real TCP), codec
// (self-describing gob vs compact hand-written), steal batching
// (1 task per round trip vs DefaultStealBatch) — with the gob/batch=1
// TCP row standing in for the PR 1 baseline protocol. frames/task and
// bytes/task are reported from the transport's Meter; see
// BENCH_transport.json for recorded numbers.

// benchVictim serves pre-stocked encoded tasks, like a locality with a
// deep backlog — including the v4 supervision work a real locality
// does per hand-over: minting an id, retaining the task in a ledger
// map, and retiring it when the thief's completion ack arrives. The
// no-failure cost of the supervised-task protocol is therefore inside
// the measured loop.
type benchVictim struct {
	mu        sync.Mutex
	supervise bool
	tasks     []dist.WireTask
	seq       uint64
	led       map[uint64]dist.WireTask
}

func (h *benchVictim) ServeSteal(thief int) (dist.WireTask, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.tasks) == 0 {
		return dist.WireTask{}, false
	}
	t := h.tasks[len(h.tasks)-1]
	h.tasks = h.tasks[:len(h.tasks)-1]
	if h.supervise {
		h.seq++
		t.ID = dist.TaskID(1, h.seq)
		if h.led == nil {
			h.led = make(map[uint64]dist.WireTask)
		}
		h.led[t.ID] = t
	}
	return t, true
}
func (h *benchVictim) OnBound(int, int64) {}
func (h *benchVictim) OnCancel(int)       {}
func (h *benchVictim) OnAck(_ int, id uint64) {
	h.mu.Lock()
	delete(h.led, id)
	h.mu.Unlock()
}
func (h *benchVictim) OnTask(t dist.WireTask) {
	h.mu.Lock()
	h.tasks = append(h.tasks, t)
	h.mu.Unlock()
}

// benchThief collects batch extras delivered through OnTask.
type benchThief struct {
	mu    sync.Mutex
	extra []dist.WireTask
}

func (h *benchThief) ServeSteal(int) (dist.WireTask, bool) { return dist.WireTask{}, false }
func (h *benchThief) OnBound(int, int64)                   {}
func (h *benchThief) OnCancel(int)                         {}
func (h *benchThief) OnAck(int, uint64)                    {}
func (h *benchThief) OnTask(t dist.WireTask) {
	h.mu.Lock()
	h.extra = append(h.extra, t)
	h.mu.Unlock()
}

func (h *benchThief) take() []dist.WireTask {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.extra
	h.extra = nil
	return out
}

// benchWalk samples count real nodes along random root-to-leaf walks.
func benchWalk[S, N any](space S, root N, gen core.GenFactory[S, N], count int) []N {
	rng := rand.New(rand.NewSource(99))
	nodes := []N{root}
	for len(nodes) < count {
		n := root
		for {
			nodes = append(nodes, n)
			g := gen(space, n)
			var kids []N
			for g.HasNext() {
				kids = append(kids, g.Next())
			}
			if len(kids) == 0 {
				break
			}
			n = kids[rng.Intn(len(kids))]
		}
	}
	return nodes[:count]
}

func benchTransportPair(b *testing.B, transport string, batch int) (thiefTr, victimTr dist.Transport, cleanup func()) {
	switch transport {
	case "loopback":
		net := dist.NewLoopback(2, dist.LoopbackOptions{})
		trs := net.Transports()
		return trs[0], trs[1], func() { net.Close() }
	case "tcp":
		l, err := dist.NewListenerOpts("127.0.0.1:0", "bench", dist.WireOptions{StealBatch: batch})
		if err != nil {
			b.Fatal(err)
		}
		var wtr dist.Transport
		var derr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			wtr, derr = dist.Dial(l.Addr(), "bench")
		}()
		htr, err := l.Wait(1)
		<-done
		if err != nil || derr != nil {
			b.Fatalf("tcp pair: %v / %v", err, derr)
		}
		return htr, wtr, func() { htr.Close(); wtr.Close() }
	}
	panic("unknown transport")
}

func runTransportThroughput[N any](b *testing.B, transport string, batch int, codec core.Codec[N], nodes []N, supervise bool) {
	thiefTr, victimTr, cleanup := benchTransportPair(b, transport, batch)
	defer cleanup()
	victim := &benchVictim{supervise: supervise}
	thief := &benchThief{}
	thiefTr.Start(thief)
	victimTr.Start(victim)

	var before core.Stats
	meterInto := func(s *core.Stats) {
		for _, tr := range []dist.Transport{thiefTr, victimTr} {
			if m, ok := tr.(dist.Meter); ok {
				ws := m.Wire()
				s.Frames += ws.FramesSent
				s.WireBytes += ws.BytesSent
			}
		}
	}
	meterInto(&before)

	const tasksPerRound = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Victim encodes its backlog (as ServeSteal does on a real
		// locality), thief drains and decodes every stolen task.
		stock := make([]dist.WireTask, 0, tasksPerRound)
		for _, n := range nodes {
			bs, err := codec.EncodeTo(nil, n)
			if err != nil {
				b.Fatal(err)
			}
			stock = append(stock, dist.WireTask{Payload: bs, Depth: 1})
		}
		victim.mu.Lock()
		victim.tasks = stock
		victim.mu.Unlock()

		got := 0
		decode := func(ts ...dist.WireTask) {
			for _, wt := range ts {
				if _, err := codec.Decode(wt.Payload); err != nil {
					b.Fatal(err)
				}
				// Certify the subtree complete, as the engine does for
				// every received hand-over; the victim retires its
				// ledger copy when the (coalesced) ack lands.
				if wt.ID != 0 {
					thiefTr.Ack(1, wt.ID)
				}
				got++
			}
		}
		for got < tasksPerRound {
			wt, ok, err := thiefTr.Steal(1)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("victim ran dry early")
			}
			decode(wt)
			decode(thief.take()...)
		}
	}
	b.StopTimer()
	var after core.Stats
	meterInto(&after)
	total := float64(b.N * tasksPerRound)
	b.ReportMetric(float64(after.Frames-before.Frames)/total, "frames/task")
	b.ReportMetric(float64(after.WireBytes-before.WireBytes)/total, "bytes/task")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/task")
}

func BenchmarkTransportThroughput(b *testing.B) {
	cliqueSpace := maxclique.NewSpace(table1Graph("brock400_1"))
	cliqueNodes := benchWalk(cliqueSpace, maxclique.Root(cliqueSpace), maxclique.Gen, 64)
	knapSpace := knapsack.Generate(60, 10_000, knapsack.StronglyCorrelated, 7)
	knapNodes := benchWalk(knapSpace, knapsack.Root(knapSpace), knapsack.Gen, 64)

	type codecCase[N any] struct {
		name  string
		codec core.Codec[N]
	}
	cliqueCodecs := []codecCase[maxclique.Node]{
		{"gob", core.GobCodec[maxclique.Node]{}},
		{"compact", maxclique.Codec()},
	}
	knapCodecs := []codecCase[knapsack.Node]{
		{"gob", core.GobCodec[knapsack.Node]{}},
		{"compact", knapsack.Codec()},
	}
	for _, transport := range []string{"loopback", "tcp"} {
		batches := []int{1, dist.DefaultStealBatch}
		if transport == "loopback" {
			batches = []int{1} // the in-process hand-over has no round trip to batch away
		}
		for _, batch := range batches {
			for _, cc := range cliqueCodecs {
				b.Run(fmt.Sprintf("%s/maxclique/%s/batch=%d", transport, cc.name, batch), func(b *testing.B) {
					runTransportThroughput(b, transport, batch, cc.codec, cliqueNodes, true)
				})
			}
			for _, cc := range knapCodecs {
				b.Run(fmt.Sprintf("%s/knapsack/%s/batch=%d", transport, cc.name, batch), func(b *testing.B) {
					runTransportThroughput(b, transport, batch, cc.codec, knapNodes, true)
				})
			}
		}
	}
	// The no-ledger ablation: the identical exchange with supervision
	// off (no id minting, no ledger retention, no completion acks).
	// The supervised/noledger ratio is the host-independent bound on
	// the fault-tolerance tax of the no-failure path, gated by
	// cmd/benchguard.
	b.Run("tcp/maxclique/compact/batch=4/noledger", func(b *testing.B) {
		runTransportThroughput(b, "tcp", dist.DefaultStealBatch, maxclique.Codec(), cliqueNodes, false)
	})
	b.Run("tcp/knapsack/compact/batch=4/noledger", func(b *testing.B) {
		runTransportThroughput(b, "tcp", dist.DefaultStealBatch, knapsack.Codec(), knapNodes, false)
	})
}

// ------------------------------------------------------------------
// Link-fault tolerance (wire protocol v8): every frame carries a
// sequence + CRC32C trailer, and arming -link-grace additionally puts
// a bounded retransmit log behind every connection so a severed link
// can resume instead of dying. The grace-on/grace-off ns/op ratio on a
// fault-free deployment is the session tax, gated by cmd/benchguard
// via BENCH_netfault.json. The partition arm (one worker cut for
// 200ms mid-search, result asserted with zero deaths) is
// informational: it proves the bench measures a deployment that
// really can resume, but its wall time includes the cut itself.

// runNetFault executes one distributed maxclique solve over a real-TCP
// star deployment and returns the summed session-resume count.
func runNetFault(b *testing.B, g *graph.Graph, wire dist.WireOptions, want int64) float64 {
	b.Helper()
	trs := failoverTransports(b, wire)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	s := maxclique.NewSpace(g)
	cfg := core.Config{Workers: 2, DCutoff: 2}
	results := make([]core.OptResult[maxclique.Node], 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = core.DistOpt(trs[r], maxclique.Codec(), core.DepthBounded,
				s, maxclique.Root(s), maxclique.OptProblem(), cfg)
		}(r)
	}
	if wire.Fault != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(60 * time.Millisecond)
			wire.Fault.Partition([]int{2}, 200*time.Millisecond)
		}()
	}
	wg.Wait()
	if errs[0] != nil {
		b.Fatalf("rank 0: %v", errs[0])
	}
	if !results[0].Found || results[0].Best.Clique.Count() != int(want) {
		b.Fatalf("clique size = %d (found=%v), want %d",
			results[0].Best.Clique.Count(), results[0].Found, want)
	}
	if results[0].Stats.Deaths != 0 {
		b.Fatalf("deaths=%d on a sub-grace deployment", results[0].Stats.Deaths)
	}
	var resumes float64
	for _, tr := range trs {
		if m, ok := tr.(dist.Meter); ok {
			resumes += float64(m.Wire().Resumes)
		}
	}
	return resumes
}

func BenchmarkNetFault(b *testing.B) {
	g := graph.Random(130, 0.8, 42)
	best, _ := maxclique.SeqHandcoded(g)
	want := int64(best.Count())
	b.Run("grace-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runNetFault(b, g, dist.WireOptions{}, want)
		}
	})
	b.Run("grace-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runNetFault(b, g, dist.WireOptions{LinkGrace: 2 * time.Second}, want)
		}
	})
	b.Run("partition", func(b *testing.B) {
		var resumes float64
		for i := 0; i < b.N; i++ {
			resumes += runNetFault(b, g,
				dist.WireOptions{LinkGrace: 2 * time.Second, Fault: dist.NewFaultPlan(int64(i))}, want)
		}
		if resumes == 0 {
			b.Fatal("partition arm completed without a single session resume")
		}
		b.ReportMetric(resumes/float64(b.N), "resumes/op")
	})
}
