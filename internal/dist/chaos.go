package dist

import (
	"sync"
	"time"
)

// Chaos harness: a declarative schedule of rank deaths, reusable
// across the fault-injection surfaces the repo already has — the
// loopback network's Kill, a subprocess deployment's SIGKILL, or any
// other func(rank). Tests and experiments describe WHAT dies WHEN;
// the harness owns the timers, so a chaos scenario reads as data:
//
//	stop := dist.ChaosPlan{Kills: []dist.ChaosKill{
//		{Rank: 0, After: 30 * time.Millisecond},
//		{Rank: 2, After: 60 * time.Millisecond},
//	}}.Start(func(rank int) { procs[rank].Kill() })
//	defer stop()
//
// The harness deliberately has no liveness opinions: killing an
// already-dead rank must be a no-op of the injected kill func (both
// LoopbackNetwork.Kill and process SIGKILL are idempotent).

// ChaosKill schedules one rank's death.
type ChaosKill struct {
	Rank  int           // who dies
	After time.Duration // measured from ChaosPlan.Start
}

// ChaosPartition schedules one network partition against the plan's
// FaultPlan: Ranks on one side, everyone else on the other.
type ChaosPartition struct {
	Ranks []int         // one side of the split
	After time.Duration // measured from ChaosPlan.Start
	Dur   time.Duration // how long until the heal; 0 means until stop
}

// ChaosPlan is a schedule of deaths and partitions to inject into a
// deployment. Kills and Partitions compose: ChaosPlan schedules WHO
// dies and WHEN the network splits, Net decides WHICH links lie in
// between (latency, loss, duplication, corruption).
type ChaosPlan struct {
	Kills      []ChaosKill
	Partitions []ChaosPartition
	Net        *FaultPlan // required when Partitions is non-empty
}

// Start arms the plan: each kill and partition fires on its own
// timer, kills calling the injected kill func with the victim's rank,
// partitions driving Net.Partition/Heal. The returned stop func
// cancels anything still pending (already-fired events are history),
// waits for in-flight callbacks to return, and heals a partition left
// open; it is safe to call more than once.
func (p ChaosPlan) Start(kill func(rank int)) (stop func()) {
	var wg sync.WaitGroup
	timers := make([]*time.Timer, 0, len(p.Kills)+len(p.Partitions))
	for _, k := range p.Kills {
		k := k
		wg.Add(1)
		timers = append(timers, time.AfterFunc(k.After, func() {
			defer wg.Done()
			kill(k.Rank)
		}))
	}
	for _, part := range p.Partitions {
		part := part
		wg.Add(1)
		timers = append(timers, time.AfterFunc(part.After, func() {
			defer wg.Done()
			p.Net.Partition(part.Ranks, part.Dur)
		}))
	}
	var cancelOnce sync.Once
	return func() {
		cancelOnce.Do(func() {
			for _, t := range timers {
				if t.Stop() {
					wg.Done() // never fired, never will
				}
			}
		})
		wg.Wait()
		if p.Net != nil {
			p.Net.Heal()
		}
	}
}
