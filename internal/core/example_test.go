package core_test

// Runnable godoc examples composing search applications from lazy node
// generators and skeletons, in the style of the paper's Listing 5.

import (
	"fmt"

	"yewpar/internal/core"
)

// perms is a toy search space: the tree of partial permutations of
// {0..N-1}. Leaves (complete permutations) are counted or scored.
type perms struct{ N int }

type permNode struct {
	used  uint32
	last  int
	depth int
}

func permGen(s perms, parent permNode) core.NodeGenerator[permNode] {
	if parent.depth == s.N {
		return core.EmptyGen[permNode]{}
	}
	var children []permNode
	for v := 0; v < s.N; v++ {
		if parent.used&(1<<uint(v)) == 0 {
			children = append(children, permNode{
				used:  parent.used | 1<<uint(v),
				last:  v,
				depth: parent.depth + 1,
			})
		}
	}
	return core.NewSliceGen(children)
}

// ExampleSequentialEnum counts the permutations of a 5-element set by
// folding 1 for every leaf into the sum monoid.
func ExampleSequentialEnum() {
	space := perms{N: 5}
	problem := core.EnumProblem[perms, permNode, int64]{
		Gen: permGen,
		Objective: func(s perms, n permNode) int64 {
			if n.depth == s.N {
				return 1
			}
			return 0
		},
		Monoid: core.SumInt64{},
	}
	res := core.SequentialEnum(space, permNode{}, problem)
	fmt.Println(res.Value)
	// Output: 120
}

// ExampleDepthBoundedOpt finds the permutation of {0..5} maximising a
// toy objective in parallel; the parallel answer must equal the
// sequential one regardless of interleaving.
func ExampleDepthBoundedOpt() {
	space := perms{N: 6}
	objective := func(s perms, n permNode) int64 {
		if n.depth != s.N {
			return -1 << 40 // partial permutations never win
		}
		return int64(n.last * n.last)
	}
	problem := core.OptProblem[perms, permNode]{Gen: permGen, Objective: objective}
	res := core.DepthBoundedOpt(space, permNode{}, problem, core.Config{Workers: 4, DCutoff: 2})
	fmt.Println(res.Objective)
	// Output: 25
}

// ExampleStackStealDecision looks for any permutation ending in a
// chosen element; decision searches stop all workers at the first
// witness.
func ExampleStackStealDecision() {
	space := perms{N: 7}
	problem := core.DecisionProblem[perms, permNode]{
		Gen: permGen,
		Objective: func(s perms, n permNode) int64 {
			if n.depth == s.N && n.last == 3 {
				return 1
			}
			return 0
		},
		Target: 1,
	}
	res := core.StackStealDecision(space, permNode{}, problem, core.Config{Workers: 4})
	fmt.Println(res.Found, res.Witness.last)
	// Output: true 3
}
