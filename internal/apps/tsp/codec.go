package tsp

import (
	"encoding/binary"
	"fmt"

	"yewpar/internal/core"
)

// nodeCodec is the compact wire form of a tour node: the visited set
// as one raw word (the space caps N at 64), then last city, cost and
// count as varints. Cost of incomplete tours is a huge negative
// sentinel offset, so it gets the signed encoding.
type nodeCodec struct{}

// Codec returns the compact Node codec used by the distributed mode.
func Codec() core.Codec[Node] { return nodeCodec{} }

// Encode implements core.Codec.
func (c nodeCodec) Encode(n Node) ([]byte, error) { return c.EncodeTo(nil, n) }

// EncodeTo implements core.Codec.
func (nodeCodec) EncodeTo(dst []byte, n Node) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint64(dst, n.Visited)
	dst = binary.AppendUvarint(dst, uint64(n.Last))
	dst = binary.AppendVarint(dst, n.Cost)
	dst = binary.AppendUvarint(dst, uint64(n.Count))
	return dst, nil
}

// Decode implements core.Codec.
func (nodeCodec) Decode(b []byte) (Node, error) {
	var n Node
	if len(b) < 8 {
		return n, fmt.Errorf("tsp: truncated visited set")
	}
	n.Visited = binary.LittleEndian.Uint64(b)
	b = b[8:]
	last, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("tsp: truncated last city")
	}
	b = b[k:]
	cost, k := binary.Varint(b)
	if k <= 0 {
		return n, fmt.Errorf("tsp: truncated cost")
	}
	b = b[k:]
	count, k := binary.Uvarint(b)
	if k <= 0 {
		return n, fmt.Errorf("tsp: truncated count")
	}
	if len(b) != k {
		return n, fmt.Errorf("tsp: %d trailing bytes after node", len(b)-k)
	}
	n.Last = int(last)
	n.Cost = cost
	n.Count = int(count)
	return n, nil
}
