package sip

import (
	"testing"

	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// bruteForce tries all injective mappings (tiny instances only).
func bruteForce(p, t *graph.Graph) bool {
	mapping := make([]int, p.N)
	used := make([]bool, t.N)
	var try func(v int) bool
	try = func(v int) bool {
		if v == p.N {
			return true
		}
		for tv := 0; tv < t.N; tv++ {
			if used[tv] {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if p.HasEdge(u, v) && !t.HasEdge(mapping[u], tv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = tv
			used[tv] = true
			if try(v + 1) {
				return true
			}
			used[tv] = false
		}
		return false
	}
	return try(0)
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		s := GenerateRandom(10, 0.5, 5, 0.5, seed)
		want := bruteForce(s.P, s.T)
		_, found, _ := Solve(s, core.Sequential, core.Config{})
		if found != want {
			t.Errorf("seed %d: found=%v, brute force says %v", seed, found, want)
		}
	}
}

func TestSatInstancesAlwaysFound(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s := GenerateSat(40, 0.4, 10, 0.2, seed)
		mapping, found, _ := Solve(s, core.Sequential, core.Config{})
		if !found {
			t.Errorf("seed %d: planted embedding not found", seed)
			continue
		}
		if !VerifyEmbedding(s.P, s.T, mapping) {
			t.Errorf("seed %d: returned mapping is not an embedding", seed)
		}
	}
}

func TestAllSkeletonsAgree(t *testing.T) {
	sat := GenerateSat(35, 0.5, 12, 0.3, 7)
	unsatP := graph.Random(8, 0.95, 100) // dense pattern
	unsatT := graph.Random(20, 0.2, 101) // sparse target
	unsat := NewSpace(unsatP, unsatT)
	if bruteForce(unsat.P, unsat.T) {
		t.Skip("unsat instance accidentally satisfiable")
	}
	for _, coord := range []core.Coordination{core.Sequential, core.DepthBounded, core.StackStealing, core.Budget} {
		mapping, found, _ := Solve(sat, coord, core.Config{Workers: 4})
		if !found {
			t.Errorf("%v: satisfiable instance not solved", coord)
		} else if !VerifyEmbedding(sat.P, sat.T, mapping) {
			t.Errorf("%v: invalid embedding", coord)
		}
		if _, found, _ := Solve(unsat, coord, core.Config{Workers: 4}); found {
			t.Errorf("%v: unsatisfiable instance 'solved'", coord)
		}
	}
}

func TestTriangleInTriangle(t *testing.T) {
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	s := NewSpace(tri, tri)
	mapping, found, _ := Solve(s, core.Sequential, core.Config{})
	if !found || !VerifyEmbedding(tri, tri, mapping) {
		t.Fatal("triangle not found in itself")
	}
}

func TestTriangleNotInPath(t *testing.T) {
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	path := graph.New(4)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	path.AddEdge(2, 3)
	if _, found, _ := Solve(NewSpace(tri, path), core.Sequential, core.Config{}); found {
		t.Fatal("triangle found in a path")
	}
}

func TestNonInducedMatching(t *testing.T) {
	// pattern path 0-1-2 must embed into a triangle even though the
	// pattern non-edge (0,2) maps onto a target edge.
	path := graph.New(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if _, found, _ := Solve(NewSpace(path, tri), core.Sequential, core.Config{}); !found {
		t.Fatal("non-induced embedding rejected")
	}
}

func TestEmptyPattern(t *testing.T) {
	p := graph.New(0)
	target := graph.Random(5, 0.5, 1)
	s := NewSpace(p, target)
	// Root already satisfies target objective 0.
	res := core.Decide(core.Sequential, s, Root(s), DecisionProblem(s), core.Config{})
	if !res.Found {
		t.Fatal("empty pattern should trivially embed")
	}
}

func TestDegreeFilter(t *testing.T) {
	star := graph.New(4) // centre has degree 3
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	cycle := graph.New(4) // all degrees 2
	cycle.AddEdge(0, 1)
	cycle.AddEdge(1, 2)
	cycle.AddEdge(2, 3)
	cycle.AddEdge(3, 0)
	s := NewSpace(star, cycle)
	g := Gen(s, Root(s))
	if g.HasNext() {
		t.Fatal("degree filter should leave no candidates for the star centre")
	}
}

func TestGeneratorYieldsValidPartialAssignments(t *testing.T) {
	s := GenerateSat(20, 0.5, 6, 0.2, 3)
	g := Gen(s, Root(s))
	for g.HasNext() {
		child := g.Next()
		if child.Depth() != 1 {
			t.Fatalf("depth = %d", child.Depth())
		}
		if !child.Used.Contains(int(child.Assigned[0])) {
			t.Fatal("used set out of sync")
		}
	}
}

func TestNDSDominates(t *testing.T) {
	cases := []struct {
		target, pattern []int32
		want            bool
	}{
		{[]int32{5, 3, 2}, []int32{4, 3}, true},
		{[]int32{5, 3, 2}, []int32{5, 3, 2}, true},
		{[]int32{5, 3}, []int32{5, 3, 1}, false}, // too short
		{[]int32{5, 2, 2}, []int32{5, 3}, false}, // pointwise fail
		{[]int32{}, []int32{}, true},
		{[]int32{1}, nil, true},
	}
	for i, c := range cases {
		if got := ndsDominates(c.target, c.pattern); got != c.want {
			t.Errorf("case %d: ndsDominates(%v, %v) = %v", i, c.target, c.pattern, got)
		}
	}
}

func TestNeighbourhoodDegreesSorted(t *testing.T) {
	g := graph.Random(20, 0.4, 5)
	nds := neighbourhoodDegrees(g)
	for v, seq := range nds {
		if len(seq) != g.Degree(v) {
			t.Fatalf("vertex %d: sequence length %d, degree %d", v, len(seq), g.Degree(v))
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] > seq[i-1] {
				t.Fatalf("vertex %d: sequence not descending: %v", v, seq)
			}
		}
	}
}

func TestNDSFilterNeverRemovesSolutions(t *testing.T) {
	// brute force (no NDS filter) vs the filtered search on random
	// instances around the phase transition
	for seed := int64(50); seed < 62; seed++ {
		s := GenerateRandom(12, 0.5, 5, 0.5, seed)
		want := bruteForce(s.P, s.T)
		_, found, _ := Solve(s, core.Sequential, core.Config{})
		if found != want {
			t.Errorf("seed %d: filter changed satisfiability: got %v, want %v", seed, found, want)
		}
	}
}

func TestNDSFilterPrunesCandidates(t *testing.T) {
	// A star pattern whose centre's neighbours all have degree >= 2
	// cannot map onto a star whose leaves are degree-1, even though
	// plain degree counting allows it.
	pattern := graph.New(4) // path 0-1-2 plus 1-3: vertex 1 has nbr degs [2,1,1]... build explicit:
	pattern.AddEdge(0, 1)
	pattern.AddEdge(1, 2)
	pattern.AddEdge(2, 3)  // path of 4: nds(1) = [2,1]
	target := graph.New(5) // star K1,4: centre nds = [1,1,1,1]
	for leaf := 1; leaf < 5; leaf++ {
		target.AddEdge(0, leaf)
	}
	s := NewSpace(pattern, target)
	if _, found, _ := Solve(s, core.Sequential, core.Config{}); found {
		t.Fatal("path of 4 embedded into a star")
	}
}

func TestVerifyEmbeddingRejects(t *testing.T) {
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	path := graph.New(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	if VerifyEmbedding(tri, path, []int{0, 1, 2}) {
		t.Fatal("accepted non-edge-preserving mapping")
	}
	if VerifyEmbedding(tri, tri, []int{0, 0, 1}) {
		t.Fatal("accepted non-injective mapping")
	}
	if VerifyEmbedding(tri, tri, []int{0, 1}) {
		t.Fatal("accepted short mapping")
	}
}
