package bitset

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding for sets crossing process boundaries (the distributed
// transport serialises search-tree nodes, and clique nodes are mostly
// bitsets): capacity as a little-endian uint64 followed by the raw
// words. Fixed-width framing keeps Encode/Decode allocation-free
// beyond the output buffer and independent of gob's reflection.

// GobEncode implements gob.GobEncoder.
func (s Set) GobEncode() ([]byte, error) {
	buf := make([]byte, 8+8*len(s.words))
	binary.LittleEndian.PutUint64(buf, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(buf[8+8*i:], w)
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder. The payload is validated
// before any allocation: decoders receive wire bytes, and a truncated
// or corrupt frame must surface as an error, not a panic or an
// attacker-chosen allocation size.
func (s *Set) GobDecode(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("bitset: gob payload truncated: %d bytes", len(b))
	}
	n64 := binary.LittleEndian.Uint64(b)
	if n64 > uint64(len(b))*wordBits {
		return fmt.Errorf("bitset: gob payload capacity %d exceeds %d payload bytes", n64, len(b))
	}
	n := int(n64)
	words := (n + wordBits - 1) / wordBits
	if len(b) < 8+8*words {
		return fmt.Errorf("bitset: gob payload truncated: capacity %d needs %d bytes, have %d", n, 8+8*words, len(b))
	}
	*s = New(n)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(b[8+8*i:])
	}
	return nil
}
