package core

// runBudget is the Budget coordination, implementing the (spawn-budget)
// rule (Listing 4): each task runs a sequential backtracking search,
// counting backtracks; when the count reaches the budget, the
// bottom-most non-exhausted generator — the unexplored nodes at lowest
// depth, i.e. closest to the root — is drained into the workpool in
// traversal order and the counter resets. Long-running tasks thereby
// periodically shed their largest pending subtrees. Generators come
// from the worker's recycling cache, one per stack level; draining a
// generator into the pool copies out node values only, so the
// generator itself never escapes the worker. The expansion stack (and
// the per-level discrepancy/yield counters ordered scheduling needs to
// stamp shed tasks with priorities) lives in the worker's reusable
// scratch, so running a task allocates nothing.
func runBudget[S, N any](e *engine[S, N], visitors []visitor[N], root N) {
	budget := e.cfg.Budget
	e.runPoolWorkers(root, visitors, func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
		defer e.finishTask(w, t)
		if e.cancel.cancelled() {
			return
		}
		if v.visit(t.Node) != descend {
			return
		}
		gc := e.caches[w]
		sc := e.scratch[w]
		stack := sc.stack[:0]
		disc := sc.disc[:0]
		yields := sc.yields[:0]
		defer func() {
			sc.stack, sc.disc, sc.yields = stack[:0], disc, yields
		}()
		stack = append(stack, gc.gen(0, t.Node))
		disc = append(disc, t.Prio)
		yields = append(yields, 0)
		backtracks := int64(0)
		for len(stack) > 0 {
			if e.cancel.cancelled() {
				return
			}
			if backtracks >= budget {
				if e.memPressured(w) {
					// Memory pressure suspends shedding: keep searching
					// this stack in place (the budget re-arms, so the
					// check repeats) until the pool is back under its
					// soft threshold.
					backtracks = 0
					continue
				}
				for i := 0; i < len(stack); i++ {
					if stack[i].HasNext() {
						for stack[i].HasNext() {
							child := stack[i].Next()
							e.spawnTask(w, sh, Task[N]{
								Node:  child,
								Depth: t.Depth + i + 1,
								Prio:  e.prio.childPrio(disc[i], int(yields[i]), child),
								fam:   t.fam,
							})
							yields[i]++
						}
						break
					}
				}
				backtracks = 0
				continue
			}
			top := len(stack) - 1
			g := stack[top]
			if !g.HasNext() {
				stack[top] = nil
				stack = stack[:top]
				disc = disc[:top]
				yields = yields[:top]
				sh.Backtracks++
				backtracks++
				continue
			}
			child := g.Next()
			childIdx := yields[top]
			yields[top]++
			switch v.visit(child) {
			case descend:
				stack = append(stack, gc.gen(len(stack), child))
				disc = append(disc, discChild(disc[top], int(childIdx)))
				yields = append(yields, 0)
			case pruneLevel:
				stack[top] = nil
				stack = stack[:top]
				disc = disc[:top]
				yields = yields[:top]
				sh.Backtracks++
				backtracks++
			}
		}
	})
}
