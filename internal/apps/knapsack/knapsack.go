// Package knapsack implements the 0/1 Knapsack optimisation search of
// the paper's evaluation: choose a subset of items maximising profit
// subject to a weight capacity, by branch and bound over the inclusion
// tree with the Dantzig fractional upper bound.
package knapsack

import (
	"math/rand"
	"sort"

	"yewpar/internal/core"
)

// Item is a knapsack item.
type Item struct {
	Profit int64
	Weight int64
}

// Space is the search space: items in non-increasing profit-density
// order, and the capacity.
type Space struct {
	Items []Item
	Cap   int64
}

// NewSpace copies and density-sorts the items (the classic heuristic
// order: children that include high-density items come first, and the
// fractional bound is computed greedily along the same order).
func NewSpace(items []Item, capacity int64) *Space {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(i, j int) bool {
		// p_i/w_i > p_j/w_j without division
		return sorted[i].Profit*sorted[j].Weight > sorted[j].Profit*sorted[i].Weight
	})
	return &Space{Items: sorted, Cap: capacity}
}

// Node is a partial solution: items before Pos have been decided, and
// the node's own inclusion set is feasible (Weight <= Cap). Every node
// is itself a candidate solution, so Objective is just its profit.
type Node struct {
	Pos    int // next item index eligible for inclusion
	Profit int64
	Weight int64
}

// Root is the empty knapsack.
func Root(_ *Space) Node { return Node{} }

// gen yields one child per still-fitting item at index >= Pos: the
// solution extended by that item. Children appear in density order.
type gen struct {
	s      *Space
	parent Node
	i      int
}

var _ core.ResettableGenerator[*Space, Node] = (*gen)(nil)

// Gen is the core.GenFactory for knapsack.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	g := &gen{}
	g.Reset(s, parent)
	return g
}

// Reset implements core.ResettableGenerator; the generator is three
// words of cursor state, so recycling it makes expansion allocation-
// free.
func (g *gen) Reset(s *Space, parent Node) {
	g.s, g.parent, g.i = s, parent, parent.Pos
	g.skip()
}

// skip advances i to the next item that fits.
func (g *gen) skip() {
	for g.i < len(g.s.Items) && g.parent.Weight+g.s.Items[g.i].Weight > g.s.Cap {
		g.i++
	}
}

func (g *gen) HasNext() bool { return g.i < len(g.s.Items) }

func (g *gen) Next() Node {
	it := g.s.Items[g.i]
	child := Node{
		Pos:    g.i + 1,
		Profit: g.parent.Profit + it.Profit,
		Weight: g.parent.Weight + it.Weight,
	}
	g.i++
	g.skip()
	return child
}

// Objective is the node's profit (maximised).
func Objective(_ *Space, n Node) int64 { return n.Profit }

// UpperBound is the Dantzig bound: fill the remaining capacity greedily
// in density order, taking a fractional piece of the first item that
// does not fit. Profits are integral, so the floor of the LP bound
// still dominates every integral completion.
func UpperBound(s *Space, n Node) int64 {
	capacity := s.Cap - n.Weight
	bound := n.Profit
	for i := n.Pos; i < len(s.Items); i++ {
		it := s.Items[i]
		if it.Weight <= capacity {
			capacity -= it.Weight
			bound += it.Profit
			continue
		}
		bound += it.Profit * capacity / it.Weight
		break
	}
	return bound
}

// OptProblem returns the knapsack optimisation-search problem.
func OptProblem() core.OptProblem[*Space, Node] {
	return core.OptProblem[*Space, Node]{
		Gen:       Gen,
		Objective: Objective,
		Bound:     UpperBound,
	}
}

// Solve maximises profit with the given skeleton.
func Solve(s *Space, coord core.Coordination, cfg core.Config) (int64, core.Stats) {
	res := core.Opt(coord, s, Root(s), OptProblem(), cfg)
	return res.Objective, res.Stats
}

// Correlation selects the instance family, following the classic
// Pisinger/Martello-Toth generator taxonomy.
type Correlation int

const (
	// Uncorrelated draws profits and weights independently.
	Uncorrelated Correlation = iota
	// WeaklyCorrelated draws profit near weight (hard-ish).
	WeaklyCorrelated
	// StronglyCorrelated sets profit = weight + R/10 (hard).
	StronglyCorrelated
	// SubsetSum sets profit = weight with even weights but an odd
	// capacity, the hardest family for Dantzig-bound branch and
	// bound: the optimum is unreachable by one unit while the
	// fractional bound equals the capacity almost everywhere, so
	// pruning barely bites and the search degenerates towards full
	// enumeration.
	SubsetSum
)

// Generate builds a deterministic random instance of n items with
// coefficients in [1, r], capacity half the total weight.
func Generate(n int, r int64, corr Correlation, seed int64) *Space {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	var total int64
	for i := range items {
		w := 1 + rng.Int63n(r)
		var p int64
		switch corr {
		case WeaklyCorrelated:
			p = w + rng.Int63n(r/5+1) - r/10
			if p < 1 {
				p = 1
			}
		case StronglyCorrelated:
			p = w + r/10
		case SubsetSum:
			w = 2 * (1 + rng.Int63n(r/2))
			p = w
		default:
			p = 1 + rng.Int63n(r)
		}
		items[i] = Item{Profit: p, Weight: w}
		total += w
	}
	capacity := total / 2
	if corr == SubsetSum {
		capacity |= 1 // odd capacity: exact fill impossible
	}
	return NewSpace(items, capacity)
}
