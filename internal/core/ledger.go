package core

import (
	"sync"
	"sync/atomic"

	"yewpar/internal/dist"
)

// The supervised-task ledger is the engine half of the fault-tolerance
// protocol (the transport half is death detection and the kAck/kDeath
// vocabulary of wire protocol v4). Branch-and-bound task execution is
// idempotent and replay-safe — re-running a subtree can change which
// nodes are visited, never the answer — so a locality that hands a
// task over the wire retains a copy keyed by a freshly minted
// hand-over id. The copy is retired when the thief acks the id, which
// it does only once the entire subtree rooted at the task has
// completed (tracked by the family counters below). When a peer dies,
// the unacked entries handed to it are exactly the subtree roots the
// dead rank was holding, and re-enqueueing them locally loses nothing:
// the stronger incumbent accumulated since the original hand-over
// usually makes the replay far cheaper than the first attempt.
//
// Accounting is what makes this safe for termination detection. A
// handed-over task's registration (+1 by whoever spawned it here)
// stays outstanding until the ack arrives — the ledger entry *is* the
// registration's continuation — so replaying an entry is
// accounting-neutral, and the coordinator can reconcile a death by
// dropping only the dead rank's own contribution.

// family supervises one received hand-over: the counter covers the
// received task itself, every locally spawned descendant task, and
// every descendant re-handed to another peer (whose own ledger entry
// defers the decrement until its ack). When the counter drains, the
// whole subtree has provably completed — here or downstream — and the
// origin is acked. Chaining entries to families makes supervision
// transitive: an origin's entry survives until its subtree is done
// everywhere, so even a chain of deaths can be replayed from the
// earliest survivor.
type family struct {
	id      uint64
	pending atomic.Int64
}

func newFamily(id uint64) *family {
	f := &family{id: id}
	f.pending.Store(1)
	return f
}

// ledgerEntry is one retained hand-over: who holds the task, the task
// itself (ready to re-enqueue), and the family whose drain the ack
// will continue.
type ledgerEntry[N any] struct {
	thief int
	task  Task[N]
	fam   *family
}

// ledger is one locality's supervision table. Bounded: when cap
// entries are outstanding, further hand-overs are refused (the victim
// keeps its task and the thief looks elsewhere), which backpressures
// steal traffic rather than growing retention without limit.
type ledger[N any] struct {
	mu      sync.Mutex
	rank    int
	cap     int
	seq     uint64
	entries map[uint64]ledgerEntry[N]
	dead    map[int]bool

	peak     int
	replayed int64
}

func newLedger[N any](rank, capacity int) *ledger[N] {
	return &ledger[N]{
		rank:    rank,
		cap:     capacity,
		entries: make(map[uint64]ledgerEntry[N]),
		dead:    make(map[int]bool),
	}
}

// handOver mints an id and retains t under it. It refuses (id 0, false)
// when the thief is already known dead — the hand-over would be lost
// the moment it left — or when the ledger is at capacity.
func (l *ledger[N]) handOver(thief int, t Task[N]) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead[thief] || len(l.entries) >= l.cap {
		return 0, false
	}
	l.seq++
	id := dist.TaskID(l.rank, l.seq)
	l.entries[id] = ledgerEntry[N]{thief: thief, task: t, fam: t.fam}
	if len(l.entries) > l.peak {
		l.peak = len(l.entries)
	}
	return id, true
}

// retire removes an acked entry, returning the family its drain
// continues (nil when none) and whether the entry was still present.
// Acks for entries already replayed by a death race are ignored —
// retire is idempotent, which is what keeps a late ack from a
// half-dead peer from corrupting the count.
func (l *ledger[N]) retire(id uint64) (*family, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return nil, false
	}
	delete(l.entries, id)
	return e.fam, true
}

// reap marks a rank dead (permanently refusing future hand-overs to
// it) and removes every entry it was holding, returning the retained
// tasks for local re-enqueueing.
func (l *ledger[N]) reap(rank int) []Task[N] {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead[rank] {
		// Already reaped; entries handed over before the death was
		// known are impossible (handOver checks dead), so there is
		// nothing new to collect.
		return nil
	}
	l.dead[rank] = true
	var tasks []Task[N]
	for id, e := range l.entries {
		if e.thief == rank {
			tasks = append(tasks, e.task)
			delete(l.entries, id)
		}
	}
	l.replayed += int64(len(tasks))
	return tasks
}

// reapAll removes every outstanding entry regardless of holder,
// returning the retained tasks for local re-enqueueing. Used when a
// coordinator that RELAYED completion acks dies (star topology): any
// ack could have died unrelayed in its buffers, leaving the entry —
// and the registration it continues — outstanding forever. Replaying
// every entry is the only safe continuation: execution is idempotent,
// a replica racing the original holder's completion is at worst
// re-explored work, and retire stays a no-op for whichever ack
// arrives after the reap. Unlike reap no rank is marked dead, so
// hand-overs resume once the promoted coordinator is serving.
func (l *ledger[N]) reapAll() []Task[N] {
	l.mu.Lock()
	defer l.mu.Unlock()
	var tasks []Task[N]
	for id, e := range l.entries {
		tasks = append(tasks, e.task)
		delete(l.entries, id)
	}
	l.replayed += int64(len(tasks))
	return tasks
}

// stats reports the retention peak and replayed-task count.
func (l *ledger[N]) stats() (peak int, replayed int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak, l.replayed
}

// outstanding reports the current number of retained entries.
func (l *ledger[N]) outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
