package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LoopbackOptions tunes the in-process network.
type LoopbackOptions struct {
	// StealLatency, if positive, is slept on the thief's goroutine
	// before each steal request is served, simulating the network cost
	// of a remote steal.
	StealLatency time.Duration
	// BoundLatency, if positive, delays delivery of bound broadcasts
	// to peer localities, simulating the PGAS bound-broadcast latency:
	// peers prune against stale bounds in the meantime.
	BoundLatency time.Duration
	// Wave selects mesh-style termination: instead of closing Done when
	// the globally shared live-task count hits zero, each rank keeps
	// its own counter and a Safra-style token wave (wave.go) detects
	// quiescence — the in-process model of the mesh topology, and the
	// reference implementation the wave's property tests drive. The
	// shared counters are still maintained for LiveAt observability,
	// but they no longer decide termination.
	Wave bool
	// Fault, if non-nil, injects network faults into the in-process
	// links: steals across a severed partition fail like a timed-out
	// wire steal, bound broadcasts and acks to severed peers are
	// queued and delivered at Heal, and per-link latency adds to the
	// steal cost. Loopback partitions are payload-plane only — no
	// liveness watchdog runs here, so a partition never kills a rank
	// (deaths stay 0), which is exactly the contract the session layer
	// gives the wire transports under LinkGrace.
	Fault *FaultPlan
}

// LoopbackNetwork is a set of in-process localities connected by
// direct calls: the Transport implementation backing single-process
// runs, where "localities" are groups of goroutines sharing an address
// space. Latency injection makes it a faithful stand-in for a real
// network in experiments, and its simplicity makes it the reference
// implementation for the Transport conformance suite — including the
// fault-tolerance contract, via the injectable Kill.
type LoopbackNetwork struct {
	opts LoopbackOptions
	trs  []*loopback

	live     atomic.Int64
	liveAt   []atomic.Int64 // per-rank contribution to live (reconciled on death)
	done     chan struct{}
	doneOnce sync.Once

	// promoted is the rank that adopted the coordinator role after
	// Kill(0), -1 while rank 0 lives. The loopback stand-in for v7
	// failover: shared memory needs no state replication, so takeover
	// is just the gather responsibility moving to the lowest survivor.
	promoted atomic.Int32

	inc incumbentBox

	gatherMu    sync.Mutex
	blobs       [][]byte
	contributed []bool
	have        int
	gathered    chan struct{}
}

// NewLoopback creates a connected network of n localities.
func NewLoopback(n int, opts LoopbackOptions) *LoopbackNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("dist: loopback network of %d localities", n))
	}
	net := &LoopbackNetwork{
		opts:        opts,
		trs:         make([]*loopback, n),
		liveAt:      make([]atomic.Int64, n),
		done:        make(chan struct{}),
		blobs:       make([][]byte, n),
		contributed: make([]bool, n),
		gathered:    make(chan struct{}),
	}
	net.promoted.Store(-1)
	for i := range net.trs {
		net.trs[i] = &loopback{net: net, rank: i, deaths: newDeathBox(n)}
	}
	if opts.Wave {
		for i := range net.trs {
			t := net.trs[i]
			t.wave = newWaveNode(i, n, func(to int, tok waveToken) {
				peer := net.trs[to]
				if !peer.closed.Load() {
					// Asynchronous like a wire: the token leaves this
					// goroutine, and a send to a dying rank is simply
					// lost (the watchdog regenerates the probe).
					go peer.wave.onToken(tok)
				}
			}, func() {
				net.doneOnce.Do(func() { close(net.done) })
			})
		}
		go net.waveLoop()
	}
	return net
}

// waveLoop paces every live rank's wave, standing in for the wire
// transports' flush-quantum tickers.
func (ln *LoopbackNetwork) waveLoop() {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ln.done:
			return
		case <-t.C:
			anyLive := false
			for _, tr := range ln.trs {
				if !tr.closed.Load() {
					anyLive = true
					tr.wave.tick()
				}
			}
			if !anyLive {
				return
			}
		}
	}
}

// Transports returns the network's localities, indexed by rank.
func (ln *LoopbackNetwork) Transports() []Transport {
	ts := make([]Transport, len(ln.trs))
	for i, tr := range ln.trs {
		ts[i] = tr
	}
	return ts
}

// Close closes every locality of the network.
func (ln *LoopbackNetwork) Close() error {
	for _, tr := range ln.trs {
		tr.Close()
	}
	return nil
}

// Kill simulates the death of a locality mid-search, the loopback
// stand-in for a SIGKILLed worker process: the rank's handler is
// detached (steals against it fail, deliveries to it are dropped), its
// own outgoing operations become no-ops (a zombie caller can no longer
// touch the shared search state), its outstanding live-task
// contribution is reconciled away, its gather slot is filled with nil,
// and every survivor is notified through Deaths. Idempotent.
func (ln *LoopbackNetwork) Kill(rank int) {
	if rank < 0 || rank >= len(ln.trs) {
		return
	}
	t := ln.trs[rank]
	// The gate write-lock excludes every in-flight AddTasks of the
	// dying endpoint: once closed is set under it, no zombie delta can
	// land after the reconciliation below, which would wedge (a late
	// +1) or prematurely zero (a late -1) the live count.
	t.gateMu.Lock()
	if !t.closed.CompareAndSwap(false, true) {
		t.gateMu.Unlock()
		return
	}
	t.gateMu.Unlock()
	ln.contribute(rank, nil)
	for _, peer := range ln.trs {
		if peer.rank != rank && !peer.closed.Load() {
			peer.deaths.announce(rank)
			if ln.opts.Wave {
				// Survivors drop the corpse from the ring; the lowest
				// surviving rank inherits the initiator role.
				peer.wave.markDead(rank)
			}
		}
	}
	if rank == 0 {
		// Coordinator death: the lowest survivor adopts the terminal
		// collective (Gather) and the result-owner role.
		for r := 1; r < len(ln.trs); r++ {
			if !ln.trs[r].closed.Load() {
				ln.promoted.Store(int32(r))
				break
			}
		}
	}
	ln.reconcile(rank)
}

// LiveAt reports a rank's current contribution to the global live-task
// count. Tests use it to kill a rank at a moment it provably holds
// registered work.
func (ln *LoopbackNetwork) LiveAt(rank int) int64 {
	if rank < 0 || rank >= len(ln.liveAt) {
		return 0
	}
	return ln.liveAt[rank].Load()
}

// reconcile removes a dead rank's outstanding live-task contribution:
// the tasks it was holding can never complete here. Tasks it received
// from survivors stay covered by their victims' ledger registrations,
// which is what makes the survivors' replay accounting-neutral.
func (ln *LoopbackNetwork) reconcile(rank int) {
	removed := ln.liveAt[rank].Swap(0)
	if removed == 0 {
		return
	}
	if ln.live.Add(-removed) == 0 && removed > 0 && !ln.opts.Wave {
		ln.doneOnce.Do(func() { close(ln.done) })
	}
}

func (ln *LoopbackNetwork) addTasks(rank int, delta int64) {
	// The shared counters stay maintained for LiveAt observability, but
	// in wave mode they never decide termination: that is the ring's
	// job, fed through each rank's own counter.
	ln.liveAt[rank].Add(delta)
	if ln.live.Add(delta) == 0 && delta < 0 && !ln.opts.Wave {
		ln.doneOnce.Do(func() { close(ln.done) })
	}
	if ln.opts.Wave {
		ln.trs[rank].wave.add(delta)
	}
}

// contribute records one locality's gather payload (or its death, with
// a nil payload); the last contribution releases rank 0.
func (ln *LoopbackNetwork) contribute(rank int, blob []byte) {
	ln.gatherMu.Lock()
	defer ln.gatherMu.Unlock()
	if ln.contributed[rank] {
		return
	}
	ln.contributed[rank] = true
	ln.blobs[rank] = blob
	ln.have++
	if ln.have == len(ln.trs) {
		close(ln.gathered)
	}
}

// loopback is one locality's endpoint in a LoopbackNetwork.
type loopback struct {
	net  *LoopbackNetwork
	rank int
	h    atomic.Value // Handler
	// gateMu orders AddTasks against Kill: accounting holds the read
	// side, Kill sets closed under the write side, so no delta from a
	// dying endpoint can slip past the death reconciliation.
	gateMu sync.RWMutex
	closed atomic.Bool
	deaths *deathBox
	ctr    wireCounters
	wave   *waveNode // nil unless LoopbackOptions.Wave
}

var _ Transport = (*loopback)(nil)
var _ Meter = (*loopback)(nil)
var _ PrioAware = (*loopback)(nil)
var _ IncumbentStore = (*loopback)(nil)
var _ SplitStealer = (*loopback)(nil)
var _ Promoter = (*loopback)(nil)
var _ LinkHealth = (*loopback)(nil)

// Suspected implements LinkHealth: a peer across a severed loopback
// partition is quarantined — the victim order skips it until the heal.
func (t *loopback) Suspected(rank int) bool {
	return t.net.opts.Fault.Severed(t.rank, rank)
}

// Wire implements Meter with logical message counts: the frames a wire
// transport would have sent for the same traffic, and payload bytes
// only — engine runs hand nodes over by reference (no Payload), so
// they report zero bytes, which is the truth of shared memory.
// AddTasks counts no frames — in-process accounting needs none, which
// is exactly the gap the TCP transport's delta coalescing narrows.
func (t *loopback) Wire() WireStats { return t.ctr.snapshot() }

func (t *loopback) Rank() int { return t.rank }

func (t *loopback) Size() int { return len(t.net.trs) }

func (t *loopback) Start(h Handler) { t.h.Store(h) }

func (t *loopback) handler() Handler {
	if t.closed.Load() {
		return nil
	}
	h, _ := t.h.Load().(Handler)
	return h
}

// BestKnown implements IncumbentStore from the network-level retention
// cell (shared: any endpoint answers, rank 0 is the one that asks).
func (t *loopback) BestKnown() (int64, []byte, bool) { return t.net.inc.best() }

// PeerBestPrio implements PrioAware by asking the victim's handler
// directly: shared memory needs no piggybacked summary, so the loopback
// network's answer is exact where a wire transport's is a hint.
func (t *loopback) PeerBestPrio(rank int) (int, bool) {
	if rank < 0 || rank >= len(t.net.trs) || rank == t.rank {
		return 0, false
	}
	sr, ok := t.net.trs[rank].handler().(StealRanker)
	if !ok {
		return 0, false
	}
	p, has := sr.BestStealPrio()
	if !has {
		return PrioNone, true
	}
	if p < 0 {
		p = 0
	}
	return p, true
}

func (t *loopback) Steal(victim int) (WireTask, bool, error) {
	if victim < 0 || victim >= len(t.net.trs) || victim == t.rank {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	if t.closed.Load() {
		return WireTask{}, false, nil
	}
	if t.net.opts.Fault.Severed(t.rank, victim) {
		return WireTask{}, false, nil
	}
	if lat := t.net.opts.StealLatency; lat > 0 {
		time.Sleep(lat)
	}
	if p := t.net.opts.Fault; p != nil {
		if lat := p.latency(t.rank, victim); lat > 0 {
			time.Sleep(lat)
		}
	}
	vh := t.net.trs[victim].handler()
	if vh == nil {
		return WireTask{}, false, nil
	}
	wt, ok := vh.ServeSteal(t.rank)
	t.ctr.framesSent.Add(1) // the request
	t.ctr.framesRecv.Add(1) // the reply
	if ok {
		if t.wave != nil {
			// Blacken BEFORE the stolen task becomes visible: work just
			// migrated here behind any token that already passed.
			t.wave.blacken()
		}
		t.ctr.stealReplies.Add(1)
		t.ctr.stealTasks.Add(1)
		// Logical bytes moved, credited to the sent side (the only
		// side Stats aggregates). Real engine runs pass nodes by
		// reference (nil Payload) and truthfully report zero.
		t.ctr.bytesSent.Add(int64(len(wt.Payload)))
	}
	return wt, ok, nil
}

// SplitSteal is Steal with split semantics: the victim's handler may
// fall back to splitting a running worker's live generator stack when
// its pool is dry. Like Steal it returns one task; a handler serving a
// chunked batch re-homes the extras itself before returning (the
// loopback hand-over is by reference, so ServeSplit callers on this
// network are asked for a single task).
func (t *loopback) SplitSteal(victim int) (WireTask, bool, error) {
	if victim < 0 || victim >= len(t.net.trs) || victim == t.rank {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	if t.closed.Load() {
		return WireTask{}, false, nil
	}
	if t.net.opts.Fault.Severed(t.rank, victim) {
		return WireTask{}, false, nil
	}
	if lat := t.net.opts.StealLatency; lat > 0 {
		time.Sleep(lat)
	}
	if p := t.net.opts.Fault; p != nil {
		if lat := p.latency(t.rank, victim); lat > 0 {
			time.Sleep(lat)
		}
	}
	ts := collectSplit(t.net.trs[victim].handler(), t.rank, 1)
	t.ctr.framesSent.Add(1) // the request
	t.ctr.framesRecv.Add(1) // the reply
	if len(ts) == 0 {
		return WireTask{}, false, nil
	}
	if t.wave != nil {
		// Blacken BEFORE the stolen task becomes visible: work just
		// migrated here behind any token that already passed.
		t.wave.blacken()
	}
	t.ctr.stealReplies.Add(1)
	t.ctr.stealTasks.Add(int64(len(ts)))
	if h := t.handler(); h != nil {
		for _, extra := range ts[1:] {
			h.OnTask(extra)
		}
	}
	for i := range ts {
		t.ctr.bytesSent.Add(int64(len(ts[i].Payload)))
	}
	return ts[0], true, nil
}

func (t *loopback) BroadcastBound(obj int64, node []byte) error {
	if t.closed.Load() {
		return nil
	}
	t.net.inc.keep(obj, node)
	for _, peer := range t.net.trs {
		if peer.rank == t.rank {
			continue
		}
		t.ctr.framesSent.Add(1)
		if plan := t.net.opts.Fault; plan != nil && plan.Severed(t.rank, peer.rank) {
			// The bound crosses the partition when it heals — the
			// loopback model of a session replaying its backlog.
			p := peer
			plan.OnHeal(func() {
				if h := p.handler(); h != nil {
					h.OnBound(t.rank, obj)
				}
			})
			continue
		}
		if lat := t.net.opts.BoundLatency; lat > 0 {
			p := peer
			time.AfterFunc(lat, func() {
				if h := p.handler(); h != nil {
					h.OnBound(t.rank, obj)
				}
			})
			continue
		}
		if h := peer.handler(); h != nil {
			h.OnBound(t.rank, obj)
		}
	}
	return nil
}

func (t *loopback) Cancel(obj int64, witness []byte) error {
	if t.closed.Load() {
		return nil
	}
	t.net.inc.keep(obj, witness)
	for _, peer := range t.net.trs {
		if peer.rank == t.rank {
			continue
		}
		t.ctr.framesSent.Add(1)
		if h := peer.handler(); h != nil {
			h.OnCancel(t.rank)
		}
	}
	return nil
}

// Ack delivers a hand-over completion ack straight to the origin's
// handler. Acks from or to a dead rank are dropped: a zombie must not
// retire a survivor's ledger entry (the entry is what replays the
// subtree it was holding), and a dead origin has no ledger left.
func (t *loopback) Ack(origin int, id uint64) error {
	if origin < 0 || origin >= len(t.net.trs) || origin == t.rank {
		return fmt.Errorf("dist: ack to invalid rank %d", origin)
	}
	if t.closed.Load() {
		return nil
	}
	t.ctr.framesSent.Add(1)
	if plan := t.net.opts.Fault; plan != nil && plan.Severed(t.rank, origin) {
		// Queue the ack for the heal: the origin's ledger entry stays
		// registered across the partition, exactly like a suspended
		// session holding the ack in its retransmit log.
		plan.OnHeal(func() {
			if h := t.net.trs[origin].handler(); h != nil {
				h.OnAck(t.rank, id)
			}
		})
		return nil
	}
	if h := t.net.trs[origin].handler(); h != nil {
		h.OnAck(t.rank, id)
	}
	return nil
}

// AddTasks attributes the delta to this rank; a killed endpoint's
// late accounting is discarded (its contribution was reconciled away).
// The gate read-lock makes discarding exact: Kill cannot reconcile
// between the closed check and the count update.
func (t *loopback) AddTasks(delta int64) {
	t.gateMu.RLock()
	defer t.gateMu.RUnlock()
	if t.closed.Load() {
		return
	}
	t.net.addTasks(t.rank, delta)
}

func (t *loopback) Done() <-chan struct{} { return t.net.done }

func (t *loopback) Deaths() <-chan int { return t.deaths.ch }

// Promoted reports whether this rank adopted the coordinator role
// after a Kill(0).
func (t *loopback) Promoted() bool { return int(t.net.promoted.Load()) == t.rank }

func (t *loopback) Gather(payload []byte) ([][]byte, error) {
	collector := t.rank == 0 || t.Promoted()
	if !collector {
		t.ctr.framesSent.Add(1)
		t.ctr.bytesSent.Add(int64(len(payload)))
	}
	t.net.contribute(t.rank, payload)
	if !collector {
		return nil, nil
	}
	<-t.net.gathered
	t.net.gatherMu.Lock()
	defer t.net.gatherMu.Unlock()
	return t.net.blobs, nil
}

// Close detaches the locality. After normal termination it only
// releases the endpoint; before termination it is a death — the
// locality is abandoning live work — and takes the same path as Kill:
// survivors are notified, the rank's outstanding live contribution is
// reconciled away, and a pending Gather sees a nil payload in its
// slot.
func (t *loopback) Close() error {
	select {
	case <-t.net.done:
		if t.closed.CompareAndSwap(false, true) {
			t.net.contribute(t.rank, nil)
		}
	default:
		t.net.Kill(t.rank)
	}
	return nil
}
