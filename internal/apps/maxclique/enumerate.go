package maxclique

import (
	"yewpar/internal/bitset"
	"yewpar/internal/core"
)

// Enumeration problems over the clique tree. The lazy node generator
// enumerates every clique of the graph exactly once (each clique has
// one generation path: extensions are drawn from a shrinking,
// order-respecting candidate set), so enumeration searches can fold
// over all cliques — the paper's introductory example of the
// enumeration search type is exactly "all maximal cliques in a graph".

// CountCliquesProblem counts every clique in the graph, including the
// empty clique at the root.
func CountCliquesProblem() core.EnumProblem[*Space, Node, int64] {
	return core.EnumProblem[*Space, Node, int64]{
		Gen:       Gen,
		Objective: func(*Space, Node) int64 { return 1 },
		Monoid:    core.SumInt64{},
	}
}

// IsMaximal reports whether the node's clique is maximal: no vertex
// outside it is adjacent to all of its members. (The node's own
// candidate set is not enough — it only holds extensions that respect
// the traversal order — so the common neighbourhood is recomputed
// from the adjacency rows.)
func IsMaximal(s *Space, n Node) bool {
	if n.Size == 0 {
		// The empty clique is maximal only in the edgeless graph…
		// of zero vertices; any vertex extends it otherwise.
		return s.G.N == 0
	}
	common, _ := bitset.MakePair(s.G.N)
	common.Fill()
	surviving := s.G.N
	n.Clique.ForEach(func(v int) bool {
		surviving = bitset.IntersectIntoCount(common, common, s.G.Adj[v])
		return surviving > 0
	})
	// Adjacency excludes self-loops, so members are already absent
	// from their own neighbourhoods; any surviving vertex extends C.
	return surviving == 0
}

// CountMaximalProblem counts the maximal cliques of the graph.
func CountMaximalProblem() core.EnumProblem[*Space, Node, int64] {
	return core.EnumProblem[*Space, Node, int64]{
		Gen: Gen,
		Objective: func(s *Space, n Node) int64 {
			if IsMaximal(s, n) {
				return 1
			}
			return 0
		},
		Monoid: core.SumInt64{},
	}
}

// CliqueProfileProblem counts cliques by size in one traversal,
// returning a vector indexed by clique size (0..maxSize).
func CliqueProfileProblem(maxSize int) core.EnumProblem[*Space, Node, []int64] {
	return core.EnumProblem[*Space, Node, []int64]{
		Gen: Gen,
		Objective: func(_ *Space, n Node) []int64 {
			v := make([]int64, maxSize+1)
			if n.Size <= maxSize {
				v[n.Size] = 1
			}
			return v
		},
		Monoid: core.SumVec{Len: maxSize + 1},
	}
}
