package core

import (
	"testing"
)

func TestShardedPoolOwnerShardsAreIndependent(t *testing.T) {
	p := NewShardedPool[int](DepthPoolKind, 2)
	p.Shard(0).Push(Task[int]{Node: 10, Depth: 1})
	p.Shard(1).Push(Task[int]{Node: 20, Depth: 5})
	if task, ok := p.Shard(0).Pop(); !ok || task.Node != 10 {
		t.Fatalf("shard 0 pop = %v/%v, want 10", task.Node, ok)
	}
	if task, ok := p.Shard(0).Pop(); ok {
		t.Fatalf("shard 0 should be empty, got %v", task.Node)
	}
	if task, ok := p.Shard(1).Pop(); !ok || task.Node != 20 {
		t.Fatalf("shard 1 pop = %v/%v, want 20", task.Node, ok)
	}
}

func TestShardedPoolStealShallowestAcrossShards(t *testing.T) {
	p := NewShardedPool[string](DepthPoolKind, 3)
	p.Shard(0).Push(Task[string]{Node: "d4", Depth: 4})
	p.Shard(1).Push(Task[string]{Node: "d1", Depth: 1})
	p.Shard(1).Push(Task[string]{Node: "d7", Depth: 7})
	p.Shard(2).Push(Task[string]{Node: "d2", Depth: 2})
	// A transport thief must drain the locality shallowest-first
	// regardless of which shard holds each depth.
	want := []string{"d1", "d2", "d4", "d7"}
	for i, w := range want {
		task, ok := p.Steal()
		if !ok || task.Node != w {
			t.Fatalf("steal %d = %q/%v, want %q", i, task.Node, ok, w)
		}
	}
	if _, ok := p.Steal(); ok {
		t.Fatal("pool should be empty")
	}
}

func TestShardedPoolStealExceptSkipsOwnShard(t *testing.T) {
	p := NewShardedPool[string](DepthPoolKind, 2)
	p.Shard(0).Push(Task[string]{Node: "mine", Depth: 0})
	p.Shard(1).Push(Task[string]{Node: "sibling", Depth: 9})
	task, ok := p.StealExcept(0)
	if !ok || task.Node != "sibling" {
		t.Fatalf("StealExcept(0) = %q/%v, want sibling (own shard skipped)", task.Node, ok)
	}
	if _, ok := p.StealExcept(0); ok {
		t.Fatal("own shard must stay invisible to StealExcept")
	}
	if task, ok := p.Shard(0).Pop(); !ok || task.Node != "mine" {
		t.Fatalf("own shard lost its task: %v/%v", task.Node, ok)
	}
}

func TestShardedPoolRoundRobinPushAndSize(t *testing.T) {
	p := NewShardedPool[int](DepthPoolKind, 3)
	for i := 0; i < 9; i++ {
		p.Push(Task[int]{Node: i, Depth: 0})
	}
	if p.Size() != 9 {
		t.Fatalf("Size = %d, want 9", p.Size())
	}
	for i := 0; i < 3; i++ {
		if n := p.Shard(i).Size(); n != 3 {
			t.Fatalf("shard %d holds %d tasks, want 3 (round-robin)", i, n)
		}
	}
}

func TestShardedPoolSingleShardIsSharedPool(t *testing.T) {
	// PoolShards=1 is the pre-sharding oracle: everything behaves like
	// one DepthPool.
	p := NewShardedPool[string](DepthPoolKind, 1)
	p.Push(Task[string]{Node: "a", Depth: 2})
	p.Push(Task[string]{Node: "b", Depth: 1})
	if task, _ := p.Pop(); task.Node != "a" {
		t.Fatalf("Pop = %q, want deepest-first a", task.Node)
	}
	if task, _ := p.Steal(); task.Node != "b" {
		t.Fatalf("Steal = %q, want b", task.Node)
	}
}

func TestShardedPoolConcurrent(t *testing.T) {
	poolConcurrencyCheck(t, NewShardedPool[int](DepthPoolKind, 4))
	poolConcurrencyCheck(t, NewShardedPool[int](DequeKind, 4))
}

func TestDepthPoolMinDepth(t *testing.T) {
	p := NewDepthPool[int]()
	if d := p.MinDepth(); d != -1 {
		t.Fatalf("empty MinDepth = %d, want -1", d)
	}
	p.Push(Task[int]{Node: 1, Depth: 5})
	p.Push(Task[int]{Node: 2, Depth: 3})
	if d := p.MinDepth(); d != 3 {
		t.Fatalf("MinDepth = %d, want 3", d)
	}
	p.Steal()
	if d := p.MinDepth(); d != 5 {
		t.Fatalf("MinDepth after steal = %d, want 5", d)
	}
	p.Pop()
	if d := p.MinDepth(); d != -1 {
		t.Fatalf("drained MinDepth = %d, want -1", d)
	}
}

func TestDepthPoolReleasesLargeBuckets(t *testing.T) {
	p := NewDepthPool[int]()
	const n = 4 * bucketRetainCap
	for i := 0; i < n; i++ {
		p.Push(Task[int]{Node: i, Depth: 2})
	}
	for i := 0; i < n; i++ {
		if _, ok := p.Pop(); !ok {
			t.Fatalf("pop %d: pool ran dry", i)
		}
	}
	if c := cap(p.buckets[2]); c != 0 {
		t.Fatalf("emptied large bucket retains capacity %d, want released (0)", c)
	}
	// Small buckets stay warm for reuse.
	for i := 0; i < 4; i++ {
		p.Push(Task[int]{Node: i, Depth: 1})
	}
	for i := 0; i < 4; i++ {
		p.Pop()
	}
	if c := cap(p.buckets[1]); c == 0 {
		t.Fatal("small emptied bucket should keep its backing array")
	}
	// And a released bucket still works afterwards.
	p.Push(Task[int]{Node: 99, Depth: 2})
	if task, ok := p.Pop(); !ok || task.Node != 99 {
		t.Fatalf("bucket unusable after release: %v/%v", task.Node, ok)
	}
}

// TestIntraLocalityStealDeterministic drives the topology directly:
// a worker with an empty shard must rob its sibling's shard
// (shallowest-first) without touching the transport.
func TestIntraLocalityStealDeterministic(t *testing.T) {
	cfg := Config{Workers: 3, Localities: 1}.withDefaults()
	fab := newLoopbackFabric[string](cfg)
	defer fab.close()
	tp := newTopology(fab, cfg)

	tp.push(0, Task[string]{Node: "deep", Depth: 6})
	tp.push(0, Task[string]{Node: "shallow", Depth: 1})
	tp.push(1, Task[string]{Node: "mid", Depth: 3})

	var sh WorkerStats
	// Worker 2 owns an empty shard: it must steal the shallowest task
	// across its siblings.
	task, ok := tp.popOrSteal(2, &sh)
	if !ok || task.Node != "shallow" {
		t.Fatalf("worker 2 got %q/%v, want shallow", task.Node, ok)
	}
	if sh.LocalSteals != 1 {
		t.Fatalf("LocalSteals = %d, want 1", sh.LocalSteals)
	}
	// Worker 0 still pops its own shard deepest-first, no steal
	// recorded.
	task, ok = tp.popOrSteal(0, &sh)
	if !ok || task.Node != "deep" {
		t.Fatalf("worker 0 got %q/%v, want deep", task.Node, ok)
	}
	if sh.LocalSteals != 1 {
		t.Fatalf("own-shard pop counted as steal: %d", sh.LocalSteals)
	}
	// Worker 0, now empty, robs worker 1.
	task, ok = tp.popOrSteal(0, &sh)
	if !ok || task.Node != "mid" || sh.LocalSteals != 2 {
		t.Fatalf("worker 0 sibling steal got %q/%v (LocalSteals=%d)", task.Node, ok, sh.LocalSteals)
	}
	// Everything drained: no transport peers, so popOrSteal reports
	// empty.
	if _, ok := tp.popOrSteal(1, &sh); ok {
		t.Fatal("empty locality yielded a task")
	}
}

// TestWorkerShardAssignment pins the worker → (locality, shard)
// mapping: workers spread round-robin over localities, then over the
// shards within each locality.
func TestWorkerShardAssignment(t *testing.T) {
	cfg := Config{Workers: 6, Localities: 2}.withDefaults()
	fab := newLoopbackFabric[int](cfg)
	defer fab.close()
	tp := newTopology(fab, cfg)
	if got := tp.pools[0].Shards(); got != 3 {
		t.Fatalf("locality 0 has %d shards, want 3", got)
	}
	wantLoc := []int{0, 1, 0, 1, 0, 1}
	wantShard := []int{0, 0, 1, 1, 2, 2}
	for w := 0; w < cfg.Workers; w++ {
		if tp.workerLoc[w] != wantLoc[w] || tp.workerShard[w] != wantShard[w] {
			t.Fatalf("worker %d → (%d,%d), want (%d,%d)",
				w, tp.workerLoc[w], tp.workerShard[w], wantLoc[w], wantShard[w])
		}
	}

	// The ablation pins everyone to the single shared shard.
	cfg1 := Config{Workers: 4, Localities: 1, PoolShards: 1}.withDefaults()
	fab1 := newLoopbackFabric[int](cfg1)
	defer fab1.close()
	tp1 := newTopology(fab1, cfg1)
	if tp1.pools[0].Shards() != 1 {
		t.Fatalf("PoolShards=1 built %d shards", tp1.pools[0].Shards())
	}
	for w := 0; w < cfg1.Workers; w++ {
		if tp1.workerShard[w] != 0 {
			t.Fatalf("worker %d shard %d, want 0", w, tp1.workerShard[w])
		}
	}
}
