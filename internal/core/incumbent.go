package core

import (
	"math"
	"sync"
	"sync/atomic"

	"yewpar/internal/dist"
)

type paddedInt64 struct {
	v atomic.Int64
	_ [7]int64
}

// incumbent is the knowledge-management substrate of Section 4.3: an
// authoritative incumbent (best node + objective) for the localities
// hosted in this process, plus one cached bound per locality.
// Strengthening broadcasts the new bound over each locality's
// transport; peers — in-process or across the network — learn it after
// the transport's delivery latency and merge it monotonically, so
// remote workers may prune against stale bounds in the meantime.
// That loses pruning opportunities, never correctness, because pruning
// is only ever justified by a bound the search has actually proven.
//
// In a distributed deployment each process holds one locality and its
// own authoritative incumbent; the coordinator reconciles them in the
// final gather.
type incumbent[N any] struct {
	mu      sync.Mutex
	node    N
	has     bool
	bestObj int64

	caches []paddedInt64
	trs    []dist.Transport // parallel to caches; broadcast targets
	bcasts atomic.Int64     // bound broadcasts sent (metrics)

	// encode, when set (wire deployments), serialises the incumbent
	// node onto its bound broadcasts, so the transport can retain the
	// best (obj, node) pair at rank 0 and the optimum survives the
	// death of the locality that found it. In-process deployments
	// leave it nil: all localities share this incumbent anyway.
	encode func(N) ([]byte, error)
}

// newIncumbent creates the incumbent for the given in-process locality
// transports (one bound cache per locality).
func newIncumbent[N any](trs []dist.Transport) *incumbent[N] {
	in := &incumbent[N]{
		bestObj: math.MinInt64,
		caches:  make([]paddedInt64, len(trs)),
		trs:     trs,
	}
	for i := range in.caches {
		in.caches[i].v.Store(math.MinInt64)
	}
	return in
}

// newLocalIncumbent creates a single-locality incumbent with no peers
// to notify — plain deterministic B&B bookkeeping, used by phases that
// must not leak knowledge (the replicable skeleton).
func newLocalIncumbent[N any]() *incumbent[N] {
	in := &incumbent[N]{bestObj: math.MinInt64, caches: make([]paddedInt64, 1)}
	in.caches[0].v.Store(math.MinInt64)
	return in
}

// localBest returns the bound as currently known at a locality.
func (in *incumbent[N]) localBest(loc int) int64 { return in.caches[loc].v.Load() }

// applyRemote merges a bound learned from a peer (via broadcast or a
// stolen task's bound snapshot) into a locality's cache.
func (in *incumbent[N]) applyRemote(loc int, obj int64) {
	storeMax(&in.caches[loc].v, obj)
}

// strengthen installs (obj, n) as the incumbent if obj improves on the
// authoritative best, then broadcasts the bound over the locality's
// transport. The caller's own locality always learns the bound
// immediately; peers learn it after the transport's delivery latency.
// Reports whether the incumbent changed, implementing
// (strengthen)/(skip).
func (in *incumbent[N]) strengthen(loc int, obj int64, n N) bool {
	in.mu.Lock()
	if in.has && obj <= in.bestObj {
		in.mu.Unlock()
		return false
	}
	in.bestObj = obj
	in.node = n
	in.has = true
	in.mu.Unlock()

	storeMax(&in.caches[loc].v, obj)
	// Broadcast (and count) only when there is a peer to tell: a
	// single-locality deployment must report broadcasts=0.
	if in.trs != nil && in.trs[loc].Size() > 1 {
		var blob []byte
		if in.encode != nil {
			// A failed encoding degrades the broadcast to bound-only
			// (the node then survives only in this locality's gather
			// share); it cannot be allowed to suppress the bound.
			blob, _ = in.encode(n)
		}
		in.trs[loc].BroadcastBound(obj, blob)
		in.bcasts.Add(1)
	}
	return true
}

// result returns the final incumbent of this process's localities.
// Call only after all workers have joined.
func (in *incumbent[N]) result() (N, int64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.node, in.bestObj, in.has
}

// broadcasts reports how many bound broadcasts strengthen sent.
func (in *incumbent[N]) broadcasts() int64 { return in.bcasts.Load() }

// storeMax monotonically raises a to at least v.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
