module yewpar

go 1.24
