package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS checks the parser never panics and that everything
// it accepts survives a write/parse round trip unchanged.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c comment\np edge 1 0\n")
	f.Add("p col 4 1\ne 1 4\n")
	f.Add("e 1 2\n")
	f.Add("p edge 0 0\n")
	f.Add("p edge 2 1\ne 2 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		h, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if h.N != g.N || h.Edges() != g.Edges() {
			t.Fatalf("round trip changed graph: %d/%d -> %d/%d", g.N, g.Edges(), h.N, h.Edges())
		}
		for v := 0; v < g.N; v++ {
			if !g.Adj[v].Equal(h.Adj[v]) {
				t.Fatal("round trip changed adjacency")
			}
		}
	})
}
