package dist

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Transport conformance suite: every behaviour the engine relies on,
// asserted against every implementation. A new transport only has to
// pass this suite to be a valid substrate for the distributed engine.
// Four harnesses run today: the loopback network and the TCP star
// (hub-counted termination), and their mesh twins (per-rank counters,
// termination by the wave) — the cases below express task accounting
// through completeStolen precisely so that one suite pins both
// termination protocols.

// harness builds a connected deployment of n localities.
type harness struct {
	name string
	make func(t *testing.T, n int) []Transport
}

// makeTCP builds a TCP deployment with the given wire options; the
// harness list instantiates it for both topologies.
func makeTCP(t *testing.T, n int, opts WireOptions) []Transport {
	l, err := NewListenerOpts("127.0.0.1:0", "conformance", opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	trs := make([]Transport, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := DialOpts(l.Addr(), "conformance", opts)
			if err != nil {
				errs[i] = err
				return
			}
			// Ranks are assigned in registration order, which
			// is racy across concurrent dials: index by the
			// assigned rank, not the goroutine.
			trs[tr.Rank()] = tr
		}(i)
	}
	coord, err := l.Wait(n - 1)
	wg.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	for _, e := range errs {
		if e != nil {
			t.Fatalf("dial: %v", e)
		}
	}
	trs[0] = coord
	t.Cleanup(func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return trs
}

func harnesses() []harness {
	return []harness{
		{name: "loopback", make: func(t *testing.T, n int) []Transport {
			net := NewLoopback(n, LoopbackOptions{})
			t.Cleanup(func() { net.Close() })
			return net.Transports()
		}},
		// TestTCPLateStealReplyAdopted indexes harnesses()[1]: the star
		// TCP harness must stay in this slot.
		{name: "tcp", make: func(t *testing.T, n int) []Transport {
			return makeTCP(t, n, WireOptions{})
		}},
		{name: "loopback-mesh", make: func(t *testing.T, n int) []Transport {
			net := NewLoopback(n, LoopbackOptions{Wave: true})
			t.Cleanup(func() { net.Close() })
			return net.Transports()
		}},
		{name: "tcp-mesh", make: func(t *testing.T, n int) []Transport {
			return makeTCP(t, n, WireOptions{Topology: TopologyMesh})
		}},
	}
}

// completeStolen expresses "rank holder completes a task spawned at
// rank spawner" in the engine's own accounting discipline: the holder
// registers its adoption (+1), completes it (-1), and the spawner
// retires its ledger registration (-1, the spawn-time +1 that covered
// the task in flight). On the star every delta folds into the hub's
// single live count, so the net effect is the old bare -1; on a mesh
// each delta lands on its own rank's wave counter, where the split is
// what keeps the termination wave from observing a negative rank or an
// uncovered in-flight task. Conformance cases MUST complete cross-rank
// work through this helper rather than decrementing an arbitrary rank.
func completeStolen(holder, spawner Transport) {
	if holder == spawner {
		spawner.AddTasks(-1)
		return
	}
	holder.AddTasks(1)
	holder.AddTasks(-1)
	spawner.AddTasks(-1)
}

// recHandler records everything the transport delivers.
type recHandler struct {
	mu         sync.Mutex
	tasks      []WireTask
	splitTasks []WireTask // tasks only a stack split can reach (not pool-stealable)
	adopted    []WireTask // late steal replies re-homed via OnTask
	acks       []uint64   // hand-over ids acked back to this locality
	boundMax   atomic.Int64
	bounds     []int64 // delivery order, for monotonicity of the merge
	cancelled  atomic.Int64
	splits     atomic.Int64 // ServeSplit calls that reached the split list
	serveDelay time.Duration
}

func (h *recHandler) ServeSteal(thief int) (WireTask, bool) {
	if h.serveDelay > 0 {
		time.Sleep(h.serveDelay)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.tasks) == 0 {
		return WireTask{}, false
	}
	t := h.tasks[0]
	h.tasks = h.tasks[1:]
	return t, true
}

// ServeSplit implements StackSplitter the way a real locality does:
// pool work first, then work only a live-stack split can produce.
func (h *recHandler) ServeSplit(thief, max int) []WireTask {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []WireTask
	for len(out) < max && len(h.tasks) > 0 {
		out = append(out, h.tasks[0])
		h.tasks = h.tasks[1:]
	}
	if len(out) < max && len(h.splitTasks) > 0 {
		out = append(out, h.splitTasks[0])
		h.splitTasks = h.splitTasks[1:]
		h.splits.Add(1)
	}
	return out
}

func (h *recHandler) pushSplit(t WireTask) {
	h.mu.Lock()
	h.splitTasks = append(h.splitTasks, t)
	h.mu.Unlock()
}

func (h *recHandler) OnTask(t WireTask) {
	h.mu.Lock()
	h.adopted = append(h.adopted, t)
	h.mu.Unlock()
}

func (h *recHandler) OnBound(from int, obj int64) {
	h.mu.Lock()
	h.bounds = append(h.bounds, obj)
	h.mu.Unlock()
	for {
		cur := h.boundMax.Load()
		if obj <= cur || h.boundMax.CompareAndSwap(cur, obj) {
			return
		}
	}
}

func (h *recHandler) OnCancel(from int) { h.cancelled.Add(1) }

func (h *recHandler) OnAck(from int, id uint64) {
	h.mu.Lock()
	h.acks = append(h.acks, id)
	h.mu.Unlock()
}

func (h *recHandler) ackedIDs() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64{}, h.acks...)
}

// BestStealPrio implements StealRanker the way a real locality does:
// the best (lowest) priority among the tasks a thief could take.
func (h *recHandler) BestStealPrio() (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.tasks) == 0 {
		return 0, false
	}
	best := h.tasks[0].Prio
	for _, t := range h.tasks {
		if t.Prio < best {
			best = t.Prio
		}
	}
	if best < 0 {
		best = 0
	}
	return best, true
}

func (h *recHandler) push(t WireTask) {
	h.mu.Lock()
	h.tasks = append(h.tasks, t)
	h.mu.Unlock()
}

func startAll(trs []Transport) []*recHandler {
	hs := make([]*recHandler, len(trs))
	for i, tr := range trs {
		hs[i] = &recHandler{}
		hs[i].boundMax.Store(-1 << 62)
		tr.Start(hs[i])
	}
	return hs
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConformanceIdentity(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			startAll(trs)
			seen := map[int]bool{}
			for _, tr := range trs {
				if tr.Size() != 3 {
					t.Errorf("size = %d, want 3", tr.Size())
				}
				if seen[tr.Rank()] {
					t.Errorf("duplicate rank %d", tr.Rank())
				}
				seen[tr.Rank()] = true
			}
			for r := 0; r < 3; r++ {
				if !seen[r] {
					t.Errorf("missing rank %d", r)
				}
			}
		})
	}
}

func TestConformanceStealRequestReply(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			want := WireTask{Payload: []byte("node-bytes"), Depth: 4, Bound: 17}
			hs[1].push(want)

			got, ok, err := trs[0].Steal(1)
			if err != nil || !ok {
				t.Fatalf("steal from stocked victim: ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(got.Payload, want.Payload) || got.Depth != want.Depth || got.Bound != want.Bound {
				t.Fatalf("stolen task %+v, want %+v", got, want)
			}
			// Victim now empty: empty-handed, not an error.
			if _, ok, err := trs[0].Steal(1); ok || err != nil {
				t.Fatalf("steal from empty victim: ok=%v err=%v", ok, err)
			}
			// Worker→worker steal routes too (through the hub on TCP).
			hs[2].push(WireTask{Payload: []byte("w2"), Depth: 1})
			got, ok, err = trs[1].Steal(2)
			if err != nil || !ok || !bytes.Equal(got.Payload, []byte("w2")) {
				t.Fatalf("worker-to-worker steal: %+v ok=%v err=%v", got, ok, err)
			}
		})
	}
}

// Every bundled transport must speak kSplit (v6): a split steal
// reaches work a pool steal cannot — the victim handler's live
// generator stacks — while still preferring pool work when it exists.
func TestConformanceSplitSteal(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)

			ss, ok := trs[0].(SplitStealer)
			if !ok {
				t.Fatalf("%T does not implement SplitStealer", trs[0])
			}
			// Pool work wins when present. (Pushed alone: a batching
			// transport would otherwise carry the split task home as a
			// re-homed extra in the same reply.)
			hs[1].push(WireTask{Payload: []byte("pooled"), Depth: 2})
			got, ok, err := ss.SplitSteal(1)
			if err != nil || !ok || !bytes.Equal(got.Payload, []byte("pooled")) {
				t.Fatalf("split steal with pool work: %+v ok=%v err=%v", got, ok, err)
			}
			// Pool dry: the split path serves.
			hs[1].pushSplit(WireTask{Payload: []byte("split-a"), Depth: 5})
			got, ok, err = ss.SplitSteal(1)
			if err != nil || !ok || !bytes.Equal(got.Payload, []byte("split-a")) {
				t.Fatalf("split steal from dry pool: %+v ok=%v err=%v", got, ok, err)
			}
			if hs[1].splits.Load() == 0 {
				t.Fatal("victim's split list never served")
			}
			// Nothing splittable either: empty-handed, not an error.
			if _, ok, err := ss.SplitSteal(1); ok || err != nil {
				t.Fatalf("split steal from empty victim: ok=%v err=%v", ok, err)
			}
			// Worker→worker split routes too (hub-forwarded on the star,
			// direct on the mesh).
			wss, ok := trs[1].(SplitStealer)
			if !ok {
				t.Fatalf("%T does not implement SplitStealer", trs[1])
			}
			hs[2].pushSplit(WireTask{Payload: []byte("split-b"), Depth: 7})
			got, ok, err = wss.SplitSteal(2)
			if err != nil || !ok || !bytes.Equal(got.Payload, []byte("split-b")) {
				t.Fatalf("worker-to-worker split steal: %+v ok=%v err=%v", got, ok, err)
			}
		})
	}
}

func TestConformanceBoundBroadcastMonotonic(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			// Every rank broadcasts an interleaved ascending sequence.
			var wg sync.WaitGroup
			for r, tr := range trs {
				wg.Add(1)
				go func(r int, tr Transport) {
					defer wg.Done()
					for i := 1; i <= 50; i++ {
						tr.BroadcastBound(int64(100*i+r), nil)
					}
				}(r, tr)
			}
			wg.Wait()
			// Eventually every rank has learned the strongest bound any
			// peer published (its own strongest is 100*50+r, published
			// by construction; peers' maxima are 5000+other).
			for r := range trs {
				r := r
				want := int64(0)
				for o := range trs {
					if o != r && int64(5000+o) > want {
						want = int64(5000 + o)
					}
				}
				eventually(t, fmt.Sprintf("%s rank %d to learn max bound", h.name, r), func() bool {
					return hs[r].boundMax.Load() >= want
				})
			}
			// The merge discipline (monotonic max) absorbs reordered
			// deliveries: the running max never regresses.
			for r := range trs {
				hs[r].mu.Lock()
				max := int64(-1 << 62)
				for _, b := range hs[r].bounds {
					if b > max {
						max = b
					}
				}
				hs[r].mu.Unlock()
				if got := hs[r].boundMax.Load(); got != max {
					t.Errorf("rank %d merged max %d != delivered max %d", r, got, max)
				}
			}
		})
	}
}

func TestConformanceTaskAccountingTermination(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			startAll(trs)
			// Seed three tasks at the coordinator, complete one at each
			// rank: Done must fire on every rank, and not before the
			// last completion.
			trs[0].AddTasks(3)
			completeStolen(trs[1], trs[0])
			completeStolen(trs[2], trs[0])
			select {
			case <-trs[0].Done():
				t.Fatal("Done fired with a task still live")
			case <-time.After(50 * time.Millisecond):
			}
			completeStolen(trs[0], trs[0])
			for r, tr := range trs {
				select {
				case <-tr.Done():
				case <-time.After(5 * time.Second):
					t.Fatalf("rank %d never saw termination", r)
				}
			}
		})
	}
}

func TestConformanceCancelPropagates(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			trs[1].Cancel(0, nil)
			eventually(t, "cancel to reach rank 0", func() bool { return hs[0].cancelled.Load() > 0 })
			eventually(t, "cancel to reach rank 2", func() bool { return hs[2].cancelled.Load() > 0 })
		})
	}
}

func TestConformanceGather(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			startAll(trs)
			var got [][]byte
			var wg sync.WaitGroup
			for r, tr := range trs {
				wg.Add(1)
				go func(r int, tr Transport) {
					defer wg.Done()
					blobs, err := tr.Gather([]byte{byte(r + 1)})
					if err != nil {
						t.Errorf("rank %d gather: %v", r, err)
					}
					if r == 0 {
						got = blobs
					} else if blobs != nil {
						t.Errorf("rank %d gather returned blobs", r)
					}
				}(r, tr)
			}
			wg.Wait()
			if len(got) != 3 {
				t.Fatalf("gathered %d blobs, want 3", len(got))
			}
			for r, b := range got {
				if len(b) != 1 || b[0] != byte(r+1) {
					t.Errorf("rank %d slot = %v", r, b)
				}
			}
		})
	}
}

// Task priorities must survive the wire round trip exactly: an ordered
// distributed search re-enqueues a stolen task at the priority it left
// its victim with, so a transport that zeroes or reorders Prio silently
// destroys the global search order (this is the v2 → v3 frame change).
// Covers the direct reply, the routed worker→worker reply, and batch
// extras re-homed through OnTask.
func TestConformancePriorityRoundTrip(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			want := WireTask{Payload: []byte("ordered"), Depth: 4, Prio: 7, Bound: 17}
			hs[1].push(want)

			got, ok, err := trs[0].Steal(1)
			if err != nil || !ok {
				t.Fatalf("steal: ok=%v err=%v", ok, err)
			}
			if got.Prio != want.Prio || got.Depth != want.Depth || got.Bound != want.Bound {
				t.Fatalf("stolen task %+v, want %+v", got, want)
			}

			// Worker→worker: the reply is routed through the hub on TCP
			// and must arrive with the priority intact.
			hs[2].push(WireTask{Payload: []byte("w2"), Depth: 1, Prio: 3})
			got, ok, err = trs[1].Steal(2)
			if err != nil || !ok || got.Prio != 3 {
				t.Fatalf("worker-to-worker steal: %+v ok=%v err=%v, want Prio 3", got, ok, err)
			}

			// Batch extras: stock the victim beyond one task; every task
			// the thief receives — handed over or adopted via OnTask —
			// keeps its own priority. (The loopback transport serves one
			// task per steal; the assertions below still hold trivially.)
			prios := map[string]int{"b0": 5, "b1": 2, "b2": 9}
			for name, p := range prios {
				hs[1].push(WireTask{Payload: []byte(name), Depth: 2, Prio: p})
			}
			seen := map[string]int{}
			for len(seen) < len(prios) {
				wt, ok, err := trs[0].Steal(1)
				if err != nil {
					t.Fatalf("batch steal: %v", err)
				}
				if ok {
					seen[string(wt.Payload)] = wt.Prio
				}
				hs[0].mu.Lock()
				for _, a := range hs[0].adopted {
					seen[string(a.Payload)] = a.Prio
				}
				hs[0].mu.Unlock()
			}
			for name, p := range prios {
				if seen[name] != p {
					t.Fatalf("task %s arrived with prio %d, want %d (seen: %v)", name, seen[name], p, seen)
				}
			}
		})
	}
}

// Best-available-priority summaries flow to peers: on the loopback
// network PeerBestPrio is exact; over TCP it is learned from the
// piggybacked frame headers, both at the hub (from any worker frame)
// and at a worker (from frames routed to it).
func TestConformancePrioSummaries(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			pa0, ok := trs[0].(PrioAware)
			if !ok {
				t.Fatalf("%s transport is not PrioAware", h.name)
			}
			hs[1].push(WireTask{Payload: []byte("x"), Depth: 1, Prio: 4})

			// Any frame from rank 1 carries its summary; provoke one.
			trs[1].BroadcastBound(1, nil)
			eventually(t, "coordinator to learn rank 1's summary", func() bool {
				p, known := pa0.PeerBestPrio(1)
				return known && p == 4
			})

			// A worker learns a peer's summary from frames routed to it:
			// the steal reply itself refreshes rank 2's view of rank 1.
			if pa2, ok := trs[2].(PrioAware); ok {
				if _, ok, _ := trs[2].Steal(1); !ok {
					t.Fatal("steal from stocked rank 1 failed")
				}
				eventually(t, "rank 2 to learn rank 1's summary", func() bool {
					_, known := pa2.PeerBestPrio(1)
					return known
				})
			}

			// Drained victims advertise empty (PrioNone) on later frames.
			for {
				if _, ok, _ := trs[0].Steal(1); !ok {
					break
				}
			}
			trs[1].BroadcastBound(2, nil)
			eventually(t, "rank 1 to advertise empty", func() bool {
				p, known := pa0.PeerBestPrio(1)
				return known && p == PrioNone
			})

			// Unknown ranks stay unknown (nothing heard from rank 2 at
			// the hub is only possible on TCP; the loopback answers
			// exactly, so just require a sane response).
			if p, known := pa0.PeerBestPrio(99); known {
				t.Fatalf("out-of-range rank known with prio %d", p)
			}
		})
	}
}

// A steal reply that lands after the request timed out carries a task
// that already left its victim's pool: the transport must hand it to
// the thief's handler (OnTask) rather than drop part of the search
// tree. TCP-specific — the loopback transport replies synchronously.
func TestTCPLateStealReplyAdopted(t *testing.T) {
	old := stealTimeout
	stealTimeout = 50 * time.Millisecond
	defer func() { stealTimeout = old }()

	trs := harnesses()[1].make(t, 3) // tcp
	hs := startAll(trs)
	hs[1].serveDelay = 300 * time.Millisecond

	for thief, tr := range []Transport{trs[0], trs[2]} {
		hs[1].push(WireTask{Payload: []byte("slow"), Depth: 2})
		if _, ok, err := tr.Steal(1); ok || err != nil {
			t.Fatalf("thief %d: steal should time out, got ok=%v err=%v", thief, ok, err)
		}
		h := hs[[]int{0, 2}[thief]]
		eventually(t, "late reply to be adopted", func() bool {
			h.mu.Lock()
			defer h.mu.Unlock()
			return len(h.adopted) > 0 && string(h.adopted[len(h.adopted)-1].Payload) == "slow"
		})
	}
}

// kill ends a rank's life mid-search: closing an endpoint before
// termination is a death on both transports (the loopback endpoint
// takes the network's Kill path; the hub sees the worker's broken
// connection).
func kill(t *testing.T, h harness, trs []Transport, rank int) {
	t.Helper()
	trs[rank].Close()
}

// awaitDeath waits until a survivor has been notified of rank's death.
func awaitDeath(t *testing.T, tr Transport, rank int) {
	t.Helper()
	select {
	case r := <-tr.Deaths():
		if r != rank {
			t.Fatalf("death notification for rank %d, want %d", r, rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no death notification for rank %d", rank)
	}
}

// The core fault-tolerance contract: a locality death mid-search must
// not force termination (the old v3 behaviour) — instead the dead
// rank's outstanding live-task contribution is reconciled away, the
// survivors are notified so their ledgers can replay, steals aimed at
// the corpse fail fast, and the search ends exactly when the
// survivors' work (replays included) is done.
func TestConformanceWorkerDeathMidSearch(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 4)
			hs := startAll(trs)

			// Rank 0 holds a sentinel task (the survivors' live work);
			// rank 2 registers work of its own, then dies with it.
			trs[0].AddTasks(1)
			trs[2].AddTasks(2)
			hs[2].push(WireTask{Payload: []byte("doomed"), Depth: 1})
			// Let a wire transport flush the coalesced +2 first: a
			// delta lost with the process is fine (it was never
			// counted), but this test wants the reconciliation path.
			time.Sleep(50 * time.Millisecond)
			kill(t, h, trs, 2)

			// Every survivor hears about the death exactly once.
			for _, r := range []int{0, 1, 3} {
				awaitDeath(t, trs[r], 2)
			}

			// Steals aimed at the dead locality fail fast instead of
			// hanging the thief (coordinator and worker thieves both).
			done := make(chan struct{})
			go func() {
				defer close(done)
				if _, ok, _ := trs[0].Steal(2); ok {
					t.Error("coordinator stole from a dead locality")
				}
				if _, ok, _ := trs[1].Steal(2); ok {
					t.Error("worker stole from a dead locality")
				}
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("steal from dead locality hung")
			}

			// The survivors keep working: steals and bounds still flow.
			hs[3].push(WireTask{Payload: []byte("alive"), Depth: 2})
			if _, ok, err := trs[1].Steal(3); !ok || err != nil {
				t.Fatalf("steal between survivors: ok=%v err=%v", ok, err)
			}
			trs[1].BroadcastBound(77, nil)
			eventually(t, "bound to reach surviving rank 3", func() bool { return hs[3].boundMax.Load() == 77 })

			// The dead rank's +2 was reconciled away, but the
			// sentinel still holds the search open: death must NOT
			// force termination while survivors hold live work.
			time.Sleep(100 * time.Millisecond)
			select {
			case <-trs[0].Done():
				t.Fatal("death force-terminated a search with live survivor work")
			default:
			}

			// Completing the sentinel ends the search everywhere.
			trs[0].AddTasks(-1)
			for _, r := range []int{0, 1, 3} {
				select {
				case <-trs[r].Done():
				case <-time.After(5 * time.Second):
					t.Fatalf("rank %d not released after survivor work drained", r)
				}
			}

			// A final gather completes, with a nil slot for the dead rank.
			var got [][]byte
			var wg sync.WaitGroup
			for _, r := range []int{0, 1, 3} {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					blobs, err := trs[r].Gather([]byte{byte(r)})
					if err != nil {
						t.Errorf("rank %d gather: %v", r, err)
					}
					if r == 0 {
						got = blobs
					}
				}(r)
			}
			wg.Wait()
			if len(got) != 4 || got[2] != nil {
				t.Fatalf("gather after death = %v, want nil slot for rank 2", got)
			}
		})
	}
}

// Completion acks round-trip: the thief's Ack reaches the handler of
// the rank that minted the id — directly at the hub, and routed for
// worker→worker supervision.
func TestConformanceAckRoundTrip(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)

			id01 := TaskID(0, 1)
			if err := trs[1].Ack(0, id01); err != nil {
				t.Fatalf("worker ack to hub: %v", err)
			}
			eventually(t, "hub to receive the ack", func() bool {
				ids := hs[0].ackedIDs()
				return len(ids) == 1 && ids[0] == id01
			})

			id12 := TaskID(1, 7)
			if err := trs[2].Ack(1, id12); err != nil {
				t.Fatalf("worker ack to worker: %v", err)
			}
			eventually(t, "worker 1 to receive the routed ack", func() bool {
				ids := hs[1].ackedIDs()
				return len(ids) == 1 && ids[0] == id12
			})

			id20 := TaskID(2, 3)
			if err := trs[0].Ack(2, id20); err != nil {
				t.Fatalf("hub ack to worker: %v", err)
			}
			eventually(t, "worker 2 to receive the hub's ack", func() bool {
				ids := hs[2].ackedIDs()
				return len(ids) == 1 && ids[0] == id20
			})

			if TaskOrigin(id12) != 1 || TaskOrigin(0) != -1 {
				t.Fatalf("TaskOrigin broken: %d %d", TaskOrigin(id12), TaskOrigin(0))
			}
		})
	}
}

// Death during a pending steal: the thief must be released empty-handed
// promptly (the reply can never come), not after the full steal
// timeout, and certainly not hang.
func TestConformanceDeathDuringSteal(t *testing.T) {
	old := stealTimeout
	stealTimeout = 20 * time.Second
	defer func() { stealTimeout = old }()
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			if strings.HasPrefix(h.name, "loopback") {
				t.Skip("loopback steals are synchronous direct calls; nothing is ever pending")
			}
			trs := h.make(t, 3)
			hs := startAll(trs)
			hs[2].serveDelay = 30 * time.Second // the victim will never answer in time
			hs[2].push(WireTask{Payload: []byte("x"), Depth: 1})

			res := make(chan bool, 1)
			go func() {
				_, ok, _ := trs[1].Steal(2)
				res <- ok
			}()
			time.Sleep(100 * time.Millisecond) // let the request reach the victim
			kill(t, h, trs, 2)
			select {
			case ok := <-res:
				if ok {
					t.Fatal("steal from a dying victim succeeded after its death")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("thief not released when its victim died")
			}
		})
	}
}

// Death with outstanding acks: a victim handed work to a rank that
// dies before acking. The victim's own registration for the task must
// still be outstanding (its -1 only ever arrives with the ack), so the
// global count cannot reach zero until the victim completes the
// replayed task itself — the accounting half of subtree replay.
func TestConformanceDeathWithOutstandingAcks(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)

			// Rank 1 spawns a task (+1) and serves it to rank 2 with a
			// hand-over id; the ledger copy keeps the +1 outstanding.
			trs[1].AddTasks(1)
			hs[1].push(WireTask{Payload: []byte("handed"), ID: TaskID(1, 1), Depth: 1})
			if _, ok, err := trs[2].Steal(1); !ok || err != nil {
				t.Fatalf("hand-over steal: ok=%v err=%v", ok, err)
			}
			// Rank 2 registers its receipt, then dies before completing
			// (no Ack ever sent).
			trs[2].AddTasks(1)
			time.Sleep(50 * time.Millisecond) // flush the receipt delta
			kill(t, h, trs, 2)
			awaitDeath(t, trs[1], 2)

			// Rank 2's receipt was reconciled away, but rank 1's
			// registration survives: no termination yet.
			time.Sleep(100 * time.Millisecond)
			select {
			case <-trs[0].Done():
				t.Fatal("count reached zero while the victim's hand-over was unacked")
			default:
			}

			// The victim replays and completes the subtree itself.
			trs[1].AddTasks(-1)
			for _, r := range []int{0, 1} {
				select {
				case <-trs[r].Done():
				case <-time.After(5 * time.Second):
					t.Fatalf("rank %d not released after replay completed", r)
				}
			}
		})
	}
}

// Double death: two localities die, the survivors hear about both,
// both contributions are reconciled, and the deployment still
// terminates and gathers (with two nil slots).
func TestConformanceDoubleDeath(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 4)
			startAll(trs)
			trs[0].AddTasks(1) // survivor sentinel
			trs[1].AddTasks(3)
			trs[2].AddTasks(5)
			time.Sleep(50 * time.Millisecond)
			kill(t, h, trs, 1)
			kill(t, h, trs, 2)

			// The survivors hear about both deaths, in either order.
			for _, r := range []int{0, 3} {
				got := map[int]bool{}
				for i := 0; i < 2; i++ {
					select {
					case d := <-trs[r].Deaths():
						got[d] = true
					case <-time.After(5 * time.Second):
						t.Fatalf("rank %d heard %d/2 deaths", r, len(got))
					}
				}
				if !got[1] || !got[2] {
					t.Fatalf("rank %d death set = %v, want {1,2}", r, got)
				}
			}

			// Both dead contributions reconciled; only the sentinel holds.
			time.Sleep(100 * time.Millisecond)
			select {
			case <-trs[0].Done():
				t.Fatal("terminated early with the sentinel live")
			default:
			}
			trs[0].AddTasks(-1)
			for _, r := range []int{0, 3} {
				select {
				case <-trs[r].Done():
				case <-time.After(5 * time.Second):
					t.Fatalf("rank %d not released after double death", r)
				}
			}

			var got [][]byte
			var wg sync.WaitGroup
			for _, r := range []int{0, 3} {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					blobs, err := trs[r].Gather([]byte{byte(r)})
					if err != nil {
						t.Errorf("rank %d gather: %v", r, err)
					}
					if r == 0 {
						got = blobs
					}
				}(r)
			}
			wg.Wait()
			if len(got) != 4 || got[1] != nil || got[2] != nil || got[0] == nil || got[3] == nil {
				t.Fatalf("gather after double death = %v, want nil slots for ranks 1 and 2", got)
			}
		})
	}
}

// The incumbent retention: a node-carrying bound broadcast (or a
// decision cancel's witness) survives at rank 0 even after its finder
// dies — the mechanism that keeps a SIGKILLed worker's optimum in the
// final answer.
func TestConformanceIncumbentRetention(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			startAll(trs)
			store, ok := trs[0].(IncumbentStore)
			if !ok {
				t.Fatalf("%s rank 0 does not implement IncumbentStore", h.name)
			}
			if _, _, ok := store.BestKnown(); ok {
				t.Fatal("retention non-empty before any broadcast")
			}
			trs[1].BroadcastBound(10, []byte("node-10"))
			trs[2].BroadcastBound(30, []byte("node-30"))
			trs[1].BroadcastBound(20, []byte("node-20")) // weaker: must not displace
			trs[1].BroadcastBound(40, nil)               // bound-only: nothing to retain
			eventually(t, "rank 0 to retain the best node-carrying pair", func() bool {
				obj, node, ok := store.BestKnown()
				return ok && obj == 30 && string(node) == "node-30"
			})
			kill(t, h, trs, 2) // the finder dies; its node must survive
			obj, node, ok := store.BestKnown()
			if !ok || obj != 30 || string(node) != "node-30" {
				t.Fatalf("retention lost after finder death: %d %q %v", obj, node, ok)
			}
		})
	}
}

// drain empties the handler's task queue and adopted list, returning
// all held tasks (conservation accounting for the batching tests).
func (h *recHandler) drain() []WireTask {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]WireTask{}, h.tasks...)
	out = append(out, h.adopted...)
	h.tasks, h.adopted = nil, nil
	return out
}

// Multi-task steal replies: one exchange may move a batch, with the
// first task handed to the caller and the extras re-homed through
// OnTask. Whatever the transport's batch size (loopback serves one,
// TCP up to its StealBatch), every task must end up somewhere exactly
// once — conservation is the contract, batching the optimisation.
func TestConformanceMultiTaskStealConservation(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			const total = 6
			for i := 0; i < total; i++ {
				hs[1].push(WireTask{Payload: []byte{byte(i)}, Depth: i})
			}
			seen := make(map[byte]int)
			record := func(ts ...WireTask) {
				for _, wt := range ts {
					if len(wt.Payload) != 1 {
						t.Fatalf("mangled payload %v", wt.Payload)
					}
					seen[wt.Payload[0]]++
				}
			}
			// Thieves on both routing paths: the coordinator (direct)
			// and a worker (via the hub).
			for _, thief := range []int{0, 2} {
				wt, ok, err := trs[thief].Steal(1)
				if err != nil {
					t.Fatalf("thief %d: %v", thief, err)
				}
				if ok {
					record(wt)
					record(hs[thief].drain()...)
				}
			}
			// Drain the victim dry from rank 0.
			for {
				wt, ok, err := trs[0].Steal(1)
				if err != nil {
					t.Fatalf("draining steal: %v", err)
				}
				if !ok {
					break
				}
				record(wt)
				record(hs[0].drain()...)
			}
			record(hs[1].drain()...) // anything the victim kept
			if len(seen) != total {
				t.Fatalf("saw %d distinct tasks, want %d (%v)", len(seen), total, seen)
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("task %d seen %d times (lost or duplicated)", id, n)
				}
			}
		})
	}
}

// Coalesced AddTasks deltas under a concurrent steal storm: spawns
// register before their tasks become stealable, completions happen
// wherever tasks land, and the transport may batch the counter updates
// arbitrarily — yet Done must fire exactly when the count reaches
// zero: not one task earlier, and not hang after.
func TestConformanceCoalescedDeltasUnderStealStorm(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			// A sentinel "root" task pins the count above zero for the
			// whole storm, as the engine's in-flight root does.
			trs[0].AddTasks(1)

			const perRank = 50
			var wg sync.WaitGroup
			var completed atomic.Int64
			for r := range trs {
				wg.Add(1)
				go func(r int) { // spawner: register, then publish
					defer wg.Done()
					for i := 0; i < perRank; i++ {
						trs[r].AddTasks(1)
						// The payload names the spawner, so whoever
						// completes the task can retire the right ledger.
						hs[r].push(WireTask{Payload: []byte{byte(r)}, Depth: i})
					}
				}(r)
				wg.Add(1)
				go func(r int) { // thief: steal anywhere, complete immediately
					defer wg.Done()
					for i := 0; i < 40; i++ {
						v := (r + 1 + i%2) % len(trs)
						if wt, ok, _ := trs[r].Steal(v); ok {
							completeStolen(trs[r], trs[wt.Payload[0]])
							completed.Add(1)
						}
					}
				}(r)
			}
			wg.Wait()
			// Complete everything still queued or adopted, wherever it
			// ended up.
			for r := range trs {
				for _, wt := range hs[r].drain() {
					completeStolen(trs[r], trs[wt.Payload[0]])
					completed.Add(1)
				}
			}
			if got := completed.Load(); got != 3*perRank {
				t.Fatalf("completed %d tasks, spawned %d: conservation broken", got, 3*perRank)
			}
			// Every coalesced flush has had many quanta to land; only
			// the sentinel keeps the search alive.
			time.Sleep(150 * time.Millisecond)
			select {
			case <-trs[0].Done():
				t.Fatal("Done fired with the sentinel task still live")
			default:
			}
			completeStolen(trs[1], trs[0]) // a worker completes the sentinel
			for r, tr := range trs {
				select {
				case <-tr.Done():
				case <-time.After(5 * time.Second):
					t.Fatalf("rank %d never saw termination after final coalesced delta", r)
				}
			}
		})
	}
}

// Bound piggybacks arrive out of order with respect to the broadcast
// stream (they ride on steal replies routed through the hub). The
// receivers' monotonic merge must absorb the disorder: every rank
// converges on the global maximum and never sees a value beyond it.
func TestConformanceBoundPiggybackOutOfOrder(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			trs := h.make(t, 3)
			hs := startAll(trs)
			const maxBound = 300
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // broadcaster: ascending bounds from rank 1
				defer wg.Done()
				for i := 1; i <= maxBound; i++ {
					trs[1].BroadcastBound(int64(i), nil)
				}
			}()
			go func() { // steal traffic rank 2 → rank 1, interleaved
				defer wg.Done()
				for i := 0; i < 60; i++ {
					hs[1].push(WireTask{Payload: []byte("t"), Depth: i, Bound: int64(i)})
					trs[2].Steal(1)
				}
			}()
			wg.Wait()
			for r := range trs {
				if r == 1 {
					continue // the broadcaster does not hear itself
				}
				eventually(t, fmt.Sprintf("%s rank %d to converge on the max bound", h.name, r), func() bool {
					return hs[r].boundMax.Load() >= maxBound
				})
			}
			for r := range trs {
				hs[r].mu.Lock()
				for _, b := range hs[r].bounds {
					if b > maxBound {
						t.Errorf("rank %d delivered bound %d beyond the published max %d", r, b, maxBound)
					}
				}
				hs[r].mu.Unlock()
			}
		})
	}
}
