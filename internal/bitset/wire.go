package bitset

import (
	"encoding/binary"
	"fmt"
)

// Compact wire form for the hand-written application codecs: uvarint
// capacity followed by the raw words, little-endian. Unlike the gob
// form (gob.go), it is designed to be embedded mid-stream — AppendBinary
// extends a caller's buffer and ParseBinary returns the unconsumed
// tail — so a node's several sets and scalars concatenate into one
// self-framed payload with no per-field headers.

// AppendBinary appends s's compact wire form to dst and returns the
// extended slice.
func (s Set) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.n))
	for _, w := range s.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// ParseBinary decodes a set from the front of b, returning the set and
// the remaining bytes. Like GobDecode it validates the peer-supplied
// capacity against the available bytes before allocating.
func ParseBinary(b []byte) (Set, []byte, error) {
	n64, k := binary.Uvarint(b)
	if k <= 0 {
		return Set{}, nil, fmt.Errorf("bitset: truncated capacity varint")
	}
	if n64 > uint64(len(b))*wordBits {
		return Set{}, nil, fmt.Errorf("bitset: capacity %d exceeds %d payload bytes", n64, len(b))
	}
	n := int(n64)
	words := (n + wordBits - 1) / wordBits
	b = b[k:]
	if len(b) < 8*words {
		return Set{}, nil, fmt.Errorf("bitset: capacity %d needs %d word bytes, have %d", n, 8*words, len(b))
	}
	s := New(n)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return s, b[8*words:], nil
}
