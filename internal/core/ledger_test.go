package core

import (
	"testing"

	"yewpar/internal/dist"
)

func TestLedgerHandOverRetireReap(t *testing.T) {
	l := newLedger[int](3, 16)
	id1, ok := l.handOver(1, Task[int]{Node: 10, Depth: 2})
	if !ok || dist.TaskOrigin(id1) != 3 {
		t.Fatalf("handOver: id=%d ok=%v, want origin 3", id1, ok)
	}
	id2, _ := l.handOver(2, Task[int]{Node: 20, Depth: 1})
	if id1 == id2 {
		t.Fatal("hand-over ids collide")
	}
	if l.outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", l.outstanding())
	}

	// Retire is idempotent: the first retire wins, repeats are no-ops.
	if _, ok := l.retire(id1); !ok {
		t.Fatal("retire of live entry failed")
	}
	if _, ok := l.retire(id1); ok {
		t.Fatal("double retire succeeded")
	}

	// Reap collects exactly the dead rank's entries.
	id3, _ := l.handOver(1, Task[int]{Node: 30, Depth: 3})
	tasks := l.reap(2)
	if len(tasks) != 1 || tasks[0].Node != 20 {
		t.Fatalf("reap(2) = %v, want the rank-2 task", tasks)
	}
	if tasks := l.reap(2); tasks != nil {
		t.Fatalf("second reap returned %v", tasks)
	}
	// A reaped entry's ack is ignored.
	if _, ok := l.retire(id2); ok {
		t.Fatal("ack for a replayed entry retired something")
	}
	// Hand-overs to a dead rank are refused permanently.
	if _, ok := l.handOver(2, Task[int]{Node: 40}); ok {
		t.Fatal("hand-over to a dead rank accepted")
	}
	// Unrelated entries survive the reap.
	if _, ok := l.retire(id3); !ok {
		t.Fatal("rank-1 entry lost by rank-2 reap")
	}
}

func TestLedgerCapacityBackpressure(t *testing.T) {
	l := newLedger[int](0, 2)
	if _, ok := l.handOver(1, Task[int]{Node: 1}); !ok {
		t.Fatal("first hand-over refused")
	}
	if _, ok := l.handOver(1, Task[int]{Node: 2}); !ok {
		t.Fatal("second hand-over refused")
	}
	if _, ok := l.handOver(1, Task[int]{Node: 3}); ok {
		t.Fatal("hand-over beyond capacity accepted")
	}
	peak, _ := l.stats()
	if peak != 2 {
		t.Fatalf("peak = %d, want 2", peak)
	}
	tasks := l.reap(1)
	if len(tasks) != 2 {
		t.Fatalf("reap returned %d tasks, want 2", len(tasks))
	}
	if _, replayed := l.stats(); replayed != 2 {
		t.Fatalf("replayed = %d, want 2", replayed)
	}
	// Capacity is free again for other thieves.
	if _, ok := l.handOver(3, Task[int]{Node: 4}); !ok {
		t.Fatal("hand-over refused after reap freed capacity")
	}
}

func TestTaskIDPacking(t *testing.T) {
	for _, rank := range []int{0, 1, 7, 1000} {
		id := dist.TaskID(rank, 12345)
		if id == 0 {
			t.Fatalf("rank %d minted the reserved zero id", rank)
		}
		if got := dist.TaskOrigin(id); got != rank {
			t.Fatalf("TaskOrigin(TaskID(%d, ...)) = %d", rank, got)
		}
	}
	if dist.TaskOrigin(0) != -1 {
		t.Fatal("zero id should have no origin")
	}
}
