package core

import (
	"math/rand"
	"time"
)

// topology is the simulated distributed machine: a set of localities
// (stand-ins for the paper's physical cluster nodes), each owning a
// workpool, with workers assigned round-robin. Steals prefer the local
// pool; only when it is empty is a random remote locality tried, with
// an optional latency charge per remote attempt — mirroring the
// locality-aware victim selection of Section 4.3.
type topology[N any] struct {
	pools     []Pool[N]
	workerLoc []int
	stealLat  time.Duration
	rngs      []*rand.Rand
}

func newTopology[N any](cfg Config) *topology[N] {
	tp := &topology[N]{
		pools:     make([]Pool[N], cfg.Localities),
		workerLoc: make([]int, cfg.Workers),
		stealLat:  cfg.StealLatency,
		rngs:      make([]*rand.Rand, cfg.Workers),
	}
	for i := range tp.pools {
		tp.pools[i] = newPool[N](cfg.Pool)
	}
	for w := 0; w < cfg.Workers; w++ {
		tp.workerLoc[w] = w % cfg.Localities
		tp.rngs[w] = rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
	}
	return tp
}

// locality returns the locality a worker belongs to.
func (tp *topology[N]) locality(w int) int { return tp.workerLoc[w] }

// push enqueues a task on the worker's local pool.
func (tp *topology[N]) push(w int, t Task[N]) { tp.pools[tp.workerLoc[w]].Push(t) }

// popOrSteal takes the next task for worker w: local pool first, then
// remote localities in random order. Steal accounting is recorded in
// the worker's shard.
func (tp *topology[N]) popOrSteal(w int, sh *WorkerStats) (Task[N], bool) {
	loc := tp.workerLoc[w]
	if t, ok := tp.pools[loc].Pop(); ok {
		return t, true
	}
	if len(tp.pools) == 1 {
		var zero Task[N]
		return zero, false
	}
	r := tp.rngs[w]
	start := r.Intn(len(tp.pools))
	for i := 0; i < len(tp.pools); i++ {
		v := (start + i) % len(tp.pools)
		if v == loc {
			continue
		}
		if tp.stealLat > 0 {
			time.Sleep(tp.stealLat)
		}
		if t, ok := tp.pools[v].Steal(); ok {
			sh.StealsOK++
			return t, true
		}
		sh.StealsFail++
	}
	var zero Task[N]
	return zero, false
}
