package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements a simplified form of the replicable
// branch-and-bound skeleton of Archibald et al., "Replicable parallel
// branch and bound search" (JPDC 2018) — the specialised skeleton the
// paper's §2.1 cites as the cure for performance anomalies. Parallel
// B&B is normally nondeterministic: the visited-node count depends on
// when incumbent updates happen to arrive. The replicable variant
// trades some pruning for determinism:
//
//  1. The tree above d_cutoff is searched sequentially, producing the
//     task list in heuristic order and a starting incumbent.
//  2. Every task subtree is then searched in parallel, pruning ONLY
//     against the fixed phase-1 bound, with incumbent candidates kept
//     worker-local.
//  3. Local candidates merge after the barrier.
//
// Because no knowledge flows between tasks mid-round, the set of
// nodes visited is a pure function of the problem and d_cutoff —
// independent of worker count, scheduling, and timing. Speedups are
// lower than the anomalous skeletons (pruning is weaker), but every
// run does identical work: no detrimental or acceleration anomalies.

// ReplicableOpt runs the round-synchronous replicable optimisation
// search. cfg.DCutoff controls the split depth.
func ReplicableOpt[S, N any](space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	cfg = cfg.withDefaults()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	start := time.Now()

	// Phase 1: sequential prefix search. The incumbent here is plain
	// single-threaded B&B, so this phase is deterministic too.
	inc := newLocalIncumbent[N]()
	prefixVisitor := &optVisitor[S, N]{
		space: space, obj: p.Objective, bound: p.Bound, copyN: p.Copy,
		level: p.PruneLevel, inc: inc, loc: 0, shard: m.shard(0),
	}
	var tasks []Task[N]
	collectPrefix(newGenCache(space, p.Gen, cfg), prefixVisitor, m.shard(0), root, 0, cfg.DCutoff, &tasks)

	// Phase 2: parallel round with a frozen bound.
	_, frozen, has := inc.result()
	if !has {
		frozen = -1 << 62
	}
	type localBest struct {
		node  N
		obj   int64
		found bool
	}
	locals := make([]localBest, cfg.Workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := m.shard(w)
			gc := newGenCache(space, p.Gen, cfg)
			// A private incumbent seeded with the frozen bound: being
			// worker-local it cannot leak knowledge across tasks owned
			// by other workers… but it could leak between tasks run by
			// the SAME worker, so it is reset for every task.
			for {
				i := next.Add(1) - 1
				if int(i) >= len(tasks) {
					return
				}
				t := tasks[i]
				// A private incumbent seeded with the frozen bound,
				// reset per task so no knowledge leaks between tasks —
				// the property that makes the visited set timing-free.
				priv := newLocalIncumbent[N]()
				var zero N
				priv.strengthen(0, frozen, zero)
				v := &optVisitor[S, N]{
					space: space, obj: p.Objective, bound: p.Bound, copyN: p.Copy,
					level: p.PruneLevel, inc: priv, loc: 0, shard: sh,
				}
				// The task root was already visited in phase 1; only
				// its subtree remains.
				expandBelow(gc, v, cancel, sh, t.Node)
				if n, obj, found := priv.result(); found && obj > frozen {
					if !locals[w].found || obj > locals[w].obj {
						locals[w] = localBest{node: n, obj: obj, found: true}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Phase 3: merge.
	bestNode, bestObj, found := inc.result()
	for _, lb := range locals {
		if lb.found && (!found || lb.obj > bestObj) {
			bestNode, bestObj, found = lb.node, lb.obj, true
		}
	}
	stats := m.total()
	stats.Elapsed = time.Since(start)
	return OptResult[N]{Best: bestNode, Objective: bestObj, Found: found, Stats: stats}
}

// collectPrefix searches the tree above the cutoff sequentially
// (visiting and possibly pruning as usual) and appends the unvisited
// subtree roots at the cutoff depth to tasks, in traversal order. The
// recursion depth doubles as the cache level, so each level of the
// prefix reuses one generator.
func collectPrefix[S, N any](gc *genCache[S, N], v visitor[N], sh *WorkerStats, node N, depth, cutoff int, tasks *[]Task[N]) {
	if v.visit(node) != descend {
		return
	}
	if depth >= cutoff {
		*tasks = append(*tasks, Task[N]{Node: node, Depth: depth})
		sh.Spawns++
		return
	}
	g := gc.gen(depth, node)
	for g.HasNext() {
		collectPrefix(gc, v, sh, g.Next(), depth+1, cutoff, tasks)
	}
}
