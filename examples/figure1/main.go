// Figure 1: prints the maximum-clique search tree of the paper's
// running example — the 8-vertex graph whose maximum clique is
// {a, d, f, g}. Each line shows a search-tree node: the current clique
// and the candidate list in the heuristic (colour) order the Lazy Node
// Generator yields them, exactly as Figure 1 of the paper draws it.
package main

import (
	"fmt"
	"sort"
	"strings"

	"yewpar/internal/apps/maxclique"
	"yewpar/internal/core"
)

func main() {
	g, names := maxclique.FigureOneGraph()
	space := maxclique.NewSpace(g)

	fmt.Println("Input graph (Figure 1):")
	for v := 0; v < g.N; v++ {
		var adj []string
		g.Adj[v].ForEach(func(u int) bool {
			adj = append(adj, names[u])
			return true
		})
		fmt.Printf("  %s: %s\n", names[v], strings.Join(adj, " "))
	}
	fmt.Println("\nSearch tree (node = clique [candidates in heuristic order]):")
	printTree(space, maxclique.Root(space), names, 1)

	clique, stats := maxclique.Solve(g, core.Sequential, core.Config{})
	fmt.Printf("\nmaximum clique: %s (size %d), %d nodes visited\n",
		setNames(cliqueMembers(clique.Elements(nil)), names), clique.Count(), stats.Nodes)
}

func printTree(space *maxclique.Space, n maxclique.Node, names map[int]string, depth int) {
	gen := maxclique.Gen(space, n)
	for gen.HasNext() {
		child := gen.Next()
		// The child's own candidate order is what the tree shows.
		var cands []string
		cg := maxclique.Gen(space, child)
		for cg.HasNext() {
			cc := cg.Next()
			added := diff(cc.Clique.Elements(nil), child.Clique.Elements(nil))
			cands = append(cands, names[added])
		}
		fmt.Printf("%s%s [%s]\n", strings.Repeat("  ", depth),
			setNames(child.Clique.Elements(nil), names), strings.Join(cands, ","))
		printTree(space, child, names, depth+1)
	}
}

// diff returns the single element of a not in b.
func diff(a, b []int) int {
	in := map[int]bool{}
	for _, x := range b {
		in[x] = true
	}
	for _, x := range a {
		if !in[x] {
			return x
		}
	}
	return -1
}

func cliqueMembers(vs []int) []int {
	sort.Ints(vs)
	return vs
}

func setNames(vs []int, names map[int]string) string {
	var out []string
	for _, v := range vs {
		out = append(out, names[v])
	}
	return "{" + strings.Join(out, ",") + "}"
}
