package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yewpar/internal/core"
	"yewpar/internal/graph"
)

func run(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := Run(args, &sb); err != nil {
		t.Fatalf("Run(%v): %v", args, err)
	}
	return sb.String()
}

func TestParseSkeletonNames(t *testing.T) {
	cases := map[string]core.Coordination{
		"seq": core.Sequential, "sequential": core.Sequential,
		"depthbounded": core.DepthBounded,
		"stacksteal":   core.StackStealing, "stackstealing": core.StackStealing,
		"budget": core.Budget,
	}
	for name, want := range cases {
		got, err := ParseSkeleton(name)
		if err != nil || got != want {
			t.Errorf("ParseSkeleton(%q) = %v/%v", name, got, err)
		}
	}
	if _, err := ParseSkeleton("nonsense"); err == nil {
		t.Error("bad skeleton accepted")
	}
}

func TestParseOrderNames(t *testing.T) {
	cases := map[string]core.Order{
		"": core.OrderNone, "none": core.OrderNone,
		"discrepancy": core.OrderDiscrepancy, "disc": core.OrderDiscrepancy,
		"bound": core.OrderBound,
	}
	for name, want := range cases {
		got, err := ParseOrder(name)
		if err != nil || got != want {
			t.Errorf("ParseOrder(%q) = %v/%v", name, got, err)
		}
	}
	if _, err := ParseOrder("nonsense"); err == nil {
		t.Error("bad order accepted")
	}
}

// -order flows into the Config and an ordered run reports its stats.
func TestRunOrderedMaxClique(t *testing.T) {
	for _, ord := range []string{"discrepancy", "bound"} {
		var buf bytes.Buffer
		err := Run([]string{"-app", "maxclique", "-skeleton", "depthbounded",
			"-workers", "2", "-localities", "2", "-n", "40", "-order", ord}, &buf)
		if err != nil {
			t.Fatalf("order %s: %v", ord, err)
		}
		out := buf.String()
		if !strings.Contains(out, "maximum clique size:") {
			t.Fatalf("order %s: no result in output:\n%s", ord, out)
		}
		if !strings.Contains(out, "order="+ord) || !strings.Contains(out, "prio-hist=") {
			t.Fatalf("order %s: ordered stats missing from output:\n%s", ord, out)
		}
	}
	var buf bytes.Buffer
	if err := Run([]string{"-app", "maxclique", "-n", "30", "-order", "bogus"}, &buf); err == nil {
		t.Fatal("bad -order accepted")
	}
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := ParseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.App != "maxclique" || o.Skeleton != "seq" || o.Budget != 10000 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestParseArgsRejectsUnknownFlag(t *testing.T) {
	if _, err := ParseArgs([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestConfigMapping(t *testing.T) {
	o, err := ParseArgs([]string{"-workers", "7", "-localities", "3", "-d", "4",
		"-b", "777", "-chunked", "-pool", "deque"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.Config()
	if cfg.Workers != 7 || cfg.Localities != 3 || cfg.DCutoff != 4 ||
		cfg.Budget != 777 || !cfg.Chunked || cfg.Pool != core.DequeKind {
		t.Errorf("Config = %+v", cfg)
	}
}

func TestRunMaxCliqueGenerated(t *testing.T) {
	out := run(t, "-app", "maxclique", "-n", "40", "-p", "0.5", "-seed", "3",
		"-skeleton", "depthbounded", "-workers", "4")
	if !strings.Contains(out, "maximum clique size:") {
		t.Fatalf("output missing result: %q", out)
	}
	if !strings.Contains(out, "skeleton=depthbounded") {
		t.Fatalf("output missing stats: %q", out)
	}
}

func TestRunNamedInstance(t *testing.T) {
	out := run(t, "-app", "maxclique", "-gen", "brock400_4", "-skeleton", "stacksteal", "-workers", "4")
	if !strings.Contains(out, "maximum clique size: 15") {
		t.Fatalf("unexpected result for brock400_4: %q", out)
	}
}

func TestRunUnknownInstance(t *testing.T) {
	var sb strings.Builder
	if err := Run([]string{"-app", "maxclique", "-gen", "no_such"}, &sb); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestRunKCliqueRequiresBound(t *testing.T) {
	var sb strings.Builder
	if err := Run([]string{"-app", "kclique", "-n", "20"}, &sb); err == nil {
		t.Fatal("kclique without -decision-bound accepted")
	}
}

func TestRunKCliqueDecision(t *testing.T) {
	out := run(t, "-app", "kclique", "-n", "40", "-p", "0.9", "-seed", "2",
		"-decision-bound", "5", "-skeleton", "budget", "-b", "50", "-workers", "4")
	if !strings.Contains(out, "5-clique exists: true") {
		t.Fatalf("dense graph should contain a 5-clique: %q", out)
	}
}

func TestRunDIMACSFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.clq")
	g := graph.Random(30, 0.7, 5)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteDIMACS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := run(t, "-app", "maxclique", "-f", path)
	if !strings.Contains(out, "maximum clique size:") {
		t.Fatalf("file-based run failed: %q", out)
	}
}

func TestRunMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := Run([]string{"-app", "maxclique", "-f", "/no/such/file.clq"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunEachApp(t *testing.T) {
	cases := [][]string{
		{"-app", "knapsack", "-items", "16", "-skeleton", "budget", "-b", "100", "-workers", "4"},
		{"-app", "tsp", "-cities", "9", "-skeleton", "depthbounded", "-workers", "4"},
		{"-app", "sip", "-n", "30", "-p", "0.4", "-pattern", "8", "-skeleton", "stacksteal", "-workers", "4"},
		{"-app", "uts", "-uts-b0", "50", "-uts-m", "3", "-uts-q", "0.2", "-workers", "4"},
		{"-app", "uts", "-uts-shape", "geometric", "-uts-b0", "3", "-uts-depth", "8"},
		{"-app", "ns", "-genus", "10", "-skeleton", "budget", "-b", "50", "-workers", "4"},
	}
	for _, args := range cases {
		out := run(t, args...)
		if out == "" {
			t.Errorf("no output for %v", args)
		}
	}
}

func TestRunQueensKnownCount(t *testing.T) {
	out := run(t, "-app", "queens", "-n", "8", "-skeleton", "depthbounded", "-workers", "4")
	if !strings.Contains(out, "8-queens solutions: 92") {
		t.Fatalf("queens output: %q", out)
	}
}

func TestRunNSKnownCount(t *testing.T) {
	out := run(t, "-app", "ns", "-genus", "12")
	if !strings.Contains(out, "genus 12: 592") {
		t.Fatalf("NS count wrong: %q", out)
	}
}

func TestRunUnknownApp(t *testing.T) {
	var sb strings.Builder
	if err := Run([]string{"-app", "sudoku"}, &sb); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunBestFirst(t *testing.T) {
	out := run(t, "-app", "maxclique", "-n", "40", "-p", "0.6", "-skeleton", "bestfirst", "-workers", "4", "-b", "64")
	if !strings.Contains(out, "best-first") {
		t.Fatalf("bestfirst output: %q", out)
	}
	out = run(t, "-app", "knapsack", "-items", "16", "-skeleton", "bestfirst", "-workers", "4", "-b", "128")
	if !strings.Contains(out, "optimal profit") {
		t.Fatalf("bestfirst knapsack output: %q", out)
	}
	out = run(t, "-app", "tsp", "-cities", "9", "-skeleton", "bestfirst", "-workers", "4", "-b", "256")
	if !strings.Contains(out, "optimal tour cost") {
		t.Fatalf("bestfirst tsp output: %q", out)
	}
	var sb strings.Builder
	if err := Run([]string{"-app", "ns", "-skeleton", "bestfirst"}, &sb); err == nil {
		t.Fatal("bestfirst on enumeration app accepted")
	}
	if err := Run([]string{"-app", "maxclique", "-skeleton", "bestfirst", "-f", "/no/file"}, &sb); err == nil {
		t.Fatal("bestfirst with missing file accepted")
	}
}

func TestRunSIPFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.clq")
	g := graph.Random(25, 0.6, 3)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteDIMACS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := run(t, "-app", "sip", "-f", path, "-pattern", "6")
	if !strings.Contains(out, "found in target") {
		t.Fatalf("sip file output: %q", out)
	}
}

func TestRunTraceSummary(t *testing.T) {
	out := run(t, "-app", "maxclique", "-n", "40", "-p", "0.6",
		"-skeleton", "depthbounded", "-workers", "4", "-trace")
	if !strings.Contains(out, "utilisation=") || !strings.Contains(out, "tasks per depth:") {
		t.Fatalf("trace summary missing: %q", out)
	}
}

func TestRunStatsSuppressed(t *testing.T) {
	out := run(t, "-app", "maxclique", "-n", "25", "-stats=false")
	if strings.Contains(out, "nodes=") {
		t.Fatalf("stats printed despite -stats=false: %q", out)
	}
}
