package yewpar

// Integration tests of wire protocol v8 link-fault tolerance: a real
// multi-process TCP deployment in which one worker's physical link to
// the coordinator runs through an in-test proxy that can be severed
// and healed on a schedule. A cut shorter than -link-grace must be
// invisible (session resume: deaths=0, nothing replayed, exact
// optimum); a cut longer than the grace must degrade to the v4 death
// path (deaths=1, ledger replay, exact optimum).

import (
	"io"
	"net"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// linkProxy forwards TCP traffic to target and can sever itself: a cut
// closes every tracked connection and makes new dials fail fast
// (accept-then-close) until the scheduled heal.
type linkProxy struct {
	ln      net.Listener
	target  string
	mu      sync.Mutex
	severed bool
	conns   map[net.Conn]struct{}
}

func newLinkProxy(t *testing.T, target string) *linkProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &linkProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.serve()
	t.Cleanup(func() {
		ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	})
	return p
}

func (p *linkProxy) addr() string { return p.ln.Addr().String() }

func (p *linkProxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		severed := p.severed
		p.mu.Unlock()
		if severed {
			c.Close()
			continue
		}
		// The worker may dial the proxy before the coordinator is
		// listening (registration retries only the dial, and a dial to
		// the proxy succeeds unconditionally): retry upstream so the
		// accepted connection is not burned on a race the worker could
		// have absorbed itself.
		up, err := p.dialUpstream()
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.severed {
			p.mu.Unlock()
			c.Close()
			up.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go p.pipe(c, up)
		go p.pipe(up, c)
	}
}

func (p *linkProxy) dialUpstream() (net.Conn, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		up, err := net.Dial("tcp", p.target)
		if err == nil || time.Now().After(deadline) {
			return up, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *linkProxy) pipe(dst, src net.Conn) {
	io.Copy(dst, src)
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
	dst.Close()
	src.Close()
}

// cut severs the proxy for d: every live connection dies now, and
// reconnect attempts are turned away until the heal.
func (p *linkProxy) cut(d time.Duration) {
	p.mu.Lock()
	p.severed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	time.AfterFunc(d, func() {
		p.mu.Lock()
		p.severed = false
		p.mu.Unlock()
	})
}

var faultLineRE = regexp.MustCompile(`fault: deaths=(\d+) replayed=(\d+) ledger-peak=\d+ resumes=(\d+)`)

// runPartitionedDeployment launches 1 coordinator + 2 workers, with
// worker "1" reaching the coordinator only through a linkProxy that is
// cut for cutDur shortly after registration. It returns the
// coordinator's output (the coordinator must exit cleanly: even the
// over-grace cut is a survivable single failure).
func runPartitionedDeployment(t *testing.T, bin string, appFlags []string, cutAfter, cutDur time.Duration) string {
	t.Helper()
	addr := freeAddr(t)
	proxy := newLinkProxy(t, addr)

	var workers []*exec.Cmd
	for _, dialAddr := range []string{addr, proxy.addr()} {
		w := exec.Command(bin, append(appFlags, "-dist", "worker", "-dist-addr", dialAddr)...)
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker: %v", err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
			w.Wait()
		}
	}()

	ww := &watchWriter{trigger: "all 2 workers registered", arm: func() {
		time.AfterFunc(cutAfter, func() { proxy.cut(cutDur) })
	}}
	coord := exec.Command(bin, append(appFlags, "-dist", "coordinator", "-dist-workers", "2", "-dist-addr", addr)...)
	coord.Stdout = ww
	coord.Stderr = ww
	if err := coord.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator failed across the partition: %v\n%s", err, ww.String())
		}
	case <-time.After(120 * time.Second):
		coord.Process.Kill()
		t.Fatalf("deployment hung across the partition\npartial output:\n%s", ww.String())
	}
	return ww.String()
}

// testPartition runs the partition scenario until the cut provably
// lands mid-search (a fast run can finish inside the arming window —
// scheduling variance, not a bug) and hands the output to verify.
func testPartition(t *testing.T, appFlags []string, cutDur time.Duration, landed func(deaths, replayed, resumes int) bool, verify func(t *testing.T, out string, deaths, replayed, resumes int)) {
	t.Helper()
	bin := yewparBinary(t)
	single, err := exec.Command(bin, appFlags...).CombinedOutput()
	if err != nil {
		t.Fatalf("single-process run failed: %v\n%s", err, single)
	}
	wantAnswer := resultLine(t, string(single))

	for attempt := 1; attempt <= 4; attempt++ {
		out := runPartitionedDeployment(t, bin, appFlags, 250*time.Millisecond, cutDur)
		m := faultLineRE.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("no fault stats line in coordinator output:\n%s", out)
		}
		deaths, replayed, resumes := atoi(t, m[1]), atoi(t, m[2]), atoi(t, m[3])
		if !landed(deaths, replayed, resumes) {
			t.Logf("attempt %d: search finished before the cut landed; retrying", attempt)
			continue
		}
		if got := resultLine(t, out); got != wantAnswer {
			t.Fatalf("answer across the partition %q != failure-free answer %q\nfull output:\n%s", got, wantAnswer, out)
		}
		verify(t, out, deaths, replayed, resumes)
		return
	}
	t.Fatal("search finished before the cut landed on every attempt")
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// A partition shorter than -link-grace is absorbed by a session
// resume: no deaths, no ledger replay, the exact optimum.
func TestDistributedPartitionHealStar(t *testing.T) {
	testDistributedPartitionHeal(t, nil)
}

// The same cut on the mesh topology: only the hub link runs through
// the proxy (peer links dial the advertised peer addresses directly),
// and it too must heal by resuming, not by mourning.
func TestDistributedPartitionHealMesh(t *testing.T) {
	testDistributedPartitionHeal(t, []string{"-topology", "mesh"})
}

func testDistributedPartitionHeal(t *testing.T, extraFlags []string) {
	appFlags := []string{"-app", "maxclique", "-n", "160", "-p", "0.8", "-skeleton", "depthbounded",
		"-d", "2", "-workers", "2", "-link-grace", "2s"}
	appFlags = append(appFlags, extraFlags...)
	testPartition(t, appFlags, 300*time.Millisecond,
		func(deaths, replayed, resumes int) bool { return resumes > 0 || deaths > 0 },
		func(t *testing.T, out string, deaths, replayed, resumes int) {
			if deaths != 0 || replayed != 0 {
				t.Fatalf("sub-grace partition escalated: deaths=%d replayed=%d\n%s", deaths, replayed, out)
			}
			if resumes == 0 {
				t.Fatalf("partition healed without a session resume:\n%s", out)
			}
		})
}

// A partition longer than -link-grace breaks the session and degrades
// to the v4 death path: the severed worker is mourned, its ledger
// entries replay, and the answer is still exact.
func TestDistributedPartitionDeathStar(t *testing.T) {
	appFlags := []string{"-app", "maxclique", "-n", "160", "-p", "0.8", "-skeleton", "depthbounded",
		"-d", "2", "-workers", "2", "-link-grace", "300ms", "-max-failures", "1"}
	testPartition(t, appFlags, 5*time.Second,
		func(deaths, replayed, resumes int) bool { return deaths > 0 },
		func(t *testing.T, out string, deaths, replayed, resumes int) {
			if deaths != 1 {
				t.Fatalf("over-grace partition recorded deaths=%d, want 1\n%s", deaths, out)
			}
			if !strings.Contains(out, "localities=3") {
				t.Errorf("aggregated stats missing localities=3:\n%s", out)
			}
		})
}
