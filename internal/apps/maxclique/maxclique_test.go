package maxclique

import (
	"testing"
	"testing/quick"

	"yewpar/internal/bitset"
	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// bruteForceMaxClique enumerates all subsets (n <= 20).
func bruteForceMaxClique(g *graph.Graph) int {
	best := 0
	for mask := 0; mask < 1<<g.N; mask++ {
		vs := bitset.New(g.N)
		for v := 0; v < g.N; v++ {
			if mask&(1<<v) != 0 {
				vs.Add(v)
			}
		}
		if c := vs.Count(); c > best && g.IsClique(vs) {
			best = c
		}
	}
	return best
}

func TestFigureOneGraph(t *testing.T) {
	g, names := FigureOneGraph()
	if g.N != 8 || g.Edges() != 13 {
		t.Fatalf("figure 1 graph: n=%d m=%d", g.N, g.Edges())
	}
	clique, stats := Solve(g, core.Sequential, core.Config{})
	if clique.Count() != 4 {
		t.Fatalf("max clique size = %d, want 4", clique.Count())
	}
	if !g.IsClique(clique) {
		t.Fatal("returned set is not a clique")
	}
	// The unique maximum clique of Figure 1 is {a, d, f, g}.
	want := map[string]bool{"a": true, "d": true, "f": true, "g": true}
	clique.ForEach(func(v int) bool {
		if !want[names[v]] {
			t.Errorf("unexpected clique member %s", names[v])
		}
		return true
	})
	if stats.Nodes == 0 {
		t.Fatal("no nodes visited")
	}
}

func TestGreedyColourProperties(t *testing.T) {
	g := graph.Random(40, 0.5, 3)
	p := bitset.New(40)
	p.Fill()
	order, colour := GreedyColour(g, p)
	if len(order) != 40 || len(colour) != 40 {
		t.Fatalf("lengths %d/%d", len(order), len(colour))
	}
	// colour is non-decreasing and counts colours used so far
	for i := 1; i < len(colour); i++ {
		if colour[i] < colour[i-1] {
			t.Fatal("colour sequence decreases")
		}
		if colour[i] > colour[i-1]+1 {
			t.Fatal("colour sequence skips")
		}
	}
	// vertices in the same colour class are pairwise non-adjacent
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if colour[i] == colour[j] && g.HasEdge(int(order[i]), int(order[j])) {
				t.Fatalf("colour class %d contains edge (%d,%d)", colour[i], order[i], order[j])
			}
		}
	}
	// every candidate appears exactly once
	seen := bitset.New(40)
	for _, v := range order {
		if seen.Contains(int(v)) {
			t.Fatalf("vertex %d coloured twice", v)
		}
		seen.Add(int(v))
	}
}

func TestColourBoundDominatesCliqueNumber(t *testing.T) {
	// #colours >= max clique within any candidate set
	f := func(seed int64) bool {
		g := graph.Random(14, 0.5, seed)
		p := bitset.New(14)
		p.Fill()
		_, colour := GreedyColour(g, p)
		if len(colour) == 0 {
			return true
		}
		return int(colour[len(colour)-1]) >= bruteForceMaxClique(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			g := graph.Random(14, p, seed)
			want := bruteForceMaxClique(g)
			clique, _ := Solve(g, core.Sequential, core.Config{})
			if clique.Count() != want {
				t.Errorf("seed %d p %.1f: clique %d, want %d", seed, p, clique.Count(), want)
			}
			if !g.IsClique(clique) {
				t.Errorf("seed %d p %.1f: not a clique", seed, p)
			}
		}
	}
}

func TestAllSkeletonsAgree(t *testing.T) {
	g := graph.Random(60, 0.6, 11)
	want, _ := Solve(g, core.Sequential, core.Config{})
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		for _, cfg := range []core.Config{
			{Workers: 4},
			{Workers: 8, Localities: 3, DCutoff: 2, Budget: 50, Chunked: true},
		} {
			clique, _ := Solve(g, coord, cfg)
			if clique.Count() != want.Count() {
				t.Errorf("%v: clique %d, want %d", coord, clique.Count(), want.Count())
			}
			if !g.IsClique(clique) {
				t.Errorf("%v: returned non-clique", coord)
			}
		}
	}
}

func TestHandcodedMatchesSkeleton(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		g := graph.Random(50, 0.7, seed)
		skel, _ := Solve(g, core.Sequential, core.Config{})
		seq, _ := SeqHandcoded(g)
		par, _ := ParHandcoded(g, 4)
		if seq.Count() != skel.Count() {
			t.Errorf("seed %d: handcoded seq %d, skeleton %d", seed, seq.Count(), skel.Count())
		}
		if par.Count() != skel.Count() {
			t.Errorf("seed %d: handcoded par %d, skeleton %d", seed, par.Count(), skel.Count())
		}
		if !g.IsClique(seq) || !g.IsClique(par) {
			t.Errorf("seed %d: handcoded returned non-clique", seed)
		}
	}
}

func TestHandcodedEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.New(0)
	if c, _ := SeqHandcoded(empty); c.Count() != 0 {
		t.Fatal("empty graph clique non-empty")
	}
	if c, _ := ParHandcoded(empty, 2); c.Count() != 0 {
		t.Fatal("empty graph clique non-empty (par)")
	}
	single := graph.New(1)
	if c, _ := SeqHandcoded(single); c.Count() != 1 {
		t.Fatalf("single-vertex clique = %d, want 1", c.Count())
	}
	edgeless := graph.New(5)
	if c, _ := SeqHandcoded(edgeless); c.Count() != 1 {
		t.Fatalf("edgeless clique = %d, want 1", c.Count())
	}
}

func TestDecisionSatisfiable(t *testing.T) {
	g, planted := graph.PlantedClique(80, 0.3, 9, 5)
	_ = planted
	for _, coord := range []core.Coordination{core.Sequential, core.DepthBounded, core.StackStealing, core.Budget} {
		clique, found, _ := Decide(g, 9, coord, core.Config{Workers: 4})
		if !found {
			t.Errorf("%v: planted 9-clique not found", coord)
			continue
		}
		if clique.Count() < 9 {
			t.Errorf("%v: witness has %d vertices", coord, clique.Count())
		}
		if !g.IsClique(clique) {
			t.Errorf("%v: witness not a clique", coord)
		}
	}
}

func TestDecisionUnsatisfiable(t *testing.T) {
	g := graph.Random(40, 0.3, 17)
	max, _ := Solve(g, core.Sequential, core.Config{})
	k := max.Count() + 1
	for _, coord := range []core.Coordination{core.Sequential, core.DepthBounded, core.StackStealing, core.Budget} {
		_, found, _ := Decide(g, k, coord, core.Config{Workers: 4})
		if found {
			t.Errorf("%v: found impossible %d-clique", coord, k)
		}
	}
}

func TestDecisionPrunesAgainstTarget(t *testing.T) {
	g := graph.Random(40, 0.5, 23)
	// Impossibly large target: the colour bound should prune hard, so
	// far fewer nodes than the optimisation search of the same graph.
	_, found, stats := Decide(g, 39, core.Sequential, core.Config{})
	if found {
		t.Fatal("absurd clique found")
	}
	if stats.Prunes == 0 {
		t.Error("decision bound never pruned")
	}
}

func TestRootNode(t *testing.T) {
	g := graph.Random(10, 0.5, 1)
	s := NewSpace(g)
	root := Root(s)
	if root.Size != 0 || root.Cands.Count() != 10 || !root.Clique.Empty() {
		t.Fatalf("bad root: %+v", root)
	}
	if UpperBound(s, root) < int64(bruteForceMaxClique(g)) {
		t.Fatal("root bound not admissible")
	}
}

func TestGenChildOrderIsReverseColour(t *testing.T) {
	g := graph.Random(20, 0.5, 9)
	s := NewSpace(g)
	root := Root(s)
	order, colour := GreedyColour(g, root.Cands)
	gen := Gen(s, root)
	i := len(order) - 1
	for gen.HasNext() {
		child := gen.Next()
		v := int(order[i])
		if !child.Clique.Contains(v) {
			t.Fatalf("child %d should add vertex %d", len(order)-1-i, v)
		}
		// The extension bound is the MCSa colour[i] - 1: v's own colour
		// class cannot survive the candidate intersection.
		if child.Bound != int(colour[i])-1 {
			t.Fatalf("child bound %d, want colour-1 %d", child.Bound, int(colour[i])-1)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("generator yielded %d children, want %d", len(order)-1-i, len(order))
	}
}

func TestGenChildCandidatesSound(t *testing.T) {
	// every candidate of a child is adjacent to all clique members
	g := graph.Random(30, 0.5, 13)
	s := NewSpace(g)
	gen := Gen(s, Root(s))
	for gen.HasNext() {
		child := gen.Next()
		child.Cands.ForEach(func(c int) bool {
			child.Clique.ForEach(func(m int) bool {
				if !g.HasEdge(c, m) {
					t.Fatalf("candidate %d not adjacent to clique member %d", c, m)
				}
				return true
			})
			return true
		})
	}
}

func TestDegeneracySpaceSameAnswer(t *testing.T) {
	for seed := int64(40); seed < 46; seed++ {
		g := graph.Random(45, 0.6, seed)
		plain, _ := Solve(g, core.Sequential, core.Config{})
		s, orig := NewSpaceDegeneracy(g)
		res := core.Opt(core.Sequential, s, Root(s), OptProblem(), core.Config{})
		if int(res.Objective) != plain.Count() {
			t.Errorf("seed %d: degeneracy order found %d, plain %d", seed, res.Objective, plain.Count())
		}
		// the witness translates back to a clique of the original graph
		back := bitset.New(g.N)
		res.Best.Clique.ForEach(func(v int) bool {
			back.Add(orig[v])
			return true
		})
		if !g.IsClique(back) {
			t.Errorf("seed %d: translated witness is not a clique", seed)
		}
	}
}

func BenchmarkSolveSeqSkeleton(b *testing.B) {
	g := graph.Random(80, 0.7, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(g, core.Sequential, core.Config{})
	}
}

func BenchmarkSolveSeqHandcoded(b *testing.B) {
	g := graph.Random(80, 0.7, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SeqHandcoded(g)
	}
}
