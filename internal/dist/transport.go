package dist

import (
	"sync"
	"sync/atomic"
)

// WireTask is a unit of work as it crosses a locality boundary: an
// application search-tree node, its absolute depth, its scheduling
// priority, and a snapshot of the sender's best known bound at
// hand-over time. The thief merges Bound into its own cache before
// running the task, so stolen work never prunes against knowledge
// older than its victim's. Prio (lower = better, zero when the engine
// runs unordered) survives the hand-over so that a distributed search
// stays globally ordered: a stolen task re-enters the thief's priority
// pool exactly where it left the victim's.
//
// ID is the hand-over's supervision ticket (v4): the victim mints it
// when the task leaves (TaskID packs the victim's rank and a local
// sequence number), retains a copy of the task in its ledger under the
// id, and retires the copy when the thief acks the id after the
// task's whole subtree has completed (Transport.Ack → Handler.OnAck at
// the victim). If the thief dies first, the unacked entries are
// exactly the subtree roots the dead rank was holding, and the victim
// re-enqueues them. ID zero means the hand-over is unsupervised (no
// ack owed).
//
// Exactly one of Payload and Local is set. Wire transports carry the
// node encoded by the engine's Codec in Payload; the in-process
// loopback transport passes the engine's task value by reference in
// Local, avoiding a serialise/deserialise round trip that shared
// memory does not need.
type WireTask struct {
	Payload []byte
	Local   any
	ID      uint64
	Depth   int
	Prio    int
	Bound   int64
}

// TaskID mints a hand-over id: a per-victim sequence number in the
// high bits, the victim's rank+1 in the low 16 (so zero — "no ack
// owed" — is never minted, and TaskOrigin can route a completion ack
// without carrying the origin separately). Rank in the LOW bits is a
// wire-size decision: ids appear in every steal reply and ack batch as
// uvarints, and a fresh deployment's ids should cost 2-4 bytes, not
// the 8-9 a high-bits rank would force from the first hand-over.
func TaskID(rank int, seq uint64) uint64 {
	return seq<<16 | (uint64(rank+1) & 0xFFFF)
}

// TaskOrigin recovers the rank that minted an id (the ack's
// destination). -1 for the zero (unsupervised) id.
func TaskOrigin(id uint64) int { return int(id&0xFFFF) - 1 }

// Handler is the locality engine's side of a Transport: the transport
// calls it to serve incoming traffic. Implementations must be safe for
// concurrent use — wire transports invoke handlers from their receive
// goroutines while search workers run.
type Handler interface {
	// ServeSteal hands over one task to the thief locality, typically
	// the shallowest (largest expected subtree) in the local workpool.
	// It reports false when the locality has no spare work.
	ServeSteal(thief int) (WireTask, bool)
	// OnBound delivers a peer locality's improved incumbent bound.
	// Deliveries may arrive late or out of order; receivers must merge
	// with a monotonic max.
	OnBound(from int, obj int64)
	// OnCancel delivers a peer's global short-circuit (a decision
	// search found its witness). It may be called more than once.
	OnCancel(from int)
	// OnTask delivers a task that was stolen on this locality's
	// behalf but could not be handed to the requesting worker — e.g.
	// the steal reply arrived after the request timed out, or the
	// reply carried a batch and this task is one of the extras beyond
	// the requesting worker's single slot. The locality must enqueue
	// it as local work: the task left its victim's pool and is still
	// registered in the global live count, so dropping it would lose
	// part of the search tree and hang termination.
	OnTask(t WireTask)
	// OnAck delivers a completion ack for a task this locality handed
	// over (Transport.Ack on the thief side): the subtree rooted at
	// the task with the given hand-over id has fully completed, so the
	// retained ledger copy can be retired. Acks may arrive for ids
	// already retired by a death replay; receivers must treat retire
	// as idempotent.
	OnAck(from int, id uint64)
}

// StealRanker is an optional Handler extension for localities that can
// rank the work a thief would get: BestStealPrio reports the priority
// (lower = better) of the best task ServeSteal would currently hand
// over, and whether any stealable work exists at all. Transports use it
// to piggyback a best-available-priority summary on outgoing frames,
// which peers feed into priority-aware victim selection.
type StealRanker interface {
	BestStealPrio() (int, bool)
}

// PrioAware is an optional Transport extension: transports that track
// peers' advertised best-available priorities (from piggybacked frame
// summaries, or by direct inspection on the loopback network) report
// them through PeerBestPrio. known is false when nothing has been heard
// from the rank; prio == PrioNone with known == true means the peer
// last advertised an empty pool. Summaries are hints — they may be
// stale the moment they are read — so callers use them to order victim
// probing, never to skip a victim outright.
type PrioAware interface {
	PeerBestPrio(rank int) (prio int, known bool)
}

// PrioNone is the advertised priority of a locality with no stealable
// work.
const PrioNone = -1

// IncumbentStore is an optional Transport extension: transports that
// retain the best (obj, node) pair published through BroadcastBound or
// Cancel expose it at rank 0, so the global optimum (or decision
// witness) survives the death of the locality that found it. Both
// bundled transports implement it; only the rank-0 endpoint's answer
// is meaningful.
type IncumbentStore interface {
	BestKnown() (obj int64, node []byte, ok bool)
}

// Promoter is an optional Transport extension implemented by endpoints
// that can inherit the coordinator role when rank 0 dies mid-search
// (wire protocol v7, WireOptions.Standby). Promoted reports whether
// THIS endpoint has taken the role over: after a takeover it — not
// rank 0, which is dead — holds the incumbent retention and receives
// the terminal Gather, so result extraction consults Promoted wherever
// it would have tested Rank() == 0.
type Promoter interface {
	Promoted() bool
}

// Promoted reports whether tr has taken over the coordinator role
// (false for transports that cannot).
func Promoted(tr Transport) bool {
	p, ok := tr.(Promoter)
	return ok && p.Promoted()
}

// AckRelay is an optional Transport extension reporting whether this
// endpoint's completion acks travel THROUGH the coordinator rather
// than directly to their origin. The engine consults it when rank 0
// dies: on a relaying topology (the star) any in-flight ack may have
// died unrelayed in the coordinator's buffers, so the only safe
// continuation of every outstanding hand-over is a local replay
// (ledger reapAll). Mesh acks are origin-direct and the loopback's
// are immediate, so neither implements this.
type AckRelay interface {
	AcksRelayed() bool
}

// incumbentBox is the shared retention cell behind IncumbentStore.
type incumbentBox struct {
	mu   sync.Mutex
	obj  int64
	node []byte
	ok   bool
}

// keep retains (obj, node) when it beats the current retained pair,
// reporting whether the retention improved (the replication layer
// ships only improvements). nil nodes are never retained: a bound
// without its node cannot reconstruct a result.
func (b *incumbentBox) keep(obj int64, node []byte) bool {
	if node == nil {
		return false
	}
	b.mu.Lock()
	improved := !b.ok || obj > b.obj
	if improved {
		b.obj, b.node, b.ok = obj, node, true
	}
	b.mu.Unlock()
	return improved
}

func (b *incumbentBox) best() (int64, []byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.obj, b.node, b.ok
}

// deathBox is the per-endpoint death-notification buffer behind
// Deaths(): each rank is announced at most once, and announcements
// never block the transport.
type deathBox struct {
	mu   sync.Mutex
	seen map[int]bool
	ch   chan int
}

func newDeathBox(size int) *deathBox {
	return &deathBox{seen: make(map[int]bool), ch: make(chan int, size)}
}

// announce queues rank on the notification channel, once per rank.
// It reports whether this was the first announcement.
func (d *deathBox) announce(rank int) bool {
	d.mu.Lock()
	if d.seen[rank] {
		d.mu.Unlock()
		return false
	}
	d.seen[rank] = true
	d.mu.Unlock()
	select {
	case d.ch <- rank:
	default: // buffer sized to the deployment; can only overflow on duplicates
	}
	return true
}

// isDead reports whether rank's death has been announced here. The
// failover path uses it to pick the takeover candidate: the lowest
// rank not known dead is the rank the hub was replicating to.
func (d *deathBox) isDead(rank int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen[rank]
}

// StackSplitter is an optional Handler extension for localities that
// can split a live generator stack on demand (the stack-stealing
// coordination's (spawn-stack) rule). ServeSplit is like
// ServeStealMulti but may *create* work that was never materialised as
// pool tasks: when the pool is empty, the locality asks one of its
// running workers to split the bottom of its expansion stack and hands
// the donated nodes over. It may block briefly (a few milliseconds)
// while a worker reaches its next poll point, so wire transports serve
// it off their read loops. An empty reply means the locality had
// neither pool work nor a splittable stack.
type StackSplitter interface {
	ServeSplit(thief, max int) []WireTask
}

// SplitStealer is an optional Transport extension: SplitSteal is Steal
// with split semantics — the victim falls back to splitting a running
// worker's live stack when its pool is dry. Transports implement it
// only when their peers speak the kSplit vocabulary (protocol v6).
type SplitStealer interface {
	SplitSteal(victim int) (WireTask, bool, error)
}

// MultiStealer is an optional Handler extension for transports whose
// steal replies carry batches. A handler that implements it decides
// how many tasks (up to max, at least zero) one thief may take in a
// single exchange — the engine uses a steal-half policy so a batching
// thief cannot starve its victim. Handlers without it still work:
// transports fall back to calling ServeSteal up to max times.
type MultiStealer interface {
	ServeStealMulti(thief, max int) []WireTask
}

// collectSplit gathers up to want tasks for one split-steal reply: the
// StackSplitter path when the handler has one (which itself prefers
// pool work and falls back to splitting a live stack), else a plain
// pool steal — a peer speaking kSplit to a pool-only locality still
// gets whatever a kSteal would have.
func collectSplit(hd Handler, thief, want int) []WireTask {
	if hd == nil {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if sp, ok := hd.(StackSplitter); ok {
		return sp.ServeSplit(thief, want)
	}
	return collectSteal(hd, thief, want)
}

// collectSteal gathers up to want tasks from a handler for one steal
// reply, via the MultiStealer fast path when available.
func collectSteal(hd Handler, thief, want int) []WireTask {
	if hd == nil {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if ms, ok := hd.(MultiStealer); ok && want > 1 {
		return ms.ServeStealMulti(thief, want)
	}
	var ts []WireTask
	for len(ts) < want {
		t, ok := hd.ServeSteal(thief)
		if !ok {
			break
		}
		ts = append(ts, t)
	}
	return ts
}

// WireStats is a transport endpoint's traffic counters. Wire
// transports count real frames and bytes; the loopback transport
// counts logical messages (what a wire transport would have sent) with
// payload bytes only, so single-process experiments can still report
// protocol pressure.
type WireStats struct {
	FramesSent   int64
	FramesRecv   int64
	BytesSent    int64
	BytesRecv    int64
	StealTasks   int64 // tasks received in steal replies (batch occupancy numerator)
	StealReplies int64 // non-empty steal replies received (batch occupancy denominator)
	Resumes      int64 // v8 session resumes completed at this endpoint
}

// LinkHealth is implemented by transports with a two-phase liveness
// view (v8): Suspected reports a rank quarantined by heartbeat silence
// or a mid-resume link — still alive as far as anyone knows, but not
// worth aiming steals at. Victim selection skips suspected ranks; they
// either recover (and rejoin the order) or graduate to Deaths().
type LinkHealth interface {
	Suspected(rank int) bool
}

// Meter is implemented by transports that count their traffic.
type Meter interface {
	Wire() WireStats
}

// wireCounters is the shared atomic backing of a WireStats snapshot.
type wireCounters struct {
	framesSent   atomic.Int64
	framesRecv   atomic.Int64
	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	stealTasks   atomic.Int64
	stealReplies atomic.Int64
	resumes      atomic.Int64
}

func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		FramesSent:   c.framesSent.Load(),
		FramesRecv:   c.framesRecv.Load(),
		BytesSent:    c.bytesSent.Load(),
		BytesRecv:    c.bytesRecv.Load(),
		StealTasks:   c.stealTasks.Load(),
		StealReplies: c.stealReplies.Load(),
		Resumes:      c.resumes.Load(),
	}
}

// raiseMax monotonically raises a to at least v, reporting whether the
// value increased (false for stale or duplicate deliveries).
func raiseMax(a *atomic.Int64, v int64) bool {
	for {
		cur := a.Load()
		if v <= cur {
			return false
		}
		if a.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// Transport connects one locality to its peers. It is the pluggable
// communication substrate of the distributed runtime: the engine above
// it is identical whether the peers are goroutines in this process
// (Loopback) or OS processes across a network (TCP).
//
// Ranks are dense integers 0..Size()-1; rank 0 is the coordinator and
// owns the root of the search tree. All methods except Start and Close
// require Start to have been called.
type Transport interface {
	// Rank is this locality's identity.
	Rank() int
	// Size is the number of localities in the deployment.
	Size() int
	// Start attaches the locality engine and begins serving incoming
	// traffic. It must be called exactly once, before any search
	// worker runs.
	Start(h Handler)
	// Steal requests one task from the victim locality, blocking until
	// the victim replies (or the transport decides it never will). The
	// bool reports whether a task was obtained; errors are reserved
	// for transport failure, not empty-handed steals.
	Steal(victim int) (WireTask, bool, error)
	// BroadcastBound publishes an improved incumbent bound to every
	// other locality, asynchronously: peers learn it after the
	// transport's delivery latency, pruning against stale knowledge in
	// the meantime. node, when non-nil, is the codec-encoded incumbent
	// node itself: the transport retains the best (obj, node) pair
	// where rank 0 can reach it (IncumbentStore), so the optimum
	// survives the death of the locality that found it. nil skips the
	// retention (in-process deployments share the incumbent anyway).
	BroadcastBound(obj int64, node []byte) error
	// Cancel propagates a global short-circuit to every other
	// locality. witness, when non-nil, is the codec-encoded node that
	// satisfied the decision target, retained like a broadcast node so
	// the witness survives its finder's death.
	Cancel(obj int64, witness []byte) error
	// Ack reports to the locality that minted id (origin ==
	// TaskOrigin(id)) that the subtree handed over under the id has
	// fully completed; the origin's Handler.OnAck retires the retained
	// copy. Acks to a dead origin are silently dropped — its ledger
	// died with it.
	Ack(origin int, id uint64) error
	// AddTasks adjusts the global live-task count by delta: +k when
	// spawning k tasks (before they become visible to any worker), -1
	// when a task completes. The count underpins distributed
	// termination detection. Contributions are attributed to this
	// rank, so that a dead rank's outstanding contribution can be
	// reconciled away instead of wedging the count above zero forever.
	AddTasks(delta int64)
	// Done is closed when the global live-task count returns to zero —
	// every spawned task has completed, so no locality can ever
	// receive work again. A locality death does not force it: the
	// dead rank's contribution is subtracted and the survivors run on.
	Done() <-chan struct{}
	// Deaths notifies this locality of peer deaths, one rank per
	// receive, each dead rank delivered at most once. The engine
	// replays its ledger entries for the rank and stops picking it as
	// a steal victim. The channel is buffered (never blocks the
	// transport) and is not closed; consumers select against their own
	// shutdown signal.
	Deaths() <-chan int
	// Gather is a terminal collective: every locality contributes one
	// payload, and rank 0 receives all of them indexed by rank (its
	// own included). Non-root callers return (nil, nil) as soon as
	// their payload is on the way. A dead locality's slot is nil.
	Gather(payload []byte) ([][]byte, error)
	// Close releases the transport's resources. Safe to call more
	// than once.
	Close() error
}
