package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Micro-benchmarks of the runtime substrate: pool throughput under
// contention and incumbent strengthen/read costs. These are the hot
// paths whose costs set the minimum useful task granularity.

func benchmarkPool(b *testing.B, p Pool[int]) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p.Push(Task[int]{Node: i, Depth: i % 8})
			p.Pop()
			i++
		}
	})
}

func BenchmarkDepthPoolPushPop(b *testing.B) { benchmarkPool(b, NewDepthPool[int]()) }
func BenchmarkDequePushPop(b *testing.B)     { benchmarkPool(b, NewDeque[int]()) }

// BenchmarkShardedPoolOwnerPushPop measures the uncontended owner hot
// path of the sharded pool: every parallel worker hammers its own
// shard, the way the engine's spawn/pop loop does.
func BenchmarkShardedPoolOwnerPushPop(b *testing.B) {
	b.ReportAllocs()
	p := NewShardedPool[int](DepthPoolKind, runtime.GOMAXPROCS(0))
	var next atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		shard := p.Shard(int(next.Add(1)-1) % p.Shards())
		i := 0
		for pb.Next() {
			shard.Push(Task[int]{Node: i, Depth: i % 8})
			shard.Pop()
			i++
		}
	})
}

// BenchmarkSharedPoolPushPop is the ablation baseline: all workers
// contending on one DepthPool, the pre-sharding design.
func BenchmarkSharedPoolPushPop(b *testing.B) {
	benchmarkPool(b, NewShardedPool[int](DepthPoolKind, 1))
}

// BenchmarkPrioPoolPushPop measures the ordered-scheduling hot path:
// every parallel worker hammers its own PrioBucketPool shard, the way
// the ordered engine's spawn/pop loop does. Compare against
// BenchmarkPrioHeapPushPop (the retired global mutex+heap) and
// BenchmarkSharedPrioPoolPushPop (one shared bucket pool) for the
// sharding and bucketing components.
func BenchmarkPrioPoolPushPop(b *testing.B) {
	b.ReportAllocs()
	p := NewShardedPool[int](PrioBucketKind, runtime.GOMAXPROCS(0))
	var next atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		shard := p.Shard(int(next.Add(1)-1) % p.Shards())
		i := int32(0)
		for pb.Next() {
			shard.Push(Task[int]{Node: int(i), Prio: i % 16})
			shard.Pop()
			i++
		}
	})
}

// BenchmarkSharedPrioPoolPushPop is the unsharded ablation: all
// workers contending on one PrioBucketPool.
func BenchmarkSharedPrioPoolPushPop(b *testing.B) {
	b.ReportAllocs()
	p := NewPrioBucketPool[int]()
	b.RunParallel(func(pb *testing.PB) {
		i := int32(0)
		for pb.Next() {
			p.Push(Task[int]{Node: int(i), Prio: i % 16})
			p.Pop()
			i++
		}
	})
}

// BenchmarkPrioHeapPushPop is the retired design: the single global
// mutex+heap PrioPool that backed BestFirst before the bucketed
// sharded pool replaced it (the 252 ns/op baseline in
// BENCH_engine.json).
func BenchmarkPrioHeapPushPop(b *testing.B) {
	b.ReportAllocs()
	p := &heapPrioPool[int]{}
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			p.PushPrio(Task[int]{Node: int(i)}, i%16)
			p.PopPrio()
			i++
		}
	})
}

func BenchmarkIncumbentLocalBest(b *testing.B) {
	b.ReportAllocs()
	in := newTestIncumbent[int](4, 0)
	in.strengthen(0, 100, 1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if in.localBest(0) != 100 {
				b.Fatal("wrong bound")
			}
		}
	})
}

func BenchmarkIncumbentStrengthenContention(b *testing.B) {
	b.ReportAllocs()
	in := newTestIncumbent[int](4, 0)
	var mu sync.Mutex
	next := int64(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			next++
			v := next
			mu.Unlock()
			in.strengthen(int(v)%4, v, int(v))
		}
	})
}

func BenchmarkSequentialEngineOverhead(b *testing.B) {
	// Cost per node of the generic engine on a featherweight problem:
	// upper-bounds the skeleton tax measured in Table 1.
	b.ReportAllocs()
	tree := genTree(1, 4, 9)
	p := tree.enumProblem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enum(Sequential, tree, testNode{}, p, Config{})
	}
}
