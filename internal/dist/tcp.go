package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport realises a deployment of real OS processes: one
// coordinator (rank 0) and n workers (ranks 1..n), in a star topology.
// Workers hold a single TCP connection to the coordinator, which
// routes worker↔worker traffic; all frames are gob-encoded. The star
// keeps connection management linear in the cluster size and gives the
// coordinator the global view it needs anyway for termination
// detection and result aggregation.

const (
	// registration must complete within this window or Wait fails.
	regTimeout = 120 * time.Second
	// dial keeps retrying (the coordinator may not be listening yet).
	dialTimeout = 30 * time.Second
)

// stealTimeout bounds a steal request whose reply never arrives; a
// reply landing after it is adopted via Handler.OnTask. A variable so
// tests can exercise the late-reply path without the full wait.
var stealTimeout = 10 * time.Second

type kind uint8

const (
	kHello     kind = iota // worker→hub: registration (Blob = spec)
	kWelcome               // hub→worker: To = rank, Delta = size
	kReject                // hub→worker: registration refused (Blob = reason)
	kSteal                 // From = thief, To = victim
	kStealR                // From = victim, To = thief
	kBound                 // From, Obj
	kCancel                // From
	kDelta                 // Delta
	kTerminate             // global live-task count reached zero
	kGather                // From, Blob
)

// frame is the single wire message; unused fields are zero.
type frame struct {
	Kind  kind
	From  int
	To    int
	Seq   uint64
	OK    bool
	Obj   int64
	Delta int64
	Blob  []byte
	Task  WireTask
}

// wconn is one gob-framed TCP connection with serialised writes.
type wconn struct {
	c    net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
	dead atomic.Bool
}

func newWconn(c net.Conn) *wconn {
	return &wconn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (cn *wconn) send(f *frame) error {
	if cn.dead.Load() {
		return errors.New("dist: connection closed")
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if err := cn.enc.Encode(f); err != nil {
		cn.dead.Store(true)
		return err
	}
	return nil
}

func (cn *wconn) recv(f *frame) error {
	if err := cn.dec.Decode(f); err != nil {
		cn.dead.Store(true)
		return err
	}
	return nil
}

func (cn *wconn) close() { cn.dead.Store(true); cn.c.Close() }

// stealRes is a pending steal's reply slot.
type stealRes struct {
	task WireTask
	ok   bool
}

// pendingSteals tracks in-flight steal requests by sequence number.
type pendingSteals struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]*pendingSteal
}

type pendingSteal struct {
	victim int
	ch     chan stealRes
}

func (p *pendingSteals) register(victim int) (uint64, chan stealRes) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[uint64]*pendingSteal)
	}
	p.next++
	ch := make(chan stealRes, 1)
	p.m[p.next] = &pendingSteal{victim: victim, ch: ch}
	return p.next, ch
}

// resolve delivers a steal reply to its waiter, reporting false when
// the request is no longer pending (it timed out): the caller then
// owns the reply and must not drop a carried task.
func (p *pendingSteals) resolve(seq uint64, res stealRes) bool {
	p.mu.Lock()
	ps := p.m[seq]
	delete(p.m, seq)
	p.mu.Unlock()
	if ps == nil {
		return false
	}
	ps.ch <- res
	return true
}

func (p *pendingSteals) drop(seq uint64) {
	p.mu.Lock()
	delete(p.m, seq)
	p.mu.Unlock()
}

// failVictim resolves every pending steal aimed at a dead victim.
func (p *pendingSteals) failVictim(victim int) {
	p.mu.Lock()
	var chs []chan stealRes
	for seq, ps := range p.m {
		if ps.victim == victim {
			chs = append(chs, ps.ch)
			delete(p.m, seq)
		}
	}
	p.mu.Unlock()
	for _, ch := range chs {
		ch <- stealRes{}
	}
}

// failAll resolves every pending steal (the link itself died).
func (p *pendingSteals) failAll() {
	p.mu.Lock()
	var chs []chan stealRes
	for seq, ps := range p.m {
		chs = append(chs, ps.ch)
		delete(p.m, seq)
	}
	p.mu.Unlock()
	for _, ch := range chs {
		ch <- stealRes{}
	}
}

// Listener is the coordinator's registration endpoint. NewListener
// binds immediately (so Addr can be advertised); Wait blocks until the
// expected number of workers has registered, then returns the
// coordinator's Transport. Search therefore cannot start before every
// locality is present.
type Listener struct {
	ln   net.Listener
	spec string
}

// NewListener binds the coordinator's address. spec is an arbitrary
// deployment description (application, instance, parameters); workers
// must present an identical spec, which catches the classic
// distributed-search operator error of launching localities on
// different problems.
func NewListener(addr, spec string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln, spec: spec}, nil
}

// Addr returns the bound address (useful with a ":0" listen address).
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close aborts a pending Wait.
func (l *Listener) Close() error { return l.ln.Close() }

// Wait accepts registrations until `workers` workers are connected,
// then welcomes each with its rank and returns the coordinator
// transport (rank 0 of a size workers+1 deployment).
func (l *Listener) Wait(workers int) (Transport, error) {
	if workers < 1 {
		return nil, fmt.Errorf("dist: coordinator needs at least 1 worker, got %d", workers)
	}
	deadline := time.Now().Add(regTimeout)
	h := &hub{
		size:    workers + 1,
		conns:   make([]*wconn, workers+1),
		started: make(chan struct{}),
		done:    make(chan struct{}),
		blobs:   make([][]byte, workers+1),
		contrib: make([]bool, workers+1),
		gotAll:  make(chan struct{}),
		ln:      l.ln,
	}
	for rank := 1; rank <= workers; rank++ {
		if d, ok := l.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		c, err := l.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: registration failed waiting for worker %d/%d: %w", rank, workers, err)
		}
		cn := newWconn(c)
		// The registration deadline must also bound the hello read: a
		// connection that never sends a frame (port scan, stalled
		// peer) must not hang Wait past the window.
		c.SetReadDeadline(deadline)
		var hello frame
		if err := cn.recv(&hello); err != nil || hello.Kind != kHello {
			cn.close()
			return nil, fmt.Errorf("dist: bad registration from %v", c.RemoteAddr())
		}
		c.SetReadDeadline(time.Time{})
		if string(hello.Blob) != l.spec {
			cn.send(&frame{Kind: kReject, Blob: []byte(fmt.Sprintf("spec mismatch: coordinator runs %q, worker runs %q", l.spec, string(hello.Blob)))})
			cn.close()
			return nil, fmt.Errorf("dist: worker %v registered with mismatched spec %q (coordinator: %q)", c.RemoteAddr(), string(hello.Blob), l.spec)
		}
		h.conns[rank] = cn
	}
	if d, ok := l.ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Time{})
	}
	for rank := 1; rank <= workers; rank++ {
		if err := h.conns[rank].send(&frame{Kind: kWelcome, To: rank, Delta: int64(h.size), Blob: []byte(l.spec)}); err != nil {
			return nil, fmt.Errorf("dist: welcoming worker %d: %w", rank, err)
		}
	}
	for rank := 1; rank <= workers; rank++ {
		go h.serve(rank)
	}
	return h, nil
}

// hub is the coordinator transport: rank 0's endpoint plus the router
// for worker↔worker traffic and the home of the global live-task
// counter.
type hub struct {
	size    int
	conns   []*wconn // index by rank; conns[0] is nil
	h       atomic.Value
	started chan struct{}
	stOnce  sync.Once

	live     atomic.Int64
	done     chan struct{}
	doneOnce sync.Once

	pending pendingSteals

	gatherMu sync.Mutex
	blobs    [][]byte
	contrib  []bool
	have     int
	gotAll   chan struct{}

	closed atomic.Bool
	ln     net.Listener
}

var _ Transport = (*hub)(nil)

func (h *hub) Rank() int { return 0 }
func (h *hub) Size() int { return h.size }

func (h *hub) Start(hd Handler) {
	h.h.Store(hd)
	h.stOnce.Do(func() { close(h.started) })
}

// handler blocks until Start (or Close) and returns the attached
// handler, which is nil only when the hub was closed before Start.
func (h *hub) handler() Handler {
	<-h.started
	hd, _ := h.h.Load().(Handler)
	return hd
}

// serve routes one worker connection until it dies.
func (h *hub) serve(rank int) {
	cn := h.conns[rank]
	for {
		var f frame
		if err := cn.recv(&f); err != nil {
			h.workerDied(rank)
			return
		}
		switch f.Kind {
		case kSteal:
			if f.To == 0 {
				var wt WireTask
				var ok bool
				if hd := h.handler(); hd != nil {
					wt, ok = hd.ServeSteal(f.From)
				}
				cn.send(&frame{Kind: kStealR, From: 0, To: f.From, Seq: f.Seq, Task: wt, OK: ok})
				break
			}
			if !h.forward(f.To, &f) {
				cn.send(&frame{Kind: kStealR, From: f.To, To: f.From, Seq: f.Seq})
			}
		case kStealR:
			if f.To == 0 {
				if !h.pending.resolve(f.Seq, stealRes{task: f.Task, ok: f.OK}) && f.OK {
					// The request timed out before this reply landed;
					// the task is ours now — keep it as local work.
					if hd := h.handler(); hd != nil {
						hd.OnTask(f.Task)
					}
				}
				break
			}
			h.forward(f.To, &f)
		case kBound:
			if hd := h.handler(); hd != nil {
				hd.OnBound(f.From, f.Obj)
			}
			h.fanOut(&f, rank)
		case kCancel:
			if hd := h.handler(); hd != nil {
				hd.OnCancel(f.From)
			}
			h.fanOut(&f, rank)
		case kDelta:
			h.AddTasks(f.Delta)
		case kGather:
			h.contribute(f.From, f.Blob)
		}
	}
}

// forward sends a frame to a worker; false when the worker is gone.
func (h *hub) forward(rank int, f *frame) bool {
	if rank <= 0 || rank >= h.size {
		return false
	}
	cn := h.conns[rank]
	if cn == nil || cn.dead.Load() {
		return false
	}
	return cn.send(f) == nil
}

// fanOut relays a frame to every live worker except the origin.
func (h *hub) fanOut(f *frame, except int) {
	for rank := 1; rank < h.size; rank++ {
		if rank == except {
			continue
		}
		h.forward(rank, f)
	}
}

// workerDied handles a lost connection: pending steals aimed at the
// worker fail fast, its gather slot is filled with nil, and the
// deployment is force-terminated — the dead locality's live tasks can
// never complete, so the global count would stay positive forever.
// The survivors unblock, gather, and the coordinator reports the dead
// locality's nil slot as an error. Fault tolerance (re-executing a
// dead locality's work) is an explicit non-goal here. A worker that
// disconnected after contributing its result (normal shutdown) has
// already seen termination, making all of this a no-op.
func (h *hub) workerDied(rank int) {
	h.conns[rank].dead.Store(true)
	h.pending.failVictim(rank)
	h.contribute(rank, nil)
	h.terminate()
}

// terminate ends the search everywhere, once.
func (h *hub) terminate() {
	h.doneOnce.Do(func() {
		close(h.done)
		h.fanOut(&frame{Kind: kTerminate}, 0)
	})
}

func (h *hub) Steal(victim int) (WireTask, bool, error) {
	if victim <= 0 || victim >= h.size {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	seq, ch := h.pending.register(victim)
	if !h.forward(victim, &frame{Kind: kSteal, From: 0, To: victim, Seq: seq}) {
		h.pending.drop(seq)
		return WireTask{}, false, nil
	}
	select {
	case res := <-ch:
		return res.task, res.ok, nil
	case <-time.After(stealTimeout):
		h.pending.drop(seq)
		return WireTask{}, false, nil
	}
}

func (h *hub) BroadcastBound(obj int64) error {
	h.fanOut(&frame{Kind: kBound, From: 0, Obj: obj}, 0)
	return nil
}

func (h *hub) Cancel() error {
	h.fanOut(&frame{Kind: kCancel, From: 0}, 0)
	return nil
}

func (h *hub) AddTasks(delta int64) {
	if h.live.Add(delta) == 0 && delta < 0 {
		h.terminate()
	}
}

func (h *hub) Done() <-chan struct{} { return h.done }

func (h *hub) contribute(rank int, blob []byte) {
	h.gatherMu.Lock()
	defer h.gatherMu.Unlock()
	if h.contrib[rank] {
		return
	}
	h.contrib[rank] = true
	h.blobs[rank] = blob
	h.have++
	if h.have == h.size {
		close(h.gotAll)
	}
}

func (h *hub) Gather(payload []byte) ([][]byte, error) {
	h.contribute(0, payload)
	<-h.gotAll
	h.gatherMu.Lock()
	defer h.gatherMu.Unlock()
	return h.blobs, nil
}

func (h *hub) Close() error {
	if !h.closed.CompareAndSwap(false, true) {
		return nil
	}
	h.stOnce.Do(func() { close(h.started) }) // unblock routing goroutines

	for _, cn := range h.conns {
		if cn != nil {
			cn.close()
		}
	}
	if h.ln != nil {
		h.ln.Close()
	}
	return nil
}

// Dial connects a worker to the coordinator, retrying while the
// coordinator is not yet listening, and completes registration. The
// returned transport's rank is assigned by the coordinator.
func Dial(addr, spec string) (Transport, error) {
	var c net.Conn
	var err error
	deadline := time.Now().Add(dialTimeout)
	for {
		c, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: dialing coordinator %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	cn := newWconn(c)
	if err := cn.send(&frame{Kind: kHello, Blob: []byte(spec)}); err != nil {
		cn.close()
		return nil, fmt.Errorf("dist: registering with %s: %w", addr, err)
	}
	var welcome frame
	if err := cn.recv(&welcome); err != nil {
		cn.close()
		return nil, fmt.Errorf("dist: registration reply from %s: %w", addr, err)
	}
	switch welcome.Kind {
	case kWelcome:
	case kReject:
		cn.close()
		return nil, fmt.Errorf("dist: coordinator refused registration: %s", string(welcome.Blob))
	default:
		cn.close()
		return nil, fmt.Errorf("dist: unexpected registration reply kind %d", welcome.Kind)
	}
	return &worker{
		cn:      cn,
		rank:    welcome.To,
		size:    int(welcome.Delta),
		started: make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// worker is a non-coordinator locality's endpoint: one connection to
// the hub carrying all of its traffic.
type worker struct {
	cn      *wconn
	rank    int
	size    int
	h       atomic.Value
	started chan struct{}
	stOnce  sync.Once

	done     chan struct{}
	doneOnce sync.Once

	pending pendingSteals
	closed  atomic.Bool
}

var _ Transport = (*worker)(nil)

func (w *worker) Rank() int { return w.rank }
func (w *worker) Size() int { return w.size }

func (w *worker) Start(h Handler) {
	w.h.Store(h)
	w.stOnce.Do(func() { close(w.started) })
	go w.readLoop()
}

func (w *worker) handler() Handler {
	hd, _ := w.h.Load().(Handler)
	return hd
}

func (w *worker) readLoop() {
	for {
		var f frame
		if err := w.cn.recv(&f); err != nil {
			// The hub is gone: no more work or termination signal can
			// ever arrive, so release anyone waiting.
			w.pending.failAll()
			w.doneOnce.Do(func() { close(w.done) })
			return
		}
		switch f.Kind {
		case kSteal:
			wt, ok := w.handler().ServeSteal(f.From)
			w.cn.send(&frame{Kind: kStealR, From: w.rank, To: f.From, Seq: f.Seq, Task: wt, OK: ok})
		case kStealR:
			if !w.pending.resolve(f.Seq, stealRes{task: f.Task, ok: f.OK}) && f.OK {
				// Late reply to a timed-out steal: the task left its
				// victim and must not be lost — enqueue it locally.
				w.handler().OnTask(f.Task)
			}
		case kBound:
			w.handler().OnBound(f.From, f.Obj)
		case kCancel:
			w.handler().OnCancel(f.From)
		case kTerminate:
			w.doneOnce.Do(func() { close(w.done) })
		}
	}
}

func (w *worker) Steal(victim int) (WireTask, bool, error) {
	if victim < 0 || victim >= w.size || victim == w.rank {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	seq, ch := w.pending.register(victim)
	if err := w.cn.send(&frame{Kind: kSteal, From: w.rank, To: victim, Seq: seq}); err != nil {
		w.pending.drop(seq)
		return WireTask{}, false, err
	}
	select {
	case res := <-ch:
		return res.task, res.ok, nil
	case <-time.After(stealTimeout):
		w.pending.drop(seq)
		return WireTask{}, false, nil
	}
}

func (w *worker) BroadcastBound(obj int64) error {
	return w.cn.send(&frame{Kind: kBound, From: w.rank, Obj: obj})
}

func (w *worker) Cancel() error {
	return w.cn.send(&frame{Kind: kCancel, From: w.rank})
}

func (w *worker) AddTasks(delta int64) {
	w.cn.send(&frame{Kind: kDelta, From: w.rank, Delta: delta})
}

func (w *worker) Done() <-chan struct{} { return w.done }

func (w *worker) Gather(payload []byte) ([][]byte, error) {
	if err := w.cn.send(&frame{Kind: kGather, From: w.rank, Blob: payload}); err != nil {
		return nil, fmt.Errorf("dist: sending gather payload: %w", err)
	}
	return nil, nil
}

func (w *worker) Close() error {
	if w.closed.CompareAndSwap(false, true) {
		w.cn.close()
	}
	return nil
}
