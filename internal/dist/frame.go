package dist

import (
	"encoding/binary"
	"fmt"
)

// Wire protocol v4: every message is one length-prefixed binary frame,
//
//	uint32 little-endian body length | body
//
// with a hand-rolled body encoding instead of v1's self-describing gob
// streams. The body starts with a fixed two-byte prologue (kind, flags)
// followed by a varint header shared by all kinds and a kind-specific
// payload:
//
//	kind    byte
//	flags   byte            fDelta | fBound | fPrio
//	from    varint          sender rank
//	to      varint          destination rank (0 when unrouted)
//	seq     uvarint         steal request/reply correlation
//	[delta  varint]         flags&fDelta: coalesced live-task delta
//	[bound  varint]         flags&fBound: piggybacked bound snapshot
//	[prio   varint]         flags&fPrio: best-available-priority summary
//	payload ...             see appendFrame
//
// The optional header fields are the batching heart of the protocol:
// any frame — a steal reply, a gather, an explicit kDelta tick — can
// carry the sender's accumulated live-task delta (one counter flush per
// pool quantum instead of one frame per spawn), its current best bound
// (so a lost or still-in-flight broadcast is repaired by the next frame
// of any kind, and a thief never prunes with knowledge older than the
// last frame it saw), and — new in v3 — the best priority among the
// tasks the origin locality could currently serve to a thief (PrioNone
// when it has none). The summary is stamped only by the frame's
// originator and survives routing intact, so every frame doubles as a
// load/promise advertisement that peers feed into priority-aware
// victim selection.
//
// Steal replies carry a *batch* of tasks: count followed by
// (payload-length, payload, id, depth, prio, bound) per task — the
// priority is a v3 addition (letting ordered searches span the wire),
// the hand-over id a v4 one (the supervision ticket of the victim's
// ledger entry). The thief hands the first task to the requesting
// worker and re-homes the rest through Handler.OnTask, exactly like a
// late reply.
//
// v4 adds the fault-tolerance vocabulary: kAck (a *batch* of hand-over
// ids being acked — each id names its own origin via TaskID packing,
// so one coalesced frame per flush quantum certifies every subtree the
// sender completed since the last, and the hub splits the batch per
// origin when routing), kDeath (Want names the dead rank, fanned out
// by the hub), kPing (an empty liveness heartbeat — its value is the
// act of arriving, plus whatever coalesced header fields ride along),
// an optional incumbent-node blob on kBound, and an objective +
// witness blob on kCancel, so the best node and decision witness
// survive the death of the locality that found them.
//
// v5 adds the mesh vocabulary, spoken only by mesh-topology
// deployments (WireOptions.Topology): kPeerAddr (worker→hub at
// registration, Blob = the worker's advertised peer-listener address),
// kPeers (hub→worker, Blob = the rank-indexed peer address table —
// see appendPeerTable), kPeerHello (the first frame on a direct
// worker↔worker connection: From = the dialing rank, Want = the wire
// version), kGossip (an epidemic bound push, Obj = the bound; unlike
// kBound it carries no node blob — retention stays at the hub), and
// kToken (the decentralised termination wave's circulating token:
// Seq = the probe round, Obj = the accumulated task count, Want = the
// colour bits, tokBlack|tokActive). All five reuse existing frame
// slots, so the frame struct and the optional-header machinery are
// unchanged.
//
// v6 adds kSplit: a steal request with split semantics (Want = max
// tasks, like kSteal). The victim locality serves it from its pool if
// it can, and otherwise asks one of its running workers to split the
// bottom of its live generator stack — the stack-stealing
// coordination's (spawn-stack) rule, served on demand across the wire.
// The reply is an ordinary kStealR carrying the donated task(s), so
// steal correlation and mesh wave accounting are untouched.
//
// v7 adds the coordinator-failover vocabulary, spoken only by standby
// deployments (WireOptions.Standby): kHubSnap (hub→standby, Blob = a
// full residual-state snapshot — see encodeHubSnapshot), kHubDelta
// (hub→standby, a coalesced incremental update; Want = the subtype,
// with the mirrored hand-over riding in Tasks, retired ids in Acks,
// and the incumbent node or gather payload in Blob), and kRejoin
// (worker→promoted hub after a coordinator death: From = the rank,
// Want = the epoch the worker expects the promoted hub to be serving,
// Obj = the rank's cumulative live-task contribution, from which the
// promoted hub rebuilds the global count), and kLeave (mesh
// worker→peers during a post-termination Close: after a takeover the
// survivors run death detection decentrally on their own peer links,
// and the in-band goodbye — TCP-ordered ahead of the close — is what
// lets them tell a finished peer's exit from a crash).
//
// v8 adds link-fault tolerance. The body encoding above is untouched;
// instead every frame gains a fixed eight-byte trailer,
//
//	uint32 little-endian link sequence | uint32 CRC32C(body ‖ seq)
//
// covered by the length prefix (len = body + 8). The sequence is a
// per-connection counter of delivered frames — the receiver accepts
// seq == last+1, silently skips seq <= last (a retransmitted
// duplicate), and treats a gap as a link failure — and the CRC turns a
// corrupted frame into a link failure instead of a desynced
// length-prefixed stream. On a link failure with LinkGrace > 0 the
// surviving sides keep the logical session alive: the dialing side
// reconnects and sends kResume (Seq = the session id minted at
// registration, Obj = the highest link sequence it has received), the
// accepting side replies kResume with its own receive high-water mark,
// and both retransmit the frames the other missed from a bounded
// replay log. kResume frames themselves travel with sequence 0 and are
// never counted or logged. kReject answers a resume for an unknown or
// expired session, collapsing the link to the v4 death path.

const (
	fDelta = 1 << 0 // header carries a coalesced live-task delta
	fBound = 1 << 1 // header carries a piggybacked bound snapshot
	fPrio  = 1 << 2 // header carries a best-available-priority summary
)

// maxFrameBody bounds a peer-supplied body length before allocation.
const maxFrameBody = 64 << 20

// maxStealBatch bounds a peer-supplied task count before allocation.
const maxStealBatch = 1 << 16

// frame is the single wire message; unused fields are zero.
type frame struct {
	Kind  kind
	From  int
	To    int
	Seq   uint64
	Delta int64 // coalesced live-task delta (sent iff non-zero)
	PB    int64 // piggybacked bound snapshot
	HasPB bool
	PS    int64 // piggybacked best-available-priority summary (PrioNone = no work)
	HasPS bool
	Obj   int64      // kBound: the broadcast bound; kCancel: witness objective; kGossip: gossiped bound; kToken: accumulated count
	Want  int        // kSteal: max tasks; kHello/kPeerHello: protocol version; kWelcome: deployment size; kDeath: dead rank; kToken: colour bits
	Blob  []byte     // kHello/kWelcome/kReject/kGather payload; kBound/kCancel retained node; kPeerAddr address; kPeers table
	Tasks []WireTask // kStealR payload
	Acks  []uint64   // kAck payload: completed hand-over ids
}

// appendFrame appends f's body encoding (no length prefix) to dst.
func appendFrame(dst []byte, f *frame) []byte {
	var flags byte
	if f.Delta != 0 {
		flags |= fDelta
	}
	if f.HasPB {
		flags |= fBound
	}
	if f.HasPS {
		flags |= fPrio
	}
	dst = append(dst, byte(f.Kind), flags)
	dst = binary.AppendVarint(dst, int64(f.From))
	dst = binary.AppendVarint(dst, int64(f.To))
	dst = binary.AppendUvarint(dst, f.Seq)
	if flags&fDelta != 0 {
		dst = binary.AppendVarint(dst, f.Delta)
	}
	if flags&fBound != 0 {
		dst = binary.AppendVarint(dst, f.PB)
	}
	if flags&fPrio != 0 {
		dst = binary.AppendVarint(dst, f.PS)
	}
	switch f.Kind {
	case kSteal, kHello, kWelcome, kDeath, kPeerHello, kToken, kSplit, kHubDelta, kRejoin:
		dst = binary.AppendUvarint(dst, uint64(f.Want))
	}
	switch f.Kind {
	case kBound, kCancel, kGossip, kToken, kHubDelta, kRejoin, kResume:
		dst = binary.AppendVarint(dst, f.Obj)
	}
	switch f.Kind {
	case kHello, kWelcome, kReject, kGather, kBound, kCancel, kPeerAddr, kPeers, kHubSnap:
		dst = binary.AppendUvarint(dst, uint64(len(f.Blob)))
		dst = append(dst, f.Blob...)
	case kStealR:
		dst = appendTasks(dst, f.Tasks)
	case kAck:
		dst = appendAcks(dst, f.Acks)
	case kHubDelta:
		// A delta carries all three payload slots (most empty for any
		// given subtype): blob, then tasks, then acks.
		dst = binary.AppendUvarint(dst, uint64(len(f.Blob)))
		dst = append(dst, f.Blob...)
		dst = appendTasks(dst, f.Tasks)
		dst = appendAcks(dst, f.Acks)
	}
	return dst
}

// appendTasks encodes a steal-reply task batch (also the kHubDelta
// mirror payload).
func appendTasks(dst []byte, tasks []WireTask) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(tasks)))
	for i := range tasks {
		t := &tasks[i]
		dst = binary.AppendUvarint(dst, uint64(len(t.Payload)))
		dst = append(dst, t.Payload...)
		dst = binary.AppendUvarint(dst, t.ID)
		dst = binary.AppendVarint(dst, int64(t.Depth))
		dst = binary.AppendVarint(dst, int64(t.Prio))
		dst = binary.AppendVarint(dst, t.Bound)
	}
	return dst
}

// appendAcks encodes a hand-over id batch.
func appendAcks(dst []byte, acks []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(acks)))
	for _, id := range acks {
		dst = binary.AppendUvarint(dst, id)
	}
	return dst
}

type frameReader struct {
	b []byte
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated uvarint in frame")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *frameReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated varint in frame")
	}
	r.b = r.b[n:]
	return v, nil
}

// bytes slices out a counted byte string, never returning nil for an
// empty (but present) string — receivers distinguish "no payload" from
// "dead peer" by nilness.
func (r *frameReader) bytes() ([]byte, error) {
	ln, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ln > uint64(len(r.b)) {
		return nil, fmt.Errorf("dist: frame byte string of %d exceeds %d remaining", ln, len(r.b))
	}
	out := r.b[:ln:ln]
	r.b = r.b[ln:]
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

// byte pops a single raw byte.
func (r *frameReader) byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("dist: truncated byte in frame")
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// parseFrame decodes one frame body. The body slice must be dedicated
// to this frame: Blob and task payloads alias it.
func parseFrame(b []byte, f *frame) error {
	*f = frame{}
	if len(b) < 2 {
		return fmt.Errorf("dist: frame body of %d bytes", len(b))
	}
	f.Kind = kind(b[0])
	if f.Kind > kResume {
		return fmt.Errorf("dist: unknown frame kind %d", f.Kind)
	}
	flags := b[1]
	r := &frameReader{b: b[2:]}
	var err error
	var v int64
	if v, err = r.varint(); err != nil {
		return err
	}
	f.From = int(v)
	if v, err = r.varint(); err != nil {
		return err
	}
	f.To = int(v)
	if f.Seq, err = r.uvarint(); err != nil {
		return err
	}
	if flags&fDelta != 0 {
		if f.Delta, err = r.varint(); err != nil {
			return err
		}
	}
	if flags&fBound != 0 {
		if f.PB, err = r.varint(); err != nil {
			return err
		}
		f.HasPB = true
	}
	if flags&fPrio != 0 {
		if f.PS, err = r.varint(); err != nil {
			return err
		}
		f.HasPS = true
	}
	switch f.Kind {
	case kSteal, kHello, kWelcome, kDeath, kPeerHello, kToken, kSplit, kHubDelta, kRejoin:
		w, err := r.uvarint()
		if err != nil {
			return err
		}
		f.Want = int(w)
	}
	switch f.Kind {
	case kBound, kCancel, kGossip, kToken, kHubDelta, kRejoin, kResume:
		if f.Obj, err = r.varint(); err != nil {
			return err
		}
	}
	switch f.Kind {
	case kHello, kWelcome, kReject, kGather, kBound, kCancel, kPeerAddr, kPeers, kHubSnap:
		if f.Blob, err = r.bytes(); err != nil {
			return err
		}
	case kStealR:
		if f.Tasks, err = parseTasks(r); err != nil {
			return err
		}
	case kAck:
		if f.Acks, err = parseAcks(r); err != nil {
			return err
		}
	case kHubDelta:
		if f.Blob, err = r.bytes(); err != nil {
			return err
		}
		if f.Tasks, err = parseTasks(r); err != nil {
			return err
		}
		if f.Acks, err = parseAcks(r); err != nil {
			return err
		}
	}
	if len(r.b) != 0 {
		return fmt.Errorf("dist: %d trailing bytes in frame kind %d", len(r.b), f.Kind)
	}
	return nil
}

// parseTasks decodes a task batch (the kStealR payload, also the
// kHubDelta mirror payload).
func parseTasks(r *frameReader) ([]WireTask, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxStealBatch {
		return nil, fmt.Errorf("dist: steal reply of %d tasks", n)
	}
	if n == 0 {
		return nil, nil
	}
	tasks := make([]WireTask, n)
	for i := range tasks {
		t := &tasks[i]
		if t.Payload, err = r.bytes(); err != nil {
			return nil, err
		}
		if t.ID, err = r.uvarint(); err != nil {
			return nil, err
		}
		var v int64
		if v, err = r.varint(); err != nil {
			return nil, err
		}
		t.Depth = int(v)
		if v, err = r.varint(); err != nil {
			return nil, err
		}
		t.Prio = int(v)
		if t.Bound, err = r.varint(); err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

// parseAcks decodes a hand-over id batch.
func parseAcks(r *frameReader) ([]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxStealBatch {
		return nil, fmt.Errorf("dist: ack batch of %d ids", n)
	}
	if n == 0 {
		return nil, nil
	}
	acks := make([]uint64, n)
	for i := range acks {
		if acks[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return acks, nil
}

// kToken colour bits, carried in Want.
const (
	tokBlack  = 1 << 0 // a visited rank received tasks behind the token
	tokActive = 1 << 1 // some visited rank has ever held live work
)

// maxPeerTable bounds a peer-supplied address count before allocation.
const maxPeerTable = 1 << 16

// appendPeerTable encodes a rank-indexed peer address table (the kPeers
// blob): a uvarint count followed by counted strings. Slot 0 — the
// hub's slot — is conventionally empty: workers reach rank 0 over the
// registration connection they already hold.
func appendPeerTable(dst []byte, addrs []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(addrs)))
	for _, a := range addrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	return dst
}

// parsePeerTable decodes a kPeers blob.
func parsePeerTable(b []byte) ([]string, error) {
	r := &frameReader{b: b}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxPeerTable {
		return nil, fmt.Errorf("dist: peer table of %d addresses", n)
	}
	addrs := make([]string, n)
	for i := range addrs {
		bs, err := r.bytes()
		if err != nil {
			return nil, err
		}
		addrs[i] = string(bs)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("dist: %d trailing bytes in peer table", len(r.b))
	}
	return addrs, nil
}
