// Package core implements the YewPar search-skeleton library
// (Archibald, Maier, Stewart, Trinder: "YewPar: Skeletons for Exact
// Combinatorial Search", PPoPP 2020).
//
// A search application is composed from two parts, mirroring Figure 3 of
// the paper:
//
//   - a Lazy Node Generator (GenFactory) supplied by the application,
//     which describes how the search tree is created on demand and in
//     which (heuristic) order children are traversed; and
//   - a search skeleton, the combination of a search coordination
//     (Sequential, Depth-Bounded, Stack-Stealing, Budget) with a search
//     type (Enumeration, Optimisation, Decision).
//
// The twelve skeletons are exposed as SequentialEnum, DepthBoundedOpt,
// StackStealDecision, BudgetEnum, and so on. All parallel skeletons
// run on a distributed runtime built over the pluggable Transport of
// internal/dist: workers are grouped into localities, each owning an
// order-preserving workpool and a locally cached copy of the incumbent
// bound, with remote steals and bound broadcasts crossing the
// transport. Single-process runs use the in-process loopback transport
// (optionally with injected steal/bound latencies, simulating the
// paper's cluster experiments); the DistEnum/DistOpt/DistDecide entry
// points run one locality per OS process over the TCP transport, with
// task serialisation through a Codec and final result/metric
// aggregation at the coordinator — the role HPX plays in the paper's
// own implementation.
//
// The semantics of the skeletons follows the operational model of
// Section 3 of the paper (see the sibling package internal/semantics
// for an executable version of that model): enumeration folds the tree
// into a commutative monoid, optimisation and decision maximise an
// objective over the tree with sound-but-possibly-stale pruning, and
// the spawn behaviour of each coordination implements one of the
// (spawn-depth), (spawn-budget) and (spawn-stack) rules of Figure 2.
//
// # Scheduling and allocation hot path
//
// Each locality's workpool is sharded per worker (ShardedPool): a
// worker pushes and pops tasks on its own uncontended DepthPool shard,
// keeping the paper's heuristic order (deepest-first for owners, FIFO
// within a depth) without a shared mutex on the spawn/pop hot path. An
// idle worker escalates cheapest-first: rob a sibling shard within the
// locality — shallowest task across shards, so intra-locality stealing
// hands over the heuristically-next large subtree exactly like the
// single shared pool did — then drain the locality's steal-ahead
// buffer, and only then pay a Transport round trip to a random peer
// locality. Transport steal handlers serve from the same sharded
// aggregate, and Config.PoolShards=1 restores the pre-sharding single
// shared pool for ablation and oracle testing.
//
// # Search ordering
//
// Config.Order turns the pool-based coordinations into globally
// ordered searches (the "Parallel Flowshop in YewPar" follow-up
// direction): every task carries a small-int priority (Task.Prio,
// lower = better) — its path discrepancy (one per non-leftmost branch
// between the search root and the task, OrderDiscrepancy) or its
// distance from the root's admissible bound (OrderBound) — and every
// scheduling decision prefers the best priority available. Pools
// switch to PrioBucketPool (a bucket array, not a heap: priorities are
// small ints, so push/pop is O(1) and the sharded owner path is
// uncontended), sibling robs and transport steal service go
// best-priority-first, priorities ride stolen tasks across the wire
// (dist.WireTask.Prio), and idle localities pick the steal victim
// whose advertised best priority is strongest (dist.PrioAware
// summaries) instead of a random peer. Strong incumbents arrive early,
// pruning amplifies, and the parallel search visits measurably fewer
// nodes — results are bit-identical under any order (the oracle tests
// pin this), so -order is a pure performance knob. The BestFirst
// coordination is the same machinery with the bound as its fixed
// priority source, now on sharded bucket pools instead of its original
// single global mutex+heap. Stats report OrderedSteals and a spawned
// priority histogram; BENCH_ordered.json records the node-count and
// pool-throughput wins.
//
// # Memory-bounded search
//
// Config.PoolBudget caps each locality's resident task frontier at a
// byte budget — the pool's task count times a per-task estimate taken
// from the encoded size of the root under the deployment codec (gob
// for single-process runs without one). Every pool run carries the
// accountant (Stats.PoolPeakTasks/PoolPeakBytes are always recorded);
// a budget arms its pressure responses, applied in order of
// preference, cheapest first:
//
//  1. Hand work to thieves. A pressured locality clamps the steal-rank
//     and best-priority summaries it advertises to the most attractive
//     values, so idle peers preferentially steal from victims under
//     pressure — relief that costs the victim nothing.
//  2. Deepen cutoffs. Depth-bounded and budget workers under pressure
//     stop spawning and expand inline instead (the same trade their
//     cutoff already makes, applied dynamically), stopping frontier
//     growth at the source without touching results.
//  3. Spill the coldest buckets. If a push still lands the pool past
//     its budget, the coldest tasks — deepest depth, or worst priority
//     under Config.Order — are batch-encoded and appended to a segment
//     file under a per-run os.MkdirTemp directory (Config.SpillDir;
//     "" = the system temp dir), and re-admitted LIFO when the
//     resident pool drains. Segments are removed on every exit path —
//     normal, cancelled, or locality death — so a killed worker's
//     spill never leaks into a fault-tolerance replay.
//
// Spilling is result-invariant (oracle tests pin exact enum counts and
// equal optima at budgets the unbounded frontier exceeds many-fold),
// and the accountant itself is within noise of the unbounded engine
// when the frontier fits in RAM — BenchmarkMemoryBudget measures both,
// recorded in BENCH_memory.json and gated in CI. Stack-stealing keeps
// almost nothing pooled to begin with; its distributed form pulls work
// via live-stack splits (dist protocol v6 kSplit) rather than pools,
// so it is naturally the memory-leanest -dist coordination.
//
// Localities hide steal latency with adaptive steal-ahead: the
// topology keeps a small buffer of prefetched remote tasks and
// maintains 1–4 speculative steals in flight, governed by an EWMA of
// the steal round-trip time against the locality's measured task
// consumption rate — a long pipe relative to how fast workers drain
// the buffer earns more inflight slots, and an empty sweep collapses
// the window back to one so a drained neighbourhood is not hammered
// with speculative requests. Config.StealAheadMax caps the window (1
// restores the strictly single-inflight pipeline, for ablation); the
// prefetch oracle tests pin result equality at every depth, and
// BenchmarkHotPathPrefetch gates the governor's hit rate against the
// fixed pipeline in CI.
//
// Idle workers do not spin: after a few failed probe rounds a worker
// parks on its locality's parker and is woken by the next local push,
// adopted steal reply, or prefetched task (with a growing timeout to
// re-probe peers that cannot notify it), and a locality whose full
// steal sweep finds every peer empty backs off exponentially before
// sweeping again, so drain-down does not become a steal storm.
//
// Node expansion is allocation-free for applications that opt in:
// generators implementing ResettableGenerator are cached per worker
// and per expansion-stack level and re-aimed with Reset instead of
// reallocated, and EphemeralGenerator additionally lets the pure
// depth-first loop reuse one child buffer per generator (problems then
// supply Copy so the engine can retain incumbents/witnesses safely).
// Together with the fused single-pass bitset kernels of
// internal/bitset (IntersectInto, IntersectIntoCount, PopNext — the
// expansion and colouring inner loops of the bitset applications),
// this is what closes most of the paper's Table 1 "skeleton tax"
// against the hand-coded solver; BenchmarkSkeletonTax measures it and
// BENCH_engine.json records and gates it.
package core
