package dist

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Property tests for the termination wave, driven through the loopback
// mesh (the wave's reference deployment): randomised spawn/steal/
// complete schedules, with and without injected deaths, must never
// terminate early (a lost task would strand work) and never hang (a
// lost token would strand the deployment).

// waveModel mirrors the engine's task-accounting discipline on top of
// a wave-mode loopback network. Each task carries its registration
// chain: the spawner's +1, plus one adoption +1 per hand-over (the
// engine's supervision ledger keeps every link's registration open
// until the completion ack cascades back). Completion retires every
// live link with a -1; a death drops the dead rank's registrations
// wholesale, and a task the corpse was holding replays at its most
// recent surviving link (or vanishes if none remains).
type waveModel struct {
	t     *testing.T
	net   *LoopbackNetwork
	trs   []Transport
	hs    []*recHandler
	alive []bool
	// tasks in flight: spawner and current holder of each.
	tasks []waveTask
	next  int
}

type waveTask struct {
	id     byte
	regs   []int // ranks holding a +1 registration, spawn first
	holder int
	done   bool
}

func newWaveModel(t *testing.T, n int) *waveModel {
	net := NewLoopback(n, LoopbackOptions{Wave: true})
	t.Cleanup(func() { net.Close() })
	trs := net.Transports()
	m := &waveModel{t: t, net: net, trs: trs, hs: startAll(trs), alive: make([]bool, n)}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m
}

func (m *waveModel) liveCount() int {
	n := 0
	for _, t := range m.tasks {
		if !t.done {
			n++
		}
	}
	return n
}

func (m *waveModel) spawn(rank int) {
	if !m.alive[rank] {
		return
	}
	id := byte(m.next)
	m.next++
	m.trs[rank].AddTasks(1)
	m.hs[rank].push(WireTask{Payload: []byte{id}, Depth: 1})
	m.tasks = append(m.tasks, waveTask{id: id, regs: []int{rank}, holder: rank})
}

// steal moves a random queued task from victim to thief through the
// real transport (exercising the blacken-before-visible path), then
// registers the adoption like the engine does.
func (m *waveModel) steal(thief, victim int) {
	if !m.alive[thief] || !m.alive[victim] || thief == victim {
		return
	}
	wt, ok, err := m.trs[thief].Steal(victim)
	if err != nil || !ok {
		return
	}
	m.trs[thief].AddTasks(1) // adoption
	m.hs[thief].push(wt)     // the stolen task joins the thief's queue
	for i := range m.tasks {
		if m.tasks[i].id == wt.Payload[0] {
			m.tasks[i].regs = append(m.tasks[i].regs, thief)
			m.tasks[i].holder = thief
			return
		}
	}
	m.t.Fatalf("stole unknown task %d", wt.Payload[0])
}

// complete finishes one task currently held (queued) at rank, if any.
func (m *waveModel) complete(rank int, rng *rand.Rand) {
	if !m.alive[rank] {
		return
	}
	held := m.hs[rank].drain()
	if len(held) == 0 {
		return
	}
	// Complete one, requeue the rest.
	pick := rng.Intn(len(held))
	for i, wt := range held {
		if i != pick {
			m.hs[rank].push(wt)
		}
	}
	m.finish(held[pick])
}

func (m *waveModel) finish(wt WireTask) {
	for i := range m.tasks {
		tk := &m.tasks[i]
		if tk.id != wt.Payload[0] || tk.done {
			continue
		}
		tk.done = true
		// The completion ack cascades down the supervision chain: every
		// surviving link retires its registration.
		for _, r := range tk.regs {
			if m.alive[r] {
				m.trs[r].AddTasks(-1)
			}
		}
		return
	}
	m.t.Fatalf("completed unknown or already-done task %d", wt.Payload[0])
}

// kill ends a rank: its counter disappears from the ring, taking every
// registration it held with it. A task the corpse was holding replays
// at its most recent surviving link (whose still-open registration is
// exactly what makes the replay accounting-neutral); with no surviving
// link the task vanishes.
func (m *waveModel) kill(rank int) {
	if !m.alive[rank] {
		return
	}
	m.alive[rank] = false
	m.net.Kill(rank)
	for i := range m.tasks {
		tk := &m.tasks[i]
		if tk.done {
			continue
		}
		live := tk.regs[:0]
		for _, r := range tk.regs {
			if r != rank {
				live = append(live, r)
			}
		}
		tk.regs = live
		if tk.holder != rank {
			continue
		}
		if len(tk.regs) == 0 {
			tk.done = true // every registration died with the chain
			continue
		}
		tk.holder = tk.regs[len(tk.regs)-1]
		m.hs[tk.holder].push(WireTask{Payload: []byte{tk.id}, Depth: 1})
	}
}

func (m *waveModel) requireNotDone(what string) {
	m.t.Helper()
	select {
	case <-m.net.done:
		m.t.Fatalf("wave terminated early %s: model still holds %d live tasks", what, m.liveCount())
	default:
	}
}

// drainAll completes every outstanding task and then requires the wave
// to conclude promptly on every surviving rank.
func (m *waveModel) drainAll(rng *rand.Rand) {
	for guard := 0; m.liveCount() > 0; guard++ {
		if guard > 10_000 {
			m.t.Fatalf("model failed to drain: %d tasks stuck", m.liveCount())
		}
		for r := range m.trs {
			if m.alive[r] {
				m.complete(r, rng)
			}
		}
	}
	deadline := time.After(5 * time.Second)
	for r := range m.trs {
		if !m.alive[r] {
			continue
		}
		select {
		case <-m.trs[r].Done():
		case <-deadline:
			m.t.Fatalf("rank %d never saw wave termination after the drain (lost token?)", r)
		}
	}
}

// TestWavePropertyRandomSchedules runs randomised schedules on several
// deployment sizes: interleaved spawns, real steals, completions, and
// (on odd seeds) worker deaths. After every step the model knows the
// exact live-task count, so any early conclusion is caught; the final
// drain bounds detection latency.
func TestWavePropertyRandomSchedules(t *testing.T) {
	for _, size := range []int{2, 3, 5} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("n%d/seed%d", size, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed*997 + int64(size)))
				m := newWaveModel(t, size)
				// Every rank spawns once up front: all ranks latch
				// ever-active, so any surviving subset can conclude.
				for r := 0; r < size; r++ {
					m.spawn(r)
				}
				withDeaths := seed%2 == 1
				killed := 0
				for step := 0; step < 60; step++ {
					switch rng.Intn(10) {
					case 0, 1, 2:
						m.spawn(rng.Intn(size))
					case 3, 4, 5:
						m.steal(rng.Intn(size), rng.Intn(size))
					case 6, 7, 8:
						m.complete(rng.Intn(size), rng)
					case 9:
						// Kill a non-initiator rank, keeping >= 2 alive.
						if withDeaths && killed < size-2 {
							if r := 1 + rng.Intn(size-1); m.alive[r] {
								m.kill(r)
								killed++
							}
						}
					}
					if step%15 == 0 && m.liveCount() > 0 {
						m.requireNotDone(fmt.Sprintf("at step %d", step))
					}
				}
				if m.liveCount() > 0 {
					m.requireNotDone("after the schedule")
				}
				m.drainAll(rng)
			})
		}
	}
}

// TestWaveSurvivesInitiatorDeath kills rank 0 mid-schedule: the lowest
// surviving rank must inherit the initiator role and still detect
// termination, and must not detect it while the survivor's work is
// live.
func TestWaveSurvivesInitiatorDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := newWaveModel(t, 3)
	for r := 0; r < 3; r++ {
		m.spawn(r)
	}
	// Rank 1 steals rank 2's task, then the initiator dies holding its
	// own live task (which vanishes with it).
	m.steal(1, 2)
	m.kill(0)
	time.Sleep(50 * time.Millisecond)
	m.requireNotDone("after the initiator died")
	m.drainAll(rng)
}

// TestWaveNeverActiveStaysOpen pins the ever-active guard: a
// deployment where nothing is ever spawned must not conclude — an
// empty search hasn't happened yet, it simply hasn't started.
func TestWaveNeverActiveStaysOpen(t *testing.T) {
	net := NewLoopback(3, LoopbackOptions{Wave: true})
	t.Cleanup(func() { net.Close() })
	startAll(net.Transports())
	select {
	case <-net.done:
		t.Fatal("wave concluded on a never-active system")
	case <-time.After(200 * time.Millisecond):
	}
}
