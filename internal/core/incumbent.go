package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

type paddedInt64 struct {
	v atomic.Int64
	_ [7]int64
}

// incumbent is the knowledge-management substrate of Section 4.3: a
// single authoritative incumbent (best node + objective) plus one
// cached bound per locality. Strengthening broadcasts the new bound to
// every locality cache; with a positive latency remote caches update
// late, so remote workers may miss pruning opportunities — exactly the
// stale-bound tolerance the paper describes — but results are
// unaffected because pruning is only ever justified by a bound the
// search has actually proven.
type incumbent[N any] struct {
	mu      sync.Mutex
	node    N
	has     bool
	bestObj int64

	caches  []paddedInt64
	latency time.Duration
}

func newIncumbent[N any](localities int, latency time.Duration) *incumbent[N] {
	in := &incumbent[N]{
		bestObj: math.MinInt64,
		caches:  make([]paddedInt64, localities),
		latency: latency,
	}
	for i := range in.caches {
		in.caches[i].v.Store(math.MinInt64)
	}
	return in
}

// localBest returns the bound as currently known at a locality.
func (in *incumbent[N]) localBest(loc int) int64 { return in.caches[loc].v.Load() }

// strengthen installs (obj, n) as the incumbent if obj improves on the
// authoritative best, then broadcasts the bound. The caller's own
// locality always learns the bound immediately; other localities learn
// it after the configured latency. Reports whether the incumbent
// changed, implementing (strengthen)/(skip).
func (in *incumbent[N]) strengthen(loc int, obj int64, n N) bool {
	in.mu.Lock()
	if in.has && obj <= in.bestObj {
		in.mu.Unlock()
		return false
	}
	in.bestObj = obj
	in.node = n
	in.has = true
	in.mu.Unlock()

	for i := range in.caches {
		c := &in.caches[i].v
		if i == loc || in.latency == 0 {
			storeMax(c, obj)
		} else {
			o := obj
			time.AfterFunc(in.latency, func() { storeMax(c, o) })
		}
	}
	return true
}

// result returns the final incumbent. Call only after all workers have
// joined.
func (in *incumbent[N]) result() (N, int64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.node, in.bestObj, in.has
}

// storeMax monotonically raises a to at least v.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
