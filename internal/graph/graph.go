// Package graph provides the undirected-graph substrate for the search
// applications: adjacency-bitset graphs, DIMACS .clq I/O and the
// deterministic random generators that stand in for the paper's DIMACS
// and finite-geometry instance files.
package graph

import (
	"fmt"
	"sort"

	"yewpar/internal/bitset"
)

// Graph is a simple undirected graph on vertices 0..N-1 with adjacency
// stored as one bitset row per vertex (the representation of the paper's
// Listing 1, enabling word-parallel candidate-set intersection).
type Graph struct {
	N   int
	Adj []bitset.Set
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	g := &Graph{N: n, Adj: make([]bitset.Set, n)}
	for i := range g.Adj {
		g.Adj[i] = bitset.New(n)
	}
	return g
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.Adj[u].Add(v)
	g.Adj[v].Add(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.Adj[u].Contains(v) }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return g.Adj[v].Count() }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	m := 0
	for v := 0; v < g.N; v++ {
		m += g.Degree(v)
	}
	return m / 2
}

// Density returns 2m / n(n-1), the fraction of possible edges present.
func (g *Graph) Density() float64 {
	if g.N < 2 {
		return 0
	}
	return float64(2*g.Edges()) / float64(g.N*(g.N-1))
}

// DegreeOrder returns the vertices sorted by non-increasing degree,
// ties broken by vertex index. This is the static heuristic order used
// by the clique and subgraph-isomorphism node generators.
func (g *Graph) DegreeOrder() []int {
	order := make([]int, g.N)
	deg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		order[v] = v
		deg[v] = g.Degree(v)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return deg[order[i]] > deg[order[j]]
	})
	return order
}

// DegeneracyOrder returns a vertex order computed by repeatedly
// removing a minimum-degree vertex, reversed — so early vertices are
// from the dense cores of the graph. It also returns the degeneracy
// (the largest minimum degree seen). Processing vertices in this
// order tightens greedy colourings, which is why clique solvers
// relabel their input by it.
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	deg := make([]int, g.N)
	removed := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		deg[v] = g.Degree(v)
	}
	removal := make([]int, 0, g.N)
	for len(removal) < g.N {
		best := -1
		for v := 0; v < g.N; v++ {
			if removed[v] {
				continue
			}
			if best < 0 || deg[v] < deg[best] {
				best = v
			}
		}
		if deg[best] > degeneracy {
			degeneracy = deg[best]
		}
		removed[best] = true
		removal = append(removal, best)
		g.Adj[best].ForEach(func(u int) bool {
			if !removed[u] {
				deg[u]--
			}
			return true
		})
	}
	order = make([]int, g.N)
	for i, v := range removal {
		order[g.N-1-i] = v
	}
	return order, degeneracy
}

// Relabel returns a copy of g with vertex i renamed to perm[i].
// perm must be a permutation of 0..N-1.
func (g *Graph) Relabel(perm []int) *Graph {
	if len(perm) != g.N {
		panic("graph: Relabel permutation length mismatch")
	}
	h := New(g.N)
	for u := 0; u < g.N; u++ {
		g.Adj[u].ForEach(func(v int) bool {
			if u < v {
				h.AddEdge(perm[u], perm[v])
			}
			return true
		})
	}
	return h
}

// InducedSubgraph returns the subgraph induced by the given vertices
// (renumbered 0..len(vs)-1 in the given order) together with the map
// from new index to original vertex.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	h := New(len(vs))
	for i, u := range vs {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(u, vs[j]) {
				h.AddEdge(i, j)
			}
		}
	}
	orig := make([]int, len(vs))
	copy(orig, vs)
	return h, orig
}

// IsClique reports whether the given vertex set is pairwise adjacent.
func (g *Graph) IsClique(vs bitset.Set) bool {
	ok := true
	vs.ForEach(func(u int) bool {
		vs.ForEach(func(v int) bool {
			if u != v && !g.HasEdge(u, v) {
				ok = false
			}
			return ok
		})
		return ok
	})
	return ok
}

// Complement returns the complement graph (no self-loops).
func (g *Graph) Complement() *Graph {
	h := New(g.N)
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if !g.HasEdge(u, v) {
				h.AddEdge(u, v)
			}
		}
	}
	return h
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d density=%.3f}", g.N, g.Edges(), g.Density())
}
