package tsp

import (
	"math/rand"
	"testing"

	"yewpar/internal/core"
)

func sampleNodes(s *Space, count int, rng *rand.Rand) []Node {
	nodes := []Node{Root(s)}
	for len(nodes) < count {
		n := Root(s)
		for {
			nodes = append(nodes, n)
			g := Gen(s, n)
			var kids []Node
			for g.HasNext() {
				kids = append(kids, g.Next())
			}
			if len(kids) == 0 {
				break
			}
			n = kids[rng.Intn(len(kids))]
		}
	}
	return nodes[:count]
}

func TestCodecRoundTripMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := GenerateEuclidean(12, 1000, 7)
	compact := Codec()
	gobc := core.GobCodec[Node]{}
	for i, n := range sampleNodes(s, 300, rng) {
		cb, err := compact.Encode(n)
		if err != nil {
			t.Fatalf("node %d: compact encode: %v", i, err)
		}
		cv, err := compact.Decode(cb)
		if err != nil {
			t.Fatalf("node %d: compact decode: %v", i, err)
		}
		gb, err := gobc.Encode(n)
		if err != nil {
			t.Fatalf("node %d: gob encode: %v", i, err)
		}
		gv, err := gobc.Decode(gb)
		if err != nil {
			t.Fatalf("node %d: gob decode: %v", i, err)
		}
		if cv != n {
			t.Fatalf("node %d: compact round trip mutated the node: %+v != %+v", i, cv, n)
		}
		if cv != gv {
			t.Fatalf("node %d: compact %+v and gob %+v disagree", i, cv, gv)
		}
		if len(cb) >= len(gb) {
			t.Errorf("node %d: compact form (%dB) not smaller than gob (%dB)", i, len(cb), len(gb))
		}
	}
}

// The incomplete-tour sentinel cost is the extreme value the signed
// varint must carry without mangling.
func TestCodecCarriesSentinelCost(t *testing.T) {
	n := Node{Visited: 1, Last: 0, Cost: incomplete, Count: 1}
	b, err := Codec().Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Codec().Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("sentinel round trip: %+v != %+v", got, n)
	}
}
