package bitset

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	for _, elems := range [][]int{{}, {0}, {63, 64, 65}, {0, 1, 2, 100, 199}} {
		orig := FromSlice(200, elems)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
			t.Fatalf("encode %v: %v", elems, err)
		}
		var got Set
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("decode %v: %v", elems, err)
		}
		if got.Cap() != orig.Cap() || got.Count() != orig.Count() {
			t.Fatalf("round trip of %v: cap %d→%d count %d→%d",
				elems, orig.Cap(), got.Cap(), orig.Count(), got.Count())
		}
		for _, e := range elems {
			if !got.Contains(e) {
				t.Fatalf("round trip of %v lost element %d", elems, e)
			}
		}
	}
}

func TestGobDecodeRejectsCorruptPayloads(t *testing.T) {
	var s Set
	for _, b := range [][]byte{
		nil,
		{1, 2, 3},                                // shorter than the capacity header
		{200, 0, 0, 0, 0, 0, 0, 0},               // capacity 200 but no words
		{255, 255, 255, 255, 255, 255, 255, 255}, // absurd capacity
	} {
		if err := s.GobDecode(b); err == nil {
			t.Errorf("GobDecode(%v) accepted a corrupt payload", b)
		}
	}
}

func TestGobRoundTripInsideStruct(t *testing.T) {
	type node struct {
		Clique Set
		Size   int
	}
	orig := node{Clique: FromSlice(70, []int{1, 64, 69}), Size: 3}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var got node
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Size != 3 || got.Clique.Count() != 3 || !got.Clique.Contains(69) {
		t.Fatalf("round trip mangled node: %+v", got)
	}
}
