package core

import (
	"math/rand"
)

// testTree is an explicit materialised search tree used to validate the
// skeletons against direct recursion. Node ids are strings; children
// are ordered (the sibling order of Section 3.1).
type testTree struct {
	children map[string][]string
	value    map[string]int64
	size     int
}

type testNode struct {
	id    string
	depth int
}

// genTree builds a random irregular tree. Branching at each node is
// 0..maxBranch, biased thinner with depth; node values are random in
// [0, 1000).
func genTree(seed int64, maxBranch, maxDepth int) *testTree {
	r := rand.New(rand.NewSource(seed))
	t := &testTree{
		children: map[string][]string{},
		value:    map[string]int64{},
	}
	var build func(id string, depth int)
	build = func(id string, depth int) {
		t.size++
		t.value[id] = int64(r.Intn(1000))
		if depth >= maxDepth {
			return
		}
		var b int
		if depth < 3 {
			b = 2 + r.Intn(maxBranch) // bushy near the root
		} else {
			b = r.Intn(maxBranch + 1)
			if depth > maxDepth/2 && b > 0 {
				b = r.Intn(b + 1) // thin out deep levels
			}
		}
		for i := 0; i < b; i++ {
			child := id + string(rune('a'+i))
			t.children[id] = append(t.children[id], child)
			build(child, depth+1)
		}
	}
	build("", 0)
	return t
}

// chainTree is a degenerate unary tree of the given length (stresses
// deep generator stacks and backtracking).
func chainTree(n int) *testTree {
	t := &testTree{children: map[string][]string{}, value: map[string]int64{}}
	id := ""
	for i := 0; i < n; i++ {
		t.value[id] = int64(i)
		t.size++
		if i < n-1 {
			child := id + "a"
			t.children[id] = []string{child}
			id = child
		}
	}
	return t
}

// wideTree has all leaves directly under the root.
func wideTree(n int) *testTree {
	t := &testTree{children: map[string][]string{}, value: map[string]int64{}}
	t.value[""] = 0
	t.size = 1
	for i := 0; i < n; i++ {
		id := "" + string(rune(33+i%90)) + string(rune('0'+i/90))
		t.children[""] = append(t.children[""], id)
		t.value[id] = int64(i % 997)
		t.size++
	}
	return t
}

func testGen(t *testTree, parent testNode) NodeGenerator[testNode] {
	kids := t.children[parent.id]
	nodes := make([]testNode, len(kids))
	for i, k := range kids {
		nodes[i] = testNode{id: k, depth: parent.depth + 1}
	}
	return NewSliceGen(nodes)
}

// subtreeMax computes max value over subtree(id) inclusive — the
// admissible bound used by the pruning tests.
func (t *testTree) subtreeMax(id string) int64 {
	best := t.value[id]
	for _, c := range t.children[id] {
		if m := t.subtreeMax(c); m > best {
			best = m
		}
	}
	return best
}

func (t *testTree) sum() int64 {
	var s int64
	for _, v := range t.value {
		s += v
	}
	return s
}

func (t *testTree) max() int64 {
	best := int64(-1 << 62)
	for _, v := range t.value {
		if v > best {
			best = v
		}
	}
	return best
}

func (t *testTree) enumProblem() EnumProblem[*testTree, testNode, int64] {
	return EnumProblem[*testTree, testNode, int64]{
		Gen:       testGen,
		Objective: func(tt *testTree, n testNode) int64 { return tt.value[n.id] },
		Monoid:    SumInt64{},
	}
}

func (t *testTree) optProblem(withBound bool) OptProblem[*testTree, testNode] {
	p := OptProblem[*testTree, testNode]{
		Gen:       testGen,
		Objective: func(tt *testTree, n testNode) int64 { return tt.value[n.id] },
	}
	if withBound {
		// Bound must cover the subtree below n; subtreeMax includes n,
		// which is a valid (slightly weak) upper bound.
		p.Bound = func(tt *testTree, n testNode) int64 { return tt.subtreeMax(n.id) }
	}
	return p
}

// sortChildrenByBound reorders every child list by non-increasing
// subtree maximum, establishing the sibling-order precondition of
// PruneLevel.
func (t *testTree) sortChildrenByBound() {
	for id, kids := range t.children {
		sorted := make([]string, len(kids))
		copy(sorted, kids)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && t.subtreeMax(sorted[j]) > t.subtreeMax(sorted[j-1]); j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		t.children[id] = sorted
	}
}

func (t *testTree) decisionProblem(target int64, withBound bool) DecisionProblem[*testTree, testNode] {
	p := DecisionProblem[*testTree, testNode]{
		Gen:       testGen,
		Objective: func(tt *testTree, n testNode) int64 { return tt.value[n.id] },
		Target:    target,
	}
	if withBound {
		p.Bound = func(tt *testTree, n testNode) int64 { return tt.subtreeMax(n.id) }
	}
	return p
}
