package core

import "testing"

func TestReplicableOptFindsMax(t *testing.T) {
	for _, seed := range []int64{1, 3, 23, 31, 47} {
		tree := genTree(seed, 4, 9)
		want := tree.max()
		for _, cutoff := range []int{1, 2, 3} {
			res := ReplicableOpt(tree, testNode{}, tree.optProblem(true),
				Config{Workers: 6, DCutoff: cutoff})
			if !res.Found || res.Objective != want {
				t.Errorf("seed %d d=%d: got %d (found=%v), want %d",
					seed, cutoff, res.Objective, res.Found, want)
			}
		}
	}
}

// The defining property: visited-node counts are identical across
// repeated runs AND across worker counts — no performance anomalies.
func TestReplicableOptDeterministicNodeCounts(t *testing.T) {
	tree := genTree(11, 5, 10)
	p := tree.optProblem(true)
	var reference int64
	for run := 0; run < 3; run++ {
		for _, workers := range []int{1, 2, 7, 16} {
			res := ReplicableOpt(tree, testNode{}, p, Config{Workers: workers, DCutoff: 2})
			if reference == 0 {
				reference = res.Stats.Nodes
				continue
			}
			if res.Stats.Nodes != reference {
				t.Fatalf("run %d workers %d: visited %d nodes, reference %d — not replicable",
					run, workers, res.Stats.Nodes, reference)
			}
		}
	}
}

// The anomalous skeletons generally do NOT have this property — and
// the replicable one must pay for determinism with at least as many
// visits as fully-shared pruning achieves on one worker.
func TestReplicableVisitsAtLeastSequential(t *testing.T) {
	tree := genTree(13, 5, 10)
	p := tree.optProblem(true)
	seq := Opt(Sequential, tree, testNode{}, p, Config{})
	rep := ReplicableOpt(tree, testNode{}, p, Config{Workers: 4, DCutoff: 2})
	if rep.Objective != seq.Objective {
		t.Fatalf("answers differ: %d vs %d", rep.Objective, seq.Objective)
	}
	if rep.Stats.Nodes < seq.Stats.Nodes {
		t.Errorf("replicable visited fewer nodes (%d) than sequential (%d)?",
			rep.Stats.Nodes, seq.Stats.Nodes)
	}
}

func TestReplicableWithPruneLevel(t *testing.T) {
	tree := genTree(17, 4, 9)
	tree.sortChildrenByBound()
	p := tree.optProblem(true)
	p.PruneLevel = true
	res := ReplicableOpt(tree, testNode{}, p, Config{Workers: 4, DCutoff: 2})
	if res.Objective != tree.max() {
		t.Fatalf("got %d, want %d", res.Objective, tree.max())
	}
}

func TestReplicableSingleNodeTree(t *testing.T) {
	tree := chainTree(1)
	res := ReplicableOpt(tree, testNode{}, tree.optProblem(false), Config{Workers: 4, DCutoff: 2})
	if !res.Found || res.Objective != tree.value[""] {
		t.Fatalf("single-node tree: %+v", res)
	}
}

func TestReplicableNoBound(t *testing.T) {
	tree := genTree(19, 4, 8)
	res := ReplicableOpt(tree, testNode{}, tree.optProblem(false), Config{Workers: 4, DCutoff: 1})
	if res.Objective != tree.max() {
		t.Fatalf("got %d, want %d", res.Objective, tree.max())
	}
	if res.Stats.Nodes != int64(tree.size) {
		t.Fatalf("unpruned replicable visited %d of %d nodes", res.Stats.Nodes, tree.size)
	}
}
