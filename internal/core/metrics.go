package core

// WorkerStats holds one worker's counters. Each worker writes only its
// own shard, so the fields are plain integers; shards are padded to a
// cache line to avoid false sharing, and are only read after all
// workers have joined.
type WorkerStats struct {
	Nodes         int64
	Prunes        int64
	Spawns        int64
	StealsOK      int64
	StealsFail    int64
	Backtracks    int64
	PrefetchHits  int64
	LocalSteals   int64 // tasks robbed from sibling shards in the locality
	OrderedSteals int64 // transport steals whose victim was picked by priority summary
	// PrioHist counts spawned tasks by priority (ordered scheduling
	// only): bucket i holds priority i, the last bucket everything at
	// or beyond it.
	PrioHist [prioHistBuckets]int64
	// The counters above total 136 bytes; pad to the next 64-byte
	// multiple so adjacent workers' shards never share a cache line
	// (Nodes/Prunes are bumped once per visited node).
	_ [56]byte
}

// prioHistBuckets is the spawned-priority histogram width.
const prioHistBuckets = 8

// notePrio records one spawned task's priority in the histogram.
func (w *WorkerStats) notePrio(prio int32) {
	i := int(prio)
	if i >= prioHistBuckets {
		i = prioHistBuckets - 1
	}
	if i < 0 {
		i = 0
	}
	w.PrioHist[i]++
}

// Metrics is a set of per-worker counter shards.
type Metrics struct {
	shards []WorkerStats
}

func newMetrics(workers int) *Metrics {
	return &Metrics{shards: make([]WorkerStats, workers)}
}

func (m *Metrics) shard(w int) *WorkerStats { return &m.shards[w] }

// total sums all shards. Only valid after workers have joined.
func (m *Metrics) total() Stats {
	var s Stats
	for i := range m.shards {
		s.add(m.shards[i])
	}
	s.Workers = len(m.shards)
	return s
}
