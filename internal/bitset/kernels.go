package bitset

import "math/bits"

// This file holds the fused hot-path kernels of the search inner
// loops. Each replaces a multi-pass sequence of the primitive
// operations (a CopyFrom+IntersectWith round trip, a Min+Remove pair)
// with a single bounds-check-hoisted pass, 4-word-unrolled: the word
// slices are re-sliced to a common length up front so the compiler
// proves every index in range once, and the unrolled body keeps the
// loop control off the critical path. On the small word counts typical
// of the clique instances (a 300-vertex graph is five words) the pass
// count, not the per-word cost, is what dominates — fusing is worth
// more than vectorising.

// IntersectInto writes a ∩ b into dst (dst = a & b) in one pass,
// without the CopyFrom+IntersectWith round trip. All three sets must
// share a capacity; dst may alias a or b.
func IntersectInto(dst, a, b Set) {
	dw := dst.words
	if len(a.words) != len(dw) || len(b.words) != len(dw) {
		panic("bitset: IntersectInto capacity mismatch")
	}
	aw := a.words[:len(dw)]
	bw := b.words[:len(dw)]
	i := 0
	for ; i+4 <= len(dw); i += 4 {
		dw[i] = aw[i] & bw[i]
		dw[i+1] = aw[i+1] & bw[i+1]
		dw[i+2] = aw[i+2] & bw[i+2]
		dw[i+3] = aw[i+3] & bw[i+3]
	}
	for ; i < len(dw); i++ {
		dw[i] = aw[i] & bw[i]
	}
}

// IntersectIntoCount is IntersectInto fused with a population count:
// dst = a & b, returning |dst|. It replaces the three-pass
// CopyFrom+IntersectWith+Count (or +Empty) sequence of the expansion
// loops. dst may alias a or b.
func IntersectIntoCount(dst, a, b Set) int {
	dw := dst.words
	if len(a.words) != len(dw) || len(b.words) != len(dw) {
		panic("bitset: IntersectIntoCount capacity mismatch")
	}
	aw := a.words[:len(dw)]
	bw := b.words[:len(dw)]
	c := 0
	i := 0
	for ; i+4 <= len(dw); i += 4 {
		w0 := aw[i] & bw[i]
		w1 := aw[i+1] & bw[i+1]
		w2 := aw[i+2] & bw[i+2]
		w3 := aw[i+3] & bw[i+3]
		dw[i], dw[i+1], dw[i+2], dw[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(dw); i++ {
		w := aw[i] & bw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// PopNext removes and returns the smallest element in one pass
// (find-first-set + clear), or returns -1 if the set is empty. It
// fuses the Min+Remove pair of the colouring loops: one scan instead
// of a scan plus an indexed store.
func (s Set) PopNext() int {
	for i, w := range s.words {
		if w != 0 {
			s.words[i] = w & (w - 1)
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}
