// Package uts implements the Unbalanced Tree Search enumeration
// benchmark of the paper's evaluation (Olivier et al.): a synthetic,
// highly irregular search tree generated on the fly from SHA-1 hashes,
// so that the tree shape is deterministic for a seed but unpredictable,
// stressing dynamic load balancing.
package uts

import (
	"crypto/sha1"
	"encoding/binary"

	"yewpar/internal/core"
)

// Shape selects the tree-shape family.
type Shape int

const (
	// Binomial trees: the root has B0 children; every other node has
	// M children with probability Q, none otherwise. Expected size is
	// finite iff M*Q < 1; variance is huge, which is the point.
	Binomial Shape = iota
	// Geometric trees: a node at depth d < MaxDepth has between 0 and
	// 2*B0*(1 - d/MaxDepth) children (uniformly, hash-driven), so
	// expected branching decays linearly to the depth limit.
	Geometric
)

// Space describes a UTS tree.
type Space struct {
	Shape    Shape
	B0       int     // root branching factor
	M        int     // binomial: non-root branching factor
	Q        float64 // binomial: probability a non-root node branches
	MaxDepth int     // geometric: depth limit
	Seed     int64
}

// Node is one tree node: its SHA-1 descriptor and depth.
type Node struct {
	H     [sha1.Size]byte
	Depth int
}

// Root derives the root node from the space seed.
func Root(s *Space) Node {
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(s.Seed))
	return Node{H: sha1.Sum(seed[:]), Depth: 0}
}

// childHash derives child i's descriptor from its parent's.
func childHash(parent *Node, i int) [sha1.Size]byte {
	var buf [sha1.Size + 4]byte
	copy(buf[:], parent.H[:])
	binary.LittleEndian.PutUint32(buf[sha1.Size:], uint32(i))
	return sha1.Sum(buf[:])
}

// rand01 maps a node's hash to a float in [0, 1).
func rand01(h [sha1.Size]byte) float64 {
	u := binary.LittleEndian.Uint64(h[:8])
	return float64(u>>11) / float64(1<<53)
}

// NumChildren returns the branching factor of a node, fully determined
// by its hash.
func NumChildren(s *Space, n Node) int {
	switch s.Shape {
	case Binomial:
		if n.Depth == 0 {
			return s.B0
		}
		if rand01(n.H) < s.Q {
			return s.M
		}
		return 0
	case Geometric:
		if n.Depth >= s.MaxDepth {
			return 0
		}
		width := 2 * float64(s.B0) * (1 - float64(n.Depth)/float64(s.MaxDepth))
		return int(rand01(n.H) * width)
	default:
		panic("uts: unknown shape")
	}
}

type gen struct {
	s      *Space
	parent Node
	m      int
	i      int
}

var _ core.ResettableGenerator[*Space, Node] = (*gen)(nil)

// Gen is the core.GenFactory for UTS.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	m := NumChildren(s, parent)
	if m == 0 {
		return core.EmptyGen[Node]{}
	}
	g := &gen{}
	g.Reset(s, parent)
	return g
}

// Reset implements core.ResettableGenerator: rederive the branching
// factor from the new parent's hash and rewind the child cursor.
func (g *gen) Reset(s *Space, parent Node) {
	g.s, g.parent = s, parent
	g.m = NumChildren(s, parent)
	g.i = 0
}

func (g *gen) HasNext() bool { return g.i < g.m }

func (g *gen) Next() Node {
	n := Node{H: childHash(&g.parent, g.i), Depth: g.parent.Depth + 1}
	g.i++
	return n
}

// CountProblem counts tree nodes (the standard UTS measurement).
func CountProblem() core.EnumProblem[*Space, Node, int64] {
	return core.EnumProblem[*Space, Node, int64]{
		Gen:       Gen,
		Objective: func(*Space, Node) int64 { return 1 },
		Monoid:    core.SumInt64{},
	}
}

// MaxDepthProblem computes the deepest node.
func MaxDepthProblem() core.EnumProblem[*Space, Node, int64] {
	return core.EnumProblem[*Space, Node, int64]{
		Gen:       Gen,
		Objective: func(_ *Space, n Node) int64 { return int64(n.Depth) },
		Monoid:    core.MaxInt64{},
	}
}

// Count counts the nodes of the tree with the given skeleton.
func Count(s *Space, coord core.Coordination, cfg core.Config) (int64, core.Stats) {
	res := core.Enum(coord, s, Root(s), CountProblem(), cfg)
	return res.Value, res.Stats
}
