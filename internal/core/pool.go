package core

import "sync"

// Task is a unit of spawned work: an unvisited search-tree node and its
// absolute depth. Depth orders the pool so that tasks near the root —
// heuristically the largest subtrees — are scheduled first.
type Task[N any] struct {
	Node  N
	Depth int
}

// Pool is a locality's workpool. Pop is used by local workers, Steal by
// remote ones; both must be safe for concurrent use.
type Pool[N any] interface {
	Push(t Task[N])
	Pop() (Task[N], bool)
	Steal() (Task[N], bool)
	Size() int
}

// DepthPool is the paper's order-preserving workpool: one FIFO bucket
// per depth. Within a depth tasks leave in insertion order, so the
// sibling spawn order — which encodes the application's search
// heuristic — is always respected; a conventional deque inverts it,
// because an owner's LIFO pop returns the heuristically *worst*
// sibling first. Owners pop from the deepest non-empty bucket
// (continuing depth-first, like the sequential search would), while
// thieves steal from the shallowest (the expected-largest subtrees,
// in heuristic order).
type DepthPool[N any] struct {
	mu      sync.Mutex
	buckets [][]Task[N]
	heads   []int
	size    int
	min     int // lowest possibly-non-empty depth
	max     int // highest possibly-non-empty depth
}

// NewDepthPool returns an empty DepthPool.
func NewDepthPool[N any]() *DepthPool[N] { return &DepthPool[N]{max: -1} }

// Push implements Pool.
func (p *DepthPool[N]) Push(t Task[N]) {
	p.mu.Lock()
	for len(p.buckets) <= t.Depth {
		p.buckets = append(p.buckets, nil)
		p.heads = append(p.heads, 0)
	}
	p.buckets[t.Depth] = append(p.buckets[t.Depth], t)
	if t.Depth < p.min {
		p.min = t.Depth
	}
	if t.Depth > p.max {
		p.max = t.Depth
	}
	p.size++
	p.mu.Unlock()
}

// takeAt removes the FIFO-front task of bucket d.
func (p *DepthPool[N]) takeAt(d int) Task[N] {
	t := p.buckets[d][p.heads[d]]
	var zero Task[N]
	p.buckets[d][p.heads[d]] = zero // release node for GC
	p.heads[d]++
	if p.heads[d] == len(p.buckets[d]) {
		p.buckets[d] = p.buckets[d][:0]
		p.heads[d] = 0
	}
	p.size--
	return t
}

// Pop implements Pool: deepest bucket first, FIFO within the bucket.
func (p *DepthPool[N]) Pop() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for d := p.max; d >= 0; d-- {
		if p.heads[d] < len(p.buckets[d]) {
			p.max = d
			return p.takeAt(d), true
		}
	}
	p.max = -1
	var zero Task[N]
	return zero, false
}

// Steal implements Pool: shallowest bucket first, FIFO within the
// bucket, handing thieves the heuristically-next large subtree.
func (p *DepthPool[N]) Steal() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for d := p.min; d < len(p.buckets); d++ {
		if p.heads[d] < len(p.buckets[d]) {
			p.min = d
			return p.takeAt(d), true
		}
	}
	p.min = len(p.buckets)
	var zero Task[N]
	return zero, false
}

// Size implements Pool.
func (p *DepthPool[N]) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// Deque is a conventional work-stealing double-ended queue: owners pop
// newest-first (LIFO), thieves steal oldest-first (FIFO). It ignores
// depth and therefore does not preserve heuristic search order; it is
// provided as the ablation discussed in Section 2.3 of the paper.
type Deque[N any] struct {
	mu    sync.Mutex
	items []Task[N]
	head  int
}

// NewDeque returns an empty Deque.
func NewDeque[N any]() *Deque[N] { return &Deque[N]{} }

// Push implements Pool.
func (q *Deque[N]) Push(t Task[N]) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.mu.Unlock()
}

// Pop implements Pool (LIFO end).
func (q *Deque[N]) Pop() (Task[N], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		q.reset()
		var zero Task[N]
		return zero, false
	}
	t := q.items[len(q.items)-1]
	var zero Task[N]
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	if q.head >= len(q.items) {
		q.reset()
	}
	return t, true
}

// Steal implements Pool (FIFO end).
func (q *Deque[N]) Steal() (Task[N], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		q.reset()
		var zero Task[N]
		return zero, false
	}
	t := q.items[q.head]
	var zero Task[N]
	q.items[q.head] = zero
	q.head++
	if q.head >= len(q.items) {
		q.reset()
	}
	return t, true
}

func (q *Deque[N]) reset() {
	q.items = q.items[:0]
	q.head = 0
}

// Size implements Pool.
func (q *Deque[N]) Size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

func newPool[N any](kind PoolKind) Pool[N] {
	switch kind {
	case DequeKind:
		return NewDeque[N]()
	default:
		return NewDepthPool[N]()
	}
}
