package maxclique

import (
	"math/rand"
	"testing"

	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// sampleNodes walks a few random root-to-leaf paths so the codec is
// exercised on real search states at every depth, not synthetic ones.
func sampleNodes(s *Space, count int, rng *rand.Rand) []Node {
	nodes := []Node{Root(s)}
	for len(nodes) < count {
		n := Root(s)
		for {
			nodes = append(nodes, n)
			g := Gen(s, n)
			var kids []Node
			for g.HasNext() {
				kids = append(kids, g.Next())
			}
			if len(kids) == 0 {
				break
			}
			n = kids[rng.Intn(len(kids))]
		}
	}
	return nodes[:count]
}

func sameNode(a, b Node) bool {
	return a.Size == b.Size && a.Bound == b.Bound &&
		a.Clique.Equal(b.Clique) && a.Cands.Equal(b.Cands)
}

// The compact codec must round-trip every search-relevant field and
// agree with the GobCodec fallback on the recovered state.
func TestCodecRoundTripMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSpace(graph.Random(130, 0.6, 3))
	compact := Codec()
	gobc := core.GobCodec[Node]{}
	for i, n := range sampleNodes(s, 200, rng) {
		cb, err := compact.Encode(n)
		if err != nil {
			t.Fatalf("node %d: compact encode: %v", i, err)
		}
		cv, err := compact.Decode(cb)
		if err != nil {
			t.Fatalf("node %d: compact decode: %v", i, err)
		}
		gb, err := gobc.Encode(n)
		if err != nil {
			t.Fatalf("node %d: gob encode: %v", i, err)
		}
		gv, err := gobc.Decode(gb)
		if err != nil {
			t.Fatalf("node %d: gob decode: %v", i, err)
		}
		if !sameNode(cv, n) {
			t.Fatalf("node %d: compact round trip mutated the node: %+v != %+v", i, cv, n)
		}
		if !sameNode(cv, gv) {
			t.Fatalf("node %d: compact %+v and gob %+v disagree", i, cv, gv)
		}
		if len(cb) >= len(gb) {
			t.Errorf("node %d: compact form (%dB) not smaller than gob (%dB)", i, len(cb), len(gb))
		}
		// Append-style path produces the identical bytes at an offset.
		pre := []byte{0xAA, 0xBB}
		eb, err := compact.EncodeTo(pre, n)
		if err != nil {
			t.Fatalf("node %d: EncodeTo: %v", i, err)
		}
		if string(eb[:2]) != string(pre) || string(eb[2:]) != string(cb) {
			t.Fatalf("node %d: EncodeTo bytes differ from Encode", i)
		}
	}
}

func TestCodecRejectsCorruptPayloads(t *testing.T) {
	s := NewSpace(graph.Random(40, 0.5, 1))
	b, err := Codec().Encode(Root(s))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := Codec().Decode(b[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", cut, len(b))
		}
	}
	if _, err := Codec().Decode(append(append([]byte{}, b...), 0x01)); err == nil {
		t.Fatal("decode with trailing garbage succeeded")
	}
}
