package core

import (
	"strings"
	"testing"
	"time"
)

func TestTraceDepthBounded(t *testing.T) {
	tree := genTree(1, 4, 9)
	trace := NewTrace(4)
	res := Enum(DepthBounded, tree, testNode{}, tree.enumProblem(),
		Config{Workers: 4, DCutoff: 2, Trace: trace})
	s := trace.Summary()
	// one event per executed task: the root plus every spawn
	if int64(s.Tasks) != res.Stats.Spawns+1 {
		t.Errorf("traced %d tasks, stats says %d spawns (+1 root)", s.Tasks, res.Stats.Spawns)
	}
	if s.Workers != 4 {
		t.Errorf("Workers = %d", s.Workers)
	}
	if s.Utilisation <= 0 || s.Utilisation > 1.0001 {
		t.Errorf("Utilisation = %f", s.Utilisation)
	}
	if s.MakespanLessThan(0) {
		t.Error("negative makespan")
	}
	var perWorker time.Duration
	for _, d := range s.PerWorker {
		perWorker += d
	}
	if perWorker != s.TotalBusy {
		t.Errorf("per-worker busy %v != total %v", perWorker, s.TotalBusy)
	}
	// depth-bounded with cutoff 2 spawns tasks only at depths 0..2
	for d := range s.DepthCount {
		if d < 0 || d > 2 {
			t.Errorf("task recorded at depth %d, cutoff was 2", d)
		}
	}
	if s.MinTask > s.MedianTask || s.MedianTask > s.MaxTask {
		t.Errorf("task size quantiles out of order: %v %v %v", s.MinTask, s.MedianTask, s.MaxTask)
	}
}

// MakespanLessThan is a tiny helper to keep the test readable.
func (s Summary) MakespanLessThan(d time.Duration) bool { return s.Makespan < d }

func TestTraceStackStealAndBudget(t *testing.T) {
	tree := genTree(2, 4, 9)
	for _, coord := range []Coordination{StackStealing, Budget} {
		trace := NewTrace(4)
		res := Enum(coord, tree, testNode{}, tree.enumProblem(),
			Config{Workers: 4, Budget: 8, Trace: trace})
		s := trace.Summary()
		if s.Tasks == 0 {
			t.Errorf("%v: no tasks traced", coord)
		}
		// stack-stealing tasks exclude the coordinator's root visit,
		// budget includes the root task
		if int64(s.Tasks) > res.Stats.Spawns+1 {
			t.Errorf("%v: %d tasks traced, only %d spawned", coord, s.Tasks, res.Stats.Spawns)
		}
	}
}

func TestTraceBestFirst(t *testing.T) {
	tree := genTree(3, 4, 9)
	trace := NewTrace(3)
	res := BestFirstOpt(tree, testNode{}, tree.optProblem(true),
		Config{Workers: 3, Budget: 8, Trace: trace})
	if res.Objective != tree.max() {
		t.Fatalf("wrong answer under tracing")
	}
	if trace.Summary().Tasks == 0 {
		t.Error("no tasks traced")
	}
}

func TestTraceEventsOrdered(t *testing.T) {
	tree := genTree(5, 4, 8)
	trace := NewTrace(4)
	Enum(DepthBounded, tree, testNode{}, tree.enumProblem(),
		Config{Workers: 4, DCutoff: 3, Trace: trace})
	events := trace.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("events not sorted by start time")
		}
	}
	for _, e := range events {
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if e.Worker < 0 || e.Worker >= 4 {
			t.Fatalf("bad worker id %d", e.Worker)
		}
	}
}

func TestTraceEmptySummary(t *testing.T) {
	s := NewTrace(2).Summary()
	if s.Tasks != 0 || s.TotalBusy != 0 {
		t.Fatalf("empty trace summary = %+v", s)
	}
}

func TestGantt(t *testing.T) {
	tree := genTree(9, 4, 9)
	trace := NewTrace(3)
	Enum(DepthBounded, tree, testNode{}, tree.enumProblem(),
		Config{Workers: 3, DCutoff: 2, Trace: trace})
	out := trace.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 workers + axis
		t.Fatalf("gantt has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("gantt shows no busy time")
	}
	for w := 0; w < 3; w++ {
		if !strings.HasPrefix(lines[w], "w0") {
			t.Fatalf("row %d missing worker label: %q", w, lines[w])
		}
	}
	if NewTrace(2).Gantt(20) != "(no tasks traced)\n" {
		t.Fatal("empty gantt wrong")
	}
}

func TestSummaryString(t *testing.T) {
	tree := genTree(7, 4, 8)
	trace := NewTrace(2)
	Enum(DepthBounded, tree, testNode{}, tree.enumProblem(),
		Config{Workers: 2, DCutoff: 1, Trace: trace})
	out := trace.Summary().String()
	for _, want := range []string{"tasks=", "utilisation=", "task sizes:", "tasks per depth:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}
