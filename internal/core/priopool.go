package core

import (
	"container/heap"
	"sync"
)

// PrioTask is a task with an explicit priority (larger = scheduled
// earlier). Ties break by insertion order, preserving the heuristic
// spawn order among equally promising tasks.
type PrioTask[N any] struct {
	Task[N]
	Priority int64
	seq      int64
}

type prioHeap[N any] []PrioTask[N]

func (h prioHeap[N]) Len() int { return len(h) }
func (h prioHeap[N]) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap[N]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap[N]) Push(x any)   { *h = append(*h, x.(PrioTask[N])) }
func (h *prioHeap[N]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	var zero PrioTask[N]
	old[n-1] = zero
	*h = old[:n-1]
	return t
}

// PrioPool is a concurrent max-priority workpool used by the BestFirst
// extension coordination: Pop and Steal both return the highest
// priority (most promising) task.
type PrioPool[N any] struct {
	mu   sync.Mutex
	h    prioHeap[N]
	next int64
}

// NewPrioPool returns an empty priority pool.
func NewPrioPool[N any]() *PrioPool[N] { return &PrioPool[N]{} }

// PushPrio enqueues a task with a priority.
func (p *PrioPool[N]) PushPrio(t Task[N], prio int64) {
	p.mu.Lock()
	heap.Push(&p.h, PrioTask[N]{Task: t, Priority: prio, seq: p.next})
	p.next++
	p.mu.Unlock()
}

// PopPrio removes and returns the highest-priority task.
func (p *PrioPool[N]) PopPrio() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		var zero Task[N]
		return zero, false
	}
	t := heap.Pop(&p.h).(PrioTask[N])
	return t.Task, true
}

// Size returns the number of queued tasks.
func (p *PrioPool[N]) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.h)
}
