package tsp

import (
	"testing"

	"yewpar/internal/core"
)

// bruteForce tries all permutations (n <= 10).
func bruteForce(s *Space) int64 {
	cities := make([]int, 0, s.N-1)
	for c := 1; c < s.N; c++ {
		cities = append(cities, c)
	}
	best := int64(1) << 62
	var perm func(k int, last int, cost int64)
	perm = func(k int, last int, cost int64) {
		if k == len(cities) {
			if total := cost + s.D[last][0]; total < best {
				best = total
			}
			return
		}
		for i := k; i < len(cities); i++ {
			cities[k], cities[i] = cities[i], cities[k]
			perm(k+1, cities[k], cost+s.D[last][cities[k]])
			cities[k], cities[i] = cities[i], cities[k]
		}
	}
	perm(0, 0, 0)
	return best
}

// heldKarp is the exact O(2^n · n²) dynamic program, an independent
// oracle stronger than permutation enumeration.
func heldKarp(s *Space) int64 {
	n := s.N
	const inf = int64(1) << 60
	full := 1 << uint(n)
	dp := make([][]int64, full)
	for mask := range dp {
		dp[mask] = make([]int64, n)
		for i := range dp[mask] {
			dp[mask][i] = inf
		}
	}
	dp[1][0] = 0
	for mask := 1; mask < full; mask++ {
		if mask&1 == 0 {
			continue // tours start at city 0
		}
		for last := 0; last < n; last++ {
			if dp[mask][last] == inf || mask&(1<<uint(last)) == 0 {
				continue
			}
			for next := 1; next < n; next++ {
				if mask&(1<<uint(next)) != 0 {
					continue
				}
				m2 := mask | 1<<uint(next)
				if c := dp[mask][last] + s.D[last][next]; c < dp[m2][next] {
					dp[m2][next] = c
				}
			}
		}
	}
	best := inf
	for last := 1; last < n; last++ {
		if c := dp[full-1][last] + s.D[last][0]; c < best {
			best = c
		}
	}
	if n == 1 {
		return 0
	}
	return best
}

func TestSolveMatchesHeldKarp(t *testing.T) {
	for seed := int64(30); seed < 38; seed++ {
		s := GenerateEuclidean(12, 1000, seed)
		want := heldKarp(s)
		got, _ := Solve(s, core.Sequential, core.Config{})
		if got != want {
			t.Errorf("seed %d: B&B %d, Held-Karp %d", seed, got, want)
		}
	}
}

func TestHeldKarpMatchesBruteForce(t *testing.T) {
	// oracle vs oracle on tiny instances
	for seed := int64(0); seed < 5; seed++ {
		s := GenerateEuclidean(8, 300, seed)
		if heldKarp(s) != bruteForce(s) {
			t.Fatalf("seed %d: Held-Karp and brute force disagree", seed)
		}
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := GenerateEuclidean(9, 1000, seed)
		want := bruteForce(s)
		got, _ := Solve(s, core.Sequential, core.Config{})
		if got != want {
			t.Errorf("seed %d: tour %d, want %d", seed, got, want)
		}
	}
}

func TestAllSkeletonsAgree(t *testing.T) {
	s := GenerateEuclidean(13, 1000, 4)
	want, _ := Solve(s, core.Sequential, core.Config{})
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := Solve(s, coord, core.Config{Workers: 6, Localities: 2, DCutoff: 2, Budget: 200})
		if got != want {
			t.Errorf("%v: tour %d, want %d", coord, got, want)
		}
	}
}

func TestTriangleTour(t *testing.T) {
	d := [][]int64{
		{0, 1, 2},
		{1, 0, 3},
		{2, 3, 0},
	}
	s := NewSpace(d)
	got, _ := Solve(s, core.Sequential, core.Config{})
	if got != 6 { // only tour: 0-1-2-0 = 1+3+2
		t.Fatalf("tour = %d, want 6", got)
	}
}

func TestGenNearestFirst(t *testing.T) {
	d := [][]int64{
		{0, 5, 1, 9},
		{5, 0, 2, 4},
		{1, 2, 0, 7},
		{9, 4, 7, 0},
	}
	s := NewSpace(d)
	g := Gen(s, Root(s))
	first := g.Next()
	if first.Last != 2 {
		t.Fatalf("first child visits %d, want nearest city 2", first.Last)
	}
}

func TestGenSkipsVisited(t *testing.T) {
	s := GenerateEuclidean(6, 100, 1)
	n := Root(s)
	g := Gen(s, n)
	child := g.Next()
	g2 := Gen(s, child)
	for g2.HasNext() {
		grand := g2.Next()
		if grand.Visited&(1<<uint(child.Last)) == 0 {
			t.Fatal("child lost visited bit")
		}
		if grand.Last == child.Last || grand.Last == 0 {
			t.Fatal("revisited a city")
		}
	}
}

func TestCompleteTourClosesLoop(t *testing.T) {
	d := [][]int64{{0, 2}, {2, 0}}
	s := NewSpace(d)
	g := Gen(s, Root(s))
	leaf := g.Next()
	if leaf.Count != 2 || leaf.Cost != 4 { // 0->1 and back
		t.Fatalf("leaf = %+v, want cost 4", leaf)
	}
	if Gen(s, leaf).HasNext() {
		t.Fatal("complete tour has children")
	}
}

func TestObjectiveOnlyForCompleteTours(t *testing.T) {
	s := GenerateEuclidean(5, 100, 2)
	root := Root(s)
	if Objective(s, root) != incomplete {
		t.Fatal("partial tour has a real objective")
	}
}

func TestUpperBoundAdmissible(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := GenerateEuclidean(8, 500, seed)
		opt := bruteForce(s)
		if UpperBound(s, Root(s)) < -opt {
			t.Errorf("seed %d: root bound %d below optimal objective %d", seed, UpperBound(s, Root(s)), -opt)
		}
	}
}

func TestPruningReducesNodes(t *testing.T) {
	s := GenerateEuclidean(11, 1000, 7)
	p := OptProblem()
	withBound := core.Opt(core.Sequential, s, Root(s), p, core.Config{})
	p.Bound = nil
	noBound := core.Opt(core.Sequential, s, Root(s), p, core.Config{})
	if withBound.Objective != noBound.Objective {
		t.Fatalf("bound changed answer")
	}
	if withBound.Stats.Nodes >= noBound.Stats.Nodes {
		t.Errorf("bound did not help: %d vs %d nodes", withBound.Stats.Nodes, noBound.Stats.Nodes)
	}
}

func TestGenerateDeterministicAndSymmetric(t *testing.T) {
	a := GenerateEuclidean(12, 1000, 5)
	b := GenerateEuclidean(12, 1000, 5)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if a.D[i][j] != b.D[i][j] {
				t.Fatal("same seed, different distances")
			}
			if a.D[i][j] != a.D[j][i] {
				t.Fatal("asymmetric distances")
			}
		}
		if a.D[i][i] != 0 {
			t.Fatal("non-zero diagonal")
		}
	}
}
