package core

import (
	"runtime"
	"sync"
	"time"
)

// This file implements the BestFirst extension coordination — not one
// of the paper's four, but the worked instance of its extensibility
// claim (Section 4: "new coordination methods may provide best-first
// search or random task creation"). The coordination keeps a global
// priority workpool ordered by a user-supplied task priority
// (typically the optimisation bound). Workers repeatedly take the most
// promising subtree and explore it depth-first for a backtrack budget,
// shedding the lowest-depth leftovers back into the pool with fresh
// priorities — a budget-style splitter married to best-first global
// ordering.

// BestFirstOpt runs an optimisation search with best-bound-first task
// scheduling. The priority of a spawned subtree is p.Bound of its
// root, so globally promising regions are searched early, which finds
// strong incumbents fast and amplifies pruning. Requires p.Bound.
func BestFirstOpt[S, N any](space S, root N, p OptProblem[S, N], cfg Config) OptResult[N] {
	if p.Bound == nil {
		panic("core: BestFirstOpt requires a Bound function")
	}
	cfg = cfg.withDefaults()
	fab := newLoopbackFabric[N](cfg)
	defer fab.close()
	m := newMetrics(cfg.Workers)
	cancel := newCanceller()
	inc := newIncumbent[N](fab.trs)
	fab.bounds = inc
	locOf := make([]int, cfg.Workers)
	for w := range locOf {
		locOf[w] = w % cfg.Localities
	}
	vs := newOptVisitors(space, p, inc, m, locOf)
	fab.start(cancel)
	start := time.Now()
	runBestFirst(space, p.Gen, func(n N) int64 { return p.Bound(space, n) }, cfg, m, cancel, vs, root)
	stats := m.total()
	stats.Elapsed = time.Since(start)
	stats.Broadcasts = inc.broadcasts()
	node, obj, has := inc.result()
	return OptResult[N]{Best: node, Objective: obj, Found: has, Stats: stats}
}

// runBestFirst drives workers over a single global priority pool.
// Tasks run depth-first for cfg.Budget backtracks; on exhaustion the
// bottom-most generator is drained back into the pool, prioritised by
// each subtree root's own bound.
func runBestFirst[S, N any](space S, gf GenFactory[S, N], prio func(N) int64, cfg Config, m *Metrics, cancel *canceller, visitors []visitor[N], root N) {
	pool := NewPrioPool[N]()
	tr := newTracker()
	tr.add(1)
	pool.PushPrio(Task[N]{Node: root, Depth: 0}, prio(root))
	caches := newGenCaches(space, gf, cfg)

	runTask := func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
		if trc := cfg.Trace; trc != nil {
			start := time.Now()
			defer func() { trc.record(w, t.Depth, start, time.Now()) }()
		}
		defer tr.finish()
		if cancel.cancelled() {
			return
		}
		if v.visit(t.Node) != descend {
			return
		}
		gc := caches[w]
		stack := make([]NodeGenerator[N], 0, 32)
		stack = append(stack, gc.gen(0, t.Node))
		backtracks := int64(0)
		for len(stack) > 0 {
			if cancel.cancelled() {
				return
			}
			if backtracks >= cfg.Budget {
				for i := 0; i < len(stack); i++ {
					if stack[i].HasNext() {
						for stack[i].HasNext() {
							child := stack[i].Next()
							tr.add(1)
							sh.Spawns++
							pool.PushPrio(Task[N]{Node: child, Depth: t.Depth + i + 1}, prio(child))
						}
						break
					}
				}
				backtracks = 0
				continue
			}
			g := stack[len(stack)-1]
			if !g.HasNext() {
				stack[len(stack)-1] = nil
				stack = stack[:len(stack)-1]
				sh.Backtracks++
				backtracks++
				continue
			}
			child := g.Next()
			switch v.visit(child) {
			case descend:
				stack = append(stack, gc.gen(len(stack), child))
			case pruneLevel:
				stack[len(stack)-1] = nil
				stack = stack[:len(stack)-1]
				sh.Backtracks++
				backtracks++
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := visitors[w]
			sh := m.shard(w)
			idle := 0
			for {
				if cancel.cancelled() {
					return
				}
				t, ok := pool.PopPrio()
				if ok {
					idle = 0
					runTask(w, v, sh, t)
					continue
				}
				select {
				case <-tr.done:
					return
				case <-cancel.ch:
					return
				default:
				}
				idle++
				if idle > 64 {
					time.Sleep(20 * time.Microsecond)
				} else {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
}
