package dist

import (
	"fmt"
	"math/rand"
	"net"
	"time"
)

// dialWithRetry dials addr until the timeout, with jittered
// exponential backoff between attempts. This is the one dialer shared
// by star registration, mesh peer dials, post-takeover promotion
// re-dials, and session resume reconnects: a whole deployment's
// workers re-reaching a just-promoted standby (or racing a slow
// coordinator launch) must not stampede the listener in lockstep.
func dialWithRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	backoff := 25 * time.Millisecond
	for {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: dialing %s: %w", addr, err)
		}
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
		if backoff < 400*time.Millisecond {
			backoff *= 2
		}
	}
}

// dialRetry dials with the registration window's standard timeout (the
// coordinator may not be listening yet).
func dialRetry(addr string) (net.Conn, error) {
	return dialWithRetry(addr, dialTimeout)
}

// sessionRedialer is the redial hook a dialing-side session uses: one
// bounded attempt per call — redialResume owns the retry loop and the
// grace deadline.
func sessionRedialer(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
}
