package semantics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func handTree() *Tree {
	//        ""
	//   a         b
	// aa ab      ba
	//            baa
	return &Tree{
		Children: map[string][]string{
			"":   {"a", "b"},
			"a":  {"aa", "ab"},
			"b":  {"ba"},
			"ba": {"baa"},
		},
		H: map[string]int{"": 1, "a": 5, "aa": 2, "ab": 9, "b": 3, "ba": 7, "baa": 4},
	}
}

func TestTraversalOrder(t *testing.T) {
	tr := handTree()
	s := FullSubtree(tr, "")
	got := s.traversal(tr)
	want := []string{"", "a", "aa", "ab", "b", "ba", "baa"}
	if len(got) != len(want) {
		t.Fatalf("traversal = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("traversal = %v, want %v", got, want)
		}
	}
}

func TestNextAndSucc(t *testing.T) {
	tr := handTree()
	s := FullSubtree(tr, "")
	if v, ok := s.next(tr, "ab"); !ok || v != "b" {
		t.Fatalf("next(ab) = %q/%v", v, ok)
	}
	if _, ok := s.next(tr, "baa"); ok {
		t.Fatal("next(last) should be ⊥")
	}
	succ := s.succ(tr, "aa")
	if len(succ) != 4 || succ[0] != "ab" || succ[3] != "baa" {
		t.Fatalf("succ(aa) = %v", succ)
	}
}

func TestLowest(t *testing.T) {
	tr := handTree()
	s := FullSubtree(tr, "")
	lo := s.lowest(tr, "aa")
	// succ(aa) = {ab, b, ba, baa}; minimum depth 1 → {b}
	if len(lo) != 1 || lo[0] != "b" {
		t.Fatalf("lowest(aa) = %v", lo)
	}
}

func TestExtract(t *testing.T) {
	tr := handTree()
	s := FullSubtree(tr, "")
	sub := s.extract("b")
	if len(sub.Nodes) != 3 || !sub.Nodes["b"] || !sub.Nodes["ba"] || !sub.Nodes["baa"] {
		t.Fatalf("extracted = %v", sub.Nodes)
	}
	if len(s.Nodes) != 4 || s.Nodes["b"] {
		t.Fatalf("remaining = %v", s.Nodes)
	}
}

func TestFullSubtreeOfChild(t *testing.T) {
	tr := handTree()
	s := FullSubtree(tr, "b")
	if len(s.Nodes) != 3 || s.Nodes["a"] {
		t.Fatalf("subtree(b) = %v", s.Nodes)
	}
}

func maxStepsFor(tr *Tree) int { return 60*tr.Size()*tr.Size() + 2000 }

// Theorem 3.1: enumeration reductions compute Σ h(v) on every
// interleaving, and process every node exactly once.
func TestEnumerationTheorem31(t *testing.T) {
	f := func(treeSeed, schedSeed int64, nThreads uint8) bool {
		tr := GenTree(treeSeed%1000, 3, 6, 100)
		c := NewConfig(tr, Enumeration, 0, 1+int(nThreads%4))
		c.Run(schedSeed, Params{DCutoff: 2, KBudget: 2}, nil, maxStepsFor(tr))
		if c.Result() != tr.Sum() {
			t.Logf("sum = %d, want %d (tree %d sched %d)", c.Result(), tr.Sum(), treeSeed, schedSeed)
			return false
		}
		for v := range tr.H {
			if c.ProcessedCounts()[v] != 1 {
				t.Logf("node %q processed %d times", v, c.ProcessedCounts()[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3.2 (optimisation): any interleaving, including prunes,
// yields an incumbent with h = max h.
func TestOptimisationTheorem32(t *testing.T) {
	f := func(treeSeed, schedSeed int64, nThreads uint8) bool {
		tr := GenTree(treeSeed%1000, 3, 6, 100)
		c := NewConfig(tr, Optimisation, 0, 1+int(nThreads%4))
		c.Run(schedSeed, Params{DCutoff: 2, KBudget: 1}, nil, maxStepsFor(tr))
		return c.Result() == tr.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3.2 (decision): with an achievable target the search reaches
// the greatest element; with an unachievable one it computes max h.
func TestDecisionTheorem32(t *testing.T) {
	f := func(treeSeed, schedSeed int64, nThreads uint8, pick uint8) bool {
		tr := GenTree(treeSeed%1000, 3, 6, 100)
		achievable := int(pick)%2 == 0
		target := tr.Max()
		if !achievable {
			target = tr.Max() + 1
		}
		c := NewConfig(tr, Decision, target, 1+int(nThreads%4))
		c.Run(schedSeed, Params{DCutoff: 2, KBudget: 1}, nil, maxStepsFor(tr))
		if achievable {
			return c.Result() == target
		}
		return c.Result() == tr.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3.3: every schedule terminates within the polynomial step
// budget (Run panics otherwise), for every rule subset.
func TestTerminationAcrossRuleSets(t *testing.T) {
	ruleSets := []map[RuleName]bool{
		nil,                                  // everything
		{RuleSchedule: true, RuleStep: true}, // pure sequential
		{RuleSchedule: true, RuleStep: true, RuleSpawn: true},
		{RuleSchedule: true, RuleStep: true, RuleSpawnDepth: true},
		{RuleSchedule: true, RuleStep: true, RuleSpawnBudget: true},
		{RuleSchedule: true, RuleStep: true, RuleSpawnStack: true},
		{RuleSchedule: true, RuleStep: true, RulePrune: true, RuleShortcircuit: true},
	}
	for seed := int64(0); seed < 5; seed++ {
		tr := GenTree(seed, 3, 6, 50)
		for ri, rules := range ruleSets {
			kind := Enumeration
			if ri >= 6 {
				kind = Optimisation
			}
			c := NewConfig(tr, kind, 0, 3)
			steps := c.Run(seed*31+int64(ri), Params{DCutoff: 2, KBudget: 2}, rules, maxStepsFor(tr))
			if steps <= 0 {
				t.Fatalf("no steps taken (seed %d rules %d)", seed, ri)
			}
			if kind == Enumeration && c.Result() != tr.Sum() {
				t.Fatalf("rule set %d: wrong sum", ri)
			}
		}
	}
}

// The derived spawn rules alone must preserve enumeration results
// (they are semantically redundant — Section 3.6).
func TestDerivedSpawnRulesRedundant(t *testing.T) {
	tr := GenTree(9, 3, 6, 50)
	want := tr.Sum()
	for _, rule := range []RuleName{RuleSpawnDepth, RuleSpawnBudget, RuleSpawnStack} {
		for seed := int64(0); seed < 10; seed++ {
			c := NewConfig(tr, Enumeration, 0, 4)
			c.Run(seed, Params{DCutoff: 3, KBudget: 1},
				map[RuleName]bool{RuleSchedule: true, RuleStep: true, rule: true}, maxStepsFor(tr))
			if c.Result() != want {
				t.Fatalf("%s seed %d: sum %d, want %d", rule, seed, c.Result(), want)
			}
		}
	}
}

// Admissibility of the bound-derived pruning relation
// u ▷ v ⇔ h(u) >= SubtreeMax(v) (Section 3.5, conditions 1–3).
func TestPruneRelationAdmissible(t *testing.T) {
	tr := GenTree(4, 3, 6, 100)
	var nodes []string
	for v := range tr.H {
		nodes = append(nodes, v)
	}
	r := rand.New(rand.NewSource(1))
	rel := func(u, v string) bool { return tr.H[u] >= tr.SubtreeMax(v) }
	for i := 0; i < 2000; i++ {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		w := nodes[r.Intn(len(nodes))]
		if rel(u, v) {
			// 1: h(u) >= h(v)
			if tr.H[u] < tr.H[v] {
				t.Fatal("condition 1 violated")
			}
			// 2: stronger incumbents still prune
			if tr.H[w] >= tr.H[u] && !rel(w, v) {
				t.Fatal("condition 2 violated")
			}
			// 3: descendants of v are also pruned
			if strings.HasPrefix(w, v) && !rel(u, w) {
				t.Fatal("condition 3 violated")
			}
		}
	}
}

// Pruning must reduce processed nodes without changing the optimum.
func TestPruneSavesWork(t *testing.T) {
	tr := GenTree(8, 3, 7, 100)
	noPrune := NewConfig(tr, Optimisation, 0, 1)
	noPrune.Run(1, Params{}, map[RuleName]bool{RuleSchedule: true, RuleStep: true}, maxStepsFor(tr))
	pruned := NewConfig(tr, Optimisation, 0, 1)
	pruned.Run(1, Params{}, map[RuleName]bool{RuleSchedule: true, RuleStep: true, RulePrune: true}, maxStepsFor(tr))
	if noPrune.Result() != pruned.Result() {
		t.Fatalf("pruning changed the optimum: %d vs %d", noPrune.Result(), pruned.Result())
	}
	count := func(c *Config) int {
		total := 0
		for _, k := range c.ProcessedCounts() {
			total += k
		}
		return total
	}
	if count(pruned) > count(noPrune) {
		t.Fatalf("pruned run processed more nodes (%d > %d)", count(pruned), count(noPrune))
	}
}

// Confluence modulo witnesses: the *value* of the result is schedule
// independent.
func TestResultScheduleIndependent(t *testing.T) {
	tr := GenTree(12, 3, 6, 100)
	for kind, want := range map[Kind]int{Enumeration: tr.Sum(), Optimisation: tr.Max()} {
		for seed := int64(0); seed < 30; seed++ {
			c := NewConfig(tr, kind, 0, 1+int(seed%4))
			c.Run(seed, Params{DCutoff: 2, KBudget: 1}, nil, maxStepsFor(tr))
			if c.Result() != want {
				t.Fatalf("kind %d seed %d: result %d, want %d", kind, seed, c.Result(), want)
			}
		}
	}
}

// Decision short-circuit must be able to leave nodes unprocessed.
func TestShortcircuitLeavesWorkUndone(t *testing.T) {
	// A tree whose root already achieves the target.
	tr := GenTree(15, 3, 7, 10)
	tr.H[""] = 1000
	c := NewConfig(tr, Decision, 5, 2)
	c.Run(3, Params{}, nil, maxStepsFor(tr))
	if c.Result() != 5 {
		t.Fatalf("result %d, want target 5", c.Result())
	}
}

func TestGenTreeDeterministic(t *testing.T) {
	a := GenTree(5, 3, 5, 100)
	b := GenTree(5, 3, 5, 100)
	if a.Size() != b.Size() || a.Sum() != b.Sum() {
		t.Fatal("GenTree not deterministic")
	}
}

func TestConfigFinalDetection(t *testing.T) {
	tr := handTree()
	c := NewConfig(tr, Enumeration, 0, 2)
	if c.Final() {
		t.Fatal("initial config with a task is final")
	}
	c.Run(1, Params{}, map[RuleName]bool{RuleSchedule: true, RuleStep: true}, 10000)
	if !c.Final() {
		t.Fatal("Run returned on non-final config")
	}
	if c.Result() != tr.Sum() {
		t.Fatalf("hand tree sum = %d, want %d", c.Result(), tr.Sum())
	}
}
