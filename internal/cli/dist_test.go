package cli

import (
	"io"
	"strings"
	"testing"
)

func TestParseDistFlags(t *testing.T) {
	o, err := ParseArgs([]string{"-dist", "worker", "-dist-addr", "10.0.0.1:7000", "-dist-workers", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Dist != "worker" || o.DistAddr != "10.0.0.1:7000" || o.DistWorkers != 5 {
		t.Fatalf("parsed %+v", o)
	}
}

func TestDistRejectsUnknownRole(t *testing.T) {
	err := Run([]string{"-dist", "observer"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown -dist role") {
		t.Fatalf("err = %v", err)
	}
}

func TestDistRejectsNonPoolSkeleton(t *testing.T) {
	err := Run([]string{"-dist", "coordinator", "-skeleton", "seq"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "pool-based") {
		t.Fatalf("skeleton seq: err = %v", err)
	}
}

func TestDistSpecDiffersAcrossInstances(t *testing.T) {
	a, _ := ParseArgs([]string{"-app", "knapsack", "-items", "20"})
	b, _ := ParseArgs([]string{"-app", "knapsack", "-items", "24"})
	if a.distSpec() == b.distSpec() {
		t.Fatal("different instances produced identical deployment specs")
	}
	c, _ := ParseArgs([]string{"-app", "knapsack", "-items", "20"})
	if a.distSpec() != c.distSpec() {
		t.Fatal("identical options produced different deployment specs")
	}
}
