package bitset

import (
	"testing"
	"testing/quick"
)

func TestMakeSlabIndependentSets(t *testing.T) {
	sets := MakeSlab(100, 3)
	if len(sets) != 3 {
		t.Fatalf("MakeSlab returned %d sets", len(sets))
	}
	sets[0].Add(5)
	sets[1].Add(70)
	if sets[1].Contains(5) || sets[0].Contains(70) || sets[2].Count() != 0 {
		t.Fatal("slab sets share bits")
	}
	for _, s := range sets {
		if s.Cap() != 100 {
			t.Fatalf("slab set capacity %d", s.Cap())
		}
	}
}

func TestMakeSlabNoWordBleed(t *testing.T) {
	// Fill one set completely; neighbours must stay empty even though
	// they share a backing array.
	sets := MakeSlab(67, 4)
	sets[1].Fill()
	if sets[0].Count() != 0 || sets[2].Count() != 0 {
		t.Fatal("Fill bled into adjacent slab set")
	}
	if sets[1].Count() != 67 {
		t.Fatalf("filled set has %d elements", sets[1].Count())
	}
	sets[1].Clear()
	if !sets[1].Empty() {
		t.Fatal("Clear failed on slab set")
	}
}

func TestMakePairMatchesSlab(t *testing.T) {
	a, b := MakePair(130)
	a.Add(129)
	b.Add(0)
	if b.Contains(129) || a.Contains(0) {
		t.Fatal("pair sets share bits")
	}
	if a.Cap() != 130 || b.Cap() != 130 {
		t.Fatal("wrong pair capacity")
	}
}

// Property: slab sets behave exactly like independently allocated sets
// under interleaved mutation.
func TestQuickSlabEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 150
		slab := MakeSlab(n, 2)
		ref0, ref1 := New(n), New(n)
		for i, op := range ops {
			v := int(op) % n
			if i%2 == 0 {
				slab[0].Add(v)
				ref0.Add(v)
			} else {
				slab[1].Add(v)
				ref1.Add(v)
			}
		}
		return slab[0].Equal(ref0) && slab[1].Equal(ref1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabAppendCannotGrowIntoNeighbour(t *testing.T) {
	// The sub-slices are capacity-clamped; writing through set ops can
	// never touch a neighbour. Exercise the boundary words directly.
	sets := MakeSlab(64, 2) // exactly one word each
	sets[0].Add(63)
	sets[1].Add(0)
	if sets[0].Count() != 1 || sets[1].Count() != 1 {
		t.Fatal("boundary bits misplaced")
	}
	if sets[0].Max() != 63 || sets[1].Min() != 0 {
		t.Fatal("boundary values wrong")
	}
}
