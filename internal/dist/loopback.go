package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LoopbackOptions tunes the in-process network.
type LoopbackOptions struct {
	// StealLatency, if positive, is slept on the thief's goroutine
	// before each steal request is served, simulating the network cost
	// of a remote steal.
	StealLatency time.Duration
	// BoundLatency, if positive, delays delivery of bound broadcasts
	// to peer localities, simulating the PGAS bound-broadcast latency:
	// peers prune against stale bounds in the meantime.
	BoundLatency time.Duration
}

// LoopbackNetwork is a set of in-process localities connected by
// direct calls: the Transport implementation backing single-process
// runs, where "localities" are groups of goroutines sharing an address
// space. Latency injection makes it a faithful stand-in for a real
// network in experiments, and its simplicity makes it the reference
// implementation for the Transport conformance suite.
type LoopbackNetwork struct {
	opts LoopbackOptions
	trs  []*loopback

	live     atomic.Int64
	done     chan struct{}
	doneOnce sync.Once

	gatherMu    sync.Mutex
	blobs       [][]byte
	contributed []bool
	have        int
	gathered    chan struct{}
}

// NewLoopback creates a connected network of n localities.
func NewLoopback(n int, opts LoopbackOptions) *LoopbackNetwork {
	if n <= 0 {
		panic(fmt.Sprintf("dist: loopback network of %d localities", n))
	}
	net := &LoopbackNetwork{
		opts:        opts,
		trs:         make([]*loopback, n),
		done:        make(chan struct{}),
		blobs:       make([][]byte, n),
		contributed: make([]bool, n),
		gathered:    make(chan struct{}),
	}
	for i := range net.trs {
		net.trs[i] = &loopback{net: net, rank: i}
	}
	return net
}

// Transports returns the network's localities, indexed by rank.
func (ln *LoopbackNetwork) Transports() []Transport {
	ts := make([]Transport, len(ln.trs))
	for i, tr := range ln.trs {
		ts[i] = tr
	}
	return ts
}

// Close closes every locality of the network.
func (ln *LoopbackNetwork) Close() error {
	for _, tr := range ln.trs {
		tr.Close()
	}
	return nil
}

func (ln *LoopbackNetwork) addTasks(delta int64) {
	if ln.live.Add(delta) == 0 && delta < 0 {
		ln.doneOnce.Do(func() { close(ln.done) })
	}
}

// contribute records one locality's gather payload (or its death, with
// a nil payload); the last contribution releases rank 0.
func (ln *LoopbackNetwork) contribute(rank int, blob []byte) {
	ln.gatherMu.Lock()
	defer ln.gatherMu.Unlock()
	if ln.contributed[rank] {
		return
	}
	ln.contributed[rank] = true
	ln.blobs[rank] = blob
	ln.have++
	if ln.have == len(ln.trs) {
		close(ln.gathered)
	}
}

// loopback is one locality's endpoint in a LoopbackNetwork.
type loopback struct {
	net    *LoopbackNetwork
	rank   int
	h      atomic.Value // Handler
	closed atomic.Bool
	ctr    wireCounters
}

var _ Transport = (*loopback)(nil)
var _ Meter = (*loopback)(nil)
var _ PrioAware = (*loopback)(nil)

// Wire implements Meter with logical message counts: the frames a wire
// transport would have sent for the same traffic, and payload bytes
// only — engine runs hand nodes over by reference (no Payload), so
// they report zero bytes, which is the truth of shared memory.
// AddTasks counts no frames — in-process accounting needs none, which
// is exactly the gap the TCP transport's delta coalescing narrows.
func (t *loopback) Wire() WireStats { return t.ctr.snapshot() }

func (t *loopback) Rank() int { return t.rank }

func (t *loopback) Size() int { return len(t.net.trs) }

func (t *loopback) Start(h Handler) { t.h.Store(h) }

func (t *loopback) handler() Handler {
	if t.closed.Load() {
		return nil
	}
	h, _ := t.h.Load().(Handler)
	return h
}

// PeerBestPrio implements PrioAware by asking the victim's handler
// directly: shared memory needs no piggybacked summary, so the loopback
// network's answer is exact where a wire transport's is a hint.
func (t *loopback) PeerBestPrio(rank int) (int, bool) {
	if rank < 0 || rank >= len(t.net.trs) || rank == t.rank {
		return 0, false
	}
	sr, ok := t.net.trs[rank].handler().(StealRanker)
	if !ok {
		return 0, false
	}
	p, has := sr.BestStealPrio()
	if !has {
		return PrioNone, true
	}
	if p < 0 {
		p = 0
	}
	return p, true
}

func (t *loopback) Steal(victim int) (WireTask, bool, error) {
	if victim < 0 || victim >= len(t.net.trs) || victim == t.rank {
		return WireTask{}, false, fmt.Errorf("dist: steal from invalid rank %d", victim)
	}
	if lat := t.net.opts.StealLatency; lat > 0 {
		time.Sleep(lat)
	}
	vh := t.net.trs[victim].handler()
	if vh == nil {
		return WireTask{}, false, nil
	}
	wt, ok := vh.ServeSteal(t.rank)
	t.ctr.framesSent.Add(1) // the request
	t.ctr.framesRecv.Add(1) // the reply
	if ok {
		t.ctr.stealReplies.Add(1)
		t.ctr.stealTasks.Add(1)
		// Logical bytes moved, credited to the sent side (the only
		// side Stats aggregates). Real engine runs pass nodes by
		// reference (nil Payload) and truthfully report zero.
		t.ctr.bytesSent.Add(int64(len(wt.Payload)))
	}
	return wt, ok, nil
}

func (t *loopback) BroadcastBound(obj int64) error {
	for _, peer := range t.net.trs {
		if peer.rank == t.rank {
			continue
		}
		t.ctr.framesSent.Add(1)
		if lat := t.net.opts.BoundLatency; lat > 0 {
			p := peer
			time.AfterFunc(lat, func() {
				if h := p.handler(); h != nil {
					h.OnBound(t.rank, obj)
				}
			})
			continue
		}
		if h := peer.handler(); h != nil {
			h.OnBound(t.rank, obj)
		}
	}
	return nil
}

func (t *loopback) Cancel() error {
	for _, peer := range t.net.trs {
		if peer.rank == t.rank {
			continue
		}
		t.ctr.framesSent.Add(1)
		if h := peer.handler(); h != nil {
			h.OnCancel(t.rank)
		}
	}
	return nil
}

func (t *loopback) AddTasks(delta int64) { t.net.addTasks(delta) }

func (t *loopback) Done() <-chan struct{} { return t.net.done }

func (t *loopback) Gather(payload []byte) ([][]byte, error) {
	if t.rank != 0 {
		t.ctr.framesSent.Add(1)
		t.ctr.bytesSent.Add(int64(len(payload)))
	}
	t.net.contribute(t.rank, payload)
	if t.rank != 0 {
		return nil, nil
	}
	<-t.net.gathered
	t.net.gatherMu.Lock()
	defer t.net.gatherMu.Unlock()
	return t.net.blobs, nil
}

// Close detaches the locality: subsequent steals from it fail, bound
// deliveries to it are dropped, a pending Gather sees a nil payload in
// its slot, and — since a dead locality's live tasks can never
// complete — the search is force-terminated so survivors unblock
// (matching the TCP transport's worker-death behaviour; a no-op after
// normal termination).
func (t *loopback) Close() error {
	if t.closed.CompareAndSwap(false, true) {
		t.net.contribute(t.rank, nil)
		t.net.doneOnce.Do(func() { close(t.net.done) })
	}
	return nil
}
