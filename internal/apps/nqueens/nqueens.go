// Package nqueens implements the N-Queens enumeration search: count
// the placements of n non-attacking queens. It is not part of the
// paper's evaluated seven, but ships with the original YewPar
// distribution as the canonical backtracking warm-up, and serves the
// same role here: a pure enumeration with a perfectly known answer
// and a sharply irregular tree.
package nqueens

import "yewpar/internal/core"

// Space is the board size.
type Space struct {
	N int
}

// NewSpace returns the n-queens search space (n <= 32).
func NewSpace(n int) *Space {
	if n < 1 || n > 32 {
		panic("nqueens: board size out of range")
	}
	return &Space{N: n}
}

// Node is a partial placement: one queen per row 0..Row-1, with the
// attacked columns and diagonals as bitmasks. The masks make child
// generation O(1) per candidate column.
type Node struct {
	Row   int
	Cols  uint64 // columns occupied
	Diag1 uint64 // "/" diagonals, shifted left per row
	Diag2 uint64 // "\" diagonals, shifted right per row
}

// Root is the empty board.
func Root(_ *Space) Node { return Node{} }

type gen struct {
	s      *Space
	parent Node
	free   uint64 // candidate columns for the next row
}

var _ core.ResettableGenerator[*Space, Node] = (*gen)(nil)

// Gen is the core.GenFactory for n-queens: children place a queen on
// each safe column of the next row, left to right.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	if parent.Row >= s.N {
		return core.EmptyGen[Node]{}
	}
	g := &gen{}
	g.Reset(s, parent)
	if g.free == 0 {
		return core.EmptyGen[Node]{}
	}
	return g
}

// Reset implements core.ResettableGenerator: recompute the free-column
// mask for the new parent (zero when the board is full or no column is
// safe, in which case HasNext reports false immediately).
func (g *gen) Reset(s *Space, parent Node) {
	g.s, g.parent = s, parent
	if parent.Row >= s.N {
		g.free = 0
		return
	}
	mask := uint64(1)<<uint(s.N) - 1
	g.free = mask &^ (parent.Cols | parent.Diag1 | parent.Diag2)
}

func (g *gen) HasNext() bool { return g.free != 0 }

func (g *gen) Next() Node {
	bit := g.free & (-g.free) // lowest set bit: leftmost free column
	g.free &^= bit
	mask := uint64(1)<<uint(g.s.N) - 1
	return Node{
		Row:   g.parent.Row + 1,
		Cols:  g.parent.Cols | bit,
		Diag1: ((g.parent.Diag1 | bit) << 1) & mask,
		Diag2: (g.parent.Diag2 | bit) >> 1,
	}
}

// CountProblem counts complete placements (nodes at row N).
func CountProblem() core.EnumProblem[*Space, Node, int64] {
	return core.EnumProblem[*Space, Node, int64]{
		Gen: Gen,
		Objective: func(s *Space, n Node) int64 {
			if n.Row == s.N {
				return 1
			}
			return 0
		},
		Monoid: core.SumInt64{},
	}
}

// Count counts the solutions to the n-queens problem with the given
// skeleton.
func Count(n int, coord core.Coordination, cfg core.Config) (int64, core.Stats) {
	s := NewSpace(n)
	res := core.Enum(coord, s, Root(s), CountProblem(), cfg)
	return res.Value, res.Stats
}
