package instances

import (
	"testing"

	"yewpar/internal/apps/maxclique"
	"yewpar/internal/core"
)

func TestTable1HasEighteenNamedInstances(t *testing.T) {
	insts := Table1()
	if len(insts) != 18 {
		t.Fatalf("Table1 has %d instances, want 18 (as in the paper)", len(insts))
	}
	seen := map[string]bool{}
	for _, inst := range insts {
		if inst.Name == "" {
			t.Fatal("unnamed instance")
		}
		if seen[inst.Name] {
			t.Fatalf("duplicate instance name %q", inst.Name)
		}
		seen[inst.Name] = true
	}
	for _, want := range []string{"MANN_a45", "brock400_1", "p_hat700-3", "san1000", "sanr400_0.7"} {
		if !seen[want] {
			t.Errorf("missing paper row %q", want)
		}
	}
}

func TestTable1InstancesDeterministic(t *testing.T) {
	a := Table1()[1].Gen()
	b := Table1()[1].Gen()
	if a.N != b.N || a.Edges() != b.Edges() {
		t.Fatal("instance generation not deterministic")
	}
	for v := 0; v < a.N; v++ {
		if !a.Adj[v].Equal(b.Adj[v]) {
			t.Fatal("instance adjacency not deterministic")
		}
	}
}

func TestTable1InstancesNonTrivial(t *testing.T) {
	for _, inst := range Table1() {
		g := inst.Gen()
		if g.N < 50 {
			t.Errorf("%s: only %d vertices", inst.Name, g.N)
		}
		if g.Density() < 0.2 || g.Density() > 0.95 {
			t.Errorf("%s: density %.2f outside clique-search regime", inst.Name, g.Density())
		}
	}
}

func TestSpreadsOmegaHint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second maximum-clique verification")
	}
	g, omega := SpreadsH44Like()
	clique, _ := maxclique.Solve(g, core.DepthBounded, core.Config{DCutoff: 2})
	if clique.Count() != omega {
		t.Fatalf("precomputed ω = %d but solver found %d — update SpreadsH44Like", omega, clique.Count())
	}
}

func TestTable2SetsNonEmpty(t *testing.T) {
	if n := len(Table2Clique()); n != 3 {
		t.Errorf("Table2Clique: %d instances", n)
	}
	if n := len(Table2Knapsack()); n != 3 {
		t.Errorf("Table2Knapsack: %d instances", n)
	}
	if n := len(Table2TSP()); n != 3 {
		t.Errorf("Table2TSP: %d instances", n)
	}
	if n := len(Table2SIP()); n != 3 {
		t.Errorf("Table2SIP: %d instances", n)
	}
	if n := len(Table2UTS()); n != 3 {
		t.Errorf("Table2UTS: %d instances", n)
	}
	if n := len(Table2NS()); n != 2 {
		t.Errorf("Table2NS: %d targets", n)
	}
}

func TestTable2KnapsackIsHardFamily(t *testing.T) {
	for i, s := range Table2Knapsack() {
		if s.Cap%2 != 1 {
			t.Errorf("instance %d: capacity %d not odd (hard subset-sum requires it)", i, s.Cap)
		}
		for _, it := range s.Items {
			if it.Profit != it.Weight {
				t.Fatalf("instance %d: not subset-sum", i)
			}
			if it.Weight%2 != 0 {
				t.Fatalf("instance %d: odd weight %d", i, it.Weight)
			}
		}
	}
}
