package bitset

import (
	"math/rand"
	"testing"
)

func TestAppendParseBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 65, 200, 1000} {
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		// Embedded mid-stream: prefix and suffix must survive.
		buf := s.AppendBinary([]byte{0xEE})
		buf = append(buf, 0xDD)
		got, rest, err := ParseBinary(buf[1:])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(s) {
			t.Fatalf("n=%d: round trip %v != %v", n, got, s)
		}
		if len(rest) != 1 || rest[0] != 0xDD {
			t.Fatalf("n=%d: tail %v, want [0xDD]", n, rest)
		}
	}
}

func TestParseBinaryRejectsCorruptPayloads(t *testing.T) {
	s := New(130)
	s.Add(0)
	s.Add(129)
	b := s.AppendBinary(nil)
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := ParseBinary(b[:cut]); err == nil {
			t.Fatalf("parse of %d/%d-byte truncation succeeded", cut, len(b))
		}
	}
	// A huge claimed capacity must be rejected before allocation.
	if _, _, err := ParseBinary([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("absurd capacity accepted")
	}
}
