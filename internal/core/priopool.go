package core

import "sync"

// PrioBucketPool is the ordered-scheduling workpool: one FIFO bucket
// per priority (Task.Prio, lower = better), with Pop and Steal both
// returning the best-priority task, FIFO within a priority. It replaces
// the mutex+heap PrioPool that previously backed the BestFirst
// coordination: priorities assigned by the ordering modes are small
// ints (a discrepancy count, or a clamped distance from the root
// bound), so a bucket array gives O(1) push and pop where the heap paid
// O(log n) plus far worse constants — and, sharded per worker inside a
// ShardedPool exactly like the DepthPool, the owner path runs with no
// contention at all while siblings and transport thieves rob
// best-priority-first through StealRank.
type PrioBucketPool[N any] struct {
	mu      sync.Mutex
	buckets [][]Task[N]
	heads   []int
	size    int
	min     int // lowest possibly-non-empty priority
}

// NewPrioBucketPool returns an empty priority pool.
func NewPrioBucketPool[N any]() *PrioBucketPool[N] { return &PrioBucketPool[N]{} }

// Push implements Pool, bucketing on the task's priority. Priorities
// outside [0, maxTaskPrio] are clamped, so a hostile or buggy value
// cannot grow the bucket array without bound.
func (p *PrioBucketPool[N]) Push(t Task[N]) {
	pr := int(clampPrio(int64(t.Prio)))
	p.mu.Lock()
	for len(p.buckets) <= pr {
		p.buckets = append(p.buckets, nil)
		p.heads = append(p.heads, 0)
	}
	p.buckets[pr] = append(p.buckets[pr], t)
	if pr < p.min {
		p.min = pr
	}
	p.size++
	p.mu.Unlock()
}

// takeAt removes the FIFO-front task of bucket pr (see
// DepthPool.takeAt for the retained-capacity policy).
func (p *PrioBucketPool[N]) takeAt(pr int) Task[N] {
	t := p.buckets[pr][p.heads[pr]]
	var zero Task[N]
	p.buckets[pr][p.heads[pr]] = zero // release node for GC
	p.heads[pr]++
	if p.heads[pr] == len(p.buckets[pr]) {
		if cap(p.buckets[pr]) > bucketRetainCap {
			p.buckets[pr] = nil
		} else {
			p.buckets[pr] = p.buckets[pr][:0]
		}
		p.heads[pr] = 0
	}
	p.size--
	return t
}

// take returns the best-priority task, advancing the min cursor.
func (p *PrioBucketPool[N]) take() (Task[N], bool) {
	for pr := p.min; pr < len(p.buckets); pr++ {
		if p.heads[pr] < len(p.buckets[pr]) {
			p.min = pr
			return p.takeAt(pr), true
		}
	}
	p.min = len(p.buckets)
	var zero Task[N]
	return zero, false
}

// Pop implements Pool: the best-priority (lowest-Prio) task, FIFO
// within a priority. Unlike the DepthPool, owners and thieves agree on
// the order — best-first has one global notion of "next".
func (p *PrioBucketPool[N]) Pop() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.take()
}

// Steal implements Pool; identical to Pop.
func (p *PrioBucketPool[N]) Steal() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.take()
}

// Size implements Pool.
func (p *PrioBucketPool[N]) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// BestPrio reports the priority of the task Pop or Steal would return,
// or -1 if the pool is empty.
func (p *PrioBucketPool[N]) BestPrio() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for pr := p.min; pr < len(p.buckets); pr++ {
		if p.heads[pr] < len(p.buckets[pr]) {
			p.min = pr
			return pr
		}
	}
	p.min = len(p.buckets)
	return -1
}

// StealRank implements stealRanked: the pool ranks its work by
// priority.
func (p *PrioBucketPool[N]) StealRank() int { return p.BestPrio() }

// SpillBatch implements spiller: it removes up to max tasks from the
// worst-priority (highest) buckets first — the work every scheduler
// here would serve last — and returns them.
func (p *PrioBucketPool[N]) SpillBatch(max int) []Task[N] {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Task[N]
	for pr := len(p.buckets) - 1; pr >= 0 && len(out) < max; pr-- {
		for p.heads[pr] < len(p.buckets[pr]) && len(out) < max {
			out = append(out, p.takeAt(pr))
		}
	}
	return out
}
