package core

import (
	"sync"
	"testing"

	"yewpar/internal/dist"
)

// Oracle for the adaptive steal-ahead pipeline: widening the inflight
// window (StealAheadMax) may only change when prefetch steals are
// issued, never what the search computes or how many nodes it visits.
// Pinned on both transports that run steal-ahead — the loopback with
// injected steal latency, and real TCP — by comparing the strictly
// single-inflight pipeline (StealAheadMax=1, the pre-adaptive
// behaviour) against the full adaptive depth.

func TestPrefetchDepthOracleLoopback(t *testing.T) {
	tree := genTree(41, 4, 9)
	for _, coord := range []Coordination{DepthBounded, StackStealing, Budget} {
		for _, max := range []int{1, 4} {
			cfg := Config{
				Workers: 6, Localities: 3, DCutoff: 2, Budget: 16,
				StealLatency:  50_000, // 50µs: arms steal-ahead on loopback
				StealAheadMax: max,
			}
			res := Enum(coord, tree, testNode{}, tree.enumProblem(), cfg)
			if res.Value != tree.sum() {
				t.Errorf("%v max=%d: sum %d, want %d", coord, max, res.Value, tree.sum())
			}
			if res.Stats.Nodes != int64(tree.size) {
				t.Errorf("%v max=%d: visited %d nodes, want exactly %d", coord, max, res.Stats.Nodes, tree.size)
			}
		}
	}
}

func TestPrefetchDepthOracleLoopbackOpt(t *testing.T) {
	tree := genTree(43, 5, 8)
	want := tree.max()
	for _, max := range []int{1, 4} {
		cfg := Config{
			Workers: 4, Localities: 2, DCutoff: 2,
			StealLatency:  50_000,
			StealAheadMax: max,
		}
		res := Opt(DepthBounded, tree, testNode{}, tree.optProblem(true), cfg)
		if res.Objective != want {
			t.Errorf("max=%d: objective %d, want %d", max, res.Objective, want)
		}
	}
}

// tcpTransports brings up a 1-coordinator + (ranks-1)-worker deployment
// over real TCP in process, indexed by rank.
func tcpTransports(t *testing.T, ranks int) []dist.Transport {
	t.Helper()
	l, err := dist.NewListenerOpts("127.0.0.1:0", "prefetch-oracle", dist.WireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]dist.Transport, ranks)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var derr error
	for i := 0; i < ranks-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := dist.DialOpts(l.Addr(), "prefetch-oracle", dist.WireOptions{})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				derr = err
				return
			}
			trs[tr.Rank()] = tr
		}()
	}
	coord, err := l.Wait(ranks - 1)
	wg.Wait()
	if err != nil || derr != nil {
		t.Fatalf("tcp deployment: %v / %v", err, derr)
	}
	trs[0] = coord
	return trs
}

func TestPrefetchDepthOracleTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP deployment")
	}
	space := toySpace12()
	p := EnumProblem[toySpace, toyNode, int64]{
		Gen:       toyGen,
		Objective: func(toySpace, toyNode) int64 { return 1 },
		Monoid:    SumInt64{},
	}
	want := SequentialEnum(space, toyNode{}, p)

	for _, max := range []int{1, 4} {
		trs := tcpTransports(t, 3)
		results := make([]EnumResult[int64], 3)
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				cfg := Config{Workers: 2, DCutoff: 2, StealAheadMax: max}
				results[r], errs[r] = DistEnum(trs[r], GobCodec[toyNode]{}, DepthBounded, space, toyNode{}, p, cfg)
			}(r)
		}
		wg.Wait()
		for _, tr := range trs {
			tr.Close()
		}
		for r, err := range errs {
			if err != nil {
				t.Fatalf("max=%d rank %d: %v", max, r, err)
			}
		}
		if results[0].Value != want.Value {
			t.Errorf("max=%d: TCP count %d, want %d", max, results[0].Value, want.Value)
		}
		if results[0].Stats.Nodes != want.Stats.Nodes {
			t.Errorf("max=%d: TCP visited %d nodes, want exactly %d", max, results[0].Stats.Nodes, want.Stats.Nodes)
		}
	}
}
