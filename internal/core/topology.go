package core

import (
	"fmt"
	"math"
	"math/rand"

	"yewpar/internal/dist"
)

// topology is the engine's view of the distributed machine: the
// workpools of the localities hosted in this process, the worker →
// locality assignment, and the steal plan over the global rank space.
// Local work is popped straight off the locality's pool; only when it
// is empty is a random peer tried through the locality's Transport —
// mirroring the locality-aware victim selection of Section 4.3. In a
// single-process run the peers are loopback localities (with optional
// injected latency); in a distributed run they are other OS processes.
type topology[N any] struct {
	fab       *fabric[N]
	pools     []Pool[N]
	workerLoc []int
	rngs      []*rand.Rand
	victims   [][]int // per in-process locality: global ranks to rob
}

func newTopology[N any](fab *fabric[N], cfg Config) *topology[N] {
	nloc := len(fab.locs)
	tp := &topology[N]{
		fab:       fab,
		pools:     make([]Pool[N], nloc),
		workerLoc: make([]int, cfg.Workers),
		rngs:      make([]*rand.Rand, cfg.Workers),
		victims:   make([][]int, nloc),
	}
	for i := range tp.pools {
		tp.pools[i] = newPool[N](cfg.Pool)
		fab.locs[i].pool = tp.pools[i]
		for rank := 0; rank < fab.size; rank++ {
			if rank != fab.locs[i].rank {
				tp.victims[i] = append(tp.victims[i], rank)
			}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		tp.workerLoc[w] = w % nloc
		tp.rngs[w] = rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
	}
	return tp
}

// locality returns the in-process locality a worker belongs to.
func (tp *topology[N]) locality(w int) int { return tp.workerLoc[w] }

// push enqueues a task on the worker's local pool.
func (tp *topology[N]) push(w int, t Task[N]) { tp.pools[tp.workerLoc[w]].Push(t) }

// popOrSteal takes the next task for worker w: local pool first, then
// peer localities in random order through the transport. Steal
// accounting is recorded in the worker's shard.
func (tp *topology[N]) popOrSteal(w int, sh *WorkerStats) (Task[N], bool) {
	loc := tp.workerLoc[w]
	if t, ok := tp.pools[loc].Pop(); ok {
		return t, true
	}
	vs := tp.victims[loc]
	if len(vs) == 0 {
		var zero Task[N]
		return zero, false
	}
	r := tp.rngs[w]
	start := r.Intn(len(vs))
	for i := 0; i < len(vs); i++ {
		v := vs[(start+i)%len(vs)]
		wt, ok, err := tp.fab.trs[loc].Steal(v)
		if err != nil || !ok {
			sh.StealsFail++
			continue
		}
		sh.StealsOK++
		return tp.fromWire(loc, wt), true
	}
	var zero Task[N]
	return zero, false
}

// fromWire turns a transport task back into an engine task, merging
// the victim's bound snapshot into the locality's cache so the stolen
// subtree is pruned with knowledge at least as fresh as its victim's.
func (tp *topology[N]) fromWire(loc int, wt dist.WireTask) Task[N] {
	if b := tp.fab.bounds; b != nil && wt.Bound > math.MinInt64 {
		b.applyRemote(loc, wt.Bound)
	}
	if wt.Local != nil {
		return wt.Local.(Task[N])
	}
	n, err := tp.fab.codec.Decode(wt.Payload)
	if err != nil {
		// Mismatched codecs across a deployment are unrecoverable:
		// the task cannot be run here and returning it is impossible.
		panic(fmt.Sprintf("core: decoding stolen task: %v", err))
	}
	return Task[N]{Node: n, Depth: wt.Depth}
}
