package knapsack

import "yewpar/internal/core"

// This file provides a second Lazy Node Generator for the same
// knapsack search space: the binary take/leave tree, where each level
// decides one item (include it or not) instead of the default
// next-included-item formulation. Both generators plug into the same
// skeletons and must find the same optimum — a demonstration that the
// application/parallelism split of Figure 3 also decouples the *tree
// shape* from the coordination.
//
// The two trees differ substantially: the inclusion tree has one node
// per feasible subset (wide, shallow), while the binary tree has one
// node per decision prefix (depth exactly n, branching 2) and visits
// "leave" chains that the inclusion tree never materialises. Bound
// functions carry over unchanged.

// BinNode is a node of the take/leave tree: items before Pos are
// decided, Profit/Weight account for the taken ones.
type BinNode struct {
	Pos    int
	Profit int64
	Weight int64
}

// BinRoot is the undecided prefix.
func BinRoot(_ *Space) BinNode { return BinNode{} }

type binGen struct {
	s      *Space
	parent BinNode
	step   int // 0 = take child pending, 1 = leave child pending, 2 = done
}

// BinGen yields "take item Pos" (if it fits) then "leave item Pos";
// taking first preserves the greedy density heuristic.
func BinGen(s *Space, parent BinNode) core.NodeGenerator[BinNode] {
	if parent.Pos >= len(s.Items) {
		return core.EmptyGen[BinNode]{}
	}
	g := &binGen{s: s, parent: parent}
	if parent.Weight+s.Items[parent.Pos].Weight > s.Cap {
		g.step = 1 // taking is infeasible, only the leave child exists
	}
	return g
}

func (g *binGen) HasNext() bool { return g.step < 2 }

func (g *binGen) Next() BinNode {
	it := g.s.Items[g.parent.Pos]
	var child BinNode
	switch g.step {
	case 0:
		child = BinNode{Pos: g.parent.Pos + 1, Profit: g.parent.Profit + it.Profit, Weight: g.parent.Weight + it.Weight}
	case 1:
		child = BinNode{Pos: g.parent.Pos + 1, Profit: g.parent.Profit, Weight: g.parent.Weight}
	default:
		panic("knapsack: Next on exhausted binary generator")
	}
	g.step++
	return child
}

// BinObjective is the node's accumulated profit.
func BinObjective(_ *Space, n BinNode) int64 { return n.Profit }

// BinUpperBound is the Dantzig bound on any completion of the prefix.
func BinUpperBound(s *Space, n BinNode) int64 {
	return UpperBound(s, Node{Pos: n.Pos, Profit: n.Profit, Weight: n.Weight})
}

// BinOptProblem returns the take/leave-tree optimisation problem.
func BinOptProblem() core.OptProblem[*Space, BinNode] {
	return core.OptProblem[*Space, BinNode]{
		Gen:       BinGen,
		Objective: BinObjective,
		Bound:     BinUpperBound,
	}
}

// SolveBinary maximises profit over the take/leave tree.
func SolveBinary(s *Space, coord core.Coordination, cfg core.Config) (int64, core.Stats) {
	res := core.Opt(coord, s, BinRoot(s), BinOptProblem(), cfg)
	return res.Objective, res.Stats
}
