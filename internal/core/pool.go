package core

import (
	"sync"
	"sync/atomic"
)

// Task is a unit of spawned work: an unvisited search-tree node, its
// absolute depth, and its scheduling priority. Depth orders the default
// pool so that tasks near the root — heuristically the largest
// subtrees — are scheduled first. Prio (lower = better; see Order) is
// assigned under an ordered scheduling mode — the task's path
// discrepancy, or its distance from the root bound — and is what the
// priority pools bucket on; it is zero, and ignored, when ordering is
// off.
type Task[N any] struct {
	Node  N
	Depth int
	Prio  int32
	// fam is the supervision family of the hand-over this task
	// descends from (nil for tasks with only local ancestry): the
	// counter that, fully drained, acks the hand-over's origin and
	// retires the ledger copy covering this subtree. Spawns propagate
	// it parent → child; it never crosses the wire (a receiver opens
	// its own family).
	fam *family
}

// Pool is a locality's workpool. Pop is used by local workers, Steal by
// remote ones; both must be safe for concurrent use.
type Pool[N any] interface {
	Push(t Task[N])
	Pop() (Task[N], bool)
	Steal() (Task[N], bool)
	Size() int
}

// DepthPool is the paper's order-preserving workpool: one FIFO bucket
// per depth. Within a depth tasks leave in insertion order, so the
// sibling spawn order — which encodes the application's search
// heuristic — is always respected; a conventional deque inverts it,
// because an owner's LIFO pop returns the heuristically *worst*
// sibling first. Owners pop from the deepest non-empty bucket
// (continuing depth-first, like the sequential search would), while
// thieves steal from the shallowest (the expected-largest subtrees,
// in heuristic order).
type DepthPool[N any] struct {
	mu      sync.Mutex
	buckets [][]Task[N]
	heads   []int
	size    int
	min     int // lowest possibly-non-empty depth
	max     int // highest possibly-non-empty depth
}

// NewDepthPool returns an empty DepthPool.
func NewDepthPool[N any]() *DepthPool[N] { return &DepthPool[N]{max: -1} }

// Push implements Pool.
func (p *DepthPool[N]) Push(t Task[N]) {
	p.mu.Lock()
	for len(p.buckets) <= t.Depth {
		p.buckets = append(p.buckets, nil)
		p.heads = append(p.heads, 0)
	}
	p.buckets[t.Depth] = append(p.buckets[t.Depth], t)
	if t.Depth < p.min {
		p.min = t.Depth
	}
	if t.Depth > p.max {
		p.max = t.Depth
	}
	p.size++
	p.mu.Unlock()
}

// bucketRetainCap bounds the capacity an emptied bucket may keep. A
// deep search can briefly hold thousands of tasks at one depth; without
// a cap the bucket retains that peak-size backing array for the rest of
// the run. Small arrays stay warm for reuse, large ones go back to the
// collector.
const bucketRetainCap = 64

// takeAt removes the FIFO-front task of bucket d.
func (p *DepthPool[N]) takeAt(d int) Task[N] {
	t := p.buckets[d][p.heads[d]]
	var zero Task[N]
	p.buckets[d][p.heads[d]] = zero // release node for GC
	p.heads[d]++
	if p.heads[d] == len(p.buckets[d]) {
		if cap(p.buckets[d]) > bucketRetainCap {
			p.buckets[d] = nil // release the peak-size backing array
		} else {
			p.buckets[d] = p.buckets[d][:0]
		}
		p.heads[d] = 0
	}
	p.size--
	return t
}

// Pop implements Pool: deepest bucket first, FIFO within the bucket.
func (p *DepthPool[N]) Pop() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for d := p.max; d >= 0; d-- {
		if p.heads[d] < len(p.buckets[d]) {
			p.max = d
			return p.takeAt(d), true
		}
	}
	p.max = -1
	var zero Task[N]
	return zero, false
}

// Steal implements Pool: shallowest bucket first, FIFO within the
// bucket, handing thieves the heuristically-next large subtree.
func (p *DepthPool[N]) Steal() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for d := p.min; d < len(p.buckets); d++ {
		if p.heads[d] < len(p.buckets[d]) {
			p.min = d
			return p.takeAt(d), true
		}
	}
	p.min = len(p.buckets)
	var zero Task[N]
	return zero, false
}

// Size implements Pool.
func (p *DepthPool[N]) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// MinDepth reports the depth of the task Steal would currently return,
// or -1 if the pool is empty. Sharded pools use it to pick the
// shallowest victim shard.
func (p *DepthPool[N]) MinDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for d := p.min; d < len(p.buckets); d++ {
		if p.heads[d] < len(p.buckets[d]) {
			p.min = d
			return d
		}
	}
	p.min = len(p.buckets)
	return -1
}

// StealRank implements stealRanked: a DepthPool ranks its stealable
// work by depth (shallower = more promising to a thief).
func (p *DepthPool[N]) StealRank() int { return p.MinDepth() }

// SpillBatch implements spiller: it removes up to max tasks from the
// deepest buckets first — the coldest work in depth order, the last a
// thief would take and the cheapest to park on disk — and returns them.
func (p *DepthPool[N]) SpillBatch(max int) []Task[N] {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Task[N]
	for d := p.max; d >= 0 && len(out) < max; d-- {
		for p.heads[d] < len(p.buckets[d]) && len(out) < max {
			out = append(out, p.takeAt(d))
		}
	}
	return out
}

// Deque is a conventional work-stealing double-ended queue: owners pop
// newest-first (LIFO), thieves steal oldest-first (FIFO). It ignores
// depth and therefore does not preserve heuristic search order; it is
// provided as the ablation discussed in Section 2.3 of the paper.
type Deque[N any] struct {
	mu    sync.Mutex
	items []Task[N]
	head  int
}

// NewDeque returns an empty Deque.
func NewDeque[N any]() *Deque[N] { return &Deque[N]{} }

// Push implements Pool.
func (q *Deque[N]) Push(t Task[N]) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.mu.Unlock()
}

// Pop implements Pool (LIFO end).
func (q *Deque[N]) Pop() (Task[N], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		q.reset()
		var zero Task[N]
		return zero, false
	}
	t := q.items[len(q.items)-1]
	var zero Task[N]
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	if q.head >= len(q.items) {
		q.reset()
	}
	return t, true
}

// Steal implements Pool (FIFO end).
func (q *Deque[N]) Steal() (Task[N], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		q.reset()
		var zero Task[N]
		return zero, false
	}
	t := q.items[q.head]
	var zero Task[N]
	q.items[q.head] = zero
	q.head++
	if q.head >= len(q.items) {
		q.reset()
	}
	return t, true
}

func (q *Deque[N]) reset() {
	q.items = q.items[:0]
	q.head = 0
}

// Size implements Pool.
func (q *Deque[N]) Size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// MinDepth reports 0 when the deque has work and -1 when empty: a deque
// ignores depth, so all its work ranks equally shallow to a thief.
func (q *Deque[N]) MinDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		return -1
	}
	return 0
}

// StealRank implements stealRanked.
func (q *Deque[N]) StealRank() int { return q.MinDepth() }

// SpillBatch implements spiller: a deque has no depth or priority
// structure, so the oldest tasks (the thief end) are spilled first.
func (q *Deque[N]) SpillBatch(max int) []Task[N] {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Task[N]
	var zero Task[N]
	for q.head < len(q.items) && len(out) < max {
		out = append(out, q.items[q.head])
		q.items[q.head] = zero
		q.head++
	}
	if q.head >= len(q.items) {
		q.reset()
	}
	return out
}

func newPool[N any](kind PoolKind) Pool[N] {
	switch kind {
	case DequeKind:
		return NewDeque[N]()
	case PrioBucketKind:
		return NewPrioBucketPool[N]()
	default:
		return NewDepthPool[N]()
	}
}

// stealRanked is implemented by pools that can report the rank of their
// next stealable task without removing it — the DepthPool's depth, or
// the PrioBucketPool's priority. Lower ranks are stolen first; -1 means
// empty. The same rank is what localities advertise to peers for
// priority-aware victim selection.
type stealRanked interface{ StealRank() int }

// spiller is implemented by pools that can bulk-remove their coldest
// tasks — deepest depth, or worst priority — for the memory governor to
// park on disk. The removed tasks remain registered live work; the
// caller owns re-admitting them.
type spiller[N any] interface{ SpillBatch(max int) []Task[N] }

// raiseMax64 lifts a to at least v.
func raiseMax64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// countedPool wraps one shard of a ShardedPool so every push, pop,
// steal, and spill updates the parent's shared aggregate task counter.
// The engine's owner path bypasses the ShardedPool aggregate via
// Shard(i), so the count must be maintained here, at the shard
// boundary, for Size and StealRank to trust it.
type countedPool[N any] struct {
	inner Pool[N]
	tasks *atomic.Int64
	peak  *atomic.Int64
}

func (p *countedPool[N]) Push(t Task[N]) {
	p.inner.Push(t)
	if c := p.tasks.Add(1); c > p.peak.Load() {
		raiseMax64(p.peak, c)
	}
}

func (p *countedPool[N]) Pop() (Task[N], bool) {
	t, ok := p.inner.Pop()
	if ok {
		p.tasks.Add(-1)
	}
	return t, ok
}

func (p *countedPool[N]) Steal() (Task[N], bool) {
	t, ok := p.inner.Steal()
	if ok {
		p.tasks.Add(-1)
	}
	return t, ok
}

func (p *countedPool[N]) Size() int { return p.inner.Size() }

// StealRank implements stealRanked by forwarding to the wrapped pool.
func (p *countedPool[N]) StealRank() int {
	if sr, ok := p.inner.(stealRanked); ok {
		return sr.StealRank()
	}
	if p.inner.Size() > 0 {
		return 0
	}
	return -1
}

// MinDepth forwards to the wrapped pool when it ranks by depth.
func (p *countedPool[N]) MinDepth() int {
	if md, ok := p.inner.(interface{ MinDepth() int }); ok {
		return md.MinDepth()
	}
	return p.StealRank()
}

// SpillBatch implements spiller by forwarding to the wrapped pool.
func (p *countedPool[N]) SpillBatch(max int) []Task[N] {
	sp, ok := p.inner.(spiller[N])
	if !ok {
		return nil
	}
	out := sp.SpillBatch(max)
	if len(out) > 0 {
		p.tasks.Add(-int64(len(out)))
	}
	return out
}

// ShardedPool splits one locality's workpool into per-worker shards so
// that owner pushes and pops never contend on a shared mutex. It
// implements Pool as the locality's transport-facing aggregate: a
// remote thief's Steal takes the shallowest task across all shards
// (preserving the depth-first/FIFO heuristic order the DepthPool
// guarantees within a shard), and tasks arriving without an owning
// worker — the root seed, adopted late steal replies, prefetch spills —
// are spread round-robin. Owner-side traffic goes straight to
// Shard(i); an idle owner robs its siblings with StealExcept before
// paying a transport round trip.
type ShardedPool[N any] struct {
	shards []Pool[N]
	next   atomic.Uint32 // round-robin cursor for unowned pushes
	tasks  atomic.Int64  // resident tasks across all shards
	peak   atomic.Int64  // high-water mark of tasks
}

// NewShardedPool returns a pool of n shards of the given kind. n < 1 is
// treated as 1 (the single shared pool of the pre-sharding design).
// Each shard is wrapped so pushes and pops — including owner traffic
// through Shard(i) — maintain one atomic aggregate count, keeping Size
// and the idle-scan StealRank off the per-shard locks.
func NewShardedPool[N any](kind PoolKind, n int) *ShardedPool[N] {
	if n < 1 {
		n = 1
	}
	p := &ShardedPool[N]{shards: make([]Pool[N], n)}
	for i := range p.shards {
		p.shards[i] = &countedPool[N]{inner: newPool[N](kind), tasks: &p.tasks, peak: &p.peak}
	}
	return p
}

// Shards returns the shard count.
func (p *ShardedPool[N]) Shards() int { return len(p.shards) }

// Shard returns shard i for uncontended owner push/pop.
func (p *ShardedPool[N]) Shard(i int) Pool[N] { return p.shards[i] }

// Push implements Pool: unowned tasks are spread round-robin across
// shards. Owners push on their own shard via Shard instead.
func (p *ShardedPool[N]) Push(t Task[N]) {
	i := int(p.next.Add(1)-1) % len(p.shards)
	p.shards[i].Push(t)
}

// Pop implements Pool: the first task found scanning shards in order.
// The engine's owner path uses Shard(i).Pop directly; this aggregate
// form exists for Pool-interface completeness (tests, tooling).
func (p *ShardedPool[N]) Pop() (Task[N], bool) {
	for _, s := range p.shards {
		if t, ok := s.Pop(); ok {
			return t, true
		}
	}
	var zero Task[N]
	return zero, false
}

// Steal implements Pool: the shallowest available task across all
// shards, FIFO within a depth — what the single DepthPool's Steal
// guaranteed, now approximated across shards (two shards at the same
// minimum depth tie-break by shard index, and a concurrent owner pop
// can invalidate the snapshot between ranking and stealing, in which
// case the scan retries).
func (p *ShardedPool[N]) Steal() (Task[N], bool) {
	return p.StealExcept(-1)
}

// StealExcept is Steal skipping one shard: an idle owner robbing its
// siblings passes its own (already empty) shard index.
func (p *ShardedPool[N]) StealExcept(except int) (Task[N], bool) {
	for {
		best, bestRank := -1, int(^uint(0)>>1)
		for i, s := range p.shards {
			if i == except {
				continue
			}
			d := -1
			if sr, ok := s.(stealRanked); ok {
				d = sr.StealRank()
			} else if s.Size() > 0 {
				d = 0
			}
			if d >= 0 && d < bestRank {
				best, bestRank = i, d
			}
		}
		if best < 0 {
			var zero Task[N]
			return zero, false
		}
		if t, ok := p.shards[best].Steal(); ok {
			return t, true
		}
		// Lost a race with the shard's owner; every retry means someone
		// else made progress, so the loop terminates.
	}
}

// StealRank implements stealRanked: the best (lowest) rank across all
// shards, -1 when the whole pool is empty. This is the value a locality
// advertises to peers for priority-aware victim selection. The empty
// case — the common one on the hot idle-scan path — is answered from
// the aggregate counter without touching any shard lock.
func (p *ShardedPool[N]) StealRank() int {
	if p.tasks.Load() <= 0 {
		return -1
	}
	best := -1
	for _, s := range p.shards {
		d := -1
		if sr, ok := s.(stealRanked); ok {
			d = sr.StealRank()
		} else if s.Size() > 0 {
			d = 0
		}
		if d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// Size implements Pool: total backlog across shards, answered from the
// aggregate counter (no shard locks). A concurrent push/steal pair can
// make the raw counter transiently negative; clamp to zero.
func (p *ShardedPool[N]) Size() int {
	n := p.tasks.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Tasks reports the resident-task count (same value as Size, unclamped
// int64 form for the memory governor's threshold tests).
func (p *ShardedPool[N]) Tasks() int64 { return p.tasks.Load() }

// PeakTasks reports the high-water mark of resident tasks.
func (p *ShardedPool[N]) PeakTasks() int64 { return p.peak.Load() }

// SpillBatch implements spiller: up to max of the coldest tasks across
// shards, an even quota from each so no one shard loses its hot work to
// make the batch.
func (p *ShardedPool[N]) SpillBatch(max int) []Task[N] {
	if max <= 0 {
		return nil
	}
	quota := max/len(p.shards) + 1
	var out []Task[N]
	for _, s := range p.shards {
		if len(out) >= max {
			break
		}
		sp, ok := s.(spiller[N])
		if !ok {
			continue
		}
		n := quota
		if rem := max - len(out); n > rem {
			n = rem
		}
		out = append(out, sp.SpillBatch(n)...)
	}
	return out
}
