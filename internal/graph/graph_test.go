package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"yewpar/internal/bitset"
)

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(5)
	g.AddEdge(1, 3)
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 1) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("phantom edge")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 1)
	if g.HasEdge(1, 1) || g.Edges() != 0 {
		t.Fatal("self loop stored")
	}
}

func TestEdgesAndDensity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if g.Edges() != 3 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	if got, want := g.Density(), 3.0/6.0; got != want {
		t.Fatalf("Density = %f, want %f", got, want)
	}
}

func TestDegreeOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	order := g.DegreeOrder()
	if order[0] != 2 {
		t.Fatalf("highest-degree vertex should be first: %v", order)
	}
	// ties (0 and 1, both degree 2) broken by index
	if order[1] != 0 || order[2] != 1 || order[3] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestDegeneracyOrderProperties(t *testing.T) {
	g := Random(40, 0.3, 6)
	order, degeneracy := g.DegeneracyOrder()
	// order is a permutation
	seen := make([]bool, g.N)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d appears twice", v)
		}
		seen[v] = true
	}
	// defining property of the (reversed, core-first) order: every
	// vertex has at most `degeneracy` neighbours EARLIER in the order
	pos := make([]int, g.N)
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range order {
		earlier := 0
		g.Adj[v].ForEach(func(u int) bool {
			if pos[u] < pos[v] {
				earlier++
			}
			return true
		})
		if earlier > degeneracy {
			t.Fatalf("vertex %d has %d earlier neighbours, degeneracy claims %d", v, earlier, degeneracy)
		}
	}
}

func TestDegeneracyOfCompleteGraph(t *testing.T) {
	g := New(6)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	if _, d := g.DegeneracyOrder(); d != 5 {
		t.Fatalf("K6 degeneracy = %d, want 5", d)
	}
	tree := New(5)
	tree.AddEdge(0, 1)
	tree.AddEdge(1, 2)
	tree.AddEdge(1, 3)
	tree.AddEdge(3, 4)
	if _, d := tree.DegeneracyOrder(); d != 1 {
		t.Fatalf("tree degeneracy = %d, want 1", d)
	}
}

func TestRelabelPreservesEdgeCount(t *testing.T) {
	g := Random(30, 0.4, 1)
	perm := make([]int, 30)
	for i := range perm {
		perm[i] = (i + 7) % 30
	}
	h := g.Relabel(perm)
	if h.Edges() != g.Edges() {
		t.Fatalf("relabel changed edge count %d -> %d", g.Edges(), h.Edges())
	}
	if !h.HasEdge(perm[0], perm[1]) == g.HasEdge(0, 1) {
		t.Fatal("relabel lost an adjacency")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	h, orig := g.InducedSubgraph([]int{1, 2, 4})
	if h.N != 3 {
		t.Fatalf("N = %d", h.N)
	}
	if !h.HasEdge(0, 1) { // 1-2
		t.Fatal("missing induced edge")
	}
	if h.HasEdge(0, 2) || h.HasEdge(1, 2) {
		t.Fatal("phantom induced edge")
	}
	if orig[2] != 4 {
		t.Fatalf("orig = %v", orig)
	}
}

func TestIsClique(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	yes := bitset.FromSlice(4, []int{0, 1, 2})
	no := bitset.FromSlice(4, []int{0, 1, 3})
	if !g.IsClique(yes) {
		t.Fatal("triangle not recognised")
	}
	if g.IsClique(no) {
		t.Fatal("non-clique accepted")
	}
	if !g.IsClique(bitset.New(4)) {
		t.Fatal("empty set is a clique")
	}
}

func TestComplement(t *testing.T) {
	g := Random(20, 0.3, 2)
	c := g.Complement()
	if g.Edges()+c.Edges() != 20*19/2 {
		t.Fatalf("edges don't partition: %d + %d", g.Edges(), c.Edges())
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(40, 0.5, 42)
	b := Random(40, 0.5, 42)
	for v := 0; v < 40; v++ {
		if !a.Adj[v].Equal(b.Adj[v]) {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := Random(40, 0.5, 43)
	same := true
	for v := 0; v < 40; v++ {
		if !a.Adj[v].Equal(c.Adj[v]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPlantedCliqueIsClique(t *testing.T) {
	g, planted := PlantedClique(60, 0.3, 8, 7)
	vs := bitset.FromSlice(60, planted)
	if vs.Count() != 8 {
		t.Fatalf("planted %d distinct vertices, want 8", vs.Count())
	}
	if !g.IsClique(vs) {
		t.Fatal("planted set is not a clique")
	}
}

func TestBandedDensityGradient(t *testing.T) {
	g := Banded(120, 0.1, 0.9, 3)
	near, nearCnt := 0, 0
	far, farCnt := 0, 0
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if v-u < 10 {
				nearCnt++
				if g.HasEdge(u, v) {
					near++
				}
			}
			if v-u > 100 {
				farCnt++
				if g.HasEdge(u, v) {
					far++
				}
			}
		}
	}
	if float64(near)/float64(nearCnt) < float64(far)/float64(farCnt) {
		t.Fatal("banded graph has no density gradient")
	}
}

func TestPartitionedStructure(t *testing.T) {
	g := Partitioned(60, 10, 0.9, 0.05, 4)
	in, inCnt, out, outCnt := 0, 0, 0, 0
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if u/10 == v/10 {
				inCnt++
				if g.HasEdge(u, v) {
					in++
				}
			} else {
				outCnt++
				if g.HasEdge(u, v) {
					out++
				}
			}
		}
	}
	if float64(in)/float64(inCnt) < 5*float64(out)/float64(outCnt) {
		t.Fatal("partitioned graph lacks block structure")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := Random(25, 0.4, 9)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.Edges() != g.Edges() {
		t.Fatalf("round trip changed graph: %v vs %v", g, h)
	}
	for v := 0; v < g.N; v++ {
		if !g.Adj[v].Equal(h.Adj[v]) {
			t.Fatal("round trip changed adjacency")
		}
	}
}

func TestParseDIMACSTiny(t *testing.T) {
	in := "c example\np edge 3 2\ne 1 2\ne 2 3\n"
	g, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("parsed wrong graph: %v", g)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                          // no problem line
		"e 1 2\n",                   // edge before header
		"p edge 2 1\ne 1 5\n",       // out of range
		"p edge 2 1\ne x y\n",       // bad ints
		"p edge x 1\n",              // bad n
		"p edge 2 0\np edge 2 0\n",  // duplicate header
		"p edge 2 1\nq something\n", // unknown record
	}
	for i, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestKneserPetersen(t *testing.T) {
	// K(5,2) is the Petersen graph: 10 vertices, 15 edges, 3-regular.
	g := Kneser(5, 2)
	if g.N != 10 || g.Edges() != 15 {
		t.Fatalf("K(5,2): n=%d m=%d, want 10/15", g.N, g.Edges())
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("K(5,2) vertex %d has degree %d", v, g.Degree(v))
		}
	}
	if KneserCliqueNumber(5, 2) != 2 {
		t.Fatal("ω(K(5,2)) should be 2 (no triangles in Petersen)")
	}
}

func TestKneserVertexCount(t *testing.T) {
	// C(7,3) = 35
	if g := Kneser(7, 3); g.N != 35 {
		t.Fatalf("K(7,3) has %d vertices, want 35", g.N)
	}
	// k = n: single vertex, no edges
	if g := Kneser(4, 4); g.N != 1 || g.Edges() != 0 {
		t.Fatal("K(4,4) should be a single isolated vertex")
	}
}

// Property: G(n,p) generators never create self loops and are symmetric.
func TestQuickRandomWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(30, 0.5, seed)
		for u := 0; u < g.N; u++ {
			if g.HasEdge(u, u) {
				return false
			}
			for v := 0; v < g.N; v++ {
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
