package dist

import (
	"testing"
	"time"
)

// A ChaosPlan partition schedule drives its FaultPlan: the split
// lands at After, heals itself after Dur, and stop() heals whatever
// is still severed.
func TestChaosPlanSchedulesPartitions(t *testing.T) {
	net := NewFaultPlan(1)
	plan := ChaosPlan{
		Partitions: []ChaosPartition{
			{Ranks: []int{1}, After: 20 * time.Millisecond, Dur: 40 * time.Millisecond},
		},
		Net: net,
	}
	stop := plan.Start(nil)
	defer stop()
	eventually(t, "scheduled partition", func() bool { return net.Severed(0, 1) })
	eventually(t, "scheduled heal", func() bool { return !net.Severed(0, 1) })

	// An open-ended partition (Dur 0) is healed by stop.
	plan2 := ChaosPlan{Partitions: []ChaosPartition{{Ranks: []int{2}, After: time.Millisecond}}, Net: net}
	stop2 := plan2.Start(nil)
	eventually(t, "open-ended partition", func() bool { return net.Severed(0, 2) })
	stop2()
	if net.Severed(0, 2) {
		t.Fatal("stop did not heal the open-ended partition")
	}
}

// Partition-heal conformance: on every transport × topology, a
// partition shorter than the link grace is invisible to the search —
// traffic issued across the cut arrives after the heal, steals succeed
// again, and nobody is declared dead. The TCP harnesses must get there
// via real session resumes; the loopback ones via heal-deferred
// delivery.
func TestConformancePartitionHeal(t *testing.T) {
	const grace = 2 * time.Second
	type faultHarness struct {
		name        string
		wantResumes bool
		make        func(t *testing.T, n int, plan *FaultPlan) []Transport
	}
	fhs := []faultHarness{
		{name: "loopback", make: func(t *testing.T, n int, plan *FaultPlan) []Transport {
			net := NewLoopback(n, LoopbackOptions{Fault: plan})
			t.Cleanup(func() { net.Close() })
			return net.Transports()
		}},
		{name: "tcp", wantResumes: true, make: func(t *testing.T, n int, plan *FaultPlan) []Transport {
			return makeTCP(t, n, WireOptions{LinkGrace: grace, Fault: plan})
		}},
		{name: "loopback-mesh", make: func(t *testing.T, n int, plan *FaultPlan) []Transport {
			net := NewLoopback(n, LoopbackOptions{Wave: true, Fault: plan})
			t.Cleanup(func() { net.Close() })
			return net.Transports()
		}},
		{name: "tcp-mesh", wantResumes: true, make: func(t *testing.T, n int, plan *FaultPlan) []Transport {
			return makeTCP(t, n, WireOptions{Topology: TopologyMesh, LinkGrace: grace, Fault: plan})
		}},
	}
	for _, fh := range fhs {
		t.Run(fh.name, func(t *testing.T) {
			plan := NewFaultPlan(1)
			trs := fh.make(t, 3, plan)
			hs := startAll(trs)

			// Sanity: with the plan attached but idle, a steal works.
			hs[2].push(WireTask{Payload: []byte("before"), Bound: 1})
			eventually(t, "pre-partition steal", func() bool {
				task, ok, err := trs[0].Steal(2)
				return err == nil && ok && string(task.Payload) == "before"
			})

			// Cut rank 2 off for well under the grace window, and let it
			// shout into the partition: the broadcast must survive the cut.
			plan.Partition([]int{2}, 300*time.Millisecond)
			if err := trs[2].BroadcastBound(42, nil); err != nil {
				t.Fatalf("broadcast across the partition: %v", err)
			}
			eventually(t, "bound crossing the healed link", func() bool {
				return hs[1].boundMax.Load() >= 42
			})

			// Steals from the once-severed rank work again (the first
			// attempts may fast-fail while the link is still suspected).
			hs[2].push(WireTask{Payload: []byte("after"), Bound: 2})
			eventually(t, "post-heal steal", func() bool {
				task, ok, err := trs[0].Steal(2)
				return err == nil && ok && string(task.Payload) == "after"
			})

			// Nobody died: the cut stayed inside the grace window.
			for i, tr := range trs {
				select {
				case r := <-tr.Deaths():
					t.Fatalf("rank %d mourned rank %d across a sub-grace partition", i, r)
				default:
				}
			}

			// The TCP paths must have healed by resuming sessions, not by
			// quietly reconnecting from scratch.
			var resumes int64
			for _, tr := range trs {
				if m, ok := tr.(Meter); ok {
					resumes += m.Wire().Resumes
				}
			}
			if fh.wantResumes && resumes == 0 {
				t.Fatal("partition healed without a single session resume")
			}
			if !fh.wantResumes && resumes != 0 {
				t.Fatalf("loopback transport reported %d session resumes", resumes)
			}
		})
	}
}
