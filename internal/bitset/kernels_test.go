package bitset

import (
	"math/rand"
	"testing"
)

// The fused kernels must be bit-for-bit equivalent to a naive
// word-by-word reference at every capacity — including the unroll
// boundary cases (0, 63, 64, 65, 128: empty, one word minus a bit,
// exactly one word, just over, exactly on the 4-word unroll edge
// wants 256/257 too) — and when dst aliases an input.

// kernelCaps are the capacities every property below sweeps: the empty
// set, the word edges, the unroll boundary (4 words = 256 bits) and a
// tail-remainder size.
var kernelCaps = []int{0, 1, 63, 64, 65, 127, 128, 129, 255, 256, 257, 300}

// refIntersect is the trusted reference: dst = a & b one word at a
// time with no unrolling or fusion.
func refIntersect(a, b Set) Set {
	dst := New(a.n)
	for i := range dst.words {
		dst.words[i] = a.words[i] & b.words[i]
	}
	return dst
}

func randomSet(n int, rng *rand.Rand) Set {
	s := New(n)
	if n == 0 {
		return s
	}
	// Mix densities so both sparse and dense words appear.
	p := rng.Float64()
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			s.Add(v)
		}
	}
	return s
}

func TestIntersectIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelCaps {
		for trial := 0; trial < 25; trial++ {
			a, b := randomSet(n, rng), randomSet(n, rng)
			want := refIntersect(a, b)

			dst := New(n)
			IntersectInto(dst, a, b)
			if !dst.Equal(want) {
				t.Fatalf("n=%d trial=%d: IntersectInto = %v, want %v", n, trial, dst, want)
			}

			// Aliased dst = a: the inputs must still be read correctly.
			aCopy := a.Clone()
			IntersectInto(aCopy, aCopy, b)
			if !aCopy.Equal(want) {
				t.Fatalf("n=%d trial=%d: aliased dst=a gave %v, want %v", n, trial, aCopy, want)
			}
			bCopy := b.Clone()
			IntersectInto(bCopy, a, bCopy)
			if !bCopy.Equal(want) {
				t.Fatalf("n=%d trial=%d: aliased dst=b gave %v, want %v", n, trial, bCopy, want)
			}
		}
	}
}

func TestIntersectIntoCountMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range kernelCaps {
		for trial := 0; trial < 25; trial++ {
			a, b := randomSet(n, rng), randomSet(n, rng)
			want := refIntersect(a, b)

			dst := New(n)
			got := IntersectIntoCount(dst, a, b)
			if !dst.Equal(want) {
				t.Fatalf("n=%d trial=%d: IntersectIntoCount wrote %v, want %v", n, trial, dst, want)
			}
			if got != want.Count() {
				t.Fatalf("n=%d trial=%d: count %d, want %d", n, trial, got, want.Count())
			}

			aCopy := a.Clone()
			if got := IntersectIntoCount(aCopy, aCopy, b); got != want.Count() || !aCopy.Equal(want) {
				t.Fatalf("n=%d trial=%d: aliased count %d set %v, want %d %v",
					n, trial, got, aCopy, want.Count(), want)
			}
		}
	}
}

func TestIntersectIntoCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	IntersectInto(New(64), New(128), New(128))
}

func TestPopNextDrainsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range kernelCaps {
		for trial := 0; trial < 25; trial++ {
			s := randomSet(n, rng)
			ref := s.Clone()
			var got []int
			for {
				v := s.PopNext()
				if v == -1 {
					break
				}
				got = append(got, v)
			}
			// PopNext must yield exactly the elements, ascending, and
			// leave the set empty.
			var want []int
			ref.ForEach(func(v int) bool { want = append(want, v); return true })
			if len(got) != len(want) {
				t.Fatalf("n=%d trial=%d: popped %d elements, want %d", n, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d: pop %d = %d, want %d", n, trial, i, got[i], want[i])
				}
			}
			if !s.Empty() {
				t.Fatalf("n=%d trial=%d: set not empty after draining", n, trial)
			}
		}
	}
}

func TestPopNextEmpty(t *testing.T) {
	for _, n := range []int{0, 64, 300} {
		if v := New(n).PopNext(); v != -1 {
			t.Fatalf("PopNext on empty cap-%d set = %d, want -1", n, v)
		}
	}
}

// FuzzIntersectKernels cross-checks both fused intersection kernels
// against the reference on fuzzer-chosen word patterns. The capacity
// is derived from the shorter input so corpus entries of any length
// are meaningful.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa}, []byte{0x0f, 0xf0, 0x55})
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 40), make([]byte, 33))
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		nBytes := len(ab)
		if len(bb) < nBytes {
			nBytes = len(bb)
		}
		if nBytes > 128 {
			nBytes = 128
		}
		n := nBytes * 8
		a, b := New(n), New(n)
		for i := 0; i < nBytes; i++ {
			for bit := 0; bit < 8; bit++ {
				if ab[i]&(1<<bit) != 0 {
					a.Add(i*8 + bit)
				}
				if bb[i]&(1<<bit) != 0 {
					b.Add(i*8 + bit)
				}
			}
		}
		want := refIntersect(a, b)
		dst := New(n)
		IntersectInto(dst, a, b)
		if !dst.Equal(want) {
			t.Fatalf("IntersectInto mismatch: %v want %v", dst, want)
		}
		dst2 := New(n)
		if c := IntersectIntoCount(dst2, a, b); c != want.Count() || !dst2.Equal(want) {
			t.Fatalf("IntersectIntoCount %d/%v, want %d/%v", c, dst2, want.Count(), want)
		}
		// PopNext on the intersection must agree with Min.
		probe := want.Clone()
		wantMin := probe.Min()
		if got := dst.PopNext(); got != wantMin && !(got == -1 && wantMin == -1) {
			t.Fatalf("PopNext %d, want Min %d", got, wantMin)
		}
	})
}
