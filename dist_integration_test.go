package yewpar

// Integration test of the multi-process distributed mode: build the
// real yewpar binary, deploy 1 coordinator + 2 worker OS processes
// over TCP, and check the optimum matches the single-process answer on
// the acceptance workloads (knapsack and maxclique).

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"yewpar/internal/dist"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// yewparBinary builds cmd/yewpar once per test run.
func yewparBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		// Not t.TempDir: that is torn down when the first test ends,
		// and the binary is shared by every test in the run.
		dir, err := os.MkdirTemp("", "yewpar-dist-test")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "yewpar")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/yewpar")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building yewpar: %v\n%s", err, out)
			return
		}
		buildBin = bin
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// freeAddr reserves a TCP port and releases it for the coordinator.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// runDeployment launches 2 workers and a coordinator with the given
// app flags and returns the coordinator's output.
func runDeployment(t *testing.T, bin string, appFlags []string) string {
	t.Helper()
	addr := freeAddr(t)
	var workers []*exec.Cmd
	for i := 0; i < 2; i++ {
		w := exec.Command(bin, append(appFlags, "-dist", "worker", "-dist-addr", addr)...)
		w.Stderr = nil
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker: %v", err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
			w.Wait()
		}
	}()

	coord := exec.Command(bin, append(appFlags, "-dist", "coordinator", "-dist-workers", "2", "-dist-addr", addr)...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		defer close(done)
		out, err = coord.CombinedOutput()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		coord.Process.Kill()
		t.Fatal("distributed deployment timed out")
	}
	if err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, out)
	}
	for _, w := range workers {
		if werr := w.Wait(); werr != nil {
			t.Fatalf("worker failed: %v", werr)
		}
	}
	return string(out)
}

// watchWriter is a concurrency-safe sink for a subprocess's combined
// output that fires arm exactly once when trigger first appears. Used
// as exec.Cmd Stdout/Stderr it has no data-loss window: Wait blocks
// until the final Write has landed, unlike an os.Pipe drained by a
// goroutine racing Wait's descriptor close (which can drop the output
// burst a process writes just before exiting — the result lines, in
// these tests).
type watchWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	trigger string
	armed   bool
	arm     func()
}

func (w *watchWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	fire := !w.armed && strings.Contains(w.buf.String(), w.trigger)
	if fire {
		w.armed = true
	}
	w.mu.Unlock()
	if fire {
		w.arm()
	}
	return len(p), nil
}

func (w *watchWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// resultLine extracts the first line of a run's output (the answer).
func resultLine(t *testing.T, output string) string {
	t.Helper()
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "dist:") || strings.TrimSpace(line) == "" {
			continue
		}
		return line
	}
	t.Fatalf("no result line in output:\n%s", output)
	return ""
}

func testDistMatchesSingle(t *testing.T, appFlags []string) {
	bin := yewparBinary(t)
	single, err := exec.Command(bin, appFlags...).CombinedOutput()
	if err != nil {
		t.Fatalf("single-process run failed: %v\n%s", err, single)
	}
	wantAnswer := resultLine(t, string(single))

	out := runDeployment(t, bin, appFlags)
	gotAnswer := resultLine(t, out)
	if gotAnswer != wantAnswer {
		t.Fatalf("distributed answer %q != single-process answer %q\nfull output:\n%s", gotAnswer, wantAnswer, out)
	}
	// The aggregated metrics must reflect a real 3-locality deployment
	// with steal traffic and bound broadcasts on the wire.
	if !strings.Contains(out, "localities=3") {
		t.Errorf("aggregated stats missing localities=3:\n%s", out)
	}
	if !strings.Contains(out, "steals=") || !strings.Contains(out, "broadcasts=") {
		t.Errorf("aggregated stats missing steal/broadcast counters:\n%s", out)
	}
}

func TestDistributedKnapsackMatchesSingleProcess(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "knapsack", "-items", "22", "-skeleton", "depthbounded", "-d", "3", "-workers", "2"})
}

func TestDistributedMaxCliqueMatchesSingleProcess(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "maxclique", "-n", "90", "-p", "0.7", "-skeleton", "depthbounded", "-d", "2", "-workers", "2"})
}

// The same acceptance workload over the mesh topology: steal traffic
// flows worker-to-worker and termination is detected by the wave, yet
// the answer and the aggregated stats must be indistinguishable from
// the star deployment's.
func TestDistributedMeshMaxCliqueMatchesSingleProcess(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "maxclique", "-n", "90", "-p", "0.7", "-skeleton", "depthbounded", "-d", "2", "-workers", "2", "-topology", "mesh"})
}

func TestDistributedBudgetKnapsack(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "knapsack", "-items", "20", "-skeleton", "budget", "-b", "5000", "-workers", "2"})
}

// Distributed stack stealing (wire protocol v6): no proactive spawning
// at all — every task crossing the wire was carved out of a live
// generator stack by an on-demand kSplit. Runs on both topologies: on
// the star the split request is hub-forwarded, on the mesh it travels
// a direct worker-to-worker connection.
func TestDistributedStackStealKnapsack(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "knapsack", "-items", "22", "-skeleton", "stacksteal", "-workers", "2"})
}

func TestDistributedMeshStackStealKnapsack(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "knapsack", "-items", "22", "-skeleton", "stacksteal", "-workers", "2", "-topology", "mesh"})
}

// A memory-budgeted deployment must spill instead of growing the pool
// and still produce the exact single-process enumeration count.
func TestDistributedPoolBudgetUTS(t *testing.T) {
	testDistMatchesSingle(t, []string{"-app", "uts", "-uts-b0", "500", "-uts-m", "4", "-uts-q", "0.2",
		"-skeleton", "depthbounded", "-d", "4", "-workers", "2", "-pool-budget", "16384"})
}

// The fault-tolerance acceptance test: a real 4-process TCP deployment
// (1 coordinator + 3 workers) in which one worker is SIGKILLed
// mid-maxclique must still terminate, exit cleanly, and report the
// exact optimum of the failure-free run — the supervised-task ledger
// replaying the dead worker's subtree roots from the survivors. Runs
// once per topology: on star the steal in flight crosses the hub, on
// mesh it is on a direct worker-to-worker connection and termination
// is detected by the wave, not the hub's live count.
func TestDistributedMaxCliqueSurvivesWorkerSIGKILL(t *testing.T) {
	testMaxCliqueSurvivesWorkerSIGKILL(t, nil)
}

func TestDistributedMeshMaxCliqueSurvivesWorkerSIGKILL(t *testing.T) {
	testMaxCliqueSurvivesWorkerSIGKILL(t, []string{"-topology", "mesh"})
}

func testMaxCliqueSurvivesWorkerSIGKILL(t *testing.T, extraFlags []string) {
	bin := yewparBinary(t)
	// n=160 p=0.8 runs well over a second in this deployment, so a
	// kill shortly after registration lands mid-search.
	appFlags := []string{"-app", "maxclique", "-n", "160", "-p", "0.8", "-skeleton", "depthbounded", "-d", "2", "-workers", "2"}
	appFlags = append(appFlags, extraFlags...)

	single, err := exec.Command(bin, appFlags...).CombinedOutput()
	if err != nil {
		t.Fatalf("single-process run failed: %v\n%s", err, single)
	}
	wantAnswer := resultLine(t, string(single))

	addr := freeAddr(t)
	var workers []*exec.Cmd
	for i := 0; i < 3; i++ {
		w := exec.Command(bin, append(appFlags, "-dist", "worker", "-dist-addr", addr)...)
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker: %v", err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
			w.Wait()
		}
	}()

	// Watch the coordinator's output; once every worker has registered
	// and the search is underway, SIGKILL one worker.
	killed := make(chan struct{})
	ww := &watchWriter{trigger: "all 3 workers registered", arm: func() {
		go func() {
			time.Sleep(250 * time.Millisecond)
			workers[1].Process.Kill() // SIGKILL, mid-search
			close(killed)
		}()
	}}
	coord := exec.Command(bin, append(appFlags, "-dist", "coordinator", "-dist-workers", "3", "-dist-addr", addr)...)
	coord.Stdout = ww
	coord.Stderr = ww
	if err := coord.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	var out string
	select {
	case err := <-done:
		out = ww.String()
		if err != nil {
			t.Fatalf("coordinator failed after worker SIGKILL: %v\n%s", err, out)
		}
	case <-time.After(120 * time.Second):
		coord.Process.Kill()
		t.Fatalf("deployment hung after worker SIGKILL\npartial output:\n%s", ww.String())
	}
	select {
	case <-killed:
	default:
		t.Fatalf("search finished before the kill fired; output:\n%s", out)
	}

	if got := resultLine(t, out); got != wantAnswer {
		t.Fatalf("answer after SIGKILL %q != failure-free answer %q\nfull output:\n%s", got, wantAnswer, out)
	}
	if !strings.Contains(out, "deaths=1") {
		t.Errorf("coordinator stats do not report the death:\n%s", out)
	}
	// The surviving workers exit cleanly.
	for i, w := range workers {
		if i == 1 {
			w.Wait() // the corpse
			continue
		}
		if werr := w.Wait(); werr != nil {
			t.Errorf("surviving worker %d failed: %v", i, werr)
		}
	}
}

// The coordinator-failover acceptance test (wire protocol v7): a real
// 4-process TCP deployment launched with -standby in which the
// COORDINATOR is SIGKILLed mid-maxclique. The lowest worker rank holds
// a replica of the hub's residual state, promotes itself, finishes the
// search, and prints the exact optimum of the failure-free run — on
// its own stdout, since the original result owner is a corpse. Runs
// once per topology: on star the survivors re-dial the promoted hub's
// pre-bound listener; on mesh the takeover is pure role migration over
// the existing peer links.
func TestDistributedMaxCliqueSurvivesCoordinatorSIGKILL(t *testing.T) {
	testMaxCliqueSurvivesCoordinatorSIGKILL(t, nil, false)
}

func TestDistributedMeshMaxCliqueSurvivesCoordinatorSIGKILL(t *testing.T) {
	testMaxCliqueSurvivesCoordinatorSIGKILL(t, []string{"-topology", "mesh"}, false)
}

// Staggered double death: the coordinator dies first, the standby
// takes over, and then a regular worker dies too. The promoted
// coordinator's death machinery (ledger replay, replicated-mirror
// replay) must absorb the second death like the original hub would
// have. -max-failures 2 keeps both deaths inside the budget.
func TestDistributedMaxCliqueSurvivesCoordinatorThenWorkerSIGKILL(t *testing.T) {
	testMaxCliqueSurvivesCoordinatorSIGKILL(t, nil, true)
}

func testMaxCliqueSurvivesCoordinatorSIGKILL(t *testing.T, extraFlags []string, alsoKillWorker bool) {
	bin := yewparBinary(t)
	appFlags := []string{"-app", "maxclique", "-n", "160", "-p", "0.8", "-skeleton", "depthbounded",
		"-d", "2", "-workers", "2", "-standby", "-max-failures", "1"}
	if alsoKillWorker {
		// A bigger instance keeps the search alive past the second,
		// later kill; the budget covers both deaths.
		appFlags[3] = "170"
		appFlags[len(appFlags)-1] = "2"
	}
	appFlags = append(appFlags, extraFlags...)

	single, err := exec.Command(bin, appFlags...).CombinedOutput()
	if err != nil {
		t.Fatalf("single-process run failed: %v\n%s", err, single)
	}
	wantAnswer := resultLine(t, string(single))

	// The kill arms when every worker has registered and fires 250ms
	// later. A lucky run can legitimately finish the whole search
	// inside that window — not a bug, just steal-scheduling variance —
	// so retry the launch until the SIGKILL provably lands mid-search.
	var workers []*exec.Cmd
	var workerOut []*bytes.Buffer
	landed := false
	for attempt := 1; attempt <= 4 && !landed; attempt++ {
		workers, workerOut, landed = launchAndKillCoordinator(t, bin, appFlags, alsoKillWorker)
		if !landed {
			t.Logf("attempt %d: search finished before the chaos kill fired; retrying", attempt)
		}
	}
	if !landed {
		t.Fatal("search finished before the chaos kill fired on every attempt")
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
			w.Wait()
		}
	}()

	// Every surviving worker must finish on its own: the promoted one
	// prints the result, the others exit silently and cleanly.
	deadline := time.After(120 * time.Second)
	for i, w := range workers {
		exited := make(chan error, 1)
		go func(w *exec.Cmd) { exited <- w.Wait() }(w)
		select {
		case werr := <-exited:
			if alsoKillWorker && i == 2 {
				break // the second corpse; any exit status goes
			}
			if werr != nil {
				t.Errorf("surviving worker %d failed: %v\noutput:\n%s", i, werr, workerOut[i].String())
			}
		case <-deadline:
			t.Fatalf("worker %d hung after coordinator SIGKILL\noutput so far:\n%s", i, workerOut[i].String())
		}
	}

	// Exactly one survivor — the promoted standby — owns the result.
	var answers []string
	var promotedOut string
	for i := range workerOut {
		out := workerOut[i].String()
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "maximum clique size:") {
				answers = append(answers, line)
				promotedOut = out
			}
		}
	}
	if len(answers) != 1 {
		t.Fatalf("want exactly one result line from the promoted worker, got %d: %v\nworker outputs:\n%s\n%s\n%s",
			len(answers), answers, workerOut[0].String(), workerOut[1].String(), workerOut[2].String())
	}
	if answers[0] != wantAnswer {
		t.Fatalf("answer after coordinator SIGKILL %q != failure-free answer %q\npromoted output:\n%s", answers[0], wantAnswer, promotedOut)
	}
	wantDeaths := "deaths=1"
	if alsoKillWorker {
		wantDeaths = "deaths=2"
	}
	if !strings.Contains(promotedOut, wantDeaths) {
		t.Errorf("promoted worker's stats do not report %s:\n%s", wantDeaths, promotedOut)
	}
}

// launchAndKillCoordinator runs one attempt of the coordinator-failover
// scenario: a 4-process deployment whose coordinator output is watched
// for "all 3 workers registered"; that line arms a ChaosPlan that
// SIGKILLs the coordinator 250ms later (and, in the double-death
// variant, rank 3 at 900ms). It returns once the coordinator process
// has exited. landed reports whether the kill beat the search; when
// false the attempt's workers have been reaped and the returned
// handles are nil. procMu orders the kill callback against the worker
// launches (the plan cannot fire before registration, but -race wants
// the ordering proved).
func launchAndKillCoordinator(t *testing.T, bin string, appFlags []string, alsoKillWorker bool) (workers []*exec.Cmd, workerOut []*bytes.Buffer, landed bool) {
	t.Helper()
	addr := freeAddr(t)

	var procMu sync.Mutex
	var coord *exec.Cmd
	var liveWorkers []*exec.Cmd
	var stopChaos func()
	var chaosMu sync.Mutex
	killedCoord := make(chan struct{})
	ww := &watchWriter{trigger: "all 3 workers registered", arm: func() {
		plan := dist.ChaosPlan{Kills: []dist.ChaosKill{{Rank: 0, After: 250 * time.Millisecond}}}
		if alsoKillWorker {
			plan.Kills = append(plan.Kills, dist.ChaosKill{Rank: 3, After: 900 * time.Millisecond})
		}
		stop := plan.Start(func(rank int) {
			procMu.Lock()
			defer procMu.Unlock()
			if rank == 0 {
				coord.Process.Kill()
				close(killedCoord)
				return
			}
			liveWorkers[rank-1].Process.Kill()
		})
		chaosMu.Lock()
		stopChaos = stop
		chaosMu.Unlock()
	}}
	t.Cleanup(func() {
		chaosMu.Lock()
		stop := stopChaos
		chaosMu.Unlock()
		if stop != nil {
			stop()
		}
	})

	coord = exec.Command(bin, append(appFlags, "-dist", "coordinator", "-dist-workers", "3", "-dist-addr", addr)...)
	coord.Stdout = ww
	coord.Stderr = ww
	if err := coord.Start(); err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}

	// The coordinator is already listening, so staggered dials register
	// in launch order and worker i gets rank i+1. The double-death
	// variant depends on that: its second kill must provably hit a
	// non-standby rank (killing the promoted standby itself is the
	// documented unsurvivable case).
	var wouts []*bytes.Buffer
	for i := 0; i < 3; i++ {
		if i > 0 && alsoKillWorker {
			time.Sleep(300 * time.Millisecond)
		}
		buf := new(bytes.Buffer)
		w := exec.Command(bin, append(appFlags, "-dist", "worker", "-dist-addr", addr)...)
		w.Stdout = buf
		w.Stderr = buf
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker: %v", err)
		}
		procMu.Lock()
		liveWorkers = append(liveWorkers, w)
		procMu.Unlock()
		wouts = append(wouts, buf)
	}

	// The coordinator dies by SIGKILL: its exit is an error by design.
	coordDone := make(chan struct{})
	go func() { coord.Wait(); close(coordDone) }()
	select {
	case <-coordDone:
	case <-time.After(120 * time.Second):
		coord.Process.Kill()
		t.Fatal("coordinator still alive long after the chaos plan should have fired")
	}
	select {
	case <-killedCoord:
		return liveWorkers, wouts, true
	default:
		// The search won the race against the kill timer: reap this
		// attempt's workers so the caller can go again.
		for _, w := range liveWorkers {
			w.Process.Kill()
			w.Wait()
		}
		return nil, nil, false
	}
}

// A worker that never dials (dead host, typo'd address) must not leave
// the coordinator waiting forever: registration times out and the
// error names the missing ranks.
func TestDistributedRegistrationTimeoutReportsMissingRank(t *testing.T) {
	bin := yewparBinary(t)
	addr := freeAddr(t)
	appFlags := []string{"-app", "knapsack", "-items", "18", "-skeleton", "depthbounded", "-d", "2", "-workers", "1"}

	// One worker dials; the second never exists.
	w := exec.Command(bin, append(appFlags, "-dist", "worker", "-dist-addr", addr)...)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { w.Process.Kill(); w.Wait() }()

	coord := exec.Command(bin, append(appFlags, "-dist", "coordinator", "-dist-workers", "2", "-dist-addr", addr, "-reg-timeout", "2s")...)
	out, err := coord.CombinedOutput()
	if err == nil {
		t.Fatalf("coordinator succeeded with a missing worker:\n%s", out)
	}
	if !strings.Contains(string(out), "missing rank 2") {
		t.Fatalf("timeout error does not name the missing rank:\n%s", out)
	}
}

// A -dist -order deployment is ordered end-to-end: the answer matches
// the single-process one, and the coordinator's aggregated stats carry
// the ordered-scheduling counters (priorities crossed the wire — a
// deployment that dropped them would report an empty histogram).
func TestDistributedOrderedMaxClique(t *testing.T) {
	flags := []string{"-app", "maxclique", "-n", "80", "-p", "0.7", "-skeleton", "depthbounded",
		"-d", "2", "-workers", "2", "-order", "bound"}
	testDistMatchesSingle(t, flags)
	out := runDeployment(t, yewparBinary(t), flags)
	if !strings.Contains(out, "order=bound") || !strings.Contains(out, "prio-hist=") {
		t.Fatalf("ordered stats missing from coordinator output:\n%s", out)
	}
}
