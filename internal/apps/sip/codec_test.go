package sip

import (
	"math/rand"
	"testing"

	"yewpar/internal/core"
)

func sampleNodes(s *Space, count int, rng *rand.Rand) []Node {
	nodes := []Node{Root(s)}
	for len(nodes) < count {
		n := Root(s)
		for {
			nodes = append(nodes, n)
			g := Gen(s, n)
			var kids []Node
			for g.HasNext() {
				kids = append(kids, g.Next())
			}
			if len(kids) == 0 {
				break
			}
			n = kids[rng.Intn(len(kids))]
		}
	}
	return nodes[:count]
}

func sameNode(a, b Node) bool {
	if len(a.Assigned) != len(b.Assigned) || !a.Used.Equal(b.Used) {
		return false
	}
	for i := range a.Assigned {
		if a.Assigned[i] != b.Assigned[i] {
			return false
		}
	}
	return true
}

// The compact codec does not send Used at all — it reconstructs it
// from the assignment — so this round trip is what proves the
// reconstruction preserves the search-relevant state.
func TestCodecRoundTripMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := GenerateSat(60, 0.3, 12, 0.2, 3)
	compact := Codec()
	gobc := core.GobCodec[Node]{}
	for i, n := range sampleNodes(s, 150, rng) {
		cb, err := compact.Encode(n)
		if err != nil {
			t.Fatalf("node %d: compact encode: %v", i, err)
		}
		cv, err := compact.Decode(cb)
		if err != nil {
			t.Fatalf("node %d: compact decode: %v", i, err)
		}
		gb, err := gobc.Encode(n)
		if err != nil {
			t.Fatalf("node %d: gob encode: %v", i, err)
		}
		gv, err := gobc.Decode(gb)
		if err != nil {
			t.Fatalf("node %d: gob decode: %v", i, err)
		}
		if !sameNode(cv, n) {
			t.Fatalf("node %d: compact round trip mutated the node: %+v != %+v", i, cv, n)
		}
		if !sameNode(cv, gv) {
			t.Fatalf("node %d: compact and gob disagree", i)
		}
		if len(cb) >= len(gb) {
			t.Errorf("node %d: compact form (%dB) not smaller than gob (%dB)", i, len(cb), len(gb))
		}
	}
}

func TestCodecRejectsOutOfRangeAssignment(t *testing.T) {
	s := GenerateSat(20, 0.4, 5, 0.2, 1)
	nodes := sampleNodes(s, 10, rand.New(rand.NewSource(1)))
	n := nodes[len(nodes)-1]
	b, err := Codec().Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := Codec().Decode(b[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", cut, len(b))
		}
	}
}
