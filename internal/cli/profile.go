package cli

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux for -pprof-addr
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the opt-in profiling hooks and returns a stop
// function that must run after the search finishes (it writes the
// heap and mutex profiles, which snapshot end-of-run state).
//
//   - -cpuprofile starts the sampling CPU profiler for the whole run.
//   - -memprofile writes an allocation profile at exit, after a final
//     GC so live objects dominate over collectable garbage.
//   - -mutexprofile enables contention sampling (every contended
//     acquisition) and writes the profile at exit — the tool of choice
//     for finding hot locks on the wire and pool paths.
//   - -pprof-addr serves net/http/pprof for live inspection; meant for
//     long-running -dist workers, where the files-only flags would
//     force the operator to wait for exit. Errors binding the listener
//     are fatal (a silently dead profile endpoint is worse than none).
//
// All hooks are independent; any subset may be armed.
func startProfiles(o *Options) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}

	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if o.MemProfile != "" {
		path := o.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			return nil
		})
	}
	if o.MutexProfile != "" {
		prev := runtime.SetMutexProfileFraction(1)
		path := o.MutexProfile
		stops = append(stops, func() error {
			runtime.SetMutexProfileFraction(prev)
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
			return nil
		})
	}
	if o.PprofAddr != "" {
		ln, err := net.Listen("tcp", o.PprofAddr)
		if err != nil {
			return fail(fmt.Errorf("pprof-addr: %w", err))
		}
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln)
		stops = append(stops, func() error {
			return srv.Close()
		})
	}

	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
