package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a graph in DIMACS clique format (.clq):
//
//	c <comment>
//	p edge <n> <m>
//	e <u> <v>        (1-based vertices)
//
// It tolerates "p col" headers and duplicate edge lines.
func ParseDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			// comment
		case "p":
			if g != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad vertex count %q", line, fields[2])
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("dimacs: line %d: edge before problem line", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("dimacs: line %d: malformed edge line", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad edge endpoints", line)
			}
			if u < 1 || u > g.N || v < 1 || v > g.N {
				return nil, fmt.Errorf("dimacs: line %d: edge (%d,%d) out of range 1..%d", line, u, v, g.N)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	return g, nil
}

// WriteDIMACS writes g in DIMACS clique format with 1-based vertices.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N, g.Edges()); err != nil {
		return err
	}
	var werr error
	for u := 0; u < g.N && werr == nil; u++ {
		g.Adj[u].ForEach(func(v int) bool {
			if u < v {
				_, werr = fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
			}
			return werr == nil
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
