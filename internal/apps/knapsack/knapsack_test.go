package knapsack

import (
	"testing"
	"testing/quick"

	"yewpar/internal/core"
)

// bruteForce enumerates all subsets (n <= 20).
func bruteForce(s *Space) int64 {
	n := len(s.Items)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var p, w int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p += s.Items[i].Profit
				w += s.Items[i].Weight
			}
		}
		if w <= s.Cap && p > best {
			best = p
		}
	}
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, corr := range []Correlation{Uncorrelated, WeaklyCorrelated, StronglyCorrelated} {
			s := Generate(14, 100, corr, seed)
			want := bruteForce(s)
			got, _ := Solve(s, core.Sequential, core.Config{})
			if got != want {
				t.Errorf("seed %d corr %d: profit %d, want %d", seed, corr, got, want)
			}
		}
	}
}

func TestAllSkeletonsAgree(t *testing.T) {
	s := Generate(28, 1000, WeaklyCorrelated, 3)
	want, _ := Solve(s, core.Sequential, core.Config{})
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := Solve(s, coord, core.Config{Workers: 6, Localities: 2, Budget: 100})
		if got != want {
			t.Errorf("%v: profit %d, want %d", coord, got, want)
		}
	}
}

func TestDensityOrder(t *testing.T) {
	s := NewSpace([]Item{{Profit: 1, Weight: 10}, {Profit: 10, Weight: 1}, {Profit: 5, Weight: 5}}, 10)
	if s.Items[0].Profit != 10 || s.Items[2].Weight != 10 {
		t.Fatalf("items not density sorted: %v", s.Items)
	}
}

func TestGenSkipsOverweightItems(t *testing.T) {
	s := NewSpace([]Item{{Profit: 5, Weight: 5}, {Profit: 4, Weight: 100}, {Profit: 3, Weight: 3}}, 10)
	g := Gen(s, Root(s))
	var children []Node
	for g.HasNext() {
		children = append(children, g.Next())
	}
	if len(children) != 2 {
		t.Fatalf("%d children, want 2 (overweight item skipped)", len(children))
	}
	for _, c := range children {
		if c.Weight > s.Cap {
			t.Fatalf("infeasible child %+v", c)
		}
	}
}

func TestGenEmptyWhenNothingFits(t *testing.T) {
	s := NewSpace([]Item{{Profit: 1, Weight: 100}}, 10)
	g := Gen(s, Root(s))
	if g.HasNext() {
		t.Fatal("child generated for item exceeding capacity")
	}
}

func TestUpperBoundAdmissible(t *testing.T) {
	f := func(seed int64) bool {
		s := Generate(12, 50, Uncorrelated, seed)
		want := bruteForce(s)
		return UpperBound(s, Root(s)) >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundTightAtLeaf(t *testing.T) {
	s := NewSpace([]Item{{Profit: 7, Weight: 7}}, 7)
	leaf := Node{Pos: 1, Profit: 7, Weight: 7}
	if b := UpperBound(s, leaf); b != 7 {
		t.Fatalf("leaf bound %d, want 7", b)
	}
}

func TestPruningReducesNodes(t *testing.T) {
	s := Generate(24, 1000, Uncorrelated, 5)
	p := OptProblem()
	withBound := core.Opt(core.Sequential, s, Root(s), p, core.Config{})
	p.Bound = nil
	noBound := core.Opt(core.Sequential, s, Root(s), p, core.Config{})
	if withBound.Objective != noBound.Objective {
		t.Fatalf("bound changed answer: %d vs %d", withBound.Objective, noBound.Objective)
	}
	if withBound.Stats.Nodes >= noBound.Stats.Nodes {
		t.Errorf("bound did not reduce nodes: %d vs %d", withBound.Stats.Nodes, noBound.Stats.Nodes)
	}
}

// subsetSumDP is an exact oracle for profit == weight instances:
// classic reachability DP over achievable weights.
func subsetSumDP(s *Space) int64 {
	reach := make([]bool, s.Cap+1)
	reach[0] = true
	for _, it := range s.Items {
		if it.Weight > s.Cap {
			continue
		}
		for w := s.Cap - it.Weight; w >= 0; w-- {
			if reach[w] {
				reach[w+it.Weight] = true
			}
		}
	}
	for w := s.Cap; w >= 0; w-- {
		if reach[w] {
			return w
		}
	}
	return 0
}

func TestSubsetSumAgainstDP(t *testing.T) {
	for seed := int64(200); seed < 208; seed++ {
		s := Generate(20, 2_000, SubsetSum, seed)
		want := subsetSumDP(s)
		got, _ := Solve(s, core.Sequential, core.Config{})
		if got != want {
			t.Errorf("seed %d: B&B found %d, DP oracle says %d", seed, got, want)
		}
	}
}

func TestSubsetSumOddCapacityUnreachable(t *testing.T) {
	s := Generate(18, 1_000, SubsetSum, 77)
	got, _ := Solve(s, core.Sequential, core.Config{})
	if got == s.Cap {
		t.Fatal("even weights filled an odd capacity exactly")
	}
	if got != s.Cap-1 {
		// not guaranteed in theory, but with 18 random items weight
		// cap-1 is reachable in practice; the DP confirms either way
		if got != subsetSumDP(s) {
			t.Fatalf("B&B %d disagrees with DP %d", got, subsetSumDP(s))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(20, 100, StronglyCorrelated, 9)
	b := Generate(20, 100, StronglyCorrelated, 9)
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("same seed, different instances")
		}
	}
	if a.Cap != b.Cap {
		t.Fatal("capacities differ")
	}
}

func TestGenerateCoefficientRanges(t *testing.T) {
	s := Generate(200, 100, Uncorrelated, 11)
	for _, it := range s.Items {
		if it.Profit < 1 || it.Weight < 1 || it.Weight > 100 {
			t.Fatalf("coefficient out of range: %+v", it)
		}
	}
}
