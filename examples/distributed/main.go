// Distributed: the same branch-and-bound search run two ways over the
// pluggable Transport of internal/dist.
//
// Part 1 uses the loopback transport: simulated localities in one
// process with injected network latencies, the in-process stand-in for
// the paper's Beowulf-cluster experiments. Remote steals pay
// StealLatency and bound broadcasts pay BoundLatency, so localities
// really do work with stale knowledge — fewer prunes, same answers.
//
// Part 2 is the real thing: this program re-executes itself as two
// worker OS processes that dial the coordinator over TCP, register,
// and search one knapsack instance cooperatively — remote steals,
// bound broadcasts, distributed termination and result aggregation
// all crossing actual process boundaries.
//
// Part 3 is fault injection: the same deployment with three workers,
// one of which is SIGKILLed mid-search. The supervised task ledger
// replays the subtree roots the dead worker was holding from the
// survivors' retained copies, the coordinator reconciles the dead
// rank's live-task contribution, and the search still terminates with
// the exact optimum of the failure-free run.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"time"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/dist"
	"yewpar/internal/graph"
)

const workerEnv = "YEWPAR_DIST_ROLE"

func knapsackInstance() *knapsack.Space {
	return knapsack.Generate(26, 10_000, knapsack.SubsetSum, 7)
}

func main() {
	if addr := os.Getenv(workerEnv); addr != "" {
		runWorker(addr)
		return
	}
	loopbackDemo()
	multiProcessDemo()
	faultInjectionDemo()
}

func loopbackDemo() {
	fmt.Println("UTS enumeration across simulated localities")
	fmt.Println("(8 workers; steal latency 50µs between localities)")
	tree := &uts.Space{Shape: uts.Binomial, B0: 4000, M: 8, Q: 0.1245, Seed: 404}
	for _, locs := range []int{1, 2, 4, 8} {
		count, stats := uts.Count(tree, core.DepthBounded, core.Config{
			Workers:      8,
			Localities:   locs,
			DCutoff:      3,
			StealLatency: 50 * time.Microsecond,
		})
		fmt.Printf("  localities=%d: %d nodes in %8v (%d remote steals, %d failed)\n",
			locs, count, stats.Elapsed.Round(time.Microsecond), stats.StealsOK, stats.StealsFail)
	}

	fmt.Println("\nMaxClique branch and bound: stale bounds cost pruning, not answers")
	g, _ := graph.PlantedClique(150, 0.6, 15, 11)
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		clique, stats := maxclique.Solve(g, core.DepthBounded, core.Config{
			Workers:      8,
			Localities:   4,
			DCutoff:      2,
			BoundLatency: lat,
		})
		fmt.Printf("  bound latency %-8v: clique %2d, %9d nodes, %8d prunes, %8v\n",
			lat, clique.Count(), stats.Nodes, stats.Prunes, stats.Elapsed.Round(time.Microsecond))
	}
}

// multiProcessDemo makes this process the coordinator of a real
// 3-process deployment, spawning two copies of itself as workers.
func multiProcessDemo() {
	fmt.Println("\nKnapsack over TCP: 1 coordinator + 2 worker processes")
	s := knapsackInstance()
	single := core.Opt(core.DepthBounded, s, knapsack.Root(s), knapsack.OptProblem(), core.Config{Workers: 2, DCutoff: 4})
	fmt.Printf("  single process:  profit %d (%d nodes)\n", single.Objective, single.Stats.Nodes)

	l, err := dist.NewListener("127.0.0.1:0", "example-knapsack")
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "locating executable:", err)
		os.Exit(1)
	}
	var workers []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(), workerEnv+"="+l.Addr())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "spawning worker:", err)
			os.Exit(1)
		}
		workers = append(workers, cmd)
	}

	tr, err := l.Wait(2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "registration:", err)
		os.Exit(1)
	}
	defer tr.Close()
	res, err := core.DistOpt(tr, core.GobCodec[knapsack.Node]{}, core.DepthBounded,
		s, knapsack.Root(s), knapsack.OptProblem(), core.Config{Workers: 2, DCutoff: 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, "distributed search:", err)
		os.Exit(1)
	}
	for _, cmd := range workers {
		cmd.Wait()
	}
	fmt.Printf("  3 OS processes:  profit %d (%d nodes, %d workers, %d remote steals, %d bound broadcasts)\n",
		res.Objective, res.Stats.Nodes, res.Stats.Workers, res.Stats.StealsOK, res.Stats.Broadcasts)
	if res.Objective == single.Objective {
		fmt.Println("  optima agree: distribution changed the schedule, not the answer")
	} else {
		fmt.Println("  OPTIMA DISAGREE — this is a bug")
	}
}

// faultInjectionDemo runs the TCP deployment again with three workers
// and SIGKILLs one mid-search: the supervised task ledger replays the
// dead worker's subtree roots from the survivors, and the optimum is
// unchanged.
func faultInjectionDemo() {
	fmt.Println("\nFault injection: SIGKILL a worker mid-search")
	s := knapsackInstance()
	single := core.Opt(core.DepthBounded, s, knapsack.Root(s), knapsack.OptProblem(), core.Config{Workers: 2, DCutoff: 4})

	l, err := dist.NewListener("127.0.0.1:0", "example-knapsack")
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "locating executable:", err)
		os.Exit(1)
	}
	var workers []*exec.Cmd
	for i := 0; i < 3; i++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(), workerEnv+"="+l.Addr())
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "spawning worker:", err)
			os.Exit(1)
		}
		workers = append(workers, cmd)
	}
	tr, err := l.Wait(3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "registration:", err)
		os.Exit(1)
	}
	defer tr.Close()

	// The assassin: give the search a moment to spread work, then
	// SIGKILL one worker process outright.
	go func() {
		time.Sleep(50 * time.Millisecond)
		workers[1].Process.Kill()
		fmt.Println("  SIGKILLed worker process", workers[1].Process.Pid)
	}()

	res, err := core.DistOpt(tr, core.GobCodec[knapsack.Node]{}, core.DepthBounded,
		s, knapsack.Root(s), knapsack.OptProblem(), core.Config{Workers: 2, DCutoff: 4, MaxFailures: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "distributed search:", err)
		os.Exit(1)
	}
	for _, cmd := range workers {
		cmd.Wait()
	}
	fmt.Printf("  survivors' result: profit %d (deaths=%d, replayed %d subtree roots, ledger peak %d)\n",
		res.Objective, res.Stats.Deaths, res.Stats.ReplayedTasks, res.Stats.LedgerPeak)
	if res.Objective == single.Objective {
		fmt.Println("  optimum survived the kill: the ledger replayed the lost subtrees")
	} else {
		fmt.Println("  OPTIMA DISAGREE — this is a bug")
	}
}

// runWorker is the re-executed child: one locality dialing home.
func runWorker(addr string) {
	tr, err := dist.Dial(addr, "example-knapsack")
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker dial:", err)
		os.Exit(1)
	}
	defer tr.Close()
	s := knapsackInstance()
	if _, err := core.DistOpt(tr, core.GobCodec[knapsack.Node]{}, core.DepthBounded,
		s, knapsack.Root(s), knapsack.OptProblem(), core.Config{Workers: 2, DCutoff: 4}); err != nil {
		fmt.Fprintln(os.Stderr, "worker search:", err)
		os.Exit(1)
	}
}
