package dist

import (
	"sync"
	"time"
)

// The termination wave replaces the star hub's global live-task count
// on mesh deployments, where no single endpoint sees every delta. It
// is a Safra-style token wave adapted to the engine's task-accounting
// discipline:
//
//   - every spawn/adopt contributes +1 and every completion/retirement
//     -1 to the LOCAL counter of the rank that performed it (AddTasks
//     never crosses the wire on mesh);
//   - the supervision ledger keeps a victim's +1 until the thief's
//     completion ack lands, so a task in flight between two ranks is
//     always covered by at least one live counter;
//   - a rank blackens itself the moment it RECEIVES tasks, before they
//     become visible in its counter, so work migrating to an
//     already-visited rank behind the token poisons the round instead
//     of slipping out of the sum.
//
// The initiator (rank 0; on in-process deployments the lowest live
// rank takes over if it dies) launches a probe round whenever it is
// passive and no probe is outstanding. The token visits the live ranks
// in ring order; each passive rank adds its local counter, ORs in its
// colour, whitens itself, and forwards; an active rank holds the token
// until it drains. A round whose token returns white, summing to zero
// with the initiator's own counter, on a system that has ever held
// work, is a consistent observation of global quiescence: the search
// is over. Deaths bump the round (abandoning any token the corpse
// held) and a watchdog relaunches a probe whose token got lost with a
// dying connection; stale rounds are dropped by sequence number, so
// regeneration never double-counts.
type waveNode struct {
	rank int
	size int

	// send forwards a token to a live rank; it must not block on the
	// receiving rank's wave (the transports send over a connection or a
	// goroutine). conclude fires exactly once, on the initiator that
	// observed quiescence.
	send     func(to int, tok waveToken)
	conclude func()

	// watchdog is how long the initiator waits for an outstanding
	// probe's token before assuming it was lost and relaunching.
	watchdog time.Duration

	mu        sync.Mutex
	local     int64 // accumulated live-task delta of this rank
	black     bool  // received tasks since last token pass
	everAct   bool  // local has ever been positive (latched)
	alive     []bool
	initiator bool
	concluded bool
	seen      uint64     // highest token round accepted (non-initiator)
	held      *waveToken // token parked here while this rank is active
	round     uint64     // latest round launched (initiator)
	outAt     time.Time  // when the outstanding probe launched
	out       bool       // a probe is outstanding (initiator)
	idle      time.Time  // next launch on a never-active system (backoff)
}

// waveToken is one circulating probe. Colour bits travel in the wire
// frame's Want field (tokBlack, tokActive).
type waveToken struct {
	round  uint64
	q      int64 // sum of visited ranks' local counters
	black  bool  // some visited rank received tasks behind the token
	active bool  // some visited rank has ever held work
}

const defaultWaveWatchdog = 500 * time.Millisecond

func newWaveNode(rank, size int, send func(int, waveToken), conclude func()) *waveNode {
	alive := make([]bool, size)
	for i := range alive {
		alive[i] = true
	}
	return &waveNode{
		rank:      rank,
		size:      size,
		send:      send,
		conclude:  conclude,
		watchdog:  defaultWaveWatchdog,
		alive:     alive,
		initiator: rank == 0,
	}
}

// add folds a live-task delta into the local counter. Becoming passive
// releases a held token.
func (w *waveNode) add(delta int64) {
	w.mu.Lock()
	w.local += delta
	if w.local > 0 {
		w.everAct = true
	}
	tok, to, ok := w.releaseLocked()
	w.mu.Unlock()
	if ok {
		w.send(to, tok)
	}
}

// blacken marks this rank as having received tasks. It MUST be called
// before the received tasks are counted or handed to the engine: the
// blackness is what keeps a token that already passed this rank from
// concluding a round the migrated work escaped.
func (w *waveNode) blacken() {
	w.mu.Lock()
	w.black = true
	w.mu.Unlock()
}

// markDead removes a rank from the ring. The initiator abandons any
// outstanding probe (its token may have died with the corpse); on
// deployments that allow rank 0 to die, the lowest surviving rank
// inherits the initiator role.
func (w *waveNode) markDead(rank int) {
	w.mu.Lock()
	if rank >= 0 && rank < w.size {
		w.alive[rank] = false
	}
	lowest := -1
	for i, a := range w.alive {
		if a {
			lowest = i
			break
		}
	}
	w.initiator = w.rank == lowest
	if w.initiator {
		w.out = false // relaunch on the next tick, under a fresh round
	}
	// A token parked here can no longer assume the ring it was summing;
	// drop it and let the initiator's watchdog regenerate.
	w.held = nil
	w.mu.Unlock()
}

// onToken receives a circulating token.
func (w *waveNode) onToken(tok waveToken) {
	w.mu.Lock()
	if w.concluded {
		w.mu.Unlock()
		return
	}
	if w.initiator {
		if !w.out || tok.round != w.round {
			w.mu.Unlock()
			return // stale round from before a death or relaunch
		}
		w.out = false
		if !w.black && !tok.black && tok.q+w.local == 0 && w.local <= 0 && (tok.active || w.everAct) {
			w.concluded = true
			w.mu.Unlock()
			w.conclude()
			return
		}
		if !tok.active && !w.everAct {
			// The round failed only because nothing has ever run: the
			// system is idle-before-work, not quiescing. Back off so
			// probes don't spin a hot token loop before the search
			// starts (everAct cancels the backoff the moment it does).
			w.idle = time.Now().Add(w.watchdog)
		}
		w.mu.Unlock()
		return
	}
	if tok.round <= w.seen {
		w.mu.Unlock()
		return // duplicate or stale
	}
	w.seen = tok.round
	w.held = &tok
	fwd, to, ok := w.releaseLocked()
	w.mu.Unlock()
	if ok {
		w.send(to, fwd)
	}
}

// tick paces the wave: the owning transport calls it on its flush
// quantum. The initiator launches (or watchdog-relaunches) probes; any
// rank re-checks a held token it may now be passive enough to forward.
func (w *waveNode) tick() {
	w.mu.Lock()
	if w.concluded {
		w.mu.Unlock()
		return
	}
	if tok, to, ok := w.releaseLocked(); ok {
		w.mu.Unlock()
		w.send(to, tok)
		return
	}
	if !w.initiator || w.local > 0 {
		w.mu.Unlock()
		return
	}
	if w.out && time.Since(w.outAt) <= w.watchdog {
		w.mu.Unlock()
		return
	}
	if !w.everAct && time.Now().Before(w.idle) {
		w.mu.Unlock()
		return
	}
	// Launch a fresh probe. The initiator whitens itself: anything it
	// received before this instant will be summed by this very round.
	w.round++
	w.out = true
	w.outAt = time.Now()
	w.black = false
	tok := waveToken{round: w.round, active: w.everAct}
	to := w.nextLiveLocked()
	if to == w.rank {
		// Sole survivor: the round begins and ends here.
		w.out = false
		if !w.black && w.local == 0 && w.everAct {
			w.concluded = true
			w.mu.Unlock()
			w.conclude()
			return
		}
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	w.send(to, tok)
}

// releaseLocked forwards a held token if this rank is passive,
// accumulating its counter and colour. Caller holds w.mu and performs
// the returned send after unlocking.
func (w *waveNode) releaseLocked() (waveToken, int, bool) {
	if w.held == nil || w.local > 0 || w.initiator {
		return waveToken{}, 0, false
	}
	tok := *w.held
	w.held = nil
	tok.q += w.local
	tok.black = tok.black || w.black
	tok.active = tok.active || w.everAct
	w.black = false
	return tok, w.nextLiveLocked(), true
}

// nextLiveLocked is the ring successor among live ranks (self when
// alone). Caller holds w.mu.
func (w *waveNode) nextLiveLocked() int {
	for i := 1; i < w.size; i++ {
		r := (w.rank + i) % w.size
		if w.alive[r] {
			return r
		}
	}
	return w.rank
}
