// Package core implements the YewPar search-skeleton library
// (Archibald, Maier, Stewart, Trinder: "YewPar: Skeletons for Exact
// Combinatorial Search", PPoPP 2020).
//
// A search application is composed from two parts, mirroring Figure 3 of
// the paper:
//
//   - a Lazy Node Generator (GenFactory) supplied by the application,
//     which describes how the search tree is created on demand and in
//     which (heuristic) order children are traversed; and
//   - a search skeleton, the combination of a search coordination
//     (Sequential, Depth-Bounded, Stack-Stealing, Budget) with a search
//     type (Enumeration, Optimisation, Decision).
//
// The twelve skeletons are exposed as SequentialEnum, DepthBoundedOpt,
// StackStealDecision, BudgetEnum, and so on. All parallel skeletons
// run on a distributed runtime built over the pluggable Transport of
// internal/dist: workers are grouped into localities, each owning an
// order-preserving workpool and a locally cached copy of the incumbent
// bound, with remote steals and bound broadcasts crossing the
// transport. Single-process runs use the in-process loopback transport
// (optionally with injected steal/bound latencies, simulating the
// paper's cluster experiments); the DistEnum/DistOpt/DistDecide entry
// points run one locality per OS process over the TCP transport, with
// task serialisation through a Codec and final result/metric
// aggregation at the coordinator — the role HPX plays in the paper's
// own implementation.
//
// The semantics of the skeletons follows the operational model of
// Section 3 of the paper (see the sibling package internal/semantics
// for an executable version of that model): enumeration folds the tree
// into a commutative monoid, optimisation and decision maximise an
// objective over the tree with sound-but-possibly-stale pruning, and
// the spawn behaviour of each coordination implements one of the
// (spawn-depth), (spawn-budget) and (spawn-stack) rules of Figure 2.
package core
