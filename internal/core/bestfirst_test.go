package core

import (
	"testing"
)

func TestBestFirstOptFindsMax(t *testing.T) {
	for _, seed := range []int64{1, 3, 23, 29, 31} {
		tree := genTree(seed, 4, 9)
		want := tree.max()
		res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 6, Budget: 8})
		if !res.Found || res.Objective != want {
			t.Errorf("seed %d: got %d (found=%v), want %d", seed, res.Objective, res.Found, want)
		}
	}
}

func TestBestFirstOptSingleWorker(t *testing.T) {
	tree := genTree(7, 4, 9)
	res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 1, Budget: 4})
	if res.Objective != tree.max() {
		t.Fatalf("got %d, want %d", res.Objective, tree.max())
	}
}

func TestBestFirstRequiresBound(t *testing.T) {
	tree := genTree(7, 4, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Bound")
		}
	}()
	BestFirstOpt(tree, testNode{}, tree.optProblem(false), Config{Workers: 2})
}

func TestBestFirstSpawnsWithTinyBudget(t *testing.T) {
	tree := genTree(31, 4, 9)
	res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 4, Budget: 2})
	if res.Stats.Spawns == 0 {
		t.Error("tiny budget spawned nothing")
	}
	if res.Objective != tree.max() {
		t.Errorf("got %d, want %d", res.Objective, tree.max())
	}
}

// Best-first ordering should reach a maximal incumbent with fewer
// visits than worst-first ordering on average: verify the pool pops
// by priority at all.
func TestPrioPoolOrdering(t *testing.T) {
	p := NewPrioPool[string]()
	p.PushPrio(Task[string]{Node: "low"}, 1)
	p.PushPrio(Task[string]{Node: "high"}, 10)
	p.PushPrio(Task[string]{Node: "mid"}, 5)
	want := []string{"high", "mid", "low"}
	for _, w := range want {
		task, ok := p.PopPrio()
		if !ok || task.Node != w {
			t.Fatalf("popped %q, want %q", task.Node, w)
		}
	}
	if _, ok := p.PopPrio(); ok {
		t.Fatal("pool should be empty")
	}
}

func TestPrioPoolFIFOWithinPriority(t *testing.T) {
	p := NewPrioPool[int]()
	for i := 0; i < 5; i++ {
		p.PushPrio(Task[int]{Node: i}, 7)
	}
	for i := 0; i < 5; i++ {
		task, _ := p.PopPrio()
		if task.Node != i {
			t.Fatalf("tie-break broke insertion order: got %d at pos %d", task.Node, i)
		}
	}
}

func TestPrioPoolSize(t *testing.T) {
	p := NewPrioPool[int]()
	if p.Size() != 0 {
		t.Fatal("fresh pool not empty")
	}
	p.PushPrio(Task[int]{Node: 1}, 0)
	p.PushPrio(Task[int]{Node: 2}, 0)
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
	p.PopPrio()
	if p.Size() != 1 {
		t.Fatalf("Size = %d", p.Size())
	}
}
