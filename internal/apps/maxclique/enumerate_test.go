package maxclique

import (
	"testing"

	"yewpar/internal/bitset"
	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// bruteCliques enumerates subsets, returning (#cliques incl. empty,
// #maximal cliques, per-size counts).
func bruteCliques(g *graph.Graph) (total, maximal int64, bySize []int64) {
	bySize = make([]int64, g.N+1)
	for mask := 0; mask < 1<<g.N; mask++ {
		vs := bitset.New(g.N)
		for v := 0; v < g.N; v++ {
			if mask&(1<<v) != 0 {
				vs.Add(v)
			}
		}
		if !g.IsClique(vs) {
			continue
		}
		total++
		bySize[vs.Count()]++
		// maximal?
		isMax := true
		for v := 0; v < g.N && isMax; v++ {
			if vs.Contains(v) {
				continue
			}
			extends := true
			vs.ForEach(func(u int) bool {
				if !g.HasEdge(u, v) {
					extends = false
				}
				return extends
			})
			if extends {
				isMax = false
			}
		}
		if isMax && vs.Count() > 0 {
			maximal++
		}
	}
	return total, maximal, bySize
}

func TestCountCliquesMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(12, 0.5, seed)
		want, _, _ := bruteCliques(g)
		s := NewSpace(g)
		res := core.Enum(core.Sequential, s, Root(s), CountCliquesProblem(), core.Config{})
		if res.Value != want {
			t.Errorf("seed %d: counted %d cliques, want %d", seed, res.Value, want)
		}
	}
}

func TestCountMaximalMatchesBruteForce(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		g := graph.Random(12, 0.5, seed)
		_, want, _ := bruteCliques(g)
		s := NewSpace(g)
		res := core.Enum(core.Sequential, s, Root(s), CountMaximalProblem(), core.Config{})
		if res.Value != want {
			t.Errorf("seed %d: counted %d maximal cliques, want %d", seed, res.Value, want)
		}
	}
}

func TestCliqueProfileMatchesBruteForce(t *testing.T) {
	g := graph.Random(12, 0.6, 21)
	_, _, want := bruteCliques(g)
	s := NewSpace(g)
	res := core.Enum(core.DepthBounded, s, Root(s), CliqueProfileProblem(12), core.Config{Workers: 4})
	for size, w := range want {
		if res.Value[size] != w {
			t.Errorf("size %d: %d cliques, want %d", size, res.Value[size], w)
		}
	}
}

func TestMaximalEnumerationParallel(t *testing.T) {
	g := graph.Random(30, 0.4, 31)
	s := NewSpace(g)
	want := core.Enum(core.Sequential, s, Root(s), CountMaximalProblem(), core.Config{})
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		res := core.Enum(coord, s, Root(s), CountMaximalProblem(), core.Config{Workers: 6, Budget: 32})
		if res.Value != want.Value {
			t.Errorf("%v: %d maximal cliques, want %d", coord, res.Value, want.Value)
		}
	}
}

func TestIsMaximalTriangleWithTail(t *testing.T) {
	// triangle 0-1-2 plus pendant 3-0: {0,1,2} is maximal, {0,3} is
	// maximal, {0,1} is not.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	s := NewSpace(g)
	mk := func(vs ...int) Node {
		c := bitset.FromSlice(4, vs)
		return Node{Clique: c, Size: len(vs)}
	}
	if !IsMaximal(s, mk(0, 1, 2)) {
		t.Error("triangle should be maximal")
	}
	if !IsMaximal(s, mk(0, 3)) {
		t.Error("pendant edge should be maximal")
	}
	if IsMaximal(s, mk(0, 1)) {
		t.Error("{0,1} extends to the triangle")
	}
	if IsMaximal(s, mk()) {
		t.Error("empty clique is not maximal in a non-empty graph")
	}
}

func TestFigureOneMaximalCliques(t *testing.T) {
	// Hand count for the paper's Figure 1 graph: maximal cliques are
	// {a,b,c}, {a,b,g}, {a,d,f,g}, {a,h}, {c,e}, {e,h}.
	g, _ := FigureOneGraph()
	s := NewSpace(g)
	res := core.Enum(core.Sequential, s, Root(s), CountMaximalProblem(), core.Config{})
	if res.Value != 6 {
		t.Fatalf("figure 1 graph has %d maximal cliques, want 6", res.Value)
	}
}
