// Package instances provides the deterministic synthetic instances
// standing in for the paper's evaluation inputs: the 18 DIMACS clique
// instances of Table 1, the H(4,4) spreads k-clique instance of
// Figure 4, and the per-application instance sets of Table 2.
//
// The DIMACS graphs themselves are proprietary-by-obscurity (large
// binary downloads) and far too hard for a single-machine test cycle —
// brock800_4 alone takes 24 CPU-minutes sequentially in the paper — so
// each named instance here is a generated graph of the same structural
// family (planted cliques for brock, banded density for p_hat,
// block-structured for san, uniform dense for sanr/MANN), scaled so
// the whole Table 1 harness runs in minutes. Overhead and scaling
// comparisons are relative measurements and survive this rescaling;
// absolute runtimes obviously do not (see EXPERIMENTS.md).
package instances

import (
	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/graph"
)

// CliqueInstance is a named graph for the clique searches.
type CliqueInstance struct {
	Name string
	Gen  func() *graph.Graph
}

// Table1 returns the 18 named instances of Table 1, in the paper's
// row order.
func Table1() []CliqueInstance {
	planted := func(n int, p float64, k int, seed int64) func() *graph.Graph {
		return func() *graph.Graph {
			g, _ := graph.PlantedClique(n, p, k, seed)
			return g
		}
	}
	random := func(n int, p float64, seed int64) func() *graph.Graph {
		return func() *graph.Graph { return graph.Random(n, p, seed) }
	}
	banded := func(n int, lo, hi float64, seed int64) func() *graph.Graph {
		return func() *graph.Graph { return graph.Banded(n, lo, hi, seed) }
	}
	part := func(n, bs int, in, out float64, seed int64) func() *graph.Graph {
		return func() *graph.Graph { return graph.Partitioned(n, bs, in, out, seed) }
	}
	return []CliqueInstance{
		{"MANN_a45", random(100, 0.90, 451)},
		{"brock400_1", planted(130, 0.65, 14, 4011)},
		{"brock400_2", planted(130, 0.65, 14, 4012)},
		{"brock400_3", planted(130, 0.65, 14, 4013)},
		{"brock400_4", planted(120, 0.65, 13, 4014)},
		{"brock800_4", planted(150, 0.60, 15, 8004)},
		{"p_hat1000-2", banded(180, 0.30, 0.80, 10002)},
		{"p_hat1500-1", banded(200, 0.10, 0.50, 15001)},
		{"p_hat300-3", banded(130, 0.50, 0.90, 3003)},
		{"p_hat500-3", banded(160, 0.45, 0.90, 5003)},
		{"p_hat700-2", banded(170, 0.30, 0.80, 7002)},
		{"p_hat700-3", banded(170, 0.45, 0.90, 7003)},
		{"san1000", part(160, 20, 0.85, 0.30, 1000)},
		{"san400_0.7_2", part(130, 13, 0.90, 0.45, 4072)},
		{"san400_0.7_3", part(130, 13, 0.90, 0.45, 4073)},
		{"san400_0.9_1", part(120, 12, 0.95, 0.60, 4091)},
		{"sanr200_0.9", random(95, 0.90, 2009)},
		{"sanr400_0.7", random(140, 0.70, 4007)},
	}
}

// SpreadsH44Like returns the Figure 4 stand-in: a dense random graph
// whose k-clique decision at k = ω+1 is unsatisfiable, so the whole
// (pruned) tree must be explored — the way proving the non-existence
// of a spread in H(4,4) does. High density keeps the colouring bound
// weak, giving the multi-second sequential runtimes the scaling study
// needs. Returns the graph and its (precomputed, deterministic)
// maximum clique size ω = 30; harnesses should disprove k = ω+1 and
// check that the decision indeed fails.
func SpreadsH44Like() (*graph.Graph, int) {
	return graph.Random(105, 0.90, 44_44), 30
}

// Table2Clique returns the MaxClique instance set for Table 2: the
// three hardest Table 1 families (dense MANN-like, banded p_hat-like,
// uniform sanr-like), which keep hundreds of milliseconds of
// sequential work even with level pruning.
func Table2Clique() []CliqueInstance {
	t1 := Table1()
	return []CliqueInstance{t1[0], t1[9], t1[16]}
}

// Table2Knapsack returns the knapsack instance set for Table 2:
// odd-capacity subset-sum instances, the family on which the Dantzig
// bound is weakest and the search tree genuinely large (correlated
// families at this scale are solved in hundreds of nodes).
func Table2Knapsack() []*knapsack.Space {
	return []*knapsack.Space{
		knapsack.Generate(24, 10_000, knapsack.SubsetSum, 103),
		knapsack.Generate(25, 10_000, knapsack.SubsetSum, 104),
		knapsack.Generate(26, 10_000, knapsack.SubsetSum, 105),
	}
}

// Table2TSP returns the TSP instance set for Table 2.
func Table2TSP() []*tsp.Space {
	return []*tsp.Space{
		tsp.GenerateEuclidean(15, 1000, 201),
		tsp.GenerateEuclidean(15, 1000, 202),
		tsp.GenerateEuclidean(16, 1000, 203),
	}
}

// Table2SIP returns the SIP instance set for Table 2 (a satisfiable
// and two unsatisfiable instances, as in the paper's benchmark mix).
func Table2SIP() []*sip.Space {
	return []*sip.Space{
		sip.GenerateSat(90, 0.32, 30, 0.1, 309),
		sip.GenerateRandom(95, 0.25, 18, 0.42, 307),
		sip.GenerateRandom(85, 0.28, 17, 0.45, 306),
	}
}

// Table2UTS returns the UTS instance set for Table 2.
func Table2UTS() []*uts.Space {
	return []*uts.Space{
		{Shape: uts.Binomial, B0: 2000, M: 6, Q: 0.166, Seed: 401},
		{Shape: uts.Binomial, B0: 4000, M: 8, Q: 0.1245, Seed: 404},
		{Shape: uts.Geometric, B0: 5, MaxDepth: 15, Seed: 403},
	}
}

// Table2NS returns the Numerical Semigroups genus targets for Table 2.
func Table2NS() []int { return []int{23, 25} }
