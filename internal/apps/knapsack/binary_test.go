package knapsack

import (
	"testing"

	"yewpar/internal/core"
)

func TestBinaryMatchesInclusionTree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, corr := range []Correlation{Uncorrelated, WeaklyCorrelated, SubsetSum} {
			s := Generate(16, 200, corr, seed)
			a, _ := Solve(s, core.Sequential, core.Config{})
			b, _ := SolveBinary(s, core.Sequential, core.Config{})
			if a != b {
				t.Errorf("seed %d corr %d: inclusion tree %d, binary tree %d", seed, corr, a, b)
			}
		}
	}
}

func TestBinaryMatchesBruteForce(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		s := Generate(14, 100, Uncorrelated, seed)
		want := bruteForce(s)
		got, _ := SolveBinary(s, core.Sequential, core.Config{})
		if got != want {
			t.Errorf("seed %d: %d, want %d", seed, got, want)
		}
	}
}

func TestBinaryParallelSkeletons(t *testing.T) {
	s := Generate(20, 1000, SubsetSum, 31)
	want, _ := SolveBinary(s, core.Sequential, core.Config{})
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := SolveBinary(s, coord, core.Config{Workers: 6, DCutoff: 4, Budget: 64})
		if got != want {
			t.Errorf("%v: %d, want %d", coord, got, want)
		}
	}
}

func TestBinaryGenTakeFirst(t *testing.T) {
	s := NewSpace([]Item{{Profit: 5, Weight: 5}, {Profit: 3, Weight: 3}}, 10)
	g := BinGen(s, BinRoot(s))
	take := g.Next()
	if take.Profit != 5 || take.Weight != 5 {
		t.Fatalf("first child should take the item: %+v", take)
	}
	leave := g.Next()
	if leave.Profit != 0 || leave.Weight != 0 || leave.Pos != 1 {
		t.Fatalf("second child should leave the item: %+v", leave)
	}
	if g.HasNext() {
		t.Fatal("binary generator yielded a third child")
	}
}

func TestBinaryGenSkipsInfeasibleTake(t *testing.T) {
	s := NewSpace([]Item{{Profit: 9, Weight: 100}}, 10)
	g := BinGen(s, BinRoot(s))
	only := g.Next()
	if only.Weight != 0 {
		t.Fatalf("oversized item was taken: %+v", only)
	}
	if g.HasNext() {
		t.Fatal("infeasible take should be skipped entirely")
	}
}

func TestBinaryLeafHasNoChildren(t *testing.T) {
	s := NewSpace([]Item{{Profit: 1, Weight: 1}}, 10)
	leaf := BinNode{Pos: 1}
	if BinGen(s, leaf).HasNext() {
		t.Fatal("fully decided prefix has children")
	}
}

func TestBinaryTreeLargerThanInclusionTree(t *testing.T) {
	// the binary tree materialises leave-chains the inclusion tree
	// skips, so without identical pruning it visits at least as many
	// nodes — the generator choice is a real engineering decision
	s := Generate(18, 500, Uncorrelated, 3)
	p1 := OptProblem()
	p1.Bound = nil
	p2 := BinOptProblem()
	p2.Bound = nil
	incl := core.Opt(core.Sequential, s, Root(s), p1, core.Config{})
	bin := core.Opt(core.Sequential, s, BinRoot(s), p2, core.Config{})
	if bin.Objective != incl.Objective {
		t.Fatalf("answers differ: %d vs %d", bin.Objective, incl.Objective)
	}
	if bin.Stats.Nodes <= incl.Stats.Nodes {
		t.Errorf("binary tree (%d nodes) unexpectedly smaller than inclusion tree (%d)",
			bin.Stats.Nodes, incl.Stats.Nodes)
	}
}
