package dist_test

import (
	"fmt"
	"sync"

	"yewpar/internal/dist"
)

// queueHandler is a minimal locality: a task queue to be robbed and a
// record of the bounds peers have shared.
type queueHandler struct {
	mu     sync.Mutex
	tasks  []dist.WireTask
	bounds []int64
}

func (h *queueHandler) ServeSteal(thief int) (dist.WireTask, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.tasks) == 0 {
		return dist.WireTask{}, false
	}
	t := h.tasks[0]
	h.tasks = h.tasks[1:]
	return t, true
}

func (h *queueHandler) OnBound(from int, obj int64) {
	h.mu.Lock()
	h.bounds = append(h.bounds, obj)
	h.mu.Unlock()
}

func (h *queueHandler) OnCancel(from int) {}

func (h *queueHandler) OnAck(from int, id uint64) {}

func (h *queueHandler) OnTask(t dist.WireTask) {
	h.mu.Lock()
	h.tasks = append(h.tasks, t)
	h.mu.Unlock()
}

// ExampleNewLoopback wires two localities over the in-process
// transport: locality 1 holds a task, locality 0 steals it, and an
// improved incumbent bound is broadcast back.
func ExampleNewLoopback() {
	net := dist.NewLoopback(2, dist.LoopbackOptions{})
	defer net.Close()
	trs := net.Transports()

	h0, h1 := &queueHandler{}, &queueHandler{}
	h1.tasks = []dist.WireTask{{Payload: []byte("subtree-root"), Depth: 3, Bound: 12}}
	trs[0].Start(h0)
	trs[1].Start(h1)

	task, ok, _ := trs[0].Steal(1)
	fmt.Printf("stole: %q at depth %d (victim bound %d) ok=%v\n",
		task.Payload, task.Depth, task.Bound, ok)

	trs[0].BroadcastBound(15, nil)
	fmt.Printf("locality 1 learned bounds: %v\n", h1.bounds)

	// A second steal finds locality 1 empty-handed.
	_, ok, _ = trs[0].Steal(1)
	fmt.Printf("second steal ok=%v\n", ok)
	// Output:
	// stole: "subtree-root" at depth 3 (victim bound 12) ok=true
	// locality 1 learned bounds: [15]
	// second steal ok=false
}

// ExampleTransport_AddTasks shows the live-task accounting that powers
// distributed termination detection: Done fires on every locality
// exactly when all spawned tasks have completed.
func ExampleTransport_AddTasks() {
	net := dist.NewLoopback(2, dist.LoopbackOptions{})
	defer net.Close()
	trs := net.Transports()
	trs[0].Start(&queueHandler{})
	trs[1].Start(&queueHandler{})

	trs[0].AddTasks(2)  // coordinator spawns the root and one child
	trs[1].AddTasks(-1) // a thief completes one…
	select {
	case <-trs[1].Done():
		fmt.Println("terminated too early")
	default:
		fmt.Println("still searching")
	}
	trs[0].AddTasks(-1) // …and the coordinator the other
	<-trs[1].Done()
	fmt.Println("search terminated everywhere")
	// Output:
	// still searching
	// search terminated everywhere
}
