// Package dist is the communication substrate of the distributed
// search runtime: a pluggable Transport over which localities — the
// paper's physical cluster nodes — exchange work and incumbent
// knowledge.
//
// YewPar's distributed skeletons need five interactions between
// localities, and Transport captures precisely those:
//
//   - work distribution: an idle locality steals from a peer (Steal on
//     the thief side, Handler.ServeSteal — or the batching
//     MultiStealer extension — on the victim side), the request/reply
//     discipline of the paper's Section 4.3 workpools;
//   - knowledge propagation: an improved incumbent bound is broadcast
//     to every locality (BroadcastBound/Handler.OnBound), with relaxed
//     delivery — late or reordered bounds cost pruning opportunities,
//     never correctness, because receivers merge with a monotonic max;
//   - termination detection: a global live-task count (AddTasks/Done)
//     that reaches zero exactly when no locality holds or will ever
//     receive work;
//   - short-circuit and aggregation: decision-search cancellation
//     (Cancel/Handler.OnCancel) and the terminal collective Gather
//     that brings every locality's result and metrics to rank 0;
//   - fault tolerance: hand-over supervision (WireTask.ID,
//     Ack/Handler.OnAck) and death notification (Deaths), the v4
//     vocabulary that lets the engine's supervised-task ledger replay
//     a dead locality's subtrees — see "Fault tolerance" below.
//
// Two implementations are provided, each in two topologies. The
// Loopback transport connects localities within one process by direct
// calls, with optional injected steal and bound latencies; it backs
// all single-process skeleton runs (internal/core builds its
// simulated-cluster topology on it) and serves as the reference for
// the conformance suite — LoopbackOptions.Wave switches its
// termination discipline from the counted mode to the token wave. The
// TCP transport (NewListener/Dial) connects real OS processes and is
// what `yewpar -dist` deploys: in the star topology every frame is
// relayed through the coordinator's hub; in the mesh topology
// (WireOptions.Topology, `-topology mesh`) workers connect directly
// to each other and the coordinator drops out of the steal and bound
// planes — see "Mesh topology and the termination wave" below.
//
// # Wire protocol (v8)
//
// The TCP transport speaks a length-prefixed binary frame format (v1
// was a gob stream per message): a little-endian uint32 body length,
// then kind and flag bytes, then a varint header (from, to, seq) and a
// kind-specific payload — see frame.go for the byte-level layout. The
// protocol version is checked during registration, alongside the
// deployment spec string.
//
// Three amortisations define the v2 layer, all tunable through
// WireOptions:
//
//   - Batched steals: a steal request names the number of tasks the
//     thief will accept (StealBatch); the reply carries up to that
//     many. The thief hands the first to the requesting worker and
//     re-homes the rest via Handler.OnTask, so one round trip moves a
//     batch. Victims that implement MultiStealer decide how much of
//     their backlog one thief may take (the engine uses steal-half).
//   - Coalesced live-task deltas: AddTasks accumulates into a
//     per-locality counter that is drained onto the next outgoing
//     frame of any kind, with a FlushQuantum ticker as the fallback —
//     one counter flush per pool quantum instead of one frame per
//     spawn. Ordering makes this safe for termination detection: the
//     drain happens under the connection's write lock, so a steal
//     reply always carries every delta issued before its tasks left
//     the victim's pool, and the hub applies a frame's delta before
//     routing the frame onward.
//   - Piggybacked bounds: every outgoing frame (except kBound itself)
//     is stamped with the sender's best known bound, so incumbent
//     knowledge rides along with ordinary traffic and a thief never
//     prunes a stolen subtree with knowledge older than the last frame
//     it saw. Receivers deliver a bound to their handler only when it
//     beats everything previously delivered, absorbing the repetition.
//
// v3 adds the ordered-scheduling fields. Each task in a steal reply
// carries its scheduling priority (WireTask.Prio, a varint after the
// depth), so a distributed search stays globally ordered: a stolen
// task re-enters the thief's priority pool exactly where it left the
// victim's. And every frame a locality originates is stamped with a
// best-available-priority summary — the priority of the best task its
// pool could currently serve to a thief (PrioNone when empty),
// supplied by the engine through the StealRanker handler extension.
// The summary survives routing (the hub forwards it unchanged, so a
// steal reply tells the thief how much more the victim holds), and
// receivers record it per origin rank; transports expose the table
// through the PrioAware extension, which the engine's topology uses to
// probe the most promising victim first instead of a random one.
// Summaries are hints — stale the moment they are read — so they order
// victim probing but never hide a victim. The loopback transport
// implements PrioAware by asking the victim's handler directly, which
// is exact.
//
// # Fault tolerance (v4)
//
// v4 makes worker death survivable. Because branch-and-bound task
// execution is idempotent and replay-safe — re-running a subtree can
// change which nodes are visited, never the answer — a lost subtree
// can simply be re-executed from its root by a surviving locality.
// The transport's share of that protocol:
//
//   - Hand-over ids and completion acks. Every task in a steal reply
//     carries an id minted by its victim (WireTask.ID; TaskID packs
//     the victim's rank with a sequence number). The victim retains a
//     copy in the engine's ledger until the thief acks the id —
//     which it does only once the task's entire subtree has completed,
//     here or downstream, so supervision chains transitively back
//     toward the coordinator. Acks coalesce: both endpoints buffer
//     them and flush one kAck batch per quantum, so the no-failure
//     cost is one small frame per quantum, not one per stolen task.
//   - Death detection. The hub reads a broken worker connection — or
//     one silent past WireOptions.LivenessTimeout, with workers
//     sending kPing heartbeats whenever they have been quiet for a
//     Heartbeat — as a death: pending steals aimed at the corpse fail
//     fast, a kDeath notice fans out to every survivor (and surfaces
//     locally) through Deaths(), the rank's gather slot is filled with
//     nil so the terminal collective cannot block, and dead ranks are
//     skipped by victim selection forever after. The loopback network
//     implements the same contract with an injectable Kill(rank), so
//     engine-level death tests run deterministically in-process.
//   - Live-count reconciliation. The hub attributes every coalesced
//     delta to its sender (liveAt per rank). A death subtracts exactly
//     the dead rank's outstanding contribution; everything a survivor
//     registered — including the ledger copies covering tasks the
//     dead rank was holding — stays counted, so Done still fires
//     exactly when the surviving search, replays included, is done.
//     Blocking steals also abort on Done: a victim that finished may
//     shut down with requests still in flight, and those must not
//     serve out the full steal timeout.
//   - Incumbent retention. Bound broadcasts (and decision cancels)
//     may carry the encoded incumbent node; the hub retains the best
//     (obj, node) pair and exposes it through IncumbentStore, so an
//     optimum found by a locality that later died still reaches the
//     final result. The loopback network retains at network level.
//
// What is and is not survivable: any number of worker deaths are
// absorbed as long as the coordinator lives — supervision chains root
// at rank 0, and an entry is acked only when its whole subtree has
// completed, so even staggered multi-rank deaths replay from the
// earliest surviving supervisor. Through v6, coordinator (rank 0)
// death was out of scope in both topologies: even in the mesh, where
// routing, termination detection, and bound spread are decentralised,
// rank 0 still owned registration, the incumbent store, and result
// aggregation, and its loss ended the deployment. v7 removes that
// caveat for deployments armed with WireOptions.Standby — see
// "Coordinator failover (v7)" below. Enumeration searches cannot be
// repaired by replay — a dead rank's partial monoid value is
// unrecoverable and replaying its subtrees would double-count — so
// DistEnum reports a death as an error rather than return a silently
// wrong total.
//
// # Mesh topology and the termination wave (v5)
//
// The star concentrates every frame of a deployment on the
// coordinator: each worker-to-worker steal costs the hub four frames
// of relay, and each incumbent improvement is re-broadcast to every
// worker. v5 flattens it. During registration the hub collects each
// worker's peer listen address (kPeerAddr) and, once the deployment is
// complete, sends every worker the full address table (kPeers);
// workers then dial each other directly (kPeerHello, deduplicated by
// rank order) and the data plane — steal requests, batched replies,
// completion acks, per-peer priority summaries — flows point to point.
// The coordinator keeps only the control plane: registration, the
// incumbent store, death fan-out, and the terminal Gather.
//
// With no hub seeing every frame, two star-era mechanisms are
// replaced:
//
//   - Bounds spread epidemically instead of by hub re-broadcast. An
//     improving locality pushes kGossip to a small random fan of peers
//     (plus one kBound to the hub, which folds it into the incumbent
//     store but never eagerly re-broadcasts), receivers re-gossip
//     genuine news, and a slow anti-entropy tick catches any peer the
//     pushes missed. Every connection tracks the best bound it has
//     carried in either direction — piggybacked stamps on ordinary
//     traffic count — and a push is suppressed on connections that
//     already carried that bound, so convergent traffic decays to
//     zero: once everyone knows, nobody sends.
//   - Termination is detected by a circulating token (kToken), a
//     Safra-style wave, instead of the hub's global live count. Rank 0
//     initiates; each locality holds the token until it is locally
//     quiet, folds in its task-counter contribution, and blackens the
//     token if it was active since the last visit. A wave that returns
//     clean — no one active, counters summing to zero — is
//     re-confirmed once before anyone stops, which closes the classic
//     in-flight-message race; any activity in between restarts the
//     wave. Worker death blackens the wave and re-elects the lowest
//     surviving rank as initiator.
//
// Both planes stay conformant to the Transport contract, so the
// engine above is topology-blind: the conformance suite runs the same
// cases over star and mesh harnesses, and BenchmarkScaleoutTopology
// (gated by BENCH_scaleout.json) pins the point of the exercise — the
// same 4-locality search moves >= 25% fewer frames through the
// coordinator over the mesh.
//
// # On-demand stack splitting (v6)
//
// The stack-stealing coordination holds its unexplored work inside
// running workers' live generator stacks, not in a pool — so through
// v5 it had nothing a remote ServeSteal could serve, and -dist
// rejected it. v6 closes that hole with one frame kind: kSplit, a
// steal request with split semantics (From = thief, To = victim,
// Want = max tasks, exactly like kSteal). A victim whose pool is dry
// answers by asking one of its running workers to split its live
// generator stack bottom-up — the paper's (spawn-stack) rule, served
// over the wire — and exports the handed-over nodes. The reply is an
// ordinary kStealR, so steal correlation, batching, hand-over
// supervision ids, and the mesh wave's blackening rules all apply
// unchanged; a transport-level thief calls SplitSteal (the
// SplitStealer extension) and a victim-side handler opts in through
// the StackSplitter extension, with handlers that lack it falling
// back to plain pool service. Because a split may wait a few
// milliseconds for a worker to reach a poll point, endpoints serve
// kSplit off their read loops. The same request also serves the
// memory story: a locality under Config.PoolBudget pressure would
// rather have its stack split on demand than materialise spawns it
// must then spill (see internal/core's "Memory-bounded search").
//
// # Coordinator failover (v7)
//
// v7 makes coordinator death itself survivable. Arming a deployment
// with WireOptions.Standby (`-standby`, which every rank must agree
// on) changes two things while nothing is failing:
//
//   - Rank 0 runs as a pure coordinator. The engine layer
//     (core.Config.Standby) gives it zero local workers, so the root
//     it seeds leaves its pool only through ledger-supervised steals
//     and no subtree can ever live exclusively in the one process
//     whose death we are insuring against.
//   - The hub replicates its residual state to the lowest live worker
//     rank — the standby. Residual means exactly what death
//     reconciliation and replay cannot reconstruct from the survivors:
//     the mirror of supervised hand-over records, the best bound stamp
//     and retained incumbent, the set of already-mourned ranks, and
//     any gather shares contributed early. Deltas coalesce into
//     kHubDelta frames on the existing flush cadence, with a periodic
//     kHubSnap full snapshot as the resync fallback, so the no-failure
//     premium is a few dozen frames per search and an ns/op tax gated
//     at 1.10x by BENCH_failover.json.
//
// When the coordinator dies, the standby observes the broken
// connection (or liveness timeout), promotes itself — epoch 0 becomes
// 1 — and rebuilds a hub from the replicated state at its own rank. In
// the star the other survivors re-dial the standby's promotion
// listener, which was bound at registration time so the address is
// known before any failure: the kRejoin hello carries each rank's
// cumulative live-count contribution and bound stamp, and the kWelcome
// reply re-seeds them with the promoted hub's, so termination
// accounting and incumbent knowledge cross the takeover without loss.
// In the mesh the data plane already runs over direct peer links, so
// takeover is pure role migration: no re-dialing, the promoted rank
// simply assumes the control plane (incumbent store, death fan-out,
// wave initiation, terminal Gather). Either way the search finishes
// and the promoted rank — not the corpse — aggregates and reports the
// result (Promoted/the Promoter extension tells callers which rank
// that is).
//
// The epoch fences double takeover: exactly one promotion is allowed,
// so the death of the promoted coordinator ends the deployment, as
// does losing rank 0 and the standby together before the takeover
// completes. Worker deaths before, during, and after the takeover
// remain survivable through the v4 replay machinery — the staggered
// coordinator-then-worker chaos test exercises precisely that.
//
// ChaosPlan is the reusable fault-injection harness behind those
// tests: a schedule of rank kills (and, since v8, link partitions) at
// offsets from an armed start, driving either the loopback network's
// Kill or a real SIGKILL of a deployed process.
//
// # Link-fault tolerance (v8)
//
// Through v7 the runtime equated a connection with a locality: any
// I/O error — a flapping switch, a dropped NAT binding, a few seconds
// of packet loss — was read as a death, triggering mourning, ledger
// replay, and (for rank 0) a full coordinator failover. Correct, but
// maximally expensive. v8 separates link failure from process failure
// with three mechanisms:
//
//   - Checksummed, sequenced frames. Every frame gains an eight-byte
//     trailer — a per-connection link sequence and a CRC32C over body
//     and sequence — covered by the length prefix. The receiver
//     accepts the next sequence, silently skips duplicates
//     (retransmission overlap), and treats a gap or CRC mismatch as a
//     link failure: corruption can no longer desync the
//     length-prefixed stream or deliver a wrong frame.
//   - Resumable sessions. With WireOptions.LinkGrace > 0
//     (`-link-grace`), every connection of the deployment — hub links,
//     mesh peer links, post-failover rejoin links — is registered as a
//     session at handshake time (the id rides kWelcome, kPeerHello, or
//     kRejoin). Outgoing frames are copied into a bounded retransmit
//     log; on an I/O error the surviving sides suspend the session for
//     the grace window instead of mourning. The dialing side redials
//     and offers kResume (session id + receive high-water mark), the
//     accepting side answers with its own mark, both replay exactly
//     the frames the other missed, and traffic continues — steal
//     replies, acks, deltas, and gossip cross the reconnect with no
//     death, no replay, no failover. A session that cannot resume
//     inside the grace (or whose log was trimmed past what the peer
//     needs) breaks, collapsing to the v4 death path, which is always
//     safe. Stats.LinkResumes counts the saves.
//   - Suspicion before mourning. A rank whose link is suspended (or
//     whose heartbeats have gone quiet past LivenessTimeout) is
//     quarantined, not mourned: the engine's victim selection skips it
//     (the LinkHealth extension) and steals aimed at it fail fast, but
//     death — with its irreversible replay — is declared only after
//     the grace window closes on top of the liveness timeout. A
//     suspect that resumes re-enters the victim order as if nothing
//     happened.
//
// FaultPlan is the deterministic network fault injector behind the v8
// tests: seeded per-link latency/jitter/drop/duplication/corruption/
// reordering plus scheduled partitions (Partition/Heal), consulted by
// the TCP framing layer around every physical write and by the
// loopback network around every delivery. It composes with ChaosPlan
// — kills schedule who dies, the net plan schedules which links lie —
// and powers the partition conformance suite: a partition shorter
// than the grace must be invisible (zero deaths, zero replayed tasks,
// exact optimum) on every transport and topology.
//
// Transports that implement Meter report frames, bytes, steal batch
// occupancy, and session resumes; the engine folds those into its
// Stats.
//
// # Zero-allocation wire hot path
//
// The steady-state frame path allocates nothing per frame, in either
// direction. Encoding goes through a per-connection scratch buffer
// pre-sized to the common header-only frame shapes; sendMany flushes a
// whole batch (steal replies, coalesced acks) as one vectored write
// from pooled batch buffers; the retransmit log stores pooled frame
// images that are recycled when an ack trims the log or the session
// ends; and the read loop decodes from a per-connection image reused
// across frames (the frame header is consumed via the buffered
// reader's own storage rather than read into a local, which would
// escape through the io.Reader interface and cost one heap allocation
// per frame). BenchmarkHotPathWireAllocs measures the census — zero
// allocations per send→recv frame, ~0.13 per frame across vectored
// batches — and BENCH_transport.json gates it at one allocation per
// frame with no slack, since allocation counts do not wobble with host
// speed.
//
// # Codec registration contract
//
// Tasks cross the wire as WireTask values carrying an opaque encoded
// node, so dist imports nothing from internal/core and new transports
// (shared-memory IPC, RDMA, a message-queue fabric) can be added
// without touching the search engine. The encoding is owned by the
// application's core.Codec: every locality of a deployment must
// construct the same problem with the same codec (the spec handshake
// guards the former; codecs are not negotiated). Applications register
// their compact codec by exposing a Codec() constructor that the CLI's
// -dist app table picks up — see internal/cli/dist.go — with
// core.GobCodec as the fallback for nodes without a hand-written
// encoding.
package dist
