package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"yewpar/internal/dist"
)

// boundSink is the incumbent's knowledge-management face as the fabric
// sees it: a per-locality monotonic bound cache.
type boundSink interface {
	localBest(loc int) int64
	applyRemote(loc int, obj int64)
}

// fabric binds the engine to its communication substrate: one
// dist.Transport per in-process locality. Single-process runs host all
// localities on a loopback network (newLoopbackFabric); a distributed
// process hosts exactly one locality whose transport reaches the other
// OS processes (newDistFabric). Everything above the fabric — pools,
// visitors, coordinations — is identical in both deployments.
type fabric[N any] struct {
	trs   []dist.Transport // in-process localities, parallel to locs
	locs  []*locState[N]
	codec Codec[N]
	wire  bool // tasks leave the process: encode on steal hand-over
	// hasRoot marks the locality that seeds the search root (the
	// coordinator); every in-process run has it.
	hasRoot bool
	size    int // global locality count across all processes

	bounds boundSink  // set for optimisation searches
	cancel *canceller // set at start
	net    *dist.LoopbackNetwork

	// cancelInfo, when set (decision searches), supplies the objective
	// and encoded witness a Cancel broadcast carries, so the witness
	// survives its finder's death.
	cancelInfo func() (int64, []byte)
	// deaths counts distinct peer deaths observed by this process's
	// localities (each dead rank once, however many localities see it).
	deaths atomic.Int64
}

// newLoopbackFabric builds the single-process fabric: cfg.Localities
// localities on a loopback network with the configured steal and bound
// latencies. This is what subsumes the old simulated topology — the
// same Transport path a cluster run uses, minus the serialisation.
func newLoopbackFabric[N any](cfg Config) *fabric[N] {
	net := dist.NewLoopback(cfg.Localities, dist.LoopbackOptions{
		StealLatency: cfg.StealLatency,
		BoundLatency: cfg.BoundLatency,
		Wave:         cfg.Topology == dist.TopologyMesh,
		Fault:        cfg.NetFault,
	})
	f := &fabric[N]{
		trs:     net.Transports(),
		hasRoot: true,
		size:    cfg.Localities,
		net:     net,
	}
	for i := range f.trs {
		f.locs = append(f.locs, &locState[N]{idx: i, rank: i, fab: f})
	}
	return f
}

// newDistFabric builds one distributed process's fabric: a single
// locality on the given transport, encoding stolen tasks with codec.
// Only the coordinator (rank 0) seeds the root.
func newDistFabric[N any](tr dist.Transport, codec Codec[N]) *fabric[N] {
	f := &fabric[N]{
		trs:     []dist.Transport{tr},
		codec:   codec,
		wire:    true,
		hasRoot: tr.Rank() == 0,
		size:    tr.Size(),
	}
	f.locs = []*locState[N]{{idx: 0, rank: tr.Rank(), fab: f}}
	return f
}

// start attaches the localities to their transports and wires the
// canceller's broadcast. Must run after pools are installed (engine
// construction) and before any search worker starts.
func (f *fabric[N]) start(cancel *canceller) {
	f.cancel = cancel
	cancel.bcast = func() {
		var obj int64
		var witness []byte
		if f.cancelInfo != nil {
			obj, witness = f.cancelInfo()
		}
		f.trs[0].Cancel(obj, witness)
	}
	for i, tr := range f.trs {
		tr.Start(f.locs[i])
	}
}

// close releases an owned loopback network. Distributed transports are
// owned by the caller (they outlive the search for result gathering).
func (f *fabric[N]) close() {
	if f.net != nil {
		f.net.Close()
	}
}

// wireStats folds the transport-level traffic counters of this
// process's localities into s. Call after all workers have joined.
func (f *fabric[N]) wireStats(s *Stats) {
	for _, tr := range f.trs {
		if m, ok := tr.(dist.Meter); ok {
			ws := m.Wire()
			s.Frames += ws.FramesSent
			s.WireBytes += ws.BytesSent
			s.BatchTasks += ws.StealTasks
			s.BatchReplies += ws.StealReplies
			s.LinkResumes += ws.Resumes
		}
	}
}

// faultStats folds the fault-tolerance counters — deaths observed,
// ledger retention peak, subtree roots replayed — into s. Call after
// all workers have joined.
func (f *fabric[N]) faultStats(s *Stats) {
	s.Deaths += f.deaths.Load()
	for _, loc := range f.locs {
		if loc.led == nil {
			continue
		}
		peak, replayed := loc.led.stats()
		if int64(peak) > s.LedgerPeak {
			s.LedgerPeak = int64(peak)
		}
		s.ReplayedTasks += replayed
	}
}

// memStats folds the memory-governor counters — pool residency peaks,
// tasks and bytes spilled — into s. Call after all workers have joined.
func (f *fabric[N]) memStats(s *Stats) {
	for _, loc := range f.locs {
		sp, _ := loc.pool.(*ShardedPool[N])
		if sp == nil {
			continue
		}
		peak := sp.PeakTasks()
		if peak > s.PoolPeakTasks {
			s.PoolPeakTasks = peak
		}
		if m := loc.mem; m != nil {
			if pb := peak * m.perTask.Load(); pb > s.PoolPeakBytes {
				s.PoolPeakBytes = pb
			}
			s.SpilledTasks += m.spilledTotal.Load()
			s.SpillBytes += m.spillBytes.Load()
		}
	}
}

// locState is one in-process locality's engine endpoint: the
// dist.Handler serving its peers. The pool is installed by the engine
// before the fabric starts; coordinations without pools (sequential,
// stack-stealing) simply serve no transport steals.
type locState[N any] struct {
	idx  int // index among in-process localities
	rank int // global rank
	pool Pool[N]
	led  *ledger[N]   // supervision ledger; nil for pool-less coordinations
	mem  *memState[N] // memory accountant (set with the pool)
	// split, when set (stack-stealing runs), is the rendezvous through
	// which a remote kSplit request reaches this locality's running
	// workers' live generator stacks.
	split *splitGate[N]
	fab   *fabric[N]
	// wake, when set (by the engine's topology), releases a parked
	// worker of this locality after work arrives from outside the
	// worker loops — an adopted late steal reply or batch extra.
	wake func()
}

var _ dist.Handler = (*locState[string])(nil)
var _ dist.MultiStealer = (*locState[string])(nil)
var _ dist.StealRanker = (*locState[string])(nil)
var _ dist.StackSplitter = (*locState[string])(nil)

// famDone records one drain of a family's supervision counter; the
// last drain acks the origin, retiring the ledger entry whose replay
// would otherwise cover this subtree. On the loopback network the ack
// is delivered synchronously, so the drain can cascade up a hand-over
// chain within this call.
func (h *locState[N]) famDone(f *family) {
	if f == nil {
		return
	}
	if f.pending.Add(-1) == 0 {
		h.fab.trs[h.idx].Ack(dist.TaskOrigin(f.id), f.id)
	}
}

// ServeSteal implements dist.Handler: hand the thief the shallowest
// spare task, stamped with this locality's current bound so the thief
// prunes with knowledge at least as fresh as the victim's, and
// retained in the ledger under a freshly minted hand-over id until the
// thief acks the subtree's completion.
func (h *locState[N]) ServeSteal(thief int) (dist.WireTask, bool) {
	if h.pool == nil {
		return dist.WireTask{}, false
	}
	t, ok := h.pool.Steal()
	if !ok {
		return dist.WireTask{}, false
	}
	return h.exportTask(thief, t)
}

// exportTask hands one registered local task over to thief: ledger
// entry minted, bound stamped, node encoded on a wire fabric. On
// failure the task goes back to the pool (it is registered live work)
// and false is reported.
func (h *locState[N]) exportTask(thief int, t Task[N]) (dist.WireTask, bool) {
	id, ok := h.handOver(thief, t)
	if !ok {
		// Dead thief or full ledger: keep the task, serve nothing.
		h.pool.Push(t)
		return dist.WireTask{}, false
	}
	wt := dist.WireTask{ID: id, Depth: t.Depth, Prio: int(t.Prio), Bound: math.MinInt64}
	if b := h.fab.bounds; b != nil {
		wt.Bound = b.localBest(h.idx)
	}
	if h.fab.wire {
		bs, err := h.fab.codec.EncodeTo(nil, t.Node)
		if err != nil {
			// An unencodable node is a deployment bug; keep the task
			// rather than lose it, and let the thief look elsewhere.
			h.unwind(id, t)
			return dist.WireTask{}, false
		}
		wt.Payload = bs
	} else {
		wt.Local = t
	}
	return wt, true
}

// handOver retains t in the ledger for the thief. Coordinations
// without a ledger (none today: every pool-based coordination gets
// one) hand over unsupervised with id 0.
func (h *locState[N]) handOver(thief int, t Task[N]) (uint64, bool) {
	if h.led == nil {
		return 0, true
	}
	return h.led.handOver(thief, t)
}

// unwind takes back a hand-over that failed after its ledger entry was
// minted (encode error): the entry is retired without continuing any
// family drain — the task never left — and the task goes back to the
// pool.
func (h *locState[N]) unwind(id uint64, t Task[N]) {
	if h.led != nil && id != 0 {
		h.led.retire(id)
	}
	h.pool.Push(t)
}

// ServeStealMulti implements dist.MultiStealer for transports whose
// steal replies carry batches, under a steal-half policy: one exchange
// never takes more than half of the victim's backlog (rounded up, so a
// single spare task still travels), keeping a batching thief from
// starving the locality that is actually producing work. On a wire
// fabric the whole batch is encoded into one backing buffer through
// the codec's append path — one allocation per reply, not per task.
func (h *locState[N]) ServeStealMulti(thief, max int) []dist.WireTask {
	if h.pool == nil {
		return nil
	}
	if half := (h.pool.Size() + 1) / 2; max > half {
		max = half
	}
	if max < 1 {
		max = 1
	}
	if !h.fab.wire {
		var out []dist.WireTask
		for len(out) < max {
			wt, ok := h.ServeSteal(thief)
			if !ok {
				break
			}
			out = append(out, wt)
		}
		return out
	}
	bound := int64(math.MinInt64)
	if b := h.fab.bounds; b != nil {
		bound = b.localBest(h.idx)
	}
	// Offsets, not subslices, while encoding: append growth may move
	// the backing array, and payloads are sliced out only at the end.
	type span struct {
		start, end, depth, prio int
		id                      uint64
	}
	var backing []byte
	var spans []span
	for len(spans) < max {
		t, ok := h.pool.Steal()
		if !ok {
			break
		}
		id, ok := h.handOver(thief, t)
		if !ok {
			h.pool.Push(t)
			break
		}
		nb, err := h.fab.codec.EncodeTo(backing, t.Node)
		if err != nil {
			h.unwind(id, t)
			break
		}
		spans = append(spans, span{start: len(backing), end: len(nb), depth: t.Depth, prio: int(t.Prio), id: id})
		backing = nb
	}
	out := make([]dist.WireTask, len(spans))
	for i, sp := range spans {
		out[i] = dist.WireTask{
			Payload: backing[sp.start:sp.end:sp.end],
			ID:      sp.id,
			Depth:   sp.depth,
			Prio:    sp.prio,
			Bound:   bound,
		}
	}
	return out
}

// BestStealPrio implements dist.StealRanker: the rank (priority under
// ordered scheduling, depth otherwise) of the best task a thief would
// get from this locality's pool. Transports piggyback it on outgoing
// frames so peers can pick the most promising victim.
func (h *locState[N]) BestStealPrio() (int, bool) {
	if h.pool == nil {
		return 0, false
	}
	// Pressure advertisement, the memory governor's cheapest response: a
	// locality over its budget's soft threshold claims the best possible
	// rank, so priority-aware thieves drain it before anyone else —
	// every task handed away is memory it no longer holds.
	if h.mem != nil && h.mem.pressured(int64(h.pool.Size())) {
		return 0, true
	}
	if sr, ok := h.pool.(stealRanked); ok {
		r := sr.StealRank()
		if r < 0 {
			return h.splitRank()
		}
		return r, true
	}
	if h.pool.Size() > 0 {
		return 0, true
	}
	return h.splitRank()
}

// splitRank advertises splittable (not yet materialised) work: under
// the stack-stealing coordination a locality whose pool is empty but
// whose workers hold live generator stacks still has work a kSplit can
// export. It ranks worst — materialising costs the victim a split — so
// thieves prefer pool-resident work anywhere else first.
func (h *locState[N]) splitRank() (int, bool) {
	if g := h.split; g != nil && g.splittable() {
		return maxTaskPrio, true
	}
	return 0, false
}

// ServeSplit implements dist.StackSplitter: export up to max tasks to a
// work-starved peer, from the pool's spares when it has any, otherwise
// by asking a running worker to split the bottom of its live generator
// stack (the paper's (spawn-stack) rule, on demand over the wire). May
// block briefly — transports serve it off their read loops.
func (h *locState[N]) ServeSplit(thief, max int) []dist.WireTask {
	if h.pool == nil {
		return nil
	}
	if out := h.ServeStealMulti(thief, max); len(out) > 0 {
		return out
	}
	g := h.split
	if g == nil {
		return nil
	}
	var out []dist.WireTask
	for _, t := range g.request(max, splitServeWait, nil) {
		if wt, ok := h.exportTask(thief, t); ok {
			out = append(out, wt)
		}
	}
	return out
}

// OnBound implements dist.Handler: merge a peer's bound into the local
// cache (monotonically — late deliveries are harmless).
func (h *locState[N]) OnBound(from int, obj int64) {
	if b := h.fab.bounds; b != nil {
		b.applyRemote(h.idx, obj)
	}
}

// OnCancel implements dist.Handler: latch the local short-circuit
// without re-broadcasting (the originator already reached everyone).
func (h *locState[N]) OnCancel(from int) {
	if c := h.fab.cancel; c != nil {
		c.cancelQuiet()
	}
}

// adopt turns a received WireTask into a locally registered engine
// task: the bound snapshot is merged, the receipt is registered with
// the global live count (the victim's ledger copy keeps its own
// registration until our ack, so the task is never uncovered), and a
// fresh supervision family is opened under the hand-over id.
func (h *locState[N]) adopt(wt dist.WireTask) Task[N] {
	if b := h.fab.bounds; b != nil && wt.Bound > math.MinInt64 {
		b.applyRemote(h.idx, wt.Bound)
	}
	var t Task[N]
	if wt.Local != nil {
		t = wt.Local.(Task[N])
	} else {
		n, err := h.fab.codec.Decode(wt.Payload)
		if err != nil {
			// Mismatched codecs across a deployment are unrecoverable:
			// the task cannot be run here and returning it is
			// impossible.
			panic(fmt.Sprintf("core: decoding stolen task: %v", err))
		}
		t = Task[N]{Node: n, Depth: wt.Depth, Prio: int32(wt.Prio)}
	}
	t.fam = nil
	if wt.ID != 0 {
		t.fam = newFamily(wt.ID)
	}
	h.fab.trs[h.idx].AddTasks(1)
	return t
}

// OnTask implements dist.Handler: adopt a stolen task whose steal
// request had already timed out when the reply arrived, or a batch
// extra beyond the requesting worker's slot. Its victim retains it
// until we ack, so it must run here (or be replayed there) or the
// search never terminates.
func (h *locState[N]) OnTask(wt dist.WireTask) {
	if h.pool == nil {
		return
	}
	h.pool.Push(h.adopt(wt))
	if h.wake != nil {
		h.wake()
	}
}

// OnAck implements dist.Handler: a thief certifies that the subtree
// handed over under id has fully completed. The retained copy is
// retired, its registration released, and — if the handed-over task
// was itself part of a received family — the family drain continues,
// cascading the certificate towards the hand-over chain's origin.
func (h *locState[N]) OnAck(from int, id uint64) {
	if h.led == nil {
		return
	}
	fam, ok := h.led.retire(id)
	if !ok {
		return // already replayed by a death race; the replay owns the task now
	}
	h.fab.trs[h.idx].AddTasks(-1)
	h.famDone(fam)
}
