package core

// runDepthBounded is the Depth-Bounded coordination, implementing the
// (spawn-depth) rule: every node at depth < d_cutoff has all its
// children spawned as tasks, queued in traversal order on the worker's
// pool shard; nodes at or below the cutoff are searched in place.
// Spawns happen as tasks execute rather than upfront, matching
// Section 4.2. Both the spawn loop and the in-place expansion draw
// generators from the worker's recycling cache (the task root expands
// at stack level 0, exactly like expandBelow's root). Under an ordered
// scheduling mode each spawned child carries its priority: its path
// discrepancy (the parent task's, plus one for every non-leftmost
// branch) or its bound distance, assigned by the engine's prioAssigner.
func runDepthBounded[S, N any](e *engine[S, N], visitors []visitor[N], root N) {
	e.runPoolWorkers(root, visitors, func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
		defer e.finishTask(w, t)
		if e.cancel.cancelled() {
			return
		}
		if v.visit(t.Node) != descend {
			return
		}
		gc := e.caches[w]
		// Memory pressure deepens the cutoff: above the budget's soft
		// threshold the worker searches in place instead of spawning,
		// trading parallel slack for zero frontier growth. Checked per
		// task (two atomic loads), so relief is immediate once thieves
		// or the spiller bring the pool back down.
		if t.Depth < e.cfg.DCutoff && !e.memPressured(w) {
			g := gc.gen(0, t.Node)
			for i := 0; g.HasNext(); i++ {
				child := g.Next()
				e.spawnTask(w, sh, Task[N]{
					Node:  child,
					Depth: t.Depth + 1,
					Prio:  e.prio.childPrio(t.Prio, i, child),
					fam:   t.fam,
				})
			}
			return
		}
		expandBelow(gc, v, e.cancel, sh, t.Node)
	})
}
