// SIP: subgraph-isomorphism decision search under the Stack-Stealing
// skeleton — the combination the paper's Table 2 finds best for SIP
// (speedups around 100x on 120 workers). Decision searches
// short-circuit: the moment any worker completes an embedding, the
// (shortcircuit) rule cancels all outstanding work.
package main

import (
	"fmt"

	"yewpar/internal/apps/sip"
	"yewpar/internal/core"
)

func main() {
	s := sip.GenerateSat(90, 0.32, 30, 0.1, 309)
	fmt.Printf("pattern: %v\ntarget : %v\n\n", s.P, s.T)

	mapping, found, stats := sip.Solve(s, core.StackStealing, core.Config{Workers: 8, Chunked: true})
	fmt.Printf("embedding found: %v (%d nodes, %d steals, %v)\n",
		found, stats.Nodes, stats.StealsOK, stats.Elapsed.Round(1000))
	if found {
		fmt.Printf("pattern vertex -> target vertex: %v\n", mapping)
		fmt.Printf("verified: %v\n", sip.VerifyEmbedding(s.P, s.T, mapping))
	}

	// An unsatisfiable variant must prove exhaustively that no
	// embedding exists — no short-circuit possible.
	u := sip.GenerateRandom(60, 0.3, 14, 0.6, 11)
	_, found2, stats2 := sip.Solve(u, core.StackStealing, core.Config{Workers: 8})
	fmt.Printf("\nunsat probe: found=%v after %d nodes (%v)\n",
		found2, stats2.Nodes, stats2.Elapsed.Round(1000))
}
