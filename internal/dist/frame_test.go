package dist

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{Kind: kHello, Want: wireVersion, Blob: []byte("app=x n=10")},
		{Kind: kWelcome, To: 3, Want: 5, Blob: []byte("app=x n=10")},
		{Kind: kReject, Blob: []byte("spec mismatch")},
		{Kind: kSteal, From: 2, To: 1, Seq: 77, Want: 4},
		{Kind: kStealR, From: 1, To: 2, Seq: 77, Tasks: []WireTask{
			{Payload: []byte("abc"), ID: TaskID(1, 9), Depth: 3, Prio: 12, Bound: -9},
			{Payload: []byte{}, Depth: 0, Bound: math.MinInt64},
			{Payload: []byte("zzzz"), ID: TaskID(2, 1<<40), Depth: 1 << 20, Prio: 1023, Bound: math.MaxInt64},
		}},
		{Kind: kStealR, From: 1, To: 2, Seq: 78}, // empty-handed
		{Kind: kBound, From: 4, Obj: -123456789, Blob: []byte{}},
		{Kind: kCancel, From: 1, Blob: []byte{}},
		{Kind: kDelta, From: 2, Delta: -42},
		{Kind: kTerminate},
		{Kind: kGather, From: 3, Blob: []byte{1, 2, 3}},
		{Kind: kGather, From: 3, Blob: []byte{}},
		{Kind: kSteal, From: 1, To: 2, Seq: 1, Want: 8, Delta: 17, PB: -5, HasPB: true},
		{Kind: kBound, From: 0, Obj: math.MinInt64 + 1, PB: math.MaxInt64, HasPB: true, Blob: []byte{}},
		// v3: best-available-priority summaries, alone and with the
		// other optional header fields; PrioNone advertises empty.
		{Kind: kDelta, From: 2, Delta: 3, PS: 5, HasPS: true},
		{Kind: kSteal, From: 1, To: 2, Seq: 2, Want: 4, PS: PrioNone, HasPS: true},
		{Kind: kStealR, From: 2, To: 1, Seq: 2, Delta: -1, PB: 9, HasPB: true, PS: 0, HasPS: true,
			Tasks: []WireTask{{Payload: []byte("p"), ID: TaskID(0, 3), Depth: 1, Prio: 2, Bound: 4}}},
		// v4: node-carrying bounds and cancels, acks, death notices,
		// heartbeats.
		{Kind: kBound, From: 2, Obj: 40, Blob: []byte("encoded-incumbent")},
		{Kind: kCancel, From: 3, Obj: 17, Blob: []byte("encoded-witness")},
		{Kind: kAck, From: 2, To: 1, Acks: []uint64{TaskID(1, 44)}},
		{Kind: kAck, From: 1, Acks: []uint64{TaskID(0, math.MaxUint32), TaskID(2, 1), TaskID(0, 7)},
			Delta: -3, PB: 8, HasPB: true},
		{Kind: kAck, From: 1}, // empty batch (drained elsewhere)
		{Kind: kDeath, From: 0, Want: 3},
		{Kind: kPing, From: 2},
		{Kind: kPing, From: 1, Delta: 5, PB: -2, HasPB: true, PS: 1, HasPS: true},
		// v5: mesh registration, peer tables, direct peer hellos,
		// epidemic bounds, and termination-wave tokens.
		{Kind: kPeerAddr, Blob: []byte("10.0.0.7:41231")},
		{Kind: kPeers, To: 2, Blob: appendPeerTable(nil, []string{"", "10.0.0.7:41231", "10.0.0.9:35011"})},
		{Kind: kPeerHello, From: 3, Want: wireVersion},
		{Kind: kGossip, From: 2, To: 1, Obj: 456},
		{Kind: kGossip, From: 0, Obj: math.MinInt64 + 1, PB: 456, HasPB: true, PS: 2, HasPS: true},
		{Kind: kToken, From: 1, To: 2, Seq: 9, Obj: 0, Want: 0},
		{Kind: kToken, From: 4, To: 0, Seq: 1 << 33, Obj: -17, Want: tokBlack | tokActive},
		{Kind: kToken, From: 2, To: 3, Seq: 12, Obj: 3, Want: tokActive, PB: 7, HasPB: true},
		// v6: split-steal requests (answered by ordinary kStealR).
		{Kind: kSplit, From: 2, To: 1, Seq: 91, Want: 64},
		{Kind: kSplit, From: 0, To: 3, Seq: 1 << 30, Want: 1, Delta: -2, PB: 11, HasPB: true, PS: PrioNone, HasPS: true},
	}
	for i, f := range frames {
		body := appendFrame(nil, &f)
		var got frame
		if err := parseFrame(body, &got); err != nil {
			t.Fatalf("frame %d (%+v): parse: %v", i, f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame %d round trip:\n got %+v\nwant %+v", i, got, f)
		}
	}
}

// Truncations and bit flips must error, never panic or over-allocate:
// frame bodies come off the network.
func TestFrameParseRobustness(t *testing.T) {
	bodies := [][]byte{
		appendFrame(nil, &frame{Kind: kStealR, From: 1, To: 2, Seq: 9, Delta: 3, PB: 11, HasPB: true, PS: 2, HasPS: true,
			Tasks: []WireTask{{Payload: []byte("payload-bytes"), ID: TaskID(1, 77), Depth: 5, Prio: 7, Bound: 40}}}),
		// A v5 body too: the peer table and token paths parse from the
		// same reader and deserve the same truncation/bit-flip sweep.
		appendFrame(nil, &frame{Kind: kPeers, To: 1, PB: 3, HasPB: true,
			Blob: appendPeerTable(nil, []string{"", "h1:1", "h2:2"})}),
		appendFrame(nil, &frame{Kind: kToken, From: 2, To: 0, Seq: 41, Obj: -2, Want: tokBlack}),
	}
	rng := rand.New(rand.NewSource(42))
	for _, body := range bodies {
		for cut := 0; cut < len(body); cut++ {
			var g frame
			if err := parseFrame(body[:cut], &g); err == nil {
				t.Fatalf("parse of %d/%d-byte truncation succeeded", cut, len(body))
			}
		}
		for trial := 0; trial < 2000; trial++ {
			mut := append([]byte(nil), body...)
			for flips := 1 + rng.Intn(3); flips > 0; flips-- {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			var g frame
			_ = parseFrame(mut, &g) // must not panic
		}
		var g frame
		if err := parseFrame(append(append([]byte(nil), body...), 0xFF), &g); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	}
	var g frame
	if err := parseFrame([]byte{byte(kToken + 1), 0}, &g); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// The peer table codec bounds its inputs: tables come out of a
// registration frame, before the sender is trusted.
func TestPeerTableRoundTripAndRobustness(t *testing.T) {
	tables := [][]string{
		{},
		{""},
		{"", "127.0.0.1:9001"},
		{"", "10.1.2.3:1", "10.1.2.4:2", "10.1.2.5:3"},
	}
	for _, addrs := range tables {
		b := appendPeerTable(nil, addrs)
		got, err := parsePeerTable(b)
		if err != nil {
			t.Fatalf("table %v: %v", addrs, err)
		}
		if len(got) != len(addrs) {
			t.Fatalf("table %v round-tripped to %v", addrs, got)
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("slot %d = %q, want %q", i, got[i], addrs[i])
			}
		}
	}
	full := appendPeerTable(nil, []string{"", "a:1", "b:2"})
	for cut := 0; cut < len(full); cut++ {
		if _, err := parsePeerTable(full[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := parsePeerTable(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A claimed count beyond the table bound must be rejected before
	// any allocation proportional to it.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := parsePeerTable(huge); err == nil {
		t.Fatal("oversized table accepted")
	}
}
