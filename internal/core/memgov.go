package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// The memory governor bounds what a locality's workpool may hold
// resident (Config.PoolBudget, in bytes). Search frontiers — especially
// under best-first or bound-ordered scheduling — can dwarf the tree
// actually visited, so an unbounded pool is what stands between solving
// an instance and OOMing on it. The governor translates the byte budget
// into task-count thresholds using a per-task estimate calibrated from
// the root node's encoded size, then responds to pressure in preference
// order:
//
//  1. Advertise: a pressured locality reports steal rank 0
//     (BestStealPrio), so priority-aware thieves drain it first —
//     handing work away is free memory relief.
//  2. Deepen: the pool-based coordinations trade spawning for inline
//     expansion — Depth-Bounded takes the sequential expandBelow branch
//     even above d_cutoff, Budget stops shedding its stack — so the
//     frontier stops growing at the source.
//  3. Spill: past the hard threshold the coldest tasks (deepest depth,
//     or worst priority) are batch-encoded through the app Codec into a
//     per-locality disk segment and re-admitted when the in-RAM pool
//     drains.
//
// Spilling is result-invariant: a spilled task stays a registered live
// task (termination cannot fire past it), keeps its supervision family
// in memory, and re-enters the pool unchanged.

// spillTaskOverhead is the per-task resident-memory estimate beyond the
// encoded node: Task struct, bucket slot, and slack.
const spillTaskOverhead = 64

// memFloorTasks is the minimum hard threshold: a budget smaller than a
// handful of tasks would spill on every spawn without bounding anything
// meaningfully.
const memFloorTasks = 16

// spillSegMax caps tasks per spill segment file.
const spillSegMax = 4096

// memState is one locality's memory accountant. It exists for every
// pool-based run (so peak accounting and the CLI mem: line are always
// live); the spill store and pressure thresholds engage only under a
// budget.
type memState[N any] struct {
	budget  int64 // bytes; 0 = unbounded (accounting only)
	perTask atomic.Int64
	hard    atomic.Int64 // resident tasks beyond this: spill
	soft    atomic.Int64 // spill down to this; pressure signal above it

	spillMu sync.Mutex // at most one spiller per locality
	store   *spillStore[N]

	onDisk       atomic.Int64 // tasks currently parked in segments
	spilledTotal atomic.Int64 // cumulative tasks ever spilled
	spillBytes   atomic.Int64 // cumulative segment bytes written
}

func newMemState[N any](budget int64, spillDir string, codec Codec[N]) *memState[N] {
	ms := &memState[N]{budget: budget}
	if budget > 0 {
		ms.store = &spillStore[N]{base: spillDir, codec: codec}
	}
	ms.perTask.Store(spillTaskOverhead) // pre-calibration placeholder
	ms.setThresholds()
	return ms
}

// calibrate fixes the per-task byte estimate from a sample node (the
// search root) and derives the task-count thresholds. A node that the
// codec cannot encode keeps the placeholder estimate — such a
// deployment cannot spill either, and maybeSpill degrades to counting.
func (ms *memState[N]) calibrate(codec Codec[N], sample N) {
	if b, err := codec.Encode(sample); err == nil {
		ms.perTask.Store(int64(len(b)) + spillTaskOverhead)
	}
	ms.setThresholds()
}

func (ms *memState[N]) setThresholds() {
	if ms.budget <= 0 {
		ms.hard.Store(int64(^uint64(0) >> 1))
		ms.soft.Store(int64(^uint64(0) >> 1))
		return
	}
	hard := ms.budget / ms.perTask.Load()
	if hard < memFloorTasks {
		hard = memFloorTasks
	}
	soft := hard * 3 / 4
	if soft < 1 {
		soft = 1
	}
	ms.hard.Store(hard)
	ms.soft.Store(soft)
}

// pressured reports whether the locality is above its soft threshold —
// the signal the advertise and deepen responses key off.
func (ms *memState[N]) pressured(resident int64) bool {
	return ms.budget > 0 && resident > ms.soft.Load()
}

// maybeSpill is the spawn-path hook: when the pool has grown past the
// hard threshold, the spawning worker parks the coldest tasks on disk
// until the pool is back at the soft threshold. TryLock keeps it to one
// spiller per locality — everyone else keeps searching (charging the
// producing worker is itself backpressure). Tasks whose segment cannot
// be written (disk full, unencodable node) are pushed straight back:
// they are registered live work and must not be lost.
func (ms *memState[N]) maybeSpill(pool *ShardedPool[N]) {
	if ms.store == nil || pool.Tasks() <= ms.hard.Load() {
		return
	}
	if !ms.spillMu.TryLock() {
		return
	}
	defer ms.spillMu.Unlock()
	soft := ms.soft.Load()
	for {
		want := pool.Tasks() - soft
		if want <= 0 {
			return
		}
		if want > spillSegMax {
			want = spillSegMax
		}
		batch := pool.SpillBatch(int(want))
		if len(batch) == 0 {
			return
		}
		n, err := ms.store.write(batch)
		if err != nil {
			for _, t := range batch {
				pool.Push(t)
			}
			return
		}
		ms.onDisk.Add(int64(len(batch)))
		ms.spilledTotal.Add(int64(len(batch)))
		ms.spillBytes.Add(n)
	}
}

// readmit drains one spilled segment back into the pool when a worker
// finds the in-RAM frontier empty: the first task goes straight to the
// caller, the rest to the pool (waking parked siblings to claim them).
func (ms *memState[N]) readmit(pool *ShardedPool[N], wake func()) (Task[N], bool) {
	var zero Task[N]
	if ms.store == nil || ms.onDisk.Load() <= 0 {
		return zero, false
	}
	ts, ok := ms.store.takeSegment()
	if !ok {
		return zero, false
	}
	ms.onDisk.Add(-int64(len(ts)))
	for _, t := range ts[1:] {
		pool.Push(t)
	}
	if wake != nil && len(ts) > 1 {
		wake()
	}
	return ts[0], true
}

// close removes the locality's spill directory and everything in it.
// Safe to call multiple times and with segments still resident (a
// cancelled search abandons its frontier, spilled or not).
func (ms *memState[N]) close() {
	if ms.store != nil {
		ms.store.close()
	}
}

// spillStore owns one locality's spill segments: each spill batch
// becomes one file under a directory created by os.MkdirTemp on first
// use and removed wholesale by close. Segments are process-local —
// written and read back by the same locality — so only the node bytes
// go to disk; each task's supervision family pointer (in-memory state
// that must not be severed) is retained alongside the segment record.
type spillStore[N any] struct {
	mu     sync.Mutex
	base   string // Config.SpillDir; "" = os.TempDir()
	codec  Codec[N]
	dir    string
	seq    int
	segs   []spillSeg
	closed bool
}

type spillSeg struct {
	path string
	n    int
	fams []*family
}

// write encodes one batch into a new segment file, LIFO-stacked for
// takeSegment. Returns the bytes written.
func (st *spillStore[N]) write(ts []Task[N]) (int64, error) {
	var buf []byte
	var scratch [binary.MaxVarintLen64]byte
	fams := make([]*family, len(ts))
	for i, t := range ts {
		fams[i] = t.fam
		nb, err := st.codec.EncodeTo(nil, t.Node)
		if err != nil {
			return 0, err
		}
		buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(len(nb)))]...)
		buf = append(buf, nb...)
		buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(t.Depth))]...)
		pr := t.Prio
		if pr < 0 {
			pr = 0
		}
		buf = append(buf, scratch[:binary.PutUvarint(scratch[:], uint64(pr))]...)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, fmt.Errorf("core: spill store closed")
	}
	if st.dir == "" {
		dir, err := os.MkdirTemp(st.base, "yewpar-spill-*")
		if err != nil {
			return 0, err
		}
		st.dir = dir
	}
	path := filepath.Join(st.dir, fmt.Sprintf("seg-%06d", st.seq))
	st.seq++
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		return 0, err
	}
	st.segs = append(st.segs, spillSeg{path: path, n: len(ts), fams: fams})
	return int64(len(buf)), nil
}

// takeSegment pops the most recent segment, decodes its tasks, and
// deletes the file. A segment that cannot be read back holds registered
// live tasks that exist nowhere else, so corruption is unrecoverable —
// the same contract as decoding a stolen task.
func (st *spillStore[N]) takeSegment() ([]Task[N], bool) {
	st.mu.Lock()
	if st.closed || len(st.segs) == 0 {
		st.mu.Unlock()
		return nil, false
	}
	seg := st.segs[len(st.segs)-1]
	st.segs = st.segs[:len(st.segs)-1]
	st.mu.Unlock()

	buf, err := os.ReadFile(seg.path)
	if err != nil {
		panic(fmt.Sprintf("core: reading spill segment: %v", err))
	}
	os.Remove(seg.path)
	ts := make([]Task[N], 0, seg.n)
	for i := 0; i < seg.n; i++ {
		nlen, k := binary.Uvarint(buf)
		if k <= 0 || uint64(len(buf)-k) < nlen {
			panic("core: corrupt spill segment")
		}
		buf = buf[k:]
		node, err := st.codec.Decode(buf[:nlen:nlen])
		if err != nil {
			panic(fmt.Sprintf("core: decoding spilled task: %v", err))
		}
		buf = buf[nlen:]
		depth, k := binary.Uvarint(buf)
		if k <= 0 {
			panic("core: corrupt spill segment")
		}
		buf = buf[k:]
		prio, k := binary.Uvarint(buf)
		if k <= 0 {
			panic("core: corrupt spill segment")
		}
		buf = buf[k:]
		ts = append(ts, Task[N]{Node: node, Depth: int(depth), Prio: int32(prio), fam: seg.fams[i]})
	}
	return ts, true
}

// close removes the segment directory. Idempotent.
func (st *spillStore[N]) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	st.segs = nil
	if st.dir != "" {
		os.RemoveAll(st.dir)
		st.dir = ""
	}
}
