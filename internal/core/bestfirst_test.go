package core

import (
	"testing"
)

func TestBestFirstOptFindsMax(t *testing.T) {
	for _, seed := range []int64{1, 3, 23, 29, 31} {
		tree := genTree(seed, 4, 9)
		want := tree.max()
		res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 6, Budget: 8})
		if !res.Found || res.Objective != want {
			t.Errorf("seed %d: got %d (found=%v), want %d", seed, res.Objective, res.Found, want)
		}
	}
}

func TestBestFirstOptSingleWorker(t *testing.T) {
	tree := genTree(7, 4, 9)
	res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 1, Budget: 4})
	if res.Objective != tree.max() {
		t.Fatalf("got %d, want %d", res.Objective, tree.max())
	}
}

func TestBestFirstRequiresBound(t *testing.T) {
	tree := genTree(7, 4, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Bound")
		}
	}()
	BestFirstOpt(tree, testNode{}, tree.optProblem(false), Config{Workers: 2})
}

func TestBestFirstSpawnsWithTinyBudget(t *testing.T) {
	tree := genTree(31, 4, 9)
	res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 4, Budget: 2})
	if res.Stats.Spawns == 0 {
		t.Error("tiny budget spawned nothing")
	}
	if res.Objective != tree.max() {
		t.Errorf("got %d, want %d", res.Objective, tree.max())
	}
}
