package dist

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"
)

// Mesh-specific transport behaviour, beyond the shared conformance
// suite: steal traffic bypasses the coordinator entirely, peer
// priority summaries refresh over the direct links, and bounds
// delivered by gossip stay monotone at every receiver.

// meshDeployment builds a 1+workers TCP mesh and returns the
// transports rank-indexed.
func meshDeployment(t *testing.T, n int) []Transport {
	t.Helper()
	return makeTCP(t, n, WireOptions{Topology: TopologyMesh})
}

// Direct-steal conservation: a worker draining another worker moves
// every task exactly once, and none of the steal traffic crosses the
// coordinator — the whole point of the mesh. The star routes four
// frames per exchange through the hub; here the hub's frame counters
// must stay flat (heartbeats aside) while dozens of exchanges run.
func TestMeshDirectStealConservation(t *testing.T) {
	trs := meshDeployment(t, 3)
	hs := startAll(trs)
	const total = 64
	for i := 0; i < total; i++ {
		hs[1].push(WireTask{Payload: []byte{byte(i)}, Depth: i, Prio: i % 7})
	}
	before := trs[0].(Meter).Wire()

	seen := make(map[byte]int)
	record := func(ts ...WireTask) {
		for _, wt := range ts {
			seen[wt.Payload[0]]++
		}
	}
	exchanges := 0
	for {
		wt, ok, err := trs[2].Steal(1)
		if err != nil {
			t.Fatalf("direct steal: %v", err)
		}
		exchanges++
		if !ok {
			break
		}
		record(wt)
		record(hs[2].drain()...)
	}
	record(hs[1].drain()...) // anything the victim kept

	if len(seen) != total {
		t.Fatalf("saw %d distinct tasks, want %d", len(seen), total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d seen %d times (lost or duplicated)", id, n)
		}
	}

	after := trs[0].(Meter).Wire()
	hubDelta := (after.FramesSent + after.FramesRecv) - (before.FramesSent + before.FramesRecv)
	// The star hub would have relayed 4 frames per exchange (request
	// in, request out, reply in, reply out). Allow a little heartbeat
	// and wave noise, but the steal traffic itself must be absent.
	if hubDelta >= int64(2*exchanges) {
		t.Fatalf("coordinator saw %d frames across %d direct exchanges; steal traffic is crossing the hub", hubDelta, exchanges)
	}
}

// Peer-summary staleness: a thief's view of its victim's best
// stealable priority refreshes from the direct steal reply itself —
// the frame that empties the victim also reports it empty, so the
// thief never re-targets a victim on a summary the theft invalidated.
func TestMeshPeerSummaryStaleness(t *testing.T) {
	trs := meshDeployment(t, 3)
	hs := startAll(trs)
	pa2, ok := trs[2].(PrioAware)
	if !ok {
		t.Fatal("mesh worker is not PrioAware")
	}

	hs[1].push(WireTask{Payload: []byte("x"), Depth: 1, Prio: 4})
	// Gossiped bounds piggyback the sender's summary over the direct
	// peer links; repeat until the fan-out lands on rank 2.
	bound := int64(0)
	eventually(t, "rank 2 to learn rank 1's summary from gossip", func() bool {
		bound++
		trs[1].BroadcastBound(bound, nil)
		p, known := pa2.PeerBestPrio(1)
		return known && p == 4
	})

	// The steal reply that drains rank 1 must itself refresh rank 2's
	// view to empty — no later broadcast required.
	if _, ok, err := trs[2].Steal(1); !ok || err != nil {
		t.Fatalf("steal from stocked rank 1: ok=%v err=%v", ok, err)
	}
	eventually(t, "the steal reply to mark rank 1 empty at rank 2", func() bool {
		p, known := pa2.PeerBestPrio(1)
		return known && p == PrioNone
	})
}

// Gossip bound monotonicity: epidemic spread delivers bounds in no
// particular order and with duplicates, but every endpoint melds
// before delivering — so the sequence each handler observes is
// strictly increasing, and all ranks converge on the global maximum.
func TestMeshGossipBoundMonotonicity(t *testing.T) {
	trs := meshDeployment(t, 4)
	hs := startAll(trs)
	const rounds = 60
	globalMax := int64(0)
	for i := 1; i <= rounds; i++ {
		for r := range trs {
			b := int64(10*i + r)
			if b > globalMax {
				globalMax = b
			}
			trs[r].BroadcastBound(b, nil)
		}
	}
	for r := range trs {
		r := r
		// Every rank converges on at least the best bound some OTHER
		// rank published (its own best is only ever heard as an
		// epidemic echo, so it can't be required).
		want := int64(10*rounds + len(trs) - 1)
		if r == len(trs)-1 {
			want = int64(10*rounds + len(trs) - 2)
		}
		eventually(t, "rank to converge on the global maximum", func() bool {
			return hs[r].boundMax.Load() >= want
		})
	}
	for r := range trs {
		hs[r].mu.Lock()
		bounds := append([]int64{}, hs[r].bounds...)
		hs[r].mu.Unlock()
		if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
			t.Errorf("rank %d delivered a non-monotone bound sequence: %v", r, bounds)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] == bounds[i-1] {
				t.Errorf("rank %d delivered duplicate bound %d", r, bounds[i])
			}
		}
		if len(bounds) > 0 && bounds[len(bounds)-1] > globalMax {
			t.Errorf("rank %d delivered bound %d beyond the published max %d", r, bounds[len(bounds)-1], globalMax)
		}
	}
}

// The coordinator's residual state round-trips through its snapshot:
// spec, peer table, liveness, and the retained incumbent — everything
// a standby would need to adopt the deployment.
func TestMeshHubSnapshotRoundTrip(t *testing.T) {
	trs := meshDeployment(t, 3)
	startAll(trs)
	trs[1].BroadcastBound(42, []byte("best-node"))
	store := trs[0].(IncumbentStore)
	eventually(t, "the hub to retain the incumbent", func() bool {
		obj, _, ok := store.BestKnown()
		return ok && obj == 42
	})
	trs[2].Close()
	awaitDeath(t, trs[1], 2)
	// Give the hub's own death bookkeeping a beat to settle.
	time.Sleep(20 * time.Millisecond)

	blob := trs[0].(*meshHub).Snapshot()
	snap, err := DecodeHubSnapshot(blob)
	if err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	// The stored spec carries the topology fold appended at
	// registration, so a standby adopting it would refuse star dials.
	if snap.Spec != "conformance topology=mesh" || snap.Size != 3 {
		t.Fatalf("snapshot identity = %q/%d, want the topology-folded spec and size 3", snap.Spec, snap.Size)
	}
	if len(snap.PeerAddrs) != 3 || snap.PeerAddrs[0] != "" || snap.PeerAddrs[1] == "" || snap.PeerAddrs[2] == "" {
		t.Fatalf("snapshot peer table = %v", snap.PeerAddrs)
	}
	if !snap.Alive[0] || !snap.Alive[1] || snap.Alive[2] {
		t.Fatalf("snapshot liveness = %v, want rank 2 dead", snap.Alive)
	}
	if !snap.HasBest || snap.BestObj != 42 || string(snap.BestNode) != "best-node" {
		t.Fatalf("snapshot incumbent = %d %q %v", snap.BestObj, snap.BestNode, snap.HasBest)
	}
}

// rawSend writes one v8-framed frame over a bare connection, bypassing
// wconn: registration-rejection tests need to speak broken protocol on
// purpose (while still passing the CRC gate). The link sequence is 0 so
// the receiver treats each frame as out-of-band.
func rawSend(t *testing.T, c net.Conn, f *frame) {
	t.Helper()
	if _, err := c.Write(encodeFrame(nil, f, 0)); err != nil {
		t.Fatalf("raw send: %v", err)
	}
}

func rawRecv(t *testing.T, c net.Conn) *frame {
	t.Helper()
	var f frame
	if _, _, err := readRawFrame(bufio.NewReader(c), &f); err != nil {
		t.Fatalf("raw recv: %v", err)
	}
	return &f
}

// A v4 worker dialing a v5 coordinator is rejected by name — the
// version gate is what lets the wire protocol evolve without silent
// cross-version corruption — and the deployment still completes once a
// well-versioned worker arrives.
func TestMeshRegistrationRejectsOldWireVersion(t *testing.T) {
	opts := WireOptions{Topology: TopologyMesh}
	l, err := NewListenerOpts("127.0.0.1:0", "conformance", opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	type waitRes struct {
		tr  Transport
		err error
	}
	waitCh := make(chan waitRes, 1)
	go func() {
		tr, err := l.Wait(1)
		waitCh <- waitRes{tr, err}
	}()

	c, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	rawSend(t, c, &frame{Kind: kHello, Want: 4, Blob: []byte(topoSpec("conformance", opts))})
	reject := rawRecv(t, c)
	if reject.Kind != kReject {
		t.Fatalf("old-version hello answered with kind %d, want kReject", reject.Kind)
	}
	if msg := string(reject.Blob); !strings.Contains(msg, "wire protocol mismatch") ||
		!strings.Contains(msg, fmt.Sprintf("v%d", wireVersion)) || !strings.Contains(msg, "v4") {
		t.Fatalf("rejection %q does not name both versions", msg)
	}

	// The listener is still accepting: a current-version worker
	// registers and the deployment comes up.
	go func() {
		tr, err := DialOpts(l.Addr(), "conformance", opts)
		if err == nil {
			t.Cleanup(func() { tr.Close() })
		}
	}()
	res := <-waitCh
	if res.err != nil {
		t.Fatalf("wait after rejected candidate: %v", res.err)
	}
	t.Cleanup(func() { res.tr.Close() })
}

// Mesh registration demands a peer address after the hello: a worker
// that never advertises one cannot be dialed by its peers and must be
// turned away during registration, not discovered broken later.
func TestMeshRegistrationRequiresPeerAddr(t *testing.T) {
	opts := WireOptions{Topology: TopologyMesh, RegTimeout: 2 * time.Second}
	l, err := NewListenerOpts("127.0.0.1:0", "conformance", opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	waitErr := make(chan error, 1)
	go func() {
		tr, err := l.Wait(1)
		if err == nil {
			tr.Close()
		}
		waitErr <- err
	}()

	c, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	rawSend(t, c, &frame{Kind: kHello, Want: wireVersion, Blob: []byte(topoSpec("conformance", opts))})
	rawSend(t, c, &frame{Kind: kPing}) // anything but kPeerAddr
	reject := rawRecv(t, c)
	if reject.Kind != kReject || !strings.Contains(string(reject.Blob), "peer address") {
		t.Fatalf("peer-addr-less registration answered with %d %q, want a kReject naming the peer address", reject.Kind, reject.Blob)
	}
	// No other worker arrives: registration times out rather than
	// accepting the broken candidate.
	if err := <-waitErr; err == nil {
		t.Fatal("Wait succeeded without any valid worker")
	}
}

// Star and mesh deployments must not interconnect: the topology is
// folded into the spec either side checks at registration.
func TestTopologySpecMismatchRejected(t *testing.T) {
	l, err := NewListenerOpts("127.0.0.1:0", "conformance", WireOptions{Topology: TopologyMesh, RegTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go func() {
		tr, err := l.Wait(1)
		if err == nil {
			tr.Close()
		}
	}()
	_, err = DialOpts(l.Addr(), "conformance", WireOptions{Topology: TopologyStar})
	if err == nil || !strings.Contains(err.Error(), "spec mismatch") {
		t.Fatalf("star worker joined a mesh coordinator: %v", err)
	}
}
