package core

import (
	"container/heap"
	"math/rand"
	"sync"
	"testing"
)

func TestPrioBucketPoolOrdersByPriority(t *testing.T) {
	p := NewPrioBucketPool[string]()
	p.Push(Task[string]{Node: "worst", Prio: 9})
	p.Push(Task[string]{Node: "best", Prio: 0})
	p.Push(Task[string]{Node: "mid", Prio: 4})
	for _, want := range []string{"best", "mid", "worst"} {
		got, ok := p.Pop()
		if !ok || got.Node != want {
			t.Fatalf("Pop = %q ok=%v, want %q", got.Node, ok, want)
		}
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("Pop on empty pool reported a task")
	}
	if _, ok := p.Steal(); ok {
		t.Fatal("Steal on empty pool reported a task")
	}
}

// Equal priorities must leave in insertion order: the heuristic spawn
// order among equally promising tasks is search knowledge, and a pool
// without the FIFO discipline would scramble it.
func TestPrioBucketPoolFIFOWithinPriority(t *testing.T) {
	p := NewPrioBucketPool[int]()
	const n = 100
	// Two interleaved priority classes, each pushed in ascending order.
	for i := 0; i < n; i++ {
		p.Push(Task[int]{Node: i, Prio: 3})
		p.Push(Task[int]{Node: n + i, Prio: 7})
	}
	for class, base := range []int{0, n} {
		for i := 0; i < n; i++ {
			got, ok := p.Pop()
			if !ok {
				t.Fatalf("pool empty at class %d item %d", class, i)
			}
			if got.Node != base+i {
				t.Fatalf("class %d item %d: got node %d, want %d (FIFO violated)", class, i, got.Node, base+i)
			}
		}
	}
}

// Priority churn: pushes at lower priorities than already popped must
// re-aim the min cursor, and BestPrio must always agree with what Pop
// returns next.
func TestPrioBucketPoolBestPrioTracksChurn(t *testing.T) {
	p := NewPrioBucketPool[int]()
	if b := p.BestPrio(); b != -1 {
		t.Fatalf("empty BestPrio = %d, want -1", b)
	}
	p.Push(Task[int]{Node: 1, Prio: 5})
	if b := p.BestPrio(); b != 5 {
		t.Fatalf("BestPrio = %d, want 5", b)
	}
	p.Push(Task[int]{Node: 2, Prio: 2})
	if b := p.BestPrio(); b != 2 {
		t.Fatalf("BestPrio = %d, want 2", b)
	}
	if got, _ := p.Pop(); got.Prio != 2 {
		t.Fatalf("popped prio %d, want 2", got.Prio)
	}
	// Lower-priority work arriving after pops must be found again.
	p.Push(Task[int]{Node: 3, Prio: 0})
	if got, _ := p.Steal(); got.Prio != 0 {
		t.Fatalf("stole prio %d, want 0", got.Prio)
	}
	if got, _ := p.Pop(); got.Prio != 5 {
		t.Fatalf("popped prio %d, want 5", got.Prio)
	}
	if b := p.BestPrio(); b != -1 {
		t.Fatalf("drained BestPrio = %d, want -1", b)
	}
}

// Out-of-range priorities must clamp, not grow the bucket array or
// panic: Prio crosses the wire and cannot be trusted.
func TestPrioBucketPoolClampsPriorities(t *testing.T) {
	p := NewPrioBucketPool[int]()
	p.Push(Task[int]{Node: 1, Prio: -50})
	p.Push(Task[int]{Node: 2, Prio: 1 << 30})
	if got, ok := p.Pop(); !ok || got.Node != 1 {
		t.Fatalf("negative prio: got %+v ok=%v, want node 1 first (clamped to 0)", got, ok)
	}
	if got, ok := p.Pop(); !ok || got.Node != 2 {
		t.Fatalf("huge prio: got %+v ok=%v", got, ok)
	}
	if p.Size() != 0 {
		t.Fatalf("size %d after draining", p.Size())
	}
}

func TestPrioBucketPoolSize(t *testing.T) {
	p := NewPrioBucketPool[int]()
	if p.Size() != 0 {
		t.Fatalf("empty pool size %d", p.Size())
	}
	for i := 0; i < 5; i++ {
		p.Push(Task[int]{Node: i, Prio: int32(i)})
	}
	if p.Size() != 5 {
		t.Fatalf("size %d, want 5", p.Size())
	}
	p.Pop()
	if p.Size() != 4 {
		t.Fatalf("size %d after pop, want 4", p.Size())
	}
}

// Concurrent pushes and pops must neither lose nor duplicate tasks
// (the pool backs the ordered coordinations' shared frontier).
func TestPrioBucketPoolConcurrentPushPop(t *testing.T) {
	p := NewPrioBucketPool[int]()
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pr)))
			for i := 0; i < perProducer; i++ {
				p.Push(Task[int]{Node: pr*perProducer + i, Prio: int32(rng.Intn(5))})
			}
		}(pr)
	}
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				t_, ok := p.Pop()
				if !ok {
					select {
					case <-done:
						return
					default:
						continue
					}
				}
				mu.Lock()
				seen[t_.Node] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	// Drain what the consumers left behind after done closed.
	for {
		t_, ok := p.Pop()
		if !ok {
			break
		}
		seen[t_.Node] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("task %d lost", i)
		}
	}
}

// Sharded priority pools: owners keep best-first order within their
// shard, and thieves (StealExcept / the transport's Steal) take the
// globally best-priority task across shards.
func TestShardedPrioBucketPoolStealsBestFirst(t *testing.T) {
	p := NewShardedPool[int](PrioBucketKind, 3)
	p.Shard(0).Push(Task[int]{Node: 10, Prio: 4})
	p.Shard(1).Push(Task[int]{Node: 20, Prio: 1})
	p.Shard(2).Push(Task[int]{Node: 30, Prio: 2})
	p.Shard(1).Push(Task[int]{Node: 21, Prio: 6})
	if r := p.StealRank(); r != 1 {
		t.Fatalf("StealRank = %d, want 1", r)
	}
	for _, want := range []int{20, 30, 10, 21} {
		got, ok := p.Steal()
		if !ok || got.Node != want {
			t.Fatalf("Steal = %+v ok=%v, want node %d", got, ok, want)
		}
	}
	if r := p.StealRank(); r != -1 {
		t.Fatalf("drained StealRank = %d, want -1", r)
	}
}

// heapPrioPool is the retired mutex+heap priority pool, kept in the
// test binary as the benchmark baseline the bucketed pool is measured
// against (BENCH_ordered.json) and as an ordering oracle.
type heapPrioPool[N any] struct {
	mu   sync.Mutex
	h    testPrioHeap[N]
	next int64
}

type heapPrioItem[N any] struct {
	t    Task[N]
	prio int64
	seq  int64
}

type testPrioHeap[N any] []heapPrioItem[N]

func (h testPrioHeap[N]) Len() int { return len(h) }
func (h testPrioHeap[N]) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h testPrioHeap[N]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *testPrioHeap[N]) Push(x any)   { *h = append(*h, x.(heapPrioItem[N])) }
func (h *testPrioHeap[N]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	var zero heapPrioItem[N]
	old[n-1] = zero
	*h = old[:n-1]
	return it
}

func (p *heapPrioPool[N]) PushPrio(t Task[N], prio int64) {
	p.mu.Lock()
	heap.Push(&p.h, heapPrioItem[N]{t: t, prio: prio, seq: p.next})
	p.next++
	p.mu.Unlock()
}

func (p *heapPrioPool[N]) PopPrio() (Task[N], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		var zero Task[N]
		return zero, false
	}
	it := heap.Pop(&p.h).(heapPrioItem[N])
	return it.t, true
}

// The bucketed pool must agree with the heap oracle on pop order for
// random workloads (heap priority = larger-is-better; bucket priority
// = the negation, lower-is-better).
func TestPrioBucketPoolMatchesHeapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bucket := NewPrioBucketPool[int]()
	oracle := &heapPrioPool[int]{}
	const maxPrio = 16
	for i := 0; i < 500; i++ {
		pr := rng.Intn(maxPrio)
		bucket.Push(Task[int]{Node: i, Prio: int32(pr)})
		oracle.PushPrio(Task[int]{Node: i}, int64(maxPrio-pr))
	}
	for i := 0; ; i++ {
		want, wok := oracle.PopPrio()
		got, gok := bucket.Pop()
		if wok != gok {
			t.Fatalf("pop %d: oracle ok=%v bucket ok=%v", i, wok, gok)
		}
		if !wok {
			break
		}
		if got.Node != want.Node {
			t.Fatalf("pop %d: bucket node %d, oracle node %d", i, got.Node, want.Node)
		}
	}
}
