// Package maxclique implements the Maximum Clique optimisation search
// and its k-Clique decision variant — the running example of the paper
// (Listing 1) and the workload of its Table 1 and Figure 4.
//
// The algorithm is the bitset branch-and-bound of McCreesh & Prosser
// ("Multi-threading a state-of-the-art maximum clique algorithm"),
// using a greedy colouring both as the heuristic child order (highest
// colour class first) and as the pruning bound: a candidate set that
// can be coloured with c colours contains no clique larger than c.
package maxclique

import (
	"yewpar/internal/bitset"
	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// Space is the search space: the input graph (immutable during search).
type Space struct {
	G *graph.Graph
}

// NewSpace wraps a graph as a search space.
func NewSpace(g *graph.Graph) *Space { return &Space{G: g} }

// NewSpaceDegeneracy relabels the graph by its degeneracy order before
// wrapping it: dense-core vertices get low indices, which the greedy
// colouring (it scans ascending indices) rewards with tighter bounds.
// Returns the space and the mapping from new index back to the
// original vertex.
func NewSpaceDegeneracy(g *graph.Graph) (*Space, []int) {
	order, _ := g.DegeneracyOrder()
	// order[i] = original vertex at new position i ⇒ perm[orig] = new
	perm := make([]int, g.N)
	for i, v := range order {
		perm[v] = i
	}
	return &Space{G: g.Relabel(perm)}, order
}

// Node is one search-tree node: a clique under construction, the
// candidate vertices that may extend it, and the colour bound on how
// many candidates can still join (Listing 1's Node struct).
type Node struct {
	Clique bitset.Set // current clique
	Size   int        // |Clique|
	Cands  bitset.Set // vertices adjacent to all of Clique
	Bound  int        // greedy-colouring bound on extensions
}

// Root returns the search-tree root: the empty clique with every vertex
// a candidate.
func Root(s *Space) Node {
	all := bitset.New(s.G.N)
	all.Fill()
	return Node{
		Clique: bitset.New(s.G.N),
		Size:   0,
		Cands:  all,
		Bound:  s.G.N,
	}
}

// gen is the Lazy Node Generator of Listing 1: Reset colours the
// parent's candidate set, and Next yields children in reverse colour
// order (heuristically best first), each with a fresh candidate set
// intersected with the new vertex's neighbourhood. The generator
// implements core.ResettableGenerator: its colouring scratch (order,
// colour, uncol, class) and the shrinking remaining set are reused
// across every node expanded at one stack level — the hcState-style
// per-depth scratch of handcoded.go, made available to the skeletons.
// Children never alias the scratch: each Next copies into freshly
// allocated clique/candidate sets, because child nodes outlive the
// generator (they travel as tasks).
type gen struct {
	s            *Space
	parent       Node
	order        []int32 // candidates in colour-class order
	colour       []int32 // colour[i] = #colours among order[0..i]
	remaining    bitset.Set
	uncol, class bitset.Set // colouring scratch
	k            int

	// Ephemeral mode (ResetEphemeral): children are built in this
	// single owned slab instead of a fresh MakePair per child — the
	// hand-coded solver's zero-copy node discipline. Only the pure DFS
	// loop requests it; see core.EphemeralGenerator.
	ephemeral              bool
	childClique, childCand bitset.Set
}

var _ core.EphemeralGenerator[*Space, Node] = (*gen)(nil)

// Gen is the core.GenFactory for maximum clique.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	if parent.Cands.Empty() {
		return core.EmptyGen[Node]{}
	}
	g := &gen{}
	g.Reset(s, parent)
	return g
}

// Reset implements core.ResettableGenerator: re-aim the generator at a
// new parent, recolouring into the existing scratch. Scratch is sized
// to the space's vertex count and lazily (re)allocated if the space
// changes — within one search it never does.
func (g *gen) Reset(s *Space, parent Node) {
	if g.s != s {
		n := s.G.N
		*g = gen{
			s:      s,
			order:  make([]int32, 0, n),
			colour: make([]int32, 0, n),
		}
		g.remaining, g.uncol = bitset.MakePair(n)
		g.class = bitset.New(n)
	}
	g.parent = parent
	g.ephemeral = false
	if parent.Cands.Empty() {
		g.k = 0
		return
	}
	g.order, g.colour = greedyColourInto(s.G, parent.Cands, g.order[:0], g.colour[:0], g.uncol, g.class)
	g.remaining.CopyFrom(parent.Cands)
	g.k = len(g.order)
}

// ResetEphemeral implements core.EphemeralGenerator: like Reset, but
// every subsequent Next writes the child into the generator's owned
// slab, so expansion allocates nothing at all. The slab stays valid
// exactly as long as the DFS contract requires: until this generator's
// next Next or Reset.
func (g *gen) ResetEphemeral(s *Space, parent Node) {
	g.Reset(s, parent)
	if g.childClique.Cap() != s.G.N {
		g.childClique, g.childCand = bitset.MakePair(s.G.N)
	}
	g.ephemeral = true
}

// CopyNode returns a deeply independent copy of n. It is the Copy hook
// of the maxclique problems, invoked by the engine before retaining an
// ephemeral node as incumbent or witness.
func CopyNode(_ *Space, n Node) Node {
	return Node{Clique: n.Clique.Clone(), Size: n.Size, Cands: n.Cands.Clone(), Bound: n.Bound}
}

func (g *gen) HasNext() bool { return g.k > 0 }

func (g *gen) Next() Node {
	g.k--
	v := int(g.order[g.k])
	g.remaining.Remove(v)
	var clique, cands bitset.Set
	if g.ephemeral {
		clique, cands = g.childClique, g.childCand
	} else {
		clique, cands = bitset.MakePair(g.s.G.N)
	}
	clique.CopyFrom(g.parent.Clique)
	clique.Add(v)
	bitset.IntersectInto(cands, g.remaining, g.s.G.Adj[v])
	// The extension bound is colour[k] - 1, not colour[k]: colour[k]
	// bounds the largest clique within {order[0..k]}, which counts v
	// itself — and v's whole colour class is an independent set, so
	// none of its other members survive the candidate intersection.
	// This is the MCSa prune (size + colour[i] <= best): with it the
	// skeleton searches exactly the hand-coded solver's tree.
	return Node{
		Clique: clique,
		Size:   g.parent.Size + 1,
		Cands:  cands,
		Bound:  int(g.colour[g.k]) - 1,
	}
}

// GreedyColour greedily colours the subgraph induced by the candidate
// set p. It returns the candidates ordered by colour class and, for
// each position i, the number of colours used to colour order[0..i] —
// an upper bound on the largest clique within {order[0], …, order[i]}.
func GreedyColour(g *graph.Graph, p bitset.Set) (order, colour []int32) {
	n := p.Count()
	backing := make([]int32, 2*n)
	order = backing[:0:n]
	colour = backing[n : n : 2*n]
	uncoloured, class := bitset.MakePair(g.N)
	return greedyColourInto(g, p, order, colour, uncoloured, class)
}

// greedyColourInto is GreedyColour appending into caller-provided
// slices and colouring through caller-provided scratch sets (both
// capacity g.N). It does not modify p. Recycled generators call it
// with their per-level scratch, making recolouring allocation-free.
func greedyColourInto(g *graph.Graph, p bitset.Set, order, colour []int32, uncoloured, class bitset.Set) ([]int32, []int32) {
	uncoloured.CopyFrom(p)
	c := int32(0)
	for !uncoloured.Empty() {
		c++
		class.CopyFrom(uncoloured)
		for {
			// PopNext fuses the Min+Remove pair into one scan.
			v := class.PopNext()
			if v < 0 {
				break
			}
			order = append(order, int32(v))
			colour = append(colour, c)
			uncoloured.Remove(v)
			class.DifferenceWith(g.Adj[v])
		}
	}
	return order, colour
}

// Objective is the clique size (maximised).
func Objective(_ *Space, n Node) int64 { return int64(n.Size) }

// UpperBound is Listing 1's upperBound: the clique size plus the colour
// bound on how many vertices can still be added.
func UpperBound(_ *Space, n Node) int64 { return int64(n.Size + n.Bound) }

// OptProblem returns the optimisation-search problem (maximum clique).
// Children are generated in non-increasing colour-bound order, so one
// failed bound check prunes the whole remaining level (PruneLevel) —
// the "prune future children to-the-right" behaviour of Section 4.1,
// and what makes the skeleton search the same tree as the hand-coded
// MCSa-style solver.
func OptProblem() core.OptProblem[*Space, Node] {
	return core.OptProblem[*Space, Node]{
		Gen:        Gen,
		Objective:  Objective,
		Bound:      UpperBound,
		PruneLevel: true,
		Copy:       CopyNode,
	}
}

// DecisionProblem returns the k-clique decision-search problem: does
// the graph contain a clique of k vertices?
func DecisionProblem(k int) core.DecisionProblem[*Space, Node] {
	return core.DecisionProblem[*Space, Node]{
		Gen:        Gen,
		Objective:  Objective,
		Target:     int64(k),
		Bound:      UpperBound,
		PruneLevel: true,
		Copy:       CopyNode,
	}
}

// Solve finds a maximum clique of g with the given skeleton, returning
// the clique vertices and search statistics.
func Solve(g *graph.Graph, coord core.Coordination, cfg core.Config) (bitset.Set, core.Stats) {
	s := NewSpace(g)
	res := core.Opt(coord, s, Root(s), OptProblem(), cfg)
	return res.Best.Clique, res.Stats
}

// Decide reports whether g contains a k-clique, using the given
// skeleton; when it does, the witness clique is returned.
func Decide(g *graph.Graph, k int, coord core.Coordination, cfg core.Config) (bitset.Set, bool, core.Stats) {
	s := NewSpace(g)
	res := core.Decide(coord, s, Root(s), DecisionProblem(k), cfg)
	return res.Witness.Clique, res.Found, res.Stats
}

// FigureOneGraph returns the 8-vertex graph of the paper's Figure 1
// (vertices a..h mapped to 0..7) whose maximum clique is {a, d, f, g}.
func FigureOneGraph() (*graph.Graph, map[int]string) {
	names := map[int]string{0: "a", 1: "b", 2: "c", 3: "d", 4: "e", 5: "f", 6: "g", 7: "h"}
	idx := map[string]int{}
	for i, s := range names {
		idx[s] = i
	}
	g := graph.New(8)
	edges := [][2]string{
		{"a", "b"}, {"a", "c"}, {"a", "d"}, {"a", "f"}, {"a", "g"}, {"a", "h"},
		{"b", "c"}, {"b", "g"},
		{"c", "e"},
		{"d", "f"}, {"d", "g"},
		{"e", "h"},
		{"f", "g"},
	}
	for _, e := range edges {
		g.AddEdge(idx[e[0]], idx[e[1]])
	}
	return g, names
}
