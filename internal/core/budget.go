package core

// runBudget is the Budget coordination, implementing the (spawn-budget)
// rule (Listing 4): each task runs a sequential backtracking search,
// counting backtracks; when the count reaches the budget, the
// bottom-most non-exhausted generator — the unexplored nodes at lowest
// depth, i.e. closest to the root — is drained into the workpool in
// traversal order and the counter resets. Long-running tasks thereby
// periodically shed their largest pending subtrees. Generators come
// from the worker's recycling cache, one per stack level; draining a
// generator into the pool copies out node values only, so the
// generator itself never escapes the worker.
func runBudget[S, N any](e *engine[S, N], visitors []visitor[N], root N) {
	budget := e.cfg.Budget
	e.runPoolWorkers(root, visitors, func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
		defer e.finishTask(w)
		if e.cancel.cancelled() {
			return
		}
		if v.visit(t.Node) != descend {
			return
		}
		gc := e.caches[w]
		stack := make([]NodeGenerator[N], 0, 32)
		stack = append(stack, gc.gen(0, t.Node))
		backtracks := int64(0)
		for len(stack) > 0 {
			if e.cancel.cancelled() {
				return
			}
			if backtracks >= budget {
				for i := 0; i < len(stack); i++ {
					if stack[i].HasNext() {
						for stack[i].HasNext() {
							child := stack[i].Next()
							e.spawnTask(w, sh, Task[N]{Node: child, Depth: t.Depth + i + 1})
						}
						break
					}
				}
				backtracks = 0
				continue
			}
			g := stack[len(stack)-1]
			if !g.HasNext() {
				stack[len(stack)-1] = nil
				stack = stack[:len(stack)-1]
				sh.Backtracks++
				backtracks++
				continue
			}
			child := g.Next()
			switch v.visit(child) {
			case descend:
				stack = append(stack, gc.gen(len(stack), child))
			case pruneLevel:
				stack[len(stack)-1] = nil
				stack = stack[:len(stack)-1]
				sh.Backtracks++
				backtracks++
			}
		}
	})
}
