package core

// expandBelow performs the depth-first backtracking traversal of
// Listing 2 over the subtree strictly below root. The caller must have
// visited root already (and received prune == false). A stack of lazy
// node generators drives the traversal: advancing the top generator is
// the (expand) rule, popping an exhausted generator is (backtrack), and
// an empty stack is (terminate). Generators come from the worker's
// recycling cache, one per stack level, so applications implementing
// ResettableGenerator expand without per-node generator allocations.
func expandBelow[S, N any](gc *genCache[S, N], v visitor[N], cancel *canceller, sh *WorkerStats, root N) {
	stack := make([]NodeGenerator[N], 0, 32)
	stack = append(stack, gc.genDFS(0, root))
	for len(stack) > 0 {
		if cancel.cancelled() {
			return
		}
		g := stack[len(stack)-1]
		if !g.HasNext() {
			stack[len(stack)-1] = nil
			stack = stack[:len(stack)-1]
			sh.Backtracks++
			continue
		}
		child := g.Next()
		switch v.visit(child) {
		case descend:
			stack = append(stack, gc.genDFS(len(stack), child))
		case pruneLevel:
			// Later siblings have no better bound: abandon the level.
			stack[len(stack)-1] = nil
			stack = stack[:len(stack)-1]
			sh.Backtracks++
		}
	}
}

// runSequential is the Sequential coordination: one worker, no spawn
// rules.
func runSequential[S, N any](space S, gf GenFactory[S, N], cfg Config, v visitor[N], cancel *canceller, sh *WorkerStats, root N) {
	if v.visit(root) != descend {
		return
	}
	expandBelow(newGenCache(space, gf, cfg), v, cancel, sh, root)
}
