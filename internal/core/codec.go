package core

import (
	"bytes"
	"encoding/gob"
)

// Codec serialises application search-tree nodes for wire transports.
// Single-process runs never invoke it — the loopback transport passes
// nodes by reference — so applications only provide one to enable the
// multi-process distributed mode.
//
// Encode and Decode must be inverses and safe for concurrent use
// (transports serve steals from their receive goroutines).
type Codec[N any] interface {
	Encode(n N) ([]byte, error)
	Decode(b []byte) (N, error)
}

// GobCodec is the default Codec: encoding/gob over the node value. It
// works for any node whose meaningful state is reachable through
// exported fields or GobEncoder/GobDecoder implementations. Each node
// is a self-describing gob stream, which is robust but not compact;
// applications with hot distributed paths should supply a hand-rolled
// Codec instead.
type GobCodec[N any] struct{}

// Encode implements Codec.
func (GobCodec[N]) Encode(n N) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec[N]) Decode(b []byte) (N, error) {
	var n N
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&n)
	return n, err
}

// FuncCodec adapts a pair of functions to a Codec, for applications
// that prefer a compact hand-rolled node encoding.
type FuncCodec[N any] struct {
	Enc func(N) ([]byte, error)
	Dec func([]byte) (N, error)
}

// Encode implements Codec.
func (c FuncCodec[N]) Encode(n N) ([]byte, error) { return c.Enc(n) }

// Decode implements Codec.
func (c FuncCodec[N]) Decode(b []byte) (N, error) { return c.Dec(b) }
