package knapsack

import (
	"testing"

	"yewpar/internal/core"
)

func TestResetMatchesFresh(t *testing.T) {
	s := Generate(14, 100, WeaklyCorrelated, 3)
	nodes := []Node{Root(s)}
	for i := 0; i < len(nodes) && len(nodes) < 500; i++ {
		g := Gen(s, nodes[i])
		for g.HasNext() && len(nodes) < 500 {
			nodes = append(nodes, g.Next())
		}
	}
	shared := &gen{}
	for _, parent := range nodes {
		shared.Reset(s, parent)
		fresh := Gen(s, parent)
		for fresh.HasNext() {
			if !shared.HasNext() {
				t.Fatalf("parent %+v: recycled generator ran dry early", parent)
			}
			if got, want := shared.Next(), fresh.Next(); got != want {
				t.Fatalf("parent %+v: recycled child %+v, fresh %+v", parent, got, want)
			}
		}
		if shared.HasNext() {
			t.Fatalf("parent %+v: recycled generator has extra children", parent)
		}
	}
}

func TestSolveRecyclingAblation(t *testing.T) {
	s := Generate(24, 1000, StronglyCorrelated, 9)
	on, onStats := Solve(s, core.Sequential, core.Config{})
	off, offStats := Solve(s, core.Sequential, core.Config{NoRecycle: true})
	if on != off {
		t.Fatalf("profit with recycling %d, without %d", on, off)
	}
	if onStats.Nodes != offStats.Nodes {
		t.Fatalf("recycling changed the explored tree: %d vs %d nodes", onStats.Nodes, offStats.Nodes)
	}
}
