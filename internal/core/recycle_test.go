package core

import (
	"sync/atomic"
	"testing"
)

// rtGen is a resettable generator over testTree, mirroring what the
// real applications implement: cursor state re-aimed by Reset, with
// shared counters so tests can observe how often the factory allocated
// versus recycled.
type rtGen struct {
	t     *testTree
	kids  []string
	depth int
	i     int
}

func (g *rtGen) Reset(t *testTree, parent testNode) {
	g.t = t
	g.kids = t.children[parent.id]
	g.depth = parent.depth + 1
	g.i = 0
}

func (g *rtGen) HasNext() bool { return g.i < len(g.kids) }

func (g *rtGen) Next() testNode {
	n := testNode{id: g.kids[g.i], depth: g.depth}
	g.i++
	return n
}

var _ ResettableGenerator[*testTree, testNode] = (*rtGen)(nil)

// countingResettableGen returns a resettable GenFactory plus counters
// for constructions (factory calls that allocated) and total factory
// calls made by the engine paths that bypass the cache.
func countingResettableGen() (GenFactory[*testTree, testNode], *atomic.Int64) {
	var constructions atomic.Int64
	gf := func(t *testTree, parent testNode) NodeGenerator[testNode] {
		constructions.Add(1)
		g := &rtGen{}
		g.Reset(t, parent)
		return g
	}
	return gf, &constructions
}

func (t *testTree) resettableEnumProblem(gf GenFactory[*testTree, testNode]) EnumProblem[*testTree, testNode, int64] {
	p := t.enumProblem()
	p.Gen = gf
	return p
}

// TestGenCacheRecycles checks the cache contract directly: one
// generator per level, Reset on reuse, factory fallback for fresh
// levels and for NoRecycle.
func TestGenCacheRecycles(t *testing.T) {
	tree := genTree(3, 3, 6)
	gf, constructions := countingResettableGen()
	gc := newGenCache(tree, gf, Config{})

	root := testNode{}
	g0 := gc.gen(0, root)
	if constructions.Load() != 1 {
		t.Fatalf("first level-0 gen: %d constructions, want 1", constructions.Load())
	}
	g0again := gc.gen(0, root)
	if constructions.Load() != 1 {
		t.Fatalf("recycled level-0 gen still constructed: %d", constructions.Load())
	}
	if g0again != g0 {
		t.Fatal("level-0 generator was not recycled")
	}
	if gc.gen(1, root) == g0 {
		t.Fatal("level 1 must get its own generator")
	}
	if constructions.Load() != 2 {
		t.Fatalf("level-1 gen: %d constructions, want 2", constructions.Load())
	}

	// NoRecycle: every request goes to the factory.
	gfOff, consOff := countingResettableGen()
	gcOff := newGenCache(tree, gfOff, Config{NoRecycle: true})
	gcOff.gen(0, root)
	gcOff.gen(0, root)
	if consOff.Load() != 2 {
		t.Fatalf("NoRecycle cache constructed %d generators, want 2", consOff.Load())
	}
}

// TestGenCacheResetMatchesFresh drains a recycled generator against a
// fresh one for every node of a random tree: the child streams must be
// identical.
func TestGenCacheResetMatchesFresh(t *testing.T) {
	tree := genTree(7, 4, 7)
	// Collect every node with fresh generators, then replay the whole
	// set through ONE recycled generator — successive Resets at a
	// single level, exactly the cache's reuse pattern.
	var nodes []testNode
	var walk func(n testNode)
	walk = func(n testNode) {
		nodes = append(nodes, n)
		g := testGen(tree, n)
		for g.HasNext() {
			walk(g.Next())
		}
	}
	walk(testNode{})

	shared := &rtGen{}
	for _, n := range nodes {
		shared.Reset(tree, n)
		fresh := testGen(tree, n)
		for fresh.HasNext() {
			if !shared.HasNext() {
				t.Fatalf("node %q: recycled generator ran dry early", n.id)
			}
			got, want := shared.Next(), fresh.Next()
			if got != want {
				t.Fatalf("node %q: recycled child %v, fresh child %v", n.id, got, want)
			}
		}
		if shared.HasNext() {
			t.Fatalf("node %q: recycled generator has extra children", n.id)
		}
	}
}

// TestRecyclingSequentialAllocatesPerLevel runs a sequential
// enumeration with a resettable factory and checks the factory was
// called only O(depth) times, not O(nodes) — the allocation-free
// expansion property.
func TestRecyclingSequentialAllocatesPerLevel(t *testing.T) {
	tree := genTree(11, 4, 9)
	gf, constructions := countingResettableGen()
	res := Enum(Sequential, tree, testNode{}, tree.resettableEnumProblem(gf), Config{})
	if res.Value != tree.sum() {
		t.Fatalf("recycled enum sum = %d, want %d", res.Value, tree.sum())
	}
	if res.Stats.Nodes != int64(tree.size) {
		t.Fatalf("visited %d nodes, want %d", res.Stats.Nodes, tree.size)
	}
	// One construction per stack level ever reached (≤ maxDepth+1);
	// far below one per node.
	if c := constructions.Load(); c > 10 {
		t.Fatalf("factory called %d times for a %d-node tree; recycling broken", c, tree.size)
	}

	// And the ablation really disables it: constructions scale with
	// expanded nodes.
	gfOff, consOff := countingResettableGen()
	resOff := Enum(Sequential, tree, testNode{}, tree.resettableEnumProblem(gfOff), Config{NoRecycle: true})
	if resOff.Value != tree.sum() {
		t.Fatalf("NoRecycle enum sum = %d, want %d", resOff.Value, tree.sum())
	}
	if c := consOff.Load(); c <= 10 {
		t.Fatalf("NoRecycle factory called only %d times; ablation not effective", c)
	}
}

// ephNode carries a heap-referenced payload, so an ephemeral generator
// that reuses its child buffer corrupts any retained node unless the
// engine deep-copies at retention points — the regression this type
// exists to catch.
type ephNode struct {
	id    []byte
	depth int
}

type ephGen struct {
	t     *testTree
	kids  []string
	depth int
	i     int
	buf   ephNode // ephemeral child slab
	eph   bool
}

func (g *ephGen) Reset(t *testTree, parent ephNode) {
	g.t = t
	g.kids = t.children[string(parent.id)]
	g.depth = parent.depth + 1
	g.i = 0
	g.eph = false
}

func (g *ephGen) ResetEphemeral(t *testTree, parent ephNode) {
	g.Reset(t, parent)
	g.eph = true
}

func (g *ephGen) HasNext() bool { return g.i < len(g.kids) }

func (g *ephGen) Next() ephNode {
	id := g.kids[g.i]
	g.i++
	if g.eph {
		g.buf.id = append(g.buf.id[:0], id...)
		g.buf.depth = g.depth
		return g.buf
	}
	return ephNode{id: []byte(id), depth: g.depth}
}

var _ EphemeralGenerator[*testTree, ephNode] = (*ephGen)(nil)

func (t *testTree) ephOptProblem() OptProblem[*testTree, ephNode] {
	return OptProblem[*testTree, ephNode]{
		Gen: func(t *testTree, parent ephNode) NodeGenerator[ephNode] {
			g := &ephGen{}
			g.Reset(t, parent)
			return g
		},
		Objective: func(tt *testTree, n ephNode) int64 { return tt.value[string(n.id)] },
		Copy: func(_ *testTree, n ephNode) ephNode {
			return ephNode{id: append([]byte(nil), n.id...), depth: n.depth}
		},
	}
}

// TestEphemeralIncumbentIsCopied pins the retention contract: the
// returned Best node must be the node whose objective was recorded,
// not a later overwrite of the generator's child buffer — across every
// optimisation coordination that reaches expandBelow's ephemeral path,
// including ReplicableOpt's hand-built phase-2 visitors.
func TestEphemeralIncumbentIsCopied(t *testing.T) {
	tree := genTree(13, 4, 8)
	p := tree.ephOptProblem()
	want := tree.max()
	check := func(name string, res OptResult[ephNode]) {
		t.Helper()
		if res.Objective != want {
			t.Fatalf("%s objective = %d, want %d", name, res.Objective, want)
		}
		if got := tree.value[string(res.Best.id)]; got != res.Objective {
			t.Fatalf("%s Best node %q has value %d, recorded objective %d (aliased ephemeral buffer?)",
				name, res.Best.id, got, res.Objective)
		}
	}
	check("seq", Opt(Sequential, tree, ephNode{}, p, Config{}))
	check("depthbounded", Opt(DepthBounded, tree, ephNode{}, p, Config{Workers: 4, DCutoff: 2}))
	check("replicable", ReplicableOpt(tree, ephNode{}, p, Config{Workers: 4, DCutoff: 2}))
}

// TestRecyclingAllCoordinations runs every parallel coordination with
// resettable generators and multiple workers — under `go test -race`
// this is the regression net for worker-confined generator reuse.
func TestRecyclingAllCoordinations(t *testing.T) {
	tree := genTree(5, 4, 8)
	want := tree.sum()
	cases := []struct {
		name  string
		coord Coordination
		cfg   Config
	}{
		{"depthbounded", DepthBounded, Config{Workers: 4, DCutoff: 3}},
		{"budget", Budget, Config{Workers: 4, Budget: 20}},
		{"stacksteal", StackStealing, Config{Workers: 4}},
		{"depthbounded-2loc", DepthBounded, Config{Workers: 4, Localities: 2, DCutoff: 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gf, _ := countingResettableGen()
			res := Enum(c.coord, tree, testNode{}, tree.resettableEnumProblem(gf), c.cfg)
			if res.Value != want {
				t.Fatalf("%s enum sum = %d, want %d", c.name, res.Value, want)
			}
			if res.Stats.Nodes != int64(tree.size) {
				t.Fatalf("%s visited %d nodes, want %d", c.name, res.Stats.Nodes, tree.size)
			}
		})
	}

	// Optimisation with pruning and recycling, against the sequential
	// oracle.
	tree.sortChildrenByBound()
	p := tree.optProblem(true)
	gfOpt, _ := countingResettableGen()
	p.Gen = gfOpt
	seq := Opt(Sequential, tree, testNode{}, p, Config{})
	for _, c := range cases {
		par := Opt(c.coord, tree, testNode{}, p, c.cfg)
		if par.Objective != seq.Objective {
			t.Fatalf("%s optimum %d, sequential %d", c.name, par.Objective, seq.Objective)
		}
	}
}
