package core

import "math"

// Monoid is a commutative monoid ⟨M, Plus, Zero⟩ used to accumulate
// knowledge in enumeration searches (Section 3.2 of the paper). Plus
// must be associative and commutative with Zero as identity, and must
// not mutate its arguments.
type Monoid[M any] interface {
	Zero() M
	Plus(a, b M) M
}

// SumInt64 is the (int64, +, 0) monoid, used for node counting.
type SumInt64 struct{}

// Zero implements Monoid.
func (SumInt64) Zero() int64 { return 0 }

// Plus implements Monoid.
func (SumInt64) Plus(a, b int64) int64 { return a + b }

// MaxInt64 is the (int64, max, MinInt64) monoid, used for
// depth-of-tree style enumerations.
type MaxInt64 struct{}

// Zero implements Monoid.
func (MaxInt64) Zero() int64 { return math.MinInt64 }

// Plus implements Monoid.
func (MaxInt64) Plus(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SumVec is the element-wise sum monoid over fixed-length []int64
// vectors, used e.g. to build depth profiles (number of tree nodes per
// depth) in a single enumeration.
type SumVec struct{ Len int }

// Zero implements Monoid.
func (m SumVec) Zero() []int64 { return make([]int64, m.Len) }

// Plus implements Monoid. It allocates a fresh vector; arguments are
// not mutated.
func (m SumVec) Plus(a, b []int64) []int64 {
	c := make([]int64, m.Len)
	for i := range c {
		c[i] = a[i] + b[i]
	}
	return c
}
