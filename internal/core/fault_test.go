package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"yewpar/internal/dist"
)

// Engine-level fault tolerance, exercised over the loopback network's
// injectable Kill: a rank dies the moment it provably holds registered
// work (LiveAt > 0), and the survivors must replay its subtree roots
// and still produce the exact optimum. The full wire path is covered —
// Dist* over loopback serialises every hand-over through the codec —
// deterministically and without subprocesses; the TCP SIGKILL path is
// pinned by the subprocess integration test.

// faultSpace is a subset-sum style tree big enough (~2^22 nodes under
// full expansion, no Bound so nothing prunes) that every rank holds
// live work for most of the run and a mid-search kill reliably lands
// mid-search.
func faultSpace() toySpace {
	vals := make([]int64, 22)
	for i := range vals {
		// Mixed signs so the optimum is a non-trivial subset.
		vals[i] = int64((i%5)*7 - 9 + i)
	}
	return toySpace{Vals: vals}
}

// runDistOptWithKills runs DistOpt over `ranks` loopback localities
// and kills each rank in `victims` as soon as it holds live work.
// Returns rank 0's result and error.
func runDistOptWithKills(t *testing.T, ranks int, cfg Config, victims []int) (OptResult[toyNode], error) {
	return runDistOptWithKillsOpts(t, ranks, cfg, victims, dist.LoopbackOptions{})
}

func runDistOptWithKillsOpts(t *testing.T, ranks int, cfg Config, victims []int, opts dist.LoopbackOptions) (OptResult[toyNode], error) {
	t.Helper()
	net := dist.NewLoopback(ranks, opts)
	trs := net.Transports()
	defer net.Close()

	space := faultSpace()
	results := make([]OptResult[toyNode], ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistOpt(trs[r], GobCodec[toyNode]{}, DepthBounded, space, toyNode{}, toyOptProblem(), cfg)
		}(r)
	}
	var kwg sync.WaitGroup
	for _, v := range victims {
		kwg.Add(1)
		go func(v int) {
			defer kwg.Done()
			deadline := time.Now().Add(30 * time.Second)
			for net.LiveAt(v) == 0 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Microsecond)
			}
			net.Kill(v)
		}(v)
	}
	kwg.Wait()
	wg.Wait()
	return results[0], errs[0]
}

func TestDistOptSurvivesWorkerDeath(t *testing.T) {
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1}
	got, err := runDistOptWithKills(t, 4, cfg, []int{2})
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	if !got.Found || got.Objective != want.Objective {
		t.Fatalf("objective after death = %d (found=%v), want %d", got.Objective, got.Found, want.Objective)
	}
	if got.Stats.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", got.Stats.Deaths)
	}
}

// The same death, with the loopback network in wave mode (the mesh
// topology's termination discipline): no global live count exists, so
// quiescence after the replay must be observed by the circulating
// token. The exact optimum and the death report must be unchanged.
func TestDistOptMeshSurvivesWorkerDeath(t *testing.T) {
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1}
	got, err := runDistOptWithKillsOpts(t, 4, cfg, []int{2}, dist.LoopbackOptions{Wave: true})
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	if !got.Found || got.Objective != want.Objective {
		t.Fatalf("objective after death = %d (found=%v), want %d", got.Objective, got.Found, want.Objective)
	}
	if got.Stats.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", got.Stats.Deaths)
	}
}

// Two deaths: supervision is hierarchical — every hand-over chain
// roots at the coordinator, and an entry is acked only when its whole
// subtree has completed — so even staggered double death replays from
// the earliest surviving supervisor.
func TestDistOptSurvivesDoubleDeath(t *testing.T) {
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1}
	got, err := runDistOptWithKills(t, 4, cfg, []int{1, 3})
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	if !got.Found || got.Objective != want.Objective {
		t.Fatalf("objective after double death = %d (found=%v), want %d", got.Objective, got.Found, want.Objective)
	}
	if got.Stats.Deaths != 2 {
		t.Fatalf("Deaths = %d, want 2", got.Stats.Deaths)
	}
}

// The failure budget: deaths beyond MaxFailures surface as an error
// (alongside the replay-repaired result); within the budget they are
// absorbed silently.
func TestDistOptMaxFailuresPolicy(t *testing.T) {
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())

	// Budget 0 (the zero-value default): any death is reported.
	got, err := runDistOptWithKills(t, 3, Config{Workers: 2, DCutoff: 3}, []int{2})
	if err == nil {
		t.Fatal("death within MaxFailures=0 not reported")
	}
	if !strings.Contains(err.Error(), "failure budget") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The result is still repaired as far as replay reaches.
	if !got.Found || got.Objective != want.Objective {
		t.Fatalf("repaired objective = %d, want %d", got.Objective, want.Objective)
	}

	// Budget 1: the same death is absorbed.
	if _, err := runDistOptWithKills(t, 3, Config{Workers: 2, DCutoff: 3, MaxFailures: 1}, []int{2}); err != nil {
		t.Fatalf("death within budget reported: %v", err)
	}
}

// Enumeration cannot be repaired by replay (a dead rank's partial
// monoid value is unrecoverable, and replay would double-count): a
// death must surface as an error, not a silently wrong total.
func TestDistEnumDeathErrors(t *testing.T) {
	net := dist.NewLoopback(3, dist.LoopbackOptions{})
	trs := net.Transports()
	defer net.Close()
	space := faultSpace()
	p := EnumProblem[toySpace, toyNode, int64]{
		Gen:       toyGen,
		Objective: func(toySpace, toyNode) int64 { return 1 },
		Monoid:    SumInt64{},
	}
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = DistEnum(trs[r], GobCodec[toyNode]{}, DepthBounded, space, toyNode{}, p, Config{Workers: 2, DCutoff: 3, MaxFailures: -1})
		}(r)
	}
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for net.LiveAt(2) == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Microsecond)
		}
		net.Kill(2)
	}()
	wg.Wait()
	if errs[0] == nil {
		t.Fatal("enumeration death not reported at rank 0")
	}
	if !strings.Contains(errs[0].Error(), "enumeration") {
		t.Fatalf("unexpected error: %v", errs[0])
	}
}

// runDistOptCoordinatorKill runs DistOpt over `ranks` loopback
// localities with Standby armed and kills rank 0 once a survivor
// provably holds live work — the root hand-over is then
// ledger-supervised, so the coordinator's death loses nothing. It
// returns every rank's result and error: the zombie rank 0 returns
// garbage, the promoted rank (the lowest survivor, rank 1) owns the
// aggregated result.
func runDistOptCoordinatorKill(t *testing.T, ranks int, cfg Config, opts dist.LoopbackOptions) ([]OptResult[toyNode], []error) {
	t.Helper()
	net := dist.NewLoopback(ranks, opts)
	trs := net.Transports()
	defer net.Close()

	space := faultSpace()
	results := make([]OptResult[toyNode], ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = DistOpt(trs[r], GobCodec[toyNode]{}, DepthBounded, space, toyNode{}, toyOptProblem(), cfg)
		}(r)
	}
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			spread := false
			for r := 1; r < ranks; r++ {
				if net.LiveAt(r) > 0 {
					spread = true
					break
				}
			}
			if spread {
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
		net.Kill(0)
	}()
	wg.Wait()
	return results, errs
}

// Coordinator death over loopback: Kill(0) hands the collector role to
// the lowest survivor, which must still produce the exact optimum.
// Under Standby rank 0 runs zero workers, so every task it ever held
// (the seeded root) left under ledger supervision before it died.
func TestDistOptSurvivesCoordinatorDeath(t *testing.T) {
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1, Standby: true}
	results, errs := runDistOptCoordinatorKill(t, 4, cfg, dist.LoopbackOptions{})
	if errs[1] != nil {
		t.Fatalf("promoted rank 1: %v", errs[1])
	}
	got := results[1]
	if !got.Found || got.Objective != want.Objective {
		t.Fatalf("objective after coordinator death = %d (found=%v), want %d", got.Objective, got.Found, want.Objective)
	}
	if got.Stats.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", got.Stats.Deaths)
	}
}

// The same coordinator death under the mesh topology's wave
// termination: the dead initiator's role moves to the lowest survivor
// (the same rank that adopts the collector role), and the wave must
// still conclude with the exact optimum.
func TestDistOptMeshSurvivesCoordinatorDeath(t *testing.T) {
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1, Standby: true}
	results, errs := runDistOptCoordinatorKill(t, 4, cfg, dist.LoopbackOptions{Wave: true})
	if errs[1] != nil {
		t.Fatalf("promoted rank 1: %v", errs[1])
	}
	got := results[1]
	if !got.Found || got.Objective != want.Objective {
		t.Fatalf("objective after coordinator death = %d (found=%v), want %d", got.Objective, got.Found, want.Objective)
	}
	if got.Stats.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", got.Stats.Deaths)
	}
}

// Spill segments must not outlive a run that loses its coordinator:
// every locality's memory governor removes its spill directory on
// every exit path, including the promoted-survivor termination after
// Kill(0).
func TestDistOptCoordinatorDeathSpillCleanup(t *testing.T) {
	dir := t.TempDir()
	want := SequentialOpt(faultSpace(), toyNode{}, toyOptProblem())
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1, Standby: true,
		PoolBudget: 8 << 10, SpillDir: dir}
	results, errs := runDistOptCoordinatorKill(t, 3, cfg, dist.LoopbackOptions{})
	if errs[1] != nil {
		t.Fatalf("promoted rank 1: %v", errs[1])
	}
	if got := results[1]; !got.Found || got.Objective != want.Objective {
		t.Fatalf("objective after coordinator death = %d (found=%v), want %d", got.Objective, got.Found, want.Objective)
	}
	if left := spillLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("spill directory not cleaned after coordinator death: %v", left)
	}
}

// Replay statistics flow to rank 0: a death mid-search should usually
// leave replayed subtree roots behind, and the ledger peak is
// reported. This is a smoke check on the plumbing (the exact counts
// are schedule-dependent).
func TestDistOptFaultStatsPlumbing(t *testing.T) {
	cfg := Config{Workers: 2, DCutoff: 3, MaxFailures: -1}
	got, err := runDistOptWithKills(t, 4, cfg, []int{1})
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	if got.Stats.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", got.Stats.Deaths)
	}
	if got.Stats.LedgerPeak <= 0 {
		t.Fatalf("LedgerPeak = %d, want > 0 (hand-overs happened)", got.Stats.LedgerPeak)
	}
}
