package semigroups

import (
	"testing"

	"yewpar/internal/core"
)

// OEIS A007323: number of numerical semigroups of genus n.
var knownCounts = []int64{1, 1, 2, 4, 7, 12, 23, 39, 67, 118, 204, 343, 592, 1001, 1693, 2857, 4806}

func TestKnownCountsSequential(t *testing.T) {
	for g, want := range knownCounts {
		got, _ := Count(g, core.Sequential, core.Config{})
		if got != want {
			t.Errorf("genus %d: count = %d, want %d", g, got, want)
		}
	}
}

func TestAllSkeletonsAgree(t *testing.T) {
	const g = 12
	want := knownCounts[g]
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := Count(g, coord, core.Config{Workers: 8, Localities: 2, DCutoff: 4, Budget: 32})
		if got != want {
			t.Errorf("%v: count = %d, want %d", coord, got, want)
		}
	}
}

func TestCountProfileMatchesPerGenusCounts(t *testing.T) {
	s := NewSpace(10)
	res := core.Enum(core.DepthBounded, s, Root(s), CountProfile(s), core.Config{Workers: 4, DCutoff: 3})
	for g := 0; g <= 10; g++ {
		if res.Value[g] != knownCounts[g] {
			t.Errorf("profile genus %d = %d, want %d", g, res.Value[g], knownCounts[g])
		}
	}
}

func TestRootIsNaturals(t *testing.T) {
	r := Root(NewSpace(5))
	for v := 0; v <= 20; v++ {
		if !r.Contains(v) {
			t.Fatalf("root missing %d", v)
		}
	}
	if r.Genus != 0 || r.Frob != -1 {
		t.Fatalf("bad root: %+v", r)
	}
	if r.Multiplicity() != 1 {
		t.Fatalf("root multiplicity = %d", r.Multiplicity())
	}
}

func TestFirstLevels(t *testing.T) {
	s := NewSpace(3)
	root := Root(s)
	g := Gen(s, root)
	if !g.HasNext() {
		t.Fatal("root has no children")
	}
	child := g.Next() // ℕ \ {1} = {0, 2, 3, ...}
	if g.HasNext() {
		t.Fatal("root should have exactly one child (removing 1)")
	}
	if child.Contains(1) || !child.Contains(2) || child.Frob != 1 || child.Genus != 1 {
		t.Fatalf("bad first child: %+v", child)
	}
	// children of {0,2,3,...}: remove 2 or remove 3
	g2 := Gen(s, child)
	var frobs []int
	for g2.HasNext() {
		frobs = append(frobs, g2.Next().Frob)
	}
	if len(frobs) != 2 || frobs[0] != 2 || frobs[1] != 3 {
		t.Fatalf("genus-2 frobenius numbers = %v, want [2 3]", frobs)
	}
}

func TestNodesAreClosedUnderAddition(t *testing.T) {
	// walk the full tree to genus 7 and check closure of every node
	s := NewSpace(7)
	var walk func(n Node)
	walk = func(n Node) {
		for x := 1; x <= 20; x++ {
			if !n.Contains(x) {
				continue
			}
			for y := x; y+x <= 40 && y <= 20; y++ {
				if n.Contains(y) && !n.Contains(x+y) {
					t.Fatalf("not closed: %d+%d missing (frob %d genus %d)", x, y, n.Frob, n.Genus)
				}
			}
		}
		g := Gen(s, n)
		for g.HasNext() {
			walk(g.Next())
		}
	}
	walk(Root(s))
}

func TestGenusMatchesGapCount(t *testing.T) {
	s := NewSpace(8)
	var walk func(n Node)
	walk = func(n Node) {
		if got := n.popcountGaps(); got != n.Genus {
			t.Fatalf("genus bookkeeping broken: mask says %d, node says %d", got, n.Genus)
		}
		if len(n.Gaps()) != n.Genus {
			t.Fatalf("Gaps() length %d != genus %d", len(n.Gaps()), n.Genus)
		}
		g := Gen(s, n)
		for g.HasNext() {
			walk(g.Next())
		}
	}
	walk(Root(s))
}

func TestFrobeniusBound(t *testing.T) {
	// f <= 2g - 1 for every semigroup in the tree
	s := NewSpace(9)
	var walk func(n Node)
	walk = func(n Node) {
		if n.Genus > 0 && n.Frob > 2*n.Genus-1 {
			t.Fatalf("frobenius %d exceeds 2g-1 for genus %d", n.Frob, n.Genus)
		}
		g := Gen(s, n)
		for g.HasNext() {
			walk(g.Next())
		}
	}
	walk(Root(s))
}

func TestIsGenerator(t *testing.T) {
	// In ℕ\{1} = {0,2,3,4,...}: 2 and 3 are generators; 4 = 2+2 and
	// 5 = 2+3 are not.
	m := mask128{lo: ^uint64(0), hi: ^uint64(0)}
	m.remove(1)
	if !isGenerator(m, 2) || !isGenerator(m, 3) {
		t.Fatal("2 and 3 must be generators of <2,3,...>")
	}
	if isGenerator(m, 4) || isGenerator(m, 5) {
		t.Fatal("4 and 5 are sums, not generators")
	}
}

func TestNewSpaceRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range genus")
		}
	}()
	NewSpace(64)
}

func TestNewSpaceNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative genus")
		}
	}()
	NewSpace(-1)
}

func TestMultiplicityAlongChain(t *testing.T) {
	// Removing 1, then 2, then 3 gives ⟨4,5,6,7⟩ with multiplicity 4.
	s := NewSpace(5)
	n := Root(s)
	for _, wantFrob := range []int{1, 2, 3} {
		g := Gen(s, n)
		if !g.HasNext() {
			t.Fatal("chain broke early")
		}
		n = g.Next() // first child removes the smallest generator
		if n.Frob != wantFrob {
			t.Fatalf("frobenius %d, want %d", n.Frob, wantFrob)
		}
	}
	if n.Multiplicity() != 4 {
		t.Fatalf("multiplicity = %d, want 4", n.Multiplicity())
	}
	if gaps := n.Gaps(); len(gaps) != 3 || gaps[0] != 1 || gaps[2] != 3 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestHighGenusMaskPaths(t *testing.T) {
	// Drive the search deep enough that Frobenius numbers cross the
	// 64-bit word boundary in popcountGaps (frob >= 64 needs genus
	// >= 33; walk a single max-frobenius chain instead of the full
	// tree: always take the LAST child, which removes the largest
	// generator and maximises frobenius growth).
	s := NewSpace(40)
	n := Root(s)
	for n.Genus < 40 {
		g := Gen(s, n)
		var last Node
		ok := false
		for g.HasNext() {
			last = g.Next()
			ok = true
		}
		if !ok {
			t.Fatal("chain ended early")
		}
		n = last
		if got := n.popcountGaps(); got != n.Genus {
			t.Fatalf("genus bookkeeping broken at frob %d: %d != %d", n.Frob, got, n.Genus)
		}
	}
	if n.Frob < 64 {
		t.Fatalf("chain did not cross the word boundary: frob %d", n.Frob)
	}
}
