package core

import (
	"fmt"
	"math"
	"testing"
)

// Oracle property test for ordered scheduling: on random seeded trees,
// every scheduling order must return exactly the same results as the
// unordered engine. Enumeration visits every node exactly once under
// any scheduling, so values AND node counts must match exactly;
// optimisation under pruning is timing-dependent in parallel, so
// optima must match exactly while node counts need only stay within
// the full-tree envelope. This is the guarantee that makes -order a
// pure performance knob.
func TestOrderedSchedulingOracle(t *testing.T) {
	coords := []struct {
		name  string
		coord Coordination
		cfg   Config
	}{
		{"depthbounded", DepthBounded, Config{Workers: 4, DCutoff: 2}},
		{"budget", Budget, Config{Workers: 4, Budget: 25}},
		{"depthbounded-2loc", DepthBounded, Config{Workers: 4, Localities: 2, DCutoff: 2}},
		{"budget-3loc", Budget, Config{Workers: 6, Localities: 3, Budget: 25}},
	}
	orders := []Order{OrderNone, OrderDiscrepancy, OrderBound}
	for seed := int64(1); seed <= 4; seed++ {
		tree := genTree(seed, 4, 8)
		tree.sortChildrenByBound()
		wantSum := tree.sum()
		seqOpt := Opt(Sequential, tree, testNode{}, tree.optProblem(true), Config{})

		for _, c := range coords {
			for _, ord := range orders {
				t.Run(fmt.Sprintf("seed=%d/%s/order=%s", seed, c.name, ord), func(t *testing.T) {
					cfg := c.cfg
					cfg.Order = ord
					enum := Enum(c.coord, tree, testNode{}, tree.enumProblem(), cfg)
					if enum.Value != wantSum {
						t.Fatalf("enum sum = %d, want %d", enum.Value, wantSum)
					}
					if enum.Stats.Nodes != int64(tree.size) {
						t.Fatalf("visited %d nodes, want exactly %d", enum.Stats.Nodes, tree.size)
					}
					opt := Opt(c.coord, tree, testNode{}, tree.optProblem(true), cfg)
					if opt.Objective != seqOpt.Objective {
						t.Fatalf("optimum = %d, sequential oracle %d", opt.Objective, seqOpt.Objective)
					}
					if opt.Stats.Nodes < 1 || opt.Stats.Nodes > int64(tree.size) {
						t.Fatalf("visited %d nodes, outside [1, %d]", opt.Stats.Nodes, tree.size)
					}
					if ord != OrderNone && opt.Stats.Spawns > 0 {
						hist := int64(0)
						for _, v := range opt.Stats.PrioHist {
							hist += v
						}
						if hist != opt.Stats.Spawns {
							t.Fatalf("priority histogram covers %d spawns of %d", hist, opt.Stats.Spawns)
						}
					}
				})
			}
		}
	}
}

// Decision searches must agree on found/not-found under every order.
func TestOrderedDecisionOracle(t *testing.T) {
	tree := genTree(9, 4, 8)
	max := tree.max()
	for _, target := range []int64{max, max + 1} {
		wantFound := target <= max
		for _, ord := range []Order{OrderNone, OrderDiscrepancy, OrderBound} {
			cfg := Config{Workers: 4, DCutoff: 2, Order: ord}
			res := Decide(DepthBounded, tree, testNode{}, tree.decisionProblem(target, false), cfg)
			if res.Found != wantFound {
				t.Fatalf("order=%v target=%d: Found=%v, want %v", ord, target, res.Found, wantFound)
			}
			if wantFound && res.Objective < target {
				t.Fatalf("order=%v: witness objective %d below target %d", ord, res.Objective, target)
			}
		}
	}
}

// Discrepancy priorities obey the incremental rule: the root path of a
// spawned task carries one discrepancy per non-leftmost branch. Checked
// on a single worker so spawn order is deterministic: depthbounded with
// a deep cutoff turns the whole tree into tasks, and every task's Prio
// must equal the discrepancy its node path implies.
func TestDiscrepancyPrioritiesMatchPaths(t *testing.T) {
	tree := genTree(5, 3, 5)
	// Discrepancy of a testNode id: children are 'a' + index, so each
	// letter beyond 'a' on the path contributes one discrepancy.
	wantDisc := func(id string) int32 {
		d := int32(0)
		for _, c := range id {
			if c != 'a' {
				d++
			}
		}
		return d
	}
	// Wrap the generator to record the Prio each spawned child received:
	// run an enum search ordered by discrepancy and harvest from the
	// histogram; cross-check totals per discrepancy class.
	cfg := Config{Workers: 1, DCutoff: 100, Order: OrderDiscrepancy}
	res := Enum(DepthBounded, tree, testNode{}, tree.enumProblem(), cfg)
	want := map[int]int64{}
	for id := range tree.value {
		if id == "" {
			continue // the root is seeded, not spawned
		}
		d := int(wantDisc(id))
		if d >= prioHistBuckets {
			d = prioHistBuckets - 1
		}
		want[d]++
	}
	for i := 0; i < prioHistBuckets; i++ {
		if res.Stats.PrioHist[i] != want[i] {
			t.Fatalf("discrepancy class %d: %d spawns, want %d (hist %v)",
				i, res.Stats.PrioHist[i], want[i], res.Stats.PrioHist)
		}
	}
}

// OrderBound without a Bound function (enumeration) must degrade to
// discrepancy order, not crash.
func TestOrderBoundDegradesWithoutBound(t *testing.T) {
	tree := genTree(3, 4, 7)
	res := Enum(DepthBounded, tree, testNode{}, tree.enumProblem(),
		Config{Workers: 4, DCutoff: 2, Order: OrderBound})
	if res.Value != tree.sum() {
		t.Fatalf("sum = %d, want %d", res.Value, tree.sum())
	}
	if res.Stats.Nodes != int64(tree.size) {
		t.Fatalf("visited %d nodes, want %d", res.Stats.Nodes, tree.size)
	}
}

// BestFirst on the sharded bucket pool must still find the optimum
// (regression for the PrioPool → PrioBucketPool migration) and report
// a priority histogram.
func TestBestFirstShardedPoolHistogram(t *testing.T) {
	tree := genTree(17, 4, 9)
	res := BestFirstOpt(tree, testNode{}, tree.optProblem(true), Config{Workers: 4, Budget: 4})
	if res.Objective != tree.max() {
		t.Fatalf("objective %d, want %d", res.Objective, tree.max())
	}
	if res.Stats.Spawns > 0 {
		total := int64(0)
		for _, v := range res.Stats.PrioHist {
			total += v
		}
		if total != res.Stats.Spawns {
			t.Fatalf("histogram covers %d of %d spawns", total, res.Stats.Spawns)
		}
	}
}

// clampPrio must be monotone over the whole non-negative domain and
// exact below the linear region: a priority mapping that ever inverts
// two distances would reorder the search against the bound.
func TestClampPrioMonotone(t *testing.T) {
	if clampPrio(-5) != 0 || clampPrio(0) != 0 || clampPrio(prioLinear-1) != prioLinear-1 {
		t.Fatal("linear region not exact")
	}
	vals := []int64{0, 1, 100, 511, 512, 513, 1000, 1023, 1024, 5000, 70_000, 1 << 20, 1 << 40, 1<<62 + 12345, math.MaxInt64}
	prev := int32(-1)
	for _, v := range vals {
		p := clampPrio(v)
		if p < prev {
			t.Fatalf("clampPrio(%d) = %d < previous %d: not monotone", v, p, prev)
		}
		if p > maxTaskPrio {
			t.Fatalf("clampPrio(%d) = %d exceeds maxTaskPrio", v, p)
		}
		prev = p
	}
	// Distinct octaves must land in distinct buckets (no early
	// saturation): 70k and 1<<20 differ by several octaves.
	if clampPrio(70_000) == clampPrio(1<<20) {
		t.Fatal("wide distances collapsed into one bucket")
	}
}
