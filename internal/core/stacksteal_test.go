package core

import (
	"math/rand"
	"testing"
	"time"
)

func newTestSSState(chunked bool, workers, localities int) *ssState[int, int] {
	cfg := Config{Workers: workers, Localities: localities, Chunked: chunked, Seed: 1}.withDefaults()
	st := &ssState[int, int]{
		cfg:     cfg,
		metrics: newMetrics(cfg.Workers),
		tr:      newTracker(),
		cancel:  newCanceller(),
		ws:      make([]*ssWorker[int], cfg.Workers),
		locOf:   make([]int, cfg.Workers),
	}
	for i := range st.ws {
		st.ws[i] = &ssWorker[int]{reqs: make(chan stealReq[int], cfg.Workers)}
		st.locOf[i] = i % cfg.Localities
	}
	return st
}

func TestSplitTakesBottomMostNonEmpty(t *testing.T) {
	st := newTestSSState(false, 2, 1)
	stack := []NodeGenerator[int]{
		NewSliceGen[int](nil),      // exhausted: depth rootDepth+1
		NewSliceGen([]int{10, 11}), // bottom-most with work
		NewSliceGen([]int{20, 21, 22}),
	}
	sh := st.metrics.shard(0)
	ts := st.split(stack, 5, sh)
	if len(ts) != 1 {
		t.Fatalf("unchunked split handed %d tasks", len(ts))
	}
	if ts[0].Node != 10 {
		t.Fatalf("split took %d, want first child of the lowest generator", ts[0].Node)
	}
	if ts[0].Depth != 5+1+1 {
		t.Fatalf("split task depth = %d, want rootDepth+index+1 = 7", ts[0].Depth)
	}
	if st.tr.live.Load() != 1 {
		t.Fatalf("tracker registered %d tasks", st.tr.live.Load())
	}
	if sh.Spawns != 1 {
		t.Fatalf("spawns = %d", sh.Spawns)
	}
	// the victim keeps the remaining sibling
	if !stack[1].HasNext() {
		t.Fatal("victim lost its remaining child")
	}
}

func TestSplitChunkedDrainsWholeLevel(t *testing.T) {
	st := newTestSSState(true, 2, 1)
	stack := []NodeGenerator[int]{
		NewSliceGen([]int{1, 2, 3}),
		NewSliceGen([]int{9}),
	}
	ts := st.split(stack, 0, st.metrics.shard(0))
	if len(ts) != 3 {
		t.Fatalf("chunked split handed %d tasks, want 3", len(ts))
	}
	for i, want := range []int{1, 2, 3} {
		if ts[i].Node != want {
			t.Fatalf("chunked order broken: %v", ts)
		}
	}
	if stack[0].HasNext() {
		t.Fatal("lowest generator should be drained")
	}
	if !stack[1].HasNext() {
		t.Fatal("higher generator must be untouched")
	}
}

func TestSplitAllExhausted(t *testing.T) {
	st := newTestSSState(false, 2, 1)
	stack := []NodeGenerator[int]{NewSliceGen[int](nil)}
	if ts := st.split(stack, 0, st.metrics.shard(0)); ts != nil {
		t.Fatalf("split of empty stack handed %v", ts)
	}
}

func TestPickVictimPrefersLocal(t *testing.T) {
	st := newTestSSState(false, 4, 2) // locOf = [0 1 0 1]
	st.ws[1].serving.Store(true)      // remote to worker 0
	st.ws[2].serving.Store(true)      // local to worker 0
	r := st.rngFor(0)
	for i := 0; i < 20; i++ {
		if v := st.pickVictim(0, r); v != 2 {
			t.Fatalf("picked %d, want local serving victim 2", v)
		}
	}
}

func TestPickVictimFallsBackToRemote(t *testing.T) {
	st := newTestSSState(false, 4, 2)
	st.ws[1].serving.Store(true) // only remote serving
	r := st.rngFor(0)
	if v := st.pickVictim(0, r); v != 1 {
		t.Fatalf("picked %d, want remote victim 1", v)
	}
}

func TestPickVictimNoneServing(t *testing.T) {
	st := newTestSSState(false, 3, 1)
	r := st.rngFor(0)
	if v := st.pickVictim(0, r); v != -1 {
		t.Fatalf("picked %d from an idle fleet", v)
	}
}

func TestDrainRequestsRepliesNil(t *testing.T) {
	st := newTestSSState(false, 2, 1)
	me := st.ws[0]
	req := stealReq[int]{resp: make(chan []Task[int], 1)}
	me.reqs <- req
	st.drainRequests(me)
	select {
	case ts := <-req.resp:
		if ts != nil {
			t.Fatalf("drained request got tasks %v", ts)
		}
	case <-time.After(time.Second):
		t.Fatal("drain never replied")
	}
}

// rngFor builds the same per-worker RNG the steal loop uses.
func (st *ssState[S, N]) rngFor(w int) *rand.Rand {
	return rand.New(rand.NewSource(st.cfg.Seed + 7919*int64(w) + 13))
}
