package core

import (
	"fmt"
	"math"
	"math/rand"

	"yewpar/internal/dist"
)

// topology is the engine's view of the distributed machine: the
// sharded workpools of the localities hosted in this process, the
// worker → locality/shard assignment, and the steal plan over the
// global rank space. Each worker owns one shard of its locality's
// pool: pushes and pops touch only that uncontended shard. An idle
// worker escalates through three rings, cheapest first — rob a sibling
// shard within the locality (shallowest-first, preserving the
// heuristic order a single shared pool gave), drain the locality's
// steal-ahead buffer, and only then try a random peer locality through
// the Transport — mirroring the locality-aware victim selection of
// Section 4.3. In a single-process run the peers are loopback
// localities (with optional injected latency); in a distributed run
// they are other OS processes.
//
// When steals are expensive (a wire transport, or loopback with
// injected latency), each locality additionally runs a steal-ahead
// buffer: after a successful remote steal, the next steal is issued in
// the background while the stolen task runs, so a worker going idle
// often finds a task already waiting instead of paying a blocking
// round trip. The buffer is bounded and at most one prefetch is in
// flight per locality; a prefetch whose transport-level request times
// out is re-homed by the transport via Handler.OnTask exactly like any
// late steal reply, so prefetched work is never lost.
type topology[N any] struct {
	fab         *fabric[N]
	pools       []*ShardedPool[N]
	workerLoc   []int
	workerShard []int
	rngs        []*rand.Rand
	victims     [][]int        // per in-process locality: global ranks to rob
	ahead       []*aheadBuf[N] // per in-process locality; nil when disabled
}

// aheadBuf is one locality's steal-ahead state. The single-inflight
// gate bounds background steal pressure and makes rng goroutine-safe.
type aheadBuf[N any] struct {
	buf      chan Task[N]
	inflight chan struct{} // capacity 1: acquired by the prefetching goroutine
	rng      *rand.Rand
}

func newTopology[N any](fab *fabric[N], cfg Config) *topology[N] {
	nloc := len(fab.locs)
	tp := &topology[N]{
		fab:         fab,
		pools:       make([]*ShardedPool[N], nloc),
		workerLoc:   make([]int, cfg.Workers),
		workerShard: make([]int, cfg.Workers),
		rngs:        make([]*rand.Rand, cfg.Workers),
		victims:     make([][]int, nloc),
	}
	depth := cfg.StealAhead
	if depth == 0 && (fab.wire || cfg.StealLatency > 0) {
		depth = 1 // auto: prefetch wherever a steal costs latency
	}
	if depth > 0 && fab.size > 1 {
		tp.ahead = make([]*aheadBuf[N], nloc)
	}
	// localWorkers[i] = workers hosted on in-process locality i (worker
	// w lives on locality w % nloc); by default each gets its own shard.
	localWorkers := make([]int, nloc)
	for w := 0; w < cfg.Workers; w++ {
		localWorkers[w%nloc]++
	}
	for i := range tp.pools {
		shards := cfg.PoolShards
		if shards <= 0 {
			shards = localWorkers[i]
		}
		tp.pools[i] = NewShardedPool[N](cfg.Pool, shards)
		fab.locs[i].pool = tp.pools[i]
		for rank := 0; rank < fab.size; rank++ {
			if rank != fab.locs[i].rank {
				tp.victims[i] = append(tp.victims[i], rank)
			}
		}
		if tp.ahead != nil {
			tp.ahead[i] = &aheadBuf[N]{
				buf:      make(chan Task[N], depth),
				inflight: make(chan struct{}, 1),
				rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D + int64(fab.locs[i].rank)*104729)),
			}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		loc := w % nloc
		tp.workerLoc[w] = loc
		tp.workerShard[w] = (w / nloc) % tp.pools[loc].Shards()
		tp.rngs[w] = rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
	}
	return tp
}

// locality returns the in-process locality a worker belongs to.
func (tp *topology[N]) locality(w int) int { return tp.workerLoc[w] }

// push enqueues a task on the worker's own pool shard.
func (tp *topology[N]) push(w int, t Task[N]) {
	tp.pools[tp.workerLoc[w]].Shard(tp.workerShard[w]).Push(t)
}

// popOrSteal takes the next task for worker w, cheapest source first:
// the worker's own shard, then sibling shards within the locality
// (shallowest-first, no transport involved), then the locality's
// steal-ahead buffer, then peer localities in random order through the
// transport. Steal accounting is recorded in the worker's stats shard.
func (tp *topology[N]) popOrSteal(w int, sh *WorkerStats) (Task[N], bool) {
	loc, shard := tp.workerLoc[w], tp.workerShard[w]
	if t, ok := tp.pools[loc].Shard(shard).Pop(); ok {
		return t, true
	}
	if t, ok := tp.pools[loc].StealExcept(shard); ok {
		sh.LocalSteals++
		return t, true
	}
	if tp.ahead != nil {
		select {
		case t := <-tp.ahead[loc].buf:
			sh.StealsOK++
			sh.PrefetchHits++
			tp.prefetch(loc)
			return t, true
		default:
		}
	}
	vs := tp.victims[loc]
	if len(vs) == 0 {
		var zero Task[N]
		return zero, false
	}
	r := tp.rngs[w]
	start := r.Intn(len(vs))
	for i := 0; i < len(vs); i++ {
		v := vs[(start+i)%len(vs)]
		wt, ok, err := tp.fab.trs[loc].Steal(v)
		if err != nil || !ok {
			sh.StealsFail++
			continue
		}
		sh.StealsOK++
		tp.prefetch(loc)
		return tp.fromWire(loc, wt), true
	}
	var zero Task[N]
	return zero, false
}

// prefetch issues one background steal round for a locality, if
// steal-ahead is enabled, its buffer has room, and no prefetch is
// already in flight. A stolen task lands in the buffer (or spills to
// the pool if the buffer filled meanwhile); either way it is a
// registered live task that local workers will drain before the global
// count can reach zero.
func (tp *topology[N]) prefetch(loc int) {
	if tp.ahead == nil {
		return
	}
	sa := tp.ahead[loc]
	select {
	case sa.inflight <- struct{}{}:
	default:
		return
	}
	if len(sa.buf) == cap(sa.buf) || (tp.fab.cancel != nil && tp.fab.cancel.cancelled()) {
		<-sa.inflight
		return
	}
	go func() {
		defer func() { <-sa.inflight }()
		vs := tp.victims[loc]
		start := sa.rng.Intn(len(vs))
		for i := 0; i < len(vs); i++ {
			v := vs[(start+i)%len(vs)]
			wt, ok, err := tp.fab.trs[loc].Steal(v)
			if err != nil || !ok {
				continue
			}
			t := tp.fromWire(loc, wt)
			select {
			case sa.buf <- t:
			default:
				tp.pools[loc].Push(t)
			}
			return
		}
	}()
}

// fromWire turns a transport task back into an engine task, merging
// the victim's bound snapshot into the locality's cache so the stolen
// subtree is pruned with knowledge at least as fresh as its victim's.
func (tp *topology[N]) fromWire(loc int, wt dist.WireTask) Task[N] {
	if b := tp.fab.bounds; b != nil && wt.Bound > math.MinInt64 {
		b.applyRemote(loc, wt.Bound)
	}
	if wt.Local != nil {
		return wt.Local.(Task[N])
	}
	n, err := tp.fab.codec.Decode(wt.Payload)
	if err != nil {
		// Mismatched codecs across a deployment are unrecoverable:
		// the task cannot be run here and returning it is impossible.
		panic(fmt.Sprintf("core: decoding stolen task: %v", err))
	}
	return Task[N]{Node: n, Depth: wt.Depth}
}
