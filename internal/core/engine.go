package core

import (
	"runtime"
	"sync"
	"time"
)

// engine bundles the runtime substrate shared by the pool-based
// parallel coordinations (Depth-Bounded and Budget): the simulated
// locality topology, task tracker for termination detection, canceller
// for decision short-circuits, and per-worker metrics.
type engine[S, N any] struct {
	space   S
	gf      GenFactory[S, N]
	cfg     Config
	metrics *Metrics
	tracker *tracker
	cancel  *canceller
	topo    *topology[N]
}

func newEngine[S, N any](space S, gf GenFactory[S, N], cfg Config, metrics *Metrics, cancel *canceller) *engine[S, N] {
	return &engine[S, N]{
		space:   space,
		gf:      gf,
		cfg:     cfg,
		metrics: metrics,
		tracker: newTracker(),
		cancel:  cancel,
		topo:    newTopology[N](cfg),
	}
}

// runPoolWorkers seeds the root task and runs cfg.Workers workers, each
// executing runTask on every task it obtains, until global termination
// or cancellation. runTask must call e.tracker.finish exactly once per
// task and register any tasks it spawns with e.tracker.add before
// pushing them.
func (e *engine[S, N]) runPoolWorkers(root N, visitors []visitor[N], runTask func(w int, v visitor[N], sh *WorkerStats, t Task[N])) {
	if tr := e.cfg.Trace; tr != nil {
		inner := runTask
		runTask = func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
			start := time.Now()
			inner(w, v, sh, t)
			tr.record(w, t.Depth, start, time.Now())
		}
	}
	e.tracker.add(1)
	e.topo.pools[0].Push(Task[N]{Node: root, Depth: 0})

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := visitors[w]
			sh := e.metrics.shard(w)
			idle := 0
			for {
				if e.cancel.cancelled() {
					return
				}
				t, ok := e.topo.popOrSteal(w, sh)
				if ok {
					idle = 0
					runTask(w, v, sh, t)
					continue
				}
				select {
				case <-e.tracker.done:
					return
				case <-e.cancel.ch:
					return
				default:
				}
				// No work anywhere yet: back off briefly. The sleep
				// bounds busy-wait cost while keeping steal response
				// times far below task granularity.
				idle++
				if idle > 64 {
					time.Sleep(20 * time.Microsecond)
				} else {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
}
