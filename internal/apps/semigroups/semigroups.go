// Package semigroups implements the Numerical Semigroups enumeration
// of the paper's evaluation (Fromentin & Hivert, "Exploring the tree
// of numerical semigroups"): count the numerical semigroups of a given
// genus by walking the semigroup tree.
//
// A numerical semigroup is a cofinite subset of the naturals
// containing 0 and closed under addition; its genus is the number of
// missing naturals (gaps) and its Frobenius number is the largest gap.
// The tree has the full semigroup ℕ at the root; the children of a
// semigroup S are the semigroups S \ {e} for each generator e of S
// exceeding its Frobenius number. Every semigroup of genus g appears
// exactly once at depth g.
//
// Representation: membership of the values 0..127 in two machine
// words. Any semigroup of genus g has Frobenius number at most 2g-1,
// and the effective generators explored at genus g are at most 2g+1,
// so the fixed 128-bit window is exact for genus <= 63 — far beyond
// what exhaustive counting can reach anyway.
package semigroups

import (
	"math/bits"

	"yewpar/internal/core"
)

// maxVal is the largest representable semigroup element.
const maxVal = 127

// mask128 is a 128-bit membership mask over the values 0..127.
type mask128 struct {
	lo, hi uint64
}

func (m mask128) contains(i int) bool {
	if i < 64 {
		return m.lo&(1<<uint(i)) != 0
	}
	return m.hi&(1<<uint(i-64)) != 0
}

func (m *mask128) remove(i int) {
	if i < 64 {
		m.lo &^= 1 << uint(i)
	} else {
		m.hi &^= 1 << uint(i-64)
	}
}

// Space bounds the exploration depth: semigroups of genus > MaxGenus
// are not expanded.
type Space struct {
	MaxGenus int
}

// NewSpace returns a space exploring up to the given genus.
func NewSpace(maxGenus int) *Space {
	if maxGenus < 0 || 2*maxGenus+1 > maxVal {
		panic("semigroups: genus out of supported range")
	}
	return &Space{MaxGenus: maxGenus}
}

// Node is one numerical semigroup.
type Node struct {
	elems mask128
	// Frob is the Frobenius number (largest gap); -1 for ℕ itself.
	Frob int
	// Genus is the number of gaps, which equals the tree depth.
	Genus int
}

// Root is the full semigroup ℕ.
func Root(_ *Space) Node {
	return Node{elems: mask128{lo: ^uint64(0), hi: ^uint64(0)}, Frob: -1, Genus: 0}
}

// Contains reports whether value v (0 <= v <= 127) is in the semigroup.
func (n Node) Contains(v int) bool { return n.elems.contains(v) }

// Gaps lists the semigroup's gaps (its genus many missing values).
func (n Node) Gaps() []int {
	var gaps []int
	for v := 1; v <= n.Frob; v++ {
		if !n.elems.contains(v) {
			gaps = append(gaps, v)
		}
	}
	return gaps
}

// isGenerator reports whether e (a member) cannot be written as the
// sum of two non-zero members — i.e. removing it keeps the set closed
// under addition.
func isGenerator(elems mask128, e int) bool {
	for x := 1; x <= e/2; x++ {
		if elems.contains(x) && elems.contains(e-x) {
			return false
		}
	}
	return true
}

type gen struct {
	s      *Space
	parent Node
	e      int // next candidate generator to test
	buf    Node
	ok     bool
}

// Gen is the core.GenFactory for the semigroup tree: children remove
// each generator e with Frob < e <= 2*Genus+1 (larger generators
// cannot exist, since a genus-(g+1) semigroup has Frobenius number at
// most 2g+1), in increasing order of e.
func Gen(s *Space, parent Node) core.NodeGenerator[Node] {
	if parent.Genus >= s.MaxGenus {
		return core.EmptyGen[Node]{}
	}
	return &gen{s: s, parent: parent, e: parent.Frob + 1}
}

func (g *gen) HasNext() bool {
	if g.ok {
		return true
	}
	limit := 2*g.parent.Genus + 1
	if g.e < 1 {
		g.e = 1
	}
	for ; g.e <= limit; g.e++ {
		if !g.parent.elems.contains(g.e) || !isGenerator(g.parent.elems, g.e) {
			continue
		}
		child := Node{elems: g.parent.elems, Frob: g.e, Genus: g.parent.Genus + 1}
		child.elems.remove(g.e)
		g.buf = child
		g.ok = true
		g.e++
		return true
	}
	return false
}

func (g *gen) Next() Node {
	if !g.HasNext() {
		panic("semigroups: Next on exhausted generator")
	}
	g.ok = false
	return g.buf
}

// CountAtGenus counts the numerical semigroups of exactly the space's
// maximum genus.
func CountAtGenus(s *Space) core.EnumProblem[*Space, Node, int64] {
	return core.EnumProblem[*Space, Node, int64]{
		Gen: Gen,
		Objective: func(sp *Space, n Node) int64 {
			if n.Genus == sp.MaxGenus {
				return 1
			}
			return 0
		},
		Monoid: core.SumInt64{},
	}
}

// CountProfile counts the semigroups of every genus 0..MaxGenus in one
// traversal, as a vector indexed by genus.
func CountProfile(s *Space) core.EnumProblem[*Space, Node, []int64] {
	return core.EnumProblem[*Space, Node, []int64]{
		Gen: Gen,
		Objective: func(sp *Space, n Node) []int64 {
			v := make([]int64, sp.MaxGenus+1)
			v[n.Genus] = 1
			return v
		},
		Monoid: core.SumVec{Len: s.MaxGenus + 1},
	}
}

// Count counts semigroups of exactly genus g with the given skeleton.
func Count(g int, coord core.Coordination, cfg core.Config) (int64, core.Stats) {
	s := NewSpace(g)
	res := core.Enum(coord, s, Root(s), CountAtGenus(s), cfg)
	return res.Value, res.Stats
}

// Multiplicity returns the smallest non-zero element of the semigroup.
func (n Node) Multiplicity() int {
	for v := 1; v <= maxVal; v++ {
		if n.elems.contains(v) {
			return v
		}
	}
	return -1
}

// popcountGaps recomputes the genus from the membership mask (used by
// tests to validate the incremental bookkeeping). Only values up to
// Frob can be gaps.
func (n Node) popcountGaps() int {
	if n.Frob < 0 {
		return 0
	}
	loBits := n.Frob + 1
	var missing int
	if loBits >= 64 {
		missing = 64 - bits.OnesCount64(n.elems.lo)
		rest := loBits - 64
		hiMask := uint64(1)<<uint(rest) - 1
		missing += rest - bits.OnesCount64(n.elems.hi&hiMask)
	} else {
		loMask := uint64(1)<<uint(loBits) - 1
		missing = loBits - bits.OnesCount64(n.elems.lo&loMask)
	}
	return missing
}
