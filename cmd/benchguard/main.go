// Command benchguard is the CI regression gate for the engine's
// microbenchmarks: it reads `go test -bench` output on stdin, compares
// every benchmark that has a recorded ns/op baseline in the checked-in
// BENCH_*.json files, and exits non-zero when a benchmark regressed
// beyond the slack factor (default 1.2: fail on >20% slower than the
// recorded number, the benchstat-style gate for the pool push/pop hot
// paths).
//
// Two kinds of baseline rows are honoured. Both are harvested only
// from JSON arrays whose key contains "guard" ("guard_rows",
// "guard_ratios"): the BENCH_*.json files also record contended-path
// measurements that swing ±40% with host load, and a gate built on
// those would cry wolf — the guard arrays are the curated, stable
// subset.
//
//   - absolute rows: objects with "bench" and "ns_op" — the measured
//     ns/op must stay within slack × the recorded value. Host-dependent,
//     which the slack absorbs for same-class runners.
//   - ratio rows: objects with "bench", "vs" and "max_ratio" — the
//     measured metric of bench divided by that of vs must stay at or
//     under max_ratio. The metric defaults to ns/op; a row may name any
//     unit `go test -bench` reported (including b.ReportMetric custom
//     units such as "coordframes/op") via an optional "metric" key.
//     Host-independent, so acceptance-criteria ratios (e.g. "sharded
//     priority pool ≥3× faster than the retired heap", "mesh moves
//     ≥25% fewer coordinator frames than star") stay guarded on any
//     machine.
//   - allocation rows: objects with "bench" and "max_allocs" — the
//     measured allocs/op (the benchmark must call b.ReportAllocs) must
//     stay at or under max_allocs, with no slack: allocation counts are
//     deterministic, so any increase is a real regression. An optional
//     "metric" key substitutes another reported unit (e.g. a
//     b.ReportMetric "allocs/frame"). Guards the zero-alloc wire path.
//
// Usage:
//
//	go test -run xxx -bench PushPop -benchtime 200000x ./internal/core/ |
//	    go run ./cmd/benchguard -baseline BENCH_engine.json,BENCH_ordered.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

var (
	flagBaseline = flag.String("baseline", "BENCH_ordered.json", "comma-separated baseline JSON files")
	flagSlack    = flag.Float64("slack", 1.2, "allowed factor over an absolute ns/op baseline")
)

// ratioRule guards bench/vs <= max on one reported metric.
type ratioRule struct {
	bench, vs string
	metric    string
	max       float64
}

// allocRule guards a reported allocation metric of bench <= max.
// Unlike absolute ns/op rows no slack applies: allocation counts do
// not vary with host speed.
type allocRule struct {
	bench  string
	metric string
	max    float64
}

// harvest walks a decoded JSON value collecting absolute baselines and
// ratio rules. Rows are enforced only when they sit under a key whose
// name contains "guard" (the guarded flag), so recorded-but-volatile
// measurements elsewhere in the documents stay informational.
func harvest(v any, guarded bool, abs map[string]float64, ratios *[]ratioRule, allocs *[]allocRule) {
	switch x := v.(type) {
	case map[string]any:
		if name, ok := x["bench"].(string); ok && guarded {
			if vs, ok := x["vs"].(string); ok {
				if mr, ok := x["max_ratio"].(float64); ok {
					metric, _ := x["metric"].(string)
					if metric == "" {
						metric = "ns/op"
					}
					*ratios = append(*ratios, ratioRule{bench: name, vs: vs, metric: metric, max: mr})
				}
			} else if ma, ok := x["max_allocs"].(float64); ok {
				metric, _ := x["metric"].(string)
				if metric == "" {
					metric = "allocs/op"
				}
				*allocs = append(*allocs, allocRule{bench: name, metric: metric, max: ma})
			} else if ns, ok := x["ns_op"].(float64); ok {
				abs[name] = ns
			}
		}
		for key, val := range x {
			harvest(val, guarded || strings.Contains(key, "guard"), abs, ratios, allocs)
		}
	case []any:
		for _, val := range x {
			harvest(val, guarded, abs, ratios, allocs)
		}
	}
}

// parseBench extracts the benchmark name and every reported
// (value, unit) pair — ns/op, B/op, and b.ReportMetric custom units
// alike — from one `go test -bench` output line, reporting ok=false
// for non-benchmark lines. The -N GOMAXPROCS suffix is stripped so
// names match the recorded baselines.
func parseBench(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = val
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func main() {
	flag.Parse()
	abs := map[string]float64{}
	var ratios []ratioRule
	var allocs []allocRule
	for _, path := range strings.Split(*flagBaseline, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		var doc any
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: parsing %s: %v\n", path, err)
			os.Exit(2)
		}
		harvest(doc, false, abs, &ratios, &allocs)
	}

	measured := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the log
		if name, metrics, ok := parseBench(line); ok {
			measured[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading stdin: %v\n", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark results on stdin")
		os.Exit(2)
	}

	failures := 0
	checked := 0
	for name, metrics := range measured {
		base, ok := abs[name]
		if !ok {
			continue
		}
		ns, ok := metrics["ns/op"]
		if !ok {
			continue
		}
		checked++
		limit := base * *flagSlack
		verdict := "ok"
		if ns > limit {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Printf("benchguard: %-44s %10.2f ns/op  baseline %10.2f  limit %10.2f  %s\n",
			name, ns, base, limit, verdict)
	}
	for _, r := range ratios {
		b, okB := measured[r.bench][r.metric]
		v, okV := measured[r.vs][r.metric]
		if !okB || !okV || v == 0 {
			fmt.Printf("benchguard: ratio %s / %s (%s) skipped (not both measured)\n", r.bench, r.vs, r.metric)
			continue
		}
		checked++
		got := b / v
		verdict := "ok"
		if got > r.max {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Printf("benchguard: %-44s %s ratio %6.3f  max %6.3f  %s\n",
			r.bench+"/"+r.vs, r.metric, got, r.max, verdict)
	}
	for _, a := range allocs {
		got, ok := measured[a.bench][a.metric]
		if !ok {
			fmt.Printf("benchguard: allocs %s (%s) skipped (not measured; missing b.ReportAllocs?)\n", a.bench, a.metric)
			continue
		}
		checked++
		verdict := "ok"
		if got > a.max {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Printf("benchguard: %-44s %s %8.4f  max %8.4f  %s\n",
			a.bench, a.metric, got, a.max, verdict)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: nothing to check (no measured benchmark has a baseline)")
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d check(s) passed\n", checked)
}
