package core

import (
	"sync"
	"testing"
	"time"
)

// newTestIncumbent builds an incumbent whose localities are connected
// by a started loopback network with the given bound latency — the
// transport-backed replacement for the old direct-broadcast incumbent.
func newTestIncumbent[N any](localities int, lat time.Duration) *incumbent[N] {
	cfg := Config{Workers: localities, Localities: localities, BoundLatency: lat}.withDefaults()
	fab := newLoopbackFabric[N](cfg)
	in := newIncumbent[N](fab.trs)
	fab.bounds = in
	fab.start(newCanceller())
	return in
}

func TestIncumbentStrengthenMonotonic(t *testing.T) {
	in := newTestIncumbent[string](1, 0)
	if _, _, has := in.result(); has {
		t.Fatal("fresh incumbent claims a result")
	}
	if !in.strengthen(0, 10, "a") {
		t.Fatal("first strengthen rejected")
	}
	if in.strengthen(0, 5, "b") {
		t.Fatal("weaker strengthen accepted")
	}
	if in.strengthen(0, 10, "c") {
		t.Fatal("equal strengthen accepted")
	}
	if !in.strengthen(0, 11, "d") {
		t.Fatal("stronger strengthen rejected")
	}
	n, obj, has := in.result()
	if !has || n != "d" || obj != 11 {
		t.Fatalf("result = %q/%d/%v", n, obj, has)
	}
}

func TestIncumbentLocalBestImmediate(t *testing.T) {
	in := newTestIncumbent[int](3, 0)
	in.strengthen(1, 42, 7)
	for loc := 0; loc < 3; loc++ {
		if in.localBest(loc) != 42 {
			t.Errorf("locality %d bound = %d, want 42 (zero latency)", loc, in.localBest(loc))
		}
	}
}

func TestIncumbentBoundLatency(t *testing.T) {
	in := newTestIncumbent[int](2, 5*time.Millisecond)
	in.strengthen(0, 99, 1)
	if in.localBest(0) != 99 {
		t.Fatal("own locality must learn the bound immediately")
	}
	deadline := time.Now().Add(2 * time.Second)
	for in.localBest(1) != 99 {
		if time.Now().After(deadline) {
			t.Fatal("remote locality never learned the bound")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIncumbentConcurrentStrengthen(t *testing.T) {
	in := newTestIncumbent[int](4, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := int64(w*1000 + i)
				in.strengthen(w%4, v, int(v))
			}
		}(w)
	}
	wg.Wait()
	n, obj, has := in.result()
	if !has || obj != 7999 || n != 7999 {
		t.Fatalf("final incumbent = %d/%d, want 7999/7999", n, obj)
	}
	for loc := 0; loc < 4; loc++ {
		if in.localBest(loc) != 7999 {
			t.Errorf("locality %d bound = %d", loc, in.localBest(loc))
		}
	}
}

func TestTrackerClosesAtZero(t *testing.T) {
	tr := newTracker()
	tr.add(3)
	if tr.quiescent() {
		t.Fatal("tracker quiescent with live tasks")
	}
	tr.finish()
	tr.finish()
	if tr.quiescent() {
		t.Fatal("tracker quiescent too early")
	}
	tr.finish()
	select {
	case <-tr.done:
	case <-time.After(time.Second):
		t.Fatal("done never closed")
	}
	if !tr.quiescent() {
		t.Fatal("quiescent() false after done")
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := newTracker()
	tr.add(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.add(2)
				tr.finish()
				tr.finish()
			}
		}()
	}
	wg.Wait()
	tr.finish()
	select {
	case <-tr.done:
	case <-time.After(time.Second):
		t.Fatal("done never closed after concurrent add/finish")
	}
}

func TestCancellerIdempotent(t *testing.T) {
	c := newCanceller()
	if c.cancelled() {
		t.Fatal("fresh canceller cancelled")
	}
	c.cancel()
	c.cancel() // must not panic (double close)
	if !c.cancelled() {
		t.Fatal("cancel did not latch")
	}
	select {
	case <-c.ch:
	default:
		t.Fatal("channel not closed")
	}
}

func TestStoreMax(t *testing.T) {
	in := newTestIncumbent[int](1, 0)
	c := &in.caches[0].v
	storeMax(c, 5)
	storeMax(c, 3)
	if c.Load() != 5 {
		t.Fatalf("storeMax regressed to %d", c.Load())
	}
	storeMax(c, 9)
	if c.Load() != 9 {
		t.Fatalf("storeMax = %d, want 9", c.Load())
	}
}
