package core

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// This file implements global search ordering: the machinery that turns
// "more cores" into "fewer nodes" by making every scheduling decision —
// owner pop, sibling rob, transport steal, victim selection — prefer
// the most promising available subtree. Two priority sources are
// supported. Discrepancy order (the "Parallel Flowshop in YewPar"
// follow-up direction) counts the non-leftmost branches on a task's
// root path: the application's child order is its heuristic, so tasks
// that deviated from it least are searched first, everywhere. Bound
// order uses the optimisation problem's admissible bound directly, as
// the BestFirst coordination always has. Priorities are small
// non-negative ints with LOWER = better, so pools can bucket on them
// (see PrioBucketPool) instead of paying a heap.

// Order selects the global task-scheduling order of the pool-based
// coordinations.
type Order int

const (
	// OrderNone schedules tasks by depth only (the DepthPool default):
	// owners run deepest-first, thieves steal shallowest-first, and
	// steal victims are chosen at random.
	OrderNone Order = iota
	// OrderDiscrepancy schedules tasks by path discrepancy — the count
	// of non-leftmost branches between the search root and the task's
	// root. Tasks that follow the application's heuristic child order
	// most closely run first, across workers and localities.
	OrderDiscrepancy
	// OrderBound schedules tasks by the problem's admissible bound
	// (stronger bound = scheduled earlier), the priority source of the
	// BestFirst coordination, generalised to every pool-based
	// coordination. Searches without a Bound function (enumeration)
	// fall back to discrepancy order.
	OrderBound
)

// String returns the order's flag spelling.
func (o Order) String() string {
	switch o {
	case OrderDiscrepancy:
		return "discrepancy"
	case OrderBound:
		return "bound"
	default:
		return "none"
	}
}

// maxTaskPrio caps task priorities (and therefore priority-pool bucket
// counts); prioLinear is the exact region of the mapping below.
const (
	maxTaskPrio = 1023
	prioLinear  = 512
)

// clampPrio maps an int64 priority distance into the bucket range,
// monotonically over the whole non-negative int64 domain: distances
// below prioLinear map exactly (discrepancy counts in practice never
// leave this region), and larger ones — bound distances on problems
// whose objective spans thousands, far wider than any sane bucket
// array — map log-graded, 8 sub-buckets per octave (the leading bit's
// position plus the next three bits). The far tail therefore coarsens
// progressively instead of saturating into one FIFO bucket, which
// would have degraded best-first order to spawn order exactly for the
// wide-range problems that need it most. The full 63-bit range fits:
// 512 + 53*8 + 7 = 943 < maxTaskPrio.
func clampPrio(v int64) int32 {
	if v < 0 {
		return 0
	}
	if v < prioLinear {
		return int32(v)
	}
	e := bits.Len64(uint64(v)) // >= 10 here
	sub := (v >> uint(e-4)) & 7
	return int32(prioLinear + int64(e-10)*8 + sub)
}

// prioAssigner computes the scheduling priority of spawned tasks for
// one search. A nil assigner (or OrderNone) assigns zero to everything,
// which the unordered pools ignore.
type prioAssigner[S, N any] struct {
	order Order
	space S
	bound func(S, N) int64
	ref   int64 // bound of the search root: priorities are ref - bound(n)
}

// newPrioAssigner builds the assigner for a search. bound may be nil
// (enumeration searches); OrderBound then degrades to discrepancy.
func newPrioAssigner[S, N any](order Order, space S, root N, bound func(S, N) int64) *prioAssigner[S, N] {
	pa := &prioAssigner[S, N]{order: order, space: space}
	if order == OrderBound {
		if bound == nil {
			pa.order = OrderDiscrepancy
		} else {
			pa.bound = bound
			pa.ref = bound(space, root)
		}
	}
	return pa
}

// enabled reports whether tasks carry a meaningful priority (and
// therefore whether pools bucket on it and victims are ranked by it).
func (pa *prioAssigner[S, N]) enabled() bool {
	return pa != nil && pa.order != OrderNone
}

// childPrio assigns the priority of a child about to be spawned as a
// task. parentDisc is the discrepancy of the child's parent node (the
// spawning task's Prio under discrepancy order), childIdx the number of
// siblings yielded before it by the same generator.
func (pa *prioAssigner[S, N]) childPrio(parentDisc int32, childIdx int, child N) int32 {
	if pa == nil || pa.order == OrderNone {
		return 0
	}
	if pa.order == OrderBound {
		return clampPrio(pa.ref - pa.bound(pa.space, child))
	}
	return discChild(parentDisc, childIdx)
}

// discChild is the incremental discrepancy rule: taking any
// non-leftmost branch costs one discrepancy.
func discChild(parentDisc int32, childIdx int) int32 {
	if childIdx > 0 && parentDisc < maxTaskPrio {
		return parentDisc + 1
	}
	return parentDisc
}

// parker puts idle workers to sleep until new local work can exist,
// replacing the Gosched/sleep spin loops of the engine run loops. A
// wake is dropped when nobody waits (an atomic load, so producers pay
// nothing on the hot path), and parks always carry a timeout: remote
// peers may acquire work without notifying this locality, so a parked
// worker must still re-probe the transport ring eventually.
type parker struct {
	waiters atomic.Int32
	ch      chan struct{}
}

func newParker(workers int) *parker {
	if workers < 1 {
		workers = 1
	}
	return &parker{ch: make(chan struct{}, workers)}
}

// wake releases one parked worker, if any is parked.
func (p *parker) wake() {
	if p.waiters.Load() == 0 {
		return
	}
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// park blocks until a wake, the timeout, termination, or cancellation.
// After registering as a waiter it consults stillIdle once more and
// returns immediately when work may exist: a producer that pushed (and
// called wake) between the caller's last empty probe and the
// registration saw zero waiters and dropped the signal — the classic
// lost-wakeup window — so the re-check, ordered after waiters.Add, is
// what makes the drop safe. The caller owns t (a stopped or drained
// timer) and reuses it across parks to keep the idle path
// allocation-free.
func (p *parker) park(t *time.Timer, d time.Duration, done, cancelled <-chan struct{}, stillIdle func() bool) {
	p.waiters.Add(1)
	if stillIdle != nil && !stillIdle() {
		p.waiters.Add(-1)
		return
	}
	t.Reset(d)
	select {
	case <-p.ch:
	case <-t.C:
	case <-done:
	case <-cancelled:
	}
	p.waiters.Add(-1)
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// newParkTimer returns a timer suitable for park reuse (created
// stopped, channel drained).
func newParkTimer() *time.Timer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}

// stealBackoff is one locality's transport-ring gate: after a full
// sweep of every peer finds no work, further sweeps are delayed with
// exponentially growing backoff, stopping the steal storms (and, over a
// wire, the frame storms at the coordinator) that otherwise accompany
// drain-down. Any successful steal resets it. All workers of the
// locality share the gate; races between them only jitter the delay.
type stealBackoff struct {
	base, max time.Duration
	cur       atomic.Int64 // current delay, ns
	next      atomic.Int64 // unix ns before which sweeps are skipped
}

func newStealBackoff(base, max time.Duration) *stealBackoff {
	return &stealBackoff{base: base, max: max}
}

// ready reports whether a sweep may run now.
func (b *stealBackoff) ready() bool {
	return time.Now().UnixNano() >= b.next.Load()
}

// fail records a completely empty sweep, doubling the delay.
func (b *stealBackoff) fail() {
	d := 2 * time.Duration(b.cur.Load())
	if d < b.base {
		d = b.base
	}
	if d > b.max {
		d = b.max
	}
	b.cur.Store(int64(d))
	b.next.Store(time.Now().UnixNano() + int64(d))
}

// reset clears the backoff after a successful steal.
func (b *stealBackoff) reset() {
	if b.cur.Load() == 0 {
		return
	}
	b.cur.Store(0)
	b.next.Store(0)
}
