package uts

import (
	"testing"

	"yewpar/internal/core"
)

func binomial(b0, m int, q float64, seed int64) *Space {
	return &Space{Shape: Binomial, B0: b0, M: m, Q: q, Seed: seed}
}

func geometric(b0, depth int, seed int64) *Space {
	return &Space{Shape: Geometric, B0: b0, MaxDepth: depth, Seed: seed}
}

func TestCountDeterministic(t *testing.T) {
	s := binomial(200, 5, 0.15, 42)
	a, _ := Count(s, core.Sequential, core.Config{})
	b, _ := Count(s, core.Sequential, core.Config{})
	if a != b {
		t.Fatalf("same seed counted %d then %d", a, b)
	}
	if a < 201 {
		t.Fatalf("binomial tree suspiciously small: %d", a)
	}
	s2 := binomial(200, 5, 0.15, 43)
	c, _ := Count(s2, core.Sequential, core.Config{})
	if c == a {
		t.Fatal("different seeds gave identical counts")
	}
}

func TestAllSkeletonsAgreeBinomial(t *testing.T) {
	s := binomial(500, 6, 0.14, 7)
	want, _ := Count(s, core.Sequential, core.Config{})
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := Count(s, coord, core.Config{Workers: 8, Localities: 2, Budget: 64})
		if got != want {
			t.Errorf("%v: count %d, want %d", coord, got, want)
		}
	}
}

func TestAllSkeletonsAgreeGeometric(t *testing.T) {
	s := geometric(4, 9, 11)
	want, _ := Count(s, core.Sequential, core.Config{})
	if want < 100 {
		t.Fatalf("geometric tree too small for a meaningful test: %d", want)
	}
	for _, coord := range []core.Coordination{core.DepthBounded, core.StackStealing, core.Budget} {
		got, _ := Count(s, coord, core.Config{Workers: 6, DCutoff: 3})
		if got != want {
			t.Errorf("%v: count %d, want %d", coord, got, want)
		}
	}
}

func TestGeometricRespectsDepthLimit(t *testing.T) {
	s := geometric(5, 6, 3)
	res := core.Enum(core.Sequential, s, Root(s), MaxDepthProblem(), core.Config{})
	if res.Value > 6 {
		t.Fatalf("node deeper than limit: %d", res.Value)
	}
}

func TestBinomialLeafProbability(t *testing.T) {
	// With q = 0 every non-root node is a leaf: size = 1 + b0.
	s := binomial(37, 4, 0, 5)
	got, _ := Count(s, core.Sequential, core.Config{})
	if got != 38 {
		t.Fatalf("count = %d, want 38", got)
	}
}

func TestRootBranching(t *testing.T) {
	s := binomial(12, 3, 0.1, 9)
	if NumChildren(s, Root(s)) != 12 {
		t.Fatal("root branching != B0")
	}
}

func TestChildHashesDistinct(t *testing.T) {
	s := binomial(10, 3, 0.5, 1)
	root := Root(s)
	seen := map[[20]byte]bool{}
	g := Gen(s, root)
	for g.HasNext() {
		n := g.Next()
		if seen[n.H] {
			t.Fatal("duplicate child hash")
		}
		seen[n.H] = true
		if n.Depth != 1 {
			t.Fatalf("child depth = %d", n.Depth)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("%d children, want 10", len(seen))
	}
}

func TestRand01Range(t *testing.T) {
	s := geometric(3, 5, 2)
	n := Root(s)
	for i := 0; i < 100; i++ {
		r := rand01(n.H)
		if r < 0 || r >= 1 {
			t.Fatalf("rand01 out of range: %f", r)
		}
		n.H = childHash(&n, i)
	}
}

func TestCountRegression(t *testing.T) {
	// Pin exact sizes so accidental generator changes are caught.
	cases := []struct {
		s    *Space
		want int64
	}{
		{binomial(100, 4, 0.2, 1), 353},
		{geometric(3, 8, 1), 11},
	}
	for i, c := range cases {
		got, _ := Count(c.s, core.Sequential, core.Config{})
		if got != c.want {
			t.Errorf("case %d: count = %d, want %d (tree generation changed!)", i, got, c.want)
		}
	}
}
