package bitset

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the fused hot-path kernels against the primitive
// multi-pass sequences they replaced in the expansion and colouring
// inner loops. 300 bits is the p_hat300-3 word count (5 words, with a
// partial tail); 1024 is a larger power-of-two shape (16 words, pure
// unrolled body). Recorded in BENCH_engine.json.

func benchSets(n int, seed int64) (a, b, dst Set) {
	rng := rand.New(rand.NewSource(seed))
	a, b, dst = New(n), New(n), New(n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.7 {
			a.Add(v)
		}
		if rng.Float64() < 0.7 {
			b.Add(v)
		}
	}
	return a, b, dst
}

func BenchmarkHotPathIntersectCount(b *testing.B) {
	for _, n := range []int{300, 1024} {
		x, y, dst := benchSets(n, int64(n))
		b.Run(sizeName(n)+"/fused", func(b *testing.B) {
			var c int
			for i := 0; i < b.N; i++ {
				c += IntersectIntoCount(dst, x, y)
			}
			sink = c
		})
		b.Run(sizeName(n)+"/primitive", func(b *testing.B) {
			var c int
			for i := 0; i < b.N; i++ {
				dst.CopyFrom(x)
				dst.IntersectWith(y)
				c += dst.Count()
			}
			sink = c
		})
	}
}

func BenchmarkHotPathPopNext(b *testing.B) {
	for _, n := range []int{300, 1024} {
		x, _, dst := benchSets(n, int64(n))
		b.Run(sizeName(n)+"/fused", func(b *testing.B) {
			var c int
			for i := 0; i < b.N; i++ {
				dst.CopyFrom(x)
				for v := dst.PopNext(); v != -1; v = dst.PopNext() {
					c += v
				}
			}
			sink = c
		})
		b.Run(sizeName(n)+"/primitive", func(b *testing.B) {
			var c int
			for i := 0; i < b.N; i++ {
				dst.CopyFrom(x)
				for v := dst.Min(); v != -1; v = dst.Min() {
					dst.Remove(v)
					c += v
				}
			}
			sink = c
		})
	}
}

// sink defeats dead-code elimination of the benchmark loops.
var sink int

func sizeName(n int) string {
	if n == 300 {
		return "n300"
	}
	return "n1024"
}
