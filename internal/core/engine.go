package core

import (
	"runtime"
	"sync"
	"time"
)

// engine bundles the runtime substrate shared by the pool-based
// parallel coordinations (Depth-Bounded and Budget): the locality
// fabric and its workpool topology, global task accounting for
// termination detection, canceller for decision short-circuits,
// per-worker metrics, and the priority assigner of the ordered
// scheduling modes.
type engine[S, N any] struct {
	space   S
	gf      GenFactory[S, N]
	cfg     Config
	metrics *Metrics
	cancel  *canceller
	fab     *fabric[N]
	topo    *topology[N]
	caches  []*genCache[S, N]   // per-worker generator recycling caches
	scratch []*workerScratch[N] // per-worker expansion-stack scratch
	prio    *prioAssigner[S, N] // task priorities (Config.Order)
	ordered bool
}

// workerScratch is one worker's reusable expansion state for the
// stack-driven coordinations (Budget, BestFirst): the generator stack
// plus the per-level discrepancy and yield counters that ordered
// scheduling tracks. Reusing it removes the per-task stack allocation
// the coordinations previously paid.
type workerScratch[N any] struct {
	stack  []NodeGenerator[N]
	disc   []int32 // discrepancy of the node whose generator is stack[i]
	yields []int32 // children yielded so far by stack[i]
}

// newWorkerScratch builds one scratch per worker.
func newWorkerScratch[N any](workers int) []*workerScratch[N] {
	sc := make([]*workerScratch[N], workers)
	for i := range sc {
		sc[i] = &workerScratch[N]{}
	}
	return sc
}

func newEngine[S, N any](space S, gf GenFactory[S, N], cfg Config, m *Metrics, cancel *canceller, fab *fabric[N], prio *prioAssigner[S, N]) *engine[S, N] {
	return &engine[S, N]{
		space:   space,
		gf:      gf,
		cfg:     cfg,
		metrics: m,
		cancel:  cancel,
		fab:     fab,
		topo:    newTopology(fab, cfg),
		caches:  newGenCaches(space, gf, cfg),
		scratch: newWorkerScratch[N](cfg.Workers),
		prio:    prio,
		ordered: prio.enabled(),
	}
}

// spawnTask registers a new task with the global live count (before it
// becomes visible to any worker) and pushes it on w's locality pool.
// The spawner passes its own task's supervision family through (Task
// literal field fam), so a received subtree's descendants keep the
// origin's ledger entry alive until the whole subtree completes.
func (e *engine[S, N]) spawnTask(w int, sh *WorkerStats, t Task[N]) {
	loc := e.topo.locality(w)
	e.fab.trs[loc].AddTasks(1)
	if t.fam != nil {
		t.fam.pending.Add(1)
	}
	sh.Spawns++
	if e.ordered {
		sh.notePrio(t.Prio)
	}
	e.topo.push(w, t)
	if m := e.topo.mem[loc]; m != nil {
		// Memory governor, last-resort response: the spawner that pushed
		// the pool past its hard threshold spills the coldest tasks.
		m.maybeSpill(e.topo.pools[loc])
	}
}

// memPressured reports whether worker w's locality is above its memory
// budget's soft threshold — the signal on which coordinations trade
// spawning for inline expansion.
func (e *engine[S, N]) memPressured(w int) bool {
	loc := e.topo.locality(w)
	m := e.topo.mem[loc]
	return m != nil && m.pressured(e.topo.pools[loc].Tasks())
}

// finishTask deregisters one completed task. Every task obtained by a
// worker must be finished exactly once, after any children it spawns
// are registered. A received task's completion also drains its
// supervision family — the last drain acks the hand-over's origin.
func (e *engine[S, N]) finishTask(w int, t Task[N]) {
	loc := e.topo.locality(w)
	e.fab.trs[loc].AddTasks(-1)
	if t.fam != nil {
		e.fab.locs[loc].famDone(t.fam)
	}
}

// runPoolWorkers seeds the root task (on the locality that owns the
// root) and runs cfg.Workers workers, each executing runTask on every
// task it obtains, until global termination or cancellation. runTask
// must call e.finishTask exactly once per task and register any tasks
// it spawns with e.spawnTask.
func (e *engine[S, N]) runPoolWorkers(root N, visitors []visitor[N], runTask func(w int, v visitor[N], sh *WorkerStats, t Task[N])) {
	if tr := e.cfg.Trace; tr != nil {
		inner := runTask
		runTask = func(w int, v visitor[N], sh *WorkerStats, t Task[N]) {
			start := time.Now()
			inner(w, v, sh, t)
			tr.record(w, t.Depth, start, time.Now())
		}
	}
	// Calibrate the memory governors' per-task byte estimate from the
	// root node, and guarantee their spill directories are removed on
	// every exit path — normal termination, cancellation, and (in a
	// loopback fault test) a killed locality whose zombie workers drain
	// here with everyone else.
	spillCodec := e.fab.codec
	if spillCodec == nil {
		spillCodec = GobCodec[N]{}
	}
	for _, m := range e.topo.mem {
		if m != nil {
			m.calibrate(spillCodec, root)
			defer m.close()
		}
	}
	if e.fab.hasRoot {
		e.fab.trs[0].AddTasks(1)
		e.topo.pools[0].Push(Task[N]{Node: root, Depth: 0})
	}
	done := e.fab.trs[0].Done()

	// Death watchers: one goroutine per in-process locality consumes
	// the transport's death notifications and replays the ledger.
	// They stop with the workers — a death after global termination
	// has nothing left to replay (Done fires only once every ledger is
	// empty: an unacked entry is an outstanding registration).
	watchStop := make(chan struct{})
	defer close(watchStop)
	if e.fab.size > 1 {
		for i := range e.fab.locs {
			go func(i int) {
				deaths := e.fab.trs[i].Deaths()
				for {
					select {
					case <-watchStop:
						return
					case rank := <-deaths:
						if e.topo.onDeath(i, rank) {
							e.fab.deaths.Add(1)
						}
					}
				}
			}(i)
		}
	}

	// Idle pacing: a worker that finds nothing yields a few rounds
	// (steal response stays far below task granularity while work is
	// flowing), then parks on its locality's parker with an
	// exponentially growing timeout. Parked workers cost nothing; the
	// next local push, adopted task, or prefetched steal wakes one, and
	// the timeout re-probes remote peers that cannot notify us. Over a
	// wire transport each failed steal round already costs network
	// round trips, so parking starts longer to spare the coordinator.
	parkBase := 20 * time.Microsecond
	if e.fab.wire {
		parkBase = 500 * time.Microsecond
	}

	if e.cfg.Workers == 0 {
		// Pure coordinator (a standby deployment's rank 0): no local
		// workers, but the transport keeps serving steals against the
		// seeded root and the death watchers must stay alive until
		// global termination — their ledger replays are what make this
		// rank's hand-overs survivable.
		select {
		case <-done:
		case <-e.cancel.ch:
		}
		return
	}

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := visitors[w]
			sh := e.metrics.shard(w)
			loc := e.topo.locality(w)
			pk := e.topo.parkers[loc]
			stillIdle := func() bool { return e.topo.localBacklog(loc) == 0 }
			timer := newParkTimer()
			defer timer.Stop()
			idle := 0
			for {
				if e.cancel.cancelled() {
					return
				}
				t, ok := e.topo.popOrSteal(w, sh)
				if ok {
					idle = 0
					runTask(w, v, sh, t)
					continue
				}
				select {
				case <-done:
					return
				case <-e.cancel.ch:
					return
				default:
				}
				idle++
				if idle <= 8 {
					runtime.Gosched()
					continue
				}
				backoff := idle - 9
				if backoff > 5 {
					backoff = 5
				}
				pk.park(timer, parkBase<<uint(backoff), done, e.cancel.ch, stillIdle)
			}
		}(w)
	}
	wg.Wait()
}
