package cli

import (
	"fmt"
	"io"
	"time"

	"yewpar/internal/apps/knapsack"
	"yewpar/internal/apps/maxclique"
	"yewpar/internal/apps/nqueens"
	"yewpar/internal/apps/sip"
	"yewpar/internal/apps/tsp"
	"yewpar/internal/apps/uts"
	"yewpar/internal/core"
	"yewpar/internal/dist"
)

// Multi-process distributed mode: `-dist coordinator` listens on
// -dist-addr and waits for -dist-workers `-dist worker` processes,
// then all localities run the same search, stealing work and sharing
// bounds over TCP. Every process must be launched with the same
// application flags — the registration handshake verifies it — and
// file-based instances must be readable at the same path everywhere
// (the usual shared-filesystem assumption of cluster deployments).
//
// The coordinator prints the aggregated result and metrics; workers
// print nothing on success.

// isPrinter reports whether this rank owns result output: the
// coordinator, or — after a v7 failover — the worker promoted in its
// place (the original rank 0 is dead and prints nothing). Evaluated
// after the search returns, once any promotion has happened.
func isPrinter(tr dist.Transport) bool {
	return tr.Rank() == 0 || dist.Promoted(tr)
}

// distSpec canonicalises the options that must agree across all
// processes of a deployment.
func (o *Options) distSpec() string {
	// o.order, not the raw flag string: "disc" and "discrepancy" are the
	// same configuration and must not fail the spec handshake.
	return fmt.Sprintf("app=%s skel=%s order=%s d=%d b=%d f=%s gen=%s n=%d p=%g seed=%d kbound=%d items=%d cities=%d patn=%d uts=%d/%d/%g/%d/%s",
		o.App, o.Skeleton, o.order, o.DCutoff, o.Budget, o.File, o.Gen, o.N, o.P, o.Seed,
		o.KBound, o.Items, o.Cities, o.PatN, o.UTSB0, o.UTSM, o.UTSQ, o.UTSDepth, o.UTSShape)
}

// RunDist executes one process's role in a distributed deployment.
func RunDist(o *Options, w io.Writer) error {
	if o.Dist != "coordinator" && o.Dist != "worker" {
		return fmt.Errorf("unknown -dist role %q (want coordinator or worker)", o.Dist)
	}
	coord, err := ParseSkeleton(o.Skeleton)
	if err != nil {
		return err
	}
	if coord == core.Sequential {
		return fmt.Errorf("-dist supports the pool-based skeletons (depthbounded, budget, stacksteal), not %q", o.Skeleton)
	}
	// Reject unsupported apps before the transport comes up: a
	// coordinator must not sit listening for workers only to fail
	// after they register.
	switch o.App {
	case "maxclique", "kclique", "knapsack", "tsp", "uts", "queens", "sip":
	default:
		return fmt.Errorf("app %q is not available in -dist mode (supported: maxclique kclique knapsack tsp uts queens sip)", o.App)
	}

	var tr dist.Transport
	switch o.Dist {
	case "coordinator":
		l, err := dist.NewListenerOpts(o.DistAddr, o.distSpec(), dist.WireOptions{RegTimeout: o.RegTimeout, Topology: o.Topology, Standby: o.Standby, LinkGrace: o.LinkGrace})
		if err != nil {
			return fmt.Errorf("dist: listening on %s: %w", o.DistAddr, err)
		}
		fmt.Fprintf(w, "dist: listening on %s, waiting for %d workers\n", l.Addr(), o.DistWorkers)
		tr, err = l.Wait(o.DistWorkers)
		if err != nil {
			l.Close()
			return err
		}
		fmt.Fprintf(w, "dist: all %d workers registered\n", o.DistWorkers)
	case "worker":
		var err error
		tr, err = dist.DialOpts(o.DistAddr, o.distSpec(), dist.WireOptions{Topology: o.Topology, Standby: o.Standby, LinkGrace: o.LinkGrace})
		if err != nil {
			return err
		}
	}
	defer tr.Close()

	cfg := o.Config()
	start := time.Now()
	var stats core.Stats
	switch o.App {
	case "maxclique":
		g, err := LoadGraph(o)
		if err != nil {
			return err
		}
		s := maxclique.NewSpace(g)
		res, err := core.DistOpt(tr, maxclique.Codec(), coord, s, maxclique.Root(s), maxclique.OptProblem(), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "maximum clique size: %d\n", res.Best.Clique.Count())
		}
	case "kclique":
		g, err := LoadGraph(o)
		if err != nil {
			return err
		}
		if o.KBound <= 0 {
			return fmt.Errorf("kclique requires -decision-bound k > 0")
		}
		s := maxclique.NewSpace(g)
		res, err := core.DistDecide(tr, maxclique.Codec(), coord, s, maxclique.Root(s), maxclique.DecisionProblem(o.KBound), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "%d-clique exists: %v\n", o.KBound, res.Found)
		}
	case "knapsack":
		s := knapsack.Generate(o.Items, 10_000, knapsack.SubsetSum, o.Seed)
		res, err := core.DistOpt(tr, knapsack.Codec(), coord, s, knapsack.Root(s), knapsack.OptProblem(), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "optimal profit: %d (items=%d cap=%d)\n", res.Objective, len(s.Items), s.Cap)
		}
	case "tsp":
		s := tsp.GenerateEuclidean(o.Cities, 1000, o.Seed)
		res, err := core.DistOpt(tr, tsp.Codec(), coord, s, tsp.Root(s), tsp.OptProblem(), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "optimal tour cost: %d (%d cities)\n", -res.Objective, s.N)
		}
	case "uts":
		s := &uts.Space{B0: o.UTSB0, M: o.UTSM, Q: o.UTSQ, MaxDepth: o.UTSDepth, Seed: o.Seed}
		if o.UTSShape == "geometric" {
			s.Shape = uts.Geometric
		}
		res, err := core.DistEnum(tr, uts.Codec(), coord, s, uts.Root(s), uts.CountProblem(), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "tree size: %d\n", res.Value)
		}
	case "queens":
		s := nqueens.NewSpace(o.N)
		res, err := core.DistEnum(tr, nqueens.Codec(), coord, s, nqueens.Root(s), nqueens.CountProblem(), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "%d-queens solutions: %d\n", o.N, res.Value)
		}
	case "sip":
		s := sip.GenerateSat(o.N, o.P, o.PatN, 0.2, o.Seed)
		res, err := core.DistDecide(tr, sip.Codec(), coord, s, sip.Root(s), sip.DecisionProblem(s), cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		if isPrinter(tr) {
			fmt.Fprintf(w, "pattern (%d vertices) found in target (%d vertices): %v\n", s.P.N, s.T.N, res.Found)
		}
	default:
		return fmt.Errorf("app %q is not available in -dist mode (supported: maxclique kclique knapsack tsp uts queens sip)", o.App)
	}

	if isPrinter(tr) && o.ShowStats {
		fmt.Fprintf(w, "skeleton=%s workers=%d localities=%d elapsed=%v\n",
			coord, stats.Workers, tr.Size(), time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(w, "nodes=%d prunes=%d spawns=%d steals=%d/%d backtracks=%d broadcasts=%d\n",
			stats.Nodes, stats.Prunes, stats.Spawns, stats.StealsOK,
			stats.StealsOK+stats.StealsFail, stats.Backtracks, stats.Broadcasts)
		if o.order != core.OrderNone {
			fmt.Fprintf(w, "order=%s ordered-steals=%d prio-hist=%v\n",
				o.order, stats.OrderedSteals, stats.PrioHist)
		}
		fmt.Fprintf(w, "wire: frames=%d bytes=%d batch=%.2f prefetch-hits=%d (%.0f%%)\n",
			stats.Frames, stats.WireBytes, stats.BatchOccupancy(),
			stats.PrefetchHits, 100*stats.PrefetchHitRate())
		fmt.Fprintf(w, "fault: deaths=%d replayed=%d ledger-peak=%d resumes=%d\n",
			stats.Deaths, stats.ReplayedTasks, stats.LedgerPeak, stats.LinkResumes)
		fmt.Fprintf(w, "mem: pool-peak=%d tasks (%d bytes est) spilled=%d tasks (%d bytes)\n",
			stats.PoolPeakTasks, stats.PoolPeakBytes, stats.SpilledTasks, stats.SpillBytes)
	}
	return nil
}
