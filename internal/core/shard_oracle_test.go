package core

import (
	"fmt"
	"testing"
)

// Oracle property test for the sharded workpools: on random seeded
// trees, the per-worker-sharded engine must explore exactly the same
// tree as the single shared DepthPool per locality (the PoolShards=1
// ablation, which reproduces the pre-sharding design). Enumeration
// visits every node exactly once under any scheduling, so values AND
// node counts must match exactly; optimisation under pruning is
// timing-dependent in parallel, so optima must match exactly while
// node counts need only stay within the full-tree envelope.
func TestShardedPoolOracle(t *testing.T) {
	coords := []struct {
		name  string
		coord Coordination
		cfg   Config
	}{
		{"depthbounded", DepthBounded, Config{Workers: 4, DCutoff: 2}},
		{"budget", Budget, Config{Workers: 4, Budget: 25}},
		{"depthbounded-2loc", DepthBounded, Config{Workers: 4, Localities: 2, DCutoff: 2}},
	}
	for seed := int64(1); seed <= 5; seed++ {
		tree := genTree(seed, 4, 8)
		tree.sortChildrenByBound()
		wantSum := tree.sum()
		seqOpt := Opt(Sequential, tree, testNode{}, tree.optProblem(true), Config{})

		for _, c := range coords {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, c.name), func(t *testing.T) {
				sharded := c.cfg // PoolShards 0: one shard per worker
				single := c.cfg
				single.PoolShards = 1 // the pre-sharding oracle

				for _, run := range []struct {
					name string
					cfg  Config
				}{{"sharded", sharded}, {"single-pool", single}} {
					enum := Enum(c.coord, tree, testNode{}, tree.enumProblem(), run.cfg)
					if enum.Value != wantSum {
						t.Fatalf("%s enum sum = %d, want %d", run.name, enum.Value, wantSum)
					}
					if enum.Stats.Nodes != int64(tree.size) {
						t.Fatalf("%s visited %d nodes, want exactly %d", run.name, enum.Stats.Nodes, tree.size)
					}
					opt := Opt(c.coord, tree, testNode{}, tree.optProblem(true), run.cfg)
					if opt.Objective != seqOpt.Objective {
						t.Fatalf("%s optimum = %d, sequential oracle %d", run.name, opt.Objective, seqOpt.Objective)
					}
					if opt.Stats.Nodes < 1 || opt.Stats.Nodes > int64(tree.size) {
						t.Fatalf("%s visited %d nodes, outside [1, %d]", run.name, opt.Stats.Nodes, tree.size)
					}
					// Conservation: every spawned task is either run
					// locally, robbed by a sibling shard, or stolen
					// across localities — counts must reconcile.
					if st := enum.Stats; st.LocalSteals+st.StealsOK > st.Spawns+1 {
						t.Fatalf("%s steals (%d local + %d remote) exceed spawns %d",
							run.name, st.LocalSteals, st.StealsOK, st.Spawns)
					}
				}
			})
		}
	}
}

// TestShardedDecisionOracle checks the decision search short-circuit
// under sharded pools: found/not-found must agree with the tree truth
// for both pool layouts.
func TestShardedDecisionOracle(t *testing.T) {
	tree := genTree(9, 4, 8)
	max := tree.max()
	for _, target := range []int64{max, max + 1} {
		wantFound := target <= max
		for _, shards := range []int{0, 1} {
			cfg := Config{Workers: 4, DCutoff: 2, PoolShards: shards}
			res := Decide(DepthBounded, tree, testNode{}, tree.decisionProblem(target, false), cfg)
			if res.Found != wantFound {
				t.Fatalf("shards=%d target=%d: Found=%v, want %v", shards, target, res.Found, wantFound)
			}
			if wantFound && res.Objective < target {
				t.Fatalf("shards=%d: witness objective %d below target %d", shards, res.Objective, target)
			}
		}
	}
}
