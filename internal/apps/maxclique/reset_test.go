package maxclique

import (
	"testing"

	"yewpar/internal/core"
	"yewpar/internal/graph"
)

// walkNodes samples every node of the first few levels of the search
// tree (breadth-first, capped), giving Reset a mix of bushy, narrow and
// childless parents.
func walkNodes(s *Space, cap int) []Node {
	nodes := []Node{Root(s)}
	for i := 0; i < len(nodes) && len(nodes) < cap; i++ {
		g := Gen(s, nodes[i])
		for g.HasNext() && len(nodes) < cap {
			nodes = append(nodes, g.Next())
		}
	}
	return nodes
}

func nodesEqual(a, b Node) bool {
	return a.Size == b.Size && a.Bound == b.Bound &&
		a.Clique.Equal(b.Clique) && a.Cands.Equal(b.Cands)
}

// TestResetMatchesFresh replays many parents through one recycled
// generator and checks each child stream against a freshly constructed
// generator — including childless parents, which Reset must handle
// (the factory's EmptyGen special-case is bypassed by the cache).
func TestResetMatchesFresh(t *testing.T) {
	g := graph.Random(40, 0.5, 7)
	s := NewSpace(g)
	shared := &gen{}
	for _, parent := range walkNodes(s, 300) {
		shared.Reset(s, parent)
		fresh := Gen(s, parent)
		for fresh.HasNext() {
			if !shared.HasNext() {
				t.Fatal("recycled generator ran dry early")
			}
			got, want := shared.Next(), fresh.Next()
			if !nodesEqual(got, want) {
				t.Fatalf("recycled child %+v, fresh child %+v", got, want)
			}
		}
		if shared.HasNext() {
			t.Fatal("recycled generator has extra children")
		}
	}
}

// TestResetChildrenDoNotAliasScratch mutating-use check: children
// yielded before a Reset must survive the generator being re-aimed.
func TestResetChildrenDoNotAliasScratch(t *testing.T) {
	g, _ := FigureOneGraph()
	s := NewSpace(g)
	shared := &gen{}
	shared.Reset(s, Root(s))
	var kids []Node
	for shared.HasNext() {
		kids = append(kids, shared.Next())
	}
	snapshot := make([]Node, len(kids))
	for i, k := range kids {
		snapshot[i] = Node{Clique: k.Clique.Clone(), Size: k.Size, Cands: k.Cands.Clone(), Bound: k.Bound}
	}
	// Re-aim the generator several times; earlier children must be
	// untouched.
	for _, k := range kids {
		shared.Reset(s, k)
		for shared.HasNext() {
			shared.Next()
		}
	}
	for i, k := range kids {
		if !nodesEqual(k, snapshot[i]) {
			t.Fatalf("child %d mutated by generator reuse: %+v vs %+v", i, k, snapshot[i])
		}
	}
}

// TestSolveRecyclingAblation: recycling must not change the search —
// same clique size, same visited-node count in the deterministic
// sequential coordination.
func TestSolveRecyclingAblation(t *testing.T) {
	g := graph.Random(45, 0.6, 11)
	on, onStats := Solve(g, core.Sequential, core.Config{})
	off, offStats := Solve(g, core.Sequential, core.Config{NoRecycle: true})
	if on.Count() != off.Count() {
		t.Fatalf("clique size with recycling %d, without %d", on.Count(), off.Count())
	}
	if onStats.Nodes != offStats.Nodes || onStats.Prunes != offStats.Prunes {
		t.Fatalf("recycling changed the explored tree: %d/%d nodes, %d/%d prunes",
			onStats.Nodes, offStats.Nodes, onStats.Prunes, offStats.Prunes)
	}
	// And in parallel the optimum still agrees.
	par, _ := Solve(g, core.DepthBounded, core.Config{Workers: 4, DCutoff: 2})
	if par.Count() != on.Count() {
		t.Fatalf("parallel clique size %d, sequential %d", par.Count(), on.Count())
	}
}
