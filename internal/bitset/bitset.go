// Package bitset provides fixed-capacity bit sets backed by word arrays.
//
// It is the vertex-set substrate for the search applications (the paper's
// Listing 1 represents cliques and candidate sets as std::bitset<N>; the
// word-parallel operations are what enable the bit-parallel MaxClique
// algorithms of San Segundo et al. that YewPar builds on).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to create a set with room for n elements.
//
// Sets are value types holding a slice: copying a Set copies the header
// only. Use Clone for an independent copy.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for elements 0..n-1.
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// MakeSlab returns k empty sets of capacity n carved out of a single
// backing allocation. Search-tree node constructors use it to build a
// node's several sets with one allocation, which matters when millions
// of nodes are materialised per second across many workers.
func MakeSlab(n, k int) []Set {
	words := (n + wordBits - 1) / wordBits
	backing := make([]uint64, words*k)
	sets := make([]Set, k)
	for i := range sets {
		sets[i] = Set{words: backing[i*words : (i+1)*words : (i+1)*words], n: n}
	}
	return sets
}

// MakePair returns two empty sets of capacity n sharing one backing
// allocation — the common two-sets-per-node case of MakeSlab without
// the slice-header allocation.
func MakePair(n int) (Set, Set) {
	words := (n + wordBits - 1) / wordBits
	backing := make([]uint64, 2*words)
	return Set{words: backing[:words:words], n: n},
		Set{words: backing[words : 2*words : 2*words], n: n}
}

// FromSlice returns a set of capacity n containing the given elements.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Cap returns the capacity (the n passed to New).
func (s Set) Cap() int { return s.n }

// Add inserts element i.
func (s Set) Add(i int) { s.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Remove deletes element i.
func (s Set) Remove(i int) { s.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of o. The sets must have the
// same capacity.
func (s Set) CopyFrom(o Set) {
	if len(s.words) != len(o.words) {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, o.words)
}

// IntersectWith removes from s every element not in o (s &= o).
func (s Set) IntersectWith(o Set) {
	if len(s.words) != len(o.words) {
		panic("bitset: IntersectWith capacity mismatch")
	}
	sw := s.words
	ow := o.words[:len(sw)]
	i := 0
	for ; i+4 <= len(sw); i += 4 {
		sw[i] &= ow[i]
		sw[i+1] &= ow[i+1]
		sw[i+2] &= ow[i+2]
		sw[i+3] &= ow[i+3]
	}
	for ; i < len(sw); i++ {
		sw[i] &= ow[i]
	}
}

// UnionWith adds to s every element of o (s |= o).
func (s Set) UnionWith(o Set) {
	if len(s.words) != len(o.words) {
		panic("bitset: UnionWith capacity mismatch")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// DifferenceWith removes from s every element of o (s &^= o).
func (s Set) DifferenceWith(o Set) {
	if len(s.words) != len(o.words) {
		panic("bitset: DifferenceWith capacity mismatch")
	}
	sw := s.words
	ow := o.words[:len(sw)]
	i := 0
	for ; i+4 <= len(sw); i += 4 {
		sw[i] &^= ow[i]
		sw[i+1] &^= ow[i+1]
		sw[i+2] &^= ow[i+2]
		sw[i+3] &^= ow[i+3]
	}
	for ; i < len(sw); i++ {
		sw[i] &^= ow[i]
	}
}

// Intersects reports whether s and o share at least one element.
func (s Set) Intersects(o Set) bool {
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s Set) SubsetOf(o Set) bool {
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds all elements 0..n-1.
func (s Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits at positions >= n in the last word.
func (s Set) trim() {
	if len(s.words) == 0 {
		return
	}
	if r := uint(s.n % wordBits); r != 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest element strictly greater than i,
// or -1 if none exists. Pass i = -1 to get the minimum.
func (s Set) NextAfter(i int) int {
	i++
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls f on each element in increasing order until f returns
// false or the set is exhausted.
func (s Set) ForEach(f func(int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements appends the elements of s in increasing order to dst and
// returns the extended slice.
func (s Set) Elements(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s Set) IntersectionCount(o Set) int {
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// String renders the set as {e1, e2, ...}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
