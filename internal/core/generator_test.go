package core

import (
	"testing"
	"testing/quick"
)

func TestSliceGen(t *testing.T) {
	g := NewSliceGen([]int{1, 2, 3})
	if g.Remaining() != 3 {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	var got []int
	for g.HasNext() {
		got = append(got, g.Next())
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("yielded %v", got)
	}
	if g.HasNext() {
		t.Fatal("exhausted generator claims more")
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", g.Remaining())
	}
}

func TestSliceGenEmpty(t *testing.T) {
	g := NewSliceGen[string](nil)
	if g.HasNext() {
		t.Fatal("empty slice gen has next")
	}
}

func TestEmptyGen(t *testing.T) {
	var g EmptyGen[int]
	if g.HasNext() {
		t.Fatal("EmptyGen has next")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next on EmptyGen did not panic")
		}
	}()
	g.Next()
}

func TestFuncGen(t *testing.T) {
	i := 0
	g := NewFuncGen(func() (int, bool) {
		if i >= 4 {
			return 0, false
		}
		i++
		return i * 10, true
	})
	var got []int
	for g.HasNext() {
		// HasNext must be idempotent between Next calls
		if !g.HasNext() {
			t.Fatal("HasNext not idempotent")
		}
		got = append(got, g.Next())
	}
	want := []int{10, 20, 30, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FuncGen yielded %v", got)
		}
	}
	if g.HasNext() {
		t.Fatal("exhausted FuncGen has next")
	}
}

func TestFuncGenNextPanicsWhenDone(t *testing.T) {
	g := NewFuncGen(func() (int, bool) { return 0, false })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Next()
}

// Property: SliceGen yields exactly the input slice in order.
func TestQuickSliceGenFaithful(t *testing.T) {
	f := func(xs []int32) bool {
		g := NewSliceGen(xs)
		for i := 0; g.HasNext(); i++ {
			if g.Next() != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonoidLaws(t *testing.T) {
	sums := SumInt64{}
	maxs := MaxInt64{}
	f := func(a, b, c int64) bool {
		// associativity + commutativity + identity for both monoids
		if sums.Plus(sums.Plus(a, b), c) != sums.Plus(a, sums.Plus(b, c)) {
			return false
		}
		if sums.Plus(a, b) != sums.Plus(b, a) {
			return false
		}
		if sums.Plus(a, sums.Zero()) != a {
			return false
		}
		if maxs.Plus(maxs.Plus(a, b), c) != maxs.Plus(a, maxs.Plus(b, c)) {
			return false
		}
		if maxs.Plus(a, b) != maxs.Plus(b, a) {
			return false
		}
		if maxs.Plus(a, maxs.Zero()) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSumVecLaws(t *testing.T) {
	m := SumVec{Len: 4}
	a := []int64{1, 2, 3, 4}
	b := []int64{10, 20, 30, 40}
	ab := m.Plus(a, b)
	ba := m.Plus(b, a)
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatal("SumVec not commutative")
		}
	}
	az := m.Plus(a, m.Zero())
	for i := range az {
		if az[i] != a[i] {
			t.Fatal("SumVec identity broken")
		}
	}
	// Plus must not mutate arguments
	if a[0] != 1 || b[0] != 10 {
		t.Fatal("SumVec.Plus mutated its arguments")
	}
}
