// Command yewpar is the CLI driver for the search applications,
// mirroring the paper artifact's binaries (e.g.
// `maxclique-14 --skeleton depthbounded -d 2 --hpx:threads 4`):
//
//	yewpar -app maxclique -gen brock400_1 -skeleton depthbounded -d 2 -workers 8
//	yewpar -app kclique -f graph.clq -decision-bound 27 -skeleton budget -b 1000000
//	yewpar -app ns -genus 18 -skeleton stacksteal -chunked
//
// Multi-process distributed search (every process gets the same
// application flags; the coordinator prints the aggregated result):
//
//	yewpar -app knapsack -items 26 -skeleton depthbounded -d 4 -dist worker &
//	yewpar -app knapsack -items 26 -skeleton depthbounded -d 4 -dist worker &
//	yewpar -app knapsack -items 26 -skeleton depthbounded -d 4 -dist coordinator -dist-workers 2
//
// All logic lives in internal/cli; run `yewpar -h` for the flag set.
package main

import (
	"fmt"
	"os"
	"runtime/debug"

	"yewpar/internal/cli"
)

func main() {
	// GC headroom: search allocates short-lived nodes at a very high
	// rate; the default GOGC spends much of the machine collecting.
	debug.SetGCPercent(800)
	if err := cli.Run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "yewpar:", err)
		os.Exit(1)
	}
}
