package core

// NodeGenerator lazily yields the children of one search-tree node in
// traversal (heuristic) order. It is the paper's Lazy Node Generator
// interface (Section 4.1): children are materialised one at a time so
// that pruning can discard subtrees before they are ever built.
//
// Implementations are used by a single worker at a time and need not be
// safe for concurrent use.
type NodeGenerator[N any] interface {
	// HasNext reports whether more children remain.
	HasNext() bool
	// Next returns the next child. It must only be called after
	// HasNext has returned true.
	Next() N
}

// GenFactory constructs the lazy node generator for a parent node within
// a search space. It corresponds to the NodeGenerator constructor of the
// paper's Listing 1. Node values must be treated as immutable: a factory
// must not retain or mutate the parent it is given, because nodes are
// shared between tasks when subtrees are spawned.
type GenFactory[S, N any] func(space S, parent N) NodeGenerator[N]

// ResettableGenerator is the opt-in recycling contract: a generator
// that can be re-aimed at a new parent, reusing its internal scratch
// (child orders, candidate sets, colouring buffers) instead of being
// reallocated. When a factory returns generators implementing this
// interface, the sequential expansion loops keep one generator per
// stack level per worker and Reset it for every node expanded at that
// level — the dominant allocation in the skeleton hot path for
// applications with per-node scratch.
//
// Reset must fully reinitialise the generator for the new parent,
// including the childless case (HasNext must then report false): the
// recycling loops call Reset directly, bypassing any leaf special-case
// the factory has. Like the factory, Reset must not retain or mutate
// the parent's node data, and children it later yields must not alias
// the generator's own scratch. Applications that do not implement the
// interface run exactly as before.
type ResettableGenerator[S, N any] interface {
	NodeGenerator[N]
	Reset(space S, parent N)
}

// EphemeralGenerator extends ResettableGenerator for node types that
// carry heap references (bitsets, slices): after ResetEphemeral, the
// generator may yield children that share ONE internal child buffer,
// overwritten by the next Next or Reset call — the hand-coded solvers'
// "nodes are never copied" discipline, made available to the
// skeletons.
//
// The engine requests ephemeral mode only from the pure depth-first
// expansion loop (expandBelow), where a yielded child is either dead
// (pruned) or is the current path node whose own generator is fully
// explored before this generator advances. Engine code that retains a
// node beyond that window — the incumbent, a decision witness — copies
// it first through the problem's Copy hook, which applications
// implementing this interface must provide. Spawn loops, which push
// children into workpools, never use ephemeral mode.
//
// Value-type nodes (no heap references) get nothing from this
// interface: copying the node value is already a deep copy, so such
// applications should implement only Reset.
type EphemeralGenerator[S, N any] interface {
	ResettableGenerator[S, N]
	ResetEphemeral(space S, parent N)
}

// cachedGen is one recycling-cache slot: the resettable generator plus
// its ephemeral face when it has one (probed once, at construction).
type cachedGen[S, N any] struct {
	rg ResettableGenerator[S, N]
	eg EphemeralGenerator[S, N] // nil when rg is not ephemeral-capable
}

// genCache is one worker's generator recycling cache: at most one
// reusable generator per expansion-stack level. It is safe because the
// expansion loops request a generator for level L only when no
// generator is live at L (the stack has exactly L entries), and a
// worker runs one task at a time. Not safe for concurrent use; each
// worker owns its own cache.
type genCache[S, N any] struct {
	space   S
	gf      GenFactory[S, N]
	levels  []cachedGen[S, N]
	disable bool
}

func newGenCache[S, N any](space S, gf GenFactory[S, N], cfg Config) *genCache[S, N] {
	return &genCache[S, N]{space: space, gf: gf, disable: cfg.NoRecycle}
}

// newGenCaches builds one recycling cache per worker.
func newGenCaches[S, N any](space S, gf GenFactory[S, N], cfg Config) []*genCache[S, N] {
	caches := make([]*genCache[S, N], cfg.Workers)
	for w := range caches {
		caches[w] = newGenCache(space, gf, cfg)
	}
	return caches
}

// install probes and caches a freshly constructed generator at level.
func (c *genCache[S, N]) install(level int, g NodeGenerator[N]) {
	rg, ok := g.(ResettableGenerator[S, N])
	if !ok {
		return
	}
	for len(c.levels) <= level {
		c.levels = append(c.levels, cachedGen[S, N]{})
	}
	eg, _ := g.(EphemeralGenerator[S, N])
	c.levels[level] = cachedGen[S, N]{rg: rg, eg: eg}
}

// gen returns a generator for parent at the given stack level,
// recycling the level's cached generator when the application supports
// it and falling back to the factory otherwise. Children are always
// safe to retain (task spawning uses this path).
func (c *genCache[S, N]) gen(level int, parent N) NodeGenerator[N] {
	if c.disable {
		return c.gf(c.space, parent)
	}
	if level < len(c.levels) {
		if rg := c.levels[level].rg; rg != nil {
			rg.Reset(c.space, parent)
			return rg
		}
	}
	g := c.gf(c.space, parent)
	c.install(level, g)
	return g
}

// genDFS is gen for the pure depth-first loop: where the application
// supports it, the generator is reset in ephemeral mode, making child
// construction allocation-free (see EphemeralGenerator for the aliasing
// contract the caller takes on).
func (c *genCache[S, N]) genDFS(level int, parent N) NodeGenerator[N] {
	if c.disable {
		return c.gf(c.space, parent)
	}
	if level < len(c.levels) {
		if l := c.levels[level]; l.eg != nil {
			l.eg.ResetEphemeral(c.space, parent)
			return l.eg
		} else if l.rg != nil {
			l.rg.Reset(c.space, parent)
			return l.rg
		}
	}
	g := c.gf(c.space, parent)
	c.install(level, g)
	// The factory-built generator for this first visit yields
	// heap-owned children; ephemeral reuse starts on the next visit to
	// this level.
	return g
}

// SliceGen is a NodeGenerator over a pre-computed child slice, in slice
// order. It is convenient for applications whose child lists are cheap
// to build eagerly, and for tests.
type SliceGen[N any] struct {
	children []N
	i        int
}

// NewSliceGen returns a generator yielding the given children in order.
func NewSliceGen[N any](children []N) *SliceGen[N] {
	return &SliceGen[N]{children: children}
}

// HasNext implements NodeGenerator.
func (g *SliceGen[N]) HasNext() bool { return g.i < len(g.children) }

// Next implements NodeGenerator.
func (g *SliceGen[N]) Next() N {
	n := g.children[g.i]
	g.i++
	return n
}

// Remaining returns the number of children not yet yielded.
func (g *SliceGen[N]) Remaining() int { return len(g.children) - g.i }

// EmptyGen is a NodeGenerator with no children (a leaf).
type EmptyGen[N any] struct{}

// HasNext implements NodeGenerator.
func (EmptyGen[N]) HasNext() bool { return false }

// Next implements NodeGenerator; it panics, as leaves have no children.
func (EmptyGen[N]) Next() N { panic("core: Next on empty generator") }

// FuncGen adapts a pull function to a NodeGenerator. The function
// returns the next child and true, or a zero node and false when
// exhausted. FuncGen buffers one lookahead element so HasNext is pure.
type FuncGen[N any] struct {
	next func() (N, bool)
	buf  N
	ok   bool
	done bool
}

// NewFuncGen returns a generator pulling children from next.
func NewFuncGen[N any](next func() (N, bool)) *FuncGen[N] {
	return &FuncGen[N]{next: next}
}

// HasNext implements NodeGenerator.
func (g *FuncGen[N]) HasNext() bool {
	if g.done {
		return false
	}
	if g.ok {
		return true
	}
	g.buf, g.ok = g.next()
	if !g.ok {
		g.done = true
	}
	return g.ok
}

// Next implements NodeGenerator.
func (g *FuncGen[N]) Next() N {
	if !g.HasNext() {
		panic("core: Next on exhausted generator")
	}
	g.ok = false
	return g.buf
}
