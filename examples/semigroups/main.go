// Numerical semigroups: enumeration search counting the semigroups of
// each genus in one traversal (a fold into the vector-sum monoid),
// reproducing the counting application of Fromentin & Hivert that the
// paper evaluates as "NS". The genus tree starts narrow — exactly the
// shape for which the paper recommends dynamic coordinations over
// Depth-Bounded (Section 5.5).
package main

import (
	"fmt"

	"yewpar/internal/apps/semigroups"
	"yewpar/internal/core"
)

func main() {
	const maxGenus = 20
	s := semigroups.NewSpace(maxGenus)

	res := core.Enum(core.Budget, s, semigroups.Root(s), semigroups.CountProfile(s),
		core.Config{Budget: 1_000})

	fmt.Println("genus  #semigroups   (OEIS A007323)")
	for g, count := range res.Value {
		fmt.Printf("%5d  %11d\n", g, count)
	}
	fmt.Printf("\n%d workers, %d tree nodes, %d spawns, %v\n",
		res.Stats.Workers, res.Stats.Nodes, res.Stats.Spawns, res.Stats.Elapsed.Round(1000))
}
